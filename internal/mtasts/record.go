// Package mtasts implements SMTP MTA Strict Transport Security (RFC 8461):
// the "_mta-sts" DNS TXT record, the HTTPS-served policy file, mx pattern
// matching, the sender-side policy cache with trust-on-first-use semantics,
// and the full sender validation flow (Figure 1 of the paper). It is the
// core library of the reproduction; every scanner and experiment is built
// on the parsers and validators defined here.
package mtasts

import (
	"errors"
	"fmt"
	"strings"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Version is the only MTA-STS version defined by RFC 8461.
const Version = "STSv1"

// RecordPrefix is the required beginning of an MTA-STS TXT record.
const RecordPrefix = "v=" + Version

// Record error kinds (the §4.3.2 taxonomy: of 331 broken records, 19.6% had
// no id, 61% an invalid id, 15.7% a bad version prefix, and 2 bad
// extensions). All are persistent verdicts typed into the DNS-record
// category of the scan error taxonomy (docs/ERRORS.md); ErrNoRecord
// alone stays untyped because the absence of MTA-STS is a population
// boundary, not a misconfiguration.
var (
	//lint:ignore codes absence of MTA-STS is a population boundary, not a misconfiguration
	ErrNoRecord        = errors.New("mtasts: no MTA-STS record")
	ErrMultipleRecords = errtax.New(errtax.LayerDNS, errtax.CodeMultipleRecords, false, "mtasts: more than one record starting with v=STSv1")
	ErrBadVersion      = errtax.New(errtax.LayerDNS, errtax.CodeBadVersion, false, "mtasts: record does not begin with v=STSv1")
	ErrMissingID       = errtax.New(errtax.LayerDNS, errtax.CodeBadSyntax, false, "mtasts: record has no id field")
	ErrBadID           = errtax.New(errtax.LayerDNS, errtax.CodeBadSyntax, false, "mtasts: id is not 1*32 alphanumeric characters")
	ErrBadExtension    = errtax.New(errtax.LayerDNS, errtax.CodeBadSyntax, false, "mtasts: extension field violates RFC 8461 ABNF")
	ErrDuplicateField  = errtax.New(errtax.LayerDNS, errtax.CodeBadSyntax, false, "mtasts: duplicate field in record")
)

// Record is a parsed "_mta-sts" TXT record.
type Record struct {
	// Version is always "STSv1" for a valid record.
	Version string
	// ID uniquely identifies the policy instance; senders refetch the
	// policy when it changes.
	ID string
	// Extensions holds any additional fields, in order of appearance.
	Extensions []Field
}

// Field is a key-value extension pair.
type Field struct{ Name, Value string }

// String re-serializes the record in canonical form.
func (r Record) String() string {
	var sb strings.Builder
	sb.WriteString("v=")
	sb.WriteString(r.Version)
	sb.WriteString("; id=")
	sb.WriteString(r.ID)
	for _, f := range r.Extensions {
		sb.WriteString("; ")
		sb.WriteString(f.Name)
		sb.WriteByte('=')
		sb.WriteString(f.Value)
	}
	sb.WriteByte(';')
	return sb.String()
}

// ParseRecord parses a single TXT value as an MTA-STS record, enforcing the
// RFC 8461 §3.1 ABNF: the record must begin with "v=STSv1", must contain
// exactly one id of 1-32 alphanumeric characters, and any further fields
// must be well-formed extensions.
func ParseRecord(txt string) (Record, error) {
	rec := Record{}
	if !HasRecordPrefix(txt) {
		return rec, fmt.Errorf("%w: %q", ErrBadVersion, clip(txt))
	}
	fields := strings.Split(txt, ";")
	seen := map[string]bool{}
	for i, raw := range fields {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			// Trailing ";" produces one empty field; empty fields elsewhere
			// (";;") violate the ABNF's field-delim rule.
			if i == len(fields)-1 {
				continue
			}
			return rec, fmt.Errorf("%w: empty field at position %d", ErrBadExtension, i)
		}
		name, value, ok := strings.Cut(raw, "=")
		if !ok {
			return rec, fmt.Errorf("%w: field %q has no '='", ErrBadExtension, clip(raw))
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		switch name {
		case "v":
			if i != 0 {
				return rec, fmt.Errorf("%w: v field not first", ErrBadVersion)
			}
			if value != Version {
				return rec, fmt.Errorf("%w: version %q", ErrBadVersion, clip(value))
			}
			rec.Version = value
		case "id":
			if seen["id"] {
				return rec, fmt.Errorf("%w: id", ErrDuplicateField)
			}
			if len(value) > 32 || !strutil.IsAlphanumeric(value) {
				return rec, fmt.Errorf("%w: %q", ErrBadID, clip(value))
			}
			rec.ID = value
		default:
			if !validExtName(name) || !validExtValue(value) {
				return rec, fmt.Errorf("%w: %q=%q", ErrBadExtension, clip(name), clip(value))
			}
			if seen[name] {
				return rec, fmt.Errorf("%w: %s", ErrDuplicateField, clip(name))
			}
			rec.Extensions = append(rec.Extensions, Field{Name: name, Value: value})
		}
		seen[name] = true
	}
	if rec.ID == "" {
		if !seen["id"] {
			return rec, ErrMissingID
		}
		return rec, fmt.Errorf("%w: empty", ErrBadID)
	}
	return rec, nil
}

// DiscoverRecord applies the RFC 8461 multi-record rule to the full TXT
// RRset at "_mta-sts.<domain>": records not starting with "v=STSv1" are
// ignored; exactly one STSv1 record must remain. It returns the parsed
// record or an error classifying why MTA-STS is considered not (or
// incorrectly) deployed.
func DiscoverRecord(txts []string) (Record, error) {
	var candidates []string
	for _, txt := range txts {
		if HasRecordPrefix(txt) {
			candidates = append(candidates, txt)
		}
	}
	switch len(candidates) {
	case 0:
		if len(txts) > 0 {
			// TXT records exist but none is an STS record: check whether one
			// looks like a malformed attempt ("v =STSv1", "V=stsv1", ...).
			for _, txt := range txts {
				if looksLikeSTSAttempt(txt) {
					return Record{}, fmt.Errorf("%w: %q", ErrBadVersion, clip(txt))
				}
			}
		}
		return Record{}, ErrNoRecord
	case 1:
		return ParseRecord(candidates[0])
	default:
		return Record{}, fmt.Errorf("%w: %d records", ErrMultipleRecords, len(candidates))
	}
}

// HasRecordPrefix reports whether txt begins with "v=STSv1" per the strict
// matching RFC 8461 requires (case-sensitive, optional whitespace around
// "=" is permitted by the ABNF's *WSP).
func HasRecordPrefix(txt string) bool {
	s := txt
	if !strings.HasPrefix(s, "v") {
		return false
	}
	s = strings.TrimLeft(s[1:], " \t")
	if !strings.HasPrefix(s, "=") {
		return false
	}
	s = strings.TrimLeft(s[1:], " \t")
	if !strings.HasPrefix(s, Version) {
		return false
	}
	rest := s[len(Version):]
	return rest == "" || rest[0] == ';' || rest[0] == ' ' || rest[0] == '\t'
}

// looksLikeSTSAttempt detects TXT values that were probably meant to be
// MTA-STS records but fail the version prefix (e.g. "v=STSV1", "v=sts1").
func looksLikeSTSAttempt(txt string) bool {
	l := strings.ToLower(strings.TrimSpace(txt))
	return strings.HasPrefix(l, "v=sts") || strings.Contains(l, "stsv1")
}

// validExtName checks sts-ext-name: (ALPHA/DIGIT) *31(ALPHA/DIGIT/"_"/"-"/".").
func validExtName(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
		if i == 0 && !alnum {
			return false
		}
		if !alnum && c != '_' && c != '-' && c != '.' {
			return false
		}
	}
	return true
}

// validExtValue checks sts-ext-value: 1*(%x21-3A / %x3C / %x3E-7E), i.e.
// visible ASCII except ";" and "=".
func validExtValue(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x21 || c > 0x7E || c == ';' || c == '=' {
			return false
		}
	}
	return true
}

// clip shortens a string for inclusion in error messages.
func clip(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
