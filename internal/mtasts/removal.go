package mtasts

import (
	"fmt"
	"time"
)

// This file implements the safe MTA-STS removal procedure of RFC 8461
// (§2.6 of the paper) and a classifier for how a hosting provider actually
// deprovisions departed customers (§5 of the paper found that none of the
// Table 2 providers follow the recommended wind-down).

// WindDownMaxAge is the short policy lifetime recommended while winding
// down (one day).
const WindDownMaxAge = 86400

// WindDown is the correct removal sequence for a domain currently
// publishing MTA-STS.
type WindDown struct {
	// NonePolicy is the transitional policy to publish first: mode none
	// with a short max_age.
	NonePolicy Policy
	// NewRecord is the record to publish second: a fresh id so cached
	// senders refetch the transitional policy.
	NewRecord Record
	// Wait is how long to keep serving the transitional policy before
	// removing anything: the maximum of the previous policy's max_age and
	// the transitional policy's max_age.
	Wait time.Duration
}

// PlanWindDown computes the §2.6 removal sequence for a domain currently
// serving `current` under `record`. The new record id is derived from the
// old one with a "0" suffix (any change suffices; ids are opaque).
func PlanWindDown(current Policy, record Record) WindDown {
	none := Policy{
		Version: Version,
		Mode:    ModeNone,
		MaxAge:  WindDownMaxAge,
	}
	newID := record.ID + "0"
	if len(newID) > 32 {
		newID = newID[1:] // stay within 1*32 alphanumeric
	}
	wait := current.MaxAge
	if none.MaxAge > wait {
		wait = none.MaxAge
	}
	return WindDown{
		NonePolicy: none,
		NewRecord:  Record{Version: Version, ID: newID},
		Wait:       time.Duration(wait) * time.Second,
	}
}

// Steps renders the plan as ordered human-readable instructions.
func (w WindDown) Steps(domain string) []string {
	return []string{
		fmt.Sprintf("1. Publish the transitional policy at %s: %q", PolicyURL(domain), w.NonePolicy.String()),
		fmt.Sprintf("2. Publish a new record at _mta-sts.%s: %q", domain, w.NewRecord.String()),
		fmt.Sprintf("3. Wait %s so every cached sender refreshes", w.Wait),
		fmt.Sprintf("4. Remove the _mta-sts.%s record, the mta-sts.%s name, and the policy file", domain, domain),
	}
}

// DeprovisionBehavior classifies what a sender observes for a domain whose
// owner stopped using (or paying for) its policy host — the §5 taxonomy.
type DeprovisionBehavior int

// Observed deprovisioning behaviors, from best to worst.
const (
	// DeprovisionGraceful: a mode-none policy is served — MTA-STS is
	// disabled cleanly (the recommended transition state).
	DeprovisionGraceful DeprovisionBehavior = iota
	// DeprovisionEmptyPolicy: a syntactically invalid (e.g. empty) policy
	// is served; senders treat it like mode none but it signals neglect
	// (the DMARCReport behavior).
	DeprovisionEmptyPolicy
	// DeprovisionNXDomain: the policy host no longer resolves; senders
	// fall back to opportunistic TLS but cached enforce policies can
	// strand mail until they expire (MailHardener/URIports/PowerDMARC).
	DeprovisionNXDomain
	// DeprovisionBrokenTLS: the certificate lapsed; same fallback risk
	// plus scanner noise (the Tutanota observation).
	DeprovisionBrokenTLS
	// DeprovisionStaleEnforce: a stale enforce policy keeps being served;
	// if the domain's MX records change, compliant senders refuse
	// delivery (EasyDMARC/Sendmarc/OnDMARC).
	DeprovisionStaleEnforce
)

// String returns a short label for the behavior.
func (b DeprovisionBehavior) String() string {
	switch b {
	case DeprovisionGraceful:
		return "graceful (mode none)"
	case DeprovisionEmptyPolicy:
		return "empty policy file"
	case DeprovisionNXDomain:
		return "NXDOMAIN"
	case DeprovisionBrokenTLS:
		return "broken TLS"
	case DeprovisionStaleEnforce:
		return "stale enforce policy"
	}
	return fmt.Sprintf("behavior(%d)", int(b))
}

// Safe reports whether the behavior avoids both delivery failures and
// lingering enforce policies.
func (b DeprovisionBehavior) Safe() bool {
	return b == DeprovisionGraceful
}

// ClassifyDeprovision maps a policy-fetch outcome for an opted-out domain
// onto the deprovisioning taxonomy. policy is consulted only when err is
// nil.
func ClassifyDeprovision(policy Policy, err error) DeprovisionBehavior {
	if err != nil {
		switch StageOf(err) {
		case StageDNS:
			return DeprovisionNXDomain
		case StageTLS:
			return DeprovisionBrokenTLS
		case StageSyntax:
			return DeprovisionEmptyPolicy
		default:
			// TCP/HTTP failures behave like NXDOMAIN for senders: no
			// policy obtainable.
			return DeprovisionNXDomain
		}
	}
	if policy.Mode == ModeNone {
		return DeprovisionGraceful
	}
	return DeprovisionStaleEnforce
}
