package mtasts

import (
	"errors"
	"strings"
	"testing"
)

// rfcExamplePolicy is the example from RFC 8461 §3.2.
const rfcExamplePolicy = "version: STSv1\r\nmode: enforce\r\nmx: mail.example.com\r\nmx: *.example.net\r\nmx: backupmx.example.com\r\nmax_age: 604800\r\n"

func TestParsePolicyRFCExample(t *testing.T) {
	p, err := ParsePolicy([]byte(rfcExamplePolicy))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if p.Version != "STSv1" || p.Mode != ModeEnforce || p.MaxAge != 604800 {
		t.Errorf("policy = %+v", p)
	}
	want := []string{"mail.example.com", "*.example.net", "backupmx.example.com"}
	if len(p.MXPatterns) != len(want) {
		t.Fatalf("patterns = %v", p.MXPatterns)
	}
	for i := range want {
		if p.MXPatterns[i] != want[i] {
			t.Errorf("pattern[%d] = %q, want %q", i, p.MXPatterns[i], want[i])
		}
	}
}

func TestParsePolicyLFOnly(t *testing.T) {
	// Plain LF line endings are accepted (ABNF allows LF / CRLF).
	in := "version: STSv1\nmode: testing\nmx: mx.example.com\nmax_age: 86400\n"
	p, err := ParsePolicy([]byte(in))
	if err != nil || p.Mode != ModeTesting {
		t.Errorf("ParsePolicy(LF) = %+v, %v", p, err)
	}
}

func TestParsePolicyModeNoneWithoutMX(t *testing.T) {
	in := "version: STSv1\nmode: none\nmax_age: 86400\n"
	p, err := ParsePolicy([]byte(in))
	if err != nil || p.Mode != ModeNone {
		t.Errorf("mode none without mx should parse: %+v, %v", p, err)
	}
}

func TestParsePolicyExtensionsAndWhitespace(t *testing.T) {
	in := "version:STSv1\nmode:   enforce\nmx:mx1.example.com\nmax_age: 1000\nextkey: some value ok\n"
	p, err := ParsePolicy([]byte(in))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if len(p.Extensions) != 1 || p.Extensions[0].Name != "extkey" {
		t.Errorf("extensions = %+v", p.Extensions)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", ErrEmptyPolicy},
		{"whitespace only", " \r\n \n", ErrEmptyPolicy},
		{"missing version", "mode: enforce\nmx: a.example.com\nmax_age: 100\n", ErrPolicyVersion},
		{"bad version", "version: STSv2\nmode: enforce\nmx: a.example.com\nmax_age: 100\n", ErrPolicyVersion},
		{"missing mode", "version: STSv1\nmx: a.example.com\nmax_age: 100\n", ErrPolicyMode},
		{"bad mode", "version: STSv1\nmode: enforced\nmx: a.example.com\nmax_age: 100\n", ErrPolicyMode},
		{"mode case", "version: STSv1\nmode: Enforce\nmx: a.example.com\nmax_age: 100\n", ErrPolicyMode},
		{"missing max_age", "version: STSv1\nmode: enforce\nmx: a.example.com\n", ErrPolicyMaxAge},
		{"bad max_age", "version: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: 1w\n", ErrPolicyMaxAge},
		{"negative max_age", "version: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: -1\n", ErrPolicyMaxAge},
		{"excessive max_age", "version: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: 99999999999\n", ErrPolicyMaxAge},
		{"no mx in enforce", "version: STSv1\nmode: enforce\nmax_age: 100\n", ErrPolicyNoMX},
		{"no mx in testing", "version: STSv1\nmode: testing\nmax_age: 100\n", ErrPolicyNoMX},
		{"email as mx", "version: STSv1\nmode: enforce\nmx: admin@example.com\nmax_age: 100\n", ErrPolicyBadMX},
		{"trailing dot mx", "version: STSv1\nmode: enforce\nmx: mx.example.com.\nmax_age: 100\n", ErrPolicyBadMX},
		{"empty mx", "version: STSv1\nmode: enforce\nmx:\nmax_age: 100\n", ErrPolicyBadMX},
		{"inner wildcard mx", "version: STSv1\nmode: enforce\nmx: mx.*.example.com\nmax_age: 100\n", ErrPolicyBadMX},
		{"single label mx", "version: STSv1\nmode: enforce\nmx: localhost\nmax_age: 100\n", ErrPolicyBadMX},
		{"line without colon", "version: STSv1\nmode: enforce\nbogus line\nmx: a.example.com\nmax_age: 100\n", ErrPolicyLine},
		{"duplicate version", "version: STSv1\nversion: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: 100\n", ErrPolicyDuplicate},
		{"duplicate mode", "version: STSv1\nmode: enforce\nmode: testing\nmx: a.example.com\nmax_age: 100\n", ErrPolicyDuplicate},
		{"duplicate max_age", "version: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: 100\nmax_age: 200\n", ErrPolicyDuplicate},
		{"non-ascii", "version: STSv1\nmode: enforce\nmx: \xc3\xa9xample.com\nmax_age: 100\n", ErrPolicyBadCharset},
		{"oversize", "version: STSv1\n" + strings.Repeat("x", MaxPolicySize) + "\n", ErrPolicyTooLarge},
	}
	for _, c := range cases {
		_, err := ParsePolicy([]byte(c.in))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestCheckMXPattern(t *testing.T) {
	valid := []string{"mx.example.com", "*.example.com", "a-b.example.co.uk", "mx1.sub.example.com", "xn--d1acufc.example.org"}
	for _, p := range valid {
		if err := CheckMXPattern(p); err != nil {
			t.Errorf("CheckMXPattern(%q) = %v, want nil", p, err)
		}
	}
	invalid := []string{"", "*.", "mx.example.com.", "user@example.com", "mx .example.com",
		"http://example.com", "*.*.example.com", "-bad.example.com", "bad-.example.com",
		"com", strings.Repeat("a", 64) + ".example.com", "*." + strings.Repeat("long.", 60) + "example.com"}
	for _, p := range invalid {
		if err := CheckMXPattern(p); err == nil {
			t.Errorf("CheckMXPattern(%q) = nil, want error", p)
		}
	}
}

// Property: String() output of a valid policy re-parses to an equivalent
// policy.
func TestPolicySerializationRoundTrip(t *testing.T) {
	policies := []Policy{
		{Version: Version, Mode: ModeEnforce, MaxAge: 604800,
			MXPatterns: []string{"mail.example.com", "*.example.net"}},
		{Version: Version, Mode: ModeTesting, MaxAge: 1,
			MXPatterns: []string{"a.b.example.org"}},
		{Version: Version, Mode: ModeNone, MaxAge: 86400},
		{Version: Version, Mode: ModeEnforce, MaxAge: MaxMaxAge,
			MXPatterns: []string{"x.example.se"}, Extensions: []Field{{"comment", "hello"}}},
	}
	for _, p := range policies {
		q, err := ParsePolicy([]byte(p.String()))
		if err != nil {
			t.Errorf("round-trip of %+v: %v", p, err)
			continue
		}
		if q.Mode != p.Mode || q.MaxAge != p.MaxAge || len(q.MXPatterns) != len(p.MXPatterns) {
			t.Errorf("round-trip mismatch: %+v vs %+v", q, p)
		}
		for i := range p.MXPatterns {
			if q.MXPatterns[i] != p.MXPatterns[i] {
				t.Errorf("pattern %d: %q vs %q", i, q.MXPatterns[i], p.MXPatterns[i])
			}
		}
	}
}

func TestParsePolicyNeverPanics(t *testing.T) {
	seeds := []string{
		"version", ":", "\r", "\n\n\n", "mx:", "max_age:",
		"version: STSv1\nmode: enforce\nmx: a.example.com\nmax_age: 100",
		strings.Repeat(":", 100), "\x00", "version: STSv1\x00",
	}
	for _, s := range seeds {
		_, _ = ParsePolicy([]byte(s))
	}
}

func TestModeValid(t *testing.T) {
	for _, m := range []Mode{ModeEnforce, ModeTesting, ModeNone} {
		if !m.Valid() {
			t.Errorf("%q should be valid", m)
		}
	}
	for _, m := range []Mode{"", "Enforce", "report", "strict"} {
		if m.Valid() {
			t.Errorf("%q should be invalid", m)
		}
	}
}
