package mtasts

import "testing"

func TestMatchMX(t *testing.T) {
	cases := []struct {
		pattern, host string
		want          bool
	}{
		{"mail.example.com", "mail.example.com", true},
		{"MAIL.Example.COM", "mail.example.com.", true},
		{"mail.example.com", "mail2.example.com", false},
		{"*.example.com", "mail.example.com", true},
		{"*.example.com", "example.com", false},
		{"*.example.com", "a.b.example.com", false},
		{"*.example.com", "mail.example.net", false},
		{"example.com", "mail.example.com", false},
		{"", "mail.example.com", false},
		{"mail.example.com", "", false},
		// Paper §4.4: mx pattern containing the mta-sts label (a common
		// RFC misunderstanding) must not match the real MX.
		{"mta-sts.example.com", "mail.example.com", false},
	}
	for _, c := range cases {
		if got := MatchMX(c.pattern, c.host); got != c.want {
			t.Errorf("MatchMX(%q, %q) = %v, want %v", c.pattern, c.host, got, c.want)
		}
	}
}

func TestPolicyMatches(t *testing.T) {
	p := Policy{MXPatterns: []string{"mail.example.com", "*.example.net"}}
	if !p.Matches("mail.example.com") || !p.Matches("mx7.example.net") {
		t.Error("expected matches failed")
	}
	if p.Matches("mail.example.org") || p.Matches("deep.mx.example.net") {
		t.Error("unexpected matches")
	}
	if got := p.MatchingPattern("mx7.example.net"); got != "*.example.net" {
		t.Errorf("MatchingPattern = %q", got)
	}
	if got := p.MatchingPattern("nope.example.org"); got != "" {
		t.Errorf("MatchingPattern(no match) = %q", got)
	}
}

func TestFilterMatching(t *testing.T) {
	p := Policy{MXPatterns: []string{"*.example.com"}}
	matched, unmatched := p.FilterMatching([]string{
		"mx1.example.com", "mx.other.net", "mx2.example.com",
	})
	if len(matched) != 2 || len(unmatched) != 1 {
		t.Fatalf("matched=%v unmatched=%v", matched, unmatched)
	}
	if matched[0] != "mx1.example.com" || matched[1] != "mx2.example.com" || unmatched[0] != "mx.other.net" {
		t.Errorf("order not preserved: %v %v", matched, unmatched)
	}
}
