package mtasts

import (
	"context"
	"crypto/tls"
	"errors"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// policyServer is a minimal HTTPS policy host for fetcher tests.
type policyServer struct {
	ln   net.Listener
	port int
}

// startPolicyServer serves handler over TLS with the given certificate.
func startPolicyServer(t *testing.T, cert tls.Certificate, handler http.Handler) *policyServer {
	t.Helper()
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		t.Fatalf("tls.Listen: %v", err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	_, portStr, _ := net.SplitHostPort(ln.Addr().String())
	port, _ := strconv.Atoi(portStr)
	return &policyServer{ln: ln, port: port}
}

func loopbackResolver() AddrResolver {
	return AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
		return []string{"127.0.0.1"}, nil
	})
}

func policyHandler(body string, status int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != WellKnownPath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(status)
		w.Write([]byte(body))
	})
}

func newFetcherCA(t *testing.T) *pki.CA {
	t.Helper()
	ca, err := pki.NewCA("Fetch Test CA", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func issue(t *testing.T, ca *pki.CA, names ...string) tls.Certificate {
	t.Helper()
	leaf, err := ca.Issue(pki.IssueOptions{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	return leaf.TLSCertificate()
}

func TestFetchSuccess(t *testing.T) {
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"),
		policyHandler(rfcExamplePolicy, http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	policy, body, err := f.Fetch(context.Background(), "example.com")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if policy.Mode != ModeEnforce || len(policy.MXPatterns) != 3 {
		t.Errorf("policy = %+v", policy)
	}
	if string(body) != rfcExamplePolicy {
		t.Errorf("body = %q", body)
	}
}

func TestFetchDNSError(t *testing.T) {
	f := &Fetcher{
		Resolver: AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
			return nil, errors.New("NXDOMAIN")
		}),
		Timeout: time.Second,
	}
	_, _, err := f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageDNS {
		t.Errorf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestFetchTCPError(t *testing.T) {
	// Reserve a port, then close it so connections are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, portStr, _ := net.SplitHostPort(ln.Addr().String())
	port, _ := strconv.Atoi(portStr)
	ln.Close()

	f := &Fetcher{Resolver: loopbackResolver(), Port: port, Timeout: 2 * time.Second}
	_, _, err = f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageTCP {
		t.Errorf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestFetchTLSNameMismatch(t *testing.T) {
	ca := newFetcherCA(t)
	// Certificate for the bare domain, not the mta-sts subdomain — the
	// dominant self-managed error in the paper (94.5% of TLS errors).
	srv := startPolicyServer(t, issue(t, ca, "example.com"),
		policyHandler(rfcExamplePolicy, http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err := f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageTLS {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
	if CertProblemOf(err) != pki.ProblemNameMismatch {
		t.Errorf("cert problem = %v", CertProblemOf(err))
	}
}

func TestFetchTLSSelfSigned(t *testing.T) {
	ca := newFetcherCA(t)
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{"mta-sts.example.com"}, SelfSigned: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := startPolicyServer(t, leaf.TLSCertificate(), policyHandler(rfcExamplePolicy, http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err = f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageTLS || CertProblemOf(err) != pki.ProblemSelfSigned {
		t.Errorf("stage=%v problem=%v err=%v", StageOf(err), CertProblemOf(err), err)
	}
}

func TestFetchTLSExpired(t *testing.T) {
	ca := newFetcherCA(t)
	leaf, err := ca.Issue(pki.IssueOptions{
		Names:     []string{"mta-sts.example.com"},
		NotBefore: time.Now().Add(-48 * time.Hour),
		NotAfter:  time.Now().Add(-24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startPolicyServer(t, leaf.TLSCertificate(), policyHandler(rfcExamplePolicy, http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err = f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageTLS || CertProblemOf(err) != pki.ProblemExpired {
		t.Errorf("stage=%v problem=%v err=%v", StageOf(err), CertProblemOf(err), err)
	}
}

func TestFetchHTTP404(t *testing.T) {
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { http.NotFound(w, r) }))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err := f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageHTTP {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
	var fe *FetchError
	if !errors.As(err, &fe) || fe.HTTPStatus != http.StatusNotFound {
		t.Errorf("HTTPStatus = %+v", fe)
	}
}

func TestFetchRedirectNotFollowed(t *testing.T) {
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, "https://elsewhere.example/policy", http.StatusMovedPermanently)
		}))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err := f.Fetch(context.Background(), "example.com")
	var fe *FetchError
	if !errors.As(err, &fe) || fe.Stage != StageHTTP || fe.HTTPStatus != http.StatusMovedPermanently {
		t.Errorf("redirect handling: %+v (err=%v)", fe, err)
	}
}

func TestFetchSyntaxError(t *testing.T) {
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"),
		policyHandler("this is not a policy", http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, body, err := f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageSyntax {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
	if string(body) != "this is not a policy" {
		t.Errorf("body not preserved: %q", body)
	}
}

func TestFetchEmptyPolicyIsSyntaxError(t *testing.T) {
	// The DMARCReport opt-out behavior (§5): valid TLS, empty body.
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"),
		policyHandler("", http.StatusOK))
	f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port, Timeout: 3 * time.Second}

	_, _, err := f.Fetch(context.Background(), "example.com")
	if StageOf(err) != StageSyntax || !errors.Is(err, ErrEmptyPolicy) {
		t.Errorf("empty policy: stage=%v err=%v", StageOf(err), err)
	}
}

func TestFetchWrongContentType(t *testing.T) {
	// RFC 8461 §3.3: the policy SHOULD be served as text/plain. A wrong
	// media type is counted but does not fail the fetch.
	ca := newFetcherCA(t)
	cert := issue(t, ca, "mta-sts.example.com")
	cases := []struct {
		contentType string
		want        int64
	}{
		{"text/plain", 0},
		{"text/plain; charset=utf-8", 0},
		{"TEXT/PLAIN", 0},
		{"text/html", 1},
		{"", 1},
	}
	for _, c := range cases {
		srv := startPolicyServer(t, cert, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if c.contentType == "" {
				w.Header()["Content-Type"] = nil // suppress sniffing's default
			} else {
				w.Header().Set("Content-Type", c.contentType)
			}
			w.Write([]byte(rfcExamplePolicy))
		}))
		reg := obs.NewRegistry()
		f := &Fetcher{Resolver: loopbackResolver(), RootCAs: ca.Pool(), Port: srv.port,
			Timeout: 3 * time.Second, Obs: reg}
		if _, _, err := f.Fetch(context.Background(), "example.com"); err != nil {
			t.Fatalf("Content-Type %q: Fetch: %v", c.contentType, err)
		}
		if got := reg.Counter("mtasts.fetch.wrong_content_type").Value(); got != c.want {
			t.Errorf("Content-Type %q: wrong_content_type = %d, want %d", c.contentType, got, c.want)
		}
	}
}

func TestFetchTimeout(t *testing.T) {
	// A TCP listener that accepts but never completes the TLS handshake.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and discard; never respond.
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	_, portStr, _ := net.SplitHostPort(ln.Addr().String())
	port, _ := strconv.Atoi(portStr)
	f := &Fetcher{Resolver: loopbackResolver(), Port: port, Timeout: 300 * time.Millisecond}
	start := time.Now()
	_, _, err = f.Fetch(context.Background(), "example.com")
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("fetch took %v despite 300ms timeout", elapsed)
	}
	if StageOf(err) != StageTLS {
		t.Errorf("hung handshake should surface at TLS stage, got %v (%v)", StageOf(err), err)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageNone: "none", StageDNS: "DNS", StageTCP: "TCP",
		StageTLS: "TLS", StageHTTP: "HTTP", StageSyntax: "Policy Syntax",
		Stage(42): "stage(42)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Stage(%d).String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestPolicyURLAndHost(t *testing.T) {
	if PolicyHost("example.com") != "mta-sts.example.com" {
		t.Error("PolicyHost mismatch")
	}
	if PolicyURL("example.com") != "https://mta-sts.example.com/.well-known/mta-sts.txt" {
		t.Errorf("PolicyURL = %q", PolicyURL("example.com"))
	}
}
