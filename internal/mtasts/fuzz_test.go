package mtasts

import (
	"errors"
	"strings"
	"testing"
)

// Native fuzz targets; `go test` runs the seed corpus, `go test -fuzz`
// explores further. The invariants: no panics, and no parser returns a
// "valid" result that violates its own postconditions.

func FuzzParseRecord(f *testing.F) {
	for _, seed := range []string{
		"v=STSv1; id=20240929;",
		"v=STSv1;",
		"v=STSv1; id=bad-id;",
		"v=STSv1; id=1; ext=val;",
		"v = STSv1 ; id = x ;",
		"v=spf1 -all",
		";;;===",
		// Adversary-shaped records (internal/faults spoofs): malformed id
		// with an embedded space, and record-id flapping shapes.
		"v=STSv1; id=evil id!;",
		"v=STSv1; id=evil7f3a2b1c;",
		"v=STSv1; id=20260801;v=STSv1; id=20260801;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := ParseRecord(s)
		if err == nil {
			if rec.Version != Version {
				t.Fatalf("valid record with version %q", rec.Version)
			}
			if rec.ID == "" || len(rec.ID) > 32 {
				t.Fatalf("valid record with bad id %q", rec.ID)
			}
			// Round-trip: the canonical serialization must re-parse.
			if _, err := ParseRecord(rec.String()); err != nil {
				t.Fatalf("canonical form %q does not re-parse: %v", rec.String(), err)
			}
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 86400\n",
		rfcExamplePolicy,
		"version: STSv1\r\nmode: none\r\nmax_age: 0\r\n",
		"mode: enforce\n",
		"",
		"version: STSv1\nmode: enforce\nmx: *.x.y\nmax_age: 1\nmax_age: 2\n",
		// Adversary-shaped bodies (internal/faults tampering): rollback to
		// mode none, stale max_age rewrite, truncation mid-token, CRLF and
		// lone-CR injection, embedded NULs, and a max_age overflow.
		"version: STSv1\nmode: none\nmax_age: 604800\n",
		"version: STSv1\nmode: enforce\nmx: mx.victim.test\nmax_age: 60\n",
		"version: STSv1\nmode: enfo",
		"version: STSv1\r\nmode: enforce\r\nmx: a.example\r\nmax_age: 86400\r\nmx: b.example\n",
		"version: STSv1\rmode: enforce\rmx: a.example\rmax_age: 86400\r",
		"version: STSv1\nmode: enforce\nmx: mx.example\x00.evil\nmax_age: 86400\n",
		"version: STSv1\nmode: enforce\nmx: mx.example\nmax_age: 99999999999999999999\n",
		strings.Repeat("mx: oversized-filler.invalid\n", 64),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		p, err := ParsePolicy(body)
		if err == nil {
			if !p.Mode.Valid() {
				t.Fatalf("valid policy with mode %q", p.Mode)
			}
			if p.MaxAge < 0 || p.MaxAge > MaxMaxAge {
				t.Fatalf("valid policy with max_age %d", p.MaxAge)
			}
			if p.Mode != ModeNone && len(p.MXPatterns) == 0 {
				t.Fatal("valid enforce/testing policy without mx patterns")
			}
			for _, pat := range p.MXPatterns {
				if CheckMXPattern(pat) != nil {
					t.Fatalf("valid policy with invalid pattern %q", pat)
				}
			}
			if _, err := ParsePolicy([]byte(p.String())); err != nil {
				t.Fatalf("canonical policy does not re-parse: %v\n%s", err, p.String())
			}
		}
	})
}

// TestParsePolicyOversizedBody pins the size gate the adversary's
// oversized-body attack leans on: a body past MaxPolicySize must be
// rejected with ErrPolicyTooLarge, never partially parsed.
func TestParsePolicyOversizedBody(t *testing.T) {
	filler := strings.Repeat("mx: oversized-filler.invalid\n", MaxPolicySize/28+2)
	body := []byte("version: STSv1\nmode: enforce\n" + filler + "max_age: 86400\n")
	if len(body) <= MaxPolicySize {
		t.Fatalf("test body too small: %d bytes", len(body))
	}
	if _, err := ParsePolicy(body); !errors.Is(err, ErrPolicyTooLarge) {
		t.Fatalf("ParsePolicy(%d bytes) = %v, want ErrPolicyTooLarge", len(body), err)
	}
}

// TestParseRecordSpoofShapes pins that the adversary's spoofed record
// is malformed (forcing the TOFU fallback the matrix relies on) while
// its valid-but-flapping record shape parses.
func TestParseRecordSpoofShapes(t *testing.T) {
	if _, err := ParseRecord("v=STSv1; id=evil id!;"); err == nil {
		t.Fatal("spoofed record with embedded space parsed as valid")
	}
	rec, err := ParseRecord("v=STSv1; id=evil7f3a2b1c;")
	if err != nil {
		t.Fatalf("flapping-id record: %v", err)
	}
	if rec.ID != "evil7f3a2b1c" {
		t.Fatalf("flapping-id record id = %q", rec.ID)
	}
}
