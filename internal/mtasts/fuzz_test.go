package mtasts

import "testing"

// Native fuzz targets; `go test` runs the seed corpus, `go test -fuzz`
// explores further. The invariants: no panics, and no parser returns a
// "valid" result that violates its own postconditions.

func FuzzParseRecord(f *testing.F) {
	for _, seed := range []string{
		"v=STSv1; id=20240929;",
		"v=STSv1;",
		"v=STSv1; id=bad-id;",
		"v=STSv1; id=1; ext=val;",
		"v = STSv1 ; id = x ;",
		"v=spf1 -all",
		";;;===",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := ParseRecord(s)
		if err == nil {
			if rec.Version != Version {
				t.Fatalf("valid record with version %q", rec.Version)
			}
			if rec.ID == "" || len(rec.ID) > 32 {
				t.Fatalf("valid record with bad id %q", rec.ID)
			}
			// Round-trip: the canonical serialization must re-parse.
			if _, err := ParseRecord(rec.String()); err != nil {
				t.Fatalf("canonical form %q does not re-parse: %v", rec.String(), err)
			}
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 86400\n",
		rfcExamplePolicy,
		"version: STSv1\r\nmode: none\r\nmax_age: 0\r\n",
		"mode: enforce\n",
		"",
		"version: STSv1\nmode: enforce\nmx: *.x.y\nmax_age: 1\nmax_age: 2\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		p, err := ParsePolicy(body)
		if err == nil {
			if !p.Mode.Valid() {
				t.Fatalf("valid policy with mode %q", p.Mode)
			}
			if p.MaxAge < 0 || p.MaxAge > MaxMaxAge {
				t.Fatalf("valid policy with max_age %d", p.MaxAge)
			}
			if p.Mode != ModeNone && len(p.MXPatterns) == 0 {
				t.Fatal("valid enforce/testing policy without mx patterns")
			}
			for _, pat := range p.MXPatterns {
				if CheckMXPattern(pat) != nil {
					t.Fatalf("valid policy with invalid pattern %q", pat)
				}
			}
			if _, err := ParsePolicy([]byte(p.String())); err != nil {
				t.Fatalf("canonical policy does not re-parse: %v\n%s", err, p.String())
			}
		}
	})
}
