package mtasts

import (
	"sync"
	"time"
)

// CachedPolicy is a policy held by a sending MTA together with the record
// id it was fetched under and its expiry.
type CachedPolicy struct {
	Policy    Policy
	RecordID  string
	FetchedAt time.Time
	// Expires is FetchedAt + max_age.
	Expires time.Time
}

// Fresh reports whether the entry is still within its max_age at t.
func (c CachedPolicy) Fresh(t time.Time) bool { return t.Before(c.Expires) }

// DefaultStaleWindow bounds how long an expired entry is retained after
// max_age elapses. Retention exists so the background refresher can still
// find an entry that expired between its ticks, and so a sender can keep
// enforcing an old policy when the refetch fails (RFC 8461 §5.1 warns
// that losing the cached policy reopens the TLS-fallback downgrade
// window). Expired entries are never served as fresh — only GetStale
// returns them, and only inside this window.
const DefaultStaleWindow = 24 * time.Hour

// PolicyCache is the sender-side policy store of RFC 8461 §5: policies are
// trusted on first use and served from cache until max_age elapses or the
// record id changes. It is safe for concurrent use.
type PolicyCache struct {
	mu      sync.Mutex
	entries map[string]CachedPolicy // key: policy domain
	max     int

	// StaleWindow overrides DefaultStaleWindow when positive: how long an
	// expired entry stays visible to GetStale and ExpiringWithin before it
	// is dropped for good.
	StaleWindow time.Duration

	// Now is replaceable for tests; nil means time.Now.
	Now func() time.Time
}

// NewPolicyCache returns a cache bounded to max domains (minimum 1).
func NewPolicyCache(max int) *PolicyCache {
	if max < 1 {
		max = 1
	}
	return &PolicyCache{entries: make(map[string]CachedPolicy), max: max}
}

func (pc *PolicyCache) now() time.Time {
	if pc.Now != nil {
		return pc.Now()
	}
	return time.Now()
}

func (pc *PolicyCache) staleWindow() time.Duration {
	if pc.StaleWindow > 0 {
		return pc.StaleWindow
	}
	return DefaultStaleWindow
}

// Get returns the cached policy for domain if present and fresh. An
// expired entry is a miss, but it is retained for the stale window (see
// GetStale) rather than evicted, so a failed refetch cannot destroy it.
func (pc *PolicyCache) Get(domain string) (CachedPolicy, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[domain]
	if !ok {
		return CachedPolicy{}, false
	}
	if now := pc.now(); !e.Fresh(now) {
		if now.Sub(e.Expires) > pc.staleWindow() {
			delete(pc.entries, domain)
		}
		return CachedPolicy{}, false
	}
	return e, true
}

// GetStale returns the cached policy for domain if present and not yet
// expired beyond the stale window — the fallback a sender uses when a
// refetch of an expired policy fails, so delivery keeps enforcing the old
// policy instead of downgrading to unvalidated TLS.
func (pc *PolicyCache) GetStale(domain string) (CachedPolicy, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[domain]
	if !ok {
		return CachedPolicy{}, false
	}
	if now := pc.now(); !e.Fresh(now) && now.Sub(e.Expires) > pc.staleWindow() {
		delete(pc.entries, domain)
		return CachedPolicy{}, false
	}
	return e, true
}

// NeedsRefresh implements the record-id comparison of RFC 8461 §4.2: a
// cached policy must be refetched when the current record id differs from
// the one it was fetched under, even if max_age has not elapsed.
func (pc *PolicyCache) NeedsRefresh(domain, currentRecordID string) bool {
	e, ok := pc.Get(domain)
	if !ok {
		return true
	}
	return e.RecordID != currentRecordID
}

// Store caches a freshly fetched policy under the record id it was
// discovered with. A zero or negative max_age is not cached.
func (pc *PolicyCache) Store(domain string, p Policy, recordID string) {
	if p.MaxAge <= 0 {
		return
	}
	now := pc.now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, exists := pc.entries[domain]; !exists && len(pc.entries) >= pc.max {
		pc.evictOldestLocked()
	}
	pc.entries[domain] = CachedPolicy{
		Policy:    p,
		RecordID:  recordID,
		FetchedAt: now,
		Expires:   now.Add(time.Duration(p.MaxAge) * time.Second),
	}
}

// evictOldestLocked removes the entry with the earliest expiry.
func (pc *PolicyCache) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, e := range pc.entries {
		if first || e.Expires.Before(oldest) {
			oldestKey, oldest, first = k, e.Expires, false
		}
	}
	if oldestKey != "" {
		delete(pc.entries, oldestKey)
	}
}

// Invalidate drops the entry for domain.
func (pc *PolicyCache) Invalidate(domain string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	delete(pc.entries, domain)
}

// Domains returns the policy domains currently cached (order unspecified).
func (pc *PolicyCache) Domains() []string {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]string, 0, len(pc.entries))
	for d := range pc.entries {
		out = append(out, d)
	}
	return out
}

// ExpiringWithin returns the domains whose cached policies expire within
// the window — the population a proactive refresher (RFC 8461 §3.3 "fetch
// the policy file at regular intervals") should revalidate first. The
// deadline is inclusive, and entries that already expired are included
// while they remain inside the stale window: an entry that lapsed between
// refresher ticks must still be revalidated, not silently abandoned.
func (pc *PolicyCache) ExpiringWithin(window time.Duration) []string {
	now := pc.now()
	deadline := now.Add(window)
	oldest := now.Add(-pc.staleWindow())
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var out []string
	for d, e := range pc.entries {
		if !e.Expires.After(deadline) && !e.Expires.Before(oldest) {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of cached (possibly stale) entries.
func (pc *PolicyCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
