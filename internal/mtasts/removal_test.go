package mtasts

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestPlanWindDown(t *testing.T) {
	current := Policy{Version: Version, Mode: ModeEnforce, MaxAge: 604800,
		MXPatterns: []string{"mx.example.com"}}
	record := Record{Version: Version, ID: "20240929"}

	plan := PlanWindDown(current, record)
	if plan.NonePolicy.Mode != ModeNone || plan.NonePolicy.MaxAge != WindDownMaxAge {
		t.Errorf("transitional policy = %+v", plan.NonePolicy)
	}
	if plan.NewRecord.ID == record.ID {
		t.Error("record id did not change")
	}
	if _, err := ParseRecord(plan.NewRecord.String()); err != nil {
		t.Errorf("new record invalid: %v", err)
	}
	if _, err := ParsePolicy([]byte(plan.NonePolicy.String())); err != nil {
		t.Errorf("transitional policy invalid: %v", err)
	}
	// Wait = max(old max_age, wind-down max_age).
	if plan.Wait != 604800*time.Second {
		t.Errorf("wait = %v", plan.Wait)
	}

	// Short-lived current policy: the wind-down max_age dominates.
	current.MaxAge = 60
	plan = PlanWindDown(current, record)
	if plan.Wait != WindDownMaxAge*time.Second {
		t.Errorf("wait = %v", plan.Wait)
	}
}

func TestPlanWindDownLongID(t *testing.T) {
	record := Record{Version: Version, ID: strings.Repeat("a", 32)}
	plan := PlanWindDown(Policy{MaxAge: 1}, record)
	if len(plan.NewRecord.ID) > 32 {
		t.Errorf("new id too long: %q", plan.NewRecord.ID)
	}
	if plan.NewRecord.ID == record.ID {
		t.Error("id unchanged")
	}
}

func TestWindDownSteps(t *testing.T) {
	plan := PlanWindDown(Policy{Version: Version, Mode: ModeEnforce, MaxAge: 86400,
		MXPatterns: []string{"mx.example.com"}}, Record{Version: Version, ID: "1"})
	steps := plan.Steps("example.com")
	if len(steps) != 4 {
		t.Fatalf("steps = %d", len(steps))
	}
	if !strings.Contains(steps[0], "mode: none") {
		t.Errorf("step 1 = %q", steps[0])
	}
	if !strings.Contains(steps[3], "_mta-sts.example.com") {
		t.Errorf("step 4 = %q", steps[3])
	}
}

func TestClassifyDeprovision(t *testing.T) {
	mkErr := func(stage Stage) error {
		return &FetchError{Stage: stage, Err: errors.New("x")}
	}
	cases := []struct {
		name   string
		policy Policy
		err    error
		want   DeprovisionBehavior
	}{
		{"graceful", Policy{Mode: ModeNone}, nil, DeprovisionGraceful},
		{"stale enforce", Policy{Mode: ModeEnforce}, nil, DeprovisionStaleEnforce},
		{"stale testing", Policy{Mode: ModeTesting}, nil, DeprovisionStaleEnforce},
		{"nxdomain", Policy{}, mkErr(StageDNS), DeprovisionNXDomain},
		{"tcp treated as unavailable", Policy{}, mkErr(StageTCP), DeprovisionNXDomain},
		{"broken tls", Policy{}, mkErr(StageTLS), DeprovisionBrokenTLS},
		{"http treated as unavailable", Policy{}, mkErr(StageHTTP), DeprovisionNXDomain},
		{"empty policy", Policy{}, mkErr(StageSyntax), DeprovisionEmptyPolicy},
	}
	for _, c := range cases {
		if got := ClassifyDeprovision(c.policy, c.err); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	if !DeprovisionGraceful.Safe() || DeprovisionStaleEnforce.Safe() {
		t.Error("Safe() misclassifies")
	}
}

// TestTable2ProvidersAllUnsafe mirrors the §5 conclusion: every registry
// provider's opt-out behavior, classified through the sender-side
// taxonomy, is unsafe (none follows the §2.6 wind-down). Verified against
// the policysrv registry in that package's tests; here we pin the
// classifier side: only mode-none rewrites count as graceful, and those
// providers pair it with NXDOMAIN, which a sender sees first.
func TestDeprovisionStringCoverage(t *testing.T) {
	for b, want := range map[DeprovisionBehavior]string{
		DeprovisionGraceful:     "graceful (mode none)",
		DeprovisionEmptyPolicy:  "empty policy file",
		DeprovisionNXDomain:     "NXDOMAIN",
		DeprovisionBrokenTLS:    "broken TLS",
		DeprovisionStaleEnforce: "stale enforce policy",
	} {
		if b.String() != want {
			t.Errorf("String(%d) = %q", int(b), b.String())
		}
	}
}
