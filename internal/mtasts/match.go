package mtasts

import (
	"strings"

	"github.com/netsecurelab/mtasts/internal/strutil"
)

// MatchMX reports whether an MX host name matches a single policy mx
// pattern per RFC 8461 §4.1, which adopts RFC 6125 server-identity
// semantics: an exact case-insensitive comparison, or — for patterns whose
// leftmost label is "*" — a match of exactly one leftmost label, so
// "*.example.com" matches "mx.example.com" but neither "example.com" nor
// "a.b.example.com".
func MatchMX(pattern, mxHost string) bool {
	pattern = strutil.CanonicalName(pattern)
	mxHost = strutil.CanonicalName(mxHost)
	if pattern == "" || mxHost == "" {
		return false
	}
	if rest, ok := strings.CutPrefix(pattern, "*."); ok {
		i := strings.IndexByte(mxHost, '.')
		if i < 0 {
			return false
		}
		return mxHost[i+1:] == rest
	}
	return pattern == mxHost
}

// Matches reports whether mxHost matches at least one pattern of the
// policy.
func (p Policy) Matches(mxHost string) bool {
	for _, pat := range p.MXPatterns {
		if MatchMX(pat, mxHost) {
			return true
		}
	}
	return false
}

// MatchingPattern returns the first pattern matching mxHost, or "" when
// none match.
func (p Policy) MatchingPattern(mxHost string) string {
	for _, pat := range p.MXPatterns {
		if MatchMX(pat, mxHost) {
			return pat
		}
	}
	return ""
}

// FilterMatching partitions MX hosts into those permitted by the policy and
// those that fail matching. Order is preserved.
func (p Policy) FilterMatching(mxHosts []string) (matched, unmatched []string) {
	for _, h := range mxHosts {
		if p.Matches(h) {
			matched = append(matched, h)
		} else {
			unmatched = append(unmatched, h)
		}
	}
	return matched, unmatched
}
