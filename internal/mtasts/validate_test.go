package mtasts

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/pki"
)

// fixtureResolver serves TXT values from a map; absent names are not-found.
type fixtureResolver struct {
	txt  map[string][]string
	errs map[string]error
}

var errFixtureNotFound = errors.New("fixture: not found")

func (f *fixtureResolver) ResolveTXT(ctx context.Context, name string) ([]string, error) {
	if err, ok := f.errs[name]; ok {
		return nil, err
	}
	if v, ok := f.txt[name]; ok {
		return v, nil
	}
	return nil, errFixtureNotFound
}

func (f *fixtureResolver) IsNotFound(err error) bool { return errors.Is(err, errFixtureNotFound) }

// fixtureVerifier returns a fixed problem per MX host.
type fixtureVerifier struct{ problems map[string]pki.Problem }

func (f *fixtureVerifier) VerifyMX(ctx context.Context, mx string) (pki.Problem, error) {
	return f.problems[mx], nil
}

// newValidatorEnv builds a Validator backed by a live HTTPS policy server
// serving the given policy body.
func newValidatorEnv(t *testing.T, policyBody string, status int) (*Validator, *fixtureResolver, *fixtureVerifier) {
	t.Helper()
	ca := newFetcherCA(t)
	srv := startPolicyServer(t, issue(t, ca, "mta-sts.example.com"), policyHandler(policyBody, status))
	res := &fixtureResolver{txt: map[string][]string{
		"_mta-sts.example.com": {"v=STSv1; id=20240431;"},
	}}
	ver := &fixtureVerifier{problems: map[string]pki.Problem{}}
	v := &Validator{
		Resolver: res,
		Fetcher: &Fetcher{
			Resolver: loopbackResolver(), RootCAs: ca.Pool(),
			Port: srv.port, Timeout: 3 * time.Second,
		},
		Cache:  NewPolicyCache(16),
		Verify: ver,
	}
	return v, res, ver
}

const enforcePolicy = "version: STSv1\nmode: enforce\nmx: mx.example.com\nmx: *.backup.example.com\nmax_age: 86400\n"
const testingPolicy = "version: STSv1\nmode: testing\nmx: mx.example.com\nmax_age: 86400\n"
const nonePolicy = "version: STSv1\nmode: none\nmax_age: 86400\n"

func TestValidateHappyPath(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !ev.RecordFound || !ev.PolicyFetched || !ev.MXMatched || ev.Action != ActionDeliver {
		t.Errorf("ev = %+v", ev)
	}
}

func TestValidateWildcardMX(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ev, err := v.Validate(context.Background(), "example.com", "b1.backup.example.com")
	if err != nil || !ev.MXMatched || ev.Action != ActionDeliver {
		t.Errorf("wildcard: ev=%+v err=%v", ev, err)
	}
}

func TestValidateEnforceMXMismatchRefuses(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ev, err := v.Validate(context.Background(), "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if ev.MXMatched || ev.Action != ActionRefuse {
		t.Errorf("enforce mismatch: ev=%+v", ev)
	}
}

func TestValidateTestingMXMismatchDelivers(t *testing.T) {
	v, _, _ := newValidatorEnv(t, testingPolicy, http.StatusOK)
	ev, err := v.Validate(context.Background(), "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionDeliverUnvalidated {
		t.Errorf("testing mismatch: ev=%+v", ev)
	}
}

func TestValidateModeNoneSkipsValidation(t *testing.T) {
	v, _, _ := newValidatorEnv(t, nonePolicy, http.StatusOK)
	ev, err := v.Validate(context.Background(), "example.com", "whatever.example.org")
	if err != nil || ev.Action != ActionDeliver {
		t.Errorf("mode none: ev=%+v err=%v", ev, err)
	}
}

func TestValidateEnforceBadCertRefuses(t *testing.T) {
	v, _, ver := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ver.problems["mx.example.com"] = pki.ProblemExpired
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionRefuse || ev.CertProblem != pki.ProblemExpired {
		t.Errorf("bad cert enforce: ev=%+v", ev)
	}
}

func TestValidateTestingBadCertDelivers(t *testing.T) {
	v, _, ver := newValidatorEnv(t, testingPolicy, http.StatusOK)
	ver.problems["mx.example.com"] = pki.ProblemSelfSigned
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionDeliverUnvalidated {
		t.Errorf("bad cert testing: ev=%+v", ev)
	}
}

func TestValidateNoRecord(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	delete(res.txt, "_mta-sts.example.com")
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if ev.RecordFound || ev.Action != ActionDeliver || !errors.Is(ev.RecordErr, ErrNoRecord) {
		t.Errorf("no record: ev=%+v", ev)
	}
}

func TestValidateMalformedRecordTreatedAsAbsent(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	res.txt["_mta-sts.example.com"] = []string{"v=STSv1; id=bad-id;"}
	ev, err := v.Validate(context.Background(), "example.com", "anything.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if ev.RecordFound || ev.Action == ActionRefuse {
		t.Errorf("malformed record: ev=%+v", ev)
	}
}

func TestValidatePolicyFetchFailureFallsBackUnvalidated(t *testing.T) {
	// 404 on the policy file with an empty cache: the sender proceeds
	// without MTA-STS — the downgrade window of §4.3.3.
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusNotFound)
	ev, err := v.Validate(context.Background(), "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionDeliverUnvalidated || ev.PolicyFetched {
		t.Errorf("fetch failure: ev=%+v", ev)
	}
	if StageOf(ev.PolicyErr) != StageHTTP {
		t.Errorf("PolicyErr stage = %v", StageOf(ev.PolicyErr))
	}
}

func TestValidateCachedPolicySurvivesFetchFailure(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	// Prime the cache.
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	// Break the fetch path entirely; same record id → cache hit, enforce
	// still applies.
	v.Fetcher.Resolver = AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
		return nil, errors.New("resolver down")
	})
	ev, err := v.Validate(ctx, "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.PolicyFromCache || ev.Action != ActionRefuse {
		t.Errorf("cached enforce: ev=%+v", ev)
	}
}

func TestValidateCachedPolicySurvivesRecordRemoval(t *testing.T) {
	// §2.6: abruptly removing the record does not clear sender caches.
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	delete(res.txt, "_mta-sts.example.com")
	ev, err := v.Validate(ctx, "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.PolicyFromCache || ev.Action != ActionRefuse {
		t.Errorf("cache after record removal: ev=%+v", ev)
	}
}

func TestValidateIDChangeTriggersRefetch(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	// Change the record id; the next validation must refetch (cache miss).
	res.txt["_mta-sts.example.com"] = []string{"v=STSv1; id=20250101;"}
	ev, err := v.Validate(ctx, "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if ev.PolicyFromCache {
		t.Errorf("id change should force refetch: ev=%+v", ev)
	}
}

func TestValidateTransientDNSWithCache(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	res.errs = map[string]error{"_mta-sts.example.com": errors.New("SERVFAIL")}
	ev, err := v.Validate(ctx, "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.PolicyFromCache || ev.Action != ActionRefuse {
		t.Errorf("transient DNS with cache: ev=%+v", ev)
	}
}

func TestValidateTransientDNSWithoutCache(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	res.errs = map[string]error{"_mta-sts.example.com": errors.New("SERVFAIL")}
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionDeliverUnvalidated {
		t.Errorf("transient DNS without cache: ev=%+v", ev)
	}
}

func TestValidateDowngradeAttackScenario(t *testing.T) {
	// End-to-end enforcement of the attack MTA-STS exists to stop: an
	// attacker redirects MX resolution to a rogue host. With an enforce
	// policy cached, the sender must refuse.
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	ev, err := v.Validate(ctx, "example.com", "attacker.evil.net")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Action != ActionRefuse {
		t.Errorf("downgrade scenario: ev=%+v", ev)
	}
}

func TestActionString(t *testing.T) {
	if ActionDeliver.String() != "deliver" ||
		ActionDeliverUnvalidated.String() != "deliver-unvalidated" ||
		ActionRefuse.String() != "refuse" ||
		Action(9).String() != "action(9)" {
		t.Error("Action.String mismatch")
	}
}

// TestValidateLiveTLSChain runs validation against a live TLS MX verifier
// (via pki) rather than a fixture, covering the Verify integration.
func TestValidateNilVerifySkipsCertCheck(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	v.Verify = nil
	ev, err := v.Validate(context.Background(), "example.com", "mx.example.com")
	if err != nil || ev.Action != ActionDeliver || ev.CertProblem != pki.OK {
		t.Errorf("nil verify: ev=%+v err=%v", ev, err)
	}
}

// The transient-DNS error must be recorded even when a cached policy
// serves the evaluation — losing it from JSONL/report output hid real
// resolver trouble behind healthy-looking cache hits.
func TestValidateTransientDNSCacheHitRecordsErr(t *testing.T) {
	v, res, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	servfail := errors.New("SERVFAIL")
	res.errs = map[string]error{"_mta-sts.example.com": servfail}
	ev, err := v.Validate(ctx, "example.com", "mx.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.PolicyFromCache {
		t.Fatalf("expected cache hit: ev=%+v", ev)
	}
	if !errors.Is(ev.RecordErr, servfail) {
		t.Errorf("RecordErr = %v, want the transient DNS failure recorded on the cache-hit path", ev.RecordErr)
	}
}

// With a stale-retaining cache, a policy past max_age whose refetch
// fails keeps enforcing (marked PolicyStale) instead of downgrading.
func TestValidateStaleFallbackWhenFetchFails(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	pc := v.Cache.(*PolicyCache)
	now := time.Now()
	pc.Now = func() time.Time { return now }
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}

	// Expire the policy and break the fetch path.
	now = now.Add(25 * time.Hour)
	pc.StaleWindow = 48 * time.Hour
	v.Fetcher.Resolver = AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
		return nil, errors.New("policy host down")
	})

	ev, err := v.Validate(ctx, "example.com", "rogue.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.PolicyFromCache || !ev.PolicyStale || ev.Action != ActionRefuse {
		t.Errorf("stale fallback: ev=%+v", ev)
	}
	if ev.PolicyErr == nil {
		t.Error("fetch failure not recorded")
	}
}

// Refresh revalidates in place: a failure leaves the cached entry
// untouched; a success replaces it.
func TestRefreshReplacesOnlyOnSuccess(t *testing.T) {
	v, _, _ := newValidatorEnv(t, enforcePolicy, http.StatusOK)
	ctx := context.Background()
	if _, err := v.Validate(ctx, "example.com", "mx.example.com"); err != nil {
		t.Fatal(err)
	}
	pc := v.Cache.(*PolicyCache)
	before, ok := pc.Get("example.com")
	if !ok {
		t.Fatal("policy not cached")
	}

	good := v.Fetcher.Resolver
	v.Fetcher.Resolver = AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
		return nil, errors.New("policy host down")
	})
	if err := v.Refresh(ctx, "example.com"); err == nil {
		t.Fatal("Refresh succeeded with the fetch path down")
	}
	after, ok := pc.Get("example.com")
	if !ok {
		t.Fatal("failed Refresh evicted the cached policy")
	}
	if !after.FetchedAt.Equal(before.FetchedAt) {
		t.Error("failed Refresh replaced the entry")
	}

	v.Fetcher.Resolver = good
	if err := v.Refresh(ctx, "example.com"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	refreshed, ok := pc.Get("example.com")
	if !ok || !refreshed.FetchedAt.After(before.FetchedAt) {
		t.Errorf("successful Refresh did not replace the entry: %+v", refreshed)
	}
}
