package mtasts

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/netsecurelab/mtasts/internal/pki"
)

// Action is the delivery decision of a compliant sender after MTA-STS
// evaluation.
type Action int

// Delivery decisions.
const (
	// ActionDeliver: proceed with delivery over (at least opportunistic) TLS.
	ActionDeliver Action = iota
	// ActionDeliverUnvalidated: proceed despite a validation failure
	// (testing/none mode, or no usable policy — the downgrade window the
	// paper warns about).
	ActionDeliverUnvalidated
	// ActionRefuse: a compliant sender MUST NOT deliver (enforce mode with
	// a failed validation) — the "email delivery failure" outcome counted
	// in Figures 7 and 8.
	ActionRefuse
)

// String returns a short label for the action.
func (a Action) String() string {
	switch a {
	case ActionDeliver:
		return "deliver"
	case ActionDeliverUnvalidated:
		return "deliver-unvalidated"
	case ActionRefuse:
		return "refuse"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// TXTResolver provides the DNS dependency of validation. The production
// implementation is resolver.Client; tests use fixtures.
type TXTResolver interface {
	// ResolveTXT returns all TXT values at name. Absence must be reported
	// via an error satisfying IsNotFound.
	ResolveTXT(ctx context.Context, name string) ([]string, error)
	// IsNotFound classifies resolution errors meaning NXDOMAIN/NODATA.
	IsNotFound(err error) bool
}

// MXVerifier validates the TLS certificate of one MX host; it returns the
// PKIX problem observed when connecting (pki.OK on success). The live
// implementation is smtpclient.Prober; offline pipelines check
// CertProfiles.
type MXVerifier interface {
	VerifyMX(ctx context.Context, mxHost string) (pki.Problem, error)
}

// PolicyStore is the cache dependency of Validator: the sender-side TOFU
// store of RFC 8461 §5. The in-process implementation is PolicyCache; the
// durable, stampede-proof production implementation is
// internal/policycache.Cache.
type PolicyStore interface {
	// Get returns the cached policy for domain if present and fresh.
	Get(domain string) (CachedPolicy, bool)
	// NeedsRefresh reports whether the cached policy (if any) must be
	// refetched: missing, expired, or fetched under a different record id.
	NeedsRefresh(domain, currentRecordID string) bool
	// Store caches a freshly fetched policy under its record id.
	Store(domain string, p Policy, recordID string)
}

// StaleStore is optionally implemented by policy stores that retain
// expired entries for a bounded window. The validator's fallback paths use
// it so a failed refetch keeps enforcing the old policy instead of
// downgrading to unvalidated delivery.
type StaleStore interface {
	GetStale(domain string) (CachedPolicy, bool)
}

// RefreshableStore is optionally implemented by policy stores that can
// enumerate entries due for proactive revalidation (the background
// refresher's work list).
type RefreshableStore interface {
	ExpiringWithin(window time.Duration) []string
}

// FetchCoalescer is optionally implemented by policy stores that collapse
// concurrent policy fetches for one domain into a single execution
// (stampede protection): the first caller runs fetch, concurrent callers
// block and share its result (shared=true). The leader's context governs
// the network operation, so waiters can observe its cancellation error.
type FetchCoalescer interface {
	CoalesceFetch(domain string, fetch func() (Policy, error)) (p Policy, shared bool, err error)
}

// Validator is the sender-side MTA-STS engine: it discovers the record,
// fetches (or reuses) the policy, matches the selected MX, verifies its
// certificate, and renders the delivery decision — the complete flow of
// Figure 1 in the paper.
type Validator struct {
	Resolver TXTResolver
	Fetcher  *Fetcher
	Cache    PolicyStore
	// Verify checks the MX certificate; nil skips certificate validation
	// (the caller handles it during SMTP delivery).
	Verify MXVerifier
}

// Evaluation is the full outcome of validating one (domain, MX) pair.
type Evaluation struct {
	Domain string
	MXHost string

	// RecordFound is true when a syntactically valid record was discovered.
	RecordFound bool
	// RecordErr holds the record discovery/parsing failure, if any.
	RecordErr error
	// Record is the parsed record when RecordFound.
	Record Record

	// PolicyFetched is true when a valid policy was obtained (from cache or
	// network).
	PolicyFetched bool
	// PolicyFromCache marks cache hits.
	PolicyFromCache bool
	// PolicyStale marks a cached policy served past its max_age because
	// revalidation failed — the entry stays within the store's stale
	// window and keeps enforcing until a successful refetch replaces it.
	PolicyStale bool
	// PolicyErr holds the fetch/parse failure, if any.
	PolicyErr error
	// Policy is the effective policy when PolicyFetched.
	Policy Policy

	// MXMatched is true when the MX host matches a policy mx pattern.
	MXMatched bool
	// CertProblem is the MX certificate validation outcome (pki.OK when
	// valid or not checked).
	CertProblem pki.Problem

	// Action is the final delivery decision.
	Action Action
}

// Validate evaluates delivery of mail for domain via mxHost.
//
// Per RFC 8461: no (or unusable) record means MTA-STS does not apply; a
// record without a fetchable policy falls back to any cached policy, and
// otherwise to unvalidated delivery; with a policy in enforce mode, an MX
// mismatch or certificate failure forbids delivery.
func (v *Validator) Validate(ctx context.Context, domain, mxHost string) (Evaluation, error) {
	ev := Evaluation{Domain: domain, MXHost: mxHost, Action: ActionDeliver}

	// Step 1: discover the record.
	txts, err := v.Resolver.ResolveTXT(ctx, "_mta-sts."+domain)
	if err != nil && !v.Resolver.IsNotFound(err) {
		// Transient DNS failure: RFC 8461 says continue with cache if
		// present, else deliver (possibly unvalidated). The error is
		// recorded either way — a cache hit must not erase the failure
		// from JSONL/report output.
		ev.RecordErr = err
		if cached, ok, stale := v.cacheGet(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache, ev.PolicyStale = true, true, stale
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	rec, recErr := DiscoverRecord(txts)
	if recErr != nil {
		ev.RecordErr = recErr
		if errors.Is(recErr, ErrNoRecord) {
			// MTA-STS not deployed; but a cached policy must still be honored
			// until it expires (§5.1 — removal requires a proper wind-down).
			if cached, ok := v.cacheFresh(domain); ok {
				ev.PolicyFetched, ev.PolicyFromCache = true, true
				ev.Policy = cached.Policy
				return v.finish(ctx, ev)
			}
			return ev, nil
		}
		// A malformed record means MTA-STS is treated as not deployed, but
		// cached policies again survive.
		if cached, ok := v.cacheFresh(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache = true, true
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	ev.RecordFound = true
	ev.Record = rec

	// Step 2: policy from cache (fresh, same id) or network.
	if cached, ok := v.cacheFresh(domain); ok && cached.RecordID == rec.ID {
		ev.PolicyFetched, ev.PolicyFromCache = true, true
		ev.Policy = cached.Policy
		return v.finish(ctx, ev)
	}
	policy, fetchErr := v.fetchAndStore(ctx, domain, rec.ID)
	if fetchErr != nil {
		ev.PolicyErr = fetchErr
		// Fetch failure: fall back to a cached policy — possibly stale-id,
		// possibly expired within the stale window. The entry is never
		// evicted on failure; only a successful fetch replaces it.
		if cached, ok, stale := v.cacheGet(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache, ev.PolicyStale = true, true, stale
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		// No usable policy: deliver, unvalidated — the TLS-fallback
		// downgrade the paper highlights (§4.3.3).
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	ev.PolicyFetched = true
	ev.Policy = policy
	return v.finish(ctx, ev)
}

// fetchAndStore retrieves the policy for domain and caches it under
// recordID. When the store coalesces fetches, concurrent calls for one
// domain collapse into a single network fetch (and a single Store); the
// leader performs the write, waiters share the result.
func (v *Validator) fetchAndStore(ctx context.Context, domain, recordID string) (Policy, error) {
	fetch := func() (Policy, error) {
		policy, _, err := v.Fetcher.Fetch(ctx, domain)
		if err != nil {
			return Policy{}, err
		}
		if v.Cache != nil {
			v.Cache.Store(domain, policy, recordID)
		}
		return policy, nil
	}
	if fc, ok := v.Cache.(FetchCoalescer); ok {
		policy, _, err := fc.CoalesceFetch(domain, fetch)
		return policy, err
	}
	return fetch()
}

// Refresh revalidates the cached policy for domain in place: it re-runs
// record discovery and the policy fetch, replacing the cached entry only
// on success. Unlike an eviction-first refetch, any failure — transient
// DNS, a withdrawn record, a dead policy host — leaves the old entry
// serving deliveries until it expires (and through the store's stale
// window after that), so a refresh hiccup can never reopen the
// TLS-fallback downgrade window. This is what RFC 8461 §3.3's "fetch the
// policy file at regular intervals" must mean for a sender that wants to
// keep its §5 TOFU protection.
func (v *Validator) Refresh(ctx context.Context, domain string) error {
	txts, err := v.Resolver.ResolveTXT(ctx, "_mta-sts."+domain)
	if err != nil {
		return fmt.Errorf("mtasts: refresh %s: record discovery: %w", domain, err)
	}
	rec, err := DiscoverRecord(txts)
	if err != nil {
		// Includes ErrNoRecord: a withdrawn record does not clear sender
		// caches (§5.1 — removal requires a proper wind-down).
		return fmt.Errorf("mtasts: refresh %s: %w", domain, err)
	}
	if _, err := v.fetchAndStore(ctx, domain, rec.ID); err != nil {
		return fmt.Errorf("mtasts: refresh %s: %w", domain, err)
	}
	return nil
}

// cacheFresh returns the fresh cached policy for domain, tolerating a nil
// store.
func (v *Validator) cacheFresh(domain string) (CachedPolicy, bool) {
	if v.Cache == nil {
		return CachedPolicy{}, false
	}
	return v.Cache.Get(domain)
}

// cacheGet returns a usable cached policy for the fallback paths: a fresh
// entry when one exists, otherwise — when the store retains expired
// entries — a stale one still inside its retention window. stale reports
// which branch served.
func (v *Validator) cacheGet(domain string) (cached CachedPolicy, ok, stale bool) {
	if v.Cache == nil {
		return CachedPolicy{}, false, false
	}
	if e, ok := v.Cache.Get(domain); ok {
		return e, true, false
	}
	if ss, ok := v.Cache.(StaleStore); ok {
		if e, ok := ss.GetStale(domain); ok {
			return e, true, true
		}
	}
	return CachedPolicy{}, false, false
}

// finish applies MX matching and certificate validation to an evaluation
// that has an effective policy.
func (v *Validator) finish(ctx context.Context, ev Evaluation) (Evaluation, error) {
	policy := ev.Policy
	if policy.Mode == ModeNone {
		// No validation requested.
		ev.MXMatched = policy.Matches(ev.MXHost)
		ev.Action = ActionDeliver
		return ev, nil
	}
	ev.MXMatched = policy.Matches(ev.MXHost)
	if !ev.MXMatched {
		ev.Action = decideOnFailure(policy.Mode)
		return ev, nil
	}
	if v.Verify != nil {
		problem, err := v.Verify.VerifyMX(ctx, ev.MXHost)
		if err != nil {
			return ev, fmt.Errorf("mtasts: verifying MX %s: %w", ev.MXHost, err)
		}
		ev.CertProblem = problem
		if !problem.Valid() {
			ev.Action = decideOnFailure(policy.Mode)
			return ev, nil
		}
	}
	ev.Action = ActionDeliver
	return ev, nil
}

func decideOnFailure(m Mode) Action {
	if m == ModeEnforce {
		return ActionRefuse
	}
	return ActionDeliverUnvalidated
}
