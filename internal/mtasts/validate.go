package mtasts

import (
	"context"
	"errors"
	"fmt"

	"github.com/netsecurelab/mtasts/internal/pki"
)

// Action is the delivery decision of a compliant sender after MTA-STS
// evaluation.
type Action int

// Delivery decisions.
const (
	// ActionDeliver: proceed with delivery over (at least opportunistic) TLS.
	ActionDeliver Action = iota
	// ActionDeliverUnvalidated: proceed despite a validation failure
	// (testing/none mode, or no usable policy — the downgrade window the
	// paper warns about).
	ActionDeliverUnvalidated
	// ActionRefuse: a compliant sender MUST NOT deliver (enforce mode with
	// a failed validation) — the "email delivery failure" outcome counted
	// in Figures 7 and 8.
	ActionRefuse
)

// String returns a short label for the action.
func (a Action) String() string {
	switch a {
	case ActionDeliver:
		return "deliver"
	case ActionDeliverUnvalidated:
		return "deliver-unvalidated"
	case ActionRefuse:
		return "refuse"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// TXTResolver provides the DNS dependency of validation. The production
// implementation is resolver.Client; tests use fixtures.
type TXTResolver interface {
	// ResolveTXT returns all TXT values at name. Absence must be reported
	// via an error satisfying IsNotFound.
	ResolveTXT(ctx context.Context, name string) ([]string, error)
	// IsNotFound classifies resolution errors meaning NXDOMAIN/NODATA.
	IsNotFound(err error) bool
}

// MXVerifier validates the TLS certificate of one MX host; it returns the
// PKIX problem observed when connecting (pki.OK on success). The live
// implementation is smtpclient.Prober; offline pipelines check
// CertProfiles.
type MXVerifier interface {
	VerifyMX(ctx context.Context, mxHost string) (pki.Problem, error)
}

// Validator is the sender-side MTA-STS engine: it discovers the record,
// fetches (or reuses) the policy, matches the selected MX, verifies its
// certificate, and renders the delivery decision — the complete flow of
// Figure 1 in the paper.
type Validator struct {
	Resolver TXTResolver
	Fetcher  *Fetcher
	Cache    *PolicyCache
	// Verify checks the MX certificate; nil skips certificate validation
	// (the caller handles it during SMTP delivery).
	Verify MXVerifier
}

// Evaluation is the full outcome of validating one (domain, MX) pair.
type Evaluation struct {
	Domain string
	MXHost string

	// RecordFound is true when a syntactically valid record was discovered.
	RecordFound bool
	// RecordErr holds the record discovery/parsing failure, if any.
	RecordErr error
	// Record is the parsed record when RecordFound.
	Record Record

	// PolicyFetched is true when a valid policy was obtained (from cache or
	// network).
	PolicyFetched bool
	// PolicyFromCache marks cache hits.
	PolicyFromCache bool
	// PolicyErr holds the fetch/parse failure, if any.
	PolicyErr error
	// Policy is the effective policy when PolicyFetched.
	Policy Policy

	// MXMatched is true when the MX host matches a policy mx pattern.
	MXMatched bool
	// CertProblem is the MX certificate validation outcome (pki.OK when
	// valid or not checked).
	CertProblem pki.Problem

	// Action is the final delivery decision.
	Action Action
}

// Validate evaluates delivery of mail for domain via mxHost.
//
// Per RFC 8461: no (or unusable) record means MTA-STS does not apply; a
// record without a fetchable policy falls back to any cached policy, and
// otherwise to unvalidated delivery; with a policy in enforce mode, an MX
// mismatch or certificate failure forbids delivery.
func (v *Validator) Validate(ctx context.Context, domain, mxHost string) (Evaluation, error) {
	ev := Evaluation{Domain: domain, MXHost: mxHost, Action: ActionDeliver}

	// Step 1: discover the record.
	txts, err := v.Resolver.ResolveTXT(ctx, "_mta-sts."+domain)
	if err != nil && !v.Resolver.IsNotFound(err) {
		// Transient DNS failure: RFC 8461 says continue with cache if
		// present, else deliver (possibly unvalidated).
		if cached, ok := v.cacheGet(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache = true, true
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		ev.RecordErr = err
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	rec, recErr := DiscoverRecord(txts)
	if recErr != nil {
		ev.RecordErr = recErr
		if errors.Is(recErr, ErrNoRecord) {
			// MTA-STS not deployed; but a cached policy must still be honored
			// until it expires (§5.1 — removal requires a proper wind-down).
			if cached, ok := v.cacheGet(domain); ok {
				ev.PolicyFetched, ev.PolicyFromCache = true, true
				ev.Policy = cached.Policy
				return v.finish(ctx, ev)
			}
			return ev, nil
		}
		// A malformed record means MTA-STS is treated as not deployed, but
		// cached policies again survive.
		if cached, ok := v.cacheGet(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache = true, true
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	ev.RecordFound = true
	ev.Record = rec

	// Step 2: policy from cache (same id) or network.
	if v.Cache != nil && !v.Cache.NeedsRefresh(domain, rec.ID) {
		cached, _ := v.Cache.Get(domain)
		ev.PolicyFetched, ev.PolicyFromCache = true, true
		ev.Policy = cached.Policy
		return v.finish(ctx, ev)
	}
	policy, _, fetchErr := v.Fetcher.Fetch(ctx, domain)
	if fetchErr != nil {
		ev.PolicyErr = fetchErr
		// Fetch failure: fall back to a cached (possibly stale-id) policy.
		if cached, ok := v.cacheGet(domain); ok {
			ev.PolicyFetched, ev.PolicyFromCache = true, true
			ev.Policy = cached.Policy
			return v.finish(ctx, ev)
		}
		// No usable policy: deliver, unvalidated — the TLS-fallback
		// downgrade the paper highlights (§4.3.3).
		ev.Action = ActionDeliverUnvalidated
		return ev, nil
	}
	ev.PolicyFetched = true
	ev.Policy = policy
	if v.Cache != nil {
		v.Cache.Store(domain, policy, rec.ID)
	}
	return v.finish(ctx, ev)
}

func (v *Validator) cacheGet(domain string) (CachedPolicy, bool) {
	if v.Cache == nil {
		return CachedPolicy{}, false
	}
	return v.Cache.Get(domain)
}

// finish applies MX matching and certificate validation to an evaluation
// that has an effective policy.
func (v *Validator) finish(ctx context.Context, ev Evaluation) (Evaluation, error) {
	policy := ev.Policy
	if policy.Mode == ModeNone {
		// No validation requested.
		ev.MXMatched = policy.Matches(ev.MXHost)
		ev.Action = ActionDeliver
		return ev, nil
	}
	ev.MXMatched = policy.Matches(ev.MXHost)
	if !ev.MXMatched {
		ev.Action = decideOnFailure(policy.Mode)
		return ev, nil
	}
	if v.Verify != nil {
		problem, err := v.Verify.VerifyMX(ctx, ev.MXHost)
		if err != nil {
			return ev, fmt.Errorf("mtasts: verifying MX %s: %w", ev.MXHost, err)
		}
		ev.CertProblem = problem
		if !problem.Valid() {
			ev.Action = decideOnFailure(policy.Mode)
			return ev, nil
		}
	}
	ev.Action = ActionDeliver
	return ev, nil
}

func decideOnFailure(m Mode) Action {
	if m == ModeEnforce {
		return ActionRefuse
	}
	return ActionDeliverUnvalidated
}
