package mtasts

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRecordValid(t *testing.T) {
	cases := []struct {
		in     string
		wantID string
		exts   int
	}{
		{"v=STSv1; id=20240431;", "20240431", 0},
		{"v=STSv1; id=20240431", "20240431", 0},
		{"v=STSv1;id=abc123", "abc123", 0},
		{"v=STSv1; id=A1", "A1", 0},
		{"v = STSv1 ; id = 20240431 ;", "20240431", 0}, // *WSP around delimiters
		{"v=STSv1; id=1; ext-1=value1", "1", 1},
		{"v=STSv1; id=1; e_x.t2=ok; another=x", "1", 2},
	}
	for _, c := range cases {
		rec, err := ParseRecord(c.in)
		if err != nil {
			t.Errorf("ParseRecord(%q): %v", c.in, err)
			continue
		}
		if rec.ID != c.wantID || rec.Version != Version || len(rec.Extensions) != c.exts {
			t.Errorf("ParseRecord(%q) = %+v", c.in, rec)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"v=STSv1;", ErrMissingID},                           // paper: 19.6% no id
		{"v=STSv1", ErrMissingID},                            //
		{"v=STSv1; id=2024-04-31", ErrBadID},                 // paper: 61% invalid id ('-')
		{"v=STSv1; id=", ErrBadID},                           //
		{"v=STSv1; id=" + strings.Repeat("a", 33), ErrBadID}, // >32 chars
		{"v=STSv1; id=has space", ErrBadID},                  //
		{"v=STSv2; id=1", ErrBadVersion},                     // paper: 15.7% bad version
		{"V=STSv1; id=1", ErrBadVersion},                     // case-sensitive
		{"v=stsv1; id=1", ErrBadVersion},                     //
		{"id=1; v=STSv1", ErrBadVersion},                     // v not first
		{"v=STSv1; id=1; mx: a.com", ErrBadExtension},        // paper's example of bad extension
		{"v=STSv1; id=1; =value", ErrBadExtension},           // empty ext name
		{"v=STSv1; id=1; name=", ErrBadExtension},            // empty ext value
		{"v=STSv1; id=1; 0bad name=x", ErrBadExtension},      // space in name
		{"v=STSv1; id=1; ;x=1", ErrBadExtension},             // empty inner field
		{"v=STSv1; id=1; id=2", ErrDuplicateField},           // duplicate id
		{"v=STSv1; id=1; a=1; a=2", ErrDuplicateField},       // duplicate ext
		{"v=STSv1; id=1; noequals", ErrBadExtension},         // field without '='
		{"v=STSv1; id=1; bad=va;lue", ErrBadExtension},       // split produces bad field
		{"v=STSv1; id=1; bad=v\x7fl", ErrBadExtension},       // non-printable
	}
	for _, c := range cases {
		_, err := ParseRecord(c.in)
		if !errors.Is(err, c.wantErr) {
			t.Errorf("ParseRecord(%q) err = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

func TestDiscoverRecord(t *testing.T) {
	// Exactly one STS record among unrelated TXT values.
	rec, err := DiscoverRecord([]string{
		"google-site-verification=xyz",
		"v=STSv1; id=20240431;",
		"v=spf1 -all",
	})
	if err != nil || rec.ID != "20240431" {
		t.Errorf("DiscoverRecord = %+v, %v", rec, err)
	}

	// No record at all.
	_, err = DiscoverRecord([]string{"v=spf1 -all"})
	if !errors.Is(err, ErrNoRecord) {
		t.Errorf("want ErrNoRecord, got %v", err)
	}
	_, err = DiscoverRecord(nil)
	if !errors.Is(err, ErrNoRecord) {
		t.Errorf("want ErrNoRecord for empty set, got %v", err)
	}

	// Multiple STS records: treated as not deployed per RFC 8461.
	_, err = DiscoverRecord([]string{"v=STSv1; id=1", "v=STSv1; id=2"})
	if !errors.Is(err, ErrMultipleRecords) {
		t.Errorf("want ErrMultipleRecords, got %v", err)
	}

	// A malformed STS attempt is classified as a bad version, not absence.
	_, err = DiscoverRecord([]string{"v=STSV1; id=1"})
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("want ErrBadVersion for malformed attempt, got %v", err)
	}
}

func TestHasRecordPrefix(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"v=STSv1; id=1", true},
		{"v=STSv1", true},
		{"v = STSv1; id=1", true},
		{"v=STSv11; id=1", false}, // version token must end at a delimiter
		{"v=STSv1x", false},
		{"v=spf1 -all", false},
		{"x=STSv1", false},
		{"", false},
	}
	for _, c := range cases {
		if got := HasRecordPrefix(c.in); got != c.want {
			t.Errorf("HasRecordPrefix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: a parsed record re-serializes to a string that parses to the
// same record (canonical round-trip).
func TestRecordRoundTrip(t *testing.T) {
	ids := []string{"1", "20240431", "abcDEF123", strings.Repeat("z", 32)}
	for _, id := range ids {
		rec := Record{Version: Version, ID: id, Extensions: []Field{{"ext", "val"}}}
		rec2, err := ParseRecord(rec.String())
		if err != nil {
			t.Errorf("round-trip parse of %q: %v", rec.String(), err)
			continue
		}
		if rec2.ID != rec.ID || len(rec2.Extensions) != 1 || rec2.Extensions[0] != rec.Extensions[0] {
			t.Errorf("round-trip mismatch: %+v vs %+v", rec2, rec)
		}
	}
}

// Property: ParseRecord never panics and never returns both a zero error
// and an empty ID.
func TestParseRecordTotal(t *testing.T) {
	f := func(s string) bool {
		rec, err := ParseRecord(s)
		if err == nil && rec.ID == "" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
