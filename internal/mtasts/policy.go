package mtasts

import (
	"fmt"
	"strings"

	"github.com/netsecurelab/mtasts/internal/errtax"
)

// Mode is the sender behavior a policy requests on validation failure.
type Mode string

// The three modes of RFC 8461 §3.2.
const (
	// ModeEnforce: sending MTAs MUST NOT deliver to hosts that fail
	// MX matching or TLS validation.
	ModeEnforce Mode = "enforce"
	// ModeTesting: validate and report, but deliver anyway.
	ModeTesting Mode = "testing"
	// ModeNone: no active policy; deliver as if MTA-STS were absent.
	ModeNone Mode = "none"
)

// Valid reports whether m is one of the three defined modes.
func (m Mode) Valid() bool {
	return m == ModeEnforce || m == ModeTesting || m == ModeNone
}

// MaxMaxAge is the largest max_age RFC 8461 allows (about one year).
const MaxMaxAge = 31557600

// Policy parse/semantic error kinds (the §4.3.3 "Policy Syntax"
// taxonomy), typed into the policy-retrieval category of the scan error
// taxonomy (docs/ERRORS.md). Version and mx-pattern failures carry their
// own codes because the paper tabulates them separately; every other
// parse failure shares the generic parse code. All are persistent.
var (
	ErrEmptyPolicy      = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: empty policy file")
	ErrPolicyVersion    = errtax.New(errtax.LayerFetch, errtax.CodeVersionMismatch, false, "mtasts: missing or invalid policy version")
	ErrPolicyMode       = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: missing or invalid mode")
	ErrPolicyMaxAge     = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: missing or invalid max_age")
	ErrPolicyNoMX       = errtax.New(errtax.LayerFetch, errtax.CodeBadMXPattern, false, "mtasts: no mx entry in enforce/testing policy")
	ErrPolicyBadMX      = errtax.New(errtax.LayerFetch, errtax.CodeBadMXPattern, false, "mtasts: invalid mx pattern")
	ErrPolicyLine       = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: malformed policy line")
	ErrPolicyDuplicate  = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: duplicate policy field")
	ErrPolicyTooLarge   = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: policy file exceeds size limit")
	ErrPolicyNotCRLF    = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: policy lines not terminated by LF/CRLF")
	ErrPolicyBadCharset = errtax.New(errtax.LayerFetch, errtax.CodeParse, false, "mtasts: policy contains non-ASCII bytes")
)

// MaxPolicySize is the largest policy body the fetcher accepts (RFC 8461
// recommends senders enforce a sane cap; 64 KiB matches common MTAs).
const MaxPolicySize = 64 * 1024

// Policy is a parsed MTA-STS policy file.
type Policy struct {
	Version string
	Mode    Mode
	// MaxAge is the cache lifetime in seconds.
	MaxAge int64
	// MXPatterns are the allowed MX patterns, in file order. Patterns may
	// begin with "*." to match exactly one leftmost label.
	MXPatterns []string
	// Extensions preserves unrecognized fields.
	Extensions []Field
}

// String serializes the policy in canonical CRLF-terminated form.
func (p Policy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "version: %s\r\n", p.Version)
	fmt.Fprintf(&sb, "mode: %s\r\n", p.Mode)
	for _, mx := range p.MXPatterns {
		fmt.Fprintf(&sb, "mx: %s\r\n", mx)
	}
	fmt.Fprintf(&sb, "max_age: %d\r\n", p.MaxAge)
	for _, f := range p.Extensions {
		fmt.Fprintf(&sb, "%s: %s\r\n", f.Name, f.Value)
	}
	return sb.String()
}

// ParsePolicy parses a policy file body per RFC 8461 §3.2. It enforces:
// exactly one version/mode/max_age, version "STSv1", a known mode, numeric
// max_age within [0, MaxMaxAge], at least one syntactically valid mx when
// the mode is enforce or testing, and ASCII content.
func ParsePolicy(body []byte) (Policy, error) {
	var p Policy
	if len(body) > MaxPolicySize {
		return p, fmt.Errorf("%w: %d bytes", ErrPolicyTooLarge, len(body))
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		// The empty policy files served by opted-out delegation providers
		// (§5) land here.
		return p, ErrEmptyPolicy
	}
	for _, b := range body {
		if b > 0x7E || (b < 0x20 && b != '\r' && b != '\n' && b != '\t') {
			return p, fmt.Errorf("%w: byte %#x", ErrPolicyBadCharset, b)
		}
	}
	text := string(body)
	lines := strings.Split(text, "\n")
	seen := map[string]bool{}
	var maxAgeSet bool
	for i, line := range lines {
		line = strings.TrimSuffix(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return p, fmt.Errorf("%w: line %d %q", ErrPolicyLine, i+1, clip(line))
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "version":
			if seen[key] {
				return p, fmt.Errorf("%w: version", ErrPolicyDuplicate)
			}
			if value != Version {
				return p, fmt.Errorf("%w: %q", ErrPolicyVersion, clip(value))
			}
			p.Version = value
		case "mode":
			if seen[key] {
				return p, fmt.Errorf("%w: mode", ErrPolicyDuplicate)
			}
			m := Mode(value)
			if !m.Valid() {
				return p, fmt.Errorf("%w: %q", ErrPolicyMode, clip(value))
			}
			p.Mode = m
		case "max_age":
			if seen[key] {
				return p, fmt.Errorf("%w: max_age", ErrPolicyDuplicate)
			}
			n, err := parseMaxAge(value)
			if err != nil {
				return p, err
			}
			p.MaxAge = n
			maxAgeSet = true
		case "mx":
			if err := CheckMXPattern(value); err != nil {
				return p, err
			}
			p.MXPatterns = append(p.MXPatterns, strings.ToLower(value))
		default:
			if !validExtName(key) {
				return p, fmt.Errorf("%w: line %d key %q", ErrPolicyLine, i+1, clip(key))
			}
			p.Extensions = append(p.Extensions, Field{Name: key, Value: value})
		}
		seen[key] = true
	}
	if p.Version == "" {
		return p, fmt.Errorf("%w: version absent", ErrPolicyVersion)
	}
	if p.Mode == "" {
		return p, fmt.Errorf("%w: mode absent", ErrPolicyMode)
	}
	if !maxAgeSet {
		return p, fmt.Errorf("%w: max_age absent", ErrPolicyMaxAge)
	}
	if len(p.MXPatterns) == 0 && p.Mode != ModeNone {
		return p, ErrPolicyNoMX
	}
	return p, nil
}

func parseMaxAge(value string) (int64, error) {
	if value == "" || len(value) > 10 {
		return 0, fmt.Errorf("%w: %q", ErrPolicyMaxAge, clip(value))
	}
	var n int64
	for i := 0; i < len(value); i++ {
		c := value[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("%w: %q", ErrPolicyMaxAge, clip(value))
		}
		n = n*10 + int64(c-'0')
	}
	if n > MaxMaxAge {
		return 0, fmt.Errorf("%w: %d exceeds maximum %d", ErrPolicyMaxAge, n, MaxMaxAge)
	}
	return n, nil
}

// CheckMXPattern validates one mx pattern: a hostname of LDH labels,
// optionally prefixed by "*." (wildcard covering exactly one label). The
// malformed patterns the paper observed — email addresses, trailing dots,
// empty values — are all rejected here.
func CheckMXPattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("%w: empty pattern", ErrPolicyBadMX)
	}
	host := pattern
	if rest, ok := strings.CutPrefix(host, "*."); ok {
		host = rest
		if host == "" {
			return fmt.Errorf("%w: %q", ErrPolicyBadMX, pattern)
		}
	}
	if strings.Contains(host, "*") {
		return fmt.Errorf("%w: wildcard only allowed as leftmost label: %q", ErrPolicyBadMX, pattern)
	}
	if strings.ContainsAny(host, "@/ \t") {
		return fmt.Errorf("%w: %q", ErrPolicyBadMX, pattern)
	}
	if strings.HasSuffix(host, ".") {
		return fmt.Errorf("%w: trailing dot in %q", ErrPolicyBadMX, pattern)
	}
	if len(host) > 253 {
		return fmt.Errorf("%w: %q too long", ErrPolicyBadMX, pattern)
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return fmt.Errorf("%w: %q has a single label", ErrPolicyBadMX, pattern)
	}
	for _, l := range labels {
		if !validLDHLabel(l) {
			return fmt.Errorf("%w: label %q in %q", ErrPolicyBadMX, clip(l), pattern)
		}
	}
	return nil
}

func validLDHLabel(l string) bool {
	if l == "" || len(l) > 63 {
		return false
	}
	for i := 0; i < len(l); i++ {
		c := l[i]
		alnum := 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
		if !alnum && c != '-' && c != '_' {
			return false
		}
	}
	return l[0] != '-' && l[len(l)-1] != '-'
}
