package mtasts

import (
	"fmt"
	"testing"
	"time"
)

func testPolicy(maxAge int64) Policy {
	return Policy{Version: Version, Mode: ModeEnforce, MaxAge: maxAge,
		MXPatterns: []string{"mx.example.com"}}
}

func TestCacheStoreGet(t *testing.T) {
	now := time.Unix(1000, 0)
	pc := NewPolicyCache(10)
	pc.Now = func() time.Time { return now }

	pc.Store("example.com", testPolicy(3600), "id1")
	e, ok := pc.Get("example.com")
	if !ok || e.RecordID != "id1" || e.Policy.MaxAge != 3600 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}

	// Within max_age: fresh.
	now = now.Add(59 * time.Minute)
	if _, ok := pc.Get("example.com"); !ok {
		t.Error("entry expired too early")
	}
	// Beyond max_age: expired.
	now = now.Add(2 * time.Minute)
	if _, ok := pc.Get("example.com"); ok {
		t.Error("entry should have expired")
	}
}

func TestCacheNeedsRefresh(t *testing.T) {
	now := time.Unix(1000, 0)
	pc := NewPolicyCache(10)
	pc.Now = func() time.Time { return now }

	if !pc.NeedsRefresh("example.com", "id1") {
		t.Error("empty cache must need refresh")
	}
	pc.Store("example.com", testPolicy(3600), "id1")
	if pc.NeedsRefresh("example.com", "id1") {
		t.Error("same id must not need refresh")
	}
	// The id changed in DNS: refetch even though max_age has not elapsed.
	if !pc.NeedsRefresh("example.com", "id2") {
		t.Error("changed id must need refresh")
	}
}

func TestCacheZeroMaxAgeNotStored(t *testing.T) {
	pc := NewPolicyCache(10)
	pc.Store("example.com", testPolicy(0), "id1")
	if pc.Len() != 0 {
		t.Error("zero max_age should not be cached")
	}
}

func TestCacheEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	pc := NewPolicyCache(3)
	pc.Now = func() time.Time { return now }
	for i := 0; i < 3; i++ {
		pc.Store(fmt.Sprintf("d%d.example", i), testPolicy(int64(100*(i+1))), "id")
	}
	// Full: inserting a new domain evicts the earliest-expiring (d0).
	pc.Store("d3.example", testPolicy(1000), "id")
	if pc.Len() != 3 {
		t.Fatalf("Len = %d", pc.Len())
	}
	if _, ok := pc.Get("d0.example"); ok {
		t.Error("d0 should have been evicted")
	}
	if _, ok := pc.Get("d3.example"); !ok {
		t.Error("d3 should be present")
	}
	// Updating an existing entry does not evict.
	pc.Store("d3.example", testPolicy(2000), "id2")
	if pc.Len() != 3 {
		t.Errorf("update changed Len to %d", pc.Len())
	}
}

func TestCacheInvalidate(t *testing.T) {
	pc := NewPolicyCache(10)
	pc.Store("example.com", testPolicy(3600), "id1")
	pc.Invalidate("example.com")
	if _, ok := pc.Get("example.com"); ok {
		t.Error("Invalidate did not remove entry")
	}
}

// Property: cache freshness is exactly t < FetchedAt + MaxAge.
func TestCachedPolicyFresh(t *testing.T) {
	base := time.Unix(5000, 0)
	e := CachedPolicy{FetchedAt: base, Expires: base.Add(100 * time.Second)}
	if !e.Fresh(base.Add(99 * time.Second)) {
		t.Error("99s should be fresh")
	}
	if e.Fresh(base.Add(100 * time.Second)) {
		t.Error("exactly max_age should be stale")
	}
}

func TestCacheConcurrent(t *testing.T) {
	pc := NewPolicyCache(100)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			d := fmt.Sprintf("d%d.example", i)
			for j := 0; j < 500; j++ {
				pc.Store(d, testPolicy(60), "id")
				pc.Get(d)
				pc.NeedsRefresh(d, "id")
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestCacheGetStaleWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	pc := NewPolicyCache(10)
	pc.Now = func() time.Time { return now }
	pc.StaleWindow = time.Hour
	pc.Store("example.com", testPolicy(60), "id1")

	// Expired but inside the stale window: Get misses, GetStale serves,
	// and the entry is retained for a later successful refetch.
	now = now.Add(10 * time.Minute)
	if _, ok := pc.Get("example.com"); ok {
		t.Error("expired entry served as fresh")
	}
	if e, ok := pc.GetStale("example.com"); !ok || e.RecordID != "id1" {
		t.Error("expired entry not served stale inside the window")
	}
	if pc.Len() != 1 {
		t.Error("expired entry evicted inside the stale window")
	}

	// Beyond the stale window: gone for good.
	now = now.Add(2 * time.Hour)
	if _, ok := pc.GetStale("example.com"); ok {
		t.Error("entry served beyond the stale window")
	}
	if pc.Len() != 0 {
		t.Error("beyond-window entry not pruned")
	}
}

func TestCacheExpiringWithinBoundaries(t *testing.T) {
	now := time.Unix(1000, 0)
	pc := NewPolicyCache(10)
	pc.Now = func() time.Time { return now }
	pc.StaleWindow = time.Hour

	pc.Store("exact.example", testPolicy(600), "id") // expires exactly at the deadline
	pc.Store("later.example", testPolicy(601), "id") // expires just past it
	pc.Store("lapsed.example", testPolicy(60), "id") // expires before the first tick
	now = now.Add(2 * time.Minute)                   // lapsed.example now expired

	got := map[string]bool{}
	for _, d := range pc.ExpiringWithin(8 * time.Minute) {
		got[d] = true
	}
	if !got["exact.example"] {
		t.Error("deadline must be inclusive: an entry expiring exactly at now+window was skipped")
	}
	if got["later.example"] {
		t.Error("entry past the window included")
	}
	if !got["lapsed.example"] {
		t.Error("recently-expired entry skipped: it would never be refreshed and silently die")
	}

	// Beyond the stale window the lapsed entry stops being refreshable.
	now = now.Add(90 * time.Minute)
	for _, d := range pc.ExpiringWithin(8 * time.Minute) {
		if d == "lapsed.example" {
			t.Error("entry beyond the stale window still offered for refresh")
		}
	}
}
