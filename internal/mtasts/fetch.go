package mtasts

import (
	"bufio"
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/retry"
)

// Stage identifies where in the policy retrieval pipeline a failure
// occurred — the exact error breakdown of Figure 5 in the paper.
type Stage int

// Retrieval stages.
const (
	// StageNone: no failure.
	StageNone Stage = iota
	// StageDNS: the policy host name did not resolve.
	StageDNS
	// StageTCP: TCP connection to port 443 failed (closed port, timeout).
	StageTCP
	// StageTLS: the TLS handshake failed (bad certificate, alert).
	StageTLS
	// StageHTTP: the HTTP exchange failed (non-200, malformed response).
	StageHTTP
	// StageSyntax: the body was fetched but is not a valid policy.
	StageSyntax
)

// String returns the figure label for the stage.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageDNS:
		return "DNS"
	case StageTCP:
		return "TCP"
	case StageTLS:
		return "TLS"
	case StageHTTP:
		return "HTTP"
	case StageSyntax:
		return "Policy Syntax"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Key returns the stable lowercase identifier used as the final segment
// of metric names ("mtasts.fetch.errors.tls", "scan.policy.stage_errors.dns").
func (s Stage) Key() string {
	switch s {
	case StageNone:
		return "none"
	case StageDNS:
		return "dns"
	case StageTCP:
		return "tcp"
	case StageTLS:
		return "tls"
	case StageHTTP:
		return "http"
	case StageSyntax:
		return "syntax"
	}
	return fmt.Sprintf("stage%d", int(s))
}

// FetchError wraps a retrieval failure with its pipeline stage and — for
// TLS failures — the PKIX problem classification.
type FetchError struct {
	Stage       Stage
	CertProblem pki.Problem // meaningful when Stage == StageTLS
	HTTPStatus  int         // meaningful when Stage == StageHTTP and a response arrived
	Err         error
}

// Error implements the error interface.
func (e *FetchError) Error() string {
	return fmt.Sprintf("mtasts: policy fetch failed at %s stage: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error.
func (e *FetchError) Unwrap() error { return e.Err }

// Tax positions the failure in the scan error taxonomy: the stage picks
// the code (a syntax failure refines to the wrapped parse error's own
// code), and the transient bit reproduces the retry classification —
// stage verdicts that reflect the deployment itself (a certificate that
// fails PKIX validation, a non-5xx HTTP status, a policy syntax error)
// are persistent, while socket-level failures at any stage (timeouts,
// resets, dropped DNS) are transient.
func (e *FetchError) Tax() *errtax.Error {
	code := errtax.CodeParse
	transient := false
	switch e.Stage {
	case StageDNS:
		code, transient = errtax.CodeDNSLookup, errtax.Transient(e.Err)
	case StageTCP:
		code, transient = errtax.CodeTCPConnect, errtax.TransientNet(e.Err)
	case StageTLS:
		// A completed handshake that failed certificate verification is a
		// deployment verdict; anything below that (reset, EOF, timeout)
		// is the network.
		code = errtax.CodeTLSHandshake
		var cve *tls.CertificateVerificationError
		if !errors.As(e.Err, &cve) {
			transient = errtax.TransientNet(e.Err)
		}
	case StageHTTP:
		code = errtax.CodeHTTPStatus
		if e.HTTPStatus != 0 {
			// The server answered: only 429/5xx suggest a passing condition.
			transient = e.HTTPStatus == http.StatusTooManyRequests || e.HTTPStatus >= 500
		} else {
			transient = errtax.TransientNet(e.Err)
		}
	case StageSyntax:
		if c, ok := errtax.CodeOf(e.Err); ok {
			code = c
		}
	}
	return errtax.Wrap(errtax.LayerFetch, code, transient, e)
}

// As surfaces the computed taxonomy position to errors.As, so consumers
// (errtax.Transient, the scanner's code extraction) see a typed error
// without the fetcher allocating one on the success path.
func (e *FetchError) As(target any) bool {
	if t, ok := target.(**errtax.Error); ok {
		*t = e.Tax()
		return true
	}
	return false
}

// PolicyHost returns the conventional policy host name for a policy
// domain: "mta-sts." + domain (RFC 8461 §3.3).
func PolicyHost(domain string) string { return "mta-sts." + domain }

// WellKnownPath is the fixed HTTPS path of the policy file.
const WellKnownPath = "/.well-known/mta-sts.txt"

// PolicyURL returns the full HTTPS URL of a domain's policy file.
func PolicyURL(domain string) string {
	return "https://" + PolicyHost(domain) + WellKnownPath
}

// AddrResolver resolves a host name to dialable addresses. The production
// implementation is the resolver package; tests may supply fixtures.
type AddrResolver interface {
	// ResolveAddrs returns candidate "ip" strings (no port) for host.
	ResolveAddrs(ctx context.Context, host string) ([]string, error)
}

// AddrResolverFunc adapts a function to AddrResolver.
type AddrResolverFunc func(ctx context.Context, host string) ([]string, error)

// ResolveAddrs implements AddrResolver.
func (f AddrResolverFunc) ResolveAddrs(ctx context.Context, host string) ([]string, error) {
	return f(ctx, host)
}

// Fetcher retrieves MTA-STS policies over HTTPS with the constraints
// RFC 8461 imposes on senders: HTTPS only, certificate validation against
// the web PKI, no redirects, and a bounded body size.
type Fetcher struct {
	// Resolver maps the policy host to IP addresses. When nil, the system
	// resolver (net.DefaultResolver) is used.
	Resolver AddrResolver
	// RootCAs is the trust store for the HTTPS connection. Nil means the
	// system store.
	RootCAs *x509.CertPool
	// Timeout bounds the entire fetch. Zero means 10s.
	Timeout time.Duration
	// Port overrides the HTTPS port (for loopback test servers). Zero
	// means 443.
	Port int
	// Now anchors certificate validation time; nil means time.Now.
	Now func() time.Time
	// Obs, when non-nil, receives per-stage fetch latencies
	// (mtasts.fetch.{dns,tcp_dial,tls_handshake,http,parse}.seconds) and
	// outcome counters keyed by Stage (mtasts.fetch.errors.<stage>).
	Obs *obs.Registry
	// MaxAttempts bounds attempts per fetch, retrying transient failures
	// (per FetchError.Tax, consulted through errtax.Transient) with
	// backoff; each attempt gets a fresh Timeout. Zero or one means a
	// single attempt.
	MaxAttempts int
	// RetryBase overrides the first backoff delay (default 100ms).
	RetryBase time.Duration
	// RetryBudget, when non-nil, caps total retries across the run.
	RetryBudget *retry.Budget
	// SessionCache, when non-nil, enables TLS session resumption across
	// fetches from this Fetcher. A scan shares one Fetcher across all
	// its domains, so repeated fetches against the same provider skip
	// the full handshake; crypto/tls keys the cache by server name, so
	// sessions never leak across policy hosts. Resumed connections
	// still surface the original certificate chain in ConnectionState,
	// so certificate classification is unaffected.
	SessionCache tls.ClientSessionCache
}

// Fetch retrieves and parses the policy for domain. The raw body (possibly
// nil) is returned alongside the policy so scanners can archive it.
func (f *Fetcher) Fetch(ctx context.Context, domain string) (Policy, []byte, error) {
	return f.FetchFromHost(ctx, domain, PolicyHost(domain))
}

// FetchFromHost retrieves the policy for domain from an explicit policy
// host (the two differ only in diagnostic scenarios).
func (f *Fetcher) FetchFromHost(ctx context.Context, domain, host string) (Policy, []byte, error) {
	sp := f.Obs.StartSpan("mtasts.fetch")
	var policy Policy
	var body []byte
	err := retry.Policy{
		Name:        "mtasts.fetch",
		MaxAttempts: f.MaxAttempts,
		BaseDelay:   f.RetryBase,
		Budget:      f.RetryBudget,
		Obs:         f.Obs,
	}.Do(ctx, func(ctx context.Context) error {
		var opErr error
		policy, body, opErr = f.fetchFromHost(ctx, domain, host)
		return opErr
	})
	sp.EndErr(err)
	if f.Obs.Enabled() {
		if err == nil {
			f.Obs.Counter("mtasts.fetch.ok").Inc()
		} else {
			f.Obs.Counter("mtasts.fetch.errors." + StageOf(err).Key()).Inc()
		}
	}
	return policy, body, err
}

func (f *Fetcher) fetchFromHost(ctx context.Context, domain, host string) (Policy, []byte, error) {
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Stage 1: DNS. Resolve explicitly so resolution failures are
	// attributable (the http transport would fold them into dial errors).
	dnsSpan := f.Obs.StartSpan("mtasts.fetch.dns")
	addrs, err := f.resolveAddrs(ctx, host)
	dnsSpan.EndErr(err)
	if err != nil || len(addrs) == 0 {
		if err == nil {
			err = fmt.Errorf("no addresses for %s", host)
		}
		return Policy{}, nil, &FetchError{Stage: StageDNS, Err: err}
	}

	port := "443"
	if f.Port != 0 {
		port = fmt.Sprintf("%d", f.Port)
	}

	// Stage 2: TCP.
	dialSpan := f.Obs.StartSpan("mtasts.fetch.tcp_dial")
	dialer := &net.Dialer{}
	var conn net.Conn
	var dialErr error
	for _, addr := range addrs {
		conn, dialErr = dialer.DialContext(ctx, "tcp", net.JoinHostPort(addr, port))
		if dialErr == nil {
			break
		}
	}
	dialSpan.EndErr(dialErr)
	if dialErr != nil {
		return Policy{}, nil, &FetchError{Stage: StageTCP, Err: dialErr}
	}
	defer conn.Close()

	// Stage 3: TLS handshake with PKIX validation for the policy host name.
	tlsConf := &tls.Config{
		ServerName:         host,
		RootCAs:            f.RootCAs,
		MinVersion:         tls.VersionTLS12,
		ClientSessionCache: f.SessionCache,
	}
	if f.Now != nil {
		tlsConf.Time = f.Now
	}
	tlsConn := tls.Client(conn, tlsConf)
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	tlsSpan := f.Obs.StartSpan("mtasts.fetch.tls_handshake")
	if err := tlsConn.HandshakeContext(ctx); err != nil {
		tlsSpan.EndErr(err)
		var leaf *x509.Certificate
		var certErr *tls.CertificateVerificationError
		if errors.As(err, &certErr) && len(certErr.UnverifiedCertificates) > 0 {
			leaf = certErr.UnverifiedCertificates[0]
		}
		return Policy{}, nil, &FetchError{
			Stage:       StageTLS,
			CertProblem: pki.ClassifyVerifyError(err, leaf),
			Err:         err,
		}
	}
	tlsSpan.End()

	// Stage 4: HTTP. A single GET over the established connection; 3xx
	// responses MUST NOT be followed (RFC 8461 §3.3), so any non-200 is an
	// HTTP-stage failure.
	httpSpan := f.Obs.StartSpan("mtasts.fetch.http")
	body, status, contentType, err := httpGet(ctx, tlsConn, host)
	if err != nil {
		httpSpan.EndErr(err)
		return Policy{}, nil, &FetchError{Stage: StageHTTP, HTTPStatus: status, Err: err}
	}
	httpSpan.End()
	// RFC 8461 §3.3: the media type SHOULD be text/plain. Senders in the
	// wild accept other types, so a mismatch is measured (it is a real
	// misconfiguration signal) but does not fail the fetch.
	if !isTextPlain(contentType) {
		f.Obs.Counter("mtasts.fetch.wrong_content_type").Inc()
	}
	if status != http.StatusOK {
		return Policy{}, body, &FetchError{
			Stage:      StageHTTP,
			HTTPStatus: status,
			Err:        fmt.Errorf("HTTP status %d", status),
		}
	}

	// Stage 5: policy syntax.
	parseSpan := f.Obs.StartSpan("mtasts.fetch.parse")
	policy, err := ParsePolicy(body)
	parseSpan.EndErr(err)
	if err != nil {
		return Policy{}, body, &FetchError{Stage: StageSyntax, Err: err}
	}
	return policy, body, nil
}

func (f *Fetcher) resolveAddrs(ctx context.Context, host string) ([]string, error) {
	if f.Resolver != nil {
		return f.Resolver.ResolveAddrs(ctx, host)
	}
	ips, err := net.DefaultResolver.LookupHost(ctx, host)
	if err != nil {
		return nil, err
	}
	return ips, nil
}

// httpGet performs a minimal HTTP/1.1 GET on an established connection and
// returns the body and status code. Using http.ReadResponse keeps header
// handling correct without the redirect-following and connection-pooling
// machinery of http.Client, which RFC 8461 forbids or makes observability
// harder.
func httpGet(ctx context.Context, conn *tls.Conn, host string) ([]byte, int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "https://"+host+WellKnownPath, nil)
	if err != nil {
		return nil, 0, "", err
	}
	req.Header.Set("User-Agent", "mtasts-repro/1.0 (policy fetcher)")
	if err := req.Write(conn); err != nil {
		return nil, 0, "", fmt.Errorf("writing request: %w", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), req)
	if err != nil {
		return nil, 0, "", fmt.Errorf("reading response: %w", err)
	}
	defer resp.Body.Close()
	contentType := resp.Header.Get("Content-Type")
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxPolicySize+1))
	if err != nil {
		return nil, resp.StatusCode, contentType, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > MaxPolicySize {
		return nil, resp.StatusCode, contentType, ErrPolicyTooLarge
	}
	return body, resp.StatusCode, contentType, nil
}

// isTextPlain reports whether a Content-Type header value names the
// text/plain media type RFC 8461 §3.3 asks for, ignoring parameters
// such as charset.
func isTextPlain(contentType string) bool {
	mediaType, _, _ := strings.Cut(contentType, ";")
	return strings.EqualFold(strings.TrimSpace(mediaType), "text/plain")
}

// IsNoRecord reports whether an error indicates the absence of MTA-STS
// (rather than a broken deployment).
func IsNoRecord(err error) bool { return errors.Is(err, ErrNoRecord) }

// StageOf extracts the retrieval stage from an error chain, or StageNone.
func StageOf(err error) Stage {
	var fe *FetchError
	if errors.As(err, &fe) {
		return fe.Stage
	}
	return StageNone
}

// CertProblemOf extracts the TLS certificate problem from an error chain.
func CertProblemOf(err error) pki.Problem {
	var fe *FetchError
	if errors.As(err, &fe) {
		return fe.CertProblem
	}
	return pki.OK
}
