// Package dnsserver implements an authoritative DNS server over UDP and TCP
// serving one or more dnszone.Zone instances. It is the stand-in for the
// authoritative infrastructure the paper's scanners query (TLD registries
// and per-domain name servers), and it supports failure injection so the
// scanner's DNS error paths can be exercised over real sockets.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Behavior injects failure modes into the server, modeling broken
// authoritative infrastructure observed in the wild.
type Behavior int

// Supported behaviors.
const (
	// Answer normally (default).
	BehaviorNormal Behavior = iota
	// BehaviorServFail returns SERVFAIL for every query.
	BehaviorServFail
	// BehaviorRefuse returns REFUSED for every query.
	BehaviorRefuse
	// BehaviorDrop silently drops every query (client times out).
	BehaviorDrop
)

// Server is an authoritative DNS server.
type Server struct {
	mu        sync.RWMutex
	zones     map[string]*dnszone.Zone // origin -> zone
	behavior  Behavior
	delay     time.Duration // artificial per-query latency
	faults    *faults.Injector
	adversary *faults.Adversary
	logger    *slog.Logger

	udpConn *net.UDPConn
	tcpLn   net.Listener
	wg      sync.WaitGroup
	closed  chan struct{}

	// QueryCount counts handled queries (for rate-limit tests).
	qmu        sync.Mutex
	queryCount int
}

// New creates a server with no zones. Use AddZone before Start.
func New(logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	return &Server{
		zones:  make(map[string]*dnszone.Zone),
		logger: logger,
		closed: make(chan struct{}),
	}
}

// AddZone registers (or replaces) a zone by its origin.
func (s *Server) AddZone(z *dnszone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// RemoveZone drops the zone with the given origin.
func (s *Server) RemoveZone(origin string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, strutil.CanonicalName(origin))
}

// SetBehavior switches the failure-injection mode.
func (s *Server) SetBehavior(b Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.behavior = b
}

// SetDelay adds artificial latency before each response.
func (s *Server) SetDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delay = d
}

// SetFaults installs a per-query fault injector; unlike SetBehavior
// (which fails every query) it decides fate query by query from the
// injector's seeded plan, keyed by the question's (name, type). Nil
// removes it.
func (s *Server) SetFaults(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = inj
}

// SetAdversary installs an on-path attacker that can rewrite
// authoritative answers on the wire (strip or spoof records) before
// they are serialized. Unlike SetFaults, which models benign transient
// failures, the adversary tampers deterministically with specific
// (name, type) answers per its scenario. Nil removes it.
func (s *Server) SetAdversary(adv *faults.Adversary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adversary = adv
}

// QueryCount returns the number of queries handled so far.
func (s *Server) QueryCount() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.queryCount
}

// Start binds UDP and TCP on addr ("127.0.0.1:0" for an ephemeral port) and
// begins serving. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	// Bind UDP, then TCP on the same port. With an ephemeral port request
	// the kernel picks the UDP port freely, so the matching TCP port may
	// already belong to someone else — re-roll a few times before giving up.
	var conn *net.UDPConn
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		conn, err = net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: listen udp: %w", err)
		}
		ln, err = net.Listen("tcp", conn.LocalAddr().String())
		if err == nil {
			break
		}
		err = errors.Join(fmt.Errorf("dnsserver: listen tcp: %w", err), conn.Close())
		if udpAddr.Port != 0 || attempt >= 4 {
			return nil, err
		}
	}
	s.udpConn, s.tcpLn = conn, ln
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return conn.LocalAddr(), nil
}

// Addr returns the bound address, or nil before Start.
func (s *Server) Addr() net.Addr {
	if s.udpConn == nil {
		return nil
	}
	return s.udpConn.LocalAddr()
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var errs []error
	if s.udpConn != nil {
		errs = append(errs, s.udpConn.Close())
	}
	if s.tcpLn != nil {
		errs = append(errs, s.tcpLn.Close())
	}
	s.wg.Wait()
	return errors.Join(errs...)
}

const maxUDPPayload = 1232 // common EDNS-less safe size; we truncate beyond it

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := s.udpConn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			s.logger.Error("udp read", "err", err)
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp := s.handlePacket(pkt, "udp")
			if resp == nil {
				return // drop behavior
			}
			if len(resp) > maxUDPPayload {
				// Truncate: resend header with TC bit; client retries over TCP.
				m, err := dnsmsg.Unpack(resp)
				if err == nil {
					m.Header.Truncated = true
					m.Answers, m.Authority, m.Additional = nil, nil, nil
					if tb, err := m.Pack(); err == nil {
						resp = tb
					}
				}
			}
			if _, err := s.udpConn.WriteToUDP(resp, raddr); err != nil {
				s.logger.Error("udp write", "err", err)
			}
		}()
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			s.logger.Error("tcp accept", "err", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveTCPConn(conn)
		}()
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	for {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		var lenBuf [2]byte
		if _, err := readFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := int(lenBuf[0])<<8 | int(lenBuf[1])
		pkt := make([]byte, msgLen)
		if _, err := readFull(conn, pkt); err != nil {
			return
		}
		resp := s.handlePacket(pkt, "tcp")
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := conn.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// handlePacket parses, answers, and serializes one query arriving over
// proto ("udp" or "tcp"). A nil return means the query should be dropped.
func (s *Server) handlePacket(pkt []byte, proto string) []byte {
	s.qmu.Lock()
	s.queryCount++
	s.qmu.Unlock()

	s.mu.RLock()
	behavior, delay, inj, adv := s.behavior, s.delay, s.faults, s.adversary
	s.mu.RUnlock()

	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-s.closed:
			return nil
		}
	}
	if behavior == BehaviorDrop {
		return nil
	}

	query, err := dnsmsg.Unpack(pkt)
	if err != nil || len(query.Questions) != 1 || query.Header.Response {
		// FORMERR with best-effort ID echo.
		resp := &dnsmsg.Message{Header: dnsmsg.Header{Response: true, RCode: dnsmsg.RCodeFormat}}
		if len(pkt) >= 2 {
			resp.Header.ID = uint16(pkt[0])<<8 | uint16(pkt[1])
		}
		b, err := resp.Pack()
		if err != nil {
			s.logger.Error("pack FORMERR response", "err", err)
			return nil
		}
		return b
	}

	resp := s.answer(query)
	// The adversary rewrites the authoritative answer on the wire:
	// stripping a record turns the response into NODATA, spoofing
	// replaces the honest RRset with attacker-controlled records. It
	// runs before behavior/fault overrides so a SERVFAIL blip still
	// masks the tampered answer, exactly as it would on path.
	if q := query.Questions[0]; resp.Header.RCode == dnsmsg.RCodeSuccess {
		if spoofed, ok := adv.DNS(q.Name, q.Type); ok {
			resp.Answers = spoofed
		}
	}
	switch behavior {
	case BehaviorServFail:
		resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
		resp.Header.RCode = dnsmsg.RCodeServFail
	case BehaviorRefuse:
		resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
		resp.Header.RCode = dnsmsg.RCodeRefused
	}

	if inj != nil {
		q := query.Questions[0]
		act, fdelay := inj.DNS(strutil.CanonicalName(q.Name) + "/" + q.Type.String())
		if fdelay > 0 {
			select {
			case <-time.After(fdelay):
			case <-s.closed:
				return nil
			}
		}
		switch act {
		case faults.DNSDrop:
			return nil
		case faults.DNSServFail:
			resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
			resp.Header.RCode = dnsmsg.RCodeServFail
		case faults.DNSRefuse:
			resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
			resp.Header.RCode = dnsmsg.RCodeRefused
		case faults.DNSTruncate:
			// Only meaningful on UDP: force the TC bit so the client
			// retries over TCP, where the same key may fault again.
			if proto == "udp" {
				resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
				resp.Header.Truncated = true
			}
		}
	}
	b, err := resp.Pack()
	if err != nil {
		s.logger.Error("pack response", "err", err)
		fallback := &dnsmsg.Message{Header: dnsmsg.Header{
			ID: query.Header.ID, Response: true, RCode: dnsmsg.RCodeServFail}}
		b, err = fallback.Pack()
		if err != nil {
			// A header-only SERVFAIL failing to pack means the message
			// codec itself is broken; dropping the reply (a DNS timeout
			// for the client) is the only honest response left.
			s.logger.Error("pack fallback SERVFAIL", "err", err)
			return nil
		}
	}
	return b
}

// answer produces the authoritative response for a parsed query.
func (s *Server) answer(query *dnsmsg.Message) *dnsmsg.Message {
	q := query.Questions[0]
	resp := &dnsmsg.Message{
		Header: dnsmsg.Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions,
	}
	if query.Header.OpCode != dnsmsg.OpQuery || q.Class != dnsmsg.ClassIN {
		resp.Header.RCode = dnsmsg.RCodeNotImp
		return resp
	}
	zone := s.findZone(q.Name)
	if zone == nil {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return resp
	}
	resp.Header.Authoritative = true
	res, err := zone.Lookup(q.Name, q.Type)
	if err != nil {
		resp.Header.RCode = dnsmsg.RCodeServFail
		return resp
	}
	resp.Header.RCode = res.RCode
	resp.Answers = res.Answers
	return resp
}

// findZone returns the registered zone with the longest origin that is a
// suffix of name.
func (s *Server) findZone(name string) *dnszone.Zone {
	name = strutil.CanonicalName(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *dnszone.Zone
	bestLen := -1
	for origin, z := range s.zones {
		if strutil.HasSuffixFold(name, origin) && len(origin) > bestLen {
			best, bestLen = z, len(origin)
		}
	}
	return best
}

// WaitReady blocks until the server answers a probe query or ctx expires.
// Useful in tests that race Start against first use.
func (s *Server) WaitReady(ctx context.Context) error {
	if s.udpConn == nil {
		return errors.New("dnsserver: not started")
	}
	probe := dnsmsg.NewQuery(1, "ready.probe.invalid", dnsmsg.TypeA)
	b, err := probe.Pack()
	if err != nil {
		return err
	}
	var dialer net.Dialer
	for {
		if probeReady(ctx, &dialer, s.udpConn.LocalAddr().String(), b) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// probeReady sends one probe query and reports whether an answer came
// back within the per-probe deadline.
func probeReady(ctx context.Context, dialer *net.Dialer, addr string, query []byte) bool {
	conn, err := dialer.DialContext(ctx, "udp", addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
		return false
	}
	if _, err := conn.Write(query); err != nil {
		return false
	}
	resp := make([]byte, 512)
	_, err = conn.Read(resp)
	return err == nil
}
