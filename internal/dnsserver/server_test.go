package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnszone"
)

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	z := dnszone.New("example.com")
	z.MustAdd(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("192.0.2.1")}})
	sub := dnszone.New("deep.example.com")
	sub.MustAdd(dnsmsg.RR{Name: "www.deep.example.com", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("192.0.2.2")}})

	s := New(nil)
	s.AddZone(z)
	s.AddZone(sub)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return s, addr.String()
}

// exchangeUDP sends raw bytes and returns the reply.
func exchangeUDP(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf[:n]
}

func query(t *testing.T, addr, name string, typ dnsmsg.Type) *dnsmsg.Message {
	t.Helper()
	q := dnsmsg.NewQuery(77, name, typ)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(exchangeUDP(t, addr, pkt))
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	return resp
}

func TestAuthoritativeAnswer(t *testing.T) {
	_, addr := startTestServer(t)
	resp := query(t, addr, "example.com", dnsmsg.TypeA)
	if !resp.Header.Authoritative || resp.Header.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Header.ID != 77 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
}

func TestLongestZoneWins(t *testing.T) {
	_, addr := startTestServer(t)
	// www.deep.example.com lives in the deeper zone, not the parent.
	resp := query(t, addr, "www.deep.example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) != 1 {
		t.Errorf("resp = %+v", resp)
	}
	// A name only in the deeper zone's namespace but absent: NXDOMAIN from
	// the deeper zone, never the parent's view.
	resp = query(t, addr, "ghost.deep.example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestRefusedOutOfZone(t *testing.T) {
	_, addr := startTestServer(t)
	resp := query(t, addr, "example.org", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestFormErrOnJunk(t *testing.T) {
	_, addr := startTestServer(t)
	resp, err := dnsmsg.Unpack(exchangeUDP(t, addr, []byte{0xAB, 0xCD, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnsmsg.RCodeFormat {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
	if resp.Header.ID != 0xABCD {
		t.Errorf("echoed ID = %#x", resp.Header.ID)
	}
}

func TestNotImpOnNonQuery(t *testing.T) {
	_, addr := startTestServer(t)
	q := dnsmsg.NewQuery(5, "example.com", dnsmsg.TypeA)
	q.Header.OpCode = 4 // NOTIFY
	pkt, _ := q.Pack()
	resp, err := dnsmsg.Unpack(exchangeUDP(t, addr, pkt))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnsmsg.RCodeNotImp {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestTCPExchange(t *testing.T) {
	_, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	q := dnsmsg.NewQuery(9, "example.com", dnsmsg.TypeA)
	pkt, _ := q.Pack()
	framed := append([]byte{byte(len(pkt) >> 8), byte(len(pkt))}, pkt...)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	// Two queries on one connection must both be answered.
	for i := 0; i < 2; i++ {
		if i == 1 {
			if _, err := conn.Write(framed); err != nil {
				t.Fatal(err)
			}
		}
		hdr := make([]byte, 2)
		if _, err := conn.Read(hdr); err != nil {
			t.Fatalf("read len: %v", err)
		}
		msgLen := int(hdr[0])<<8 | int(hdr[1])
		body := make([]byte, msgLen)
		read := 0
		for read < msgLen {
			n, err := conn.Read(body[read:])
			read += n
			if err != nil {
				t.Fatalf("read body: %v", err)
			}
		}
		resp, err := dnsmsg.Unpack(body)
		if err != nil || len(resp.Answers) != 1 {
			t.Fatalf("tcp resp %d = %+v, %v", i, resp, err)
		}
	}
}

func TestRemoveZone(t *testing.T) {
	s, addr := startTestServer(t)
	s.RemoveZone("deep.example.com")
	// The parent zone now answers authoritatively (NXDOMAIN: the parent
	// has no records under deep.).
	resp := query(t, addr, "www.deep.example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("rcode after RemoveZone = %v", resp.Header.RCode)
	}
}

func TestQueryCountAndDelay(t *testing.T) {
	s, addr := startTestServer(t)
	before := s.QueryCount()
	query(t, addr, "example.com", dnsmsg.TypeA)
	if s.QueryCount() <= before {
		t.Error("query count did not increase")
	}
	s.SetDelay(50 * time.Millisecond)
	start := time.Now()
	query(t, addr, "example.com", dnsmsg.TypeA)
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("delay not applied: %v", elapsed)
	}
	s.SetDelay(0)
}

func TestCloseIdempotent(t *testing.T) {
	s, _ := startTestServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBehaviorSwitching(t *testing.T) {
	s, addr := startTestServer(t)
	s.SetBehavior(BehaviorServFail)
	resp := query(t, addr, "example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeServFail || len(resp.Answers) != 0 {
		t.Errorf("servfail resp = %+v", resp)
	}
	s.SetBehavior(BehaviorNormal)
	resp = query(t, addr, "example.com", dnsmsg.TypeA)
	if resp.Header.RCode != dnsmsg.RCodeSuccess {
		t.Errorf("normal resp = %+v", resp)
	}
}
