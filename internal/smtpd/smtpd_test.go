package smtpd

import (
	"bufio"
	"crypto/tls"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/pki"
)

// client is a tiny raw SMTP test client.
type client struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, b Behavior) (*Server, *client) {
	t.Helper()
	srv := New(b)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return srv, &client{t: t, conn: conn, r: bufio.NewReader(conn)}
}

// expect reads one (possibly multiline) reply and asserts its code.
func (c *client) expect(code int) []string {
	c.t.Helper()
	var lines []string
	for {
		raw, err := c.r.ReadString('\n')
		if err != nil {
			c.t.Fatalf("read: %v", err)
		}
		raw = strings.TrimRight(raw, "\r\n")
		if len(raw) < 3 {
			c.t.Fatalf("short reply %q", raw)
		}
		got, err := strconv.Atoi(raw[:3])
		if err != nil {
			c.t.Fatalf("bad reply %q", raw)
		}
		if got != code {
			c.t.Fatalf("reply code = %d (%q), want %d", got, raw, code)
		}
		lines = append(lines, raw)
		if len(raw) == 3 || raw[3] != '-' {
			return lines
		}
	}
}

func (c *client) send(line string) {
	c.t.Helper()
	if _, err := c.conn.Write([]byte(line + "\r\n")); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

func testCert(t *testing.T, names ...string) *tls.Certificate {
	t.Helper()
	ca, err := pki.NewCA("smtpd test", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(pki.IssueOptions{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	return &cert
}

func TestBannerAndEHLO(t *testing.T) {
	_, c := dial(t, Behavior{Hostname: "mx.test.example", Certificate: testCert(t, "mx.test.example")})
	c.expect(220)
	c.send("EHLO client.example")
	lines := c.expect(250)
	var hasStartTLS, hasPipelining bool
	for _, l := range lines {
		if strings.Contains(l, "STARTTLS") {
			hasStartTLS = true
		}
		if strings.Contains(l, "PIPELINING") {
			hasPipelining = true
		}
	}
	if !hasStartTLS || !hasPipelining {
		t.Errorf("EHLO lines = %v", lines)
	}
}

func TestEHLOWithoutSTARTTLS(t *testing.T) {
	_, c := dial(t, Behavior{Hostname: "mx.test.example", DisableSTARTTLS: true})
	c.expect(220)
	c.send("EHLO client.example")
	for _, l := range c.expect(250) {
		if strings.Contains(l, "STARTTLS") {
			t.Error("STARTTLS advertised despite DisableSTARTTLS")
		}
	}
	c.send("STARTTLS")
	c.expect(502)
}

func TestHELOFallbackAndUnknownCommand(t *testing.T) {
	_, c := dial(t, Behavior{Hostname: "mx.test.example", DisableEHLO: true})
	c.expect(220)
	c.send("EHLO client.example")
	c.expect(502)
	c.send("HELO client.example")
	c.expect(250)
	c.send("BOGUS")
	c.expect(500)
	c.send("NOOP")
	c.expect(250)
	c.send("QUIT")
	c.expect(221)
}

func TestMailSequenceEnforced(t *testing.T) {
	_, c := dial(t, Behavior{Hostname: "mx.test.example", AcceptMail: true})
	c.expect(220)
	c.send("HELO x")
	c.expect(250)
	c.send("RCPT TO:<a@b>")
	c.expect(503) // MAIL first
	c.send("DATA")
	c.expect(503) // RCPT first
	c.send("MAIL FROM:<a@b>")
	c.expect(250)
	c.send("RSET")
	c.expect(250)
	c.send("RCPT TO:<c@d>")
	c.expect(503) // RSET cleared the envelope
}

func TestDataDotUnstuffing(t *testing.T) {
	srv, c := dial(t, Behavior{Hostname: "mx.test.example", AcceptMail: true})
	c.expect(220)
	c.send("HELO x")
	c.expect(250)
	c.send("MAIL FROM:<alice@a.example>")
	c.expect(250)
	c.send("RCPT TO:<bob@b.example>")
	c.expect(250)
	c.send("DATA")
	c.expect(354)
	c.send("line one")
	c.send("..stuffed dot")
	c.send(".")
	c.expect(250)
	msgs := srv.Messages()
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	body := string(msgs[0].Data)
	if !strings.Contains(body, "line one\n") || !strings.Contains(body, ".stuffed dot") {
		t.Errorf("body = %q", body)
	}
	if strings.Contains(body, "..stuffed") {
		t.Errorf("dot not unstuffed: %q", body)
	}
	if msgs[0].TLS {
		t.Error("plaintext session marked TLS")
	}
}

func TestSTARTTLSUpgradeResetsState(t *testing.T) {
	cert := testCert(t, "mx.test.example")
	_, c := dial(t, Behavior{Hostname: "mx.test.example", Certificate: cert, AcceptMail: true})
	c.expect(220)
	c.send("EHLO x")
	c.expect(250)
	c.send("MAIL FROM:<pre@tls.example>")
	c.expect(250)
	c.send("STARTTLS")
	c.expect(220)

	tlsConn := tls.Client(c.conn, &tls.Config{InsecureSkipVerify: true})
	if err := tlsConn.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	c.conn = tlsConn
	c.r = bufio.NewReader(tlsConn)

	// RFC 3207: the server must have discarded pre-TLS state.
	c.send("RCPT TO:<x@y.example>")
	c.expect(503)
	c.send("EHLO x")
	lines := c.expect(250)
	for _, l := range lines {
		if strings.Contains(l, "STARTTLS") {
			t.Error("STARTTLS still advertised inside TLS")
		}
	}
	c.send("STARTTLS")
	c.expect(503)
}

func TestGreylistFirstContact(t *testing.T) {
	srv, c := dial(t, Behavior{Hostname: "mx.test.example", Greylist: true})
	c.expect(451)
	// Second connection from the same address passes.
	conn2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(3 * time.Second))
	c2 := &client{t: t, conn: conn2, r: bufio.NewReader(conn2)}
	c2.expect(220)
}

func TestRejectAll(t *testing.T) {
	_, c := dial(t, Behavior{Hostname: "mx.test.example", RejectAll: true})
	c.expect(220)
	c.send("HELO x")
	c.expect(250)
	c.send("MAIL FROM:<a@b>")
	c.expect(554)
	c.send("RCPT TO:<c@d>")
	c.expect(554)
	c.send("DATA")
	c.expect(554)
}

func TestConnCount(t *testing.T) {
	srv, c := dial(t, Behavior{Hostname: "mx.test.example"})
	c.expect(220)
	if srv.ConnCount() != 1 {
		t.Errorf("ConnCount = %d", srv.ConnCount())
	}
}

func TestSetBehavior(t *testing.T) {
	srv, c := dial(t, Behavior{Hostname: "mx.test.example"})
	c.expect(220)
	srv.SetBehavior(Behavior{DisableSTARTTLS: true})
	// New connections see the new behavior; the hostname is preserved.
	conn2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(3 * time.Second))
	c2 := &client{t: t, conn: conn2, r: bufio.NewReader(conn2)}
	banner := c2.expect(220)
	if !strings.Contains(banner[0], "mx.test.example") {
		t.Errorf("banner = %v", banner)
	}
	c2.send("EHLO x")
	for _, l := range c2.expect(250) {
		if strings.Contains(l, "STARTTLS") {
			t.Error("STARTTLS still advertised")
		}
	}
}
