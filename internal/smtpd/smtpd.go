// Package smtpd implements a minimal SMTP server (RFC 5321 subset) with the
// STARTTLS extension (RFC 3207). It is the MX-host substrate of the
// reproduction: the scanner's instrumented client connects to these servers
// to check STARTTLS support and collect certificates, and the sender-MTA
// example delivers mail through them. Failure injection covers the
// behaviors the paper measures: no STARTTLS, bad certificates, greylisting.
package smtpd

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/faults"
)

// Behavior controls how the server advertises and performs STARTTLS.
type Behavior struct {
	// Hostname is announced in the banner and EHLO response.
	Hostname string
	// Certificate is presented on STARTTLS. Nil with STARTTLS advertised
	// causes a handshake failure (the "no certificate installed" case).
	Certificate *tls.Certificate
	// DisableSTARTTLS hides the capability and rejects the command.
	DisableSTARTTLS bool
	// DisableEHLO forces clients to fall back to HELO (the paper's
	// instrumented client implements this fallback).
	DisableEHLO bool
	// Greylist rejects the first attempt from every client address with a
	// transient 451 (the greylisting interference noted in §4.1).
	Greylist bool
	// AcceptMail, when true, accepts MAIL/RCPT/DATA; otherwise the server
	// still answers but the scanner never sends mail anyway.
	AcceptMail bool
	// RejectAll responds 554 to all mail commands (the Tutanota
	// discontinued-customer behavior of §5).
	RejectAll bool
}

// Message is a mail object accepted by the server.
type Message struct {
	From string
	To   []string
	Data []byte
	// TLS reports whether the message arrived over a TLS session.
	TLS bool
}

// Server is a minimal SMTP server.
type Server struct {
	behavior Behavior

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	mu        sync.Mutex
	seen      map[string]bool // greylist memory, by remote IP
	messages  []Message
	connCount int
	faults    *faults.Injector
	adversary *faults.Adversary
}

// New creates a server with the given behavior.
func New(b Behavior) *Server {
	if b.Hostname == "" {
		b.Hostname = "mx.invalid"
	}
	return &Server{behavior: b, closed: make(chan struct{}), seen: make(map[string]bool)}
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smtpd: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.serve()
	return ln.Addr(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Messages returns the mail accepted so far.
func (s *Server) Messages() []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.messages...)
}

// ConnCount returns the number of connections handled.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connCount
}

// SetBehavior replaces the server behavior (e.g. to rotate certificates).
func (s *Server) SetBehavior(b Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Hostname == "" {
		b.Hostname = s.behavior.Hostname
	}
	s.behavior = b
}

func (s *Server) getBehavior() Behavior {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.behavior
}

// SetFaults installs a per-connection fault injector, keyed by the
// server's announced hostname, realizing added latency and
// pre-greeting connection resets from its seeded plan. Nil removes it.
func (s *Server) SetFaults(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = inj
}

func (s *Server) getFaults() *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// SetAdversary installs an on-path attacker for this MX, keyed by the
// announced hostname: per its scenario it strips STARTTLS from the
// session (capability hidden, command rejected) or swaps the presented
// certificate for the attacker's. Nil removes it.
func (s *Server) SetAdversary(adv *faults.Adversary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adversary = adv
}

func (s *Server) getAdversary() *faults.Adversary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adversary
}

func (s *Server) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.mu.Lock()
		s.connCount++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.session(conn)
		}()
	}
}

type session struct {
	srv    *Server
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	tls    bool
	helo   string
	from   string
	rcpts  []string
	closed bool
}

func (s *Server) session(conn net.Conn) {
	b := s.getBehavior()
	// The adversary tampers with the session-local behavior copy, never
	// the configured one: removing it restores the honest server. A
	// stripped session behaves exactly like a no-STARTTLS server (the
	// MITM filters the capability and intercepts the command); a swapped
	// certificate flows into upgradeTLS unchanged.
	if v := s.getAdversary().SMTP(b.Hostname); v.StripSTARTTLS || v.Cert != nil {
		if v.StripSTARTTLS {
			b.DisableSTARTTLS = true
		}
		if v.Cert != nil {
			b.Certificate = v.Cert
		}
	}
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	sess := &session{
		srv:  s,
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
	// Injected connection faults come before any protocol exchange: the
	// client sees a silent close (reset) instead of a greeting — the
	// transient failure shape a retry should clear.
	act, delay := s.getFaults().Conn("smtpd", b.Hostname)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-s.closed:
			return
		}
	}
	if act == faults.ConnReset {
		return
	}
	if b.Greylist && !s.greylistPass(conn) {
		sess.reply(451, "4.7.1 greylisted, try again later")
		return
	}
	sess.reply(220, b.Hostname+" ESMTP mtasts-repro")
	for !sess.closed {
		line, err := sess.readLine()
		if err != nil {
			return
		}
		verb, arg := splitVerb(line)
		switch verb {
		case "EHLO":
			if b.DisableEHLO {
				sess.reply(502, "5.5.1 EHLO not supported")
				continue
			}
			sess.helo = arg
			exts := []string{b.Hostname + " greets " + arg, "PIPELINING", "8BITMIME"}
			if !b.DisableSTARTTLS && !sess.tls {
				exts = append(exts, "STARTTLS")
			}
			sess.replyMulti(250, exts)
		case "HELO":
			sess.helo = arg
			sess.reply(250, b.Hostname+" greets "+arg)
		case "STARTTLS":
			if b.DisableSTARTTLS {
				sess.reply(502, "5.5.1 STARTTLS not supported")
				continue
			}
			if sess.tls {
				sess.reply(503, "5.5.1 already in TLS")
				continue
			}
			sess.reply(220, "2.0.0 ready to start TLS")
			if !sess.upgradeTLS(b) {
				return
			}
		case "MAIL":
			if b.RejectAll {
				sess.reply(554, "5.7.1 mail service discontinued")
				continue
			}
			sess.from = strings.TrimPrefix(arg, "FROM:")
			sess.rcpts = nil
			sess.reply(250, "2.1.0 ok")
		case "RCPT":
			if b.RejectAll {
				sess.reply(554, "5.7.1 mail service discontinued")
				continue
			}
			if sess.from == "" {
				sess.reply(503, "5.5.1 MAIL first")
				continue
			}
			sess.rcpts = append(sess.rcpts, strings.TrimPrefix(arg, "TO:"))
			sess.reply(250, "2.1.5 ok")
		case "DATA":
			if b.RejectAll || !b.AcceptMail {
				sess.reply(554, "5.7.1 transaction not accepted")
				continue
			}
			if len(sess.rcpts) == 0 {
				sess.reply(503, "5.5.1 RCPT first")
				continue
			}
			sess.reply(354, "end with <CRLF>.<CRLF>")
			data, err := sess.readData()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.messages = append(s.messages, Message{
				From: sess.from, To: sess.rcpts, Data: data, TLS: sess.tls,
			})
			s.mu.Unlock()
			sess.from, sess.rcpts = "", nil
			sess.reply(250, "2.0.0 accepted")
		case "NOOP":
			sess.reply(250, "2.0.0 ok")
		case "RSET":
			sess.from, sess.rcpts = "", nil
			sess.reply(250, "2.0.0 flushed")
		case "QUIT":
			sess.reply(221, "2.0.0 bye")
			sess.closed = true
		default:
			sess.reply(500, "5.5.2 unrecognized command")
		}
	}
}

// greylistPass records the remote IP and reports whether it has connected
// before.
func (s *Server) greylistPass(conn net.Conn) bool {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		host = conn.RemoteAddr().String()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[host] {
		return true
	}
	s.seen[host] = true
	return false
}

func (sess *session) upgradeTLS(b Behavior) bool {
	if err := sess.w.Flush(); err != nil {
		return false
	}
	conf := &tls.Config{MinVersion: tls.VersionTLS12}
	if b.Certificate != nil {
		conf.Certificates = []tls.Certificate{*b.Certificate}
	} else {
		// No certificate installed: fail the handshake with an alert, as a
		// misconfigured server would.
		conf.GetCertificate = func(*tls.ClientHelloInfo) (*tls.Certificate, error) {
			return nil, errors.New("no certificate configured")
		}
	}
	tlsConn := tls.Server(sess.conn, conf)
	if err := tlsConn.Handshake(); err != nil {
		return false
	}
	sess.conn = tlsConn
	sess.r = bufio.NewReader(tlsConn)
	sess.w = bufio.NewWriter(tlsConn)
	sess.tls = true
	sess.helo, sess.from, sess.rcpts = "", "", nil // RFC 3207: reset state
	return true
}

func (sess *session) readLine() (string, error) {
	line, err := sess.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readData consumes a DATA payload up to the dot terminator.
func (sess *session) readData() ([]byte, error) {
	var out []byte
	for {
		line, err := sess.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "." {
			return out, nil
		}
		// Dot-unstuffing per RFC 5321 §4.5.2.
		trimmed = strings.TrimPrefix(trimmed, ".")
		out = append(out, trimmed...)
		out = append(out, '\n')
	}
}

func (sess *session) reply(code int, text string) {
	fmt.Fprintf(sess.w, "%d %s\r\n", code, text)
	//lint:ignore errdrop a failed reply means the client hung up; the session loop sees it on the next read
	sess.w.Flush()
}

func (sess *session) replyMulti(code int, lines []string) {
	for i, l := range lines {
		sep := "-"
		if i == len(lines)-1 {
			sep = " "
		}
		fmt.Fprintf(sess.w, "%d%s%s\r\n", code, sep, l)
	}
	//lint:ignore errdrop a failed reply means the client hung up; the session loop sees it on the next read
	sess.w.Flush()
}

func splitVerb(line string) (verb, arg string) {
	verb, arg, _ = strings.Cut(line, " ")
	return strings.ToUpper(verb), strings.TrimSpace(arg)
}
