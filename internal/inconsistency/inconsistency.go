// Package inconsistency implements the §4.4 analysis of the paper:
// classifying why a domain's MX records fail to match the mx patterns in
// its MTA-STS policy, even when every individual component looks valid.
// The taxonomy distinguishes TLD mismatches, complete domain mismatches,
// partial (3LD+) mismatches, and typographical errors, and supports the
// historical-MX join of Figure 9.
package inconsistency

import (
	"strings"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/psl"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Kind is the mismatch category of Figure 8.
type Kind int

// Mismatch categories, ordered by specificity of the diagnosis.
const (
	// KindNone: the policy matches at least one MX record.
	KindNone Kind = iota
	// KindTypo: a pattern is within edit distance ≤ MaxTypoDistance of an
	// MX host (and is not a TLD-only difference).
	KindTypo
	// KindTLD: a pattern differs from an MX host only in the public
	// suffix (e.g. mx.example.com vs mx.example.net).
	KindTLD
	// Kind3LDPlus: a pattern shares the MX host's registrable domain but
	// diverges from the third label on (commonly the "mta-sts."
	// subdomain confusion of RFC 8461 misreadings).
	Kind3LDPlus
	// KindDomain: the pattern and every MX host are entirely unrelated.
	KindDomain
)

// String returns the Figure 8 series label.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTypo:
		return "Typos"
	case KindTLD:
		return "TLD"
	case Kind3LDPlus:
		return "3LD+"
	case KindDomain:
		return "Domain"
	}
	return "unknown"
}

// MaxTypoDistance is the Levenshtein cutoff the paper uses for typo
// detection (edit distance ≤ 3, §4.4).
const MaxTypoDistance = 3

// Finding is the outcome of analyzing one domain.
type Finding struct {
	Domain string
	// Kind is the dominant (most specific) mismatch category.
	Kind Kind
	// MXHosts and Patterns echo the inputs for reporting.
	MXHosts  []string
	Patterns []string
	// MTASTSLabelInPattern marks patterns containing the "mta-sts" label,
	// the §4.4 misunderstanding (81.8% of 3LD+ cases).
	MTASTSLabelInPattern bool
	// Enforce marks policies in enforce mode — the delivery-failure
	// population of Figures 7 and 8.
	Enforce bool
}

// Analyze classifies the (mis)match between a policy and the domain's
// current MX records. A policy in mode "none" (or with no patterns) and
// empty MX sets yield KindNone.
func Analyze(domain string, policy mtasts.Policy, mxHosts []string) Finding {
	f := Finding{
		Domain:   strutil.CanonicalName(domain),
		MXHosts:  canonAll(mxHosts),
		Patterns: canonAll(policy.MXPatterns),
		Enforce:  policy.Mode == mtasts.ModeEnforce,
	}
	for _, p := range f.Patterns {
		if hasMTASTSLabel(p) {
			f.MTASTSLabelInPattern = true
			break
		}
	}
	if len(f.Patterns) == 0 || len(f.MXHosts) == 0 {
		return f
	}
	// Matched: any MX covered by any pattern.
	for _, mx := range f.MXHosts {
		if policy.Matches(mx) {
			return f
		}
	}
	f.Kind = classifyMismatch(f.Patterns, f.MXHosts)
	return f
}

// classifyMismatch picks the most specific diagnosis across all
// (pattern, mx) pairs: Typo > TLD > 3LD+ > Domain.
func classifyMismatch(patterns, mxHosts []string) Kind {
	best := KindDomain
	for _, p := range patterns {
		pat := strings.TrimPrefix(p, "*.")
		for _, mx := range mxHosts {
			k := pairKind(pat, mx)
			if better(k, best) {
				best = k
			}
		}
	}
	return best
}

// better reports whether a is a more specific diagnosis than b.
func better(a, b Kind) bool {
	rank := map[Kind]int{KindTypo: 3, KindTLD: 2, Kind3LDPlus: 1, KindDomain: 0, KindNone: -1}
	return rank[a] > rank[b]
}

// pairKind diagnoses one pattern/MX pair that is known not to match.
func pairKind(pattern, mx string) Kind {
	// TLD mismatch: identical except for the public suffix. Checked before
	// typo because "TLD mismatches do not qualify as typos" (§4.4).
	if tldMismatch(pattern, mx) {
		return KindTLD
	}
	if strutil.LevenshteinAtMost(pattern, mx, MaxTypoDistance) {
		return KindTypo
	}
	pSLD, mSLD := psl.RegistrableDomain(pattern), psl.RegistrableDomain(mx)
	if pSLD != "" && pSLD == mSLD {
		return Kind3LDPlus
	}
	return KindDomain
}

// tldMismatch reports whether the two names are identical up to their
// public suffix (mx.example.com vs mx.example.net).
func tldMismatch(a, b string) bool {
	sa, sb := psl.PublicSuffix(a), psl.PublicSuffix(b)
	if sa == sb {
		return false
	}
	pa := strings.TrimSuffix(a, sa)
	pb := strings.TrimSuffix(b, sb)
	return pa != "" && pa == pb
}

func hasMTASTSLabel(pattern string) bool {
	for _, l := range strutil.Labels(strings.TrimPrefix(pattern, "*.")) {
		if l == "mta-sts" || l == "_mta-sts" {
			return true
		}
	}
	return false
}

func canonAll(in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		out = append(out, strutil.CanonicalName(s))
	}
	return out
}

// MatchesHistorical reports whether the policy's patterns match any MX set
// from the domain's history — the Figure 9 "outdated policy" test. It
// returns the first matching snapshot index, or -1.
func MatchesHistorical(policy mtasts.Policy, historicalMXSets [][]string) int {
	for i, mxSet := range historicalMXSets {
		for _, mx := range mxSet {
			if policy.Matches(mx) {
				return i
			}
		}
	}
	return -1
}
