package inconsistency

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/mtasts"
)

func pol(mode mtasts.Mode, patterns ...string) mtasts.Policy {
	return mtasts.Policy{Version: mtasts.Version, Mode: mode, MaxAge: 86400, MXPatterns: patterns}
}

func TestAnalyzeMatched(t *testing.T) {
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "mx.example.com", "*.backup.example.com"),
		[]string{"mx.example.com"})
	if f.Kind != KindNone {
		t.Errorf("matched domain: kind = %v", f.Kind)
	}
	if !f.Enforce {
		t.Error("Enforce flag lost")
	}
}

func TestAnalyzeWildcardMatch(t *testing.T) {
	f := Analyze("example.com", pol(mtasts.ModeTesting, "*.example.com"), []string{"mail.example.com"})
	if f.Kind != KindNone || f.Enforce {
		t.Errorf("wildcard match: %+v", f)
	}
}

func TestAnalyzeTLDMismatch(t *testing.T) {
	// The pattern names the right host under the wrong TLD.
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "mx.example.net"), []string{"mx.example.com"})
	if f.Kind != KindTLD {
		t.Errorf("TLD mismatch: kind = %v", f.Kind)
	}
}

func TestAnalyzeTypo(t *testing.T) {
	// Transposed letters within edit distance 3.
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "mx1.exmaple.com"), []string{"mx1.example.com"})
	if f.Kind != KindTypo {
		t.Errorf("typo: kind = %v", f.Kind)
	}
}

func TestTLDMismatchIsNotTypo(t *testing.T) {
	// mx.a.com vs mx.a.net is edit distance 3 but must classify as TLD
	// (§4.4: "TLD mismatches do not qualify as typos").
	f := Analyze("a.com", pol(mtasts.ModeEnforce, "mx.a.net"), []string{"mx.a.com"})
	if f.Kind != KindTLD {
		t.Errorf("TLD-vs-typo precedence: kind = %v", f.Kind)
	}
}

func TestAnalyze3LDPlus(t *testing.T) {
	// Same registrable domain, extra labels diverge — the classic
	// "mta-sts." confusion.
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "mta-sts.mailhost.example.org"),
		[]string{"mx1.mailhost2.example.org"})
	if f.Kind != Kind3LDPlus {
		t.Errorf("3LD+: kind = %v", f.Kind)
	}
	if !f.MTASTSLabelInPattern {
		t.Error("mta-sts label not flagged")
	}
}

func TestAnalyzeCompleteDomainMismatch(t *testing.T) {
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "mx.oldprovider.net"),
		[]string{"mx.newprovider.io"})
	if f.Kind != KindDomain {
		t.Errorf("complete mismatch: kind = %v", f.Kind)
	}
}

func TestAnalyzeMostSpecificWins(t *testing.T) {
	// One unrelated pattern plus one typo pattern: diagnosis is Typo.
	f := Analyze("example.com",
		pol(mtasts.ModeEnforce, "mx.unrelated.org", "mail.examplee.com"),
		[]string{"mail.example.com"})
	if f.Kind != KindTypo {
		t.Errorf("specificity: kind = %v", f.Kind)
	}
}

func TestAnalyzeWildcardPatternMismatch(t *testing.T) {
	// Wildcard stripped before comparison: "*.example.net" vs
	// mx.example.com is a TLD-style mismatch on the suffix portion only if
	// names align; here they don't (different label counts) → domain or
	// 3LD+ path. Just assert it is a mismatch, with no panic.
	f := Analyze("example.com", pol(mtasts.ModeEnforce, "*.example.net"), []string{"mx.example.com"})
	if f.Kind == KindNone {
		t.Error("should be a mismatch")
	}
}

func TestAnalyzeNoMXOrNoPatterns(t *testing.T) {
	f := Analyze("example.com", pol(mtasts.ModeNone), []string{"mx.example.com"})
	if f.Kind != KindNone {
		t.Errorf("no patterns: kind = %v", f.Kind)
	}
	f = Analyze("example.com", pol(mtasts.ModeEnforce, "mx.example.com"), nil)
	if f.Kind != KindNone {
		t.Errorf("no MX: kind = %v", f.Kind)
	}
}

func TestLucidgrowScenario(t *testing.T) {
	// §4.4: lucidgrow.com assigns unique MX hosts per domain while the
	// outsourced policy lists none of them, in enforce mode — delivery
	// failure.
	f := Analyze("victim.com", pol(mtasts.ModeEnforce, "mx.dmarcinput.com"),
		[]string{"mx-victim-com.lucidgrow.com"})
	if f.Kind != KindDomain || !f.Enforce {
		t.Errorf("lucidgrow: %+v", f)
	}
}

func TestMatchesHistorical(t *testing.T) {
	p := pol(mtasts.ModeEnforce, "mx.oldhost.net")
	history := [][]string{
		{"mx.newhost.io"},                     // snapshot 0 (newest)
		{"mx.midhost.org"},                    // snapshot 1
		{"mx.oldhost.net", "mx2.oldhost.net"}, // snapshot 2: the old MX set
	}
	if got := MatchesHistorical(p, history); got != 2 {
		t.Errorf("MatchesHistorical = %d, want 2", got)
	}
	if got := MatchesHistorical(p, history[:2]); got != -1 {
		t.Errorf("no historical match should be -1, got %d", got)
	}
	if got := MatchesHistorical(p, nil); got != -1 {
		t.Errorf("empty history = %d", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNone: "none", KindTypo: "Typos", KindTLD: "TLD",
		Kind3LDPlus: "3LD+", KindDomain: "Domain", Kind(9): "unknown",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

func TestCaseInsensitive(t *testing.T) {
	f := Analyze("Example.COM", pol(mtasts.ModeEnforce, "MX.Example.COM"), []string{"mx.example.com"})
	if f.Kind != KindNone {
		t.Errorf("case-insensitive match failed: %v", f.Kind)
	}
}
