// Package sf implements singleflight-style call collapsing and a
// scan-scoped memoizing cache on top of it, with no dependencies beyond
// the standard library.
//
// The scan pipeline's redundancy is cross-domain: thousands of domains
// share a handful of MX providers, so a naive per-domain scan probes
// the same host:port thousands of times (§5 of the paper; the same
// observation drives batched probing in Internet-wide TLS scans). A
// Group collapses *concurrent* duplicate calls into one in-flight
// execution whose result fans out to every waiter; a Cache additionally
// remembers completed results for the lifetime of the cache — the
// "scan-scoped" part: one Cache lives exactly as long as one Runner.Run,
// so staleness is bounded by the snapshot the scan itself defines.
package sf
