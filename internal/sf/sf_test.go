package sf

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	// Leader blocks inside fn until the joiners have had time to queue
	// behind it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared := g.Do("k", func() int {
			close(started)
			<-release
			calls.Add(1)
			return 42
		})
		if v != 42 || shared {
			t.Errorf("leader: got (%d, %v), want (42, false)", v, shared)
		}
	}()
	<-started
	var sharedCount atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared := g.Do("k", func() int { calls.Add(1); return 42 })
			if v != 42 {
				t.Errorf("joiner: got %d, want 42", v)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let joiners reach the in-flight map
	close(release)
	wg.Wait()
	// Any joiner that raced in after release legitimately re-runs fn, so
	// the invariant is calls + shared == 9 — no execution is both shared
	// and run, and none is lost.
	if calls.Load()+sharedCount.Load() != 9 {
		t.Fatalf("fn ran %d times with %d shared results, want them to sum to 9",
			calls.Load(), sharedCount.Load())
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no joiner shared the leader's result")
	}
}

func TestGroupSequentialCallsRunEachTime(t *testing.T) {
	var g Group[int]
	n := 0
	for i := 0; i < 3; i++ {
		v, shared := g.Do("k", func() int { n++; return n })
		if shared {
			t.Fatalf("call %d unexpectedly shared", i)
		}
		if v != i+1 {
			t.Fatalf("call %d: got %d", i, v)
		}
	}
}

func TestGroupPanicReleasesWaiters(t *testing.T) {
	var g Group[int]
	started := make(chan struct{})
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		<-started
		v, shared := g.Do("k", func() int { return 7 })
		// Either it joined the panicking leader (zero value) or arrived
		// after cleanup and ran fresh (7) — both are live outcomes; the
		// test is that it returns at all.
		_ = v
		_ = shared
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("leader panic did not propagate")
			}
		}()
		g.Do("k", func() int {
			close(started)
			panic("boom")
		})
	}()
	<-waiterDone
}

func TestCacheMemoizesAndCounts(t *testing.T) {
	var c Cache[string]
	var calls atomic.Int64
	fn := func(v string) func() string {
		return func() string { calls.Add(1); return v }
	}
	if v, shared := c.Do("a", fn("va")); v != "va" || shared {
		t.Fatalf("first call: (%q, %v)", v, shared)
	}
	if v, shared := c.Do("a", fn("OTHER")); v != "va" || !shared {
		t.Fatalf("memo hit: (%q, %v)", v, shared)
	}
	if v, _ := c.Do("b", fn("vb")); v != "vb" {
		t.Fatalf("second key: %q", v)
	}
	if calls.Load() != 2 {
		t.Fatalf("fn ran %d times, want 2", calls.Load())
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats %+v, want Hits=1 Misses=2", s)
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Fatalf("Get(a) = (%q, %v)", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
}

// TestCacheAnalyticHitIdentity pins the identity the scanner's dedup
// stress test relies on: T concurrent calls over U keys yield exactly
// U misses and T-U hits.
func TestCacheAnalyticHitIdentity(t *testing.T) {
	var c Cache[int]
	const T, U = 400, 13
	var wg sync.WaitGroup
	for i := 0; i < T; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := string(rune('a' + i%U))
			c.Do(key, func() int { return i })
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != U || s.Hits != T-U {
		t.Fatalf("stats %+v, want Misses=%d Hits=%d", s, U, T-U)
	}
}
