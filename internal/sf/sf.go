package sf

import (
	"sync"
	"sync/atomic"
)

// call is one in-flight execution of a keyed function.
type call[V any] struct {
	done chan struct{}
	val  V
}

// Group collapses concurrent calls with the same key into a single
// execution of fn. It has no memory: once a call completes, the next
// Do with the same key runs fn again. The zero value is ready to use.
type Group[V any] struct {
	mu       sync.Mutex
	inflight map[string]*call[V]
}

// Do executes fn once per key among concurrent callers: the first
// caller (the leader) runs fn, every caller that arrives before the
// leader finishes blocks and receives the leader's result with
// shared=true. If fn panics, the panic propagates on the leader and
// waiters receive the zero value — callers whose V carries an error
// field should treat a zero V as "call failed".
func (g *Group[V]) Do(key string, fn func() V) (val V, shared bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*call[V])
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	// Release waiters even if fn panics, so a bug in one probe cannot
	// deadlock every goroutine waiting on its key.
	completed := false
	defer func() {
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
		if !completed {
			return // re-panicking; waiters see the zero value
		}
	}()
	c.val = fn()
	completed = true
	return c.val, false
}

// CacheStats are cumulative effectiveness counters for a Cache.
type CacheStats struct {
	// Hits counts calls answered without running fn: either from the
	// memo of a completed call or by joining an in-flight one.
	Hits int64
	// Misses counts calls that ran fn (the in-flight leaders).
	Misses int64
}

// Cache is a Group with memoization: the first call per key runs fn,
// concurrent duplicates join it, and later calls are answered from the
// stored result without blocking. Entries never expire — a Cache is
// meant to be scoped to one scan run and dropped with it. The zero
// value is ready to use.
type Cache[V any] struct {
	g    Group[V]
	mu   sync.RWMutex
	vals map[string]V

	hits, misses atomic.Int64
}

// Do returns the cached result for key, computing it via fn exactly
// once across all callers. shared is true when fn did not run for this
// call (memo hit or joined an in-flight leader).
func (c *Cache[V]) Do(key string, fn func() V) (val V, shared bool) {
	c.mu.RLock()
	v, ok := c.vals[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v, true
	}
	val, shared = c.g.Do(key, func() V {
		v := fn()
		c.mu.Lock()
		if c.vals == nil {
			c.vals = make(map[string]V)
		}
		c.vals[key] = v
		c.mu.Unlock()
		return v
	})
	if shared {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return val, shared
}

// Get returns the memoized result for key without computing anything.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vals[key]
	return v, ok
}

// Len returns the number of completed, memoized keys.
func (c *Cache[V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vals)
}

// Stats returns the cumulative hit/miss counters. For T total calls
// over U unique keys, Hits == T-U and Misses == U — the analytic
// identity the dedup stress test asserts.
func (c *Cache[V]) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
