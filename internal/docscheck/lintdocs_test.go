package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"github.com/netsecurelab/mtasts/internal/lint"
)

// TestLintDocsConsistency keeps docs/LINT.md's analyzer table and the
// registered suite (lint.All — what `mtastslint -list` prints) in
// lockstep both ways: every registered analyzer has a convention row
// with a motivating defect, and every row names an analyzer that still
// exists. Adding an analyzer without documenting it, or retiring one
// and leaving its row behind, fails here.
func TestLintDocsConsistency(t *testing.T) {
	b, err := os.ReadFile(filepath.Join(root, "docs", "LINT.md"))
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(string(b), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no analyzer rows found in docs/LINT.md (format drift?)")
	}
	registered := map[string]bool{}
	for _, a := range lint.All("") {
		registered[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc string for -list", a.Name)
		}
		if !documented[a.Name] {
			t.Errorf("analyzer %q (in -list) has no convention row in docs/LINT.md", a.Name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/LINT.md documents analyzer %q, which is not registered in lint.All", name)
		}
	}
}
