package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/faults"
)

// adversaryRow is one parsed catalog row from docs/ADVERSARY.md.
type adversaryRow struct {
	layer, code            string
	none, testing, enforce string
}

// parseAdversaryCatalog extracts the attack table from docs/ADVERSARY.md.
func parseAdversaryCatalog(t *testing.T) map[string]adversaryRow {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(root, "docs", "ADVERSARY.md"))
	if err != nil {
		t.Fatalf("read ADVERSARY.md: %v", err)
	}
	rowRe := regexp.MustCompile("^\\| `([a-z_]+)` \\| ([a-z]+) \\| (`[a-z_]+`|—) \\| ([a-z-]+) \\| ([a-z-]+) \\| ([a-z-]+) \\|$")
	rows := map[string]adversaryRow{}
	for _, line := range strings.Split(string(b), "\n") {
		m := rowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		code := ""
		if m[3] != "—" {
			code = strings.Trim(m[3], "`")
		}
		if _, dup := rows[m[1]]; dup {
			t.Errorf("ADVERSARY.md: duplicate row for attack %q", m[1])
		}
		rows[m[1]] = adversaryRow{layer: m[2], code: code,
			none: m[4], testing: m[5], enforce: m[6]}
	}
	if len(rows) == 0 {
		t.Fatal("ADVERSARY.md: no catalog rows found (format drift?)")
	}
	return rows
}

// TestAdversaryCatalogMatchesRegistry pins the attack table in
// docs/ADVERSARY.md to the internal/faults registry exactly, both ways:
// every registered attack has a row with the registry's layer, errtax
// code, and per-mode expected outcomes; every row names a registered
// attack.
func TestAdversaryCatalogMatchesRegistry(t *testing.T) {
	rows := parseAdversaryCatalog(t)
	registered := map[string]bool{}
	for _, a := range faults.Attacks() {
		registered[a.Name] = true
		row, ok := rows[a.Name]
		if !ok {
			t.Errorf("ADVERSARY.md: registered attack %q has no catalog row", a.Name)
			continue
		}
		if row.layer != a.Layer {
			t.Errorf("%s: catalog layer %q, registry %q", a.Name, row.layer, a.Layer)
		}
		if row.code != string(a.Code) {
			t.Errorf("%s: catalog code %q, registry %q", a.Name, row.code, a.Code)
		}
		for _, c := range []struct{ mode, doc, reg string }{
			{"none", row.none, a.ExpectNone},
			{"testing", row.testing, a.ExpectTesting},
			{"enforce", row.enforce, a.ExpectEnforce},
		} {
			if c.doc != c.reg {
				t.Errorf("%s/%s: catalog outcome %q, registry %q", a.Name, c.mode, c.doc, c.reg)
			}
		}
	}
	for name := range rows {
		if !registered[name] {
			t.Errorf("ADVERSARY.md: documents attack %q, which the registry does not define", name)
		}
	}
}
