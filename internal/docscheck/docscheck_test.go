// Package docscheck keeps the CLI documentation honest: it parses the
// flag definitions out of each command's main.go with go/parser and
// cross-checks them against README.md and docs/*.md. Three contracts
// are enforced: every flag of the documented commands (mtasts-scan,
// reproduce, mtasts-campaign, mtasts-send, mtasts-serve) appears
// somewhere in the docs; every backticked `-flag` token in the docs
// names a flag that still exists (no stale references); and the flag
// tables in docs/CAMPAIGN.md, docs/SENDER.md and docs/SERVICE.md match
// their commands exactly, both ways (servicedocs_test.go also locks the
// SERVICE.md endpoint table to scansvc.Endpoints). A fourth gate (lintdocs_test.go) keeps docs/LINT.md's
// analyzer table in lockstep with the registered mtastslint suite.
// The package is test-only on purpose — it ships no code, only the
// gate.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

const root = "../.."

// flagDefFuncs are the flag.FlagSet methods (and flag package
// functions) whose first argument is the flag name.
var flagDefFuncs = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint": true,
	"Uint64": true, "Float64": true, "Bool": true, "Duration": true,
}

// commandFlags parses cmd/<name>/main.go and returns the flag names it
// defines, grouped by subcommand. Flags registered on the global
// flag.CommandLine set land under the "" key; flags registered on a
// set created with flag.NewFlagSet("sub", ...) land under "sub",
// resolved per enclosing function so every cmdFoo can call its set fs.
func commandFlags(t *testing.T, name string) map[string]map[string]bool {
	t.Helper()
	path := filepath.Join(root, "cmd", name, "main.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	out := map[string]map[string]bool{}
	add := func(sub, flagName string) {
		if out[sub] == nil {
			out[sub] = map[string]bool{}
		}
		out[sub][flagName] = true
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// var name -> subcommand, for flag sets created in this function.
		sets := map[string]string{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if sub, ok := newFlagSetName(as.Rhs[0]); ok {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						sets[id.Name] = sub
					}
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagDefFuncs[sel.Sel.Name] {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			flagName, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if recv.Name == "flag" {
				add("", flagName)
			} else if sub, ok := sets[recv.Name]; ok {
				add(sub, flagName)
			}
			return true
		})
	}
	return out
}

func newFlagSetName(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewFlagSet" {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	return name, err == nil
}

// docsCorpus returns README.md plus every docs/*.md concatenated, and
// the list of (name, text) pairs for per-file reporting.
func docsCorpus(t *testing.T) []struct{ name, text string } {
	t.Helper()
	var corpus []struct{ name, text string }
	read := func(path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		corpus = append(corpus, struct{ name, text string }{filepath.Base(path), string(b)})
	}
	read(filepath.Join(root, "README.md"))
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		t.Fatalf("read docs dir: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			read(filepath.Join(root, "docs", e.Name()))
		}
	}
	return corpus
}

func allFlags(t *testing.T) map[string]bool {
	t.Helper()
	union := map[string]bool{}
	cmds, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		t.Fatalf("read cmd dir: %v", err)
	}
	for _, e := range cmds {
		for _, set := range commandFlags(t, e.Name()) {
			for name := range set {
				union[name] = true
			}
		}
	}
	return union
}

// TestDocumentedCommandFlagsCovered requires every flag of the three
// commands whose operation the docs walk through to be mentioned, as a
// -name token, somewhere in README.md or docs/.
func TestDocumentedCommandFlagsCovered(t *testing.T) {
	corpus := docsCorpus(t)
	var all strings.Builder
	for _, d := range corpus {
		all.WriteString(d.text)
		all.WriteByte('\n')
	}
	text := all.String()
	for _, cmd := range []string{"mtasts-scan", "reproduce", "mtasts-campaign", "mtasts-send", "mtasts-serve"} {
		for sub, set := range commandFlags(t, cmd) {
			for name := range set {
				re := regexp.MustCompile(`(^|[^\w-])-` + regexp.QuoteMeta(name) + `([^\w-]|$)`)
				if !re.MatchString(text) {
					t.Errorf("%s %s: flag -%s is not documented in README.md or docs/", cmd, sub, name)
				}
			}
		}
	}
}

// TestNoStaleFlagTokens requires every fully-backticked `-flag` token
// in the docs to name a flag some command still defines. Tokens ending
// in '-' are backtick-adjacency artifacts, not flags, and go-toolchain
// flags the docs legitimately mention are allowlisted.
func TestNoStaleFlagTokens(t *testing.T) {
	known := allFlags(t)
	allow := map[string]bool{
		"race":     true, // go test -race
		"bench":    true, // go test -bench
		"benchmem": true, // go test -benchmem
	}
	re := regexp.MustCompile("`-([a-z][a-z0-9-]*[a-z0-9])`")
	for _, d := range docsCorpus(t) {
		for _, m := range re.FindAllStringSubmatch(d.text, -1) {
			name := m[1]
			if !known[name] && !allow[name] {
				t.Errorf("%s: references flag `-%s`, which no command defines", d.name, name)
			}
		}
	}
}

// TestCampaignRunbookTablesExact pins the per-subcommand flag tables in
// docs/CAMPAIGN.md to cmd/mtasts-campaign exactly: every defined flag
// has a table row, every table row names a defined flag.
func TestCampaignRunbookTablesExact(t *testing.T) {
	defined := commandFlags(t, "mtasts-campaign")
	b, err := os.ReadFile(filepath.Join(root, "docs", "CAMPAIGN.md"))
	if err != nil {
		t.Fatalf("read CAMPAIGN.md: %v", err)
	}
	subRe := regexp.MustCompile("^`mtasts-campaign ([a-z]+)`")
	rowRe := regexp.MustCompile("^\\| `-([a-z][a-z0-9-]*)` \\|")
	documented := map[string]map[string]bool{}
	sub := ""
	for _, line := range strings.Split(string(b), "\n") {
		if m := subRe.FindStringSubmatch(line); m != nil {
			sub = m[1]
			if sub == "resume" { // alias of run, same flag set
				sub = "run"
			}
			continue
		}
		if m := rowRe.FindStringSubmatch(line); m != nil && sub != "" {
			if documented[sub] == nil {
				documented[sub] = map[string]bool{}
			}
			documented[sub][m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("CAMPAIGN.md: no flag tables found (format drift?)")
	}
	for sub, set := range defined {
		if sub == "" {
			continue // no global flags expected; rows only document subcommands
		}
		for name := range set {
			if !documented[sub][name] {
				t.Errorf("mtasts-campaign %s: flag -%s has no table row in CAMPAIGN.md", sub, name)
			}
		}
		for name := range documented[sub] {
			if !set[name] {
				t.Errorf("CAMPAIGN.md: %s table documents -%s, which the subcommand does not define", sub, name)
			}
		}
	}
	// Every subcommand with a table must exist in the binary too.
	var missing []string
	for sub := range documented {
		if defined[sub] == nil {
			missing = append(missing, sub)
		}
	}
	sort.Strings(missing)
	for _, sub := range missing {
		t.Errorf("CAMPAIGN.md: documents subcommand %q, which mtasts-campaign does not define", sub)
	}
}

// TestSenderRunbookTableExact pins the flag table in docs/SENDER.md to
// cmd/mtasts-send exactly: every flag the command defines has a table
// row, every table row names a defined flag. mtasts-send registers on
// the global flag set, so its flags live under the "" subcommand key.
func TestSenderRunbookTableExact(t *testing.T) {
	defined := commandFlags(t, "mtasts-send")[""]
	if len(defined) == 0 {
		t.Fatal("mtasts-send: no global flags parsed (format drift?)")
	}
	b, err := os.ReadFile(filepath.Join(root, "docs", "SENDER.md"))
	if err != nil {
		t.Fatalf("read SENDER.md: %v", err)
	}
	rowRe := regexp.MustCompile("^\\| `-([a-z][a-z0-9-]*)` \\|")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(b), "\n") {
		if m := rowRe.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("SENDER.md: no flag table found (format drift?)")
	}
	for name := range defined {
		if !documented[name] {
			t.Errorf("mtasts-send: flag -%s has no table row in SENDER.md", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("SENDER.md: table documents -%s, which mtasts-send does not define", name)
		}
	}
}
