package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/scansvc"
)

// TestServiceFlagTableExact pins the flag table in docs/SERVICE.md to
// cmd/mtasts-serve exactly: every flag the command defines has a table
// row, every table row names a defined flag. mtasts-serve registers its
// flags on a set named "mtasts-serve" inside run().
func TestServiceFlagTableExact(t *testing.T) {
	defined := commandFlags(t, "mtasts-serve")["mtasts-serve"]
	if len(defined) == 0 {
		t.Fatal("mtasts-serve: no flags parsed off its flag set (format drift?)")
	}
	b, err := os.ReadFile(filepath.Join(root, "docs", "SERVICE.md"))
	if err != nil {
		t.Fatalf("read SERVICE.md: %v", err)
	}
	rowRe := regexp.MustCompile("^\\| `-([a-z][a-z0-9-]*)` \\|")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(b), "\n") {
		if m := rowRe.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("SERVICE.md: no flag table found (format drift?)")
	}
	for name := range defined {
		if !documented[name] {
			t.Errorf("mtasts-serve: flag -%s has no table row in SERVICE.md", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("SERVICE.md: table documents -%s, which mtasts-serve does not define", name)
		}
	}
}

// TestServiceEndpointTableExact pins the endpoint table in
// docs/SERVICE.md to the scansvc.Endpoints table the HTTP mux is built
// from, both ways: every route the service serves has a documented row,
// every documented row names a served route.
func TestServiceEndpointTableExact(t *testing.T) {
	b, err := os.ReadFile(filepath.Join(root, "docs", "SERVICE.md"))
	if err != nil {
		t.Fatalf("read SERVICE.md: %v", err)
	}
	rowRe := regexp.MustCompile("^\\| `([A-Z]+) (/[^`]*)` \\|")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(b), "\n") {
		if m := rowRe.FindStringSubmatch(line); m != nil {
			documented[m[1]+" "+m[2]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("SERVICE.md: no endpoint table found (format drift?)")
	}
	served := map[string]bool{}
	for _, e := range scansvc.Endpoints {
		key := e.Method + " " + e.Pattern
		served[key] = true
		if !documented[key] {
			t.Errorf("scansvc: endpoint %q has no table row in SERVICE.md", key)
		}
	}
	for key := range documented {
		if !served[key] {
			t.Errorf("SERVICE.md: documents endpoint %q, which the service does not serve", key)
		}
	}
}
