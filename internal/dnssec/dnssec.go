// Package dnssec implements the subset of DNSSEC (RFC 4033–4035, RFC 6605)
// the reproduction needs as the substrate under DANE: zone signing with
// ECDSA P-256/SHA-256 (algorithm 13), RRSIG generation and verification
// over canonical RRset forms, DS/DNSKEY chains to a trust anchor, and a
// validating lookup client. Denial of existence (NSEC/NSEC3) and wildcard
// expansion are out of scope — the study never depends on authenticated
// denial, only on whether TLSA RRsets validate (RFC 7672 §2.2).
package dnssec

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Validation errors.
var (
	ErrNoSignature  = errors.New("dnssec: RRset has no covering RRSIG")
	ErrBadSignature = errors.New("dnssec: signature verification failed")
	ErrSigExpired   = errors.New("dnssec: signature outside validity window")
	ErrNoDNSKEY     = errors.New("dnssec: no DNSKEY matches the signature's key tag")
	ErrNoChain      = errors.New("dnssec: no DS chain to a trust anchor")
	ErrUnsupported  = errors.New("dnssec: unsupported algorithm or digest")
)

// DNSKEY flag values.
const (
	FlagZSK uint16 = 256 // zone key
	FlagKSK uint16 = 257 // zone key + secure entry point
)

// Signer holds a zone's signing key (single-key model: one key acts as
// both KSK and ZSK, a common simplification in small deployments).
type Signer struct {
	// Zone is the apex name the key signs for.
	Zone string
	Key  *ecdsa.PrivateKey
	// TTL is the TTL of generated DNSKEY/RRSIG records.
	TTL uint32
}

// NewSigner generates a P-256 signing key for the zone.
func NewSigner(zone string) (*Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("dnssec: generating key for %s: %w", zone, err)
	}
	return &Signer{Zone: strutil.CanonicalName(zone), Key: key, TTL: 3600}, nil
}

// publicKeyBytes encodes the public key per RFC 6605 §4: X || Y, 32 bytes
// each.
func (s *Signer) publicKeyBytes() []byte {
	out := make([]byte, 64)
	s.Key.PublicKey.X.FillBytes(out[:32])
	s.Key.PublicKey.Y.FillBytes(out[32:])
	return out
}

// DNSKEY returns the zone's DNSKEY record.
func (s *Signer) DNSKEY() dnsmsg.RR {
	return dnsmsg.RR{
		Name: s.Zone, Type: dnsmsg.TypeDNSKEY, Class: dnsmsg.ClassIN, TTL: s.TTL,
		Data: dnsmsg.DNSKEYData{
			Flags: FlagKSK, Protocol: 3,
			Algorithm: dnsmsg.AlgorithmECDSAP256SHA256,
			PublicKey: s.publicKeyBytes(),
		},
	}
}

// DS returns the delegation-signer record the parent zone publishes for
// this key (SHA-256 digest, RFC 4034 §5.1.4).
func (s *Signer) DS() dnsmsg.RR {
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	return dnsmsg.RR{
		Name: s.Zone, Type: dnsmsg.TypeDS, Class: dnsmsg.ClassIN, TTL: s.TTL,
		Data: dnsmsg.DSData{
			KeyTag:     KeyTag(dk),
			Algorithm:  dk.Algorithm,
			DigestType: dnsmsg.DigestSHA256,
			Digest:     dsDigest(s.Zone, dk),
		},
	}
}

// dsDigest computes SHA-256(canonical owner | DNSKEY RDATA).
func dsDigest(owner string, dk dnsmsg.DNSKEYData) []byte {
	//lint:ignore errdrop owner comes from a zone the signer itself built; canonicalization cannot fail on it
	buf, _ := appendCanonicalName(nil, owner)
	//lint:ignore errdrop the DNSKEY was produced (or wire-parsed) in-process; re-packing it cannot fail
	rdata, _ := packRData(dk)
	sum := sha256.Sum256(append(buf, rdata...))
	return sum[:]
}

// KeyTag computes the RFC 4034 Appendix B key tag of a DNSKEY.
func KeyTag(dk dnsmsg.DNSKEYData) uint16 {
	//lint:ignore errdrop the DNSKEY was produced (or wire-parsed) in-process; re-packing it cannot fail
	rdata, _ := packRData(dk)
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += (acc >> 16) & 0xFFFF
	return uint16(acc & 0xFFFF)
}

// Sign produces the RRSIG covering one RRset (all records must share owner
// name, class, type, and TTL). The validity window is [incept, expire].
func (s *Signer) Sign(rrset []dnsmsg.RR, incept, expire time.Time) (dnsmsg.RR, error) {
	if len(rrset) == 0 {
		return dnsmsg.RR{}, errors.New("dnssec: empty RRset")
	}
	owner := strutil.CanonicalName(rrset[0].Name)
	if !strutil.HasSuffixFold(owner, s.Zone) {
		return dnsmsg.RR{}, fmt.Errorf("dnssec: %s outside zone %s", owner, s.Zone)
	}
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	sig := dnsmsg.RRSIGData{
		TypeCovered: rrset[0].Type,
		Algorithm:   dnsmsg.AlgorithmECDSAP256SHA256,
		Labels:      uint8(len(strutil.Labels(owner))),
		OrigTTL:     rrset[0].TTL,
		Expiration:  uint32(expire.Unix()),
		Inception:   uint32(incept.Unix()),
		KeyTag:      KeyTag(dk),
		SignerName:  s.Zone,
	}
	digest, err := signingDigest(sig, rrset)
	if err != nil {
		return dnsmsg.RR{}, err
	}
	r, sv, err := ecdsa.Sign(rand.Reader, s.Key, digest)
	if err != nil {
		return dnsmsg.RR{}, fmt.Errorf("dnssec: signing %s/%s: %w", owner, rrset[0].Type, err)
	}
	sigBytes := make([]byte, 64)
	r.FillBytes(sigBytes[:32])
	sv.FillBytes(sigBytes[32:])
	sig.Signature = sigBytes

	return dnsmsg.RR{
		Name: owner, Type: dnsmsg.TypeRRSIG, Class: dnsmsg.ClassIN,
		TTL: rrset[0].TTL, Data: sig,
	}, nil
}

// VerifyRRSIG checks one RRSIG over an RRset with the given DNSKEY at time
// now.
func VerifyRRSIG(rrset []dnsmsg.RR, sig dnsmsg.RRSIGData, dk dnsmsg.DNSKEYData, now time.Time) error {
	if sig.Algorithm != dnsmsg.AlgorithmECDSAP256SHA256 || dk.Algorithm != sig.Algorithm {
		return fmt.Errorf("%w: algorithm %d", ErrUnsupported, sig.Algorithm)
	}
	ts := uint32(now.Unix())
	if ts < sig.Inception || ts > sig.Expiration {
		return fmt.Errorf("%w: now=%d window=[%d,%d]", ErrSigExpired, ts, sig.Inception, sig.Expiration)
	}
	if KeyTag(dk) != sig.KeyTag {
		return fmt.Errorf("%w: tag %d", ErrNoDNSKEY, sig.KeyTag)
	}
	if len(dk.PublicKey) != 64 || len(sig.Signature) != 64 {
		return fmt.Errorf("%w: bad key or signature length", ErrBadSignature)
	}
	digest, err := signingDigest(sig, rrset)
	if err != nil {
		return err
	}
	pub := ecdsa.PublicKey{
		Curve: elliptic.P256(),
		X:     new(big.Int).SetBytes(dk.PublicKey[:32]),
		Y:     new(big.Int).SetBytes(dk.PublicKey[32:]),
	}
	r := new(big.Int).SetBytes(sig.Signature[:32])
	sv := new(big.Int).SetBytes(sig.Signature[32:])
	if !ecdsa.Verify(&pub, digest, r, sv) {
		return ErrBadSignature
	}
	return nil
}

// signingDigest computes SHA-256 over RRSIG_RDATA_prefix | canonical RRset
// (RFC 4034 §3.1.8.1 / §6).
func signingDigest(sig dnsmsg.RRSIGData, rrset []dnsmsg.RR) ([]byte, error) {
	buf := sig.SignedPrefix()
	canon, err := canonicalRRset(rrset, sig.OrigTTL)
	if err != nil {
		return nil, err
	}
	buf = append(buf, canon...)
	sum := sha256.Sum256(buf)
	return sum[:], nil
}

// canonicalRRset serializes an RRset in canonical form: lowercase owner,
// original TTL, RRs sorted by canonical RDATA.
func canonicalRRset(rrset []dnsmsg.RR, origTTL uint32) ([]byte, error) {
	type wireRR struct{ owner, rdata []byte }
	wires := make([]wireRR, 0, len(rrset))
	for _, rr := range rrset {
		owner, err := appendCanonicalName(nil, rr.Name)
		if err != nil {
			return nil, err
		}
		rdata, err := packRData(canonicalizeRData(rr.Data))
		if err != nil {
			return nil, err
		}
		wires = append(wires, wireRR{owner: owner, rdata: rdata})
	}
	sort.Slice(wires, func(i, j int) bool {
		return bytes.Compare(wires[i].rdata, wires[j].rdata) < 0
	})
	var out []byte
	for i, w := range wires {
		out = append(out, w.owner...)
		out = appendU16(out, uint16(rrset[i].Type))
		out = appendU16(out, uint16(dnsmsg.ClassIN))
		out = appendU32(out, origTTL)
		out = appendU16(out, uint16(len(w.rdata)))
		out = append(out, w.rdata...)
	}
	return out, nil
}

// canonicalizeRData lowercases embedded domain names (RFC 4034 §6.2).
func canonicalizeRData(d dnsmsg.RData) dnsmsg.RData {
	switch v := d.(type) {
	case dnsmsg.NSData:
		v.Host = strings.ToLower(v.Host)
		return v
	case dnsmsg.CNAMEData:
		v.Target = strings.ToLower(v.Target)
		return v
	case dnsmsg.MXData:
		v.Host = strings.ToLower(v.Host)
		return v
	case dnsmsg.SOAData:
		v.MName = strings.ToLower(v.MName)
		v.RName = strings.ToLower(v.RName)
		return v
	}
	return d
}

// packRData serializes RDATA in uncompressed wire form.
func packRData(d dnsmsg.RData) ([]byte, error) { return dnsmsg.PackRData(d) }

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendCanonicalName appends the lowercase uncompressed wire form of a
// name.
func appendCanonicalName(b []byte, name string) ([]byte, error) {
	name = strutil.CanonicalName(name)
	if name == "" {
		return append(b, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, fmt.Errorf("dnssec: bad label %q in %q", label, name)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}
