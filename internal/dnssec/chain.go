package dnssec

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// SignZone signs every RRset in the zone in place: it adds the zone's
// DNSKEY record, then an RRSIG per (owner, type) RRset, all valid for the
// given window. Existing RRSIGs are replaced. It returns the DS record the
// parent zone should publish.
func SignZone(z *dnszone.Zone, s *Signer, incept, expire time.Time) (dnsmsg.RR, error) {
	// Drop stale signatures, then install the DNSKEY before signing so the
	// DNSKEY RRset signs itself.
	for _, name := range z.Names() {
		z.Remove(name, dnsmsg.TypeRRSIG)
	}
	z.Remove(s.Zone, dnsmsg.TypeDNSKEY)
	if err := z.Add(s.DNSKEY()); err != nil {
		return dnsmsg.RR{}, err
	}

	for _, name := range z.Names() {
		byType := map[dnsmsg.Type][]dnsmsg.RR{}
		for _, rr := range z.Records(name) {
			if rr.Type == dnsmsg.TypeRRSIG {
				continue
			}
			byType[rr.Type] = append(byType[rr.Type], rr)
		}
		for _, rrset := range byType {
			sig, err := s.Sign(rrset, incept, expire)
			if err != nil {
				return dnsmsg.RR{}, fmt.Errorf("signing %s/%s: %w", name, rrset[0].Type, err)
			}
			if err := z.Add(sig); err != nil {
				return dnsmsg.RR{}, err
			}
		}
	}
	return s.DS(), nil
}

// Validator performs chain validation against configured trust anchors.
type Validator struct {
	// anchors maps a zone origin to its trusted DS records.
	anchors map[string][]dnsmsg.DSData
	// Client resolves the records and signatures.
	Client *resolver.Client
	// Now anchors signature validity checks; nil means time.Now.
	Now func() time.Time
	// MaxChain bounds delegation depth.
	MaxChain int
}

// NewValidator builds a validator over a resolver client.
func NewValidator(client *resolver.Client) *Validator {
	return &Validator{
		anchors:  make(map[string][]dnsmsg.DSData),
		Client:   client,
		MaxChain: 8,
	}
}

// AddAnchor trusts the DS record as a trust anchor for its owner zone.
func (v *Validator) AddAnchor(ds dnsmsg.RR) error {
	d, ok := ds.Data.(dnsmsg.DSData)
	if !ok {
		return fmt.Errorf("dnssec: anchor %s is %s, not DS", ds.Name, ds.Type)
	}
	zone := strutil.CanonicalName(ds.Name)
	v.anchors[zone] = append(v.anchors[zone], d)
	return nil
}

func (v *Validator) now() time.Time {
	if v.Now != nil {
		return v.Now()
	}
	return time.Now()
}

// SecureLookup resolves (name, type) and validates the RRset's chain of
// trust. secure is true only when the full chain to a trust anchor
// verifies; rrs are returned regardless (mirroring a security-aware
// resolver that sets or clears the AD bit).
func (v *Validator) SecureLookup(ctx context.Context, name string, t dnsmsg.Type) (rrs []dnsmsg.RR, secure bool, err error) {
	rrs, err = v.Client.Lookup(ctx, name, t)
	if err != nil {
		return nil, false, err
	}
	if err := v.validateRRset(ctx, name, t, rrs, 0); err != nil {
		return rrs, false, nil
	}
	return rrs, true, nil
}

// validateRRset checks the RRSIG over (name, t, rrs) and then the signer
// zone's DNSKEY chain.
func (v *Validator) validateRRset(ctx context.Context, name string, t dnsmsg.Type, rrs []dnsmsg.RR, depth int) error {
	if depth > v.MaxChain {
		return ErrNoChain
	}
	sig, err := v.coveringSig(ctx, name, t)
	if err != nil {
		return err
	}
	key, err := v.trustedDNSKEY(ctx, sig.SignerName, sig.KeyTag, depth)
	if err != nil {
		return err
	}
	return VerifyRRSIG(rrs, sig, key, v.now())
}

// coveringSig fetches the RRSIG at name covering type t.
func (v *Validator) coveringSig(ctx context.Context, name string, t dnsmsg.Type) (dnsmsg.RRSIGData, error) {
	sigs, err := v.Client.Lookup(ctx, name, dnsmsg.TypeRRSIG)
	if err != nil {
		return dnsmsg.RRSIGData{}, fmt.Errorf("%w: %v", ErrNoSignature, err)
	}
	for _, rr := range sigs {
		if sd, ok := rr.Data.(dnsmsg.RRSIGData); ok && sd.TypeCovered == t {
			return sd, nil
		}
	}
	return dnsmsg.RRSIGData{}, fmt.Errorf("%w: %s %s", ErrNoSignature, name, t)
}

// trustedDNSKEY returns the signer zone's DNSKEY with the given tag, after
// establishing trust in the zone's DNSKEY RRset: either a configured
// anchor DS matches, or the parent zone serves a validated DS RRset.
func (v *Validator) trustedDNSKEY(ctx context.Context, zone string, tag uint16, depth int) (dnsmsg.DNSKEYData, error) {
	zone = strutil.CanonicalName(zone)
	keys, err := v.Client.Lookup(ctx, zone, dnsmsg.TypeDNSKEY)
	if err != nil {
		return dnsmsg.DNSKEYData{}, fmt.Errorf("%w: DNSKEY %s: %v", ErrNoChain, zone, err)
	}

	// The DNSKEY RRset must be self-signed by a key matching a trusted DS.
	dsList := v.anchors[zone]
	if len(dsList) == 0 {
		// Fetch DS from the parent side and validate it recursively.
		dsRRs, err := v.Client.Lookup(ctx, zone, dnsmsg.TypeDS)
		if err != nil {
			return dnsmsg.DNSKEYData{}, fmt.Errorf("%w: DS %s: %v", ErrNoChain, zone, err)
		}
		if err := v.validateRRset(ctx, zone, dnsmsg.TypeDS, dsRRs, depth+1); err != nil {
			return dnsmsg.DNSKEYData{}, fmt.Errorf("%w: DS chain for %s: %v", ErrNoChain, zone, err)
		}
		for _, rr := range dsRRs {
			if d, ok := rr.Data.(dnsmsg.DSData); ok {
				dsList = append(dsList, d)
			}
		}
	}

	// Find the DNSKEY matching a trusted DS.
	var sepKey *dnsmsg.DNSKEYData
	for i := range keys {
		dk, ok := keys[i].Data.(dnsmsg.DNSKEYData)
		if !ok {
			continue
		}
		for _, ds := range dsList {
			if ds.KeyTag == KeyTag(dk) && ds.DigestType == dnsmsg.DigestSHA256 &&
				bytes.Equal(ds.Digest, dsDigest(zone, dk)) {
				sepKey = &dk
				break
			}
		}
		if sepKey != nil {
			break
		}
	}
	if sepKey == nil {
		return dnsmsg.DNSKEYData{}, fmt.Errorf("%w: no DNSKEY of %s matches trusted DS", ErrNoChain, zone)
	}

	// Validate the DNSKEY RRset's self-signature with the SEP key.
	keySig, err := v.coveringSig(ctx, zone, dnsmsg.TypeDNSKEY)
	if err != nil {
		return dnsmsg.DNSKEYData{}, err
	}
	if err := VerifyRRSIG(keys, keySig, *sepKey, v.now()); err != nil {
		return dnsmsg.DNSKEYData{}, fmt.Errorf("DNSKEY RRset of %s: %w", zone, err)
	}

	// Return the key with the requested tag (single-key zones: the SEP key).
	for i := range keys {
		if dk, ok := keys[i].Data.(dnsmsg.DNSKEYData); ok && KeyTag(dk) == tag {
			return dk, nil
		}
	}
	return dnsmsg.DNSKEYData{}, fmt.Errorf("%w: tag %d in %s", ErrNoDNSKEY, tag, zone)
}

// DelegateSecurely establishes the parent→child link: it computes the
// child's DS record, signs it with the parent's key, and installs both
// into the child zone. Call it after SignZone(child) — SignZone strips all
// RRSIGs before re-signing.
//
// Placement note: in real DNS the DS RRset lives on the parent side of the
// zone cut. The substrate's authoritative server routes queries by longest
// matching origin, so the DS (and its parent-signed RRSIG) are stored in
// the child zone instead; the cryptographic chain — DS signed by the
// parent key, digesting the child DNSKEY — is identical either way.
func DelegateSecurely(parent *Signer, child *dnszone.Zone, childSigner *Signer, incept, expire time.Time) error {
	ds := childSigner.DS()
	child.Remove(ds.Name, dnsmsg.TypeDS)
	if err := child.Add(ds); err != nil {
		return err
	}
	sig, err := parent.Sign([]dnsmsg.RR{ds}, incept, expire)
	if err != nil {
		return fmt.Errorf("dnssec: parent-signing DS of %s: %w", childSigner.Zone, err)
	}
	return child.Add(sig)
}
