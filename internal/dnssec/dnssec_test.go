package dnssec

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/resolver"
)

var (
	sigNow    = time.Date(2024, 9, 29, 12, 0, 0, 0, time.UTC)
	sigIncept = sigNow.Add(-time.Hour)
	sigExpire = sigNow.Add(30 * 24 * time.Hour)
)

func mustSigner(t *testing.T, zone string) *Signer {
	t.Helper()
	s, err := NewSigner(zone)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func txtRRset(owner, value string) []dnsmsg.RR {
	return []dnsmsg.RR{{
		Name: owner, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.NewTXT(value),
	}}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := mustSigner(t, "example.test")
	rrset := txtRRset("_mta-sts.example.test", "v=STSv1; id=1;")
	sigRR, err := s.Sign(rrset, sigIncept, sigExpire)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	sig := sigRR.Data.(dnsmsg.RRSIGData)
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	if err := VerifyRRSIG(rrset, sig, dk, sigNow); err != nil {
		t.Fatalf("VerifyRRSIG: %v", err)
	}
	if sig.SignerName != "example.test" || sig.TypeCovered != dnsmsg.TypeTXT || sig.Labels != 3 {
		t.Errorf("sig fields = %+v", sig)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	s := mustSigner(t, "example.test")
	rrset := txtRRset("_mta-sts.example.test", "v=STSv1; id=1;")
	sigRR, err := s.Sign(rrset, sigIncept, sigExpire)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnsmsg.RRSIGData)
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)

	// Modified RRset content.
	tampered := txtRRset("_mta-sts.example.test", "v=STSv1; id=2;")
	if err := VerifyRRSIG(tampered, sig, dk, sigNow); err == nil {
		t.Error("tampered RRset verified")
	}
	// Wrong key.
	other := mustSigner(t, "example.test")
	odk := other.DNSKEY().Data.(dnsmsg.DNSKEYData)
	if err := VerifyRRSIG(rrset, sig, odk, sigNow); err == nil {
		t.Error("foreign key verified")
	}
	// Outside validity window.
	if err := VerifyRRSIG(rrset, sig, dk, sigExpire.Add(time.Hour)); err == nil {
		t.Error("expired signature verified")
	}
	if err := VerifyRRSIG(rrset, sig, dk, sigIncept.Add(-time.Hour)); err == nil {
		t.Error("not-yet-valid signature verified")
	}
}

func TestVerifyIsOrderInsensitive(t *testing.T) {
	// Canonical ordering: signing [a, b] must verify [b, a].
	s := mustSigner(t, "example.test")
	rrset := []dnsmsg.RR{
		{Name: "Example.Test", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
			Data: dnsmsg.MXData{Preference: 10, Host: "MX1.Example.Test"}},
		{Name: "example.test", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
			Data: dnsmsg.MXData{Preference: 20, Host: "mx2.example.test"}},
	}
	sigRR, err := s.Sign(rrset, sigIncept, sigExpire)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnsmsg.RRSIGData)
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	reversed := []dnsmsg.RR{rrset[1], rrset[0]}
	if err := VerifyRRSIG(reversed, sig, dk, sigNow); err != nil {
		t.Errorf("reordered RRset failed: %v", err)
	}
	// Case differences in names must not matter (canonical lowercase).
	lower := []dnsmsg.RR{
		{Name: "example.test", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
			Data: dnsmsg.MXData{Preference: 10, Host: "mx1.example.test"}},
		rrset[1],
	}
	if err := VerifyRRSIG(lower, sig, dk, sigNow); err != nil {
		t.Errorf("case-normalized RRset failed: %v", err)
	}
}

func TestKeyTagStableAndDSDigest(t *testing.T) {
	s := mustSigner(t, "example.test")
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	if KeyTag(dk) != KeyTag(dk) {
		t.Error("key tag unstable")
	}
	ds := s.DS().Data.(dnsmsg.DSData)
	if ds.KeyTag != KeyTag(dk) || ds.DigestType != dnsmsg.DigestSHA256 || len(ds.Digest) != 32 {
		t.Errorf("DS = %+v", ds)
	}
	// A different key yields a different tag/digest (overwhelmingly).
	other := mustSigner(t, "example.test")
	ods := other.DS().Data.(dnsmsg.DSData)
	if string(ods.Digest) == string(ds.Digest) {
		t.Error("distinct keys share a DS digest")
	}
}

func TestSignRejectsOutOfZone(t *testing.T) {
	s := mustSigner(t, "example.test")
	if _, err := s.Sign(txtRRset("elsewhere.org", "x"), sigIncept, sigExpire); err == nil {
		t.Error("signed out-of-zone RRset")
	}
	if _, err := s.Sign(nil, sigIncept, sigExpire); err == nil {
		t.Error("signed empty RRset")
	}
}

// buildSignedEnv boots a DNS server with a signed parent ("test") and a
// securely delegated child ("secure.test") carrying a TLSA record; an
// unsigned sibling ("insecure.test") serves the same shape without
// signatures.
func buildSignedEnv(t *testing.T) (*Validator, *dnszone.Zone) {
	t.Helper()
	parentZone := dnszone.New("test")
	parentZone.MustAdd(dnsmsg.RR{Name: "test", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.NewTXT("parent apex")})
	parentSigner := mustSigner(t, "test")
	if _, err := SignZone(parentZone, parentSigner, sigIncept, sigExpire); err != nil {
		t.Fatal(err)
	}

	childZone := dnszone.New("secure.test")
	ca, err := pki.NewCA("dnssec-test", sigNow)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{"mx.secure.test"}, Now: sigNow})
	if err != nil {
		t.Fatal(err)
	}
	childZone.MustAdd(dane.NewEE3(leaf.Cert).RR("mx.secure.test", 300))
	childZone.MustAdd(dnsmsg.RR{Name: "mx.secure.test", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}})
	childSigner := mustSigner(t, "secure.test")
	if _, err := SignZone(childZone, childSigner, sigIncept, sigExpire); err != nil {
		t.Fatal(err)
	}
	if err := DelegateSecurely(parentSigner, childZone, childSigner, sigIncept, sigExpire); err != nil {
		t.Fatal(err)
	}

	insecureZone := dnszone.New("insecure.test")
	insecureZone.MustAdd(dnsmsg.RR{Name: "_25._tcp.mx.insecure.test", Type: dnsmsg.TypeTLSA,
		Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: []byte{1, 2, 3}}})

	srv := dnsserver.New(nil)
	srv.AddZone(parentZone)
	srv.AddZone(childZone)
	srv.AddZone(insecureZone)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	v := NewValidator(resolver.New(addr.String()))
	v.Now = func() time.Time { return sigNow }
	if err := v.AddAnchor(parentSigner.DS()); err != nil {
		t.Fatal(err)
	}
	return v, childZone
}

func TestSecureLookupChain(t *testing.T) {
	v, _ := buildSignedEnv(t)
	ctx := context.Background()
	rrs, secure, err := v.SecureLookup(ctx, "_25._tcp.mx.secure.test", dnsmsg.TypeTLSA)
	if err != nil {
		t.Fatalf("SecureLookup: %v", err)
	}
	if !secure {
		t.Fatal("chain did not validate")
	}
	if len(rrs) != 1 || rrs[0].Type != dnsmsg.TypeTLSA {
		t.Errorf("rrs = %v", rrs)
	}
}

func TestSecureLookupInsecureZone(t *testing.T) {
	v, _ := buildSignedEnv(t)
	rrs, secure, err := v.SecureLookup(context.Background(), "_25._tcp.mx.insecure.test", dnsmsg.TypeTLSA)
	if err != nil {
		t.Fatalf("SecureLookup: %v", err)
	}
	if secure {
		t.Error("unsigned zone validated")
	}
	if len(rrs) != 1 {
		t.Errorf("rrs = %v", rrs)
	}
}

func TestSecureLookupDetectsForgery(t *testing.T) {
	v, childZone := buildSignedEnv(t)
	ctx := context.Background()

	// An attacker swaps the TLSA RRset without being able to re-sign.
	childZone.Remove("_25._tcp.mx.secure.test", dnsmsg.TypeTLSA)
	childZone.MustAdd(dnsmsg.RR{Name: "_25._tcp.mx.secure.test", Type: dnsmsg.TypeTLSA,
		Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: []byte{0xBA, 0xD0}}})
	v.Client.Cache.Flush()

	_, secure, err := v.SecureLookup(ctx, "_25._tcp.mx.secure.test", dnsmsg.TypeTLSA)
	if err != nil {
		t.Fatal(err)
	}
	if secure {
		t.Error("forged TLSA RRset validated")
	}
}

func TestSecureLookupExpiredSignatures(t *testing.T) {
	v, _ := buildSignedEnv(t)
	v.Now = func() time.Time { return sigExpire.Add(48 * time.Hour) }
	_, secure, err := v.SecureLookup(context.Background(), "_25._tcp.mx.secure.test", dnsmsg.TypeTLSA)
	if err != nil {
		t.Fatal(err)
	}
	if secure {
		t.Error("expired chain validated")
	}
}

func TestValidatorWithoutAnchor(t *testing.T) {
	v, _ := buildSignedEnv(t)
	v.anchors = map[string][]dnsmsg.DSData{} // drop the trust anchor
	_, secure, err := v.SecureLookup(context.Background(), "_25._tcp.mx.secure.test", dnsmsg.TypeTLSA)
	if err != nil {
		t.Fatal(err)
	}
	if secure {
		t.Error("chain validated without any trust anchor")
	}
}

// TestSignedZoneFileRoundTrip: a signed zone survives serialization to the
// zone-file format and back, and its signatures still verify.
func TestSignedZoneFileRoundTrip(t *testing.T) {
	z := dnszone.New("roundtrip.test")
	z.MustAdd(dnsmsg.RR{Name: "_mta-sts.roundtrip.test", Type: dnsmsg.TypeTXT,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=1;")})
	z.MustAdd(dnsmsg.RR{Name: "roundtrip.test", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.MXData{Preference: 10, Host: "mx.roundtrip.test"}})
	s := mustSigner(t, "roundtrip.test")
	if _, err := SignZone(z, s, sigIncept, sigExpire); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := dnszone.ParseFile(strings.NewReader(buf.String()), "")
	if err != nil {
		t.Fatalf("ParseFile: %v\n%s", err, buf.String())
	}

	// Every RRset in the reloaded zone must still verify.
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	verified := 0
	for _, name := range z2.Names() {
		byType := map[dnsmsg.Type][]dnsmsg.RR{}
		var sigs []dnsmsg.RRSIGData
		for _, rr := range z2.Records(name) {
			if sd, ok := rr.Data.(dnsmsg.RRSIGData); ok {
				sigs = append(sigs, sd)
				continue
			}
			byType[rr.Type] = append(byType[rr.Type], rr)
		}
		for typ, rrset := range byType {
			var sig *dnsmsg.RRSIGData
			for i := range sigs {
				if sigs[i].TypeCovered == typ {
					sig = &sigs[i]
				}
			}
			if sig == nil {
				t.Fatalf("%s/%s: no signature survived the round trip", name, typ)
			}
			if err := VerifyRRSIG(rrset, *sig, dk, sigNow); err != nil {
				t.Errorf("%s/%s: %v", name, typ, err)
			}
			verified++
		}
	}
	if verified < 3 { // TXT, MX, DNSKEY
		t.Errorf("only %d RRsets verified", verified)
	}
}
