package store

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultSegmentBytes is the rotation threshold for log segments. Small
// enough that a long campaign spreads over many files (bounded loss
// surface, easy archival), large enough that the segment count stays in
// the hundreds at paper scale.
const DefaultSegmentBytes = 64 << 20

// segPrefix/segSuffix name log segments: seg-000001.jsonl, ...
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
)

// line is the JSONL wire form of one log record. Values are base64 so
// arbitrary bytes survive the JSON string round trip byte-exactly.
type line struct {
	K string `json:"k"`
	V string `json:"v"`
}

// ref locates a key's newest record in the log.
type ref struct {
	seg int   // segment number
	off int64 // byte offset of the record's line
	ln  int32 // line length including the trailing newline
}

// Disk is the append-only on-disk backend: numbered JSONL segments in
// one directory plus an in-memory key index rebuilt by replaying the
// segments on Open. Writes append to the active (highest-numbered)
// segment and rotate at SegmentBytes; Sync flushes and fsyncs the
// active segment. A torn final line — the only damage a crash can
// inflict on an append-only log — is detected and truncated on Open.
type Disk struct {
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes when
	// zero); set before the first Put.
	SegmentBytes int64

	mu      sync.Mutex
	dir     string
	index   map[string]ref
	files   map[int]*os.File // open segment handles, including the active one
	active  int              // active segment number
	size    int64            // bytes across all segments
	actSize int64            // bytes in the active segment
	w       *bufio.Writer    // buffers appends to the active segment
	dirty   bool             // w holds unflushed bytes
	closed  bool
}

// OpenDisk opens (creating if needed) the store rooted at dir and
// replays every segment to rebuild the key index. A torn trailing line
// in the final segment is truncated; torn data anywhere else is
// reported as corruption.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Disk{
		dir:   dir,
		index: make(map[string]ref),
		files: make(map[int]*os.File),
	}
	if err := s.open(); err != nil {
		if cerr := s.closeFiles(); cerr != nil {
			err = fmt.Errorf("%w (cleanup: %v)", err, cerr)
		}
		return nil, err
	}
	return s, nil
}

// open replays every existing segment into the index and positions the
// writer at the end of the newest one.
func (s *Disk) open() error {
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		segs = []int{1}
	}
	for i, n := range segs {
		f, err := os.OpenFile(s.segPath(n), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("store: open segment %d: %w", n, err)
		}
		s.files[n] = f
		valid, err := s.replay(f, n)
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		if valid < fi.Size() {
			if i != len(segs)-1 {
				return fmt.Errorf("store: segment %d corrupt at offset %d (not the active segment)", n, valid)
			}
			// Crash tore the final append; drop the partial line.
			if err := f.Truncate(valid); err != nil {
				return fmt.Errorf("store: truncate torn segment %d: %w", n, err)
			}
		}
		s.size += valid
		if i == len(segs)-1 {
			s.active = n
			s.actSize = valid
			if _, err := f.Seek(valid, 0); err != nil {
				return err
			}
			s.w = bufio.NewWriter(f)
		}
	}
	return nil
}

// closeFiles closes every open segment handle, keeping the first error.
func (s *Disk) closeFiles() error {
	var err error
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// listSegments returns the existing segment numbers in ascending order.
func (s *Disk) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("store: alien file %s in %s", name, s.dir)
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

func (s *Disk) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix))
}

// replay scans one segment from the start, indexing every well-formed
// line (later lines win), and returns the byte length of the valid
// prefix.
func (s *Disk) replay(f *os.File, seg int) (int64, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		raw, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial line (no trailing \n) is a torn write;
			// the caller truncates. EOF with no bytes is a clean end.
			return off, nil
		}
		var l line
		if jsonErr := json.Unmarshal(raw, &l); jsonErr != nil || l.K == "" {
			return off, nil
		}
		s.index[l.K] = ref{seg: seg, off: off, ln: int32(len(raw))}
		off += int64(len(raw))
	}
}

// Get implements Store.
func (s *Disk) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rf, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	v, err := s.readValue(rf)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// readValue reads and decodes one indexed record; the caller holds mu.
func (s *Disk) readValue(rf ref) ([]byte, error) {
	if rf.seg == s.active && s.dirty {
		if err := s.w.Flush(); err != nil {
			return nil, err
		}
		s.dirty = false
	}
	f := s.files[rf.seg]
	if f == nil {
		return nil, fmt.Errorf("store: segment %d vanished", rf.seg)
	}
	buf := make([]byte, rf.ln)
	if _, err := f.ReadAt(buf, rf.off); err != nil {
		return nil, fmt.Errorf("store: read segment %d @%d: %w", rf.seg, rf.off, err)
	}
	var l line
	if err := json.Unmarshal(buf, &l); err != nil {
		return nil, fmt.Errorf("store: decode segment %d @%d: %w", rf.seg, rf.off, err)
	}
	return base64.StdEncoding.DecodeString(l.V)
}

// Put implements Store.
func (s *Disk) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(key, value)
}

// Batch implements Store.
func (s *Disk) Batch(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if err := s.append(e.Key, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// append encodes and appends one record to the active segment, rotating
// first when full; the caller holds mu.
func (s *Disk) append(key string, value []byte) error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	segBytes := s.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if s.actSize >= segBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(line{K: key, V: base64.StdEncoding.EncodeToString(value)}); err != nil {
		return err
	}
	raw := buf.Bytes() // Encode appends the newline
	if _, err := s.w.Write(raw); err != nil {
		return err
	}
	s.dirty = true
	s.index[key] = ref{seg: s.active, off: s.actSize, ln: int32(len(raw))}
	s.actSize += int64(len(raw))
	s.size += int64(len(raw))
	return nil
}

// rotate fsyncs and retires the active segment and starts the next one;
// the caller holds mu.
func (s *Disk) rotate() error {
	if err := s.syncActive(); err != nil {
		return err
	}
	next := s.active + 1
	f, err := os.OpenFile(s.segPath(next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotate to segment %d: %w", next, err)
	}
	if err := s.syncDir(); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing new segment: %v)", err, cerr)
		}
		return err
	}
	s.files[next] = f
	s.active = next
	s.actSize = 0
	s.w = bufio.NewWriter(f)
	return nil
}

// syncActive flushes the write buffer and fsyncs the active segment;
// the caller holds mu.
func (s *Disk) syncActive() error {
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return err
		}
		s.dirty = false
	}
	if f := s.files[s.active]; f != nil {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs the store directory so segment creation is durable.
func (s *Disk) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Scan implements Store: ascending key order over a snapshot of the
// index taken under the lock, then lock-free-per-item reads under it.
func (s *Disk) Scan(prefix string, fn func(key string, value []byte) error) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s.mu.Unlock()
	for _, k := range keys {
		s.mu.Lock()
		rf, ok := s.index[k]
		var (
			v   []byte
			err error
		)
		if ok {
			v, err = s.readValue(rf)
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(k, v); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
	return nil
}

// Sync implements Store: flush + fsync of the active segment.
func (s *Disk) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	return s.syncActive()
}

// Close implements Store: sync, then close every segment handle.
func (s *Disk) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncActive()
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	return err
}

// SizeBytes implements Sizer: total bytes across all log segments.
func (s *Disk) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Segments reports how many log segments the store currently spans
// (status displays).
func (s *Disk) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
