package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemBasics(t *testing.T) {
	s := NewMem()
	testBasics(t, s)
}

func TestDiskBasics(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testBasics(t, s)
}

// testBasics exercises the Store contract against one backend.
func testBasics(t *testing.T, s Store) {
	t.Helper()
	if _, ok, err := s.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v, want absent", ok, err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(a) = %q ok=%v err=%v, want last write", v, ok, err)
	}
	if err := s.Batch([]Entry{{"b", []byte("x")}, {"c", nil}, {"aa", []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	v, ok, err = s.Get("c")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get(c) = %q ok=%v err=%v, want empty value present", v, ok, err)
	}

	var got []string
	if err := s.Scan("a", func(k string, v []byte) error {
		got = append(got, k+"="+string(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := "a=2,aa=y"
	if strings.Join(got, ",") != want {
		t.Fatalf("Scan(a) = %v, want %s", got, want)
	}

	// ErrStop ends the scan cleanly after the first item.
	n := 0
	if err := s.Scan("", func(string, []byte) error {
		n++
		return ErrStop
	}); err != nil {
		t.Fatalf("Scan with ErrStop: %v", err)
	}
	if n != 1 {
		t.Fatalf("ErrStop visited %d items, want 1", n)
	}

	if n, err := Len(s, ""); err != nil || n != 4 {
		t.Fatalf("Len = %d err=%v, want 4", n, err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, ok := s.(Sizer); !ok {
		t.Fatal("backend does not implement Sizer")
	} else if sz.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", sz.SizeBytes())
	}
}

func TestDiskReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a few so replay must honor last-write-wins.
	if err := s.Put("k005", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, err := Len(s2, ""); err != nil || n != 100 {
		t.Fatalf("Len after reopen = %d err=%v, want 100", n, err)
	}
	v, ok, err := s2.Get("k005")
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("Get(k005) after reopen = %q ok=%v err=%v, want overwrite to win", v, ok, err)
	}
}

func TestDiskRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SegmentBytes = 256 // force frequent rotation
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i%50), []byte(strings.Repeat("x", 40))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() < 3 {
		t.Fatalf("Segments = %d, want several after 200 writes at 256-byte threshold", s.Segments())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reads spanning old segments must survive a reopen.
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, err := Len(s2, ""); err != nil || n != 50 {
		t.Fatalf("Len after rotated reopen = %d err=%v, want 50", n, err)
	}
}

func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial JSON line with no newline.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn","v":"QUJ`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok, err := s2.Get("torn"); err != nil || ok {
		t.Fatalf("torn record visible: ok=%v err=%v", ok, err)
	}
	v, ok, err := s2.Get("good")
	if err != nil || !ok || string(v) != "value" {
		t.Fatalf("Get(good) after truncation = %q ok=%v err=%v", v, ok, err)
	}
	// The torn bytes must actually be gone so the next append is clean.
	if err := s2.Put("after", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if n, err := Len(s3, ""); err != nil || n != 2 {
		t.Fatalf("Len after crash+append+reopen = %d err=%v, want 2", n, err)
	}
}

func TestDiskMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SegmentBytes = 64
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(strings.Repeat("y", 30))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() < 2 {
		t.Fatalf("want multiple segments, got %d", s.Segments())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Garbage in a *retired* segment is corruption, not a torn tail.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	if err := os.WriteFile(seg, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s2, err := OpenDisk(dir); err == nil {
		s2.Close()
		t.Fatal("OpenDisk accepted a corrupt retired segment")
	}
}

func TestDiskEmptyKeyRejected(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
}

func TestDiskBinaryValuesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 256)
	for i := range raw {
		raw[i] = byte(i)
	}
	if err := s.Put("bin", raw); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, err := s2.Get("bin")
	if err != nil || !ok || string(v) != string(raw) {
		t.Fatalf("binary value mangled: ok=%v err=%v len=%d", ok, err, len(v))
	}
}
