package store

import (
	"sort"
	"strings"
	"sync"
)

// Mem is the in-memory backend: a map under a mutex. It exists so
// tests, experiments and one-shot campaign runs can use the campaign
// engine without touching disk; Sync and Close are no-ops.
type Mem struct {
	mu   sync.RWMutex
	m    map[string][]byte
	size int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Get implements Store.
func (s *Mem) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put implements Store.
func (s *Mem) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(key, value)
	return nil
}

// Batch implements Store.
func (s *Mem) Batch(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.put(e.Key, e.Value)
	}
	return nil
}

// put replaces one pair; the caller holds the write lock.
func (s *Mem) put(key string, value []byte) {
	if old, ok := s.m[key]; ok {
		s.size -= int64(len(key) + len(old))
	}
	s.m[key] = append([]byte(nil), value...)
	s.size += int64(len(key) + len(value))
}

// Scan implements Store: ascending key order over a snapshot of the
// matching keys, so fn observes a consistent view.
func (s *Mem) Scan(prefix string, fn func(key string, value []byte) error) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	values := make([][]byte, len(keys))
	for i, k := range keys {
		values[i] = s.m[k]
	}
	s.mu.RUnlock()
	for i, k := range keys {
		if err := fn(k, values[i]); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
	return nil
}

// Sync implements Store (memory is always "durable").
func (s *Mem) Sync() error { return nil }

// Close implements Store.
func (s *Mem) Close() error { return nil }

// SizeBytes implements Sizer: the sum of live key and value lengths.
func (s *Mem) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}
