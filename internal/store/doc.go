// Package store is the campaign layer's persistence abstraction: a
// small ordered key-value interface (get / put / scan / batch) with two
// backends behind it, following the module's noop/real adapter split.
//
// Mem keeps everything in a map and exists so tests, experiments and
// one-shot runs pay no I/O. Disk is the production shape for
// longitudinal scans: an append-only log of segmented JSONL files plus
// an in-memory index rebuilt on open, with explicit fsync'd sync points
// so the campaign engine can order "results are durable" before "the
// shard checkpoint says so". Updates are last-write-wins; nothing is
// ever rewritten in place, so a crash can at worst tear the final
// record of the active segment, which Open detects and truncates away.
//
// Scan visits keys in ascending lexicographic order in both backends —
// the property the campaign layer builds byte-identical snapshot
// exports and merge-join diffs on. docs/CAMPAIGN.md specifies the
// on-disk format and its recovery semantics; the property test in
// equiv_test.go pins the two backends to observational equivalence
// under random operation sequences.
package store
