package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestMemDiskEquivalence drives Mem and Disk through the same random
// operation sequence and asserts every observable — Get results, full
// and prefixed Scans — agrees at each checkpoint, including across a
// Close/reopen of the disk backend. This is the property that lets the
// campaign layer treat the two backends as interchangeable.
func TestMemDiskEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			mem := NewMem()
			disk, err := OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			disk.SegmentBytes = 1 << 10 // exercise rotation constantly

			key := func() string {
				return fmt.Sprintf("%c/%03d", 'a'+rng.Intn(3), rng.Intn(60))
			}
			value := func() []byte {
				return []byte(strings.Repeat(string(rune('A'+rng.Intn(26))), rng.Intn(40)))
			}

			const ops = 600
			for i := 0; i < ops; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // Put
					k, v := key(), value()
					if err := mem.Put(k, v); err != nil {
						t.Fatal(err)
					}
					if err := disk.Put(k, v); err != nil {
						t.Fatal(err)
					}
				case 5, 6: // Batch
					n := rng.Intn(8)
					batch := make([]Entry, n)
					for j := range batch {
						batch[j] = Entry{Key: key(), Value: value()}
					}
					if err := mem.Batch(batch); err != nil {
						t.Fatal(err)
					}
					if err := disk.Batch(batch); err != nil {
						t.Fatal(err)
					}
				case 7: // Get
					k := key()
					mv, mok, merr := mem.Get(k)
					dv, dok, derr := disk.Get(k)
					if merr != nil || derr != nil || mok != dok || string(mv) != string(dv) {
						t.Fatalf("op %d: Get(%q) diverged: mem=(%q,%v,%v) disk=(%q,%v,%v)",
							i, k, mv, mok, merr, dv, dok, derr)
					}
				case 8: // reopen disk mid-sequence
					if err := disk.Close(); err != nil {
						t.Fatal(err)
					}
					disk, err = OpenDisk(dir)
					if err != nil {
						t.Fatal(err)
					}
					disk.SegmentBytes = 1 << 10
				case 9: // compare a prefixed scan
					p := string(rune('a' + rng.Intn(3)))
					compareScans(t, mem, disk, p)
				}
			}
			compareScans(t, mem, disk, "")
			compareScans(t, mem, disk, "a/")
			compareScans(t, mem, disk, "b/0")

			// One final reopen: durability of the whole history.
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			disk, err = OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()
			compareScans(t, mem, disk, "")
		})
	}
}

// compareScans asserts both backends yield the same ordered (key,
// value) stream for a prefix.
func compareScans(t *testing.T, a, b Store, prefix string) {
	t.Helper()
	dump := func(s Store) []string {
		var out []string
		if err := s.Scan(prefix, func(k string, v []byte) error {
			out = append(out, k+"\x00"+string(v))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	av, bv := dump(a), dump(b)
	if len(av) != len(bv) {
		t.Fatalf("Scan(%q): %d vs %d items", prefix, len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("Scan(%q) item %d diverged:\n  mem:  %q\n  disk: %q", prefix, i, av[i], bv[i])
		}
	}
}
