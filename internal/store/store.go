package store

import "errors"

// Entry is one key-value pair, as submitted to Batch and as replayed
// from the on-disk log.
type Entry struct {
	Key   string
	Value []byte
}

// ErrStop, returned by a Scan callback, stops the scan early without
// error — the idiom for "found what I needed".
var ErrStop = errors.New("store: stop scan")

// Store is the campaign layer's persistence interface. Implementations
// are safe for concurrent use. Keys are arbitrary non-empty strings;
// values are arbitrary bytes (the campaign layer stores compact JSON).
// A Put for an existing key replaces it (last write wins).
type Store interface {
	// Get returns the current value for key; ok is false when the key
	// has never been written.
	Get(key string) (value []byte, ok bool, err error)
	// Put writes one pair. Durability is only guaranteed after Sync.
	Put(key string, value []byte) error
	// Batch writes the entries in order, equivalent to sequential Puts
	// but letting the backend amortize locking and buffering.
	Batch(entries []Entry) error
	// Scan visits every pair whose key has the given prefix, in
	// ascending key order, until fn returns an error (ErrStop stops
	// cleanly). Mutating the store from fn is unsupported.
	Scan(prefix string, fn func(key string, value []byte) error) error
	// Sync makes every completed write durable before returning. The
	// campaign engine calls it before writing a shard checkpoint so the
	// checkpoint can never claim results the log does not hold.
	Sync() error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// Sizer is optionally implemented by backends that can report how many
// bytes of storage they occupy (the campaign.store.bytes gauge).
type Sizer interface {
	SizeBytes() int64
}

// Len counts the keys under a prefix — a convenience over Scan shared
// by status displays and tests.
func Len(s Store, prefix string) (int, error) {
	n := 0
	err := s.Scan(prefix, func(string, []byte) error {
		n++
		return nil
	})
	return n, err
}
