package scanner

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/retry"
)

// The pipelined runner replaces the flat per-domain worker pool with
// three stage pools — DNS discovery, policy fetch, SMTP probing — wired
// by bounded queues, so each resource class (resolver sockets, HTTPS
// clients, SMTP dials) is sized independently and a slow MX cannot
// stall DNS discovery for the rest of the run. The paper's apparatus
// (§3) relies on exactly this shape: recipient-side probing is
// embarrassingly parallel per stage and massively redundant across
// domains, so stages parallelize and the dedup layer (dedup.go)
// collapses the redundancy. docs/PIPELINE.md has the full picture.

// FetchOutcome is the policy-retrieval stage's verdict for one domain,
// carried between pipeline stages and folded into the DomainResult by
// applyFetch. It is self-contained so a dedup cache can replay it for
// another waiter without rerunning the fetch.
type FetchOutcome struct {
	// OK is true when a valid policy was fetched and parsed.
	OK bool
	// Policy is the parsed policy when OK.
	Policy mtasts.Policy
	// Stage is the retrieval failure stage (StageNone when OK).
	Stage mtasts.Stage
	// CertProblem refines StageTLS failures.
	CertProblem pki.Problem
	// HTTPStatus refines StageHTTP failures. Backends fill it per their
	// own semantics (Live leaves it 0 on success, artifact replay
	// records the observed 200) and applyFetch copies it verbatim, so
	// flat and pipelined runs of the same backend agree byte for byte.
	HTTPStatus int
	// SyntaxErr holds the parse failure for StageSyntax.
	SyntaxErr error
}

// ProbeOutcome is the SMTP/STARTTLS stage's verdict for one MX host.
type ProbeOutcome struct {
	// NoSTARTTLS is true when the server does not offer STARTTLS at
	// all; Problem is meaningless then (footnote 4 of the paper).
	NoSTARTTLS bool
	// Problem is the certificate verdict for STARTTLS-capable hosts.
	Problem pki.Problem
}

// StageScanner is a Scanner decomposed into the three pipeline stages
// plus a finalizer. The contract mirrors the flat path exactly:
//
//	r, done := Discover(ctx, d)     // DNS: MX, TXT record, CNAME
//	if !done {
//	    applyFetch(&r, FetchPolicy(ctx, d))
//	    for _, mx := range r.MXHosts {
//	        applyProbe(&r, mx, ProbeHost(ctx, mx))
//	    }
//	}
//	Finalize(&r, took)              // consistency analysis + outcome obs
//
// FetchPolicy and ProbeHost take only scan-global state plus their key
// (domain / MX host) so the dedup layer can safely share their results
// across domains.
type StageScanner interface {
	Scanner

	// Discover runs the DNS stage. done means the remaining stages must
	// be skipped (no MTA-STS record, or a DNS failure that precludes the
	// policy fetch); Finalize still runs.
	Discover(ctx context.Context, domain string) (r DomainResult, done bool)
	// FetchPolicy runs the policy-retrieval stage.
	FetchPolicy(ctx context.Context, domain string) FetchOutcome
	// ProbeHost probes one MX host over SMTP/STARTTLS.
	ProbeHost(ctx context.Context, mxHost string) ProbeOutcome
	// Finalize derives the cross-stage verdicts (consistency analysis)
	// and records per-domain outcome metrics/events.
	Finalize(r *DomainResult, took time.Duration)
}

// applyFetch folds a fetch outcome into the result exactly as the flat
// scan paths do.
func applyFetch(r *DomainResult, f FetchOutcome) {
	if f.OK {
		r.PolicyOK = true
		r.Policy = f.Policy
		r.PolicyHTTPStatus = f.HTTPStatus
		return
	}
	r.PolicyStage = f.Stage
	r.PolicyCertProblem = f.CertProblem
	r.PolicyHTTPStatus = f.HTTPStatus
	r.PolicySyntaxErr = f.SyntaxErr
}

// applyProbe folds one MX probe outcome into the result. Iteration over
// r.MXHosts preserves the flat path's MXNoSTARTTLS ordering.
func applyProbe(r *DomainResult, mxHost string, p ProbeOutcome) {
	if p.NoSTARTTLS {
		r.MXNoSTARTTLS = append(r.MXNoSTARTTLS, mxHost)
		return
	}
	r.MXProblems[mxHost] = p.Problem
}

// StageWorkers sizes the pipelined Runner's per-stage pools. Zero or
// negative fields fall back to the Runner's flat Workers count, so
// `Pipelined: true` alone is a sane configuration.
type StageWorkers struct {
	DNS   int
	Fetch int
	Probe int
}

func (s StageWorkers) withDefaults(base int) StageWorkers {
	if base < 1 {
		base = 1
	}
	if s.DNS < 1 {
		s.DNS = base
	}
	if s.Fetch < 1 {
		s.Fetch = base
	}
	if s.Probe < 1 {
		s.Probe = base
	}
	return s
}

// Total returns the summed pool size across stages.
func (s StageWorkers) Total() int { return s.DNS + s.Fetch + s.Probe }

// ParseStageWorkers parses the -stage-workers flag syntax:
// "dns=8,fetch=4,probe=16". Stages may be omitted (they default to the
// Runner's Workers count); "auto" or "" means all defaults.
func ParseStageWorkers(spec string) (StageWorkers, error) {
	var sw StageWorkers
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "auto" {
		return sw, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return StageWorkers{}, fmt.Errorf("scanner: stage-workers %q: want stage=N", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 1 {
			return StageWorkers{}, fmt.Errorf("scanner: stage-workers %q: pool size must be a positive integer", part)
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "dns":
			sw.DNS = n
		case "fetch":
			sw.Fetch = n
		case "probe":
			sw.Probe = n
		default:
			return StageWorkers{}, fmt.Errorf("scanner: stage-workers %q: unknown stage (want dns, fetch or probe)", key)
		}
	}
	return sw, nil
}

// pipeJob is one domain moving through the pipeline. Exactly one
// goroutine owns a job at a time (ownership passes with the channel
// send), so its fields need no locking.
type pipeJob struct {
	domain string

	// ctx/stats carry the per-domain retry accounting; start anchors the
	// scanner.domain_scan.seconds observation. Set at DNS intake.
	ctx   context.Context
	stats *retry.Stats
	start time.Time

	res DomainResult
	// canceled: the run's context was done before the DNS stage touched
	// the domain; res is a Canceled placeholder and every later stage
	// (including Finalize) is skipped, mirroring the flat path.
	canceled bool
	// done: Discover short-circuited (no record / record-lookup
	// failure); fetch and probe pass the job through untouched but
	// Finalize still runs.
	done bool
}

// stageObs bundles one stage's instrumentation; all handles are nil
// no-ops when the registry is nil.
type stageObs struct {
	depth *obs.Gauge
	busy  *obs.Gauge
	lat   *obs.Histogram
}

func newStageObs(reg *obs.Registry, stage string, workers int) stageObs {
	reg.Gauge("scanner.stage." + stage + ".workers").Set(int64(workers))
	return stageObs{
		depth: reg.Gauge("scanner.stage." + stage + ".queue.depth"),
		busy:  reg.Gauge("scanner.stage." + stage + ".busy"),
		lat:   reg.Histogram("scanner.stage."+stage+".latency.seconds", nil),
	}
}

// runStage starts a pool of workers draining in, applying fn to each
// live job, and forwarding everything to out. Jobs marked canceled or
// done pass through without running fn (and without counting toward the
// stage's latency histogram). When every worker has exited, out is
// closed, so closure propagates feeder → dns → fetch → probe → out.
func runStage(workers int, so stageObs, in <-chan *pipeJob, out chan<- *pipeJob, nextDepth *obs.Gauge, fn func(*pipeJob) bool) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range in {
				so.depth.Dec()
				if !job.canceled && !job.done {
					so.busy.Inc()
					var t0 time.Time
					if so.lat != nil {
						t0 = time.Now()
					}
					ran := fn(job)
					if so.lat != nil && ran {
						so.lat.ObserveSince(t0)
					}
					so.busy.Dec()
				}
				if nextDepth != nil {
					nextDepth.Inc()
				}
				out <- job
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
}

// runPipelined is Run's staged backend. The observable run-level
// contract is identical to the flat pool: len(results) == len(domains),
// results sorted by domain, canceled placeholders for unscanned
// domains, progress reaching done == total, and the same run-level
// counters/histogram/span/events.
func (r *Runner) runPipelined(ctx context.Context, domains []string, scan StageScanner) []DomainResult {
	sw := r.StageWorkers.withDefaults(r.Workers)

	prog := r.Obs.Progress("scan")
	prog.SetTotal(int64(len(domains)))
	scans := r.Obs.Counter("scanner.scans.total")
	canceledC := r.Obs.Counter("scanner.domains.canceled")
	scanHist := r.Obs.Histogram("scanner.domain_scan.seconds", nil)
	runSpan := r.Obs.StartSpan("scan.run")
	r.Events.Emit("scan.run.start", map[string]any{
		"domains": len(domains), "workers": sw.Total(),
		"pipelined": true, "dedup": r.Dedup,
		"stage_workers": map[string]any{"dns": sw.DNS, "fetch": sw.Fetch, "probe": sw.Probe},
	})

	var dd *dedup
	if r.Dedup {
		dd = &dedup{}
	}

	dnsObs := newStageObs(r.Obs, "dns", sw.DNS)
	fetchObs := newStageObs(r.Obs, "fetch", sw.Fetch)
	probeObs := newStageObs(r.Obs, "probe", sw.Probe)

	// Bounded queues: enough slack to keep a stage busy while the next
	// one drains, small enough that backpressure reaches the feeder.
	dnsQ := make(chan *pipeJob, 2*sw.DNS)
	fetchQ := make(chan *pipeJob, 2*sw.Fetch)
	probeQ := make(chan *pipeJob, 2*sw.Probe)
	outQ := make(chan *pipeJob, sw.Probe)

	go func() {
		defer close(dnsQ)
		for _, d := range domains {
			dnsObs.depth.Inc()
			dnsQ <- &pipeJob{domain: d}
		}
	}()

	runStage(sw.DNS, dnsObs, dnsQ, fetchQ, fetchObs.depth, func(job *pipeJob) bool {
		if ctx.Err() != nil {
			// Canceled before this domain was touched: account for it
			// like the flat pool's cancelResult so the run reconciles.
			job.canceled = true
			job.res = DomainResult{Domain: job.domain, Canceled: true}
			prog.Add(1)
			canceledC.Inc()
			return false
		}
		job.ctx, job.stats = retry.WithStats(ctx)
		job.start = time.Now()
		prog.Start()
		job.res, job.done = scan.Discover(job.ctx, job.domain)
		return true
	})
	runStage(sw.Fetch, fetchObs, fetchQ, probeQ, probeObs.depth, func(job *pipeJob) bool {
		if dd != nil {
			out, _ := dd.fetch.Do(job.domain, func() FetchOutcome {
				return scan.FetchPolicy(job.ctx, job.domain)
			})
			applyFetch(&job.res, out)
		} else {
			applyFetch(&job.res, scan.FetchPolicy(job.ctx, job.domain))
		}
		return true
	})
	runStage(sw.Probe, probeObs, probeQ, outQ, nil, func(job *pipeJob) bool {
		for _, mx := range job.res.MXHosts {
			var out ProbeOutcome
			if dd != nil {
				out, _ = dd.probe.Do(mx, func() ProbeOutcome {
					return scan.ProbeHost(job.ctx, mx)
				})
			} else {
				out = scan.ProbeHost(job.ctx, mx)
			}
			applyProbe(&job.res, mx, out)
		}
		return true
	})

	// Collector: the only goroutine touching results, so no lock. Each
	// job arrives exactly once — channels never drop, stages always
	// forward, and closure is ordered behind the last forward.
	results := make([]DomainResult, 0, len(domains))
	canceled := 0
	for job := range outQ {
		if job.canceled {
			canceled++
			results = append(results, job.res)
			continue
		}
		job.res.Attempts = job.stats.Attempts()
		job.res.Retries = job.stats.Retries()
		job.res.RetryRecovered = job.stats.Recovered()
		job.res.RetryGaveUp = job.stats.GaveUp()
		if scanHist != nil {
			scanHist.ObserveSince(job.start)
		}
		scan.Finalize(&job.res, time.Since(job.start))
		prog.Done()
		scans.Inc()
		results = append(results, job.res)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Domain < results[j].Domain })

	if dd != nil {
		fs, ps := dd.fetch.Stats(), dd.probe.Stats()
		r.Obs.Counter("scanner.dedup.hits").Add(fs.Hits + ps.Hits)
		r.Obs.Counter("scanner.dedup.misses").Add(fs.Misses + ps.Misses)
	}
	runSpan.End()
	r.Events.Emit("scan.run.end", map[string]any{
		"domains": len(domains), "completed": len(results) - canceled, "canceled": canceled,
	})
	return results
}
