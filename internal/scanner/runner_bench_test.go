package scanner

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// benchScanOut, when set, makes TestBenchScanJSON time both scheduler
// backends on the synthetic workload and write the comparison to the
// given JSON file (the repo's BENCH_scan.json). `make bench` wires it.
var benchScanOut = flag.String("benchscan-out", "", "write flat-vs-pipelined scan timings to this JSON file")

// nopScanner isolates Runner overhead from probe cost.
type nopScanner struct{}

func (nopScanner) ScanDomain(_ context.Context, d string) DomainResult {
	return DomainResult{Domain: d}
}

func benchDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%04d.com", i)
	}
	return out
}

// BenchmarkRunnerNilObs is the regression guard for the nil-registry
// contract: instrumentation with Obs == nil must cost only pointer
// checks, so Runner throughput stays at its pre-observability level.
// Together with BenchmarkRunnerWithObs it is the seed baseline — both
// predate the staged pipeline and exercise only the flat backend;
// BenchmarkRunnerFlat/BenchmarkRunnerPipelined below compare the two
// schedulers on a workload with realistic per-stage costs.
func BenchmarkRunnerNilObs(b *testing.B) {
	domains := benchDomains(256)
	r := &Runner{Workers: 8, Scan: nopScanner{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(context.Background(), domains)
	}
}

// BenchmarkRunnerWithObs measures the enabled-path cost for comparison.
func BenchmarkRunnerWithObs(b *testing.B) {
	domains := benchDomains(256)
	r := &Runner{Workers: 8, Scan: nopScanner{}, Obs: obs.NewRegistry()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(context.Background(), domains)
	}
}

// benchArtifacts builds n fully healthy domains, each listing two MX
// hosts drawn from a shared pool of hostPool providers — the hosting
// concentration that makes probe dedup pay off on real populations.
func benchArtifacts(n, hostPool int) []Artifacts {
	pool := make([]string, hostPool)
	for i := range pool {
		pool[i] = fmt.Sprintf("mx%03d.bench.example", i)
	}
	arts := make([]Artifacts, n)
	for i := range arts {
		domain := fmt.Sprintf("b%05d.example", i)
		mx1, mx2 := pool[(2*i)%hostPool], pool[(2*i+1)%hostPool]
		arts[i] = Artifacts{
			Domain:             domain,
			TXT:                []string{"v=STSv1; id=20240929;"},
			MXHosts:            []string{mx1, mx2},
			PolicyHostResolves: true,
			TCPOpen:            true,
			PolicyCert:         pki.GoodProfile(scanNow, mtasts.PolicyHost(domain)),
			HTTPStatus:         200,
			PolicyBody: []byte("version: STSv1\nmode: enforce\nmx: " + mx1 +
				"\nmx: " + mx2 + "\nmax_age: 86400\n"),
			MXSTARTTLS: map[string]bool{mx1: true, mx2: true},
			MXCerts: map[string]pki.CertProfile{
				mx1: pki.GoodProfile(scanNow, mx1),
				mx2: pki.GoodProfile(scanNow, mx2),
			},
		}
	}
	return arts
}

// benchOpDelay is the synthetic per-unit network cost for the scheduler
// benchmarks (ArtifactScanner charges 3 units for DNS discovery, 2 for
// the policy fetch, and 5 per MX probe).
const benchOpDelay = 50 * time.Microsecond

// benchBackends is the single table both scheduler benchmarks and the
// BENCH_scan.json writer draw from, so they can never drift apart.
var benchBackends = []struct {
	name      string
	pipelined bool
	configure func(r *Runner)
}{
	{name: "flat", configure: func(r *Runner) { r.Workers = 64 }},
	{name: "pipelined", pipelined: true, configure: func(r *Runner) {
		r.Pipelined = true
		r.StageWorkers = StageWorkers{DNS: 32, Fetch: 24, Probe: 8}
		r.Dedup = true
	}},
}

var benchSizes = []int{1000, 10000}

func benchRunner(scan *ArtifactScanner, backend int) *Runner {
	r := &Runner{Scan: scan}
	benchBackends[backend].configure(r)
	return r
}

// BenchmarkRunnerFlat and BenchmarkRunnerPipelined compare the two
// scheduler backends on the same synthetic population at equal total
// worker budget (64): flat pays every probe, the pipeline collapses
// duplicate MX probes across domains and overlaps the stages.
func BenchmarkRunnerFlat(b *testing.B)      { benchBackend(b, 0) }
func BenchmarkRunnerPipelined(b *testing.B) { benchBackend(b, 1) }

func benchBackend(b *testing.B, backend int) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("domains=%d", n), func(b *testing.B) {
			arts := benchArtifacts(n, 50)
			domains := make([]string, n)
			for i := range arts {
				domains[i] = arts[i].Domain
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				scan := NewArtifactScanner(arts, scanNow, benchOpDelay)
				r := benchRunner(scan, backend)
				b.StartTimer()
				if res := r.Run(context.Background(), domains); len(res) != n {
					b.Fatalf("%d results for %d domains", len(res), n)
				}
			}
		})
	}
}

// TestBenchScanJSON times one run of each backend at every bench size
// and writes the comparison to -benchscan-out; it is skipped otherwise.
// The 10k-domain speedup is the tentpole's acceptance bar: the pipeline
// with dedup must be at least 2x the flat pool on this workload.
func TestBenchScanJSON(t *testing.T) {
	if *benchScanOut == "" {
		t.Skip("run via make bench (-benchscan-out not set)")
	}
	type row struct {
		Backend   string  `json:"backend"`
		Domains   int     `json:"domains"`
		Seconds   float64 `json:"seconds"`
		DomainsPS float64 `json:"domains_per_second"`
	}
	out := struct {
		Workload string  `json:"workload"`
		OpDelay  string  `json:"op_delay"`
		Rows     []row   `json:"rows"`
		Speedup  float64 `json:"speedup_10k"`
	}{
		Workload: "healthy domains, 2 MX each from a 50-host pool, 64 total workers",
		OpDelay:  benchOpDelay.String(),
	}
	elapsed := make(map[string]float64) // "backend/n" -> seconds
	for _, n := range benchSizes {
		arts := benchArtifacts(n, 50)
		domains := make([]string, n)
		for i := range arts {
			domains[i] = arts[i].Domain
		}
		for backend := range benchBackends {
			scan := NewArtifactScanner(arts, scanNow, benchOpDelay)
			r := benchRunner(scan, backend)
			start := time.Now()
			if res := r.Run(context.Background(), domains); len(res) != n {
				t.Fatalf("%d results for %d domains", len(res), n)
			}
			secs := time.Since(start).Seconds()
			name := benchBackends[backend].name
			elapsed[fmt.Sprintf("%s/%d", name, n)] = secs
			out.Rows = append(out.Rows, row{
				Backend: name, Domains: n, Seconds: secs,
				DomainsPS: float64(n) / secs,
			})
		}
	}
	out.Speedup = elapsed["flat/10000"] / elapsed["pipelined/10000"]
	if out.Speedup < 2 {
		t.Errorf("pipelined speedup at 10k domains = %.2fx, want >= 2x", out.Speedup)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchScanOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (speedup %.2fx)", *benchScanOut, out.Speedup)
}
