package scanner

import (
	"context"
	"fmt"
	"testing"

	"github.com/netsecurelab/mtasts/internal/obs"
)

// nopScanner isolates Runner overhead from probe cost.
type nopScanner struct{}

func (nopScanner) ScanDomain(_ context.Context, d string) DomainResult {
	return DomainResult{Domain: d}
}

func benchDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%04d.com", i)
	}
	return out
}

// BenchmarkRunnerNilObs is the regression guard for the nil-registry
// contract: instrumentation with Obs == nil must cost only pointer
// checks, so Runner throughput stays at its pre-observability level.
func BenchmarkRunnerNilObs(b *testing.B) {
	domains := benchDomains(256)
	r := &Runner{Workers: 8, Scan: nopScanner{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(context.Background(), domains)
	}
}

// BenchmarkRunnerWithObs measures the enabled-path cost for comparison.
func BenchmarkRunnerWithObs(b *testing.B) {
	domains := benchDomains(256)
	r := &Runner{Workers: 8, Scan: nopScanner{}, Obs: obs.NewRegistry()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(context.Background(), domains)
	}
}
