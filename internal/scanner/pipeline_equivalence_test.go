package scanner_test

import (
	"context"
	"testing"

	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// TestPipelinedMatchesFlatOnFullDataset is the tentpole's acceptance
// check: over the complete generated study population at the final
// snapshot — every record, policy, certificate, and MX failure mode the
// simulation emits, including shared provider MX hosts — the staged
// pipeline with dedup enabled classifies every domain byte-identically
// to the seed flat worker pool. (It lives in package scanner_test
// because simnet itself imports scanner.)
//
// Both backends run the same ArtifactScanner, so the comparison
// isolates the scheduler: any lost stage, misapplied outcome, or
// cross-domain cache bleed shows up as a ClassificationKey diff.
func TestPipelinedMatchesFlatOnFullDataset(t *testing.T) {
	world := simnet.Generate(simnet.Config{Seed: 7, Scale: 0.05})
	last := simnet.Months - 1

	var arts []scanner.Artifacts
	for _, d := range world.Domains {
		if a, ok := world.ArtifactsAt(d, last); ok {
			arts = append(arts, a)
		}
	}
	if len(arts) < 100 {
		t.Fatalf("dataset too small to be meaningful: %d domains", len(arts))
	}
	domains := make([]string, len(arts))
	for i := range arts {
		domains[i] = arts[i].Domain
	}
	scan := scanner.NewArtifactScanner(arts, simnet.SnapshotTime(last), 0)

	flat := (&scanner.Runner{Workers: 16, Scan: scan}).Run(context.Background(), domains)
	want := make(map[string]string, len(flat))
	for i := range flat {
		want[flat[i].Domain] = flat[i].ClassificationKey()
	}

	for _, cfg := range []struct {
		name  string
		dedup bool
	}{
		{"pipelined", false},
		{"pipelined+dedup", true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			runner := &scanner.Runner{
				Workers:   16,
				Scan:      scan,
				Pipelined: true,
				Dedup:     cfg.dedup,
			}
			results := runner.Run(context.Background(), domains)
			if len(results) != len(domains) {
				t.Fatalf("%d results for %d domains", len(results), len(domains))
			}
			diffs := 0
			for i := range results {
				r := &results[i]
				if key := r.ClassificationKey(); key != want[r.Domain] {
					diffs++
					if diffs <= 3 {
						t.Errorf("%s diverged:\n  flat: %s\n  pipe: %s",
							r.Domain, want[r.Domain], key)
					}
				}
			}
			if diffs > 3 {
				t.Errorf("... and %d more divergent domains (of %d)", diffs-3, len(domains))
			}
		})
	}
}
