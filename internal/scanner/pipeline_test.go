package scanner

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// pipelineArtifacts builds n domains drawing 2 MX hosts each from a
// shared pool of poolSize hosts, cycling through every failure mode the
// classifier distinguishes so a scheduler bug that drops or duplicates
// a stage shows up as a classification diff, not just a count diff.
func pipelineArtifacts(n, poolSize int) []Artifacts {
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("mx%02d.shared.example", i)
	}
	arts := make([]Artifacts, 0, n)
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("p%04d.example", i)
		mx1, mx2 := pool[(2*i)%poolSize], pool[(2*i+1)%poolSize]
		a := Artifacts{
			Domain:             domain,
			TXT:                []string{"v=STSv1; id=20240929;"},
			MXHosts:            []string{mx1, mx2},
			PolicyHostResolves: true,
			TCPOpen:            true,
			PolicyCert:         pki.GoodProfile(scanNow, mtasts.PolicyHost(domain)),
			HTTPStatus:         200,
			PolicyBody: []byte("version: STSv1\nmode: enforce\nmx: " + mx1 +
				"\nmx: " + mx2 + "\nmax_age: 86400\n"),
			MXSTARTTLS: map[string]bool{mx1: true, mx2: true},
			MXCerts: map[string]pki.CertProfile{
				mx1: pki.GoodProfile(scanNow, mx1),
				mx2: pki.GoodProfile(scanNow, mx2),
			},
		}
		switch i % 8 {
		case 1:
			a.TXT = []string{"v=spf1 -all"} // no record: Discover short-circuits
		case 2:
			a.TXT = []string{"v=STSv1;"} // invalid record, fetch still runs
		case 3:
			a.PolicyHostResolves = false // StageDNS
		case 4:
			a.HTTPStatus = 404 // StageHTTP
		case 5:
			a.PolicyBody = []byte("version: STSv2\n") // StageSyntax
		case 6:
			a.PolicyBody = []byte("version: STSv1\nmode: enforce\nmx: elsewhere.example\nmax_age: 86400\n") // mismatch
		case 7:
			a.MXSTARTTLS[mx2] = false // footnote-4 host
		}
		arts = append(arts, a)
	}
	return arts
}

func domainsOf(arts []Artifacts) []string {
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.Domain
	}
	return out
}

func classificationsByDomain(t *testing.T, results []DomainResult) map[string]string {
	t.Helper()
	m := make(map[string]string, len(results))
	for i := range results {
		r := &results[i]
		if _, dup := m[r.Domain]; dup {
			t.Fatalf("domain %s appears twice in results", r.Domain)
		}
		m[r.Domain] = r.ClassificationKey()
	}
	return m
}

// TestPipelinedMatchesFlatOnArtifacts is the schedulers' unit-level
// equivalence check over every artifact failure mode, with and without
// dedup (the full-dataset version lives in pipeline_equivalence_test.go).
func TestPipelinedMatchesFlatOnArtifacts(t *testing.T) {
	arts := pipelineArtifacts(64, 6)
	domains := domainsOf(arts)
	scan := NewArtifactScanner(arts, scanNow, 0)

	flat := (&Runner{Workers: 8, Scan: scan}).Run(context.Background(), domains)
	if len(flat) != len(domains) {
		t.Fatalf("flat returned %d results for %d domains", len(flat), len(domains))
	}
	want := classificationsByDomain(t, flat)

	for _, dedup := range []bool{false, true} {
		runner := &Runner{
			Workers:      3,
			Scan:         scan,
			Pipelined:    true,
			StageWorkers: StageWorkers{DNS: 4, Fetch: 2, Probe: 6},
			Dedup:        dedup,
		}
		results := runner.Run(context.Background(), domains)
		if len(results) != len(domains) {
			t.Fatalf("dedup=%v: %d results for %d domains", dedup, len(results), len(domains))
		}
		got := classificationsByDomain(t, results)
		for _, d := range domains {
			if got[d] != want[d] {
				t.Errorf("dedup=%v: %s classification diverged:\n  flat: %s\n  pipe: %s",
					dedup, d, want[d], got[d])
			}
		}
	}
}

// TestPipelineDedupCountersExact is the -race stress test with an
// analytically known dedup outcome: 40 record-bearing domains, each
// listing 2 MX hosts from an 8-host pool, give exactly 40 fetch leaders
// (unique domains, 0 hits) and 8 probe leaders out of 80 probe calls
// (72 hits) — scanner.dedup.misses = 48, scanner.dedup.hits = 72, with
// no lost or duplicated DomainResult and classifications equal to the
// flat backend's.
func TestPipelineDedupCountersExact(t *testing.T) {
	const nDomains, poolSize = 40, 8
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("mx%02d.stress.example", i)
	}
	arts := make([]Artifacts, 0, nDomains)
	for i := 0; i < nDomains; i++ {
		domain := fmt.Sprintf("s%03d.example", i)
		mx1, mx2 := pool[(2*i)%poolSize], pool[(2*i+1)%poolSize]
		arts = append(arts, Artifacts{
			Domain:             domain,
			TXT:                []string{"v=STSv1; id=20240929;"},
			MXHosts:            []string{mx1, mx2},
			PolicyHostResolves: true,
			TCPOpen:            true,
			PolicyCert:         pki.GoodProfile(scanNow, mtasts.PolicyHost(domain)),
			HTTPStatus:         200,
			PolicyBody: []byte("version: STSv1\nmode: enforce\nmx: " + mx1 +
				"\nmx: " + mx2 + "\nmax_age: 86400\n"),
			MXSTARTTLS: map[string]bool{mx1: true, mx2: true},
			MXCerts: map[string]pki.CertProfile{
				mx1: pki.GoodProfile(scanNow, mx1),
				mx2: pki.GoodProfile(scanNow, mx2),
			},
		})
	}
	domains := domainsOf(arts)
	scan := NewArtifactScanner(arts, scanNow, 10*time.Microsecond)
	want := classificationsByDomain(t,
		(&Runner{Workers: 8, Scan: scan}).Run(context.Background(), domains))

	reg := obs.NewRegistry()
	runner := &Runner{
		Workers:      4,
		Scan:         scan,
		Obs:          reg,
		Pipelined:    true,
		StageWorkers: StageWorkers{DNS: 4, Fetch: 4, Probe: 4},
		Dedup:        true,
	}
	results := runner.Run(context.Background(), domains)

	if len(results) != nDomains {
		t.Fatalf("%d results for %d domains", len(results), nDomains)
	}
	got := classificationsByDomain(t, results) // also fails on duplicates
	for _, d := range domains {
		if got[d] != want[d] {
			t.Errorf("%s diverged from flat:\n  flat: %s\n  pipe: %s", d, want[d], got[d])
		}
	}

	snap := reg.Snapshot()
	const wantMisses = nDomains + poolSize          // 40 fetch + 8 probe leaders
	const wantHits = 2*nDomains - poolSize          // 80 probe calls - 8 leaders
	if c := snap.Counters["scanner.dedup.misses"]; c != wantMisses {
		t.Errorf("scanner.dedup.misses = %d, want %d", c, wantMisses)
	}
	if c := snap.Counters["scanner.dedup.hits"]; c != wantHits {
		t.Errorf("scanner.dedup.hits = %d, want %d", c, wantHits)
	}
	if c := snap.Counters["scanner.scans.total"]; c != nDomains {
		t.Errorf("scanner.scans.total = %d, want %d", c, nDomains)
	}

	// The stage pools must have drained and every record-bearing domain
	// passed through every stage exactly once.
	for _, stage := range []string{"dns", "fetch", "probe"} {
		if v := snap.Gauges["scanner.stage."+stage+".queue.depth"]; v != 0 {
			t.Errorf("stage %s queue depth ended at %d", stage, v)
		}
		if v := snap.Gauges["scanner.stage."+stage+".busy"]; v != 0 {
			t.Errorf("stage %s busy ended at %d", stage, v)
		}
		if v := snap.Gauges["scanner.stage."+stage+".workers"]; v != 4 {
			t.Errorf("stage %s workers gauge = %d, want 4", stage, v)
		}
		if h := snap.Histograms["scanner.stage."+stage+".latency.seconds"]; h.Count != nDomains {
			t.Errorf("stage %s latency count = %d, want %d", stage, h.Count, nDomains)
		}
	}
	prog := reg.Progress("scan").Snapshot()
	if prog.Total != nDomains || prog.Done != nDomains || prog.InFlight != 0 {
		t.Errorf("progress did not reconcile: %+v", prog)
	}
}

// TestPipelinedCancellationReconciles mirrors the flat pool's contract:
// a canceled run still returns one result per domain, with the
// unscanned tail as Canceled placeholders.
func TestPipelinedCancellationReconciles(t *testing.T) {
	arts := pipelineArtifacts(200, 4)
	domains := domainsOf(arts)
	// Slow stages so cancellation lands mid-run.
	scan := NewArtifactScanner(arts, scanNow, 200*time.Microsecond)

	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	runner := &Runner{
		Workers:   2,
		Scan:      scan,
		Obs:       reg,
		Pipelined: true,
		Dedup:     true,
	}
	results := runner.Run(ctx, domains)

	if len(results) != len(domains) {
		t.Fatalf("%d results for %d domains", len(results), len(domains))
	}
	seen := make(map[string]bool, len(results))
	canceled := 0
	for i := range results {
		r := &results[i]
		if seen[r.Domain] {
			t.Fatalf("domain %s duplicated", r.Domain)
		}
		seen[r.Domain] = true
		if r.Canceled {
			canceled++
		}
	}
	snap := reg.Snapshot()
	if c := snap.Counters["scanner.domains.canceled"]; c != int64(canceled) {
		t.Errorf("canceled counter %d != %d canceled results", c, canceled)
	}
	if c := snap.Counters["scanner.scans.total"]; c != int64(len(domains)-canceled) {
		t.Errorf("scans.total %d != %d completed results", c, len(domains)-canceled)
	}
	prog := reg.Progress("scan").Snapshot()
	if prog.Total != int64(len(domains)) || prog.Done != int64(len(domains)) || prog.InFlight != 0 {
		t.Errorf("progress did not reconcile: %+v", prog)
	}
}

func TestParseStageWorkers(t *testing.T) {
	cases := []struct {
		spec    string
		want    StageWorkers
		wantErr bool
	}{
		{spec: "", want: StageWorkers{}},
		{spec: "auto", want: StageWorkers{}},
		{spec: "dns=8,fetch=4,probe=16", want: StageWorkers{DNS: 8, Fetch: 4, Probe: 16}},
		{spec: "probe=32", want: StageWorkers{Probe: 32}},
		{spec: " DNS=2 , Fetch=3 ", want: StageWorkers{DNS: 2, Fetch: 3}},
		{spec: "dns=0", wantErr: true},
		{spec: "dns=-1", wantErr: true},
		{spec: "dns=x", wantErr: true},
		{spec: "smtp=4", wantErr: true},
		{spec: "dns", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseStageWorkers(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseStageWorkers(%q): expected error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStageWorkers(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseStageWorkers(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	if got := (StageWorkers{Probe: 9}).withDefaults(4); got != (StageWorkers{DNS: 4, Fetch: 4, Probe: 9}) {
		t.Errorf("withDefaults = %+v", got)
	}
	if got := (StageWorkers{}).withDefaults(0); got != (StageWorkers{DNS: 1, Fetch: 1, Probe: 1}) {
		t.Errorf("withDefaults(0) = %+v", got)
	}
}
