// Package scanner implements the paper's measurement pipeline (§4.1–§4.2):
// for every domain with an MTA-STS record it checks the record's syntax,
// retrieves the policy over HTTPS with a staged error taxonomy
// (DNS/TCP/TLS/HTTP/Syntax, Figure 5), probes each MX over SMTP/STARTTLS
// for PKIX-valid certificates (Figure 6), and tests the consistency of mx
// patterns against MX records (Figure 8).
//
// Two backends produce the same DomainResult schema: Live scans real
// sockets (the substrate servers), and Offline evaluates materialized
// artifacts — actual TXT strings, policy bodies, and certificate
// descriptors — through the same parsers and validators, which is how the
// pipeline runs at the paper's 68K-domain scale.
//
// Runner fans a backend out over a worker pool. Both Live and Runner are
// instrumented: set their Obs field to an *obs.Registry to collect
// per-stage latency histograms (scan.*.seconds), the error-taxonomy
// counters behind Figures 4–6 (scan.policy.stage_errors.<stage>,
// scan.mx.cert.<problem>, scan.category.<category>), and a "scan"
// progress tracker; set Events to an *obs.EventSink for one JSONL
// "scan.domain" event per domain. Both fields default to nil, in which
// case the pipeline pays only nil checks — no clock reads, no
// allocations. The full metric catalog is docs/OBSERVABILITY.md.
package scanner
