package scanner

import "github.com/netsecurelab/mtasts/internal/sf"

// dedup is the scan-scoped result-sharing layer of the pipelined
// runner: one instance lives exactly as long as one Runner.Run, so a
// shared result is never staler than the scan snapshot itself.
//
// What is safe to share, and under which key, is deliberate
// (docs/PIPELINE.md §dedup):
//
//   - probe results are keyed by MX host — the probe's verdict depends
//     only on the host (and the run-constant port), and shared MTAs are
//     where the cross-domain redundancy lives (§5 of the paper);
//   - fetch results are keyed by the exact policy domain, NOT by the
//     CNAME delegation target: two domains delegating to the same
//     provider can still be served different policies (per-tenant
//     vhosting, SNI), so only byte-identical requests may share.
//
// DNS-level sharing lives below the scanner, in the resolver's own
// singleflight + cache (resolver.queries.coalesced), where it also
// benefits the flat pool.
type dedup struct {
	fetch sf.Cache[FetchOutcome]
	probe sf.Cache[ProbeOutcome]
}
