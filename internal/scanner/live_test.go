package scanner

import (
	"context"
	"net"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

// miniInternet wires the full substrate: an authoritative DNS server, a
// multi-tenant HTTPS policy host, and per-domain SMTP servers, all on
// loopback. It is the live-scan environment for integration tests.
type miniInternet struct {
	t    *testing.T
	ca   *pki.CA
	dns  *dnsserver.Server
	zone *dnszone.Zone
	pol  *policysrv.Server
	live *Live

	smtpServers map[string]*smtpd.Server
}

func newMiniInternet(t *testing.T) *miniInternet {
	t.Helper()
	ca, err := pki.NewCA("Mini Internet CA", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	zone := dnszone.New("com")
	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dns.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := dns.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	pol := policysrv.New(ca, nil)
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pol.Close() })

	m := &miniInternet{
		t: t, ca: ca, dns: dns, zone: zone, pol: pol,
		smtpServers: make(map[string]*smtpd.Server),
	}
	m.live = &Live{
		DNS:       resolver.New(dnsAddr.String()),
		Roots:     ca.Pool(),
		HTTPSPort: pol.Port(),
		HeloName:  "scanner.test",
		Timeout:   3 * time.Second,
	}
	return m
}

func (m *miniInternet) addRR(rr dnsmsg.RR) { m.zone.MustAdd(rr) }

func (m *miniInternet) a(name string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}}
}

// addDomain provisions a complete MTA-STS deployment for domain: DNS
// records, policy tenant, and an SMTP server with a certificate for the MX
// host. certOpts mutate the MX certificate issuance.
func (m *miniInternet) addDomain(domain string, policy mtasts.Policy, mxCert func(*pki.IssueOptions)) {
	m.t.Helper()
	mx := "mx." + domain
	m.addRR(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.MXData{Preference: 10, Host: mx}})
	m.addRR(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
	m.addRR(m.a("mta-sts." + domain))
	m.addRR(m.a(mx))

	m.pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: policy})

	opts := pki.IssueOptions{Names: []string{mx}}
	if mxCert != nil {
		mxCert(&opts)
	}
	leaf, err := m.ca.Issue(opts)
	if err != nil {
		m.t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	srv := smtpd.New(smtpd.Behavior{Hostname: mx, Certificate: &cert})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		m.t.Fatal(err)
	}
	m.t.Cleanup(func() { srv.Close() })
	m.smtpServers[domain] = srv
	// Each smtpd instance binds its own port; tests provision one domain
	// per miniInternet so the Live scanner can carry a single SMTP port.
	_, portStr, err := net.SplitHostPort(addr.String())
	if err != nil {
		m.t.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		m.t.Fatal(err)
	}
	m.live.SMTPPort = port
}

func enforceFor(mx ...string) mtasts.Policy {
	return mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeEnforce, MaxAge: 86400, MXPatterns: mx}
}

func TestLiveScanCleanDomain(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("good.com", enforceFor("mx.good.com"), nil)

	r := m.live.ScanDomain(context.Background(), "good.com")
	if !r.RecordValid || !r.PolicyOK {
		t.Fatalf("r = %+v", r)
	}
	if r.Misconfigured() {
		t.Errorf("clean live domain misconfigured: %v (policy stage %v, mx %v)",
			r.Categories(), r.PolicyStage, r.MXProblems)
	}
	if p, ok := r.MXProblems["mx.good.com"]; !ok || p != pki.OK {
		t.Errorf("MX problem = %v (ok=%v)", p, ok)
	}
}

func TestLiveScanNoRecord(t *testing.T) {
	m := newMiniInternet(t)
	m.addRR(dnsmsg.RR{Name: "plain.com", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.MXData{Preference: 10, Host: "mx.plain.com"}})
	m.addRR(m.a("mx.plain.com"))
	r := m.live.ScanDomain(context.Background(), "plain.com")
	if r.RecordPresent {
		t.Errorf("r = %+v", r)
	}
}

func TestLiveScanBadRecordGoodPolicy(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("badrec.com", enforceFor("mx.badrec.com"), nil)
	// Replace the record with an invalid one.
	m.zone.Remove("_mta-sts.badrec.com", dnsmsg.TypeTXT)
	m.addRR(dnsmsg.RR{Name: "_mta-sts.badrec.com", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.NewTXT("v=STSv1; id=bad-id;")})
	m.live.DNS.Cache.Flush()

	r := m.live.ScanDomain(context.Background(), "badrec.com")
	if !r.RecordPresent || r.RecordValid {
		t.Fatalf("r.Record = %+v err=%v", r.Record, r.RecordErr)
	}
	if !hasCategory(r, CategoryDNSRecord) {
		t.Errorf("categories = %v", r.Categories())
	}
	// The policy itself still fetches fine.
	if !r.PolicyOK {
		t.Errorf("policy stage = %v", r.PolicyStage)
	}
}

func TestLiveScanPolicyDNSError(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("nodns.com", enforceFor("mx.nodns.com"), nil)
	m.zone.Remove("mta-sts.nodns.com", dnsmsg.TypeA)
	m.live.DNS.Cache.Flush()

	r := m.live.ScanDomain(context.Background(), "nodns.com")
	if r.PolicyOK || r.PolicyStage != mtasts.StageDNS {
		t.Errorf("stage = %v", r.PolicyStage)
	}
}

func TestLiveScanPolicyTLSError(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("badtls.com", enforceFor("mx.badtls.com"), nil)
	tenant, _ := m.pol.Tenant("mta-sts.badtls.com")
	tenant.CertMode = policysrv.CertWrongName
	m.pol.AddTenant(tenant) // reset cached certificate

	r := m.live.ScanDomain(context.Background(), "badtls.com")
	if r.PolicyStage != mtasts.StageTLS || r.PolicyCertProblem != pki.ProblemNameMismatch {
		t.Errorf("stage=%v problem=%v", r.PolicyStage, r.PolicyCertProblem)
	}
}

func TestLiveScanInconsistentPolicy(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("drift.com", enforceFor("mx.formerhost.net"), nil)

	r := m.live.ScanDomain(context.Background(), "drift.com")
	if !r.PolicyOK {
		t.Fatalf("policy stage = %v", r.PolicyStage)
	}
	if r.Mismatch.Kind != inconsistency.KindDomain {
		t.Errorf("mismatch = %v", r.Mismatch.Kind)
	}
	if !r.DeliveryFailure() {
		t.Error("enforce + full mismatch should be a delivery failure")
	}
}

func TestLiveScanMXBadCert(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("badmx.com", enforceFor("mx.badmx.com"), func(o *pki.IssueOptions) {
		o.SelfSigned = true
	})
	r := m.live.ScanDomain(context.Background(), "badmx.com")
	if p := r.MXProblems["mx.badmx.com"]; p != pki.ProblemSelfSigned {
		t.Errorf("MX problem = %v", p)
	}
	if !hasCategory(r, CategoryMXCert) || !r.DeliveryFailure() {
		t.Errorf("categories = %v, failure = %v", r.Categories(), r.DeliveryFailure())
	}
}

func TestLiveScanPolicyDelegationCNAME(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("delegated.com", enforceFor("mx.delegated.com"), nil)
	// Replace the A record with a CNAME to a provider host.
	m.zone.Remove("mta-sts.delegated.com", dnsmsg.TypeA)
	m.addRR(dnsmsg.RR{Name: "mta-sts.delegated.com", Type: dnsmsg.TypeCNAME, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.CNAMEData{Target: "provider-policy.com"}})
	m.addRR(m.a("provider-policy.com"))
	m.live.DNS.Cache.Flush()

	r := m.live.ScanDomain(context.Background(), "delegated.com")
	if r.PolicyCNAME != "provider-policy.com" {
		t.Errorf("PolicyCNAME = %q", r.PolicyCNAME)
	}
	if !r.PolicyOK {
		t.Errorf("policy stage = %v", r.PolicyStage)
	}
}

func TestRunnerParallelScan(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("par.com", enforceFor("mx.par.com"), nil)
	runner := &Runner{Workers: 4, Scan: m.live}
	results := runner.Run(context.Background(), []string{"par.com", "par.com", "par.com", "absent.com"})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	s := Summarize(results)
	if s.Total != 4 || s.WithRecord != 3 {
		t.Errorf("summary = %+v", s)
	}
}
