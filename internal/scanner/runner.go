package scanner

import (
	"context"
	"sort"
	"sync"
)

// Scanner is the per-domain scan interface shared by Live and artifact
// replays.
type Scanner interface {
	ScanDomain(ctx context.Context, domain string) DomainResult
}

// Runner fans a scan out over many domains with a bounded worker pool,
// mirroring the paper's weekly/monthly snapshot scans.
type Runner struct {
	// Workers is the pool size (minimum 1).
	Workers int
	// Scan is the per-domain scanner.
	Scan Scanner
}

// Run scans all domains and returns results sorted by domain name. The
// context cancels outstanding work; completed results are still returned.
func (r *Runner) Run(ctx context.Context, domains []string) []DomainResult {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan string)
	resCh := make(chan DomainResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				select {
				case <-ctx.Done():
					return
				default:
				}
				resCh <- r.Scan.ScanDomain(ctx, d)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case <-ctx.Done():
				return
			case jobs <- d:
			}
		}
	}()
	done := make(chan struct{})
	var results []DomainResult
	go func() {
		defer close(done)
		for res := range resCh {
			results = append(results, res)
		}
	}()
	wg.Wait()
	close(resCh)
	<-done
	sort.Slice(results, func(i, j int) bool { return results[i].Domain < results[j].Domain })
	return results
}

// Summary aggregates a snapshot of results into the headline counts of
// §4.2 and the per-figure series.
type Summary struct {
	Total         int // domains scanned
	WithRecord    int // domains with an MTA-STS record (valid or not)
	Misconfigured int

	ByCategory map[Category]int
	// PolicyStageCounts breaks CategoryPolicy down per Figure 5.
	PolicyStageCounts map[string]int
	// MismatchKindCounts breaks CategoryInconsistency down per Figure 8.
	MismatchKindCounts map[string]int

	AllMXInvalid       int
	PartiallyMXInvalid int
	EnforceCertRisk    int
	EnforceMismatch    int
	DeliveryFailures   int
}

// Summarize computes the aggregate over a result set.
func Summarize(results []DomainResult) Summary {
	s := Summary{
		ByCategory:         make(map[Category]int),
		PolicyStageCounts:  make(map[string]int),
		MismatchKindCounts: make(map[string]int),
	}
	for i := range results {
		r := &results[i]
		s.Total++
		if !r.RecordPresent {
			continue
		}
		s.WithRecord++
		if r.Misconfigured() {
			s.Misconfigured++
		}
		for _, c := range r.Categories() {
			s.ByCategory[c]++
			switch c {
			case CategoryPolicy:
				s.PolicyStageCounts[r.PolicyStage.String()]++
			case CategoryInconsistency:
				s.MismatchKindCounts[r.Mismatch.Kind.String()]++
			}
		}
		if r.AllMXInvalid() {
			s.AllMXInvalid++
		}
		if r.PartiallyMXInvalid() {
			s.PartiallyMXInvalid++
		}
		if r.EnforceCertFailureRisk() {
			s.EnforceCertRisk++
		}
		if r.EnforceMismatchFailure() {
			s.EnforceMismatch++
		}
		if r.DeliveryFailure() {
			s.DeliveryFailures++
		}
	}
	return s
}
