package scanner

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
)

// Scanner is the per-domain scan interface shared by Live and artifact
// replays.
type Scanner interface {
	ScanDomain(ctx context.Context, domain string) DomainResult
}

// Runner fans a scan out over many domains, mirroring the paper's
// weekly/monthly snapshot scans. It has two backends: the flat
// per-domain worker pool (default) and, when Pipelined is set and Scan
// implements StageScanner, the staged pipeline of pipeline.go. Both
// honor the same contract: results sorted by domain, one result per
// submitted domain, canceled placeholders for domains the run could
// not scan.
type Runner struct {
	// Workers is the flat pool size (minimum 1); it also seeds any
	// unset StageWorkers field in pipelined mode.
	Workers int
	// Scan is the per-domain scanner.
	Scan Scanner
	// Obs, when non-nil, receives run-level metrics: the "scan" progress
	// tracker (total/done/in-flight/rate, served at /debug/scanprogress),
	// the scanner.queue.depth and scanner.workers.busy gauges, the
	// scanner.scans.total counter, and the scanner.domain_scan.seconds
	// latency histogram. Pipelined runs replace the flat pool gauges
	// with the scanner.stage.<stage>.* family. A nil registry costs one
	// pointer check per run.
	Obs *obs.Registry
	// Events, when non-nil, receives scan.run.start / scan.run.end
	// events bracketing each Run call.
	Events *obs.EventSink

	// Pipelined selects the staged backend. It requires Scan to
	// implement StageScanner; otherwise Run falls back to the flat pool.
	Pipelined bool
	// StageWorkers sizes the per-stage pools in pipelined mode; unset
	// stages default to Workers.
	StageWorkers StageWorkers
	// Dedup, in pipelined mode, collapses duplicate in-flight policy
	// fetches and MX probes and shares their results across domains for
	// the duration of the run (scanner.dedup.hits/misses count the
	// effect; docs/PIPELINE.md discusses when sharing is sound).
	Dedup bool
}

// Run scans all domains and returns results sorted by domain name. The
// context cancels outstanding work; completed results are still
// returned, and every domain that did not get a full scan is returned
// as a Canceled result so the run reconciles: len(results) always
// equals len(domains), the queue-depth gauge drains to zero, and the
// progress tracker finishes at done == total.
func (r *Runner) Run(ctx context.Context, domains []string) []DomainResult {
	if r.Pipelined {
		if ss, ok := r.Scan.(StageScanner); ok {
			return r.runPipelined(ctx, domains, ss)
		}
	}
	return r.runFlat(ctx, domains)
}

// runFlat is the seed worker-pool backend, unchanged in behavior.
func (r *Runner) runFlat(ctx context.Context, domains []string) []DomainResult {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}

	// Run-level instrumentation; every handle is nil (a no-op) when Obs
	// is nil.
	prog := r.Obs.Progress("scan")
	prog.SetTotal(int64(len(domains)))
	queueDepth := r.Obs.Gauge("scanner.queue.depth")
	queueDepth.Set(int64(len(domains)))
	busy := r.Obs.Gauge("scanner.workers.busy")
	r.Obs.Gauge("scanner.workers.total").Set(int64(workers))
	scans := r.Obs.Counter("scanner.scans.total")
	scanHist := r.Obs.Histogram("scanner.domain_scan.seconds", nil)
	runSpan := r.Obs.StartSpan("scan.run")
	r.Events.Emit("scan.run.start", map[string]any{
		"domains": len(domains), "workers": workers,
	})

	jobs := make(chan string)
	resCh := make(chan DomainResult, workers)
	canceledC := r.Obs.Counter("scanner.domains.canceled")
	// cancelResult accounts a domain the run could not scan: the queue
	// drains, the progress tracker still reaches done == total (Add skips
	// the in-flight pairing), and the caller gets a Canceled placeholder.
	cancelResult := func(d string) DomainResult {
		queueDepth.Dec()
		prog.Add(1)
		canceledC.Inc()
		return DomainResult{Domain: d, Canceled: true}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				if ctx.Err() != nil {
					// Canceled after the job was pulled: account for it
					// instead of dropping it, and keep draining so every
					// in-channel domain is accounted.
					resCh <- cancelResult(d)
					continue
				}
				queueDepth.Dec()
				busy.Inc()
				prog.Start()
				var start time.Time
				if scanHist != nil {
					start = time.Now()
				}
				res := r.Scan.ScanDomain(ctx, d)
				if scanHist != nil {
					scanHist.ObserveSince(start)
				}
				prog.Done()
				busy.Dec()
				scans.Inc()
				resCh <- res
			}
		}()
	}
	// The feeder joins the same WaitGroup: it may emit canceled results
	// for the unsent tail, so resCh must stay open until it exits too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		for i, d := range domains {
			select {
			case <-ctx.Done():
				for _, rest := range domains[i:] {
					resCh <- cancelResult(rest)
				}
				return
			case jobs <- d:
			}
		}
	}()
	done := make(chan struct{})
	var results []DomainResult
	var canceled int
	go func() {
		defer close(done)
		for res := range resCh {
			if res.Canceled {
				canceled++
			}
			results = append(results, res)
		}
	}()
	wg.Wait()
	close(resCh)
	<-done
	sort.Slice(results, func(i, j int) bool { return results[i].Domain < results[j].Domain })

	runSpan.End()
	r.Events.Emit("scan.run.end", map[string]any{
		"domains": len(domains), "completed": len(results) - canceled, "canceled": canceled,
	})
	return results
}

// Summary aggregates a snapshot of results into the headline counts of
// §4.2 and the per-figure series.
type Summary struct {
	Total         int // domains submitted (scanned + canceled)
	Canceled      int // domains cut short by run cancellation
	WithRecord    int // domains with an MTA-STS record (valid or not)
	Misconfigured int

	ByCategory map[Category]int
	// ByCode breaks the taxonomy down to individual error codes
	// (docs/ERRORS.md): how many domains exhibit each failure mode at
	// least once. Finer-grained than ByCategory — a domain with three
	// expired MX certificates counts once under "expired".
	ByCode map[errtax.Code]int
	// PolicyStageCounts breaks CategoryPolicy down per Figure 5.
	PolicyStageCounts map[string]int
	// MismatchKindCounts breaks CategoryInconsistency down per Figure 8.
	MismatchKindCounts map[string]int

	AllMXInvalid       int
	PartiallyMXInvalid int
	EnforceCertRisk    int
	EnforceMismatch    int
	DeliveryFailures   int
}

// Summarize computes the aggregate over a result set.
func Summarize(results []DomainResult) Summary {
	s := Summary{
		ByCategory:         make(map[Category]int),
		ByCode:             make(map[errtax.Code]int),
		PolicyStageCounts:  make(map[string]int),
		MismatchKindCounts: make(map[string]int),
	}
	for i := range results {
		r := &results[i]
		s.Total++
		if r.Canceled {
			// Partial evidence, not a verdict: canceled domains are
			// counted but excluded from the error taxonomy.
			s.Canceled++
			continue
		}
		if !r.RecordPresent {
			continue
		}
		s.WithRecord++
		if r.Misconfigured() {
			s.Misconfigured++
		}
		for _, c := range r.Categories() {
			s.ByCategory[c]++
			switch c {
			case CategoryPolicy:
				s.PolicyStageCounts[r.PolicyStage.String()]++
			case CategoryInconsistency:
				s.MismatchKindCounts[r.Mismatch.Kind.String()]++
			}
		}
		seenCodes := make(map[errtax.Code]bool, 4)
		for _, e := range r.TaxErrors() {
			if !seenCodes[e.Code] {
				seenCodes[e.Code] = true
				s.ByCode[e.Code]++
			}
		}
		if r.AllMXInvalid() {
			s.AllMXInvalid++
		}
		if r.PartiallyMXInvalid() {
			s.PartiallyMXInvalid++
		}
		if r.EnforceCertFailureRisk() {
			s.EnforceCertRisk++
		}
		if r.EnforceMismatchFailure() {
			s.EnforceMismatch++
		}
		if r.DeliveryFailure() {
			s.DeliveryFailures++
		}
	}
	return s
}
