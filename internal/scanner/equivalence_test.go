package scanner

import (
	"context"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
)

// TestLiveOfflineEquivalence pins the central substitution claim of the
// reproduction: for every failure mode, scanning real sockets (Live) and
// evaluating materialized artifacts (Offline) produce the same
// classification — same error categories, same policy stage, same
// certificate problem, same mismatch kind, same delivery verdict.
func TestLiveOfflineEquivalence(t *testing.T) {
	now := time.Now()

	type mode struct {
		name string
		// configureLive mutates the live substrate for the domain.
		configureLive func(m *miniInternet, domain string)
		// artifacts builds the offline equivalent.
		artifacts func(domain string) Artifacts
	}

	goodArt := func(domain string) Artifacts {
		mx := "mx." + domain
		return Artifacts{
			Domain:             domain,
			TXT:                []string{"v=STSv1; id=20240929;"},
			MXHosts:            []string{mx},
			PolicyHostResolves: true,
			TCPOpen:            true,
			PolicyCert:         pki.GoodProfile(now, mtasts.PolicyHost(domain)),
			HTTPStatus:         200,
			PolicyBody: []byte("version: STSv1\r\nmode: enforce\r\nmx: " + mx +
				"\r\nmax_age: 86400\r\n"),
			MXSTARTTLS: map[string]bool{mx: true},
			MXCerts:    map[string]pki.CertProfile{mx: pki.GoodProfile(now, mx)},
		}
	}

	modes := []mode{
		{
			name:          "clean",
			configureLive: func(m *miniInternet, domain string) {},
			artifacts:     goodArt,
		},
		{
			name: "bad record id",
			configureLive: func(m *miniInternet, domain string) {
				m.zone.Remove("_mta-sts."+domain, dnsmsg.TypeTXT)
				m.addRR(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT,
					Class: dnsmsg.ClassIN, TTL: 60, Data: dnsmsg.NewTXT("v=STSv1; id=bad-id;")})
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.TXT = []string{"v=STSv1; id=bad-id;"}
				return a
			},
		},
		{
			name: "policy host unresolvable",
			configureLive: func(m *miniInternet, domain string) {
				m.zone.Remove("mta-sts."+domain, dnsmsg.TypeA)
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.PolicyHostResolves = false
				return a
			},
		},
		{
			name: "policy TLS wrong name",
			configureLive: func(m *miniInternet, domain string) {
				tenant, _ := m.pol.Tenant("mta-sts." + domain)
				tenant.CertMode = policysrv.CertWrongName
				m.pol.AddTenant(tenant)
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.PolicyCert = pki.GoodProfile(now, domain)
				return a
			},
		},
		{
			name: "policy HTTP 404",
			configureLive: func(m *miniInternet, domain string) {
				tenant, _ := m.pol.Tenant("mta-sts." + domain)
				tenant.HTTPMode = policysrv.HTTPNotFound
				m.pol.AddTenant(tenant)
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.HTTPStatus = 404
				return a
			},
		},
		{
			name: "empty policy",
			configureLive: func(m *miniInternet, domain string) {
				tenant, _ := m.pol.Tenant("mta-sts." + domain)
				tenant.HTTPMode = policysrv.HTTPEmptyBody
				m.pol.AddTenant(tenant)
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.PolicyBody = nil
				return a
			},
		},
		{
			name: "mx pattern mismatch",
			configureLive: func(m *miniInternet, domain string) {
				tenant, _ := m.pol.Tenant("mta-sts." + domain)
				tenant.Policy.MXPatterns = []string{"mx.formerhost.net"}
				m.pol.AddTenant(tenant)
			},
			artifacts: func(domain string) Artifacts {
				a := goodArt(domain)
				a.PolicyBody = []byte("version: STSv1\r\nmode: enforce\r\nmx: mx.formerhost.net\r\nmax_age: 86400\r\n")
				return a
			},
		},
	}

	for i, md := range modes {
		md := md
		t.Run(md.name, func(t *testing.T) {
			domain := "eq" + string(rune('a'+i)) + ".com"
			m := newMiniInternet(t)
			m.addDomain(domain, enforceFor("mx."+domain), nil)
			md.configureLive(m, domain)
			m.live.DNS.Cache.Flush()

			liveRes := m.live.ScanDomain(context.Background(), domain)
			offRes := ScanArtifacts(md.artifacts(domain), now)

			compare(t, "RecordPresent", liveRes.RecordPresent, offRes.RecordPresent)
			compare(t, "RecordValid", liveRes.RecordValid, offRes.RecordValid)
			compare(t, "PolicyOK", liveRes.PolicyOK, offRes.PolicyOK)
			compare(t, "PolicyStage", liveRes.PolicyStage, offRes.PolicyStage)
			compare(t, "PolicyCertProblem", liveRes.PolicyCertProblem, offRes.PolicyCertProblem)
			compare(t, "MismatchKind", liveRes.Mismatch.Kind, offRes.Mismatch.Kind)
			compare(t, "Misconfigured", liveRes.Misconfigured(), offRes.Misconfigured())
			compare(t, "DeliveryFailure", liveRes.DeliveryFailure(), offRes.DeliveryFailure())

			liveCats, offCats := liveRes.Categories(), offRes.Categories()
			if len(liveCats) != len(offCats) {
				t.Errorf("categories: live %v vs offline %v", liveCats, offCats)
			} else {
				for j := range liveCats {
					if liveCats[j] != offCats[j] {
						t.Errorf("category %d: live %v vs offline %v", j, liveCats[j], offCats[j])
					}
				}
			}
		})
	}
}

func compare[T comparable](t *testing.T, field string, live, off T) {
	t.Helper()
	if live != off {
		t.Errorf("%s: live=%v offline=%v", field, live, off)
	}
}
