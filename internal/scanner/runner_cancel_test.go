package scanner

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/obs"
)

// slowScanner blocks each scan until release is closed, then returns a
// minimal result; it counts how many scans actually ran.
type slowScanner struct {
	release chan struct{}
	ran     atomic.Int64
}

func (s *slowScanner) ScanDomain(ctx context.Context, domain string) DomainResult {
	select {
	case <-s.release:
	case <-ctx.Done():
	}
	s.ran.Add(1)
	return DomainResult{Domain: domain}
}

// Regression: canceling a run mid-flight used to drop domains already
// pulled from the queue (no DomainResult at all), abandon the unsent
// tail, and leave scanner.queue.depth nonzero. Every submitted domain
// must come back — scanned or Canceled — with the gauges drained.
func TestRunnerCancelAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	scan := &slowScanner{release: make(chan struct{})}
	r := &Runner{Workers: 4, Scan: scan, Obs: reg}

	domains := make([]string, 64)
	for i := range domains {
		domains[i] = "d" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ".example"
	}

	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan []DomainResult, 1)
	go func() { resCh <- r.Run(ctx, domains) }()

	// Let the pool pick up work, then cancel while scans are blocked.
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(scan.release)

	var results []DomainResult
	select {
	case results = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	if len(results) != len(domains) {
		t.Fatalf("got %d results for %d domains", len(results), len(domains))
	}
	seen := make(map[string]bool, len(results))
	canceled := 0
	for _, res := range results {
		if seen[res.Domain] {
			t.Errorf("domain %s reported twice", res.Domain)
		}
		seen[res.Domain] = true
		if res.Canceled {
			canceled++
		}
	}
	for _, d := range domains {
		if !seen[d] {
			t.Errorf("domain %s unaccounted for", d)
		}
	}
	if depth := reg.Gauge("scanner.queue.depth").Value(); depth != 0 {
		t.Errorf("scanner.queue.depth = %d after run, want 0", depth)
	}
	if busy := reg.Gauge("scanner.workers.busy").Value(); busy != 0 {
		t.Errorf("scanner.workers.busy = %d after run, want 0", busy)
	}
	snap := reg.Progress("scan").Snapshot()
	if snap.Done != int64(len(domains)) || snap.InFlight != 0 {
		t.Errorf("progress done=%d inFlight=%d, want done=%d inFlight=0",
			snap.Done, snap.InFlight, len(domains))
	}
	if got := reg.Counter("scanner.domains.canceled").Value(); got != int64(canceled) {
		t.Errorf("scanner.domains.canceled = %d, results marked canceled = %d", got, canceled)
	}
	if int64(canceled) == 0 && scan.ran.Load() < int64(len(domains)) {
		t.Errorf("no canceled results yet only %d/%d scans ran", scan.ran.Load(), len(domains))
	}

	s := Summarize(results)
	if s.Total != len(domains) || s.Canceled != canceled {
		t.Errorf("Summary total=%d canceled=%d, want %d/%d", s.Total, s.Canceled, len(domains), canceled)
	}
}

// An uncanceled run must be unaffected by the accounting path.
func TestRunnerUncanceledHasNoCanceledResults(t *testing.T) {
	reg := obs.NewRegistry()
	scan := &slowScanner{release: make(chan struct{})}
	close(scan.release)
	r := &Runner{Workers: 3, Scan: scan, Obs: reg}
	results := r.Run(context.Background(), []string{"a.example", "b.example", "c.example"})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if res.Canceled {
			t.Errorf("%s marked canceled on a clean run", res.Domain)
		}
	}
	if got := reg.Counter("scanner.domains.canceled").Value(); got != 0 {
		t.Errorf("scanner.domains.canceled = %d on a clean run", got)
	}
}
