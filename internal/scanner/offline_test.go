package scanner

import (
	"errors"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
)

var scanNow = time.Date(2024, 9, 29, 0, 0, 0, 0, time.UTC)

// goodArtifacts returns a fully correct deployment.
func goodArtifacts(domain string) Artifacts {
	mx := "mx." + domain
	return Artifacts{
		Domain:             domain,
		TXT:                []string{"v=STSv1; id=20240929;"},
		MXHosts:            []string{mx},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(scanNow, mtasts.PolicyHost(domain)),
		HTTPStatus:         200,
		PolicyBody: []byte("version: STSv1\nmode: enforce\nmx: " + mx +
			"\nmax_age: 86400\n"),
		MXSTARTTLS: map[string]bool{mx: true},
		MXCerts:    map[string]pki.CertProfile{mx: pki.GoodProfile(scanNow, mx)},
	}
}

func TestScanArtifactsClean(t *testing.T) {
	r := ScanArtifacts(goodArtifacts("example.com"), scanNow)
	if !r.RecordPresent || !r.RecordValid || !r.PolicyOK {
		t.Fatalf("r = %+v", r)
	}
	if r.Misconfigured() {
		t.Errorf("clean domain misconfigured: %v", r.Categories())
	}
	if r.DeliveryFailure() {
		t.Error("clean domain flagged as delivery failure")
	}
}

func TestScanArtifactsNoRecord(t *testing.T) {
	a := goodArtifacts("example.com")
	a.TXT = []string{"v=spf1 -all"}
	r := ScanArtifacts(a, scanNow)
	if r.RecordPresent {
		t.Errorf("r = %+v", r)
	}
}

func TestScanArtifactsBadRecord(t *testing.T) {
	a := goodArtifacts("example.com")
	a.TXT = []string{"v=STSv1; id=2024-09-29;"} // dash in id
	r := ScanArtifacts(a, scanNow)
	if !r.RecordPresent || r.RecordValid {
		t.Fatalf("r = %+v", r)
	}
	if !errors.Is(r.RecordErr, mtasts.ErrBadID) {
		t.Errorf("RecordErr = %v", r.RecordErr)
	}
	if !hasCategory(r, CategoryDNSRecord) {
		t.Errorf("categories = %v", r.Categories())
	}
}

func TestScanArtifactsPolicyStages(t *testing.T) {
	mutate := []struct {
		name  string
		fn    func(*Artifacts)
		stage mtasts.Stage
	}{
		{"dns", func(a *Artifacts) { a.PolicyHostResolves = false }, mtasts.StageDNS},
		{"tcp", func(a *Artifacts) { a.TCPOpen = false }, mtasts.StageTCP},
		{"tls", func(a *Artifacts) { a.PolicyCert = pki.ExpiredProfile(scanNow, mtasts.PolicyHost(a.Domain)) }, mtasts.StageTLS},
		{"http", func(a *Artifacts) { a.HTTPStatus = 404 }, mtasts.StageHTTP},
		{"syntax", func(a *Artifacts) { a.PolicyBody = []byte("garbage") }, mtasts.StageSyntax},
		{"empty", func(a *Artifacts) { a.PolicyBody = nil }, mtasts.StageSyntax},
	}
	for _, m := range mutate {
		a := goodArtifacts("example.com")
		m.fn(&a)
		r := ScanArtifacts(a, scanNow)
		if r.PolicyOK || r.PolicyStage != m.stage {
			t.Errorf("%s: stage = %v ok=%v", m.name, r.PolicyStage, r.PolicyOK)
		}
		if !hasCategory(r, CategoryPolicy) {
			t.Errorf("%s: categories = %v", m.name, r.Categories())
		}
	}
}

func TestScanArtifactsTLSWrongName(t *testing.T) {
	// The dominant self-managed error: certificate for the bare domain.
	a := goodArtifacts("example.com")
	a.PolicyCert = pki.GoodProfile(scanNow, "example.com")
	r := ScanArtifacts(a, scanNow)
	if r.PolicyStage != mtasts.StageTLS || r.PolicyCertProblem != pki.ProblemNameMismatch {
		t.Errorf("stage=%v problem=%v", r.PolicyStage, r.PolicyCertProblem)
	}
}

func TestScanArtifactsMXCerts(t *testing.T) {
	a := goodArtifacts("example.com")
	a.MXHosts = []string{"mx1.example.com", "mx2.example.com"}
	a.MXSTARTTLS = map[string]bool{"mx1.example.com": true, "mx2.example.com": true}
	a.MXCerts = map[string]pki.CertProfile{
		"mx1.example.com": pki.GoodProfile(scanNow, "mx1.example.com"),
		"mx2.example.com": pki.SelfSignedProfile(scanNow, "mx2.example.com"),
	}
	a.PolicyBody = []byte("version: STSv1\nmode: enforce\nmx: mx1.example.com\nmx: mx2.example.com\nmax_age: 86400\n")
	r := ScanArtifacts(a, scanNow)
	if !hasCategory(r, CategoryMXCert) {
		t.Fatalf("categories = %v", r.Categories())
	}
	if !r.PartiallyMXInvalid() || r.AllMXInvalid() {
		t.Errorf("partial/all = %v/%v", r.PartiallyMXInvalid(), r.AllMXInvalid())
	}
	if !r.EnforceCertFailureRisk() {
		t.Error("enforce cert risk not flagged")
	}
	// One valid matched MX remains: not a hard delivery failure.
	if r.DeliveryFailure() {
		t.Error("delivery failure with a usable MX")
	}
}

func TestScanArtifactsAllMXInvalidDeliveryFailure(t *testing.T) {
	a := goodArtifacts("example.com")
	a.MXCerts["mx.example.com"] = pki.ExpiredProfile(scanNow, "mx.example.com")
	r := ScanArtifacts(a, scanNow)
	if !r.AllMXInvalid() || !r.DeliveryFailure() {
		t.Errorf("all-invalid enforce: all=%v fail=%v", r.AllMXInvalid(), r.DeliveryFailure())
	}
}

func TestScanArtifactsTestingModeNoDeliveryFailure(t *testing.T) {
	a := goodArtifacts("example.com")
	a.PolicyBody = []byte("version: STSv1\nmode: testing\nmx: mx.example.com\nmax_age: 86400\n")
	a.MXCerts["mx.example.com"] = pki.ExpiredProfile(scanNow, "mx.example.com")
	r := ScanArtifacts(a, scanNow)
	if r.DeliveryFailure() || r.EnforceCertFailureRisk() {
		t.Errorf("testing mode flagged: %+v", r)
	}
}

func TestScanArtifactsInconsistency(t *testing.T) {
	a := goodArtifacts("example.com")
	a.PolicyBody = []byte("version: STSv1\nmode: enforce\nmx: mx.oldprovider.net\nmax_age: 86400\n")
	r := ScanArtifacts(a, scanNow)
	if !hasCategory(r, CategoryInconsistency) {
		t.Fatalf("categories = %v", r.Categories())
	}
	if r.Mismatch.Kind != inconsistency.KindDomain {
		t.Errorf("kind = %v", r.Mismatch.Kind)
	}
	if !r.EnforceMismatchFailure() || !r.DeliveryFailure() {
		t.Errorf("enforce mismatch: %v %v", r.EnforceMismatchFailure(), r.DeliveryFailure())
	}
}

func TestScanArtifactsNoSTARTTLSExcluded(t *testing.T) {
	// Footnote 4: MXes without any TLS are excluded from cert analysis.
	a := goodArtifacts("example.com")
	a.MXSTARTTLS["mx.example.com"] = false
	r := ScanArtifacts(a, scanNow)
	if len(r.MXProblems) != 0 || len(r.MXNoSTARTTLS) != 1 {
		t.Errorf("r = %+v", r)
	}
	if hasCategory(r, CategoryMXCert) {
		t.Error("no-STARTTLS host counted as cert error")
	}
}

func TestScanArtifactsMultipleErrorsNotExclusive(t *testing.T) {
	// §4.2: "a domain may have multiple errors at the same time."
	a := goodArtifacts("example.com")
	a.TXT = []string{"v=STSv1;"} // missing id
	a.MXCerts["mx.example.com"] = pki.SelfSignedProfile(scanNow, "mx.example.com")
	r := ScanArtifacts(a, scanNow)
	if len(r.Categories()) < 2 {
		t.Errorf("categories = %v", r.Categories())
	}
}

func TestArtifactsValidate(t *testing.T) {
	a := goodArtifacts("example.com")
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	a.MXCerts["ghost.example.com"] = pki.GoodProfile(scanNow, "ghost.example.com")
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted cert for unknown MX")
	}
	bad := Artifacts{}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted empty artifacts")
	}
}

func TestSummarize(t *testing.T) {
	results := []DomainResult{
		ScanArtifacts(goodArtifacts("a.com"), scanNow),
	}
	broken := goodArtifacts("b.com")
	broken.PolicyCert = pki.SelfSignedProfile(scanNow, "mta-sts.b.com")
	results = append(results, ScanArtifacts(broken, scanNow))
	noRec := goodArtifacts("c.com")
	noRec.TXT = nil
	results = append(results, ScanArtifacts(noRec, scanNow))

	s := Summarize(results)
	if s.Total != 3 || s.WithRecord != 2 || s.Misconfigured != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.ByCategory[CategoryPolicy] != 1 || s.PolicyStageCounts["TLS"] != 1 {
		t.Errorf("policy breakdown = %+v", s)
	}
}

func hasCategory(r DomainResult, c Category) bool {
	for _, got := range r.Categories() {
		if got == c {
			return true
		}
	}
	return false
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		CategoryDNSRecord: "DNS Records", CategoryPolicy: "Policy Retrieval",
		CategoryMXCert: "MX Hosts Cert.", CategoryInconsistency: "Inconsistency",
		Category(9): "unknown",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("Category(%d) = %q, want %q", int(c), c.String(), w)
		}
	}
}
