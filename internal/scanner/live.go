package scanner

import (
	"context"
	"crypto/x509"
	"errors"
	"net"
	"strconv"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/smtpclient"
)

// Live scans real infrastructure: DNS over UDP/TCP, the policy file over
// HTTPS, and each MX over SMTP with STARTTLS. Pointed at the substrate
// servers it exercises the exact sockets and state machines a real scan
// would.
type Live struct {
	// DNS answers every record lookup.
	DNS *resolver.Client
	// Roots is the PKIX trust store for both the policy fetch and the MX
	// probes.
	Roots *x509.CertPool
	// HTTPSPort and SMTPPort override 443/25 for loopback substrates.
	HTTPSPort int
	SMTPPort  int
	// HeloName is used by the SMTP prober.
	HeloName string
	// Timeout bounds each component probe. Zero means 5s.
	Timeout time.Duration
	// Now anchors certificate validation.
	Now func() time.Time
}

func (l *Live) timeout() time.Duration {
	if l.Timeout <= 0 {
		return 5 * time.Second
	}
	return l.Timeout
}

// ScanDomain runs the full §4.1 pipeline for one domain.
func (l *Live) ScanDomain(ctx context.Context, domain string) DomainResult {
	r := DomainResult{Domain: domain, MXProblems: make(map[string]pki.Problem)}

	// MX records.
	if mxs, err := l.DNS.LookupMX(ctx, domain); err == nil {
		for _, mx := range mxs {
			r.MXHosts = append(r.MXHosts, mx.Host)
		}
	}

	// MTA-STS record.
	txts, err := l.DNS.LookupTXT(ctx, "_mta-sts."+domain)
	if err != nil && !resolver.IsNotFound(err) {
		r.RecordPresent = true
		r.RecordErr = err
		// DNS failure on the record lookup also precludes policy fetch.
		r.PolicyStage = mtasts.StageDNS
		return r
	}
	rec, recErr := mtasts.DiscoverRecord(txts)
	if errors.Is(recErr, mtasts.ErrNoRecord) {
		return r
	}
	r.RecordPresent = true
	if recErr != nil {
		r.RecordErr = recErr
	} else {
		r.RecordValid = true
		r.Record = rec
	}

	// Policy host delegation (for provider attribution).
	if target, err := l.DNS.LookupCNAME(ctx, mtasts.PolicyHost(domain)); err == nil {
		r.PolicyCNAME = target
	}

	// Policy retrieval.
	fetcher := &mtasts.Fetcher{
		Resolver: mtasts.AddrResolverFunc(l.resolveAddrs),
		RootCAs:  l.Roots,
		Timeout:  l.timeout(),
		Port:     l.HTTPSPort,
		Now:      l.Now,
	}
	policy, _, fetchErr := fetcher.Fetch(ctx, domain)
	if fetchErr != nil {
		r.PolicyStage = mtasts.StageOf(fetchErr)
		r.PolicyCertProblem = mtasts.CertProblemOf(fetchErr)
		var fe *mtasts.FetchError
		if errors.As(fetchErr, &fe) {
			r.PolicyHTTPStatus = fe.HTTPStatus
			if fe.Stage == mtasts.StageSyntax {
				r.PolicySyntaxErr = fe.Err
			}
		}
	} else {
		r.PolicyOK = true
		r.Policy = policy
	}

	// MX probes.
	for _, mx := range r.MXHosts {
		problem, noTLS := l.probeMX(ctx, mx)
		if noTLS {
			r.MXNoSTARTTLS = append(r.MXNoSTARTTLS, mx)
			continue
		}
		r.MXProblems[mx] = problem
	}

	if r.PolicyOK {
		r.Mismatch = inconsistency.Analyze(domain, r.Policy, r.MXHosts)
	}
	return r
}

// probeMX resolves the MX host and runs the instrumented SMTP probe.
// noTLS is true when the server does not offer STARTTLS at all.
func (l *Live) probeMX(ctx context.Context, mxHost string) (problem pki.Problem, noTLS bool) {
	addrs, err := l.DNS.LookupAddrs(ctx, mxHost, false)
	if err != nil || len(addrs) == 0 {
		return pki.ProblemNoCertificate, false
	}
	port := l.SMTPPort
	if port == 0 {
		port = 25
	}
	p := &smtpclient.Prober{
		HeloName:     l.HeloName,
		Roots:        l.Roots,
		Timeout:      l.timeout(),
		AddrOverride: net.JoinHostPort(addrs[0].String(), strconv.Itoa(port)),
		Now:          l.Now,
	}
	res := p.Probe(ctx, mxHost)
	if errors.Is(res.Err, smtpclient.ErrNoSTARTTLS) {
		return pki.OK, true
	}
	if !res.TLSEstablished {
		return pki.ProblemNoCertificate, false
	}
	return res.CertProblem, false
}

// resolveAddrs bridges the mtasts.Fetcher DNS dependency onto the wire
// resolver, chasing CNAMEs as LookupAddrs does.
func (l *Live) resolveAddrs(ctx context.Context, host string) ([]string, error) {
	addrs, err := l.DNS.LookupAddrs(ctx, host, true)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = a.String()
	}
	return out, nil
}

// TXTResolverAdapter adapts resolver.Client to mtasts.TXTResolver for use
// with the sender-side Validator.
type TXTResolverAdapter struct{ Client *resolver.Client }

// ResolveTXT implements mtasts.TXTResolver.
func (a TXTResolverAdapter) ResolveTXT(ctx context.Context, name string) ([]string, error) {
	return a.Client.LookupTXT(ctx, name)
}

// IsNotFound implements mtasts.TXTResolver.
func (a TXTResolverAdapter) IsNotFound(err error) bool { return resolver.IsNotFound(err) }
