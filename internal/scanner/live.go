package scanner

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"net"
	"strconv"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/retry"
	"github.com/netsecurelab/mtasts/internal/smtpclient"
)

// Live scans real infrastructure: DNS over UDP/TCP, the policy file over
// HTTPS, and each MX over SMTP with STARTTLS. Pointed at the substrate
// servers it exercises the exact sockets and state machines a real scan
// would.
type Live struct {
	// DNS answers every record lookup.
	DNS *resolver.Client
	// Roots is the PKIX trust store for both the policy fetch and the MX
	// probes.
	Roots *x509.CertPool
	// HTTPSPort and SMTPPort override 443/25 for loopback substrates.
	HTTPSPort int
	SMTPPort  int
	// HeloName is used by the SMTP prober.
	HeloName string
	// Timeout bounds each component probe. Zero means 5s.
	Timeout time.Duration
	// Now anchors certificate validation.
	Now func() time.Time
	// Obs, when non-nil, receives per-stage timings (scan.{mx_lookup,
	// record_lookup,policy_fetch,mx_probe}.seconds) and the error-taxonomy
	// counters of Figures 4–6 — scan.policy.stage_errors.<stage> keyed by
	// mtasts.Stage and scan.mx.cert.<problem> keyed by pki.Problem. It is
	// also handed down to the policy Fetcher and SMTP Prober.
	Obs *obs.Registry
	// Events, when non-nil, receives one "scan.domain" JSONL event per
	// scanned domain for post-hoc analysis.
	Events *obs.EventSink
	// MaxAttempts enables transient-failure retries in the policy
	// fetcher and SMTP prober this scanner constructs. The DNS client
	// carries its own retry configuration (resolver.Client.MaxAttempts);
	// set both for end-to-end robustness. Zero or one means single
	// attempts.
	MaxAttempts int
	// RetryBase overrides the first backoff delay of those layers.
	RetryBase time.Duration
	// RetryBudget, when non-nil, caps total retries across the run,
	// shared by every layer it is handed to.
	RetryBudget *retry.Budget
	// SessionCache overrides the TLS session cache handed to the shared
	// policy fetcher. Nil gets a per-scanner LRU cache, so repeated
	// fetches against the same provider resume instead of re-handshaking.
	SessionCache tls.ClientSessionCache

	// One fetcher and one prober serve every domain this scanner
	// touches; both are stateless per call, and sharing them is what
	// lets the session cache and the pipeline's dedup layer work.
	// Built lazily from the fields above on first use — configure the
	// scanner before the first ScanDomain/stage call.
	fetcherOnce sync.Once
	fetcher     *mtasts.Fetcher
	proberOnce  sync.Once
	prober      *smtpclient.Prober
	errTaxOnce  sync.Once
}

// registerErrTaxCounters pre-registers one scan.error.<code> counter per
// registered taxonomy code, so a metrics snapshot always shows the full
// taxonomy — zeros included — instead of only the codes that happened to
// fire.
func (l *Live) registerErrTaxCounters() {
	l.errTaxOnce.Do(func() {
		for _, code := range errtax.Codes() {
			// Report-ingestion codes live on the service's TLSRPT
			// endpoint and can never appear on a scan result.
			if in, ok := errtax.Lookup(code); ok && in.Layer == errtax.LayerReport {
				continue
			}
			l.Obs.Counter("scan.error." + string(code))
		}
	})
}

func (l *Live) timeout() time.Duration {
	if l.Timeout <= 0 {
		return 5 * time.Second
	}
	return l.Timeout
}

// ScanDomain runs the full §4.1 pipeline for one domain, timing each
// stage and counting its outcome against Obs, and emitting one
// "scan.domain" event to Events.
func (l *Live) ScanDomain(ctx context.Context, domain string) DomainResult {
	sp := l.Obs.StartSpan("scan.domain")
	// Every retry loop under this context (resolver, fetcher, prober)
	// feeds the same per-domain stats.
	ctx, stats := retry.WithStats(ctx)
	r := l.scanDomain(ctx, domain)
	r.Attempts = stats.Attempts()
	r.Retries = stats.Retries()
	r.RetryRecovered = stats.Recovered()
	r.RetryGaveUp = stats.GaveUp()
	l.Finalize(&r, sp.End())
	return r
}

// scanDomain composes the pipeline stages sequentially — the flat
// backend's per-domain path, with the stage-bracketing spans the
// pipelined Runner deliberately does not emit (docs/PIPELINE.md).
func (l *Live) scanDomain(ctx context.Context, domain string) DomainResult {
	r, done := l.Discover(ctx, domain)
	if done {
		return r
	}
	applyFetch(&r, l.FetchPolicy(ctx, domain))
	probeSpan := l.Obs.StartSpan("scan.mx_probe")
	for _, mx := range r.MXHosts {
		applyProbe(&r, mx, l.ProbeHost(ctx, mx))
	}
	probeSpan.End()
	return r
}

// Discover implements StageScanner: the DNS stage — MX records, the
// MTA-STS TXT record, and the policy-host delegation CNAME. done means
// the fetch and probe stages must be skipped: either the domain has no
// MTA-STS record at all, or a DNS failure precluded the policy fetch.
func (l *Live) Discover(ctx context.Context, domain string) (DomainResult, bool) {
	r := DomainResult{Domain: domain, MXProblems: make(map[string]pki.Problem)}

	// MX records. NXDOMAIN/NODATA means "no MX" (still scannable);
	// anything else is a lookup failure worth surfacing — the probe and
	// consistency stages run on an empty MX set.
	mxSpan := l.Obs.StartSpan("scan.mx_lookup")
	mxs, err := l.DNS.LookupMX(ctx, domain)
	switch {
	case err == nil:
		for _, mx := range mxs {
			r.MXHosts = append(r.MXHosts, mx.Host)
		}
	case !resolver.IsNotFound(err):
		r.MXLookupErr = err
	}
	mxSpan.EndErr(r.MXLookupErr)

	// MTA-STS record.
	recSpan := l.Obs.StartSpan("scan.record_lookup")
	txts, err := l.DNS.LookupTXT(ctx, "_mta-sts."+domain)
	if err != nil && !resolver.IsNotFound(err) {
		recSpan.EndErr(err)
		r.RecordPresent = true
		r.RecordErr = err
		// DNS failure on the record lookup also precludes policy fetch.
		r.PolicyStage = mtasts.StageDNS
		return r, true
	}
	rec, recErr := mtasts.DiscoverRecord(txts)
	if errors.Is(recErr, mtasts.ErrNoRecord) {
		// "No record" is the common case at Internet scale, not a lookup
		// error — don't count it in scan.record_lookup.errors.
		recSpan.End()
		return r, true
	}
	recSpan.EndErr(recErr)
	r.RecordPresent = true
	if recErr != nil {
		r.RecordErr = recErr
	} else {
		r.RecordValid = true
		r.Record = rec
	}

	// Policy host delegation (for provider attribution).
	if target, err := l.DNS.LookupCNAME(ctx, mtasts.PolicyHost(domain)); err == nil {
		r.PolicyCNAME = target
	}
	return r, false
}

// FetchPolicy implements StageScanner: the policy-retrieval stage. It
// depends only on scan-global configuration plus the domain, so the
// pipelined Runner may share its outcome between concurrent scans of
// the same domain.
func (l *Live) FetchPolicy(ctx context.Context, domain string) FetchOutcome {
	fetchSpan := l.Obs.StartSpan("scan.policy_fetch")
	policy, _, fetchErr := l.sharedFetcher().Fetch(ctx, domain)
	fetchSpan.EndErr(fetchErr)
	if fetchErr == nil {
		return FetchOutcome{OK: true, Policy: policy}
	}
	out := FetchOutcome{
		Stage:       mtasts.StageOf(fetchErr),
		CertProblem: mtasts.CertProblemOf(fetchErr),
	}
	var fe *mtasts.FetchError
	if errors.As(fetchErr, &fe) {
		out.HTTPStatus = fe.HTTPStatus
		if fe.Stage == mtasts.StageSyntax {
			out.SyntaxErr = fe.Err
		}
	}
	return out
}

// Finalize implements StageScanner: the consistency verdict (§4.4)
// needs both the served policy and the MX set, so it runs once every
// stage is done; it then materializes the typed error taxonomy, feeds
// the error-taxonomy counters, and emits the per-domain scan event.
func (l *Live) Finalize(r *DomainResult, took time.Duration) {
	if r.PolicyOK {
		r.Mismatch = inconsistency.Analyze(r.Domain, r.Policy, r.MXHosts)
	}
	r.Errors = r.deriveTaxErrors()
	l.recordOutcome(r, took)
}

// sharedFetcher lazily builds the one policy fetcher this scanner uses
// for every domain — previously a throwaway per domain, now shared so
// TLS sessions resume across fetches.
func (l *Live) sharedFetcher() *mtasts.Fetcher {
	l.fetcherOnce.Do(func() {
		cache := l.SessionCache
		if cache == nil {
			cache = tls.NewLRUClientSessionCache(1024)
		}
		l.fetcher = &mtasts.Fetcher{
			Resolver:     mtasts.AddrResolverFunc(l.resolveAddrs),
			RootCAs:      l.Roots,
			Timeout:      l.timeout(),
			Port:         l.HTTPSPort,
			Now:          l.Now,
			Obs:          l.Obs,
			MaxAttempts:  l.MaxAttempts,
			RetryBase:    l.RetryBase,
			RetryBudget:  l.RetryBudget,
			SessionCache: cache,
		}
	})
	return l.fetcher
}

// sharedProber lazily builds the one SMTP prober shared by every MX
// probe; the dial address is passed per call (ProbeAddr), so no
// per-probe Prober construction is needed.
func (l *Live) sharedProber() *smtpclient.Prober {
	l.proberOnce.Do(func() {
		l.prober = &smtpclient.Prober{
			HeloName:    l.HeloName,
			Roots:       l.Roots,
			Timeout:     l.timeout(),
			Now:         l.Now,
			Obs:         l.Obs,
			MaxAttempts: l.MaxAttempts,
			RetryBase:   l.RetryBase,
			RetryBudget: l.RetryBudget,
		}
	})
	return l.prober
}

// recordOutcome translates one DomainResult into the error-taxonomy
// counters and the per-domain scan event.
func (l *Live) recordOutcome(r *DomainResult, took time.Duration) {
	if l.Obs.Enabled() {
		o := l.Obs
		o.Counter("scan.domains.total").Inc()
		// scan.mx_lookup.errors is maintained by the scan.mx_lookup span
		// (EndErr) — not incremented again here.
		if r.RecordPresent {
			o.Counter("scan.record.present").Inc()
			if !r.RecordValid {
				o.Counter("scan.record.invalid").Inc()
			}
			if r.PolicyOK {
				o.Counter("scan.policy.ok").Inc()
			} else if r.PolicyStage != mtasts.StageNone {
				o.Counter("scan.policy.stage_errors." + r.PolicyStage.Key()).Inc()
				if r.PolicyStage == mtasts.StageTLS {
					o.Counter("scan.policy.cert." + r.PolicyCertProblem.String()).Inc()
				}
			}
		}
		for _, p := range r.MXProblems {
			o.Counter("scan.mx.cert." + p.String()).Inc()
		}
		o.Counter("scan.mx.probed").Add(int64(len(r.MXProblems)))
		o.Counter("scan.mx.no_starttls").Add(int64(len(r.MXNoSTARTTLS)))
		if r.PolicyOK && r.Mismatch.Kind != inconsistency.KindNone {
			o.Counter("scan.mismatch.total").Inc()
		}
		l.registerErrTaxCounters()
		for i := range r.Errors {
			o.Counter("scan.error." + string(r.Errors[i].Code)).Inc()
		}
		for _, c := range r.Categories() {
			o.Counter("scan.category." + c.Key()).Inc()
		}
		if r.DeliveryFailure() {
			o.Counter("scan.delivery_failures").Inc()
		}
		if r.Retries > 0 {
			o.Counter("scan.domains.retried").Inc()
		}
		if r.RetryRecovered > 0 {
			o.Counter("scan.domains.recovered").Inc()
		}
	}

	if l.Events != nil {
		cats := make([]string, 0, 4)
		for _, c := range r.Categories() {
			cats = append(cats, c.Key())
		}
		codes := make([]string, 0, len(r.Errors))
		for i := range r.Errors {
			codes = append(codes, string(r.Errors[i].Code))
		}
		fields := map[string]any{
			"domain":           r.Domain,
			"duration_ms":      float64(took.Microseconds()) / 1000,
			"record_present":   r.RecordPresent,
			"record_valid":     r.RecordValid,
			"policy_ok":        r.PolicyOK,
			"policy_stage":     r.PolicyStage.Key(),
			"mx_hosts":         len(r.MXHosts),
			"mx_invalid":       r.invalidMXCount(),
			"mx_no_starttls":   len(r.MXNoSTARTTLS),
			"mismatch":         r.Mismatch.Kind.String(),
			"categories":       cats,
			"errors":           codes,
			"delivery_failure": r.DeliveryFailure(),
			"attempts":         r.Attempts,
			"retries":          r.Retries,
			"retry_recovered":  r.RetryRecovered,
			"retry_gave_up":    r.RetryGaveUp,
		}
		if r.MXLookupErr != nil {
			fields["mx_lookup_err"] = r.MXLookupErr.Error()
			// The MX lookup failure is deliberately outside Errors (it is
			// an infrastructure failure, not a domain verdict), but its
			// code still aids triage when present.
			if c, ok := errtax.CodeOf(r.MXLookupErr); ok {
				fields["mx_lookup_err_code"] = string(c)
			}
		}
		l.Events.Emit("scan.domain", fields)
	}
}

// ProbeHost implements StageScanner: resolve the MX host and run the
// instrumented SMTP probe. Like FetchPolicy it depends only on
// scan-global state plus the host, so the pipelined Runner may share
// one host's outcome across every domain listing it.
func (l *Live) ProbeHost(ctx context.Context, mxHost string) ProbeOutcome {
	addrs, err := l.DNS.LookupAddrs(ctx, mxHost, false)
	if err != nil || len(addrs) == 0 {
		return ProbeOutcome{Problem: pki.ProblemNoCertificate}
	}
	port := l.SMTPPort
	if port == 0 {
		port = 25
	}
	addr := net.JoinHostPort(addrs[0].String(), strconv.Itoa(port))
	res := l.sharedProber().ProbeAddr(ctx, mxHost, addr)
	if errors.Is(res.Err, smtpclient.ErrNoSTARTTLS) {
		return ProbeOutcome{NoSTARTTLS: true}
	}
	if !res.TLSEstablished {
		return ProbeOutcome{Problem: pki.ProblemNoCertificate}
	}
	return ProbeOutcome{Problem: res.CertProblem}
}

// resolveAddrs bridges the mtasts.Fetcher DNS dependency onto the wire
// resolver, chasing CNAMEs as LookupAddrs does.
func (l *Live) resolveAddrs(ctx context.Context, host string) ([]string, error) {
	addrs, err := l.DNS.LookupAddrs(ctx, host, true)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = a.String()
	}
	return out, nil
}

// TXTResolverAdapter adapts resolver.Client to mtasts.TXTResolver for use
// with the sender-side Validator.
type TXTResolverAdapter struct{ Client *resolver.Client }

// ResolveTXT implements mtasts.TXTResolver.
func (a TXTResolverAdapter) ResolveTXT(ctx context.Context, name string) ([]string, error) {
	return a.Client.LookupTXT(ctx, name)
}

// IsNotFound implements mtasts.TXTResolver.
func (a TXTResolverAdapter) IsNotFound(err error) bool { return resolver.IsNotFound(err) }
