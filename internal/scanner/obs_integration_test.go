package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/resolver"
)

// syncBuffer is a goroutine-safe bytes.Buffer for collecting events from
// concurrent workers (EventSink serializes writes, but the test also
// reads while emitting in the sampler below).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunnerEmitsMetricsOverSubstrate drives a Runner over the simnet-style
// loopback substrate with observability enabled and asserts that the
// per-stage counters are nonzero, progress completes and is monotonic,
// and the event stream is parseable JSONL.
func TestRunnerEmitsMetricsOverSubstrate(t *testing.T) {
	// One provisioned domain (the substrate carries a single SMTP port),
	// scanned repeatedly, plus a domain with no MTA-STS record.
	m := newMiniInternet(t)
	m.addDomain("good.com", enforceFor("mx.good.com"), nil)

	reg := obs.NewRegistry()
	var buf syncBuffer
	sink := obs.NewEventSink(&buf)
	m.live.Obs = reg
	m.live.Events = sink
	m.live.DNS.Obs = reg

	runner := &Runner{Workers: 3, Scan: m.live, Obs: reg, Events: sink}
	domains := []string{"good.com", "good.com", "good.com", "absent.com"}

	// Sample progress concurrently and assert it never decreases.
	stop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	var monotonic = true
	go func() {
		defer sampleWG.Done()
		last := int64(-1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			done := reg.Progress("scan").Completed()
			if done < last {
				monotonic = false
			}
			last = done
			time.Sleep(200 * time.Microsecond)
		}
	}()

	results := runner.Run(context.Background(), domains)
	close(stop)
	sampleWG.Wait()

	if len(results) != len(domains) {
		t.Fatalf("results = %d, want %d", len(results), len(domains))
	}
	if !monotonic {
		t.Error("progress went backwards during the run")
	}

	snap := reg.Snapshot()
	wantNonzeroCounters := []string{
		"scan.domains.total",
		"scanner.scans.total",
		"scan.record.present",
		"scan.policy.ok",
		"scan.mx.cert.ok",
		"mtasts.fetch.ok",
		"smtp.probe.total",
		"smtp.probe.tls_established",
		"resolver.queries.total",
	}
	for _, name := range wantNonzeroCounters {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q = 0, want nonzero (counters: %v)", name, snap.Counters)
		}
	}
	wantHists := []string{
		"scan.domain.seconds",
		"scanner.domain_scan.seconds",
		"scan.mx_lookup.seconds",
		"scan.policy_fetch.seconds",
		"mtasts.fetch.dns.seconds",
		"mtasts.fetch.tls_handshake.seconds",
		"smtp.probe.dial.seconds",
		"smtp.probe.tls_handshake.seconds",
		"resolver.query.seconds",
	}
	for _, name := range wantHists {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("histogram %q empty", name)
		}
	}
	// The resolver cache gauges are computed at snapshot time.
	if snap.Gauges["resolver.cache.hits"]+snap.Gauges["resolver.cache.misses"] == 0 {
		t.Errorf("resolver cache gauges all zero: %v", snap.Gauges)
	}

	prog := reg.Progress("scan").Snapshot()
	if prog.Total != int64(len(domains)) || prog.Done != int64(len(domains)) || prog.InFlight != 0 {
		t.Errorf("progress = %+v", prog)
	}
	if prog.RatePerSecond <= 0 {
		t.Errorf("rate = %v, want > 0", prog.RatePerSecond)
	}

	// Event stream: one scan.domain event per domain, plus run brackets,
	// all parseable JSONL.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var domainEvents, runStart, runEnd int
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("unparseable event line %q: %v", line, err)
		}
		switch obj["event"] {
		case "scan.domain":
			domainEvents++
			if obj["domain"] == "" || obj["ts"] == "" {
				t.Errorf("incomplete event: %v", obj)
			}
		case "scan.run.start":
			runStart++
		case "scan.run.end":
			runEnd++
		}
	}
	if domainEvents != len(domains) || runStart != 1 || runEnd != 1 {
		t.Errorf("events: domain=%d start=%d end=%d", domainEvents, runStart, runEnd)
	}
	if sink.Dropped() != 0 {
		t.Errorf("dropped events: %d", sink.Dropped())
	}
}

// TestLiveScanMXLookupError pins the bugfix for silently swallowed MX
// lookup failures: a SERVFAIL on the MX query must surface on
// DomainResult.MXLookupErr and in the scan.mx_lookup.errors counter,
// while NXDOMAIN ("no MX records") must not.
func TestLiveScanMXLookupError(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("broken.com", enforceFor("mx.broken.com"), nil)
	reg := obs.NewRegistry()
	m.live.Obs = reg
	m.dns.SetBehavior(dnsserver.BehaviorServFail)
	m.live.DNS.Cache.Flush()

	r := m.live.ScanDomain(context.Background(), "broken.com")
	if r.MXLookupErr == nil {
		t.Fatal("SERVFAIL MX lookup not recorded on MXLookupErr")
	}
	if !errors.Is(r.MXLookupErr, resolver.ErrServFail) {
		t.Errorf("MXLookupErr = %v, want ErrServFail", r.MXLookupErr)
	}
	if got := reg.Snapshot().Counters["scan.mx_lookup.errors"]; got != 1 {
		t.Errorf("scan.mx_lookup.errors = %d, want 1", got)
	}

	// A domain that simply has no MX records is not a lookup error.
	m.dns.SetBehavior(dnsserver.BehaviorNormal)
	m.addRR(dnsmsg.RR{Name: "_mta-sts.nomx.com", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
	r2 := m.live.ScanDomain(context.Background(), "nomx.com")
	if r2.MXLookupErr != nil {
		t.Errorf("NXDOMAIN MX lookup treated as error: %v", r2.MXLookupErr)
	}
	if got := reg.Snapshot().Counters["scan.mx_lookup.errors"]; got != 1 {
		t.Errorf("scan.mx_lookup.errors = %d after NXDOMAIN, want still 1", got)
	}
}

// TestLiveScanNilObsUnchanged pins the nil-registry contract: scanning
// with observability disabled produces identical results and no panics.
func TestLiveScanNilObsUnchanged(t *testing.T) {
	m := newMiniInternet(t)
	m.addDomain("plain.com", enforceFor("mx.plain.com"), nil)
	// Obs and Events are nil by default.
	r := m.live.ScanDomain(context.Background(), "plain.com")
	if !r.RecordValid || !r.PolicyOK || r.Misconfigured() {
		t.Errorf("r = %+v", r)
	}
}
