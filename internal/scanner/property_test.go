package scanner

import (
	"math/rand"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// TestScanArtifactsPropertyInvariants feeds randomized artifacts through
// the offline scanner and checks structural invariants that must hold for
// any input:
//
//  1. never panics;
//  2. a domain without an MTA-STS record is never misconfigured;
//  3. DeliveryFailure implies an enforce policy;
//  4. AllMXInvalid and PartiallyMXInvalid are mutually exclusive;
//  5. a reported inconsistency implies a fetched policy;
//  6. every reported category is one of the four defined ones.
func TestScanArtifactsPropertyInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	now := time.Date(2024, 9, 29, 0, 0, 0, 0, time.UTC)

	txtPool := [][]string{
		nil,
		{"v=spf1 -all"},
		{"v=STSv1; id=20240929;"},
		{"v=STSv1;"},
		{"v=STSv1; id=bad-id;"},
		{"v=STSV1; id=x;"},
		{"v=STSv1; id=a;", "v=STSv1; id=b;"},
	}
	bodyPool := [][]byte{
		nil,
		[]byte("garbage"),
		[]byte("version: STSv1\nmode: enforce\nmx: mx.p.example\nmax_age: 86400\n"),
		[]byte("version: STSv1\nmode: testing\nmx: *.p.example\nmax_age: 60\n"),
		[]byte("version: STSv1\nmode: none\nmax_age: 60\n"),
		[]byte("version: STSv1\nmode: enforce\nmx: postmaster@p.example\nmax_age: 1\n"),
	}
	certPool := []pki.CertProfile{
		pki.GoodProfile(now, "mta-sts.p.example"),
		pki.GoodProfile(now, "p.example"),
		pki.ExpiredProfile(now, "mta-sts.p.example"),
		pki.SelfSignedProfile(now, "mta-sts.p.example"),
		pki.MissingProfile(),
		{},
	}
	statusPool := []int{0, 200, 301, 404, 500}

	for i := 0; i < 5000; i++ {
		nMX := r.Intn(3)
		mxs := make([]string, nMX)
		starttls := map[string]bool{}
		certs := map[string]pki.CertProfile{}
		for j := range mxs {
			mxs[j] = []string{"mx.p.example", "mx2.p.example", "mx.other.example"}[r.Intn(3)]
			starttls[mxs[j]] = r.Intn(4) > 0
			switch r.Intn(4) {
			case 0:
				certs[mxs[j]] = pki.GoodProfile(now, mxs[j])
			case 1:
				certs[mxs[j]] = pki.ExpiredProfile(now, mxs[j])
			case 2:
				certs[mxs[j]] = pki.SelfSignedProfile(now, mxs[j])
			}
		}
		a := Artifacts{
			Domain:             "p.example",
			TXT:                txtPool[r.Intn(len(txtPool))],
			MXHosts:            mxs,
			PolicyHostResolves: r.Intn(8) > 0,
			PolicyCNAME:        []string{"", "x.provider.example"}[r.Intn(2)],
			TCPOpen:            r.Intn(8) > 0,
			PolicyCert:         certPool[r.Intn(len(certPool))],
			HTTPStatus:         statusPool[r.Intn(len(statusPool))],
			PolicyBody:         bodyPool[r.Intn(len(bodyPool))],
			MXSTARTTLS:         starttls,
			MXCerts:            certs,
		}

		res := ScanArtifacts(a, now) // invariant 1: no panic

		if !res.RecordPresent {
			if res.Misconfigured() {
				t.Fatalf("iter %d: no record but misconfigured: %+v", i, res)
			}
			continue
		}
		if res.DeliveryFailure() && res.Policy.Mode != "enforce" {
			t.Fatalf("iter %d: delivery failure without enforce: %+v", i, res)
		}
		if res.AllMXInvalid() && res.PartiallyMXInvalid() {
			t.Fatalf("iter %d: all-invalid and partially-invalid both true", i)
		}
		if res.Mismatch.Kind != inconsistency.KindNone && !res.PolicyOK {
			t.Fatalf("iter %d: mismatch reported without a policy", i)
		}
		for _, c := range res.Categories() {
			switch c {
			case CategoryDNSRecord, CategoryPolicy, CategoryMXCert, CategoryInconsistency:
			default:
				t.Fatalf("iter %d: unknown category %v", i, c)
			}
		}
	}
}
