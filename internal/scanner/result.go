package scanner

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// Category is the Figure 4 error grouping.
type Category int

// Error categories (not mutually exclusive).
const (
	// CategoryDNSRecord: the MTA-STS TXT record is invalid.
	CategoryDNSRecord Category = iota
	// CategoryPolicy: the policy could not be retrieved or parsed.
	CategoryPolicy
	// CategoryMXCert: at least one MX host presents a PKIX-invalid
	// certificate.
	CategoryMXCert
	// CategoryInconsistency: components are individually valid but the mx
	// patterns do not match the MX records.
	CategoryInconsistency
)

// String returns the Figure 4 series label.
func (c Category) String() string {
	switch c {
	case CategoryDNSRecord:
		return "DNS Records"
	case CategoryPolicy:
		return "Policy Retrieval"
	case CategoryMXCert:
		return "MX Hosts Cert."
	case CategoryInconsistency:
		return "Inconsistency"
	}
	return "unknown"
}

// Key returns the stable lowercase identifier used as the final segment
// of metric names (scan.category.<key>) and in scan events.
func (c Category) Key() string {
	switch c {
	case CategoryDNSRecord:
		return "dns_record"
	case CategoryPolicy:
		return "policy"
	case CategoryMXCert:
		return "mx_cert"
	case CategoryInconsistency:
		return "inconsistency"
	}
	return "unknown"
}

// DomainResult is everything one scan records about one domain.
type DomainResult struct {
	Domain string
	// MXHosts are the domain's MX records at scan time.
	MXHosts []string
	// MXLookupErr records a failed MX lookup (SERVFAIL, timeout, …).
	// NXDOMAIN/NODATA — a domain that simply has no MX records — is not
	// an error and leaves this nil. When set, MXHosts is empty and the MX
	// probe and consistency stages could not run, so their verdicts are
	// absence-of-evidence rather than evidence of health.
	MXLookupErr error

	// RecordPresent is true when any TXT at _mta-sts.<domain> looks like
	// an MTA-STS record or attempt; domains without it are outside the
	// study population.
	RecordPresent bool
	// RecordValid is true when exactly one syntactically valid record was
	// found.
	RecordValid bool
	// Record is the parsed record when valid.
	Record mtasts.Record
	// RecordErr classifies the record failure (ErrMissingID, ErrBadID,
	// ErrBadVersion, ErrBadExtension, ErrMultipleRecords).
	RecordErr error

	// PolicyOK is true when a valid policy was fetched.
	PolicyOK bool
	// Policy is the parsed policy when PolicyOK.
	Policy mtasts.Policy
	// PolicyStage is the retrieval failure stage (StageNone when OK).
	PolicyStage mtasts.Stage
	// PolicyCertProblem refines StageTLS failures.
	PolicyCertProblem pki.Problem
	// PolicyHTTPStatus refines StageHTTP failures.
	PolicyHTTPStatus int
	// PolicySyntaxErr holds the parse failure for StageSyntax.
	PolicySyntaxErr error
	// PolicyCNAME is the delegation target of mta-sts.<domain>, if any.
	PolicyCNAME string

	// MXProblems maps each probed MX host to its certificate outcome.
	// Hosts that do not offer STARTTLS at all are absent (footnote 4 of
	// the paper: only TLS-capable MXes are analyzed further) and recorded
	// in MXNoSTARTTLS.
	MXProblems   map[string]pki.Problem
	MXNoSTARTTLS []string

	// Mismatch is the consistency analysis (§4.4); only meaningful when a
	// policy was obtained.
	Mismatch inconsistency.Finding

	// Attempts counts every network operation attempt (DNS exchanges,
	// policy fetches, SMTP probes) behind this verdict, including firsts.
	Attempts int64
	// Retries counts attempts beyond each operation's first.
	Retries int64
	// RetryRecovered counts operations that succeeded only after a
	// retry — the verdict survived a transient failure that a
	// single-attempt scan would have misclassified.
	RetryRecovered int64
	// RetryGaveUp counts operations that exhausted their retry
	// allowance on transient errors; verdicts built on them may not
	// reflect the endpoint's steady state.
	RetryGaveUp int64

	// Canceled marks a domain whose scan was cut short by run
	// cancellation. Its other fields are partial evidence, not a
	// verdict, and it is excluded from the error taxonomy.
	Canceled bool
}

// ClassificationKey canonically encodes every classification-bearing
// field of the result — everything a scan concludes about the domain,
// excluding the retry-accounting fields (Attempts, Retries,
// RetryRecovered, RetryGaveUp), which legitimately vary with scheduling
// even when the verdict does not. Two results with equal keys classify
// identically in every figure and summary; equivalence tests compare
// keys to prove the flat and pipelined schedulers agree.
func (r *DomainResult) ClassificationKey() string {
	mxKeys := make([]string, 0, len(r.MXProblems))
	for mx := range r.MXProblems {
		mxKeys = append(mxKeys, mx)
	}
	sort.Strings(mxKeys)
	var b strings.Builder
	fmt.Fprintf(&b, "domain=%s canceled=%v mx=%v mx_lookup_err=%v ",
		r.Domain, r.Canceled, r.MXHosts, r.MXLookupErr)
	fmt.Fprintf(&b, "present=%v valid=%v record=%+v record_err=%v ",
		r.RecordPresent, r.RecordValid, r.Record, r.RecordErr)
	fmt.Fprintf(&b, "policy_ok=%v policy=%+v stage=%s cert=%s http=%d syntax=%v cname=%s ",
		r.PolicyOK, r.Policy, r.PolicyStage.Key(), r.PolicyCertProblem, r.PolicyHTTPStatus,
		r.PolicySyntaxErr, r.PolicyCNAME)
	for _, mx := range mxKeys {
		fmt.Fprintf(&b, "mx[%s]=%s ", mx, r.MXProblems[mx])
	}
	fmt.Fprintf(&b, "no_starttls=%v mismatch=%+v", r.MXNoSTARTTLS, r.Mismatch)
	return b.String()
}

// Categories returns the Figure 4 error categories the domain falls into.
func (r *DomainResult) Categories() []Category {
	var cats []Category
	if r.RecordPresent && !r.RecordValid {
		cats = append(cats, CategoryDNSRecord)
	}
	if r.RecordValid && !r.PolicyOK {
		cats = append(cats, CategoryPolicy)
	}
	if r.invalidMXCount() > 0 {
		cats = append(cats, CategoryMXCert)
	}
	if r.PolicyOK && r.Mismatch.Kind != inconsistency.KindNone {
		cats = append(cats, CategoryInconsistency)
	}
	return cats
}

// Misconfigured reports whether the domain has any error (§4.2: 29.6% of
// MTA-STS domains in the latest snapshot).
func (r *DomainResult) Misconfigured() bool { return len(r.Categories()) > 0 }

func (r *DomainResult) invalidMXCount() int {
	n := 0
	for _, p := range r.MXProblems {
		if !p.Valid() {
			n++
		}
	}
	return n
}

// AllMXInvalid reports whether every probed MX presented an invalid
// certificate (Figure 7 "All Invalid").
func (r *DomainResult) AllMXInvalid() bool {
	return len(r.MXProblems) > 0 && r.invalidMXCount() == len(r.MXProblems)
}

// PartiallyMXInvalid reports whether some but not all MXes are invalid
// (Figure 7 "Partially Invalid").
func (r *DomainResult) PartiallyMXInvalid() bool {
	n := r.invalidMXCount()
	return n > 0 && n < len(r.MXProblems)
}

// EnforceCertFailureRisk reports the Figure 7 "enforce mode" series:
// an enforce policy with at least one PKIX-invalid MX host.
func (r *DomainResult) EnforceCertFailureRisk() bool {
	return r.PolicyOK && r.Policy.Mode == mtasts.ModeEnforce && r.invalidMXCount() > 0
}

// EnforceMismatchFailure reports the Figure 8 "enforce mode" series: an
// enforce policy none of whose patterns match any MX record.
func (r *DomainResult) EnforceMismatchFailure() bool {
	return r.PolicyOK && r.Policy.Mode == mtasts.ModeEnforce &&
		r.Mismatch.Kind != inconsistency.KindNone
}

// DeliveryFailure reports whether a compliant sender would be unable to
// deliver to the domain at all: an enforce policy where no MX matches, or
// every matching MX fails certificate validation (the 640-domain / 3.2%
// population in the paper's abstract).
func (r *DomainResult) DeliveryFailure() bool {
	if !r.PolicyOK || r.Policy.Mode != mtasts.ModeEnforce {
		return false
	}
	matched, _ := r.Policy.FilterMatching(r.MXHosts)
	if len(r.MXHosts) > 0 && len(matched) == 0 {
		return true
	}
	// All matched MXes must fail TLS for delivery to be impossible.
	usable := 0
	for _, mx := range matched {
		if p, ok := r.MXProblems[mx]; ok && p.Valid() {
			usable++
		}
	}
	return len(matched) > 0 && usable == 0 && len(r.MXProblems) > 0
}
