package scanner

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// Category is the Figure 4 error grouping.
type Category int

// Error categories (not mutually exclusive).
const (
	// CategoryDNSRecord: the MTA-STS TXT record is invalid.
	CategoryDNSRecord Category = iota
	// CategoryPolicy: the policy could not be retrieved or parsed.
	CategoryPolicy
	// CategoryMXCert: at least one MX host presents a PKIX-invalid
	// certificate.
	CategoryMXCert
	// CategoryInconsistency: components are individually valid but the mx
	// patterns do not match the MX records.
	CategoryInconsistency
)

// String returns the Figure 4 series label.
func (c Category) String() string {
	switch c {
	case CategoryDNSRecord:
		return "DNS Records"
	case CategoryPolicy:
		return "Policy Retrieval"
	case CategoryMXCert:
		return "MX Hosts Cert."
	case CategoryInconsistency:
		return "Inconsistency"
	}
	return "unknown"
}

// Key returns the stable lowercase identifier used as the final segment
// of metric names (scan.category.<key>) and in scan events.
func (c Category) Key() string {
	switch c {
	case CategoryDNSRecord:
		return "dns_record"
	case CategoryPolicy:
		return "policy"
	case CategoryMXCert:
		return "mx_cert"
	case CategoryInconsistency:
		return "inconsistency"
	}
	return "unknown"
}

// DomainResult is everything one scan records about one domain.
type DomainResult struct {
	Domain string
	// MXHosts are the domain's MX records at scan time.
	MXHosts []string
	// MXLookupErr records a failed MX lookup (SERVFAIL, timeout, …).
	// NXDOMAIN/NODATA — a domain that simply has no MX records — is not
	// an error and leaves this nil. When set, MXHosts is empty and the MX
	// probe and consistency stages could not run, so their verdicts are
	// absence-of-evidence rather than evidence of health.
	MXLookupErr error

	// RecordPresent is true when any TXT at _mta-sts.<domain> looks like
	// an MTA-STS record or attempt; domains without it are outside the
	// study population.
	RecordPresent bool
	// RecordValid is true when exactly one syntactically valid record was
	// found.
	RecordValid bool
	// Record is the parsed record when valid.
	Record mtasts.Record
	// RecordErr classifies the record failure (ErrMissingID, ErrBadID,
	// ErrBadVersion, ErrBadExtension, ErrMultipleRecords).
	RecordErr error

	// PolicyOK is true when a valid policy was fetched.
	PolicyOK bool
	// Policy is the parsed policy when PolicyOK.
	Policy mtasts.Policy
	// PolicyStage is the retrieval failure stage (StageNone when OK).
	PolicyStage mtasts.Stage
	// PolicyCertProblem refines StageTLS failures.
	PolicyCertProblem pki.Problem
	// PolicyHTTPStatus refines StageHTTP failures.
	PolicyHTTPStatus int
	// PolicySyntaxErr holds the parse failure for StageSyntax.
	PolicySyntaxErr error
	// PolicyCNAME is the delegation target of mta-sts.<domain>, if any.
	PolicyCNAME string

	// MXProblems maps each probed MX host to its certificate outcome.
	// Hosts that do not offer STARTTLS at all are absent (footnote 4 of
	// the paper: only TLS-capable MXes are analyzed further) and recorded
	// in MXNoSTARTTLS.
	MXProblems   map[string]pki.Problem
	MXNoSTARTTLS []string

	// Mismatch is the consistency analysis (§4.4); only meaningful when a
	// policy was obtained.
	Mismatch inconsistency.Finding

	// Errors is the domain's position in the paper's error taxonomy
	// (docs/ERRORS.md): one typed error per misconfiguration the scan
	// established — the invalid record, the failed policy retrieval, each
	// PKIX-invalid MX, the policy/MX inconsistency. Populated by Finalize
	// from the fields above (TaxErrors derives it on demand for results
	// built by hand); the Figure 4 Categories are a projection of these
	// codes. Deliberately excluded: MXLookupErr (an infrastructure
	// failure, not a verdict about the domain), no-STARTTLS hosts
	// (footnote 4 excludes them from certificate analysis), and the
	// non-fatal wrong Content-Type measurement.
	Errors []errtax.Error

	// Attempts counts every network operation attempt (DNS exchanges,
	// policy fetches, SMTP probes) behind this verdict, including firsts.
	Attempts int64
	// Retries counts attempts beyond each operation's first.
	Retries int64
	// RetryRecovered counts operations that succeeded only after a
	// retry — the verdict survived a transient failure that a
	// single-attempt scan would have misclassified.
	RetryRecovered int64
	// RetryGaveUp counts operations that exhausted their retry
	// allowance on transient errors; verdicts built on them may not
	// reflect the endpoint's steady state.
	RetryGaveUp int64

	// Canceled marks a domain whose scan was cut short by run
	// cancellation. Its other fields are partial evidence, not a
	// verdict, and it is excluded from the error taxonomy.
	Canceled bool
}

// ClassificationKey canonically encodes every classification-bearing
// field of the result — everything a scan concludes about the domain,
// excluding the retry-accounting fields (Attempts, Retries,
// RetryRecovered, RetryGaveUp), which legitimately vary with scheduling
// even when the verdict does not. Two results with equal keys classify
// identically in every figure and summary; equivalence tests compare
// keys to prove the flat and pipelined schedulers agree.
func (r *DomainResult) ClassificationKey() string {
	mxKeys := make([]string, 0, len(r.MXProblems))
	for mx := range r.MXProblems {
		mxKeys = append(mxKeys, mx)
	}
	sort.Strings(mxKeys)
	var b strings.Builder
	fmt.Fprintf(&b, "domain=%s canceled=%v mx=%v mx_lookup_err=%v ",
		r.Domain, r.Canceled, r.MXHosts, r.MXLookupErr)
	fmt.Fprintf(&b, "present=%v valid=%v record=%+v record_err=%v ",
		r.RecordPresent, r.RecordValid, r.Record, r.RecordErr)
	fmt.Fprintf(&b, "policy_ok=%v policy=%+v stage=%s cert=%s http=%d syntax=%v cname=%s ",
		r.PolicyOK, r.Policy, r.PolicyStage.Key(), r.PolicyCertProblem, r.PolicyHTTPStatus,
		r.PolicySyntaxErr, r.PolicyCNAME)
	for _, mx := range mxKeys {
		fmt.Fprintf(&b, "mx[%s]=%s ", mx, r.MXProblems[mx])
	}
	fmt.Fprintf(&b, "no_starttls=%v mismatch=%+v", r.MXNoSTARTTLS, r.Mismatch)
	return b.String()
}

// TaxErrors returns the domain's typed taxonomy errors: the finalized
// Errors field when populated, otherwise derived on the spot from the
// classification fields (so hand-built results classify identically).
func (r *DomainResult) TaxErrors() []errtax.Error {
	if r.Errors != nil {
		return r.Errors
	}
	return r.deriveTaxErrors()
}

// deriveTaxErrors projects the classification fields onto the error
// taxonomy. The conditions mirror, clause for clause, the seed's
// Categories logic, so the category set derived from these codes is
// extensionally identical to the pre-taxonomy booleans (pinned by the
// equivalence tests).
func (r *DomainResult) deriveTaxErrors() []errtax.Error {
	var errs []errtax.Error
	if r.RecordPresent && !r.RecordValid {
		errs = append(errs, taxFromErr(r.RecordErr, errtax.LayerDNS, errtax.CodeBadSyntax))
	}
	if r.RecordValid && !r.PolicyOK {
		code, cause := r.policyCode()
		info, _ := errtax.Lookup(code)
		errs = append(errs, errtax.Error{Layer: errtax.LayerFetch, Code: code, Transient: info.Transient && !info.Varies, Cause: cause})
	}
	for _, mx := range r.sortedMXProblemHosts() {
		if p := r.MXProblems[mx]; !p.Valid() {
			errs = append(errs, errtax.Error{
				Layer: errtax.LayerProbe,
				Code:  certProblemCode(p),
				Cause: &mxCertError{host: mx, problem: p},
			})
		}
	}
	if r.PolicyOK && r.Mismatch.Kind != inconsistency.KindNone {
		errs = append(errs, errtax.Error{Layer: errtax.LayerScan, Code: errtax.CodeInconsistency})
	}
	return errs
}

// taxFromErr types err: a typed error in the chain keeps its position
// (with the full chain as cause); an untyped one gets the fallback code
// with the registry's default transience.
func taxFromErr(err error, fallbackLayer errtax.Layer, fallbackCode errtax.Code) errtax.Error {
	var te *errtax.Error
	if errors.As(err, &te) {
		return errtax.Error{Layer: te.Layer, Code: te.Code, Transient: te.Transient, Cause: err}
	}
	info, _ := errtax.Lookup(fallbackCode)
	return errtax.Error{Layer: fallbackLayer, Code: fallbackCode, Transient: info.Transient && !info.Varies, Cause: err}
}

// policyCode maps the retrieval failure stage to its taxonomy code; a
// syntax failure refines to the parse error's own code.
func (r *DomainResult) policyCode() (errtax.Code, error) {
	switch r.PolicyStage {
	case mtasts.StageDNS:
		return errtax.CodeDNSLookup, nil
	case mtasts.StageTCP:
		return errtax.CodeTCPConnect, nil
	case mtasts.StageTLS:
		return errtax.CodeTLSHandshake, nil
	case mtasts.StageHTTP:
		return errtax.CodeHTTPStatus, nil
	case mtasts.StageSyntax:
		if c, ok := errtax.CodeOf(r.PolicySyntaxErr); ok {
			return c, r.PolicySyntaxErr
		}
		return errtax.CodeParse, r.PolicySyntaxErr
	}
	return errtax.CodeParse, nil
}

// certProblemCode maps a PKIX validation outcome onto the taxonomy.
func certProblemCode(p pki.Problem) errtax.Code {
	switch p {
	case pki.ProblemExpired:
		return errtax.CodeExpired
	case pki.ProblemSelfSigned:
		return errtax.CodeSelfSigned
	case pki.ProblemUntrusted:
		return errtax.CodeUntrustedChain
	case pki.ProblemNameMismatch:
		return errtax.CodeNameMismatch
	}
	return errtax.CodeNoCertificate
}

// mxCertError carries the host behind an MX certificate verdict without
// allocating a formatted string unless someone prints it.
type mxCertError struct {
	host    string
	problem pki.Problem
}

func (e *mxCertError) Error() string {
	return fmt.Sprintf("scanner: mx %s certificate: %s", e.host, e.problem)
}

func (r *DomainResult) sortedMXProblemHosts() []string {
	hosts := make([]string, 0, len(r.MXProblems))
	for mx := range r.MXProblems {
		hosts = append(hosts, mx)
	}
	sort.Strings(hosts)
	return hosts
}

// categoryOrder fixes the Figure 4 presentation order; Categories
// preserves it regardless of error order.
var categoryOrder = [...]Category{CategoryDNSRecord, CategoryPolicy, CategoryMXCert, CategoryInconsistency}

// Categories returns the Figure 4 error categories the domain falls
// into, projected from its taxonomy codes via the errtax registry.
func (r *DomainResult) Categories() []Category {
	var present [len(categoryOrder)]bool
	for _, e := range r.TaxErrors() {
		switch errtax.CategoryOf(e.Code) {
		case errtax.CategoryDNSRecord:
			present[0] = true
		case errtax.CategoryPolicy:
			present[1] = true
		case errtax.CategoryMXCert:
			present[2] = true
		case errtax.CategoryInconsistency:
			present[3] = true
		}
	}
	var cats []Category
	for i, c := range categoryOrder {
		if present[i] {
			cats = append(cats, c)
		}
	}
	return cats
}

// Misconfigured reports whether the domain has any error (§4.2: 29.6% of
// MTA-STS domains in the latest snapshot).
func (r *DomainResult) Misconfigured() bool { return len(r.Categories()) > 0 }

func (r *DomainResult) invalidMXCount() int {
	n := 0
	for _, p := range r.MXProblems {
		if !p.Valid() {
			n++
		}
	}
	return n
}

// AllMXInvalid reports whether every probed MX presented an invalid
// certificate (Figure 7 "All Invalid").
func (r *DomainResult) AllMXInvalid() bool {
	return len(r.MXProblems) > 0 && r.invalidMXCount() == len(r.MXProblems)
}

// PartiallyMXInvalid reports whether some but not all MXes are invalid
// (Figure 7 "Partially Invalid").
func (r *DomainResult) PartiallyMXInvalid() bool {
	n := r.invalidMXCount()
	return n > 0 && n < len(r.MXProblems)
}

// EnforceCertFailureRisk reports the Figure 7 "enforce mode" series:
// an enforce policy with at least one PKIX-invalid MX host.
func (r *DomainResult) EnforceCertFailureRisk() bool {
	return r.PolicyOK && r.Policy.Mode == mtasts.ModeEnforce && r.invalidMXCount() > 0
}

// EnforceMismatchFailure reports the Figure 8 "enforce mode" series: an
// enforce policy none of whose patterns match any MX record.
func (r *DomainResult) EnforceMismatchFailure() bool {
	return r.PolicyOK && r.Policy.Mode == mtasts.ModeEnforce &&
		r.Mismatch.Kind != inconsistency.KindNone
}

// DeliveryFailure reports whether a compliant sender would be unable to
// deliver to the domain at all: an enforce policy where no MX matches, or
// every matching MX fails certificate validation (the 640-domain / 3.2%
// population in the paper's abstract).
func (r *DomainResult) DeliveryFailure() bool {
	if !r.PolicyOK || r.Policy.Mode != mtasts.ModeEnforce {
		return false
	}
	matched, _ := r.Policy.FilterMatching(r.MXHosts)
	if len(r.MXHosts) > 0 && len(matched) == 0 {
		return true
	}
	// All matched MXes must fail TLS for delivery to be impossible.
	usable := 0
	for _, mx := range matched {
		if p, ok := r.MXProblems[mx]; ok && p.Valid() {
			usable++
		}
	}
	return len(matched) > 0 && usable == 0 && len(r.MXProblems) > 0
}
