package dnsmsg

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by the codec.
var (
	ErrNameTooLong  = errors.New("dnsmsg: domain name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnsmsg: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnsmsg: empty label inside name")
)

// Pack serializes the message into wire format. Owner names in the question
// and record sections are compressed; names inside RDATA are not.
func (m *Message) Pack() ([]byte, error) {
	b := make([]byte, 0, 512)
	b = m.Header.pack(b, len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional))
	comp := map[string]int{}
	var err error
	for _, q := range m.Questions {
		if b, err = appendCompressedName(b, q.Name, comp); err != nil {
			return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
		}
		b = appendUint16(b, uint16(q.Type))
		b = appendUint16(b, uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if b, err = packRR(b, rr, comp); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func (h Header) pack(b []byte, qd, an, ns, ar int) []byte {
	b = appendUint16(b, h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.OpCode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xF)
	b = appendUint16(b, flags)
	b = appendUint16(b, uint16(qd))
	b = appendUint16(b, uint16(an))
	b = appendUint16(b, uint16(ns))
	b = appendUint16(b, uint16(ar))
	return b
}

func packRR(b []byte, rr RR, comp map[string]int) ([]byte, error) {
	var err error
	if b, err = appendCompressedName(b, rr.Name, comp); err != nil {
		return nil, fmt.Errorf("packing RR owner %q: %w", rr.Name, err)
	}
	b = appendUint16(b, uint16(rr.Type))
	b = appendUint16(b, uint16(rr.Class))
	b = appendUint32(b, rr.TTL)
	lenAt := len(b)
	b = appendUint16(b, 0) // RDLENGTH placeholder
	if rr.Data == nil {
		return nil, fmt.Errorf("dnsmsg: RR %s %s has nil RDATA", rr.Name, rr.Type)
	}
	if b, err = rr.Data.pack(b); err != nil {
		return nil, fmt.Errorf("packing RDATA of %s %s: %w", rr.Name, rr.Type, err)
	}
	rdlen := len(b) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnsmsg: RDATA of %s %s exceeds 65535 bytes", rr.Name, rr.Type)
	}
	b[lenAt] = byte(rdlen >> 8)
	b[lenAt+1] = byte(rdlen)
	return b, nil
}

// appendName appends a domain name in uncompressed wire form.
func appendName(b []byte, name string) ([]byte, error) {
	return appendCompressedName(b, name, nil)
}

// appendCompressedName appends a domain name, emitting a compression
// pointer at the first suffix already present in comp. When comp is nil no
// compression is attempted. Offsets beyond the 14-bit pointer range are not
// recorded.
func appendCompressedName(b []byte, name string, comp map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	for name != "" {
		key := strings.ToLower(name)
		if comp != nil {
			if off, ok := comp[key]; ok {
				b = appendUint16(b, uint16(0xC000|off))
				return b, nil
			}
			if len(b) <= 0x3FFF {
				comp[key] = len(b)
			}
		}
		label := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
			if name == "" {
				return nil, ErrEmptyLabel // trailing ".." collapsed earlier; inner empty label
			}
		} else {
			name = ""
		}
		if label == "" {
			return nil, ErrEmptyLabel
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

func appendUint16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
