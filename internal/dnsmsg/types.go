// Package dnsmsg implements the subset of the DNS wire format (RFC 1035,
// with TLSA from RFC 6698 and AAAA from RFC 3596) needed by the MTA-STS
// measurement apparatus: message encoding and decoding with name
// compression, and the record types consumed by the scanners (A, AAAA, NS,
// CNAME, SOA, MX, TXT, TLSA).
package dnsmsg

import "fmt"

// Type is a DNS RR type code.
type Type uint16

// Record types used by the measurement pipeline.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeTLSA  Type = 52
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeTLSA:
		return "TLSA"
	case TypeDS:
		return "DS"
	case TypeRRSIG:
		return "RRSIG"
	case TypeDNSKEY:
		return "DNSKEY"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to its type code.
func ParseType(s string) (Type, error) {
	switch s {
	case "A":
		return TypeA, nil
	case "NS":
		return TypeNS, nil
	case "CNAME":
		return TypeCNAME, nil
	case "SOA":
		return TypeSOA, nil
	case "MX":
		return TypeMX, nil
	case "TXT":
		return TypeTXT, nil
	case "AAAA":
		return TypeAAAA, nil
	case "TLSA":
		return TypeTLSA, nil
	case "DS":
		return TypeDS, nil
	case "RRSIG":
		return TypeRRSIG, nil
	case "DNSKEY":
		return TypeDNSKEY, nil
	case "ANY":
		return TypeANY, nil
	}
	return 0, fmt.Errorf("dnsmsg: unknown RR type %q", s)
}

// Class is a DNS class code. Only IN is supported.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes surfaced by the resolver and server.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImp   RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

// String returns the conventional mnemonic for the response code.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormat:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// OpCode is a DNS operation code; only queries are supported.
type OpCode uint8

// OpQuery is a standard query.
const OpQuery OpCode = 0

// Header is the 12-byte DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String formats the question in dig-like notation.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, classString(q.Class), q.Type)
}

func classString(c Class) string {
	if c == ClassIN {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursion-desired query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}
