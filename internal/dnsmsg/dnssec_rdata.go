package dnsmsg

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// DNSSEC record types (RFC 4034).
const (
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

// AlgorithmECDSAP256SHA256 is DNSSEC algorithm 13 (RFC 6605), the only
// algorithm the dnssec substrate implements.
const AlgorithmECDSAP256SHA256 uint8 = 13

// DigestSHA256 is DS digest type 2.
const DigestSHA256 uint8 = 2

// DNSKEYData is a DNSKEY record (RFC 4034 §2).
type DNSKEYData struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK (SEP bit)
	Protocol  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

func (d DNSKEYData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Flags, d.Protocol, d.Algorithm,
		base64.StdEncoding.EncodeToString(d.PublicKey))
}

func (d DNSKEYData) pack(b []byte) ([]byte, error) {
	b = appendUint16(b, d.Flags)
	b = append(b, d.Protocol, d.Algorithm)
	return append(b, d.PublicKey...), nil
}

// DSData is a delegation-signer record (RFC 4034 §5).
type DSData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func (d DSData) String() string {
	return fmt.Sprintf("%d %d %d %x", d.KeyTag, d.Algorithm, d.DigestType, d.Digest)
}

func (d DSData) pack(b []byte) ([]byte, error) {
	b = appendUint16(b, d.KeyTag)
	b = append(b, d.Algorithm, d.DigestType)
	return append(b, d.Digest...), nil
}

// RRSIGData is a resource-record signature (RFC 4034 §3).
type RRSIGData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32 // seconds since epoch
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

func (d RRSIGData) String() string {
	return fmt.Sprintf("%d %d %d %d %d %d %d %s %s",
		uint16(d.TypeCovered), d.Algorithm, d.Labels, d.OrigTTL,
		d.Expiration, d.Inception, d.KeyTag, d.SignerName,
		base64.StdEncoding.EncodeToString(d.Signature))
}

func (d RRSIGData) pack(b []byte) ([]byte, error) {
	b = d.packPrefix(b)
	return append(b, d.Signature...), nil
}

// packPrefix serializes the RDATA without the signature — the form that is
// prepended to the canonical RRset when signing and verifying (RFC 4034
// §3.1.8.1).
func (d RRSIGData) packPrefix(b []byte) []byte {
	b = appendUint16(b, uint16(d.TypeCovered))
	b = append(b, d.Algorithm, d.Labels)
	b = appendUint32(b, d.OrigTTL)
	b = appendUint32(b, d.Expiration)
	b = appendUint32(b, d.Inception)
	b = appendUint16(b, d.KeyTag)
	// The signer name is in canonical (lowercase, uncompressed) form.
	nb, err := appendName(nil, strings.ToLower(d.SignerName))
	if err == nil {
		b = append(b, nb...)
	}
	return b
}

// SignedPrefix exposes the signing prefix for the dnssec package.
func (d RRSIGData) SignedPrefix() []byte { return d.packPrefix(nil) }
