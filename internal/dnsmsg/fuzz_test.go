package dnsmsg

import "testing"

// FuzzUnpack: the wire decoder must never panic, and anything it accepts
// must re-pack and re-parse to an equal question count.
func FuzzUnpack(f *testing.F) {
	m := NewQuery(1, "_mta-sts.example.com", TypeTXT)
	wire, _ := m.Pack()
	f.Add(wire)
	resp := &Message{
		Header:    Header{ID: 7, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeMX, Class: ClassIN}},
		Answers: []RR{{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 60,
			Data: MXData{Preference: 10, Host: "mail.example.com"}}},
	}
	wire2, _ := resp.Pack()
	f.Add(wire2)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unpack(b)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. names over
			// length limits reconstructed from pointers) — acceptable.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("section counts changed: %d/%d vs %d/%d",
				len(m.Questions), len(m.Answers), len(m2.Questions), len(m2.Answers))
		}
	})
}
