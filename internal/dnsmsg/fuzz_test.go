package dnsmsg

import (
	"bytes"
	"testing"
)

// FuzzUnpack: the wire decoder must never panic, and anything it accepts
// must re-pack and re-parse to an equal question count.
func FuzzUnpack(f *testing.F) {
	m := NewQuery(1, "_mta-sts.example.com", TypeTXT)
	wire, _ := m.Pack()
	f.Add(wire)
	resp := &Message{
		Header:    Header{ID: 7, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeMX, Class: ClassIN}},
		Answers: []RR{{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 60,
			Data: MXData{Preference: 10, Host: "mail.example.com"}}},
	}
	wire2, _ := resp.Pack()
	f.Add(wire2)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unpack(b)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. names over
			// length limits reconstructed from pointers) — acceptable.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("section counts changed: %d/%d vs %d/%d",
				len(m.Questions), len(m.Answers), len(m2.Questions), len(m2.Answers))
		}
	})
}

// FuzzDecodeMessage: stronger than FuzzUnpack's count check — after one
// decode→encode round the encoding must be a fixed point. Pack emits a
// canonical form (deterministic compression, normalized counts), so
// decoding its own output and re-encoding must reproduce it byte for
// byte; any drift means the codec loses or invents information.
func FuzzDecodeMessage(f *testing.F) {
	q := NewQuery(0x1234, "_mta-sts.example.com", TypeTXT)
	wire, _ := q.Pack()
	f.Add(wire)
	resp := &Message{
		Header: Header{ID: 9, Response: true, Authoritative: true},
		Questions: []Question{
			{Name: "example.com", Type: TypeMX, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 300,
				Data: MXData{Preference: 10, Host: "mx1.example.com"}},
			{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 300,
				Data: MXData{Preference: 20, Host: "mx2.example.com"}},
			{Name: "_mta-sts.example.com", Type: TypeTXT, Class: ClassIN, TTL: 60,
				Data: NewTXT("v=STSv1; id=20240929;")},
		},
	}
	wire2, _ := resp.Pack()
	f.Add(wire2)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12}) // pointer into header
	for _, m := range adversaryMessages() {
		if wire, err := m.Pack(); err == nil {
			f.Add(wire)
		}
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unpack(b)
		if err != nil {
			return
		}
		w1, err := m.Pack()
		if err != nil {
			// Same tolerance as FuzzUnpack: pointer games can decode into
			// names that exceed encoding limits.
			return
		}
		m2, err := Unpack(w1)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		w2, err := m2.Pack()
		if err != nil {
			t.Fatalf("decoded canonical message does not re-encode: %v", err)
		}
		if !bytes.Equal(w1, w2) {
			t.Fatalf("encode is not a fixed point:\n w1 = %x\n w2 = %x", w1, w2)
		}
	})
}

// adversaryMessages are response shapes the internal/faults adversary
// forges on the wire: a spoofed malformed _mta-sts TXT record, a
// stripped-record NODATA answer, and a rewritten TLSA RRset.
func adversaryMessages() []*Message {
	return []*Message{
		{
			Header: Header{ID: 0xbad, Response: true, Authoritative: true},
			Questions: []Question{
				{Name: "_mta-sts.victim.test", Type: TypeTXT, Class: ClassIN},
			},
			Answers: []RR{
				{Name: "_mta-sts.victim.test", Type: TypeTXT, Class: ClassIN, TTL: 60,
					Data: NewTXT("v=STSv1; id=evil id!;")},
			},
		},
		{
			Header: Header{ID: 0xdead, Response: true, Authoritative: true},
			Questions: []Question{
				{Name: "_mta-sts.victim.test", Type: TypeTXT, Class: ClassIN},
			},
		},
		{
			Header: Header{ID: 0xf00, Response: true, Authoritative: true},
			Questions: []Question{
				{Name: "_25._tcp.mx.victim.test", Type: TypeTLSA, Class: ClassIN},
			},
			Answers: []RR{
				{Name: "_25._tcp.mx.victim.test", Type: TypeTLSA, Class: ClassIN, TTL: 300,
					Data: TLSAData{Usage: 3, Selector: 1, MatchingType: 1,
						CertData: bytes.Repeat([]byte{0x5a}, 32)}},
			},
		},
	}
}

// TestAdversaryMessagesRoundTrip pins that every forged response shape
// the adversary emits survives the codec round trip — the matrix
// experiment depends on these exact messages reaching the sender.
func TestAdversaryMessagesRoundTrip(t *testing.T) {
	for i, m := range adversaryMessages() {
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("message %d: pack: %v", i, err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("message %d: unpack: %v", i, err)
		}
		if len(got.Answers) != len(m.Answers) || len(got.Questions) != len(m.Questions) {
			t.Fatalf("message %d: section counts changed", i)
		}
		for j, rr := range got.Answers {
			if rr.Data.String() != m.Answers[j].Data.String() {
				t.Errorf("message %d answer %d: %q != %q", i, j, rr.Data.String(), m.Answers[j].Data.String())
			}
		}
	}
}
