package dnsmsg

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "_mta-sts.example.com", TypeTXT)
	got := roundTrip(t, q)
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("got %d questions", len(got.Questions))
	}
	if got.Questions[0].Name != "_mta-sts.example.com" || got.Questions[0].Type != TypeTXT {
		t.Errorf("question = %+v", got.Questions[0])
	}
}

func TestResponseAllTypesRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 7, Response: true, Authoritative: true, RCode: RCodeSuccess},
		Questions: []Question{
			{Name: "example.com", Type: TypeANY, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "example.com", Type: TypeA, Class: ClassIN, TTL: 300,
				Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}},
			{Name: "example.com", Type: TypeAAAA, Class: ClassIN, TTL: 300,
				Data: AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}},
			{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 3600,
				Data: MXData{Preference: 10, Host: "mail.example.com"}},
			{Name: "_mta-sts.example.com", Type: TypeTXT, Class: ClassIN, TTL: 60,
				Data: NewTXT("v=STSv1; id=20240431;")},
			{Name: "mta-sts.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60,
				Data: CNAMEData{Target: "mta-sts.provider.com"}},
			{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400,
				Data: NSData{Host: "ns1.example.com"}},
			{Name: "_25._tcp.mail.example.com", Type: TypeTLSA, Class: ClassIN, TTL: 3600,
				Data: TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: []byte{1, 2, 3, 4}}},
		},
		Authority: []RR{
			{Name: "example.com", Type: TypeSOA, Class: ClassIN, TTL: 900,
				Data: SOAData{MName: "ns1.example.com", RName: "hostmaster.example.com",
					Serial: 2024093001, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
		},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round-trip mismatch:\n got: %+v\nwant: %+v", got, m)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	mk := func(n int) *Message {
		m := &Message{Header: Header{Response: true}}
		m.Questions = []Question{{Name: "very-long-subdomain-name.example.com", Type: TypeMX, Class: ClassIN}}
		for i := 0; i < n; i++ {
			m.Answers = append(m.Answers, RR{
				Name: "very-long-subdomain-name.example.com", Type: TypeMX, Class: ClassIN, TTL: 60,
				Data: MXData{Preference: uint16(i), Host: "mx.example.net"},
			})
		}
		return m
	}
	one := mustPack(t, mk(1))
	five := mustPack(t, mk(5))
	// With owner-name compression, each extra RR costs only a 2-byte
	// pointer for the owner, not the full 38-byte name.
	perRR := (len(five) - len(one)) / 4
	if perRR > 2+2+2+4+2+2+16+1 {
		t.Errorf("per-RR cost %d suggests compression is not applied", perRR)
	}
	// And the pointers must decode back to the full name.
	m, err := Unpack(five)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for _, rr := range m.Answers {
		if rr.Name != "very-long-subdomain-name.example.com" {
			t.Errorf("decoded owner = %q", rr.Name)
		}
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Craft header + a question whose name is a pointer to itself.
	b := make([]byte, 12)
	b[5] = 1 // QDCOUNT = 1
	b = append(b, 0xC0, 12)
	b = append(b, 0, 16, 0, 1)
	if _, err := Unpack(b); err == nil {
		t.Fatal("Unpack accepted a pointer loop")
	}
}

func TestUnpackRejectsTruncated(t *testing.T) {
	m := NewQuery(9, "example.com", TypeA)
	b := mustPack(t, m)
	for cut := 1; cut < len(b); cut++ {
		if _, err := Unpack(b[:cut]); err == nil {
			t.Errorf("Unpack accepted message truncated to %d bytes", cut)
		}
	}
}

func TestPackRejectsBadNames(t *testing.T) {
	long := strings.Repeat("a", 64) + ".com"
	cases := []string{long, strings.Repeat("abcdefgh.", 32) + "com", "a..b"}
	for _, name := range cases {
		m := NewQuery(1, name, TypeA)
		if _, err := m.Pack(); err == nil {
			t.Errorf("Pack accepted bad name %q", name)
		}
	}
}

func TestTXTSplitting(t *testing.T) {
	long := strings.Repeat("x", 600)
	d := NewTXT(long)
	if len(d.Strings) != 3 || len(d.Strings[0]) != 255 || len(d.Strings[2]) != 90 {
		t.Fatalf("NewTXT split = %v lengths", len(d.Strings))
	}
	if d.Joined() != long {
		t.Error("Joined does not reconstruct the value")
	}
	if NewTXT("").Strings[0] != "" {
		t.Error("NewTXT(\"\") should produce one empty character-string")
	}
}

func TestRCodeAndTypeStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || TypeTLSA.String() != "TLSA" || Type(999).String() != "TYPE999" {
		t.Error("Type.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String mismatch")
	}
	for _, s := range []string{"A", "NS", "CNAME", "SOA", "MX", "TXT", "AAAA", "TLSA", "ANY"} {
		typ, err := ParseType(s)
		if err != nil || typ.String() != s {
			t.Errorf("ParseType(%q) round-trip failed: %v", s, err)
		}
	}
	if _, err := ParseType("BOGUS"); err == nil {
		t.Error("ParseType accepted BOGUS")
	}
}

// randomName builds a random but valid domain name from the given source.
func randomName(r *rand.Rand) string {
	nLabels := 1 + r.Intn(4)
	labels := make([]string, nLabels)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	for i := range labels {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		labels[i] = sb.String()
	}
	return strings.Join(labels, ".")
}

// Property: any well-formed message round-trips through Pack/Unpack.
func TestMessageRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		m := &Message{Header: Header{
			ID:       uint16(r.Uint32()),
			Response: r.Intn(2) == 0, Authoritative: r.Intn(2) == 0,
			RecursionDesired: r.Intn(2) == 0, RCode: RCode(r.Intn(6)),
		}}
		m.Questions = []Question{{Name: randomName(r), Type: TypeTXT, Class: ClassIN}}
		nRR := r.Intn(6)
		for i := 0; i < nRR; i++ {
			owner := randomName(r)
			switch r.Intn(5) {
			case 0:
				var a4 [4]byte
				r.Read(a4[:])
				m.Answers = append(m.Answers, RR{Name: owner, Type: TypeA, Class: ClassIN,
					TTL: r.Uint32() % 1e6, Data: AData{Addr: netip.AddrFrom4(a4)}})
			case 1:
				m.Answers = append(m.Answers, RR{Name: owner, Type: TypeMX, Class: ClassIN,
					TTL: r.Uint32() % 1e6, Data: MXData{Preference: uint16(r.Uint32()), Host: randomName(r)}})
			case 2:
				m.Answers = append(m.Answers, RR{Name: owner, Type: TypeTXT, Class: ClassIN,
					TTL: r.Uint32() % 1e6, Data: NewTXT(strings.Repeat("v", r.Intn(300)))})
			case 3:
				m.Answers = append(m.Answers, RR{Name: owner, Type: TypeCNAME, Class: ClassIN,
					TTL: r.Uint32() % 1e6, Data: CNAMEData{Target: randomName(r)}})
			case 4:
				cd := make([]byte, r.Intn(40))
				r.Read(cd)
				if len(cd) == 0 {
					cd = nil // decoder yields nil for empty RDATA remainder
				}
				m.Answers = append(m.Answers, RR{Name: owner, Type: TypeTLSA, Class: ClassIN,
					TTL: r.Uint32() % 1e6, Data: TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: cd}})
			}
		}
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Unpack never panics on arbitrary bytes.
func TestUnpackFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unpack(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: mutated valid messages never panic and either parse or error.
func TestUnpackMutationNoPanic(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeTXT, Class: ClassIN}},
		Answers: []RR{{Name: "example.com", Type: TypeTXT, Class: ClassIN, TTL: 60,
			Data: NewTXT("v=STSv1; id=1")}},
	}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		mb := bytes.Clone(b)
		for k := 0; k < 1+r.Intn(4); k++ {
			mb[r.Intn(len(mb))] = byte(r.Intn(256))
		}
		_, _ = Unpack(mb)
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 60,
		Data: MXData{Preference: 10, Host: "mail.example.com"}}
	want := "example.com 60 IN MX 10 mail.example.com"
	if rr.String() != want {
		t.Errorf("RR.String() = %q, want %q", rr.String(), want)
	}
}

func TestPackNilRData(t *testing.T) {
	m := &Message{Answers: []RR{{Name: "example.com", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack accepted nil RDATA")
	}
}

func TestAddressTypeValidation(t *testing.T) {
	m := &Message{Answers: []RR{{Name: "x.com", Type: TypeA, Class: ClassIN,
		Data: AData{Addr: netip.MustParseAddr("2001:db8::1")}}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack accepted IPv6 address in A record")
	}
	m = &Message{Answers: []RR{{Name: "x.com", Type: TypeAAAA, Class: ClassIN,
		Data: AAAAData{Addr: netip.MustParseAddr("192.0.2.1")}}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack accepted IPv4 address in AAAA record")
	}
}
