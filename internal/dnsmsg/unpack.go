package dnsmsg

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Errors returned while decoding.
var (
	ErrShortMessage = errors.New("dnsmsg: message truncated")
	ErrPointerLoop  = errors.New("dnsmsg: compression pointer loop")
	ErrTrailingData = errors.New("dnsmsg: trailing bytes after message")
)

// Unpack parses a wire-format DNS message.
func Unpack(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	m := &Message{}
	var qd, an, ns, ar int
	var err error
	if m.Header, qd, an, ns, ar, err = d.header(); err != nil {
		return nil, err
	}
	for i := 0; i < qd; i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		n   int
		dst *[]RR
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}}
	for _, sec := range sections {
		for i := 0; i < sec.n; i++ {
			rr, err := d.rr()
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return m, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) header() (h Header, qd, an, ns, ar int, err error) {
	if len(d.buf) < 12 {
		err = ErrShortMessage
		return
	}
	h.ID = uint16(d.buf[0])<<8 | uint16(d.buf[1])
	flags := uint16(d.buf[2])<<8 | uint16(d.buf[3])
	h.Response = flags&(1<<15) != 0
	h.OpCode = OpCode(flags >> 11 & 0xF)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xF)
	qd = int(uint16(d.buf[4])<<8 | uint16(d.buf[5]))
	an = int(uint16(d.buf[6])<<8 | uint16(d.buf[7]))
	ns = int(uint16(d.buf[8])<<8 | uint16(d.buf[9]))
	ar = int(uint16(d.buf[10])<<8 | uint16(d.buf[11]))
	d.off = 12
	return
}

func (d *decoder) question() (Question, error) {
	name, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) rr() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t16, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	c16, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.uint32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	if d.off+int(rdlen) > len(d.buf) {
		return RR{}, ErrShortMessage
	}
	rr := RR{Name: name, Type: Type(t16), Class: Class(c16), TTL: ttl}
	end := d.off + int(rdlen)
	rr.Data, err = d.rdata(rr.Type, end)
	if err != nil {
		return RR{}, fmt.Errorf("RDATA of %s %s: %w", name, rr.Type, err)
	}
	if d.off != end {
		return RR{}, fmt.Errorf("RDATA of %s %s: %d bytes left over", name, rr.Type, end-d.off)
	}
	return rr, nil
}

func (d *decoder) rdata(t Type, end int) (RData, error) {
	switch t {
	case TypeA:
		if end-d.off != 4 {
			return nil, fmt.Errorf("A RDATA length %d", end-d.off)
		}
		var a4 [4]byte
		copy(a4[:], d.buf[d.off:])
		d.off += 4
		return AData{Addr: netip.AddrFrom4(a4)}, nil
	case TypeAAAA:
		if end-d.off != 16 {
			return nil, fmt.Errorf("AAAA RDATA length %d", end-d.off)
		}
		var a16 [16]byte
		copy(a16[:], d.buf[d.off:])
		d.off += 16
		return AAAAData{Addr: netip.AddrFrom16(a16)}, nil
	case TypeNS:
		host, err := d.name()
		return NSData{Host: host}, err
	case TypeCNAME:
		target, err := d.name()
		return CNAMEData{Target: target}, err
	case TypeMX:
		pref, err := d.uint16()
		if err != nil {
			return nil, err
		}
		host, err := d.name()
		return MXData{Preference: pref, Host: host}, err
	case TypeTXT:
		var parts []string
		for d.off < end {
			n := int(d.buf[d.off])
			d.off++
			if d.off+n > end {
				return nil, ErrShortMessage
			}
			parts = append(parts, string(d.buf[d.off:d.off+n]))
			d.off += n
		}
		if len(parts) == 0 {
			return nil, errors.New("TXT with no character-strings")
		}
		return TXTData{Strings: parts}, nil
	case TypeSOA:
		var s SOAData
		var err error
		if s.MName, err = d.name(); err != nil {
			return nil, err
		}
		if s.RName, err = d.name(); err != nil {
			return nil, err
		}
		for _, p := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *p, err = d.uint32(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case TypeDNSKEY:
		if end-d.off < 4 {
			return nil, ErrShortMessage
		}
		k := DNSKEYData{
			Flags:     uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1]),
			Protocol:  d.buf[d.off+2],
			Algorithm: d.buf[d.off+3],
		}
		d.off += 4
		k.PublicKey = append([]byte(nil), d.buf[d.off:end]...)
		d.off = end
		return k, nil
	case TypeDS:
		if end-d.off < 4 {
			return nil, ErrShortMessage
		}
		ds := DSData{
			KeyTag:     uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1]),
			Algorithm:  d.buf[d.off+2],
			DigestType: d.buf[d.off+3],
		}
		d.off += 4
		ds.Digest = append([]byte(nil), d.buf[d.off:end]...)
		d.off = end
		return ds, nil
	case TypeRRSIG:
		var sig RRSIGData
		tc, err := d.uint16()
		if err != nil {
			return nil, err
		}
		sig.TypeCovered = Type(tc)
		if end-d.off < 2 {
			return nil, ErrShortMessage
		}
		sig.Algorithm = d.buf[d.off]
		sig.Labels = d.buf[d.off+1]
		d.off += 2
		if sig.OrigTTL, err = d.uint32(); err != nil {
			return nil, err
		}
		if sig.Expiration, err = d.uint32(); err != nil {
			return nil, err
		}
		if sig.Inception, err = d.uint32(); err != nil {
			return nil, err
		}
		if sig.KeyTag, err = d.uint16(); err != nil {
			return nil, err
		}
		if sig.SignerName, err = d.name(); err != nil {
			return nil, err
		}
		if d.off > end {
			return nil, ErrShortMessage
		}
		sig.Signature = append([]byte(nil), d.buf[d.off:end]...)
		d.off = end
		return sig, nil
	case TypeTLSA:
		if end-d.off < 3 {
			return nil, ErrShortMessage
		}
		td := TLSAData{
			Usage:        d.buf[d.off],
			Selector:     d.buf[d.off+1],
			MatchingType: d.buf[d.off+2],
		}
		d.off += 3
		td.CertData = append([]byte(nil), d.buf[d.off:end]...)
		d.off = end
		return td, nil
	default:
		raw := RawData{RType: t, Bytes: append([]byte(nil), d.buf[d.off:end]...)}
		d.off = end
		return raw, nil
	}
}

// name decodes a possibly-compressed domain name at the current offset.
func (d *decoder) name() (string, error) {
	var sb strings.Builder
	off := d.off
	jumped := false
	// Each pointer must strictly decrease the offset it targets relative to
	// its own position per common validation practice; we bound total jumps
	// instead, which is simpler and equally safe.
	for jumps := 0; ; {
		if off >= len(d.buf) {
			return "", ErrShortMessage
		}
		c := int(d.buf[off])
		switch {
		case c == 0:
			if !jumped {
				d.off = off + 1
			}
			return sb.String(), nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(d.buf) {
				return "", ErrShortMessage
			}
			ptr := (c&0x3F)<<8 | int(d.buf[off+1])
			if !jumped {
				d.off = off + 2
			}
			jumped = true
			jumps++
			if jumps > 63 {
				return "", ErrPointerLoop
			}
			off = ptr
		case c&0xC0 != 0:
			return "", fmt.Errorf("dnsmsg: reserved label type %#x", c&0xC0)
		default:
			if off+1+c > len(d.buf) {
				return "", ErrShortMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			if sb.Len()+c > 253 {
				return "", ErrNameTooLong
			}
			sb.Write(d.buf[off+1 : off+1+c])
			off += 1 + c
		}
	}
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := uint32(d.buf[d.off])<<24 | uint32(d.buf[d.off+1])<<16 | uint32(d.buf[d.off+2])<<8 | uint32(d.buf[d.off+3])
	d.off += 4
	return v, nil
}
