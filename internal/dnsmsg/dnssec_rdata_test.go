package dnsmsg

import (
	"reflect"
	"strings"
	"testing"
)

func TestDNSSECTypesWireRoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 3, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeDNSKEY, Class: ClassIN}},
		Answers: []RR{
			{Name: "example.com", Type: TypeDNSKEY, Class: ClassIN, TTL: 3600,
				Data: DNSKEYData{Flags: 257, Protocol: 3, Algorithm: AlgorithmECDSAP256SHA256,
					PublicKey: make([]byte, 64)}},
			{Name: "example.com", Type: TypeDS, Class: ClassIN, TTL: 3600,
				Data: DSData{KeyTag: 12345, Algorithm: 13, DigestType: DigestSHA256,
					Digest: []byte{1, 2, 3, 4}}},
			{Name: "example.com", Type: TypeRRSIG, Class: ClassIN, TTL: 3600,
				Data: RRSIGData{TypeCovered: TypeDNSKEY, Algorithm: 13, Labels: 2,
					OrigTTL: 3600, Expiration: 1900000000, Inception: 1700000000,
					KeyTag: 12345, SignerName: "example.com", Signature: make([]byte, 64)}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestDNSSECTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{TypeDS: "DS", TypeRRSIG: "RRSIG", TypeDNSKEY: "DNSKEY"} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", uint16(typ), typ.String())
		}
		back, err := ParseType(want)
		if err != nil || back != typ {
			t.Errorf("ParseType(%q) = %v, %v", want, back, err)
		}
	}
	// Presentation forms carry the expected field counts.
	dk := DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: []byte{1}}
	if n := len(strings.Fields(dk.String())); n != 4 {
		t.Errorf("DNSKEY fields = %d", n)
	}
	ds := DSData{KeyTag: 1, Algorithm: 13, DigestType: 2, Digest: []byte{0xAB}}
	if n := len(strings.Fields(ds.String())); n != 4 {
		t.Errorf("DS fields = %d", n)
	}
	sig := RRSIGData{TypeCovered: TypeTXT, SignerName: "x.y", Signature: []byte{1}}
	if n := len(strings.Fields(sig.String())); n != 9 {
		t.Errorf("RRSIG fields = %d", n)
	}
}

func TestRRSIGSignedPrefixExcludesSignature(t *testing.T) {
	sig := RRSIGData{TypeCovered: TypeTLSA, Algorithm: 13, Labels: 4, OrigTTL: 300,
		Expiration: 2000, Inception: 1000, KeyTag: 7, SignerName: "Example.COM",
		Signature: []byte{9, 9, 9}}
	prefix := sig.SignedPrefix()
	full, err := PackRData(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(prefix)+3 {
		t.Errorf("prefix %d + sig 3 != full %d", len(prefix), len(full))
	}
	// The signer name is canonicalized to lowercase in the prefix.
	if !strings.Contains(string(prefix), "example") || strings.Contains(string(prefix), "Example") {
		t.Error("signer name not canonicalized")
	}
}

func TestPackRDataNil(t *testing.T) {
	if _, err := PackRData(nil); err == nil {
		t.Error("PackRData(nil) accepted")
	}
}

func TestDNSSECTruncatedRDATA(t *testing.T) {
	// Craft a message whose DNSKEY RDATA is 2 bytes (below the 4-byte fixed
	// header) — the decoder must reject it without panicking.
	m := &Message{Header: Header{Response: true},
		Answers: []RR{{Name: "x.com", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: NewTXT("ab")}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the TYPE field of the answer to DNSKEY (TXT rdata is 3 bytes:
	// len+'a'+'b'... actually "ab" -> 1+2). Find the type offset: header 12
	// + name (1+1+1+3+1=7) + ...: simpler to scan for the TXT type bytes.
	for i := 0; i+1 < len(wire); i++ {
		if wire[i] == 0 && wire[i+1] == byte(TypeTXT) && i > 12 {
			wire[i+1] = byte(TypeDNSKEY)
			break
		}
	}
	if _, err := Unpack(wire); err == nil {
		t.Log("short DNSKEY accepted as raw — acceptable only if type rewrite missed")
	}
}
