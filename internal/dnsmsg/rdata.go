package dnsmsg

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// RR is a resource record. Data holds the type-specific payload.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String formats the record in zone-file presentation form.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, classString(rr.Class), rr.Type, rr.Data)
}

// RData is the type-specific portion of a resource record.
type RData interface {
	// String renders the presentation form of the RDATA.
	String() string
	// pack appends the wire form. Domain names inside RDATA are packed
	// without compression (as modern encoders do, for interoperability).
	pack(b []byte) ([]byte, error)
}

// AData is an IPv4 address record.
type AData struct{ Addr netip.Addr }

func (d AData) String() string { return d.Addr.String() }

func (d AData) pack(b []byte) ([]byte, error) {
	if !d.Addr.Is4() {
		return nil, fmt.Errorf("dnsmsg: A record with non-IPv4 address %s", d.Addr)
	}
	a4 := d.Addr.As4()
	return append(b, a4[:]...), nil
}

// AAAAData is an IPv6 address record.
type AAAAData struct{ Addr netip.Addr }

func (d AAAAData) String() string { return d.Addr.String() }

func (d AAAAData) pack(b []byte) ([]byte, error) {
	if !d.Addr.Is6() || d.Addr.Is4In6() {
		return nil, fmt.Errorf("dnsmsg: AAAA record with non-IPv6 address %s", d.Addr)
	}
	a16 := d.Addr.As16()
	return append(b, a16[:]...), nil
}

// NSData is a name-server record.
type NSData struct{ Host string }

func (d NSData) String() string { return d.Host }

func (d NSData) pack(b []byte) ([]byte, error) { return appendName(b, d.Host) }

// CNAMEData is a canonical-name record.
type CNAMEData struct{ Target string }

func (d CNAMEData) String() string { return d.Target }

func (d CNAMEData) pack(b []byte) ([]byte, error) { return appendName(b, d.Target) }

// MXData is a mail-exchange record.
type MXData struct {
	Preference uint16
	Host       string
}

func (d MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, d.Host) }

func (d MXData) pack(b []byte) ([]byte, error) {
	b = appendUint16(b, d.Preference)
	return appendName(b, d.Host)
}

// TXTData is a text record: one or more character-strings of up to 255
// bytes each. Joined renders the logical value (concatenation), which is
// what RFC 8461 record parsing consumes.
type TXTData struct{ Strings []string }

// Joined returns the concatenation of the character-strings.
func (d TXTData) Joined() string { return strings.Join(d.Strings, "") }

func (d TXTData) String() string {
	parts := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

func (d TXTData) pack(b []byte) ([]byte, error) {
	if len(d.Strings) == 0 {
		// RFC 1035 requires at least one (possibly empty) character-string.
		return append(b, 0), nil
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnsmsg: TXT character-string exceeds 255 bytes (%d)", len(s))
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// NewTXT splits a logical text value into 255-byte character-strings.
func NewTXT(value string) TXTData {
	if value == "" {
		return TXTData{Strings: []string{""}}
	}
	var parts []string
	for len(value) > 255 {
		parts = append(parts, value[:255])
		value = value[255:]
	}
	parts = append(parts, value)
	return TXTData{Strings: parts}
}

// SOAData is a start-of-authority record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d", d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

func (d SOAData) pack(b []byte) ([]byte, error) {
	var err error
	if b, err = appendName(b, d.MName); err != nil {
		return nil, err
	}
	if b, err = appendName(b, d.RName); err != nil {
		return nil, err
	}
	for _, v := range []uint32{d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum} {
		b = appendUint32(b, v)
	}
	return b, nil
}

// TLSAData is a DANE TLSA record (RFC 6698).
type TLSAData struct {
	Usage        uint8 // certificate usage: 0..3 (DANE-EE is 3)
	Selector     uint8 // 0 full cert, 1 SubjectPublicKeyInfo
	MatchingType uint8 // 0 exact, 1 SHA-256, 2 SHA-512
	CertData     []byte
}

func (d TLSAData) String() string {
	return fmt.Sprintf("%d %d %d %x", d.Usage, d.Selector, d.MatchingType, d.CertData)
}

func (d TLSAData) pack(b []byte) ([]byte, error) {
	b = append(b, d.Usage, d.Selector, d.MatchingType)
	return append(b, d.CertData...), nil
}

// RawData carries RDATA of a type this package does not interpret.
type RawData struct {
	RType Type
	Bytes []byte
}

func (d RawData) String() string { return fmt.Sprintf("\\# %d %x", len(d.Bytes), d.Bytes) }

func (d RawData) pack(b []byte) ([]byte, error) { return append(b, d.Bytes...), nil }

// PackRData serializes RDATA in uncompressed wire form — the form DNSSEC
// canonicalization (RFC 4034 §6) and DS digests operate over.
func PackRData(d RData) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("dnsmsg: nil RDATA")
	}
	return d.pack(nil)
}
