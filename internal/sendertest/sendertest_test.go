package sendertest

import (
	"math"
	"testing"
)

func TestPopulationStats(t *testing.T) {
	pop := NewPopulation()
	if len(pop) != PopulationSize {
		t.Fatalf("population = %d", len(pop))
	}
	st := Aggregate(pop)

	checks := []struct {
		name string
		got  int
		want int
	}{
		{"TLS senders", st.TLS, TLSSenders},
		{"always-PKIX", st.AlwaysPKIX, AlwaysPKIX},
		{"MTA-STS validators", st.MTASTS, MTASTSValidators},
		{"DANE validators", st.DANE, DANEValidators},
		{"both validators", st.Both, BothValidators},
		{"preference bug", st.PreferFlipped, PreferenceBug},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	// Percentages match §6.2 within a tenth of a point.
	pcts := []struct {
		name string
		got  float64
		want float64
	}{
		{"TLS %", st.Percent(st.TLS), 94.6},
		{"opportunistic %", st.Percent(st.Opportunistic), 93.3}, // paper: 93.2
		{"always-PKIX %", st.Percent(st.AlwaysPKIX), 1.3},
		{"MTA-STS %", st.Percent(st.MTASTS), 19.6},
		{"DANE %", st.Percent(st.DANE), 29.8},
		{"both %", st.Percent(st.Both), 8.5},
		{"preference bug %", st.Percent(st.PreferFlipped), 2.6},
	}
	for _, c := range pcts {
		if math.Abs(c.got-c.want) > 0.15 {
			t.Errorf("%s = %.2f, want ~%.1f", c.name, c.got, c.want)
		}
	}
}

func TestDeliverDecisionMatrix(t *testing.T) {
	full := Behavior{SupportsTLS: true, ValidatesMTASTS: true, ValidatesDANE: true}
	buggy := full
	buggy.PrefersMTASTSOverDANE = true
	opportunistic := Behavior{SupportsTLS: true}
	plaintext := Behavior{}
	pkix := Behavior{SupportsTLS: true, RequirePKIXAlways: true}

	cases := []struct {
		name   string
		b      Behavior
		rc     RecipientConfig
		refuse bool
		mech   Mechanism
	}{
		{"no TLS offered -> opportunistic plaintext", full,
			RecipientConfig{OffersSTARTTLS: false}, false, MechOpportunistic},
		{"no TLS offered under enforce policy -> refuse", full,
			RecipientConfig{MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: true}, true, MechMTASTS},
		{"plaintext sender ignores everything", plaintext,
			RecipientConfig{OffersSTARTTLS: true, MTASTS: true, MTASTSMode: "enforce"}, false, MechNone},
		{"DANE precedence over MTA-STS", full,
			RecipientConfig{OffersSTARTTLS: true, DANE: true, TLSAMatches: true,
				MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: false, CertPKIXValid: false},
			false, MechDANE},
		{"DANE mismatch refuses despite valid MTA-STS", full,
			RecipientConfig{OffersSTARTTLS: true, DANE: true, TLSAMatches: false,
				MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: true, CertPKIXValid: true},
			true, MechDANE},
		{"buggy milter flips precedence", buggy,
			RecipientConfig{OffersSTARTTLS: true, DANE: true, TLSAMatches: false,
				MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: true, CertPKIXValid: true},
			false, MechMTASTS},
		{"MTA-STS enforce bad cert refuses", full,
			RecipientConfig{OffersSTARTTLS: true, MTASTS: true, MTASTSMode: "enforce",
				MXMatchesPolicy: true, CertPKIXValid: false},
			true, MechMTASTS},
		{"MTA-STS testing bad cert delivers", full,
			RecipientConfig{OffersSTARTTLS: true, MTASTS: true, MTASTSMode: "testing",
				MXMatchesPolicy: false, CertPKIXValid: false},
			false, MechMTASTS},
		{"MTA-STS mode none skips validation", full,
			RecipientConfig{OffersSTARTTLS: true, MTASTS: true, MTASTSMode: "none",
				MXMatchesPolicy: false, CertPKIXValid: false},
			false, MechOpportunistic},
		{"opportunistic accepts bad cert", opportunistic,
			RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: false}, false, MechOpportunistic},
		{"always-PKIX refuses bad cert", pkix,
			RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: false}, true, MechPKIX},
		{"always-PKIX accepts good cert", pkix,
			RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: true}, false, MechPKIX},
	}
	for _, c := range cases {
		out := c.b.Deliver(c.rc)
		if out.Refused != c.refuse || out.Validated != c.mech {
			t.Errorf("%s: got refused=%v mech=%v, want refused=%v mech=%v",
				c.name, out.Refused, out.Validated, c.refuse, c.mech)
		}
		if out.Refused == out.Delivered {
			t.Errorf("%s: refused and delivered must be exclusive", c.name)
		}
	}
}

func TestProbeInfersFromOutcomesOnly(t *testing.T) {
	// The probe must recover each behavior flag for every combination.
	for _, tls := range []bool{true, false} {
		for _, sts := range []bool{true, false} {
			for _, dane := range []bool{true, false} {
				b := Behavior{SupportsTLS: tls}
				if tls {
					b.ValidatesMTASTS = sts
					b.ValidatesDANE = dane
				}
				r := Probe(b)
				if r.TLS != tls {
					t.Errorf("tls=%v sts=%v dane=%v: probe TLS = %v", tls, sts, dane, r.TLS)
				}
				if r.MTASTS != (tls && sts) {
					t.Errorf("tls=%v sts=%v: probe MTASTS = %v", tls, sts, r.MTASTS)
				}
				if r.DANE != (tls && dane) {
					t.Errorf("tls=%v dane=%v: probe DANE = %v", tls, dane, r.DANE)
				}
			}
		}
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechNone: "none", MechOpportunistic: "opportunistic",
		MechPKIX: "pkix", MechMTASTS: "mta-sts", MechDANE: "dane",
	} {
		if m.String() != want {
			t.Errorf("Mechanism(%d) = %q, want %q", int(m), m.String(), want)
		}
	}
}
