package sendertest

import (
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

func TestBuildTLSRPTReportSTSBroken(t *testing.T) {
	pop := NewPopulation()
	day := time.Date(2024, 9, 28, 13, 0, 0, 0, time.UTC)
	rc := RecipientConfig{
		Name: "recipient.example", OffersSTARTTLS: true, CertPKIXValid: true,
		MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: false,
	}
	r := BuildTLSRPTReport(pop, rc, day)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p := r.Policy(tlsrpt.PolicyTypeSTS, "recipient.example")
	total := p.Summary.TotalSuccessfulSessionCount + p.Summary.TotalFailureSessionCount
	if total != int64(len(pop)) {
		t.Errorf("sessions = %d, want %d", total, len(pop))
	}
	// Refusals: exactly the MTA-STS validators (enforce + mismatch).
	var validationFailures int64
	for _, fd := range p.FailureDetails {
		if fd.ResultType == tlsrpt.ResultValidationFailure {
			validationFailures += fd.FailedSessionCount
		}
	}
	if validationFailures != MTASTSValidators {
		t.Errorf("validation failures = %d, want %d", validationFailures, MTASTSValidators)
	}
	// Non-TLS senders show up as starttls-not-supported.
	var noTLS int64
	for _, fd := range p.FailureDetails {
		if fd.ResultType == tlsrpt.ResultSTARTTLSNotSupported {
			noTLS += fd.FailedSessionCount
		}
	}
	if noTLS != PopulationSize-TLSSenders {
		t.Errorf("no-TLS failures = %d, want %d", noTLS, PopulationSize-TLSSenders)
	}
}

func TestBuildTLSRPTReportDANEBroken(t *testing.T) {
	pop := NewPopulation()
	day := time.Now()
	rc := RecipientConfig{
		Name: "dane.example", OffersSTARTTLS: true, CertPKIXValid: true,
		DANE: true, TLSAMatches: false,
	}
	r := BuildTLSRPTReport(pop, rc, day)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	p := r.Policy(tlsrpt.PolicyTypeTLSA, "dane.example")
	var tlsaFailures int64
	for _, fd := range p.FailureDetails {
		if fd.ResultType == tlsrpt.ResultTLSAInvalid {
			tlsaFailures += fd.FailedSessionCount
		}
	}
	// All DANE validators refuse on the broken TLSA RRset.
	if tlsaFailures != DANEValidators {
		t.Errorf("tlsa failures = %d, want %d", tlsaFailures, DANEValidators)
	}
	// The report round-trips through JSON.
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := tlsrpt.UnmarshalReport(data)
	if err != nil || back.Validate() != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestBuildTLSRPTReportCleanRecipient(t *testing.T) {
	pop := NewPopulation()
	rc := RecipientConfig{
		Name: "clean.example", OffersSTARTTLS: true, CertPKIXValid: true,
		MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: true,
	}
	r := BuildTLSRPTReport(pop, rc, time.Now())
	p := r.Policy(tlsrpt.PolicyTypeSTS, "clean.example")
	if p.Summary.TotalFailureSessionCount != PopulationSize-TLSSenders {
		// Only the non-TLS senders fail against a clean recipient.
		t.Errorf("failures = %d, want %d", p.Summary.TotalFailureSessionCount, PopulationSize-TLSSenders)
	}
}
