package sendertest

import (
	"fmt"
	"time"

	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// BuildTLSRPTReport aggregates one day of the platform's delivery
// outcomes against a recipient configuration into an RFC 8460 report, as
// the recipient's TLSRPT rua destination would receive it from a large
// sending organization (Appendix B: only two major providers send these;
// this produces what they would send).
func BuildTLSRPTReport(pop []Behavior, rc RecipientConfig, day time.Time) *tlsrpt.Report {
	start := day.Truncate(24 * time.Hour)
	r := tlsrpt.NewReport(
		"mtasts-repro sender platform",
		"mailto:tlsrpt@sender-platform.example",
		fmt.Sprintf("%s-%s", start.Format("2006-01-02"), rc.Name),
		start, start.Add(24*time.Hour),
	)
	ptype := tlsrpt.PolicyTypeNoFind
	switch {
	case rc.DANE:
		ptype = tlsrpt.PolicyTypeTLSA
	case rc.MTASTS:
		ptype = tlsrpt.PolicyTypeSTS
	}
	mx := "mx." + rc.Name
	for _, b := range pop {
		out := b.Deliver(rc)
		switch {
		case out.Delivered && out.UsedTLS:
			r.AddSuccess(ptype, rc.Name, 1)
		case out.Delivered:
			// Plaintext delivery: a TLS failure from the report's view.
			r.AddFailure(ptype, rc.Name, tlsrpt.ResultSTARTTLSNotSupported, mx, 1)
		case out.Refused:
			r.AddFailure(ptype, rc.Name, resultFor(out, rc), mx, 1)
		}
	}
	return r
}

// resultFor maps a refusal to the RFC 8460 result type.
func resultFor(out Outcome, rc RecipientConfig) tlsrpt.ResultType {
	switch out.Validated {
	case MechDANE:
		return tlsrpt.ResultTLSAInvalid
	case MechMTASTS:
		if !rc.MXMatchesPolicy {
			return tlsrpt.ResultValidationFailure
		}
		return tlsrpt.ResultSTSWebPKIInvalid
	case MechPKIX:
		return tlsrpt.ResultCertificateNotTrusted
	}
	return tlsrpt.ResultValidationFailure
}
