// Package sendertest reproduces the sender-side analysis of §6: a test
// platform in the style of email-security-scans.org that receives mail
// from many sender domains at instrumented recipient configurations and
// records, per sender, whether it uses TLS, validates certificates, and
// enforces MTA-STS and/or DANE. The sender population is calibrated to
// the §6.1 dataset (2,394 sender domains); per-sender behavior is
// evaluated against recipient configurations through the same decision
// logic a compliant MTA implements.
package sendertest

import "fmt"

// Behavior is the security posture of one sending MTA, as the platform
// infers it from observed deliveries.
type Behavior struct {
	// Domain is the sender domain.
	Domain string
	// SupportsTLS: the sender negotiates STARTTLS at all (94.6%).
	SupportsTLS bool
	// RequirePKIXAlways: refuses delivery on any invalid certificate,
	// regardless of MTA-STS/DANE (1.3%).
	RequirePKIXAlways bool
	// ValidatesMTASTS: fetches and enforces MTA-STS policies (19.6%).
	ValidatesMTASTS bool
	// ValidatesDANE: validates TLSA records (29.8%).
	ValidatesDANE bool
	// PrefersMTASTSOverDANE: the RFC-violating ordering (2.6%; the known
	// postfix-mta-sts-resolver milter bug, §6.2 fn. 11). Only meaningful
	// for dual validators.
	PrefersMTASTSOverDANE bool
}

// Opportunistic reports whether the sender encrypts when possible but
// accepts any certificate absent a policy.
func (b Behavior) Opportunistic() bool { return b.SupportsTLS && !b.RequirePKIXAlways }

// RecipientConfig is one instrumented test domain of the platform.
type RecipientConfig struct {
	Name string
	// MTASTS: the domain publishes a (valid) MTA-STS record and policy.
	MTASTS bool
	// MTASTSMode is "enforce"/"testing"/"none" when MTASTS.
	MTASTSMode string
	// MXMatchesPolicy: the advertised MX matches the policy's patterns.
	MXMatchesPolicy bool
	// DANE: usable (DNSSEC-secure) TLSA records exist.
	DANE bool
	// TLSAMatches: the TLSA records match the presented certificate.
	TLSAMatches bool
	// CertPKIXValid: the MX certificate validates under the web PKI.
	CertPKIXValid bool
	// OffersSTARTTLS: the MX advertises STARTTLS.
	OffersSTARTTLS bool
}

// Outcome is what the platform records for one delivery attempt.
type Outcome struct {
	Delivered bool
	UsedTLS   bool
	// Validated reports which mechanism, if any, gated the delivery.
	Validated Mechanism
	// Refused marks a compliant refusal.
	Refused bool
}

// Mechanism identifies the validation path taken.
type Mechanism int

// Validation mechanisms.
const (
	MechNone Mechanism = iota
	MechOpportunistic
	MechPKIX
	MechMTASTS
	MechDANE
)

// String returns a short label.
func (m Mechanism) String() string {
	switch m {
	case MechOpportunistic:
		return "opportunistic"
	case MechPKIX:
		return "pkix"
	case MechMTASTS:
		return "mta-sts"
	case MechDANE:
		return "dane"
	}
	return "none"
}

// Deliver evaluates the sender's decision procedure against a recipient.
// It mirrors RFC 7672 + RFC 8461 precedence: usable DANE is checked first
// (unless the sender has the documented preference bug), then MTA-STS,
// then opportunistic TLS. The model tracks the reference implementation in
// internal/mta exactly — internal/experiments' cross-product test pins
// every cell of this function against the live delivery path.
func (b Behavior) Deliver(rc RecipientConfig) Outcome {
	if !b.SupportsTLS {
		// A sender with no TLS stack delivers plaintext regardless of
		// what the recipient publishes.
		return Outcome{Delivered: true}
	}
	useMTASTSFirst := b.PrefersMTASTSOverDANE && b.ValidatesMTASTS && rc.MTASTS

	if b.ValidatesDANE && rc.DANE && !useMTASTSFirst {
		// Usable TLSA records demand verified TLS: a recipient that then
		// withholds STARTTLS (or presents a non-matching certificate) is
		// refused, never downgraded to plaintext.
		if !rc.OffersSTARTTLS || !rc.TLSAMatches {
			return Outcome{Refused: true, Validated: MechDANE}
		}
		return Outcome{Delivered: true, UsedTLS: true, Validated: MechDANE}
	}
	if b.ValidatesMTASTS && rc.MTASTS && rc.MTASTSMode != "none" {
		tlsOK := rc.OffersSTARTTLS && rc.CertPKIXValid
		if tlsOK && rc.MXMatchesPolicy {
			return Outcome{Delivered: true, UsedTLS: true, Validated: MechMTASTS}
		}
		if rc.MTASTSMode == "enforce" || (b.RequirePKIXAlways && !tlsOK) {
			return Outcome{Refused: true, Validated: MechMTASTS}
		}
		// Testing mode delivers despite the violation (over TLS when the
		// recipient offers it at all — certificate problems don't stop an
		// opportunistic handshake), and the violation is reported.
		return Outcome{Delivered: true, UsedTLS: rc.OffersSTARTTLS, Validated: MechMTASTS}
	}
	if b.RequirePKIXAlways {
		if !rc.OffersSTARTTLS || !rc.CertPKIXValid {
			return Outcome{Refused: true, Validated: MechPKIX}
		}
		return Outcome{Delivered: true, UsedTLS: true, Validated: MechPKIX}
	}
	if !rc.OffersSTARTTLS {
		// Opportunistic plaintext fallback.
		return Outcome{Delivered: true, Validated: MechOpportunistic}
	}
	return Outcome{Delivered: true, UsedTLS: true, Validated: MechOpportunistic}
}

// PlatformConfigs returns the platform's full instrumented recipient set:
// the four discriminating configs Probe uses plus the remaining corners
// (testing mode, mode none, missing STARTTLS under each policy). The
// cross-product test in internal/experiments realizes each one as a live
// loopback world.
func PlatformConfigs() []RecipientConfig {
	return []RecipientConfig{
		{Name: "plain-tls-good", OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "plain-tls-badcert", OffersSTARTTLS: true},
		{Name: "no-starttls"},
		{Name: "sts-enforce-good", MTASTS: true, MTASTSMode: "enforce",
			MXMatchesPolicy: true, OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "sts-enforce-mx-mismatch", MTASTS: true, MTASTSMode: "enforce",
			OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "sts-enforce-badcert", MTASTS: true, MTASTSMode: "enforce",
			MXMatchesPolicy: true, OffersSTARTTLS: true},
		{Name: "sts-enforce-nostarttls", MTASTS: true, MTASTSMode: "enforce",
			MXMatchesPolicy: true},
		{Name: "sts-testing-mx-mismatch", MTASTS: true, MTASTSMode: "testing",
			OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "sts-none", MTASTS: true, MTASTSMode: "none",
			MXMatchesPolicy: true, OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "dane-good", DANE: true, TLSAMatches: true,
			OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "dane-mismatch", DANE: true,
			OffersSTARTTLS: true, CertPKIXValid: true},
		{Name: "dane-and-sts", DANE: true, MTASTS: true, MTASTSMode: "enforce",
			MXMatchesPolicy: true, OffersSTARTTLS: true, CertPKIXValid: true},
	}
}

// Population counts (§6.1/§6.2).
const (
	PopulationSize   = 2394
	TLSSenders       = 2264 // 94.6%
	AlwaysPKIX       = 31   // 1.3%
	MTASTSValidators = 469  // 19.6%
	DANEValidators   = 714  // 29.8%
	BothValidators   = 203  // 8.5%
	PreferenceBug    = 62   // 2.6%
)

// NewPopulation constructs the §6 sender population deterministically:
// index ranges realize every reported count and containment (validators
// are TLS senders; the preference bug occurs only among dual validators).
func NewPopulation() []Behavior {
	pop := make([]Behavior, PopulationSize)
	// Index layout within [0, TLSSenders):
	//   [0, MTASTSValidators)                      MTA-STS validators
	//   [overlapStart, overlapStart+Both)          ∩ DANE validators
	//   [MTASTSValidators, MTASTSValidators+rest)  DANE-only validators
	//   [TLSSenders-AlwaysPKIX, TLSSenders)        always-PKIX senders
	overlapStart := MTASTSValidators - BothValidators // 266
	daneOnly := DANEValidators - BothValidators       // 511
	for i := range pop {
		b := Behavior{Domain: fmt.Sprintf("sender%04d.example", i)}
		if i < TLSSenders {
			b.SupportsTLS = true
		}
		if i < MTASTSValidators {
			b.ValidatesMTASTS = true
		}
		if i >= overlapStart && i < MTASTSValidators+daneOnly {
			b.ValidatesDANE = true
		}
		if i >= overlapStart && i < overlapStart+PreferenceBug {
			b.PrefersMTASTSOverDANE = true
		}
		if i >= TLSSenders-AlwaysPKIX && i < TLSSenders {
			b.RequirePKIXAlways = true
		}
		pop[i] = b
	}
	return pop
}

// Stats are the §6.2 aggregate numbers.
type Stats struct {
	Senders       int
	TLS           int
	Opportunistic int
	AlwaysPKIX    int
	MTASTS        int
	DANE          int
	Both          int
	PreferFlipped int
}

// Percent formats n as a percentage of the population.
func (s Stats) Percent(n int) float64 { return 100 * float64(n) / float64(s.Senders) }

// Aggregate computes the platform statistics over a sender population by
// probing each sender against the discriminating recipient configs.
func Aggregate(pop []Behavior) Stats {
	var st Stats
	st.Senders = len(pop)
	for _, b := range pop {
		probe := Probe(b)
		if probe.TLS {
			st.TLS++
		}
		if probe.Opportunistic {
			st.Opportunistic++
		}
		if probe.AlwaysPKIX {
			st.AlwaysPKIX++
		}
		if probe.MTASTS {
			st.MTASTS++
		}
		if probe.DANE {
			st.DANE++
		}
		if probe.MTASTS && probe.DANE {
			st.Both++
		}
		if probe.PreferFlipped {
			st.PreferFlipped++
		}
	}
	return st
}

// ProbeResult is the behavioral fingerprint the platform derives for one
// sender from delivery observations alone.
type ProbeResult struct {
	TLS           bool
	Opportunistic bool
	AlwaysPKIX    bool
	MTASTS        bool
	DANE          bool
	PreferFlipped bool
}

// Probe runs the discriminating recipient configurations against one
// sender and infers its behavior purely from outcomes — the platform never
// reads the Behavior flags directly, so the inference logic is itself
// under test.
func Probe(b Behavior) ProbeResult {
	var r ProbeResult

	// Config A: plain TLS recipient with an invalid certificate.
	plainBadCert := RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: false}
	outA := b.Deliver(plainBadCert)
	r.TLS = outA.UsedTLS || outA.Refused
	r.Opportunistic = outA.Delivered && outA.UsedTLS
	r.AlwaysPKIX = outA.Refused && outA.Validated == MechPKIX

	// Config B: MTA-STS enforce with a deliberately mismatching MX.
	stsBroken := RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: true,
		MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: false}
	outB := b.Deliver(stsBroken)
	r.MTASTS = outB.Refused && outB.Validated == MechMTASTS

	// Config C: DANE with mismatching TLSA records.
	daneBroken := RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: true,
		DANE: true, TLSAMatches: false}
	outC := b.Deliver(daneBroken)
	r.DANE = outC.Refused && outC.Validated == MechDANE

	// Config D: both present; TLSA mismatching but PKIX+MTA-STS valid. A
	// compliant dual validator refuses (DANE first); the buggy milter
	// validates MTA-STS and delivers (§6.2 footnote 10).
	both := RecipientConfig{OffersSTARTTLS: true, CertPKIXValid: true,
		MTASTS: true, MTASTSMode: "enforce", MXMatchesPolicy: true,
		DANE: true, TLSAMatches: false}
	outD := b.Deliver(both)
	if r.MTASTS && r.DANE {
		r.PreferFlipped = outD.Delivered && outD.Validated == MechMTASTS
	}
	return r
}
