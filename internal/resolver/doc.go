// Package resolver provides the DNS client side of the measurement
// apparatus: a stub resolver speaking the dnsmsg wire format over UDP with
// TCP fallback on truncation, CNAME chasing across zones, a TTL-respecting
// cache, and a token-bucket rate limiter (the paper rate-limits its scans
// to avoid overloading small authoritative servers, §3.1).
//
// Setting Client.Obs to an *obs.Registry instruments every query: a
// resolver.query.seconds latency histogram, resolver.queries.total and
// per-kind resolver.query.errors.<kind> counters, TCP-fallback and
// rate-limiter-wait counters, and snapshot-time gauges over the cache's
// hit/miss/expiry statistics (which Cache tracks unconditionally via
// cheap atomics — see CacheStats). A nil Obs costs one pointer check per
// query. The metric catalog is docs/OBSERVABILITY.md.
package resolver
