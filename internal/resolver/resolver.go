package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/retry"
	"github.com/netsecurelab/mtasts/internal/sf"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Lookup errors, typed into the scan error taxonomy (docs/ERRORS.md).
// NXDomain and NoData are distinguished because MTA-STS discovery treats
// them identically ("no record") while the scanner's DNS error taxonomy
// does not. The transient bit each sentinel carries is what the retry
// layer keys off (errtax.Transient): authoritative verdicts — NXDOMAIN,
// NODATA, a CNAME loop — are never retried, while timeouts and
// SERVFAIL/REFUSED/garbled-reply blips are.
var (
	ErrNXDomain   = errtax.New(errtax.LayerDNS, errtax.CodeNXDomain, false, "resolver: name does not exist (NXDOMAIN)")
	ErrNoData     = errtax.New(errtax.LayerDNS, errtax.CodeNoData, false, "resolver: name exists but has no records of requested type")
	ErrServFail   = errtax.New(errtax.LayerDNS, errtax.CodeServFail, true, "resolver: server failure (SERVFAIL)")
	ErrRefused    = errtax.New(errtax.LayerDNS, errtax.CodeRefused, true, "resolver: query refused")
	ErrTimeout    = errtax.New(errtax.LayerDNS, errtax.CodeTimeout, true, "resolver: query timed out")
	ErrBadMessage = errtax.New(errtax.LayerDNS, errtax.CodeBadDNSMessage, true, "resolver: malformed response")
	ErrCNAMELoop  = errtax.New(errtax.LayerDNS, errtax.CodeCNAMELoop, false, "resolver: CNAME chain too long")
)

// IsNotFound reports whether err is NXDOMAIN or NODATA — the two outcomes
// RFC 8461 treats as "MTA-STS not supported".
func IsNotFound(err error) bool {
	return errors.Is(err, ErrNXDomain) || errors.Is(err, ErrNoData)
}

// Client resolves DNS queries against a fixed server address. It is safe
// for concurrent use.
type Client struct {
	// ServerAddr is the "host:port" of the authoritative/recursive server.
	ServerAddr string
	// Timeout bounds each network exchange. Zero means 3s.
	Timeout time.Duration
	// MaxCNAME bounds cross-restart CNAME chasing. Zero means 8.
	MaxCNAME int
	// Limiter, when non-nil, gates outgoing queries.
	Limiter *RateLimiter
	// Cache, when non-nil, stores responses by (name, type) up to TTL.
	Cache *Cache
	// Obs, when non-nil, receives query latencies, error-taxonomy
	// counters, TCP-fallback and rate-limit-wait counters, and cache
	// effectiveness gauges (see docs/OBSERVABILITY.md). A nil registry
	// costs one pointer check per query.
	Obs *obs.Registry
	// MaxAttempts bounds attempts per query, retrying transient failures
	// (timeouts, SERVFAIL/REFUSED, malformed replies) with backoff.
	// Zero or one means a single attempt.
	MaxAttempts int
	// RetryBase overrides the first backoff delay (default 100ms).
	RetryBase time.Duration
	// RetryBudget, when non-nil, caps total retries across the run.
	RetryBudget *retry.Budget

	mu      sync.Mutex
	rnd     *rand.Rand
	obsOnce sync.Once
	// flight coalesces concurrent identical (name, type) queries into
	// one wire exchange whose answer fans out to every waiter
	// (resolver.queries.coalesced counts the joins). Workers scanning
	// overlapping MX sets would otherwise race past the cache and send
	// duplicate queries back to back.
	flight sf.Group[coalesced]
}

// coalesced is a completed query outcome as shared between coalesced
// callers. A leader panic hands waiters the zero value, which reads as
// NODATA — wrong answer beats deadlock, and the panic still propagates
// on the leader.
type coalesced struct {
	rrs   []dnsmsg.RR
	cname string
	err   error
}

// New returns a Client for the given server with a small shared cache.
func New(serverAddr string) *Client {
	return &Client{
		ServerAddr: serverAddr,
		Timeout:    3 * time.Second,
		Cache:      NewCache(4096),
		rnd:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

func (c *Client) maxCNAME() int {
	if c.MaxCNAME <= 0 {
		return 8
	}
	return c.MaxCNAME
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rnd == nil {
		c.rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rnd.Uint32())
}

// Lookup resolves (name, type), following CNAME chains across query
// restarts, and returns the final RRset (CNAME records are not included).
// The returned records all have the requested type.
func (c *Client) Lookup(ctx context.Context, name string, t dnsmsg.Type) ([]dnsmsg.RR, error) {
	cur := strutil.CanonicalName(name)
	for depth := 0; depth <= c.maxCNAME(); depth++ {
		rrs, cname, err := c.queryOnce(ctx, cur, t)
		if err != nil {
			return nil, err
		}
		if len(rrs) > 0 {
			return rrs, nil
		}
		if cname == "" {
			return nil, fmt.Errorf("%w: %s %s", ErrNoData, cur, t)
		}
		cur = cname
	}
	return nil, ErrCNAMELoop
}

// LookupCNAME returns the CNAME target at name, or ErrNoData when name has
// no CNAME.
func (c *Client) LookupCNAME(ctx context.Context, name string) (string, error) {
	rrs, _, err := c.queryOnce(ctx, strutil.CanonicalName(name), dnsmsg.TypeCNAME)
	if err != nil {
		return "", err
	}
	for _, rr := range rrs {
		if cd, ok := rr.Data.(dnsmsg.CNAMEData); ok {
			return strutil.CanonicalName(cd.Target), nil
		}
	}
	return "", fmt.Errorf("%w: %s CNAME", ErrNoData, name)
}

// LookupTXT returns the logical values of TXT records at name.
func (c *Client) LookupTXT(ctx context.Context, name string) ([]string, error) {
	rrs, err := c.Lookup(ctx, name, dnsmsg.TypeTXT)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(rrs))
	for _, rr := range rrs {
		if td, ok := rr.Data.(dnsmsg.TXTData); ok {
			out = append(out, td.Joined())
		}
	}
	return out, nil
}

// MX is a resolved mail exchange.
type MX struct {
	Preference uint16
	Host       string
}

// LookupMX returns the MX records at name sorted by preference.
func (c *Client) LookupMX(ctx context.Context, name string) ([]MX, error) {
	rrs, err := c.Lookup(ctx, name, dnsmsg.TypeMX)
	if err != nil {
		return nil, err
	}
	out := make([]MX, 0, len(rrs))
	for _, rr := range rrs {
		if md, ok := rr.Data.(dnsmsg.MXData); ok {
			out = append(out, MX{Preference: md.Preference, Host: strutil.CanonicalName(md.Host)})
		}
	}
	// Insertion sort by preference keeps equal-preference order stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Preference < out[j-1].Preference; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// LookupAddrs returns A (and, when includeV6 is set, AAAA) addresses.
func (c *Client) LookupAddrs(ctx context.Context, name string, includeV6 bool) ([]netip.Addr, error) {
	var out []netip.Addr
	rrs, err := c.Lookup(ctx, name, dnsmsg.TypeA)
	if err != nil && !IsNotFound(err) {
		return nil, err
	}
	for _, rr := range rrs {
		if ad, ok := rr.Data.(dnsmsg.AData); ok {
			out = append(out, ad.Addr)
		}
	}
	if includeV6 {
		rrs6, err6 := c.Lookup(ctx, name, dnsmsg.TypeAAAA)
		if err6 != nil && !IsNotFound(err6) {
			return nil, err6
		}
		for _, rr := range rrs6 {
			if ad, ok := rr.Data.(dnsmsg.AAAAData); ok {
				out = append(out, ad.Addr)
			}
		}
	}
	if len(out) == 0 {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s A/AAAA", ErrNoData, name)
	}
	return out, nil
}

// queryOnce performs a single query. On a CNAME-only answer it returns the
// final CNAME target for the caller to restart with; records matching t are
// returned directly.
func (c *Client) queryOnce(ctx context.Context, name string, t dnsmsg.Type) (rrs []dnsmsg.RR, cname string, err error) {
	if c.Cache != nil {
		if ce, ok := c.Cache.Get(name, t); ok {
			return ce.rrs, ce.cname, ce.err
		}
	}
	// The retry loop and the cache store run once per coalesced group,
	// under the leader's context; joiners inherit the leader's answer
	// without touching the wire.
	v, shared := c.flight.Do(name+"\x00"+strconv.Itoa(int(t)), func() coalesced {
		var res coalesced
		res.err = c.retryPolicy().Do(ctx, func(ctx context.Context) error {
			var opErr error
			res.rrs, res.cname, opErr = c.exchange(ctx, name, t)
			return opErr
		})
		if c.Cache != nil {
			// Positive answers cache by minimum TTL; of the negatives only
			// NXDOMAIN is cached, briefly. Transient failures — SERVFAIL,
			// REFUSED, timeouts, malformed replies — are never cached: a
			// one-off blip must not poison every later query for this
			// (name, type) in the run. (NODATA surfaces here as a nil error
			// with an empty RRset, so it caches on the positive path.)
			var ttl time.Duration
			switch {
			case res.err == nil:
				ttl = minTTL(res.rrs)
			case errors.Is(res.err, ErrNXDomain):
				ttl = 30 * time.Second
			}
			if ttl > 0 {
				c.Cache.Put(name, t, entry{rrs: res.rrs, cname: res.cname, err: res.err}, ttl)
			}
		}
		return res
	})
	if shared {
		c.Obs.Counter("resolver.queries.coalesced").Inc()
	}
	return v.rrs, v.cname, v.err
}

func (c *Client) retryPolicy() retry.Policy {
	return retry.Policy{
		Name:        "resolver",
		MaxAttempts: c.MaxAttempts,
		BaseDelay:   c.RetryBase,
		Budget:      c.RetryBudget,
		// Transient is left nil: retry defaults to errtax.Transient, which
		// reads each sentinel's transient bit and falls back to the shared
		// socket-level heuristic for untyped errors.
		Obs: c.Obs,
	}
}

func minTTL(rrs []dnsmsg.RR) time.Duration {
	minV := uint32(300)
	for i, rr := range rrs {
		if i == 0 || rr.TTL < minV {
			minV = rr.TTL
		}
	}
	if minV == 0 {
		minV = 1
	}
	if minV > 3600 {
		minV = 3600
	}
	return time.Duration(minV) * time.Second
}

// obsInit registers the snapshot-time cache gauges once per client.
func (c *Client) obsInit() {
	if c.Obs == nil {
		return
	}
	c.obsOnce.Do(func() {
		cache := c.Cache
		if cache == nil {
			return
		}
		c.Obs.GaugeFunc("resolver.cache.entries", func() int64 { return int64(cache.Len()) })
		c.Obs.GaugeFunc("resolver.cache.hits", func() int64 { return cache.Stats().Hits })
		c.Obs.GaugeFunc("resolver.cache.misses", func() int64 { return cache.Stats().Misses })
		c.Obs.GaugeFunc("resolver.cache.expired", func() int64 { return cache.Stats().Expired })
		c.Obs.GaugeFunc("resolver.cache.evictions", func() int64 { return cache.Stats().Evictions })
	})
}

// errKind maps a lookup error onto its taxonomy segment for
// resolver.query.errors.<kind> counters.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrNXDomain):
		return "nxdomain"
	case errors.Is(err, ErrNoData):
		return "nodata"
	case errors.Is(err, ErrServFail):
		return "servfail"
	case errors.Is(err, ErrRefused):
		return "refused"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrBadMessage):
		return "badmsg"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	}
	return "other"
}

func (c *Client) exchange(ctx context.Context, name string, t dnsmsg.Type) ([]dnsmsg.RR, string, error) {
	c.obsInit()
	if !c.Obs.Enabled() {
		return c.doExchange(ctx, name, t)
	}
	c.Obs.Counter("resolver.queries.total").Inc()
	start := time.Now()
	rrs, cname, err := c.doExchange(ctx, name, t)
	c.Obs.Histogram("resolver.query.seconds", nil).ObserveSince(start)
	if err != nil {
		c.Obs.Counter("resolver.query.errors." + errKind(err)).Inc()
	}
	return rrs, cname, err
}

func (c *Client) doExchange(ctx context.Context, name string, t dnsmsg.Type) ([]dnsmsg.RR, string, error) {
	if c.Limiter != nil {
		var waitStart time.Time
		if c.Obs.Enabled() {
			waitStart = time.Now()
		}
		if err := c.Limiter.Wait(ctx); err != nil {
			return nil, "", err
		}
		if c.Obs.Enabled() {
			waited := time.Since(waitStart)
			c.Obs.Histogram("resolver.ratelimit.wait_seconds", nil).ObserveDuration(waited)
			if waited >= time.Millisecond {
				c.Obs.Counter("resolver.ratelimit.waits").Inc()
			}
		}
	}
	query := dnsmsg.NewQuery(c.nextID(), name, t)
	wire, err := query.Pack()
	if err != nil {
		return nil, "", fmt.Errorf("resolver: packing query for %q: %w", name, err)
	}

	resp, err := c.exchangeUDP(ctx, wire, query.Header.ID)
	if err != nil {
		return nil, "", err
	}
	if resp.Header.Truncated {
		c.Obs.Counter("resolver.queries.tcp_fallbacks").Inc()
		resp, err = c.exchangeTCP(ctx, wire, query.Header.ID)
		if err != nil {
			return nil, "", err
		}
	}
	return interpret(resp, name, t)
}

func (c *Client) exchangeUDP(ctx context.Context, wire []byte, id uint16) (*dnsmsg.Message, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", c.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("resolver: dial udp %s: %w", c.ServerAddr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.timeout())
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("resolver: send: %w", err)
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil, fmt.Errorf("%w: udp %s", ErrTimeout, c.ServerAddr)
			}
			return nil, fmt.Errorf("resolver: recv: %w", err)
		}
		m, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		if m.Header.ID != id || !m.Header.Response {
			continue // stray datagram; keep reading until deadline
		}
		return m, nil
	}
}

func (c *Client) exchangeTCP(ctx context.Context, wire []byte, id uint16) (*dnsmsg.Message, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", c.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("resolver: dial tcp %s: %w", c.ServerAddr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.timeout())
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	out := make([]byte, 2+len(wire))
	out[0], out[1] = byte(len(wire)>>8), byte(len(wire))
	copy(out[2:], wire)
	if _, err := conn.Write(out); err != nil {
		return nil, fmt.Errorf("resolver: tcp send: %w", err)
	}
	var lenBuf [2]byte
	if err := readFull(conn, lenBuf[:]); err != nil {
		return nil, tcpRecvErr(err)
	}
	msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
	if err := readFull(conn, msg); err != nil {
		return nil, tcpRecvErr(err)
	}
	m, err := dnsmsg.Unpack(msg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if m.Header.ID != id || !m.Header.Response {
		return nil, fmt.Errorf("%w: mismatched tcp response", ErrBadMessage)
	}
	return m, nil
}

func tcpRecvErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: tcp", ErrTimeout)
	}
	return fmt.Errorf("resolver: tcp recv: %w", err)
}

func readFull(conn net.Conn, b []byte) error {
	n := 0
	for n < len(b) {
		m, err := conn.Read(b[n:])
		n += m
		if err != nil {
			return err
		}
	}
	return nil
}

// interpret maps a response message to (matched records, last CNAME target,
// error).
func interpret(m *dnsmsg.Message, name string, t dnsmsg.Type) ([]dnsmsg.RR, string, error) {
	switch m.Header.RCode {
	case dnsmsg.RCodeSuccess:
	case dnsmsg.RCodeNXDomain:
		return nil, "", fmt.Errorf("%w: %s", ErrNXDomain, name)
	case dnsmsg.RCodeServFail:
		return nil, "", fmt.Errorf("%w: %s", ErrServFail, name)
	case dnsmsg.RCodeRefused:
		return nil, "", fmt.Errorf("%w: %s", ErrRefused, name)
	default:
		return nil, "", fmt.Errorf("%w: unexpected rcode %s for %s", ErrBadMessage, m.Header.RCode, name)
	}
	var matched []dnsmsg.RR
	cname := ""
	cur := strutil.CanonicalName(name)
	// Walk the answer section following owner-name/CNAME links, tolerating
	// arbitrary record order.
	for range m.Answers {
		advanced := false
		for _, rr := range m.Answers {
			owner := strutil.CanonicalName(rr.Name)
			if owner != cur {
				continue
			}
			if rr.Type == t {
				matched = append(matched, rr)
			} else if rr.Type == dnsmsg.TypeCNAME && t != dnsmsg.TypeCNAME {
				cd, ok := rr.Data.(dnsmsg.CNAMEData)
				if ok {
					cur = strutil.CanonicalName(cd.Target)
					cname = cur
					advanced = true
				}
			}
		}
		if len(matched) > 0 || !advanced {
			break
		}
	}
	return matched, cname, nil
}
