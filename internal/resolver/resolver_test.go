package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/sf"
)

// startServer boots an authoritative server with a canned example.com zone.
func startServer(t *testing.T) (*dnsserver.Server, *Client) {
	t.Helper()
	z := dnszone.New("example.com")
	add := func(rr dnsmsg.RR) { z.MustAdd(rr) }
	add(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("192.0.2.1")}})
	add(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeAAAA, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}})
	add(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MXData{Preference: 20, Host: "mx2.example.com"}})
	add(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MXData{Preference: 10, Host: "mx1.example.com"}})
	add(dnsmsg.RR{Name: "_mta-sts.example.com", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.NewTXT("v=STSv1; id=20240431;")})
	add(dnsmsg.RR{Name: "mta-sts.example.com", Type: dnsmsg.TypeCNAME, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.CNAMEData{Target: "policy.example.com"}})
	add(dnsmsg.RR{Name: "policy.example.com", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("192.0.2.80")}})

	srv := dnsserver.New(nil)
	srv.AddZone(z)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return srv, New(addr.String())
}

func TestLookupTXT(t *testing.T) {
	_, c := startServer(t)
	vals, err := c.LookupTXT(context.Background(), "_mta-sts.example.com")
	if err != nil {
		t.Fatalf("LookupTXT: %v", err)
	}
	if len(vals) != 1 || vals[0] != "v=STSv1; id=20240431;" {
		t.Errorf("TXT = %v", vals)
	}
}

func TestLookupMXSorted(t *testing.T) {
	_, c := startServer(t)
	mxs, err := c.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if len(mxs) != 2 || mxs[0].Host != "mx1.example.com" || mxs[1].Host != "mx2.example.com" {
		t.Errorf("MX = %+v", mxs)
	}
}

func TestLookupAddrs(t *testing.T) {
	_, c := startServer(t)
	addrs, err := c.LookupAddrs(context.Background(), "example.com", true)
	if err != nil {
		t.Fatalf("LookupAddrs: %v", err)
	}
	if len(addrs) != 2 {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestCNAMEFollowedAcrossRestart(t *testing.T) {
	_, c := startServer(t)
	addrs, err := c.LookupAddrs(context.Background(), "mta-sts.example.com", false)
	if err != nil {
		t.Fatalf("LookupAddrs via CNAME: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.80") {
		t.Errorf("addrs = %v", addrs)
	}
	target, err := c.LookupCNAME(context.Background(), "mta-sts.example.com")
	if err != nil || target != "policy.example.com" {
		t.Errorf("LookupCNAME = %q, %v", target, err)
	}
}

func TestNXDomainAndNoData(t *testing.T) {
	_, c := startServer(t)
	_, err := c.LookupTXT(context.Background(), "absent.example.com")
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("want NXDOMAIN, got %v", err)
	}
	_, err = c.LookupTXT(context.Background(), "example.com")
	if !errors.Is(err, ErrNoData) {
		t.Errorf("want NODATA, got %v", err)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound(NODATA) = false")
	}
}

func TestServFailAndRefused(t *testing.T) {
	srv, c := startServer(t)
	srv.SetBehavior(dnsserver.BehaviorServFail)
	c.Cache = nil
	_, err := c.LookupTXT(context.Background(), "_mta-sts.example.com")
	if !errors.Is(err, ErrServFail) {
		t.Errorf("want SERVFAIL, got %v", err)
	}
	srv.SetBehavior(dnsserver.BehaviorRefuse)
	_, err = c.LookupTXT(context.Background(), "_mta-sts.example.com")
	if !errors.Is(err, ErrRefused) {
		t.Errorf("want REFUSED, got %v", err)
	}
}

func TestTimeoutOnDrop(t *testing.T) {
	srv, c := startServer(t)
	srv.SetBehavior(dnsserver.BehaviorDrop)
	c.Cache = nil
	c.Timeout = 150 * time.Millisecond
	start := time.Now()
	_, err := c.LookupTXT(context.Background(), "_mta-sts.example.com")
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want timeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took too long")
	}
}

func TestRefusedOutsideZones(t *testing.T) {
	_, c := startServer(t)
	_, err := c.LookupTXT(context.Background(), "example.org")
	if !errors.Is(err, ErrRefused) {
		t.Errorf("want REFUSED for out-of-zone, got %v", err)
	}
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	// Build a zone whose TXT RRset exceeds the UDP payload cap.
	z := dnszone.New("big.example")
	for i := 0; i < 40; i++ {
		z.MustAdd(dnsmsg.RR{Name: "big.example", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.NewTXT(strings.Repeat("x", 100) + string(rune('a'+i)))})
	}
	srv := dnsserver.New(nil)
	srv.AddZone(z)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	c := New(addr.String())
	vals, err := c.LookupTXT(context.Background(), "big.example")
	if err != nil {
		t.Fatalf("LookupTXT over TCP fallback: %v", err)
	}
	if len(vals) != 40 {
		t.Errorf("got %d TXT values, want 40", len(vals))
	}
}

func TestCacheHitsAvoidNetwork(t *testing.T) {
	srv, c := startServer(t)
	ctx := context.Background()
	if _, err := c.LookupTXT(ctx, "_mta-sts.example.com"); err != nil {
		t.Fatal(err)
	}
	before := srv.QueryCount()
	for i := 0; i < 10; i++ {
		if _, err := c.LookupTXT(ctx, "_mta-sts.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.QueryCount() != before {
		t.Errorf("cache miss: query count rose from %d to %d", before, srv.QueryCount())
	}
}

func TestConcurrentLookups(t *testing.T) {
	_, c := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.LookupMX(context.Background(), "example.com"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCacheLRUAndTTL(t *testing.T) {
	cache := NewCache(2)
	now := time.Unix(1000, 0)
	cache.now = func() time.Time { return now }

	cache.Put("a", dnsmsg.TypeA, entry{cname: "x"}, time.Minute)
	cache.Put("b", dnsmsg.TypeA, entry{cname: "y"}, time.Minute)
	if _, ok := cache.Get("a", dnsmsg.TypeA); !ok {
		t.Fatal("a evicted too early")
	}
	// Inserting c evicts LRU (b, since a was just touched).
	cache.Put("c", dnsmsg.TypeA, entry{cname: "z"}, time.Minute)
	if _, ok := cache.Get("b", dnsmsg.TypeA); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := cache.Get("a", dnsmsg.TypeA); !ok {
		t.Error("a should have survived")
	}
	// TTL expiry.
	now = now.Add(2 * time.Minute)
	if _, ok := cache.Get("a", dnsmsg.TypeA); ok {
		t.Error("a should have expired")
	}
	cache.Flush()
	if cache.Len() != 0 {
		t.Error("Flush left entries")
	}
}

func TestRateLimiter(t *testing.T) {
	l := NewRateLimiter(100, 1)
	var slept time.Duration
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	l.sleep = func(d time.Duration) {
		slept += d
		now = now.Add(d)
	}
	ctx := context.Background()
	for i := 0; i < 11; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// 11 queries at 100 qps with burst 1: ~100ms of waiting.
	if slept < 80*time.Millisecond || slept > 200*time.Millisecond {
		t.Errorf("slept %v, want ~100ms", slept)
	}
}

func TestRateLimiterContextCancel(t *testing.T) {
	l := NewRateLimiter(0.001, 1)
	ctx := context.Background()
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	l.sleep = func(time.Duration) {} // avoid real sleeping
	if err := l.Wait(cctx); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestLookupCNAMEAbsent(t *testing.T) {
	_, c := startServer(t)
	// example.com exists but has no CNAME: NODATA.
	if _, err := c.LookupCNAME(context.Background(), "example.com"); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}

func TestLookupAddrsNoRecords(t *testing.T) {
	_, c := startServer(t)
	// _mta-sts.example.com has only TXT: A lookup is NODATA even with v6.
	_, err := c.LookupAddrs(context.Background(), "_mta-sts.example.com", true)
	if !IsNotFound(err) {
		t.Errorf("err = %v", err)
	}
}

func TestLookupMXEmptyName(t *testing.T) {
	_, c := startServer(t)
	// An NXDOMAIN name propagates the resolver error through LookupMX.
	if _, err := c.LookupMX(context.Background(), "ghost.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v", err)
	}
}

// Regression: a one-off REFUSED (or garbled) reply must not be served
// from the cache once the server recovers — only NXDOMAIN/NODATA
// negatives are cacheable; transient failures never are.
func TestTransientErrorsNotCached(t *testing.T) {
	srv, c := startServer(t)
	ctx := context.Background()

	srv.SetBehavior(dnsserver.BehaviorRefuse)
	if _, err := c.LookupTXT(ctx, "_mta-sts.example.com"); !errors.Is(err, ErrRefused) {
		t.Fatalf("want REFUSED, got %v", err)
	}
	srv.SetBehavior(dnsserver.BehaviorNormal)
	vals, err := c.LookupTXT(ctx, "_mta-sts.example.com")
	if err != nil || len(vals) != 1 {
		t.Errorf("REFUSED was cached: post-recovery lookup = %v, %v", vals, err)
	}

	srv.SetBehavior(dnsserver.BehaviorServFail)
	if _, err := c.LookupMX(ctx, "example.com"); !errors.Is(err, ErrServFail) {
		t.Fatalf("want SERVFAIL, got %v", err)
	}
	srv.SetBehavior(dnsserver.BehaviorNormal)
	if _, err := c.LookupMX(ctx, "example.com"); err != nil {
		t.Errorf("SERVFAIL was cached: post-recovery lookup err = %v", err)
	}
}

// NXDOMAIN, by contrast, stays briefly cached: repeat lookups must not
// hit the network again.
func TestNXDomainStillCached(t *testing.T) {
	srv, c := startServer(t)
	ctx := context.Background()
	if _, err := c.LookupTXT(ctx, "absent.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("want NXDOMAIN, got %v", err)
	}
	before := srv.QueryCount()
	for i := 0; i < 5; i++ {
		if _, err := c.LookupTXT(ctx, "absent.example.com"); !errors.Is(err, ErrNXDomain) {
			t.Fatalf("want cached NXDOMAIN, got %v", err)
		}
	}
	if got := srv.QueryCount(); got != before {
		t.Errorf("NXDOMAIN not cached: query count rose from %d to %d", before, got)
	}
}

// A client with MaxAttempts > 1 recovers from a transient SERVFAIL blip
// within a single Lookup call.
func TestRetryRecoversFromBlip(t *testing.T) {
	srv, c := startServer(t)
	c.MaxAttempts = 3
	c.RetryBase = time.Millisecond
	srv.SetBehavior(dnsserver.BehaviorServFail)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		srv.SetBehavior(dnsserver.BehaviorNormal)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var vals []string
	var err error
	// The blip may outlast one 3-attempt lookup; what must hold is that
	// lookups succeed as soon as the server recovers, with no poisoned
	// cache and no retry-loop wedge.
	for i := 0; i < 50; i++ {
		if vals, err = c.LookupTXT(ctx, "_mta-sts.example.com"); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
	if err != nil || len(vals) != 1 {
		t.Fatalf("lookup never recovered: %v, %v", vals, err)
	}
}

// The resolver's sentinels carry their retry classification as a typed
// transient bit; errtax.Transient (the retry layer's default classifier)
// must read it, including through fmt.Errorf wrapping.
func TestTransientErrClassification(t *testing.T) {
	for _, err := range []error{ErrTimeout, ErrServFail, ErrRefused, ErrBadMessage} {
		if !errtax.Transient(err) {
			t.Errorf("errtax.Transient(%v) = false", err)
		}
		if wrapped := fmt.Errorf("%w: ctx", err); !errtax.Transient(wrapped) {
			t.Errorf("errtax.Transient(%v) = false through wrapping", wrapped)
		}
	}
	for _, err := range []error{ErrNXDomain, ErrNoData, ErrCNAMELoop, context.Canceled, nil} {
		if errtax.Transient(err) {
			t.Errorf("errtax.Transient(%v) = true", err)
		}
	}
}

// Lookup errors coalesced by the in-flight singleflight group must keep
// their taxonomy codes: every waiter shares the same typed error value.
func TestCoalescedErrorsKeepCodes(t *testing.T) {
	if c, ok := errtax.CodeOf(fmt.Errorf("%w: shared", ErrServFail)); !ok || c != errtax.CodeServFail {
		t.Fatalf("CodeOf(wrapped ErrServFail) = %q, %v", c, ok)
	}
	g := &sf.Group[error]{}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i], _ = g.Do("q", func() error {
				time.Sleep(2 * time.Millisecond)
				return fmt.Errorf("%w: coalesced", ErrServFail)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrServFail) {
			t.Errorf("waiter %d: errors.Is lost sentinel: %v", i, err)
		}
		if c, ok := errtax.CodeOf(err); !ok || c != errtax.CodeServFail {
			t.Errorf("waiter %d: CodeOf = %q, %v", i, c, ok)
		}
		if !errtax.Transient(err) {
			t.Errorf("waiter %d: coalesced SERVFAIL not transient", i)
		}
	}
}

// Regression: Len must not report expired-but-unevicted entries.
func TestCacheLenPrunesExpired(t *testing.T) {
	cache := NewCache(8)
	now := time.Unix(1000, 0)
	cache.now = func() time.Time { return now }
	cache.Put("a", dnsmsg.TypeA, entry{cname: "x"}, time.Minute)
	cache.Put("b", dnsmsg.TypeA, entry{cname: "y"}, time.Hour)
	if got := cache.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	now = now.Add(2 * time.Minute)
	if got := cache.Len(); got != 1 {
		t.Errorf("Len = %d after expiry, want 1 (expired entry still counted)", got)
	}
	if _, ok := cache.Get("b", dnsmsg.TypeA); !ok {
		t.Error("unexpired entry pruned by Len")
	}
}

func TestClientZeroValueDefaults(t *testing.T) {
	srv, _ := startServer(t)
	// A zero-value client (no cache, no rnd) must still work.
	c := &Client{ServerAddr: srv.Addr().String(), Timeout: 2 * time.Second}
	vals, err := c.LookupTXT(context.Background(), "_mta-sts.example.com")
	if err != nil || len(vals) != 1 {
		t.Errorf("zero-value client: %v, %v", vals, err)
	}
}
