package resolver

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
)

// entry is a cached lookup outcome.
type entry struct {
	rrs   []dnsmsg.RR
	cname string
	err   error
}

type cacheKey struct {
	name string
	t    dnsmsg.Type
}

type cacheItem struct {
	key     cacheKey
	val     entry
	expires time.Time
}

// CacheStats are cumulative effectiveness counters, maintained whether or
// not observability is enabled (atomic increments, negligible cost) and
// exported by the resolver as resolver.cache.* gauges.
type CacheStats struct {
	// Hits counts Gets answered from an unexpired entry.
	Hits int64
	// Misses counts Gets with no usable entry (absent or expired).
	Misses int64
	// Expired counts Gets that found an entry past its TTL (a subset of
	// Misses).
	Expired int64
	// Evictions counts LRU evictions under capacity pressure.
	Evictions int64
}

// Cache is a TTL-respecting LRU cache of lookup outcomes. It is safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recent

	hits, misses, expired, evictions atomic.Int64

	// now is replaceable for tests.
	now func() time.Time
}

// NewCache returns a cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:   max,
		items: make(map[cacheKey]*list.Element),
		order: list.New(),
		now:   time.Now,
	}
}

// Get returns the cached outcome for (name, t) if present and unexpired.
func (c *Cache) Get(name string, t dnsmsg.Type) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{name, t}]
	if !ok {
		c.misses.Add(1)
		return entry{}, false
	}
	item := el.Value.(*cacheItem)
	if c.now().After(item.expires) {
		c.removeLocked(el)
		c.expired.Add(1)
		c.misses.Add(1)
		return entry{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return item.val, true
}

// Stats returns the cumulative effectiveness counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Expired:   c.expired.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Put stores an outcome with the given TTL, evicting the least recently
// used entry when full.
func (c *Cache) Put(name string, t dnsmsg.Type, val entry, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{name, t}
	if el, ok := c.items[key]; ok {
		item := el.Value.(*cacheItem)
		item.val, item.expires = val, c.now().Add(ttl)
		c.order.MoveToFront(el)
		return
	}
	for len(c.items) >= c.max {
		c.removeLocked(c.order.Back())
		c.evictions.Add(1)
	}
	el := c.order.PushFront(&cacheItem{key: key, val: val, expires: c.now().Add(ttl)})
	c.items[key] = el
}

// Len returns the number of unexpired entries, pruning any expired but
// not-yet-evicted ones first so the resolver.cache.entries gauge reflects
// the live population rather than dead weight awaiting LRU eviction.
// (Pruning here does not touch the Expired counter, which counts only
// expirations observed by Get.)
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for el := c.order.Back(); el != nil; {
		prev := el.Prev()
		if item := el.Value.(*cacheItem); now.After(item.expires) {
			c.removeLocked(el)
		}
		el = prev
	}
	return len(c.items)
}

// Flush drops every entry.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[cacheKey]*list.Element)
	c.order.Init()
}

func (c *Cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	item := el.Value.(*cacheItem)
	delete(c.items, item.key)
	c.order.Remove(el)
}

// RateLimiter is a token-bucket limiter gating outgoing DNS queries, per
// the paper's "rate limit our queries" methodology (§3.1).
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewRateLimiter allows rate queries/second with the given burst.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  func(d time.Duration) { time.Sleep(d) },
	}
}

// Wait blocks until a token is available or ctx is done.
func (l *RateLimiter) Wait(ctx context.Context) error {
	for {
		l.mu.Lock()
		now := l.now()
		if !l.last.IsZero() {
			l.tokens += now.Sub(l.last).Seconds() * l.rate
			if l.tokens > l.burst {
				l.tokens = l.burst
			}
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		wait := time.Duration(need * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		l.sleep(wait)
	}
}
