package experiments

import (
	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// resultsByDomain indexes the snapshot scan by domain name (cached).
func (e *Env) resultsByDomain(t int) map[string]*scanner.DomainResult {
	e.mu.Lock()
	if m, ok := e.byDom[t]; ok {
		e.mu.Unlock()
		return m
	}
	e.mu.Unlock()
	results := e.Scan(t)
	m := make(map[string]*scanner.DomainResult, len(results))
	for i := range results {
		m[results[i].Domain] = &results[i]
	}
	e.mu.Lock()
	e.byDom[t] = m
	e.mu.Unlock()
	return m
}

// classCount tallies, per snapshot, over domains of one policy-hosting
// class, the number satisfying pred and the class population.
func (e *Env) classCount(t int, class simnet.ManagementClass, byMX bool,
	pred func(*scanner.DomainResult) bool) (hits, total int) {
	byDom := e.resultsByDomain(t)
	for _, d := range e.World.Domains {
		if d.AdoptedAt > t {
			continue
		}
		c := d.PolicyClass
		if byMX {
			c = d.MXClass
		}
		if c != class {
			continue
		}
		r, ok := byDom[d.Name]
		if !ok {
			continue
		}
		total++
		if pred(r) {
			hits++
		}
	}
	return hits, total
}

// Figure5 reproduces the policy-server error breakdown: % of MTA-STS
// domains with misconfigured policy servers, by retrieval stage, split
// into self-managed and third-party panels.
func (e *Env) Figure5() (selfPanel, thirdPanel []dataset.Series) {
	stages := []mtasts.Stage{
		mtasts.StageDNS, mtasts.StageTCP, mtasts.StageTLS,
		mtasts.StageHTTP, mtasts.StageSyntax,
	}
	build := func(class simnet.ManagementClass) []dataset.Series {
		var out []dataset.Series
		for _, st := range stages {
			st := st
			out = append(out, componentSeries(st.String(), func(t int) float64 {
				hits, total := e.classCount(t, class, false, func(r *scanner.DomainResult) bool {
					return r.RecordPresent && !r.PolicyOK && r.PolicyStage == st
				})
				if total == 0 {
					return 0
				}
				return 100 * float64(hits) / float64(total)
			}))
		}
		return out
	}
	return build(simnet.ClassSelf), build(simnet.ClassThird)
}

// PolicyErrorRates returns the §4.3.3 headline comparison at the final
// snapshot: policy-server misconfiguration rates for self-managed and
// third-party domains.
func (e *Env) PolicyErrorRates() (selfRate, thirdRate float64) {
	t := simnet.Months - 1
	failed := func(r *scanner.DomainResult) bool { return r.RecordPresent && !r.PolicyOK }
	sh, st := e.classCount(t, simnet.ClassSelf, false, failed)
	th, tt := e.classCount(t, simnet.ClassThird, false, failed)
	if st > 0 {
		selfRate = float64(sh) / float64(st)
	}
	if tt > 0 {
		thirdRate = float64(th) / float64(tt)
	}
	return selfRate, thirdRate
}

// Figure6 reproduces the MX-certificate error panels: % of domains whose
// MX hosts present PKIX-invalid certificates, by problem kind, split by
// managing entity of the MXes.
func (e *Env) Figure6() (selfPanel, thirdPanel []dataset.Series) {
	problems := []struct {
		name string
		p    pki.Problem
	}{
		{"CN mismatch", pki.ProblemNameMismatch},
		{"Self-signed", pki.ProblemSelfSigned},
		{"Expired", pki.ProblemExpired},
	}
	build := func(class simnet.ManagementClass) []dataset.Series {
		var out []dataset.Series
		for _, pr := range problems {
			pr := pr
			out = append(out, componentSeries(pr.name, func(t int) float64 {
				hits, total := e.classCount(t, class, true, func(r *scanner.DomainResult) bool {
					for _, got := range r.MXProblems {
						if got == pr.p {
							return true
						}
					}
					return false
				})
				if total == 0 {
					return 0
				}
				return 100 * float64(hits) / float64(total)
			}))
		}
		return out
	}
	return build(simnet.ClassSelf), build(simnet.ClassThird)
}

// MXInvalidRates returns the §4.3.4 headline comparison at the final
// snapshot: share of domains with at least one PKIX-invalid MX, by class.
func (e *Env) MXInvalidRates() (selfRate, thirdRate float64) {
	t := simnet.Months - 1
	anyInvalid := func(r *scanner.DomainResult) bool {
		for _, p := range r.MXProblems {
			if !p.Valid() {
				return true
			}
		}
		return false
	}
	sh, st := e.classCount(t, simnet.ClassSelf, true, anyInvalid)
	th, tt := e.classCount(t, simnet.ClassThird, true, anyInvalid)
	if st > 0 {
		selfRate = float64(sh) / float64(st)
	}
	if tt > 0 {
		thirdRate = float64(th) / float64(tt)
	}
	return selfRate, thirdRate
}

// Figure7 reproduces the invalid-MX breakdown: % of MTA-STS domains with
// all MXes invalid, partially invalid, and the enforce-mode risk series.
func (e *Env) Figure7() []dataset.Series {
	pct := func(f func(scanner.Summary) int) func(t int) float64 {
		return func(t int) float64 {
			s := e.Summary(t)
			if s.WithRecord == 0 {
				return 0
			}
			return 100 * float64(f(s)) / float64(s.WithRecord)
		}
	}
	return []dataset.Series{
		componentSeries("All Invalid", pct(func(s scanner.Summary) int { return s.AllMXInvalid })),
		componentSeries("Partially Invalid", pct(func(s scanner.Summary) int { return s.PartiallyMXInvalid })),
		componentSeries("\"enforce\" mode", pct(func(s scanner.Summary) int { return s.EnforceCertRisk })),
	}
}

// Figure8 reproduces the mismatch taxonomy: % of MTA-STS domains whose mx
// patterns fail against their MX records, per mismatch kind, plus the
// enforce-mode series.
func (e *Env) Figure8() []dataset.Series {
	kinds := []inconsistency.Kind{
		inconsistency.KindDomain, inconsistency.Kind3LDPlus,
		inconsistency.KindTypo, inconsistency.KindTLD,
	}
	var out []dataset.Series
	for _, k := range kinds {
		k := k
		out = append(out, componentSeries(k.String(), func(t int) float64 {
			s := e.Summary(t)
			if s.WithRecord == 0 {
				return 0
			}
			return 100 * float64(s.MismatchKindCounts[k.String()]) / float64(s.WithRecord)
		}))
	}
	out = append(out, componentSeries("\"enforce\" mode", func(t int) float64 {
		s := e.Summary(t)
		if s.WithRecord == 0 {
			return 0
		}
		return 100 * float64(s.EnforceMismatch) / float64(s.WithRecord)
	}))
	return out
}

// Figure9 reproduces the outdated-policy analysis: per snapshot, among
// domains whose policy fully mismatches their current MX records, the
// share whose policy matches an MX set from an earlier DNS-scan snapshot.
func (e *Env) Figure9() dataset.Series {
	return componentSeries("% with outdated policy", func(t int) float64 {
		byDom := e.resultsByDomain(t)
		mismatched, explained := 0, 0
		for _, d := range e.World.Domains {
			if d.AdoptedAt > t {
				continue
			}
			r, ok := byDom[d.Name]
			if !ok || !r.PolicyOK || r.Mismatch.Kind != inconsistency.KindDomain {
				continue
			}
			mismatched++
			// Historical MX sets come from the long-running DNS scans
			// (since 2021), not just the component-scan window.
			var history [][]string
			for h := d.AdoptedAt; h < t; h++ {
				history = append(history, d.MXHostsAt(h))
			}
			if inconsistency.MatchesHistorical(r.Policy, history) >= 0 {
				explained++
			}
		}
		if mismatched == 0 {
			return 0
		}
		return 100 * float64(explained) / float64(mismatched)
	})
}

// Figure10 reproduces the same-vs-different provider comparison: among
// domains outsourcing both policy hosting and mail, % with mx/MX
// inconsistency, split by whether one provider manages both.
func (e *Env) Figure10() []dataset.Series {
	build := func(name string, wantSame bool) dataset.Series {
		return componentSeries(name, func(t int) float64 {
			byDom := e.resultsByDomain(t)
			hits, total := 0, 0
			for _, d := range e.World.Domains {
				if d.AdoptedAt > t || d.PolicyClass != simnet.ClassThird || d.MXClass != simnet.ClassThird {
					continue
				}
				same := d.PolicyProvider == "Tutanota" && d.MXProvider == "tutanota"
				if same != wantSame {
					continue
				}
				r, ok := byDom[d.Name]
				if !ok {
					continue
				}
				total++
				if r.PolicyOK && r.Mismatch.Kind != inconsistency.KindNone {
					hits++
				}
			}
			if total == 0 {
				return 0
			}
			return 100 * float64(hits) / float64(total)
		})
	}
	return []dataset.Series{
		build("same-entity", true),
		build("different-entity", false),
	}
}

// SameVsDifferentCounts returns the §4.5.2 headline counts at the final
// snapshot: inconsistent domains among same-provider and
// different-provider both-outsourced populations.
func (e *Env) SameVsDifferentCounts() (sameTotal, sameBad, diffTotal, diffBad int) {
	t := simnet.Months - 1
	byDom := e.resultsByDomain(t)
	for _, d := range e.World.Domains {
		if d.AdoptedAt > t || d.PolicyClass != simnet.ClassThird || d.MXClass != simnet.ClassThird {
			continue
		}
		r, ok := byDom[d.Name]
		if !ok {
			continue
		}
		bad := r.PolicyOK && r.Mismatch.Kind != inconsistency.KindNone
		if d.PolicyProvider == "Tutanota" && d.MXProvider == "tutanota" {
			sameTotal++
			if bad {
				sameBad++
			}
		} else {
			diffTotal++
			if bad {
				diffBad++
			}
		}
	}
	return
}
