// Robustness experiment: how well the scan pipeline's verdicts survive
// transient infrastructure failures. The paper's methodology (§4.1)
// re-scans unreachable domains before classifying them as broken; this
// experiment reproduces that requirement on a loopback substrate with a
// seeded fault injector, and checks two properties:
//
//   - classification robustness: with retries enabled, a fleet of healthy
//     MTA-STS deployments scanned through ~10% DNS loss, SERVFAIL/REFUSED
//     blips, truncation and mid-handshake connection resets yields ZERO
//     domains misclassified into a persistent error category;
//   - determinism: two runs with the same fault seed produce identical
//     per-domain verdicts and retry counts, so any failure reproduces.
//
// A third run with the same faults but retries disabled shows the
// counterfactual: the misclassification rate a single-attempt scanner
// would have reported.

package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

// RobustnessConfig parameterizes RunRobustness. The zero value is usable:
// every field has a default.
type RobustnessConfig struct {
	// Domains is the number of healthy MTA-STS deployments to provision
	// (default 12). Every domain is fully valid, so any error category in
	// a scan result is by construction a misclassification.
	Domains int
	// Plan is the fault plan for the faulted runs. A zero plan (no rates
	// set) is replaced by DefaultFaultPlan(Seed).
	Plan faults.Plan
	// Seed seeds DefaultFaultPlan when Plan is zero (default 1).
	Seed int64
	// MaxAttempts bounds attempts per network operation in the
	// retries-enabled runs (default 4 — strictly greater than the plan's
	// MaxConsecutive, so recovery is guaranteed for injected faults).
	MaxAttempts int
	// RetryBase is the first backoff delay (default 5ms; the substrate is
	// loopback, so long waits only slow the experiment down).
	RetryBase time.Duration
	// DNSTimeout bounds each DNS exchange (default 250ms — an injected
	// packet drop costs one timeout before the retry).
	DNSTimeout time.Duration
	// Obs, when non-nil, receives the metrics of every layer.
	Obs *obs.Registry
	// Pipelined adds a fifth run: the same fault plan and retries
	// through the staged pipeline backend. Unlike the Workers=1 runs it
	// is concurrent, so fingerprint determinism does not apply — the
	// check is purely that no healthy domain is misclassified.
	Pipelined bool
	// StageWorkers sizes the pipelined run's stage pools.
	StageWorkers scanner.StageWorkers
	// Dedup enables result sharing in the pipelined run.
	Dedup bool
}

func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Domains <= 0 {
		c.Domains = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if !c.Plan.Active() {
		c.Plan = DefaultFaultPlan(c.Seed)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.DNSTimeout <= 0 {
		c.DNSTimeout = 250 * time.Millisecond
	}
	return c
}

// DefaultFaultPlan is the blizzard the acceptance criterion names: ~10%
// DNS loss plus SERVFAIL/REFUSED blips, occasional truncation, and
// mid-handshake connection resets on both the policy host and the MXes.
func DefaultFaultPlan(seed int64) faults.Plan {
	return faults.Plan{
		Seed:        seed,
		DNSLoss:     0.10,
		DNSServFail: 0.05,
		DNSRefuse:   0.03,
		DNSTruncate: 0.05,
		ConnReset:   0.08,
		LatencyRate: 0.20,
		Latency:     2 * time.Millisecond,
		// Transient by construction: never more than 2 consecutive faults
		// per key, so MaxAttempts=4 always reaches a clean exchange.
		MaxConsecutive: 2,
	}
}

// RobustnessRun is one scan of the whole fleet under one condition.
type RobustnessRun struct {
	// Label names the condition ("baseline", "faults no-retry", ...).
	Label string
	// Summary is the aggregate over the run's results.
	Summary scanner.Summary
	// Misclassified lists domains (with reasons) that did not come back
	// fully healthy. The substrate is healthy, so for a robust scanner
	// this must be empty.
	Misclassified []string
	// Attempts/Retries/Recovered/GaveUp sum the per-domain retry
	// accounting over the fleet.
	Attempts, Retries, Recovered, GaveUp int64
	// FaultCounts is the injector's per-kind tally ("dns.drop",
	// "conn.reset", ...); nil for the baseline run.
	FaultCounts map[string]int64
	// Fingerprint canonically encodes every per-domain verdict and its
	// retry counts; two same-seed runs must produce equal fingerprints.
	Fingerprint string
}

// RobustnessReport is the full experiment outcome.
type RobustnessReport struct {
	// Plan is the fault plan the faulted runs used.
	Plan faults.Plan
	// Domains is the fleet size.
	Domains int
	// Baseline scanned with no faults installed.
	Baseline RobustnessRun
	// NoRetry scanned through the fault plan with single attempts — the
	// misclassification rate a retry-less scanner reports.
	NoRetry RobustnessRun
	// WithRetry holds two identically-seeded runs with retries enabled.
	WithRetry [2]RobustnessRun
	// Deterministic reports whether the two WithRetry fingerprints match.
	Deterministic bool
	// Pipelined, when RobustnessConfig.Pipelined was set, is the staged
	// pipeline run through the same fault plan with retries enabled.
	Pipelined *RobustnessRun
}

// Misclassified returns the union of misclassified domains across the
// retries-enabled runs.
func (r *RobustnessReport) Misclassified() []string {
	seen := make(map[string]bool)
	var out []string
	runs := []*RobustnessRun{&r.WithRetry[0], &r.WithRetry[1]}
	if r.Pipelined != nil {
		runs = append(runs, r.Pipelined)
	}
	for _, run := range runs {
		for _, d := range run.Misclassified {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Passed reports the acceptance criterion: a clean baseline, zero
// misclassifications with retries on, and cross-run determinism.
func (r *RobustnessReport) Passed() bool {
	return len(r.Baseline.Misclassified) == 0 &&
		len(r.Misclassified()) == 0 &&
		r.Deterministic
}

// Table renders the report for cmd/reproduce.
func (r *RobustnessReport) Table() *dataset.Table {
	t := &dataset.Table{
		Title:   fmt.Sprintf("Robustness: %d healthy domains through %s", r.Domains, r.Plan),
		Headers: []string{"run", "misclassified", "attempts", "retries", "recovered", "gave_up", "faults"},
	}
	row := func(run *RobustnessRun) {
		faultStr := "-"
		if run.FaultCounts != nil {
			faultStr = countsString(run.FaultCounts)
		}
		t.AddRow(run.Label, len(run.Misclassified), run.Attempts, run.Retries,
			run.Recovered, run.GaveUp, faultStr)
	}
	row(&r.Baseline)
	row(&r.NoRetry)
	row(&r.WithRetry[0])
	row(&r.WithRetry[1])
	if r.Pipelined != nil {
		row(r.Pipelined)
	}
	return t
}

func countsString(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// robustnessWorld is the loopback substrate: an authoritative DNS server,
// a multi-tenant policy host, and ONE shared SMTP server whose certificate
// lists every MX name — the scanner carries a single SMTP port, so all
// MXes resolve to the same listener.
type robustnessWorld struct {
	ca       *pki.CA
	dns      *dnsserver.Server
	zone     *dnszone.Zone
	pol      *policysrv.Server
	smtp     *smtpd.Server
	dnsAddr  string
	smtpPort int
	domains  []string
}

func buildRobustnessWorld(n int) (*robustnessWorld, error) {
	ca, err := pki.NewCA("Robustness CA", time.Now())
	if err != nil {
		return nil, err
	}
	w := &robustnessWorld{ca: ca, zone: dnszone.New("test")}

	w.dns = dnsserver.New(nil)
	w.dns.AddZone(w.zone)
	dnsAddr, err := w.dns.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.dnsAddr = dnsAddr.String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.dns.WaitReady(ctx); err != nil {
		return nil, errors.Join(err, w.Close())
	}

	w.pol = policysrv.New(ca, nil)
	if _, err := w.pol.Start("127.0.0.1:0"); err != nil {
		return nil, errors.Join(err, w.Close())
	}

	a := func(name string) dnsmsg.RR {
		return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}}
	}
	mxNames := make([]string, 0, n)
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("d%02d.test", i)
		mx := "mx." + domain
		w.domains = append(w.domains, domain)
		mxNames = append(mxNames, mx)
		w.zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.MXData{Preference: 10, Host: mx}})
		w.zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.NewTXT("v=STSv1; id=20260801;")})
		w.zone.MustAdd(a("mta-sts." + domain))
		w.zone.MustAdd(a(mx))
		w.pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: mtasts.Policy{
			Version: mtasts.Version, Mode: mtasts.ModeEnforce, MaxAge: 86400,
			MXPatterns: []string{mx},
		}})
	}

	// One listener serves every MX: the certificate carries all names.
	leaf, err := ca.Issue(pki.IssueOptions{Names: mxNames})
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	cert := leaf.TLSCertificate()
	w.smtp = smtpd.New(smtpd.Behavior{Hostname: "mx.shared.test", Certificate: &cert})
	smtpAddr, err := w.smtp.Start("127.0.0.1:0")
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	_, portStr, err := net.SplitHostPort(smtpAddr.String())
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	w.smtpPort, err = strconv.Atoi(portStr)
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	return w, nil
}

func (w *robustnessWorld) Close() error {
	var errs []error
	if w.smtp != nil {
		errs = append(errs, w.smtp.Close())
	}
	if w.pol != nil {
		errs = append(errs, w.pol.Close())
	}
	if w.dns != nil {
		errs = append(errs, w.dns.Close())
	}
	return errors.Join(errs...)
}

// setFaults installs (or, with nil, removes) one injector on all three
// substrate servers.
func (w *robustnessWorld) setFaults(inj *faults.Injector) {
	w.dns.SetFaults(inj)
	w.pol.SetFaults(inj)
	w.smtp.SetFaults(inj)
}

// run scans the whole fleet once under the given injector. For the
// sequential runs Workers is pinned to 1 so the order of network
// operations — and therefore the injector's per-key fault sequences —
// is identical across runs; pipelined=true instead exercises the staged
// concurrent backend, where only the classifications (not the
// interleaving-dependent retry counts) are expected to be stable.
func (w *robustnessWorld) run(label string, inj *faults.Injector, maxAttempts int, cfg RobustnessConfig, pipelined bool) RobustnessRun {
	w.setFaults(inj)
	defer w.setFaults(nil)

	dns := resolver.New(w.dnsAddr)
	dns.Timeout = cfg.DNSTimeout
	dns.MaxAttempts = maxAttempts
	dns.RetryBase = cfg.RetryBase
	dns.Obs = cfg.Obs
	live := &scanner.Live{
		DNS:         dns,
		Roots:       w.ca.Pool(),
		HTTPSPort:   w.pol.Port(),
		SMTPPort:    w.smtpPort,
		HeloName:    "robustness.test",
		Timeout:     5 * time.Second,
		Obs:         cfg.Obs,
		MaxAttempts: maxAttempts,
		RetryBase:   cfg.RetryBase,
	}
	runner := &scanner.Runner{Workers: 1, Scan: live, Obs: cfg.Obs}
	if pipelined {
		runner.Pipelined = true
		runner.StageWorkers = cfg.StageWorkers
		runner.Dedup = cfg.Dedup
	}
	results := runner.Run(context.Background(), w.domains)

	run := RobustnessRun{Label: label, Summary: scanner.Summarize(results)}
	var fp strings.Builder
	for i := range results {
		r := &results[i]
		if reason := misclassifyReason(r); reason != "" {
			run.Misclassified = append(run.Misclassified, r.Domain+": "+reason)
		}
		run.Attempts += r.Attempts
		run.Retries += r.Retries
		run.Recovered += r.RetryRecovered
		run.GaveUp += r.RetryGaveUp
		fmt.Fprintf(&fp, "%s cats=%v stage=%s mismatch=%s mx=%d invalid=%d attempts=%d retries=%d recovered=%d gaveup=%d\n",
			r.Domain, r.Categories(), r.PolicyStage.Key(), r.Mismatch.Kind,
			len(r.MXHosts), invalidMXProblems(r), r.Attempts, r.Retries,
			r.RetryRecovered, r.RetryGaveUp)
	}
	run.Fingerprint = fp.String()
	if inj != nil {
		run.FaultCounts = inj.Counts()
	}
	return run
}

// misclassifyReason reports why a result is not the fully-healthy verdict
// every substrate domain deserves, or "" when it is.
func misclassifyReason(r *scanner.DomainResult) string {
	switch {
	case r.Canceled:
		return "canceled"
	case r.MXLookupErr != nil:
		return fmt.Sprintf("mx lookup: %v", r.MXLookupErr)
	case !r.RecordPresent || !r.RecordValid:
		return fmt.Sprintf("record invalid: %v", r.RecordErr)
	case !r.PolicyOK:
		return "policy stage " + r.PolicyStage.Key()
	case len(r.MXHosts) != 1:
		return fmt.Sprintf("%d MX hosts", len(r.MXHosts))
	case len(r.MXNoSTARTTLS) > 0:
		return "MX reported no STARTTLS"
	case invalidMXProblems(r) > 0 || len(r.MXProblems) != 1:
		return fmt.Sprintf("MX problems: %v", r.MXProblems)
	case r.Misconfigured():
		return fmt.Sprintf("categories %v", r.Categories())
	}
	return ""
}

func invalidMXProblems(r *scanner.DomainResult) int {
	n := 0
	for _, p := range r.MXProblems {
		if !p.Valid() {
			n++
		}
	}
	return n
}

// RunRobustness provisions the substrate and executes the four runs:
// baseline (no faults), faulted without retries, and two identically
// seeded faulted runs with retries — plus, when cfg.Pipelined is set, a
// fifth run through the staged pipeline backend.
func RunRobustness(cfg RobustnessConfig) (*RobustnessReport, error) {
	cfg = cfg.withDefaults()
	w, err := buildRobustnessWorld(cfg.Domains)
	if err != nil {
		return nil, fmt.Errorf("robustness substrate: %w", err)
	}
	defer w.Close()

	rep := &RobustnessReport{Plan: cfg.Plan, Domains: cfg.Domains}
	rep.Baseline = w.run("baseline (no faults)", nil, cfg.MaxAttempts, cfg, false)
	rep.NoRetry = w.run("faults, no retries", faults.NewInjector(cfg.Plan), 1, cfg, false)
	rep.WithRetry[0] = w.run("faults + retries #1", faults.NewInjector(cfg.Plan), cfg.MaxAttempts, cfg, false)
	rep.WithRetry[1] = w.run("faults + retries #2", faults.NewInjector(cfg.Plan), cfg.MaxAttempts, cfg, false)
	rep.Deterministic = rep.WithRetry[0].Fingerprint == rep.WithRetry[1].Fingerprint
	if cfg.Pipelined {
		run := w.run("faults + retries, pipelined", faults.NewInjector(cfg.Plan), cfg.MaxAttempts, cfg, true)
		rep.Pipelined = &run
	}
	return rep, nil
}
