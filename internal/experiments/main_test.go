package experiments

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/leakcheck"
)

// TestMain arms the goroutine-leak harness: the experiment worlds spin
// up DNS, HTTPS, and SMTP servers per attack and must tear every one of
// them down.
func TestMain(m *testing.M) { leakcheck.Main(m) }
