package experiments

import (
	"fmt"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/sendertest"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/survey"
)

// Table2 reproduces the policy-hosting provider table: per Table 2
// provider, the CNAME pattern (for the canonical example domain a.com),
// the customer count in the final snapshot, and the opt-out behavior
// columns.
func (e *Env) Table2() *dataset.Table {
	t := &dataset.Table{
		Title: "Table 2: top policy hosting providers and opt-out behavior",
		Headers: []string{"provider", "CNAME pattern (a.com)", "# domains",
			"email hosting", "NXDOMAIN", "reissues cert", "policy update"},
	}
	last := simnet.Months - 1
	counts := make(map[string]int)
	for _, d := range e.World.Domains {
		if d.AdoptedAt <= last && d.PolicyClass == simnet.ClassThird {
			counts[d.PolicyProvider]++
		}
	}
	for _, p := range policysrv.Registry {
		update := "unchanged"
		switch p.OptOutUpdate {
		case policysrv.UpdateEmptyFile:
			update = "empty file"
		case policysrv.UpdateModeNone:
			update = "mode -> none"
		}
		t.AddRow(p.Name, p.CanonicalName("a.com"), counts[p.Name],
			yn(p.EmailHosting), yn(p.OptOutNXDomain), yn(p.OptOutReissueCert), update)
	}
	return t
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ProviderCustomerCounts returns the final-snapshot customer count per
// Table 2 provider (for shape assertions).
func (e *Env) ProviderCustomerCounts() map[string]int {
	last := simnet.Months - 1
	counts := make(map[string]int)
	for _, d := range e.World.Domains {
		if d.AdoptedAt <= last && d.PolicyClass == simnet.ClassThird {
			counts[d.PolicyProvider]++
		}
	}
	return counts
}

// SenderSide reproduces the §6.2 sender-validation statistics.
func (e *Env) SenderSide() *dataset.Table {
	st := sendertest.Aggregate(sendertest.NewPopulation())
	t := &dataset.Table{
		Title:   "§6.2: sender-side validation behavior",
		Headers: []string{"behavior", "senders", "percent"},
	}
	row := func(name string, n int) {
		t.AddRow(name, n, fmt.Sprintf("%.1f%%", st.Percent(n)))
	}
	t.AddRow("sender domains", st.Senders, "100%")
	row("support TLS", st.TLS)
	row("opportunistic TLS", st.Opportunistic)
	row("always require PKIX", st.AlwaysPKIX)
	row("validate MTA-STS", st.MTASTS)
	row("validate DANE", st.DANE)
	row("validate both", st.Both)
	row("prefer MTA-STS over DANE (bug)", st.PreferFlipped)
	return t
}

// Figure11 reproduces the survey demographics histogram.
func (e *Env) Figure11() *dataset.Table {
	ds := survey.NewPaperDataset()
	labels, total, deployed := ds.Figure11()
	t := &dataset.Table{
		Title:   "Figure 11: respondents by managed account count",
		Headers: []string{"# of email accounts", "total", "MTA-STS deployment"},
	}
	for i, l := range labels {
		t.AddRow(l, total[i], deployed[i])
	}
	return t
}

// SurveyFindings reproduces the §7.2 marginals.
func (e *Env) SurveyFindings() *dataset.Table {
	f := survey.NewPaperDataset().Tabulate()
	t := &dataset.Table{
		Title:   "§7.2: survey findings",
		Headers: []string{"metric", "count", "base", "percent"},
	}
	row := func(name string, n, base int) {
		t.AddRow(name, n, base, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(base)))
	}
	row("aware of MTA-STS", f.Familiar, f.FamiliarityAsked)
	row("deployed MTA-STS", f.Deployed, f.DeploymentAsked)
	row("motivation: prevent downgrade", f.MotivationDowngrade, 42)
	row("bottleneck: operational complexity", f.BottleneckComplexity, f.BottleneckAsked)
	row("bottleneck: DANE more secure", f.BottleneckDANE, f.BottleneckAsked)
	row("not deployed: use DANE instead", f.WhyNotDANE, f.WhyNotAsked)
	row("not deployed: too complicated", f.WhyNotComplex, f.WhyNotAsked)
	row("difficulty: policy updates", f.DifficultyUpdate, f.DifficultyAsked)
	row("never updated policy", f.UpdateNever, f.UpdateSeqAsked)
	row("update TXT record first", f.UpdateTXTFirst, f.UpdateSeqAsked)
	row("familiar with DANE", f.DANEFamiliar, f.DANEAsked)
	row("consider DANE superior", f.PreferDANECount, f.PreferenceAsked)
	return t
}

// Figure12 reproduces the TLSRPT adoption series: the top panel (% of
// domains with MX having TLSRPT) and bottom panel (% of MTA-STS domains
// having TLSRPT), per TLD.
func (e *Env) Figure12() (top, bottom []dataset.Series) {
	for _, tp := range simnet.TLDs {
		top = append(top, fullSeries("."+tp.TLD, e.World.TLSRPTPercentOfMX(tp.TLD)))
		bottom = append(bottom, fullSeries("."+tp.TLD, e.World.TLSRPTPercentOfMTASTS(tp.TLD)))
	}
	return top, bottom
}
