// Adversary experiment: the §6-style sender enforcement matrix. For every
// registered attack in internal/faults' adversary model, a loopback world
// (authoritative DNS, policy host, true MX, attacker MX) is provisioned
// and the attack is mounted on the wire path; then every sender behavior
// of the sendertest platform delivers through the REAL stack —
// mta.Outbound, mtasts.Validator, smtpclient — under each MTA-STS policy
// mode (none/testing/enforce), after an honest warm-up delivery that
// primes the TOFU policy cache. Each cell's live outcome (delivered or
// refused, TLS used, certificate verified, mechanism, errtax code,
// TLSRPT violation accounting) is asserted against the sendertest
// decision model, the canonical dual-validator column is asserted against
// the attack registry's Expect* labels, and two invariants are pinned:
//
//   - no-downgrade: under every attack, an MTA-STS-validating sender in
//     enforce mode never delivers in plaintext, with an unverified
//     certificate, or to a non-matching MX;
//   - testing-reports: in testing mode the mail always flows, but any
//     policy violation is recorded in the TLSRPT report rather than
//     counted as a success.
//
// The whole matrix runs twice under the same seed; the two outcome
// fingerprints must match, so any failure reproduces.

package experiments

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/mta"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/sendertest"
	"github.com/netsecurelab/mtasts/internal/smtpd"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// AttackMatrixConfig parameterizes RunAttackMatrix. The zero value is
// usable.
type AttackMatrixConfig struct {
	// Seed drives the adversary's spoofed material (record ids, TLSA
	// bytes). Default 1.
	Seed int64
	// Attacks restricts the run to the named attacks; empty means every
	// registered attack.
	Attacks []string
	// FetchTimeout bounds each policy fetch (default 300ms — the
	// slowloris attack costs exactly one such deadline per fetch).
	FetchTimeout time.Duration
}

func (c AttackMatrixConfig) withDefaults() AttackMatrixConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 300 * time.Millisecond
	}
	return c
}

// PolicyModes are the MTA-STS modes the matrix iterates, in order.
var PolicyModes = []string{"none", "testing", "enforce"}

// matrixBehavior is one sender column of the matrix.
type matrixBehavior struct {
	name string
	b    sendertest.Behavior
}

// MatrixBehaviors returns the sender behaviors the matrix exercises: the
// §6 sender classes, from the legacy plaintext sender to the compliant
// and bug-compatible dual validators.
func MatrixBehaviors() []sendertest.Behavior {
	out := make([]sendertest.Behavior, len(matrixBehaviors))
	for i, mb := range matrixBehaviors {
		b := mb.b
		b.Domain = mb.name
		out[i] = b
	}
	return out
}

var matrixBehaviors = []matrixBehavior{
	{"plaintext", sendertest.Behavior{}},
	{"opportunistic", sendertest.Behavior{SupportsTLS: true}},
	{"pkix-always", sendertest.Behavior{SupportsTLS: true, RequirePKIXAlways: true}},
	{"mta-sts", sendertest.Behavior{SupportsTLS: true, ValidatesMTASTS: true}},
	{"dane", sendertest.Behavior{SupportsTLS: true, ValidatesDANE: true}},
	{"dual", sendertest.Behavior{SupportsTLS: true, ValidatesMTASTS: true, ValidatesDANE: true}},
	{"dual-flipped", sendertest.Behavior{SupportsTLS: true, ValidatesMTASTS: true,
		ValidatesDANE: true, PrefersMTASTSOverDANE: true}},
}

// canonicalBehavior is the column checked against the attack registry's
// Expect* labels: the compliant dual validator.
const canonicalBehavior = "dual"

// AttackCell is one (attack, mode, behavior) cell of the matrix.
type AttackCell struct {
	Attack   string
	Mode     string
	Behavior string

	// Live outcome.
	Delivered    bool
	Refused      bool
	UsedTLS      bool
	CertVerified bool
	MXHost       string
	Mechanism    string
	// Code is the errtax code surfaced by the delivery error or, on
	// delivered cells, by the evaluation's record/policy errors.
	Code errtax.Code
	// ViolationRecorded reports whether the attacked delivery added a
	// TLSRPT failure entry.
	ViolationRecorded bool

	// Expectations from the sendertest model.
	Want          string
	WantCode      errtax.Code
	WantViolation bool

	// OK is true when the live outcome matches the model on every
	// asserted dimension; Problem explains the first mismatch otherwise.
	OK      bool
	Problem string
}

// Outcome returns the cell's live outcome label (the faults.Outcome*
// vocabulary).
func (c AttackCell) Outcome() string {
	switch {
	case c.Refused:
		return faults.OutcomeRefuse
	case c.Delivered && c.UsedTLS:
		return faults.OutcomeDeliverTLS
	case c.Delivered:
		return faults.OutcomeDeliverPlain
	}
	return "error"
}

// AttackMatrixReport is the full experiment outcome.
type AttackMatrixReport struct {
	Seed    int64
	Attacks []string
	Cells   []AttackCell
	// Mismatches lists cells whose live outcome disagrees with the model.
	Mismatches []string
	// Downgrades lists enforce-mode cells where an MTA-STS-validating
	// sender delivered in plaintext, with an unverified certificate, or
	// to a host other than the true MX. Must be empty.
	Downgrades []string
	// TestingHoldbacks lists testing-mode violations of the
	// always-deliver-but-report guarantee. Must be empty.
	TestingHoldbacks []string
	// RegistryMismatches lists canonical-sender cells that disagree with
	// the attack registry's Expect* labels. Must be empty.
	RegistryMismatches []string
	// Deterministic reports whether two same-seed runs produced
	// identical outcome fingerprints.
	Deterministic bool
}

// Passed reports the acceptance criterion: every cell matches the model,
// both invariants hold, the registry agrees, and the run is
// deterministic under its seed.
func (r *AttackMatrixReport) Passed() bool {
	return len(r.Mismatches) == 0 && len(r.Downgrades) == 0 &&
		len(r.TestingHoldbacks) == 0 && len(r.RegistryMismatches) == 0 &&
		r.Deterministic
}

// Table renders the matrix for cmd/reproduce: one row per attack × mode,
// one column per sender behavior carrying the live outcome label (with
// the errtax code when one surfaced).
func (r *AttackMatrixReport) Table() *dataset.Table {
	headers := []string{"attack", "mode"}
	for _, mb := range matrixBehaviors {
		headers = append(headers, mb.name)
	}
	t := &dataset.Table{
		Title:   fmt.Sprintf("Sender enforcement matrix under attack (seed %d, deterministic=%v)", r.Seed, r.Deterministic),
		Headers: headers,
	}
	byKey := make(map[string]AttackCell, len(r.Cells))
	for _, c := range r.Cells {
		byKey[c.Attack+"|"+c.Mode+"|"+c.Behavior] = c
	}
	for _, att := range r.Attacks {
		for _, mode := range PolicyModes {
			row := []any{att, mode}
			for _, mb := range matrixBehaviors {
				c, ok := byKey[att+"|"+mode+"|"+mb.name]
				if !ok {
					row = append(row, "-")
					continue
				}
				cell := c.Outcome()
				if c.Code != "" {
					cell += " [" + string(c.Code) + "]"
				}
				if !c.OK {
					cell += " !!"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	return t
}

// adversaryWorld is one attack's loopback substrate: DNS, policy host,
// the true MX, and a plaintext-only attacker MX.
type adversaryWorld struct {
	ca       *pki.CA
	zone     *dnszone.Zone
	dns      *dnsserver.Server
	pol      *policysrv.Server
	mxSrv    *smtpd.Server
	evilSrv  *smtpd.Server
	dnsAddr  string
	domain   string
	mxHost   string
	evilHost string
	evilCert *tls.Certificate
	addrs    map[string]string
}

func buildAdversaryWorld(att faults.Attack) (*adversaryWorld, error) {
	ca, err := pki.NewCA("Adversary Lab CA", time.Now())
	if err != nil {
		return nil, err
	}
	w := &adversaryWorld{
		ca: ca, zone: dnszone.New("test"),
		domain: "victim.test", mxHost: "mx.victim.test", evilHost: "mx.evil.test",
		addrs: make(map[string]string),
	}
	w.dns = dnsserver.New(nil)
	w.dns.AddZone(w.zone)
	dnsAddr, err := w.dns.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.dnsAddr = dnsAddr.String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.dns.WaitReady(ctx); err != nil {
		return nil, errors.Join(err, w.Close())
	}

	w.pol = policysrv.New(ca, nil)
	if _, err := w.pol.Start("127.0.0.1:0"); err != nil {
		return nil, errors.Join(err, w.Close())
	}

	a := func(name string) dnsmsg.RR {
		return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}}
	}
	w.zone.MustAdd(dnsmsg.RR{Name: w.domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.MXData{Preference: 10, Host: w.mxHost}})
	w.zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + w.domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
		TTL: 60, Data: dnsmsg.NewTXT("v=STSv1; id=20260801;")})
	w.zone.MustAdd(a("mta-sts." + w.domain))
	w.zone.MustAdd(a(w.mxHost))
	w.zone.MustAdd(a(w.evilHost))

	// The true MX: CA-issued certificate, honest STARTTLS.
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{w.mxHost}})
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	cert := leaf.TLSCertificate()
	w.mxSrv = smtpd.New(smtpd.Behavior{Hostname: w.mxHost, Certificate: &cert, AcceptMail: true})
	mxAddr, err := w.mxSrv.Start("127.0.0.1:0")
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	w.addrs[w.mxHost] = mxAddr.String()
	if att.NeedsTLSA {
		// Honest DANE deployment for the true MX; the adversary rewrites
		// this RRset on the wire.
		w.zone.MustAdd(dane.NewEE3(leaf.Cert).RR(w.mxHost, 300))
	}

	// The attacker's MX: plaintext-only, so mail rerouted to it by the
	// mx_impostor attack is read off the wire.
	evilLeaf, err := ca.Issue(pki.IssueOptions{Names: []string{w.evilHost}, SelfSigned: true})
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	evilServerCert := evilLeaf.TLSCertificate()
	w.evilSrv = smtpd.New(smtpd.Behavior{Hostname: w.evilHost, Certificate: &evilServerCert,
		DisableSTARTTLS: true, AcceptMail: true})
	evilAddr, err := w.evilSrv.Start("127.0.0.1:0")
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	w.addrs[w.evilHost] = evilAddr.String()

	// The attacker certificate an on-path MX MITM presents: self-signed
	// for the true MX name (mx_wrong_cert).
	mitmLeaf, err := ca.Issue(pki.IssueOptions{Names: []string{w.mxHost}, SelfSigned: true})
	if err != nil {
		return nil, errors.Join(err, w.Close())
	}
	mitmCert := mitmLeaf.TLSCertificate()
	w.evilCert = &mitmCert
	return w, nil
}

func (w *adversaryWorld) Close() error {
	var errs []error
	if w.mxSrv != nil {
		errs = append(errs, w.mxSrv.Close())
	}
	if w.evilSrv != nil {
		errs = append(errs, w.evilSrv.Close())
	}
	if w.pol != nil {
		errs = append(errs, w.pol.Close())
	}
	if w.dns != nil {
		errs = append(errs, w.dns.Close())
	}
	return errors.Join(errs...)
}

// setTenant (re-)registers the victim's policy in the given mode and
// returns the honest policy body the adversary's rollback needs.
func (w *adversaryWorld) setTenant(mode string) mtasts.Policy {
	p := mtasts.Policy{Version: mtasts.Version, Mode: mtasts.Mode(mode),
		MaxAge: 86400, MXPatterns: []string{w.mxHost}}
	w.pol.AddTenant(&policysrv.Tenant{Domain: w.domain, Policy: p})
	return p
}

// setAdversary installs (nil removes) the adversary on every simnet
// server the attacked cells traverse.
func (w *adversaryWorld) setAdversary(adv *faults.Adversary) {
	w.dns.SetAdversary(adv)
	w.pol.SetAdversary(adv)
	w.mxSrv.SetAdversary(adv)
}

// outboundFor wires one sender behavior to the world with a FRESH DNS
// client (no resolver cache — adversary DNS rewrites must reach the
// sender) and a fresh TOFU policy cache.
func (w *adversaryWorld) outboundFor(b sendertest.Behavior, report *tlsrpt.Report, fetchTimeout time.Duration) *mta.Outbound {
	dnsClient := &resolver.Client{ServerAddr: w.dnsAddr, Timeout: 500 * time.Millisecond}
	o := &mta.Outbound{
		DNS:          dnsClient,
		Roots:        w.ca.Pool(),
		HeloName:     "matrix.sender.lab",
		AddrOverride: func(mx string) string { return w.addrs[mx] },
		Timeout:      3 * time.Second,
		Report:       report,
	}
	if !b.SupportsTLS {
		// The legacy plaintext sender has no TLS stack and therefore no
		// policy engine either.
		o.TLSDisabled = true
		return o
	}
	if b.ValidatesMTASTS {
		// Worlds without an MTA-STS deployment have no policy host; the
		// validator still runs (and finds no record) on port 0.
		polPort := 0
		if w.pol != nil {
			polPort = w.pol.Port()
		}
		o.Validator = &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, false)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				RootCAs:     w.ca.Pool(),
				Port:        polPort,
				Timeout:     fetchTimeout,
				MaxAttempts: 1,
			},
			Cache: mtasts.NewPolicyCache(16),
		}
	}
	o.DANEEnabled = b.ValidatesDANE
	o.RequirePKIX = b.RequirePKIXAlways
	o.MTASTSOverDANE = b.PrefersMTASTSOverDANE
	return o
}

// baseConfig is the honest recipient as the sendertest model sees it for
// one attack world and policy mode.
func baseConfig(att faults.Attack, mode string) sendertest.RecipientConfig {
	return sendertest.RecipientConfig{
		Name: "victim", MTASTS: true, MTASTSMode: mode, MXMatchesPolicy: true,
		OffersSTARTTLS: true, CertPKIXValid: true,
		DANE: att.NeedsTLSA, TLSAMatches: att.NeedsTLSA,
	}
}

// attackedConfig transforms the honest recipient into what the sender
// effectively faces under the attack. Policy-layer attacks that the TOFU
// cache absorbs leave the config unchanged; the rollback to mode:none
// changes the effective mode, and SMTP/DNS attacks change the transport
// facts.
func attackedConfig(att faults.Attack, rc sendertest.RecipientConfig) sendertest.RecipientConfig {
	switch att.Name {
	case "policy_rollback_none":
		rc.MTASTSMode = "none"
	case "starttls_strip":
		rc.OffersSTARTTLS = false
	case "mx_wrong_cert":
		rc.CertPKIXValid = false
	case "mx_impostor":
		rc.MXMatchesPolicy = false
		rc.CertPKIXValid = false
		rc.OffersSTARTTLS = false
	case "tlsa_mismatch":
		rc.TLSAMatches = false
	}
	return rc
}

// policyVisiblyViolated reports whether delivering to this recipient
// under an MTA-STS policy violates it (the condition testing mode must
// report).
func policyVisiblyViolated(rc sendertest.RecipientConfig) bool {
	return !(rc.OffersSTARTTLS && rc.CertPKIXValid && rc.MXMatchesPolicy)
}

// expectedCode derives the errtax code a cell must surface: refusals
// carry the code of the gate that fired, and CodeOnDeliver attacks leave
// their code in the evaluation of any sender whose MTA-STS engine ran.
func expectedCode(att faults.Attack, b sendertest.Behavior, model sendertest.Outcome, rc sendertest.RecipientConfig) errtax.Code {
	if model.Refused {
		switch model.Validated {
		case sendertest.MechDANE:
			if !rc.OffersSTARTTLS {
				return errtax.CodeNoSTARTTLS
			}
			return errtax.CodeTLSANoMatch
		case sendertest.MechMTASTS:
			// The validator refuses on MX mismatch before connecting;
			// transport gates fire afterwards.
			if !rc.MXMatchesPolicy {
				return errtax.CodeInconsistency
			}
			if !rc.OffersSTARTTLS {
				return errtax.CodeNoSTARTTLS
			}
			return errtax.CodeSelfSigned // the lab's attacker certs are self-signed
		case sendertest.MechPKIX:
			if !rc.OffersSTARTTLS {
				return errtax.CodeNoSTARTTLS
			}
			return errtax.CodeSelfSigned
		}
		return ""
	}
	if att.CodeOnDeliver && b.SupportsTLS && b.ValidatesMTASTS && model.Validated != sendertest.MechDANE {
		return att.Code
	}
	return ""
}

func failureCount(rep *tlsrpt.Report) int64 {
	var n int64
	for i := range rep.Policies {
		n += rep.Policies[i].Summary.TotalFailureSessionCount
	}
	return n
}

// cellCode extracts the errtax code a live cell surfaced: the delivery
// error first, then the evaluation's policy and record errors.
func cellCode(err error, ev mtasts.Evaluation) errtax.Code {
	for _, e := range []error{err, ev.PolicyErr, ev.RecordErr} {
		if e == nil {
			continue
		}
		if code, ok := errtax.CodeOf(e); ok {
			return code
		}
	}
	return ""
}

// runCell executes one (attack, mode, behavior) cell: an honest warm-up
// delivery that primes the sender's TOFU cache, then the attacked
// delivery through the live stack.
func (w *adversaryWorld) runCell(att faults.Attack, mode string, mb matrixBehavior, adv *faults.Adversary, fetchTimeout time.Duration) AttackCell {
	cell := AttackCell{Attack: att.Name, Mode: mode, Behavior: mb.name}
	base := baseConfig(att, mode)
	rc := attackedConfig(att, base)
	model := mb.b.Deliver(rc)
	cell.Want = modelLabel(model)
	cell.WantCode = expectedCode(att, mb.b, model, rc)
	cell.WantViolation = model.Refused ||
		(model.Delivered && model.Validated == sendertest.MechMTASTS &&
			mode == "testing" && policyVisiblyViolated(rc))

	start := time.Now()
	report := tlsrpt.NewReport("Adversary Lab", "mailto:sec@lab.test",
		att.Name+"-"+mode+"-"+mb.name, start, start.Add(time.Hour))
	o := w.outboundFor(mb.b, report, fetchTimeout)
	ctx := context.Background()
	from, to := "a@sender.lab", []string{"b@" + w.domain}

	// Warm-up: honest world. Every behavior must deliver here; STS
	// validators cache the current-mode policy (TOFU).
	w.setAdversary(nil)
	if out, err := o.Send(ctx, from, to, []byte("warmup\r\n")); err != nil || !out.Delivered {
		cell.Problem = fmt.Sprintf("warm-up delivery failed: %v", err)
		return cell
	}
	preFailures := failureCount(report)

	// The attacked delivery.
	w.setAdversary(adv)
	out, err := o.Send(ctx, from, to, []byte("attacked\r\n"))
	w.setAdversary(nil)

	cell.Delivered = err == nil && out.Delivered
	cell.Refused = err != nil && errors.Is(err, mta.ErrPolicyRefused)
	cell.UsedTLS = out.TLS
	cell.CertVerified = out.CertVerified
	cell.MXHost = out.MXHost
	if cell.Delivered {
		cell.Mechanism = out.Mechanism.String()
	} else {
		cell.Mechanism = "-"
	}
	cell.Code = cellCode(err, out.Evaluation)
	cell.ViolationRecorded = failureCount(report)-preFailures > 0

	if err != nil && !cell.Refused {
		cell.Problem = fmt.Sprintf("unexpected delivery error: %v", err)
		return cell
	}
	cell.OK, cell.Problem = cell.check(model)
	return cell
}

// modelLabel maps a model outcome onto the faults.Outcome* vocabulary.
func modelLabel(m sendertest.Outcome) string {
	switch {
	case m.Refused:
		return faults.OutcomeRefuse
	case m.UsedTLS:
		return faults.OutcomeDeliverTLS
	}
	return faults.OutcomeDeliverPlain
}

// check compares the live cell with the model on every asserted
// dimension.
func (c AttackCell) check(model sendertest.Outcome) (bool, string) {
	if got := c.Outcome(); got != c.Want {
		return false, fmt.Sprintf("outcome %s, model says %s", got, c.Want)
	}
	if model.Delivered {
		if want := mechLabel(model.Validated); c.Mechanism != want {
			return false, fmt.Sprintf("mechanism %s, model says %s", c.Mechanism, want)
		}
	}
	if c.Code != c.WantCode {
		return false, fmt.Sprintf("code %q, want %q", c.Code, c.WantCode)
	}
	if c.ViolationRecorded != c.WantViolation {
		return false, fmt.Sprintf("violation recorded %v, want %v", c.ViolationRecorded, c.WantViolation)
	}
	return true, ""
}

// mechLabel maps a sendertest mechanism onto mta.Mechanism.String()
// labels — the two enums must agree on the live path.
func mechLabel(m sendertest.Mechanism) string {
	switch m {
	case sendertest.MechOpportunistic:
		return "opportunistic"
	case sendertest.MechPKIX:
		return "pkix"
	case sendertest.MechMTASTS:
		return "mta-sts"
	case sendertest.MechDANE:
		return "dane"
	}
	return "none"
}

// runMatrixOnce executes the full matrix for one seed.
func runMatrixOnce(cfg AttackMatrixConfig, names []string) ([]AttackCell, error) {
	var cells []AttackCell
	for _, name := range names {
		att, ok := faults.AttackByName(name)
		if !ok {
			return nil, fmt.Errorf("adversary: unknown attack %q", name)
		}
		w, err := buildAdversaryWorld(att)
		if err != nil {
			return nil, fmt.Errorf("adversary substrate for %s: %w", name, err)
		}
		for _, mode := range PolicyModes {
			policy := w.setTenant(mode)
			adv := faults.NewAdversary(faults.Scenario{
				Attack: att, Seed: cfg.Seed, Domain: w.domain, MXHost: w.mxHost,
				EvilMXHost: w.evilHost, EvilCert: w.evilCert,
				PolicyBody: policy.String(),
			})
			for _, mb := range matrixBehaviors {
				cells = append(cells, w.runCell(att, mode, mb, adv, cfg.FetchTimeout))
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// fingerprint canonically encodes every cell outcome; same-seed runs
// must produce equal fingerprints.
func matrixFingerprint(cells []AttackCell) string {
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%s|%s|%s|%s|mech=%s|mx=%s|code=%s|cert=%v|violation=%v|ok=%v\n",
			c.Attack, c.Mode, c.Behavior, c.Outcome(), c.Mechanism, c.MXHost,
			c.Code, c.CertVerified, c.ViolationRecorded, c.OK)
	}
	return b.String()
}

// RunAttackMatrix provisions one world per attack, mounts the attack,
// and drives every behavior × mode cell through the live sender stack —
// twice, to pin same-seed determinism.
func RunAttackMatrix(cfg AttackMatrixConfig) (*AttackMatrixReport, error) {
	cfg = cfg.withDefaults()
	names := cfg.Attacks
	if len(names) == 0 {
		names = faults.AttackNames()
	}
	first, err := runMatrixOnce(cfg, names)
	if err != nil {
		return nil, err
	}
	second, err := runMatrixOnce(cfg, names)
	if err != nil {
		return nil, err
	}

	rep := &AttackMatrixReport{Seed: cfg.Seed, Attacks: names, Cells: first}
	rep.Deterministic = matrixFingerprint(first) == matrixFingerprint(second)
	validates := make(map[string]bool, len(matrixBehaviors))
	for _, mb := range matrixBehaviors {
		validates[mb.name] = mb.b.ValidatesMTASTS
	}
	for _, c := range first {
		id := fmt.Sprintf("%s/%s/%s", c.Attack, c.Mode, c.Behavior)
		if !c.OK {
			rep.Mismatches = append(rep.Mismatches, id+": "+c.Problem)
		}
		if c.Mode == "enforce" && validates[c.Behavior] && c.Delivered {
			if !c.UsedTLS || !c.CertVerified || c.MXHost != "mx.victim.test" {
				rep.Downgrades = append(rep.Downgrades, fmt.Sprintf(
					"%s: delivered tls=%v certverified=%v mx=%s", id, c.UsedTLS, c.CertVerified, c.MXHost))
			}
		}
		if c.Mode == "testing" && c.Want != faults.OutcomeRefuse && validates[c.Behavior] {
			if !c.Delivered {
				rep.TestingHoldbacks = append(rep.TestingHoldbacks, id+": testing mode withheld mail")
			} else if c.WantViolation && !c.ViolationRecorded {
				rep.TestingHoldbacks = append(rep.TestingHoldbacks, id+": violation not reported")
			}
		}
		if c.Behavior == canonicalBehavior {
			att, _ := faults.AttackByName(c.Attack)
			if want := att.Expect(c.Mode); c.Outcome() != want {
				rep.RegistryMismatches = append(rep.RegistryMismatches, fmt.Sprintf(
					"%s/%s: canonical sender %s, registry expects %s", c.Attack, c.Mode, c.Outcome(), want))
			}
		}
	}
	return rep, nil
}
