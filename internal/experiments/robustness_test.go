package experiments

import (
	"strings"
	"testing"
)

// The PR's acceptance criterion: a seeded fault plan with ~10% DNS loss
// plus SERVFAIL blips run through scanner.Runner yields zero domains
// misclassified into persistent error categories when retries are
// enabled, and reproduces identically across two runs with the same seed.
func TestRobustnessRetriesAbsorbSeededFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-substrate fault-injection run")
	}
	rep, err := RunRobustness(RobustnessConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if n := len(rep.Baseline.Misclassified); n != 0 {
		t.Fatalf("baseline (no faults) misclassified %d domains: %v",
			n, rep.Baseline.Misclassified)
	}
	for i, run := range rep.WithRetry {
		if len(run.Misclassified) != 0 {
			t.Errorf("retries-enabled run #%d misclassified %d/%d domains:\n  %s",
				i+1, len(run.Misclassified), rep.Domains,
				strings.Join(run.Misclassified, "\n  "))
		}
		if run.Retries == 0 {
			t.Errorf("run #%d recorded no retries — the fault plan injected nothing", i+1)
		}
		if run.Recovered == 0 {
			t.Errorf("run #%d recovered no operations — faults were never absorbed", i+1)
		}
	}
	if !rep.Deterministic {
		t.Errorf("same-seed runs diverged:\nrun1:\n%s\nrun2:\n%s",
			rep.WithRetry[0].Fingerprint, rep.WithRetry[1].Fingerprint)
	}
	if rep.WithRetry[0].Summary.Total != rep.Domains {
		t.Errorf("run scanned %d domains, fleet has %d",
			rep.WithRetry[0].Summary.Total, rep.Domains)
	}

	// The counterfactual that motivates the retry layer: the same faults
	// without retries push healthy domains into error categories.
	if len(rep.NoRetry.Misclassified) == 0 {
		t.Error("no-retry run misclassified nothing; the plan is too weak to exercise the retry layer")
	}
	if !rep.Passed() {
		t.Error("report.Passed() = false after all component checks passed")
	}
}

// The pipelined backend must absorb the same seeded faults the flat
// runs do: with MaxAttempts strictly above the plan's MaxConsecutive,
// recovery is guaranteed regardless of stage interleaving, so every
// domain in the healthy fleet must come back fully clean — byte-for-byte
// the same (all-healthy) classifications the flat retry runs produce.
// Fingerprint determinism is not asserted for this run: it is
// concurrent, so retry-trace ordering is interleaving-sensitive.
func TestRobustnessPipelinedMatchesFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("full-substrate fault-injection run")
	}
	rep, err := RunRobustness(RobustnessConfig{
		Seed:      1,
		Pipelined: true,
		Dedup:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := rep.Pipelined
	if run == nil {
		t.Fatal("Pipelined run missing from report")
	}
	if len(run.Misclassified) != 0 {
		t.Errorf("pipelined run misclassified %d/%d domains:\n  %s",
			len(run.Misclassified), rep.Domains,
			strings.Join(run.Misclassified, "\n  "))
	}
	if run.Summary.Total != rep.Domains {
		t.Errorf("pipelined run scanned %d domains, fleet has %d",
			run.Summary.Total, rep.Domains)
	}
	if run.Retries == 0 {
		t.Error("pipelined run recorded no retries — the fault plan injected nothing")
	}
	if run.Recovered == 0 {
		t.Error("pipelined run recovered no operations — faults were never absorbed")
	}
	// Same aggregate verdicts as the flat retry run: an all-healthy fleet
	// means both summaries report full health, not merely similar health.
	flat := rep.WithRetry[0].Summary
	if run.Summary.WithRecord != flat.WithRecord ||
		run.Summary.Misconfigured != flat.Misconfigured ||
		run.Summary.DeliveryFailures != flat.DeliveryFailures {
		t.Errorf("pipelined summary diverged from flat:\n  flat: %+v\n  pipe: %+v",
			flat, run.Summary)
	}
	if !rep.Passed() {
		t.Error("report.Passed() = false with a clean pipelined run")
	}
}

// A fresh injector per run means the faulted runs see the same fault
// sequence; different seeds must actually change the injected pattern.
func TestRobustnessSeedMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("full-substrate fault-injection run")
	}
	a, err := RunRobustness(RobustnessConfig{Seed: 2, Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRobustness(RobustnessConfig{Seed: 3, Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Deterministic || !b.Deterministic {
		t.Fatal("same-seed runs diverged within a report")
	}
	// Retry traces are part of the fingerprint, so distinct fault seeds
	// should leave distinct traces. (Verdicts stay clean in both.)
	if a.WithRetry[0].Fingerprint == b.WithRetry[0].Fingerprint &&
		countsString(a.WithRetry[0].FaultCounts) == countsString(b.WithRetry[0].FaultCounts) {
		t.Error("seeds 2 and 3 produced identical fault traces")
	}
}
