package experiments

import (
	"context"
	"testing"

	"github.com/netsecurelab/mtasts/internal/store"
)

func TestRunLongitudinal(t *testing.T) {
	rep, err := RunLongitudinal(context.Background(), LongitudinalConfig{
		World: testEnv.World,
		Weeks: 3,
		Store: store.NewMem(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Summaries) != 3 || len(rep.Diffs) != 2 {
		t.Fatalf("got %d summaries / %d diffs, want 3 / 2", len(rep.Summaries), len(rep.Diffs))
	}
	for w, s := range rep.Summaries {
		if s.Week != w || s.Domains == 0 {
			t.Fatalf("summary %d = %+v, want week %d with domains", w, s, w)
		}
	}
	// Adoption only grows in the synthetic world's component-scan era.
	for i, d := range rep.Diffs {
		if d.NewDomains < d.OldDomains || d.Adopted == 0 {
			t.Fatalf("diff %d = %+v, want growing adoption", i, d)
		}
		if d.OldDomains != rep.Summaries[i].Domains || d.NewDomains != rep.Summaries[i+1].Domains {
			t.Fatalf("diff %d totals %d/%d disagree with summaries %d/%d",
				i, d.OldDomains, d.NewDomains, rep.Summaries[i].Domains, rep.Summaries[i+1].Domains)
		}
	}
	trend, churn := rep.TrendTable(), rep.ChurnTable()
	if len(trend.Rows) != 3 || len(churn.Rows) != 2 {
		t.Fatalf("tables have %d/%d rows, want 3/2", len(trend.Rows), len(churn.Rows))
	}
	if _, err := RunLongitudinal(context.Background(), LongitudinalConfig{World: testEnv.World, Weeks: 1}); err == nil {
		t.Fatal("Weeks=1 accepted; a longitudinal run needs a diff")
	}
}
