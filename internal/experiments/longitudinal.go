package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

// WeekSnapshot maps campaign week w onto a simnet snapshot index. The
// synthetic world advances in monthly snapshots and component scans
// exist from ComponentScanFirstIndex on (§3), so week w of a campaign
// replays snapshot ComponentScanFirstIndex+w, clamped to the study end.
func WeekSnapshot(w int) int {
	t := simnet.ComponentScanFirstIndex + w
	if t > simnet.Months-1 {
		t = simnet.Months - 1
	}
	return t
}

// SnapshotSource builds a campaign domain source and matching artifact
// scanner for one simnet snapshot: the sorted adopter list plus a
// replayable view of what a scanner would have observed that week.
func SnapshotSource(w *simnet.World, t int) (campaign.DomainSource, scanner.Scanner) {
	var (
		names []string
		arts  []scanner.Artifacts
	)
	for _, d := range w.Domains {
		if a, ok := w.ArtifactsAt(d, t); ok {
			names = append(names, d.Name)
			arts = append(arts, a)
		}
	}
	sort.Strings(names)
	return campaign.SliceSource(names), scanner.NewArtifactScanner(arts, simnet.SnapshotTime(t), 0)
}

// LongitudinalConfig parameterizes the longitudinal experiment.
type LongitudinalConfig struct {
	// World is the synthetic ecosystem to sweep.
	World *simnet.World
	// Weeks is how many consecutive weekly sweeps to run (minimum 2 for
	// a diff to exist).
	Weeks int
	// Store persists the campaign; nil runs in memory.
	Store store.Store
	// ID names the campaign in the store ("longitudinal" if empty).
	ID string
	// ShardSize, Workers tune the engine (engine/runner defaults if 0).
	ShardSize int
	Workers   int
	// Obs/Events flow through to the engine.
	Obs    *obs.Registry
	Events *obs.EventSink
}

// LongitudinalReport is the experiment outcome: one summary per stored
// week plus the week-over-week diffs between consecutive weeks.
type LongitudinalReport struct {
	Summaries []campaign.WeekSummary
	Diffs     []campaign.Diff
}

// RunLongitudinal runs a multi-week campaign over the synthetic world —
// the paper's §3 weekly-sweep methodology in miniature — and reads
// every reported number back from the store, never from in-memory scan
// results.
func RunLongitudinal(ctx context.Context, cfg LongitudinalConfig) (*LongitudinalReport, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("longitudinal: nil World")
	}
	if cfg.Weeks < 2 {
		return nil, fmt.Errorf("longitudinal: need at least 2 weeks, got %d", cfg.Weeks)
	}
	s := cfg.Store
	if s == nil {
		s = store.NewMem()
	}
	id := cfg.ID
	if id == "" {
		id = "longitudinal"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	rep := &LongitudinalReport{}
	for w := 0; w < cfg.Weeks; w++ {
		src, scan := SnapshotSource(cfg.World, WeekSnapshot(w))
		eng := &campaign.Engine{
			Store:     s,
			Runner:    &scanner.Runner{Workers: workers, Scan: scan, Obs: cfg.Obs},
			ID:        id,
			ShardSize: cfg.ShardSize,
			Obs:       cfg.Obs,
			Events:    cfg.Events,
		}
		if err := eng.RunWeek(ctx, w, src); err != nil {
			return nil, fmt.Errorf("longitudinal week %d: %w", w, err)
		}
		sum, err := campaign.Aggregate(s, id, w)
		if err != nil {
			return nil, err
		}
		rep.Summaries = append(rep.Summaries, sum)
		if w > 0 {
			d, err := campaign.ComputeDiff(s, id, w-1, w, cfg.Obs)
			if err != nil {
				return nil, err
			}
			rep.Diffs = append(rep.Diffs, d)
		}
	}
	return rep, nil
}

// TrendTable renders the per-week deployment and health trend.
func (r *LongitudinalReport) TrendTable() *dataset.Table {
	t := &dataset.Table{
		Title: "Longitudinal campaign: weekly trend (from stored snapshots)",
		Headers: []string{"week", "domains", "policy ok", "enforce", "testing",
			"misconfig", "misconfig %", "delivery fail"},
	}
	for _, s := range r.Summaries {
		pct := 0.0
		if s.Domains > 0 {
			pct = 100 * float64(s.Misconfigured) / float64(s.Domains)
		}
		t.AddRow(s.Week, s.Domains, s.PolicyOK, s.Enforce, s.Testing,
			s.Misconfigured, fmt.Sprintf("%.1f%%", pct), s.DeliveryFailure)
	}
	return t
}

// ChurnTable renders the week-over-week churn from the stored diffs.
func (r *LongitudinalReport) ChurnTable() *dataset.Table {
	t := &dataset.Table{
		Title: "Longitudinal campaign: week-over-week churn (campaign.Diff)",
		Headers: []string{"weeks", "adopted", "removed", "changed", "unchanged",
			"newly misconfig", "newly healthy"},
	}
	for _, d := range r.Diffs {
		t.AddRow(fmt.Sprintf("%d->%d", d.WeekOld, d.WeekNew), d.Adopted, d.Removed,
			d.Changed, d.Unchanged, d.NewlyMisconfigured, d.NewlyHealthy)
	}
	return t
}
