package experiments

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mta"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/sendertest"
	"github.com/netsecurelab/mtasts/internal/smtpd"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// buildRecipientWorld provisions a loopback world realizing one
// sendertest.RecipientConfig exactly: STARTTLS support, certificate
// validity, TLSA records (matching or not), and MTA-STS record + policy
// with patterns that do or do not cover the MX.
func buildRecipientWorld(t *testing.T, rc sendertest.RecipientConfig) *adversaryWorld {
	t.Helper()
	ca, err := pki.NewCA("Cross-Product CA", time.Now())
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	w := &adversaryWorld{
		ca: ca, zone: dnszone.New("test"),
		domain: "victim.test", mxHost: "mx.victim.test",
		addrs: make(map[string]string),
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("world close: %v", err)
		}
	})
	w.dns = dnsserver.New(nil)
	w.dns.AddZone(w.zone)
	dnsAddr, err := w.dns.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("dns start: %v", err)
	}
	w.dnsAddr = dnsAddr.String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.dns.WaitReady(ctx); err != nil {
		t.Fatalf("dns ready: %v", err)
	}

	a := func(name string) dnsmsg.RR {
		return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}}
	}
	w.zone.MustAdd(dnsmsg.RR{Name: w.domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.MXData{Preference: 10, Host: w.mxHost}})
	w.zone.MustAdd(a(w.mxHost))

	// MX certificate: CA-issued when the config claims PKIX validity,
	// self-signed otherwise.
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{w.mxHost}, SelfSigned: !rc.CertPKIXValid})
	if err != nil {
		t.Fatalf("issue MX cert: %v", err)
	}
	cert := leaf.TLSCertificate()
	w.mxSrv = smtpd.New(smtpd.Behavior{Hostname: w.mxHost, Certificate: &cert,
		DisableSTARTTLS: !rc.OffersSTARTTLS, AcceptMail: true})
	mxAddr, err := w.mxSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("smtpd start: %v", err)
	}
	w.addrs[w.mxHost] = mxAddr.String()

	if rc.DANE {
		tlsaLeaf := leaf
		if !rc.TLSAMatches {
			other, err := ca.Issue(pki.IssueOptions{Names: []string{w.mxHost}})
			if err != nil {
				t.Fatalf("issue TLSA decoy cert: %v", err)
			}
			tlsaLeaf = other
		}
		w.zone.MustAdd(dane.NewEE3(tlsaLeaf.Cert).RR(w.mxHost, 300))
	}

	if rc.MTASTS {
		w.pol = policysrv.New(ca, nil)
		if _, err := w.pol.Start("127.0.0.1:0"); err != nil {
			t.Fatalf("policysrv start: %v", err)
		}
		w.zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + w.domain, Type: dnsmsg.TypeTXT,
			Class: dnsmsg.ClassIN, TTL: 60, Data: dnsmsg.NewTXT("v=STSv1; id=20260801;")})
		w.zone.MustAdd(a("mta-sts." + w.domain))
		patterns := []string{w.mxHost}
		if !rc.MXMatchesPolicy {
			patterns = []string{"mx.other.test"}
		}
		w.pol.AddTenant(&policysrv.Tenant{Domain: w.domain, Policy: mtasts.Policy{
			Version: mtasts.Version, Mode: mtasts.Mode(rc.MTASTSMode),
			MaxAge: 86400, MXPatterns: patterns,
		}})
	}
	return w
}

// allBehaviors enumerates every combination of the five Behavior flags.
func allBehaviors() []sendertest.Behavior {
	var out []sendertest.Behavior
	for mask := 0; mask < 32; mask++ {
		out = append(out, sendertest.Behavior{
			Domain:                fmt.Sprintf("combo%02d", mask),
			SupportsTLS:           mask&1 != 0,
			ValidatesMTASTS:       mask&2 != 0,
			ValidatesDANE:         mask&4 != 0,
			PrefersMTASTSOverDANE: mask&8 != 0,
			RequirePKIXAlways:     mask&16 != 0,
		})
	}
	return out
}

// TestSenderRecipientCrossProduct drives every Behavior flag combination
// against every RecipientConfig in the platform set through the REAL
// delivery path and asserts the sendertest model's Outcome cell by cell.
// This is the drift guard: the modeled §6 decision matrix and the live
// mta.Outbound engine must agree everywhere.
func TestSenderRecipientCrossProduct(t *testing.T) {
	behaviors := allBehaviors()
	for _, rc := range sendertest.PlatformConfigs() {
		rc := rc
		t.Run(rc.Name, func(t *testing.T) {
			w := buildRecipientWorld(t, rc)
			for _, b := range behaviors {
				model := b.Deliver(rc)
				start := time.Now()
				report := tlsrpt.NewReport("Cross-Product Lab", "mailto:sec@lab.test",
					rc.Name+"-"+b.Domain, start, start.Add(time.Hour))
				o := w.outboundFor(b, report, 300*time.Millisecond)
				out, err := o.Send(context.Background(),
					"a@sender.lab", []string{"b@" + w.domain}, []byte("probe\r\n"))

				id := fmt.Sprintf("%s vs %s (tls=%v sts=%v dane=%v flip=%v pkix=%v)",
					b.Domain, rc.Name, b.SupportsTLS, b.ValidatesMTASTS, b.ValidatesDANE,
					b.PrefersMTASTSOverDANE, b.RequirePKIXAlways)
				if model.Refused {
					if err == nil {
						t.Errorf("%s: delivered, model says refuse (mech %s)", id, model.Validated)
						continue
					}
					if !errors.Is(err, mta.ErrPolicyRefused) {
						t.Errorf("%s: refusal not ErrPolicyRefused: %v", id, err)
					}
					continue
				}
				if err != nil || !out.Delivered {
					t.Errorf("%s: model says deliver, got err=%v", id, err)
					continue
				}
				if out.TLS != model.UsedTLS {
					t.Errorf("%s: TLS=%v, model says %v", id, out.TLS, model.UsedTLS)
				}
				if got, want := out.Mechanism.String(), mechLabel(model.Validated); got != want {
					t.Errorf("%s: mechanism %s, model says %s", id, got, want)
				}
			}
		})
	}
}
