// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic ecosystem: each exported method is one
// experiment, returning the same rows/series the paper reports (see the
// experiment index in DESIGN.md). cmd/reproduce renders them all and
// bench_test.go exposes one benchmark per experiment.
package experiments

import (
	"sync"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// Env is a reproduction environment: a generated world plus cached
// snapshot scans.
type Env struct {
	World *simnet.World

	mu    sync.Mutex
	scans map[int][]scanner.DomainResult
	sums  map[int]scanner.Summary
	byDom map[int]map[string]*scanner.DomainResult
}

// NewEnv generates a world and prepares the scan cache. Scale 1.0
// reproduces paper-scale populations; tests use smaller scales.
func NewEnv(cfg simnet.Config) *Env {
	return &Env{
		World: simnet.Generate(cfg),
		scans: make(map[int][]scanner.DomainResult),
		sums:  make(map[int]scanner.Summary),
		byDom: make(map[int]map[string]*scanner.DomainResult),
	}
}

// Scan returns the (cached) offline scan of snapshot t.
func (e *Env) Scan(t int) []scanner.DomainResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.scans[t]; ok {
		return r
	}
	r := e.World.ScanSnapshot(t)
	e.scans[t] = r
	return r
}

// Summary returns the (cached) aggregate of snapshot t.
func (e *Env) Summary(t int) scanner.Summary {
	e.mu.Lock()
	if s, ok := e.sums[t]; ok {
		e.mu.Unlock()
		return s
	}
	e.mu.Unlock()
	r := e.Scan(t)
	s := scanner.Summarize(r)
	e.mu.Lock()
	e.sums[t] = s
	e.mu.Unlock()
	return s
}

// ComponentSnapshots returns the snapshot indexes of the component-scan
// period (2023-11 through 2024-09, the x-axes of Figures 4–8 and 10).
func ComponentSnapshots() []int {
	var out []int
	for t := simnet.ComponentScanFirstIndex; t < simnet.Months; t++ {
		out = append(out, t)
	}
	return out
}

// monthLabel labels snapshot t like the paper's axes.
func monthLabel(t int) string {
	return dataset.MonthLabel(simnet.SnapshotTime(t))
}

// componentSeries builds a labeled series over the component-scan window.
func componentSeries(name string, f func(t int) float64) dataset.Series {
	snaps := ComponentSnapshots()
	s := dataset.Series{Name: name}
	for _, t := range snaps {
		s.Points = append(s.Points, dataset.Point{Label: monthLabel(t), Value: f(t)})
	}
	return s
}

// fullSeries builds a labeled series over the whole study.
func fullSeries(name string, values []float64) dataset.Series {
	s := dataset.Series{Name: name}
	for t, v := range values {
		s.Points = append(s.Points, dataset.Point{Label: monthLabel(t), Value: v})
	}
	return s
}
