package experiments

import (
	"fmt"
	"io"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// RunAll renders every table and figure to w and returns the shape-check
// rows for EXPERIMENTS.md.
func (e *Env) RunAll(w io.Writer) []report.ComparisonRow {
	var rows []report.ComparisonRow
	chart := func(title, ylabel string, series ...dataset.Series) {
		c := report.Chart{Title: title, YLabel: ylabel, Height: 10, Series: series}
		c.Write(w)
		fmt.Fprintln(w)
	}
	table := func(t *dataset.Table) {
		report.WriteTable(w, t)
		fmt.Fprintln(w)
	}

	// Table 1 + Figure 2/3: deployment.
	table(e.Table1())
	chart("Figure 2: MTA-STS deployment over time", "% of domains with MTA-STS records", e.Figure2()...)
	chart("Figure 3: adoption vs Tranco rank", "% of domains", e.Figure3())

	// Figure 4 and the headline §4.2 numbers.
	chart("Figure 4: misconfigured MTA-STS domains by category", "% of MTA-STS domains", e.Figure4()...)
	withRecord, mis, fails, rate := e.MisconfiguredTotals()
	fmt.Fprintf(w, "Final snapshot: %d MTA-STS domains, %d (%.1f%%) misconfigured, %d delivery failures\n\n",
		withRecord, mis, 100*rate, fails)
	rows = append(rows,
		cmpRow("§4.2 misconfigured share", "29.6%", fmt.Sprintf("%.1f%%", 100*rate),
			rate > 0.24 && rate < 0.35),
		cmpRow("§4.2 delivery failures", "~640 (scaled)", fmt.Sprint(fails),
			floatNear(float64(fails), 640*scaleOf(e), 0.5)),
	)

	table(e.RecordErrorBreakdown())
	table(e.ErrorTaxonomy())

	// Figure 5 and the self-vs-third comparison.
	selfPanel, thirdPanel := e.Figure5()
	chart("Figure 5 (top): self-managed policy server errors", "% of self-managed domains", selfPanel...)
	chart("Figure 5 (bottom): third-party policy server errors", "% of third-party domains", thirdPanel...)
	selfRate, thirdRate := e.PolicyErrorRates()
	rows = append(rows, cmpRow("§4.3.3 policy errors self vs third", "37.8% vs 4.9%",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*selfRate, 100*thirdRate),
		selfRate > 4*thirdRate && selfRate > 0.3 && thirdRate < 0.09))

	// Figure 6.
	mxSelf, mxThird := e.Figure6()
	chart("Figure 6 (top): self-managed MX cert errors", "% of domains", mxSelf...)
	chart("Figure 6 (bottom): third-party MX cert errors", "% of domains", mxThird...)
	sr, tr := e.MXInvalidRates()
	rows = append(rows, cmpRow("§4.3.4 invalid MX certs self vs third", "4.4% vs 1.0%",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*sr, 100*tr), sr > 2.5*tr && sr < 0.08))

	// Figures 7–10.
	chart("Figure 7: domains with invalid MX hosts", "% of MTA-STS domains", e.Figure7()...)
	chart("Figure 8: mx pattern / MX record mismatches", "% of MTA-STS domains", e.Figure8()...)
	f9 := e.Figure9()
	chart("Figure 9: mismatches explained by historical MX records", "% of mismatched domains", f9)
	if n := len(f9.Points); n > 1 {
		first, last := f9.Points[0].Value, f9.Points[n-1].Value
		rows = append(rows, cmpRow("Fig 9 outdated-policy share (end)", "63%",
			fmt.Sprintf("%.0f%%", last), last > 45 && last <= 80 && last > first))
	}
	f10 := e.Figure10()
	chart("Figure 10: inconsistency by provider arrangement", "% of domains", f10...)
	sameTotal, sameBad, diffTotal, diffBad := e.SameVsDifferentCounts()
	fmt.Fprintf(w, "Final snapshot: same-provider %d/%d inconsistent, different-provider %d/%d\n\n",
		sameBad, sameTotal, diffBad, diffTotal)
	rows = append(rows, cmpRow("§4.5 same vs different provider", "1 vs 640 domains",
		fmt.Sprintf("%d vs %d", sameBad, diffBad),
		diffBad > 20*maxi(sameBad, 1) || (sameBad <= 1 && diffBad > 0)))

	// Table 2.
	table(e.Table2())

	// Sender side, survey, TLSRPT.
	table(e.SenderSide())
	table(e.Figure11())
	table(e.SurveyFindings())
	top, bottom := e.Figure12()
	chart("Figure 12 (top): TLSRPT adoption among MX domains", "% of domains", top...)
	chart("Figure 12 (bottom): TLSRPT among MTA-STS domains", "% of MTA-STS domains", bottom...)

	// Disclosure.
	table(e.Disclosure())

	report.WriteComparison(w, "Shape checks vs paper", rows)
	return rows
}

func cmpRow(metric, paper, measured string, holds bool) report.ComparisonRow {
	return report.ComparisonRow{Metric: metric, Paper: paper, Measured: measured, Holds: holds}
}

func scaleOf(e *Env) float64 {
	s := e.World.Cfg.Scale
	if s <= 0 {
		return 1
	}
	return s
}

func floatNear(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DefaultScale is the scale cmd/reproduce uses by default: full paper
// scale.
const DefaultScale = 1.0

// Quick returns an Env at a reduced scale for fast iteration.
func Quick(seed int64) *Env {
	return NewEnv(simnet.Config{Seed: seed, Scale: 0.05})
}
