package experiments

import (
	"io"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/classify"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// testEnv is a reduced-scale world shared by the tests in this package.
var testEnv = NewEnv(simnet.Config{Seed: 11, Scale: 0.05})

func TestTable1Shape(t *testing.T) {
	tbl := testEnv.Table1()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// .com must dominate in absolute numbers; percentages stay ~0.07-0.13%.
	if tbl.Rows[0][0] != ".com" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
	for _, row := range tbl.Rows {
		pct := row[3]
		if !strings.HasSuffix(pct, "%") {
			t.Errorf("percent cell = %q", pct)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	series := testEnv.Figure2()
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != simnet.Months {
			t.Fatalf("%s: points = %d", s.Name, len(s.Points))
		}
		if s.Points[simnet.Months-1].Value <= s.Points[0].Value {
			t.Errorf("%s: not growing", s.Name)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	s := testEnv.Figure3()
	if len(s.Points) != simnet.TrancoBins {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Value <= s.Points[len(s.Points)-1].Value {
		t.Error("rank correlation inverted")
	}
}

func TestFigure4Shape(t *testing.T) {
	series := testEnv.Figure4()
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Policy retrieval must dominate every snapshot (70–85% of errors).
	var policy, record *[]float64
	for i := range series {
		vals := make([]float64, len(series[i].Points))
		for j, p := range series[i].Points {
			vals[j] = p.Value
		}
		switch series[i].Name {
		case "Policy Retrieval":
			policy = &vals
		case "DNS Records":
			record = &vals
		}
	}
	if policy == nil || record == nil {
		t.Fatal("missing series")
	}
	for i := range *policy {
		if (*policy)[i] <= (*record)[i] {
			t.Errorf("snapshot %d: policy (%f) <= record (%f)", i, (*policy)[i], (*record)[i])
		}
	}
}

func TestHeadlineNumbers(t *testing.T) {
	withRecord, mis, fails, rate := testEnv.MisconfiguredTotals()
	if withRecord == 0 || mis == 0 {
		t.Fatal("empty scan")
	}
	if rate < 0.22 || rate > 0.38 {
		t.Errorf("misconfigured rate = %.3f", rate)
	}
	if fails == 0 {
		t.Error("no delivery failures found")
	}
}

func TestPolicyErrorRatesShape(t *testing.T) {
	selfRate, thirdRate := testEnv.PolicyErrorRates()
	if selfRate <= thirdRate*3 {
		t.Errorf("self %.3f vs third %.3f: wrong winner", selfRate, thirdRate)
	}
}

func TestMXInvalidRatesShape(t *testing.T) {
	selfRate, thirdRate := testEnv.MXInvalidRates()
	if selfRate <= thirdRate {
		t.Errorf("self %.3f vs third %.3f: wrong winner", selfRate, thirdRate)
	}
	if selfRate > 0.10 {
		t.Errorf("self MX invalid rate = %.3f, want ~0.044", selfRate)
	}
}

func TestFigure5PorkbunSpike(t *testing.T) {
	selfPanel, _ := testEnv.Figure5()
	// The TLS series of the self-managed panel must jump at the Porkbun
	// month (index within component window).
	var tls []float64
	for _, s := range selfPanel {
		if s.Name == "TLS" {
			for _, p := range s.Points {
				tls = append(tls, p.Value)
			}
		}
	}
	if tls == nil {
		t.Fatal("no TLS series")
	}
	porkIdx := simnet.PorkbunStartMonth - simnet.ComponentScanFirstIndex
	if porkIdx <= 0 || porkIdx >= len(tls) {
		t.Fatalf("porkbun index = %d", porkIdx)
	}
	if tls[porkIdx] <= tls[porkIdx-1]+3 {
		t.Errorf("no Porkbun spike: %.1f -> %.1f", tls[porkIdx-1], tls[porkIdx])
	}
}

func TestFigure8LucidgrowSpike(t *testing.T) {
	series := testEnv.Figure8()
	var domain []float64
	for _, s := range series {
		if s.Name == "Domain" {
			for _, p := range s.Points {
				domain = append(domain, p.Value)
			}
		}
	}
	idx := simnet.LucidgrowMonth - simnet.ComponentScanFirstIndex
	if idx <= 0 || idx >= len(domain)-1 {
		t.Fatalf("lucidgrow index = %d", idx)
	}
	if domain[idx] <= domain[idx-1] || domain[idx] <= domain[idx+1] {
		t.Errorf("no transient lucidgrow spike: %v around idx %d", domain[idx-1:idx+2], idx)
	}
}

func TestFigure9RisingTrend(t *testing.T) {
	s := testEnv.Figure9()
	first, last := s.Points[0].Value, s.Points[len(s.Points)-1].Value
	if last <= first {
		t.Errorf("outdated-policy share not rising: %.1f -> %.1f", first, last)
	}
	if last < 40 || last > 85 {
		t.Errorf("final outdated share = %.1f, want ~63", last)
	}
}

func TestFigure10SameProviderNearZero(t *testing.T) {
	sameTotal, sameBad, diffTotal, diffBad := testEnv.SameVsDifferentCounts()
	if sameTotal == 0 || diffTotal == 0 {
		t.Fatalf("populations: same=%d diff=%d", sameTotal, diffTotal)
	}
	sameRate := float64(sameBad) / float64(sameTotal)
	diffRate := float64(diffBad) / float64(diffTotal)
	if sameRate > 0.01 {
		t.Errorf("same-provider inconsistency = %.4f, want ~0", sameRate)
	}
	if diffRate < 0.01 || diffRate < 3*sameRate {
		t.Errorf("diff-provider inconsistency = %.4f vs same %.4f", diffRate, sameRate)
	}
}

func TestTable2ProviderOrder(t *testing.T) {
	tbl := testEnv.Table2()
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	counts := testEnv.ProviderCustomerCounts()
	// Tutanota and DMARCReport are the two biggest providers.
	if counts["Tutanota"] < counts["PowerDMARC"] || counts["DMARCReport"] < counts["PowerDMARC"] {
		t.Errorf("provider counts = %v", counts)
	}
}

func TestRecordErrorBreakdownMix(t *testing.T) {
	tbl := testEnv.RecordErrorBreakdown()
	// Invalid id must be the largest bucket (61% in the paper).
	var badID, noID int
	for _, row := range tbl.Rows {
		switch row[0] {
		case "invalid id":
			badID = atoiSafe(row[1])
		case "no id field":
			noID = atoiSafe(row[1])
		}
	}
	if badID <= noID {
		t.Errorf("invalid id (%d) should dominate no id (%d)", badID, noID)
	}
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestDisclosureTable(t *testing.T) {
	tbl := testEnv.Disclosure()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRunAllProducesOutput(t *testing.T) {
	var sb strings.Builder
	rows := testEnv.RunAll(&sb)
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Table 2", "§6.2", "Figure 11", "§7.2", "Figure 12", "§4.7",
		"Shape checks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
	if len(rows) < 5 {
		t.Errorf("comparison rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("shape check failed: %s (paper %s, measured %s)", r.Metric, r.Paper, r.Measured)
		}
	}
}

// TestClassifierAgreesWithGroundTruth validates the §4.3.1 heuristics: the
// classify package's attribution of materialized DNS views must agree with
// the simnet ground truth for the clear-cut classes.
func TestClassifierAgreesWithGroundTruth(t *testing.T) {
	w := testEnv.World
	last := simnet.Months - 1
	views := w.Views(last)
	c := classify.NewClassifier(views, nil)

	agree, total := 0, 0
	for _, d := range w.Domains {
		if d.AdoptedAt > last || d.MXClass == simnet.ClassUnclassifiable {
			continue
		}
		got := c.Classify(w.ViewAt(d, last))
		want := classify.SelfManaged
		if d.MXClass == simnet.ClassThird {
			want = classify.ThirdParty
		}
		total++
		if got.MX == want {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no classified domains")
	}
	rate := float64(agree) / float64(total)
	if rate < 0.90 {
		t.Errorf("MX classification agreement = %.3f (%d/%d)", rate, agree, total)
	}
}

// TestRunAllFullScale is the acceptance test of the reproduction: at the
// paper's population scale, every shape check against the paper must hold.
func TestRunAllFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world")
	}
	env := NewEnv(simnet.Config{Seed: 1, Scale: 1.0})
	rows := env.RunAll(io.Discard)
	if len(rows) < 6 {
		t.Fatalf("comparison rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("shape check failed at paper scale: %s (paper %s, measured %s)",
				r.Metric, r.Paper, r.Measured)
		}
	}
	// The population itself must match Table 1's total.
	if n := env.World.AdoptedCount(simnet.Months-1, ""); n != simnet.TotalAdoptersEnd {
		t.Errorf("final population = %d, want %d", n, simnet.TotalAdoptersEnd)
	}
}
