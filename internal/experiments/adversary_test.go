package experiments

import (
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/sendertest"
)

// TestAttackMatrix runs the full enforcement matrix against the live
// sender stack and pins the headline invariants: no enforce-mode
// downgrade under any attack, testing mode always delivers but reports,
// every cell matches the sendertest model, and the canonical sender
// matches the attack registry.
func TestAttackMatrix(t *testing.T) {
	rep, err := RunAttackMatrix(AttackMatrixConfig{Seed: 7})
	if err != nil {
		t.Fatalf("RunAttackMatrix: %v", err)
	}

	wantCells := len(faults.Attacks()) * len(PolicyModes) * len(matrixBehaviors)
	if len(rep.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if !c.OK {
			t.Errorf("cell %s/%s/%s: %s (live %s, model %s)",
				c.Attack, c.Mode, c.Behavior, c.Problem, c.Outcome(), c.Want)
		}
	}
	for _, d := range rep.Downgrades {
		t.Errorf("no-downgrade invariant violated: %s", d)
	}
	for _, h := range rep.TestingHoldbacks {
		t.Errorf("testing-reports invariant violated: %s", h)
	}
	for _, m := range rep.RegistryMismatches {
		t.Errorf("attack registry drift: %s", m)
	}
	if !rep.Deterministic {
		t.Error("same-seed runs diverged")
	}
	if !rep.Passed() {
		t.Error("report.Passed() = false")
	}

	// The matrix must include at least one true refusal and one
	// testing-mode reported violation, or the invariants are vacuous.
	var refusals, reported int
	for _, c := range rep.Cells {
		if c.Refused {
			refusals++
		}
		if c.Mode == "testing" && c.Delivered && c.ViolationRecorded {
			reported++
		}
	}
	if refusals == 0 {
		t.Error("matrix produced no refusals — enforcement never fired")
	}
	if reported == 0 {
		t.Error("matrix produced no testing-mode violation reports")
	}

	tbl := rep.Table()
	if len(tbl.Rows) != len(faults.Attacks())*len(PolicyModes) {
		t.Errorf("table rows = %d, want %d", len(tbl.Rows), len(faults.Attacks())*len(PolicyModes))
	}
}

// TestAttackMatrixEnforceNeverPlaintext re-derives the no-downgrade
// invariant directly from the cells, independent of the report's own
// bookkeeping: under EVERY attack, enforce mode with a validating
// sender either refuses or delivers verified TLS to the true MX.
func TestAttackMatrixEnforceNeverPlaintext(t *testing.T) {
	rep, err := RunAttackMatrix(AttackMatrixConfig{Seed: 11})
	if err != nil {
		t.Fatalf("RunAttackMatrix: %v", err)
	}
	validating := map[string]bool{"mta-sts": true, "dual": true, "dual-flipped": true}
	for _, c := range rep.Cells {
		if c.Mode != "enforce" || !validating[c.Behavior] {
			continue
		}
		if c.Problem != "" && !c.Delivered && !c.Refused {
			t.Errorf("%s/%s: cell errored: %s", c.Attack, c.Behavior, c.Problem)
			continue
		}
		if !c.Delivered {
			if !c.Refused {
				t.Errorf("%s/%s: not delivered but not a policy refusal", c.Attack, c.Behavior)
			}
			continue
		}
		if !c.UsedTLS || !c.CertVerified {
			t.Errorf("%s/%s: enforce delivered with tls=%v certverified=%v",
				c.Attack, c.Behavior, c.UsedTLS, c.CertVerified)
		}
		if c.MXHost != "mx.victim.test" {
			t.Errorf("%s/%s: enforce delivered to %s", c.Attack, c.Behavior, c.MXHost)
		}
	}
}

// TestAttackMatrixSubset exercises the Attacks filter and rejects
// unknown names.
func TestAttackMatrixSubset(t *testing.T) {
	rep, err := RunAttackMatrix(AttackMatrixConfig{Seed: 3, Attacks: []string{"starttls_strip"}})
	if err != nil {
		t.Fatalf("RunAttackMatrix: %v", err)
	}
	if want := len(PolicyModes) * len(matrixBehaviors); len(rep.Cells) != want {
		t.Errorf("cells = %d, want %d", len(rep.Cells), want)
	}
	if !rep.Passed() {
		t.Errorf("subset run failed: %v %v %v %v", rep.Mismatches, rep.Downgrades,
			rep.TestingHoldbacks, rep.RegistryMismatches)
	}
	if _, err := RunAttackMatrix(AttackMatrixConfig{Attacks: []string{"nonesuch"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown attack") {
		t.Errorf("unknown attack error = %v", err)
	}
}

// TestMatrixBehaviorsCoverRegistry pins that the canonical behavior is
// present and that every behavior name is unique.
func TestMatrixBehaviorsCoverRegistry(t *testing.T) {
	seen := make(map[string]bool)
	var hasCanonical bool
	for _, mb := range matrixBehaviors {
		if seen[mb.name] {
			t.Errorf("duplicate behavior %q", mb.name)
		}
		seen[mb.name] = true
		if mb.name == canonicalBehavior {
			hasCanonical = true
			want := sendertest.Behavior{SupportsTLS: true, ValidatesMTASTS: true, ValidatesDANE: true}
			if mb.b != want {
				t.Errorf("canonical behavior = %+v", mb.b)
			}
		}
	}
	if !hasCanonical {
		t.Fatalf("canonical behavior %q missing", canonicalBehavior)
	}
	if got := MatrixBehaviors(); len(got) != len(matrixBehaviors) {
		t.Errorf("MatrixBehaviors() = %d entries", len(got))
	}
}
