package experiments

import (
	"errors"
	"fmt"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// Table1 reproduces the dataset overview: per TLD, the number of domains
// with MX records and the number (and share) publishing MTA-STS records at
// the final snapshot.
func (e *Env) Table1() *dataset.Table {
	t := &dataset.Table{
		Title:   "Table 1: dataset overview (final snapshot)",
		Headers: []string{"TLD", "domains with MX", "with MTA-STS", "percent"},
	}
	last := simnet.Months - 1
	scale := e.World.Cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for _, tp := range simnet.TLDs {
		mx := simnet.DomainsWithMX(tp, last)
		adopters := float64(e.World.AdoptedCount(last, tp.TLD)) / scale
		t.AddRow("."+tp.TLD, int(mx), int(adopters), fmt.Sprintf("%.2f%%", 100*adopters/mx))
	}
	return t
}

// Figure2 reproduces the deployment time series: % of domains with MX
// records publishing MTA-STS, per TLD, per month.
func (e *Env) Figure2() []dataset.Series {
	var out []dataset.Series
	for _, tp := range simnet.TLDs {
		out = append(out, fullSeries("."+tp.TLD, e.World.DeploymentPercent(tp.TLD)))
	}
	return out
}

// Figure3 reproduces the popularity correlation: % of Tranco-ranked
// domains with MTA-STS per 10K-rank bin.
func (e *Env) Figure3() dataset.Series {
	vals := e.World.TrancoAdoptionPercent()
	s := dataset.Series{Name: "Domains w/ MTA-STS records"}
	for i, v := range vals {
		s.Points = append(s.Points, dataset.Point{Label: fmt.Sprintf("%dk", i*10), Value: v})
	}
	return s
}

// Figure4 reproduces the misconfiguration overview: % of MTA-STS domains
// with errors in each of the four categories, per component snapshot.
func (e *Env) Figure4() []dataset.Series {
	cats := []scanner.Category{
		scanner.CategoryDNSRecord, scanner.CategoryPolicy,
		scanner.CategoryMXCert, scanner.CategoryInconsistency,
	}
	var out []dataset.Series
	for _, c := range cats {
		c := c
		out = append(out, componentSeries(c.String(), func(t int) float64 {
			s := e.Summary(t)
			if s.WithRecord == 0 {
				return 0
			}
			return 100 * float64(s.ByCategory[c]) / float64(s.WithRecord)
		}))
	}
	return out
}

// MisconfiguredTotals returns the headline §4.2 numbers at the final
// snapshot: MTA-STS domains, misconfigured count and rate, and delivery
// failures.
func (e *Env) MisconfiguredTotals() (withRecord, misconfigured, deliveryFailures int, rate float64) {
	s := e.Summary(simnet.Months - 1)
	rate = 0
	if s.WithRecord > 0 {
		rate = float64(s.Misconfigured) / float64(s.WithRecord)
	}
	return s.WithRecord, s.Misconfigured, s.DeliveryFailures, rate
}

// RecordErrorBreakdown reproduces the §4.3.2 record-error taxonomy at the
// final snapshot.
func (e *Env) RecordErrorBreakdown() *dataset.Table {
	t := &dataset.Table{
		Title:   "§4.3.2: invalid MTA-STS record breakdown (final snapshot)",
		Headers: []string{"error", "domains", "share of record errors"},
	}
	results := e.Scan(simnet.Months - 1)
	var noID, badID, badVer, badExt, multiple, total int
	for i := range results {
		r := &results[i]
		if !r.RecordPresent || r.RecordValid || r.RecordErr == nil {
			continue
		}
		total++
		switch {
		case errors.Is(r.RecordErr, mtasts.ErrMissingID):
			noID++
		case errors.Is(r.RecordErr, mtasts.ErrBadID):
			badID++
		case errors.Is(r.RecordErr, mtasts.ErrBadVersion):
			badVer++
		case errors.Is(r.RecordErr, mtasts.ErrMultipleRecords):
			multiple++
		case errors.Is(r.RecordErr, mtasts.ErrBadExtension):
			badExt++
		}
	}
	pct := func(n int) string {
		if total == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
	}
	t.AddRow("no id field", noID, pct(noID))
	t.AddRow("invalid id", badID, pct(badID))
	t.AddRow("invalid version prefix", badVer, pct(badVer))
	t.AddRow("invalid extension", badExt, pct(badExt))
	t.AddRow("multiple records", multiple, pct(multiple))
	t.AddRow("total", total, "100%")
	return t
}

// ErrorTaxonomy breaks the final snapshot's misconfigurations down to
// individual error codes (docs/ERRORS.md) — the per-code refinement of
// Figure 4's category view, counting domains affected by each failure
// mode at least once.
func (e *Env) ErrorTaxonomy() *dataset.Table {
	s := e.Summary(simnet.Months - 1)
	return report.ErrorTaxonomyTable(
		"Figure 4 refined: error codes per domain (final snapshot)", s.ByCode)
}

// Disclosure reproduces §4.7: the notification campaign outcome.
func (e *Env) Disclosure() *dataset.Table {
	out := e.World.Disclosure(e.Scan(simnet.Months - 1))
	t := &dataset.Table{
		Title:   "§4.7: responsible disclosure campaign",
		Headers: []string{"metric", "count", "share"},
	}
	t.AddRow("misconfigured domains notified", out.Notified, "100%")
	t.AddRow("bounced", out.Bounced, fmt.Sprintf("%.1f%%", 100*float64(out.Bounced)/float64(max(1, out.Notified))))
	t.AddRow("resolved within window", out.Resolved, fmt.Sprintf("%.1f%%", 100*float64(out.Resolved)/float64(max(1, out.Notified))))
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
