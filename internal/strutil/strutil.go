// Package strutil provides small string utilities shared across the
// measurement code: Levenshtein edit distance (used by the typo detector in
// the inconsistency taxonomy, §4.4 of the paper) and DNS label helpers.
package strutil

import "strings"

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions, and substitutions needed to
// transform a into b. It runs in O(len(a)*len(b)) time and O(min(len)) space.
func Levenshtein(a, b string) int {
	// Ensure b is the shorter string so the row buffer is minimal.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[j-1] from the previous iteration (diagonal)
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			row[j] = min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[len(b)]
}

// LevenshteinAtMost reports whether Levenshtein(a, b) <= k without always
// computing the full matrix; it short-circuits when the length difference
// alone exceeds k.
func LevenshteinAtMost(a, b string, k int) bool {
	d := len(a) - len(b)
	if d < 0 {
		d = -d
	}
	if d > k {
		return false
	}
	return Levenshtein(a, b) <= k
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Labels splits a domain name into its dot-separated labels, ignoring a
// single trailing dot. An empty name yields nil.
func Labels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CanonicalName lowercases a domain name and strips one trailing dot,
// producing the canonical form used as a map key throughout the codebase.
func CanonicalName(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// HasSuffixFold reports whether name ends with the given domain suffix on a
// label boundary, comparing case-insensitively. A name equals its own suffix.
func HasSuffixFold(name, suffix string) bool {
	name = CanonicalName(name)
	suffix = CanonicalName(suffix)
	if name == suffix {
		return true
	}
	return strings.HasSuffix(name, "."+suffix)
}

// ParentDomain returns the name with its leftmost label removed, or "" when
// one or zero labels remain.
func ParentDomain(name string) string {
	name = CanonicalName(name)
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// IsAlphanumeric reports whether s is non-empty and contains only ASCII
// letters and digits. RFC 8461 restricts the MTA-STS record id to this set.
func IsAlphanumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9') {
			return false
		}
	}
	return true
}
