package strutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"mx1.example.com", "mx1.exmaple.com", 2},
		{"mail.example.com", "mail.example.com", 0},
		{"mail.example.com", "mali.example.com", 2},
		{"a", "b", 1},
		{"gmail.com", "gmial.com", 2},
		{"mta-sts", "mta-st", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBoundedByMaxLen(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		m := len(a)
		if len(b) > m {
			m = len(b)
		}
		return d <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinAtMost(t *testing.T) {
	f := func(a, b string, k uint8) bool {
		kk := int(k % 8)
		return LevenshteinAtMost(a, b, kk) == (Levenshtein(a, b) <= kk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Length-difference short circuit.
	if LevenshteinAtMost("abcdefgh", "a", 3) {
		t.Error("LevenshteinAtMost should short-circuit on length difference")
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"example.com", []string{"example", "com"}},
		{"example.com.", []string{"example", "com"}},
		{"a.b.c.d", []string{"a", "b", "c", "d"}},
		{"", nil},
		{".", nil},
		{"com", []string{"com"}},
	}
	for _, c := range cases {
		got := Labels(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Labels(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Labels(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM.", "example.com"},
		{"example.com", "example.com"},
		{"MTA-STS.Example.Com", "mta-sts.example.com"},
		{".", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHasSuffixFold(t *testing.T) {
	cases := []struct {
		name, suffix string
		want         bool
	}{
		{"mail.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"EXAMPLE.COM.", "example.com", true},
		{"notexample.com", "example.com", false},
		{"example.com", "mail.example.com", false},
		{"mail.example.org", "example.com", false},
	}
	for _, c := range cases {
		if got := HasSuffixFold(c.name, c.suffix); got != c.want {
			t.Errorf("HasSuffixFold(%q, %q) = %v, want %v", c.name, c.suffix, got, c.want)
		}
	}
}

func TestParentDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mail.example.com", "example.com"},
		{"example.com", "com"},
		{"com", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := ParentDomain(c.in); got != c.want {
			t.Errorf("ParentDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsAlphanumeric(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"20240431", true},
		{"abcXYZ019", true},
		{"", false},
		{"2024-04-31", false},
		{"id_1", false},
		{"id 1", false},
		{"ümlaut", false},
	}
	for _, c := range cases {
		if got := IsAlphanumeric(c.in); got != c.want {
			t.Errorf("IsAlphanumeric(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
