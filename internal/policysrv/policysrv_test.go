package policysrv

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
)

var srvNow = time.Now()

func enforcePolicy(mx ...string) mtasts.Policy {
	return mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: mx}
}

// newEnv boots a policy server and returns it with a fetcher aimed at it.
func newEnv(t *testing.T) (*Server, *pki.CA, *mtasts.Fetcher) {
	t.Helper()
	ca, err := pki.NewCA("PolicySrv CA", srvNow)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ca, func() time.Time { return srvNow })
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	f := &mtasts.Fetcher{
		Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
			return []string{"127.0.0.1"}, nil
		}),
		RootCAs: ca.Pool(),
		Port:    srv.Port(),
		Timeout: 3 * time.Second,
	}
	return srv, ca, f
}

func TestServePolicyMultiTenant(t *testing.T) {
	srv, _, f := newEnv(t)
	srv.AddTenant(&Tenant{Domain: "alpha.com", Policy: enforcePolicy("mx.alpha.com")})
	srv.AddTenant(&Tenant{Domain: "beta.org", Policy: enforcePolicy("mx1.beta.org", "*.backup.beta.org")})

	ctx := context.Background()
	p1, _, err := f.Fetch(ctx, "alpha.com")
	if err != nil || p1.MXPatterns[0] != "mx.alpha.com" {
		t.Errorf("alpha: %+v, %v", p1, err)
	}
	p2, _, err := f.Fetch(ctx, "beta.org")
	if err != nil || len(p2.MXPatterns) != 2 {
		t.Errorf("beta: %+v, %v", p2, err)
	}
}

func TestCertModes(t *testing.T) {
	srv, _, f := newEnv(t)
	cases := []struct {
		domain string
		mode   CertMode
		want   pki.Problem
	}{
		{"expired.com", CertExpired, pki.ProblemExpired},
		{"selfsigned.com", CertSelfSigned, pki.ProblemSelfSigned},
		{"wrongname.com", CertWrongName, pki.ProblemNameMismatch},
		{"missing.com", CertMissing, pki.ProblemNoCertificate},
	}
	for _, c := range cases {
		srv.AddTenant(&Tenant{Domain: c.domain, Policy: enforcePolicy("mx." + c.domain), CertMode: c.mode})
		_, _, err := f.Fetch(context.Background(), c.domain)
		if mtasts.StageOf(err) != mtasts.StageTLS {
			t.Errorf("%s: stage = %v (err=%v)", c.domain, mtasts.StageOf(err), err)
			continue
		}
		if got := mtasts.CertProblemOf(err); got != c.want {
			t.Errorf("%s: problem = %v, want %v", c.domain, got, c.want)
		}
	}
}

func TestHTTPModes(t *testing.T) {
	srv, _, f := newEnv(t)
	cases := []struct {
		domain    string
		mode      HTTPMode
		wantStage mtasts.Stage
		wantHTTP  int
	}{
		{"notfound.com", HTTPNotFound, mtasts.StageHTTP, http.StatusNotFound},
		{"servererror.com", HTTPServerError, mtasts.StageHTTP, http.StatusInternalServerError},
		{"redirect.com", HTTPRedirect, mtasts.StageHTTP, http.StatusMovedPermanently},
		{"emptybody.com", HTTPEmptyBody, mtasts.StageSyntax, 0},
		{"garbage.com", HTTPGarbage, mtasts.StageSyntax, 0},
	}
	for _, c := range cases {
		srv.AddTenant(&Tenant{Domain: c.domain, Policy: enforcePolicy("mx." + c.domain), HTTPMode: c.mode})
		_, _, err := f.Fetch(context.Background(), c.domain)
		if mtasts.StageOf(err) != c.wantStage {
			t.Errorf("%s: stage = %v (err=%v)", c.domain, mtasts.StageOf(err), err)
			continue
		}
		if c.wantHTTP != 0 {
			var fe *mtasts.FetchError
			if !errors.As(err, &fe) || fe.HTTPStatus != c.wantHTTP {
				t.Errorf("%s: status = %+v", c.domain, fe)
			}
		}
	}
}

func TestAliasServesDelegatedName(t *testing.T) {
	srv, _, f := newEnv(t)
	provider, _ := LookupProvider("DMARCReport")
	srv.AddTenant(&Tenant{Domain: "customer.com", Policy: enforcePolicy("mx.customer.com")})
	canonical := provider.CanonicalName("customer.com")
	if err := srv.AddAlias("customer.com", canonical); err != nil {
		t.Fatal(err)
	}
	// Fetching via the provider's canonical name works (this is what a
	// sender does after CNAME resolution: TLS SNI still carries the
	// customer's policy host, but here we check the alias serves).
	p, _, err := f.FetchFromHost(context.Background(), "customer.com", canonical)
	if err != nil {
		t.Fatalf("fetch via alias: %v", err)
	}
	if p.MXPatterns[0] != "mx.customer.com" {
		t.Errorf("policy = %+v", p)
	}
	if err := srv.AddAlias("absent.com", "x.y"); err == nil {
		t.Error("AddAlias for unknown tenant should fail")
	}
}

func TestRemoveTenant(t *testing.T) {
	srv, _, f := newEnv(t)
	srv.AddTenant(&Tenant{Domain: "gone.com", Policy: enforcePolicy("mx.gone.com")})
	if _, _, err := f.Fetch(context.Background(), "gone.com"); err != nil {
		t.Fatalf("pre-removal fetch: %v", err)
	}
	srv.RemoveTenant("gone.com")
	_, _, err := f.Fetch(context.Background(), "gone.com")
	if mtasts.StageOf(err) != mtasts.StageTLS {
		// Unknown SNI → handshake failure.
		t.Errorf("post-removal: stage=%v err=%v", mtasts.StageOf(err), err)
	}
	if _, ok := srv.Tenant(mtasts.PolicyHost("gone.com")); ok {
		t.Error("tenant still registered")
	}
}

func TestCanonicalNameSchemes(t *testing.T) {
	cases := []struct {
		provider string
		domain   string
		want     string
	}{
		{"Tutanota", "a.com", "_mta-sts.tutanota.de"},
		{"DMARCReport", "a.com", "a-com.mta-sts.dmarcinput.com"},
		{"PowerDMARC", "a.com", "a-com._mta.mta-sts.tech"},
		{"EasyDMARC", "a.com", "a_com__mta_sts.easydmarc.pro"},
		{"Mailhardener", "a.com", "a.com._mta-sts.mailhardener.com"},
		{"URIports", "a.com", "a-com._mta-sts.uriports.com"},
		{"Sendmarc", "a.com", "a.com._mta-sts.sdmarc.net"},
		{"OnDMARC", "a.com", "_mta-sts.a.com._mta-sts.smart.ondmarc.com"},
	}
	for _, c := range cases {
		p, ok := LookupProvider(c.provider)
		if !ok {
			t.Errorf("provider %s not in registry", c.provider)
			continue
		}
		if got := p.CanonicalName(c.domain); got != c.want {
			t.Errorf("%s.CanonicalName(%q) = %q, want %q", c.provider, c.domain, got, c.want)
		}
		// And the reverse mapping identifies the provider.
		back, ok := ProviderFor(p.CanonicalName(c.domain))
		if !ok || back.Name != c.provider {
			t.Errorf("ProviderFor(%q) = %v, %v", p.CanonicalName(c.domain), back.Name, ok)
		}
	}
	if _, ok := ProviderFor("mta-sts.unrelated.example"); ok {
		t.Error("ProviderFor matched an unrelated name")
	}
	if _, ok := LookupProvider("NoSuch"); ok {
		t.Error("LookupProvider matched a bogus name")
	}
}

func TestOptOutBehaviors(t *testing.T) {
	last := enforcePolicy("mx.customer.com")

	// NXDOMAIN providers stop serving.
	for _, name := range []string{"PowerDMARC", "Mailhardener", "URIports"} {
		p, _ := LookupProvider(name)
		if _, ok := p.OptOutTenant("customer.com", last); ok {
			t.Errorf("%s should return NXDOMAIN after opt-out", name)
		}
	}

	// DMARCReport: cert reissued, empty policy file.
	p, _ := LookupProvider("DMARCReport")
	ten, ok := p.OptOutTenant("customer.com", last)
	if !ok || ten.HTTPMode != HTTPEmptyBody || ten.CertMode != CertGood {
		t.Errorf("DMARCReport opt-out tenant = %+v, %v", ten, ok)
	}

	// EasyDMARC/Sendmarc/OnDMARC: cert reissued, stale policy kept.
	for _, name := range []string{"EasyDMARC", "Sendmarc", "OnDMARC"} {
		p, _ := LookupProvider(name)
		ten, ok := p.OptOutTenant("customer.com", last)
		if !ok || ten.HTTPMode != HTTPServePolicy || ten.CertMode != CertGood ||
			ten.Policy.Mode != mtasts.ModeEnforce {
			t.Errorf("%s opt-out tenant = %+v, %v", name, ten, ok)
		}
	}

	// Tutanota: certificate lapses (expired), stale policy kept.
	p, _ = LookupProvider("Tutanota")
	ten, ok = p.OptOutTenant("customer.com", last)
	if !ok || ten.CertMode != CertExpired || ten.Policy.Mode != mtasts.ModeEnforce {
		t.Errorf("Tutanota opt-out tenant = %+v, %v", ten, ok)
	}
}

func TestOptOutEndToEnd(t *testing.T) {
	// A DMARCReport customer opts out: the served policy becomes an empty
	// file, which a compliant sender treats as a syntax failure.
	srv, _, f := newEnv(t)
	p, _ := LookupProvider("DMARCReport")
	ten, ok := p.OptOutTenant("customer.com", enforcePolicy("mx.customer.com"))
	if !ok {
		t.Fatal("expected a served tenant")
	}
	srv.AddTenant(&ten)
	_, _, err := f.Fetch(context.Background(), "customer.com")
	if mtasts.StageOf(err) != mtasts.StageSyntax || !errors.Is(err, mtasts.ErrEmptyPolicy) {
		t.Errorf("opt-out fetch: stage=%v err=%v", mtasts.StageOf(err), err)
	}
}

func TestRegistryMatchesTable2(t *testing.T) {
	if len(Registry) != 8 {
		t.Fatalf("registry has %d providers, want 8", len(Registry))
	}
	// Only Tutanota offers email hosting.
	for _, p := range Registry {
		if p.EmailHosting != (p.Name == "Tutanota") {
			t.Errorf("%s EmailHosting = %v", p.Name, p.EmailHosting)
		}
	}
	// Exactly three NXDOMAIN providers; exactly four reissue certificates.
	nx, reissue := 0, 0
	for _, p := range Registry {
		if p.OptOutNXDomain {
			nx++
		}
		if p.OptOutReissueCert {
			reissue++
		}
	}
	if nx != 3 || reissue != 4 {
		t.Errorf("NXDOMAIN=%d (want 3), reissue=%d (want 4)", nx, reissue)
	}
}
