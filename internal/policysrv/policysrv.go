// Package policysrv implements the HTTPS policy-hosting substrate: a
// multi-tenant web server that serves "/.well-known/mta-sts.txt" for many
// policy domains, with per-tenant certificate behavior and the failure
// modes the paper's Figure 5 taxonomy measures (closed port, bad TLS, 404,
// empty file, syntax errors). It also models the third-party policy
// hosting providers of Table 2, including their CNAME naming schemes and
// their divergent handling of customers who opt out.
package policysrv

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// CertMode selects the certificate a tenant's policy host presents.
type CertMode int

// Certificate behaviors.
const (
	CertGood CertMode = iota
	CertExpired
	CertSelfSigned
	CertWrongName // certificate for the bare domain, missing the mta-sts label
	CertMissing   // no certificate: handshake fails with an alert
)

// HTTPMode selects the HTTP-level behavior for a tenant.
type HTTPMode int

// HTTP behaviors.
const (
	HTTPServePolicy HTTPMode = iota
	HTTPNotFound             // 404 on the well-known path
	HTTPServerError          // 500
	HTTPRedirect             // 301 (senders must not follow)
	HTTPEmptyBody            // 200 with an empty file (§5, DMARCReport opt-out)
	HTTPGarbage              // 200 with a non-policy body
)

// Tenant is one policy domain served by the host.
type Tenant struct {
	// Domain is the policy domain (e.g. "example.com"); the tenant is
	// served for Host headers/SNI "mta-sts.<Domain>" plus any extra names
	// registered with AddAlias.
	Domain string
	// Policy is the served policy.
	Policy mtasts.Policy
	// CertMode controls the presented certificate.
	CertMode CertMode
	// HTTPMode controls the HTTP response.
	HTTPMode HTTPMode
}

// Server is a multi-tenant HTTPS policy host.
type Server struct {
	ca  *pki.CA
	now func() time.Time

	mu        sync.RWMutex
	tenants   map[string]*Tenant // key: served host name (canonical)
	certs     map[string]*tls.Certificate
	faults    *faults.Injector
	adversary *faults.Adversary

	ln        net.Listener
	httpSv    *http.Server
	port      int
	serveDone chan struct{}
	serveErr  error // set before serveDone closes
}

// New creates a server that issues its certificates from ca.
func New(ca *pki.CA, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	return &Server{
		ca:      ca,
		now:     now,
		tenants: make(map[string]*Tenant),
		certs:   make(map[string]*tls.Certificate),
	}
}

// AddTenant registers (or replaces) a tenant under "mta-sts.<domain>".
func (s *Server) AddTenant(t *Tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	host := strutil.CanonicalName(mtasts.PolicyHost(t.Domain))
	s.tenants[host] = t
	delete(s.certs, host) // force certificate re-issue on next handshake
}

// AddAlias serves an existing tenant under an additional host name (the
// provider-side canonical name a customer CNAME points to).
func (s *Server) AddAlias(domain, alias string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	host := strutil.CanonicalName(mtasts.PolicyHost(domain))
	t, ok := s.tenants[host]
	if !ok {
		return fmt.Errorf("policysrv: no tenant for %s", domain)
	}
	s.tenants[strutil.CanonicalName(alias)] = t
	return nil
}

// RemoveTenant drops a tenant and its aliases.
func (s *Server) RemoveTenant(domain string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	host := strutil.CanonicalName(mtasts.PolicyHost(domain))
	t := s.tenants[host]
	if t == nil {
		return
	}
	for name, tt := range s.tenants {
		if tt == t {
			delete(s.tenants, name)
			delete(s.certs, name)
		}
	}
}

// SetFaults installs a per-connection fault injector, keyed by the
// handshake's SNI, realizing added latency and mid-handshake resets
// from its seeded plan. Nil removes it.
func (s *Server) SetFaults(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = inj
}

// SetAdversary installs an on-path attacker for the policy host: per
// its scenario it can terminate TLS with a self-signed certificate
// (MITM without the web PKI) or tamper with the HTTP body (rollback
// policies, oversized responses, slowloris trickle). Nil removes it.
func (s *Server) SetAdversary(adv *faults.Adversary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adversary = adv
	// Drop cached certificates so a cert-swapping adversary takes effect
	// on the next handshake (and honest certs return after removal).
	s.certs = make(map[string]*tls.Certificate)
}

// Tenant returns the tenant registered for a served host name.
func (s *Server) Tenant(host string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[strutil.CanonicalName(host)]
	return t, ok
}

// Start listens on addr and serves HTTPS. The bound port is available via
// Port.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("policysrv: listen: %w", err)
	}
	s.ln = ln
	if tcp, ok := ln.Addr().(*net.TCPAddr); ok {
		s.port = tcp.Port
	}
	tlsLn := tls.NewListener(ln, &tls.Config{
		GetCertificate:     s.getCertificate,
		GetConfigForClient: s.faultHook,
		MinVersion:         tls.VersionTLS12,
	})
	s.httpSv = &http.Server{
		Handler:           http.HandlerFunc(s.handle),
		ReadHeaderTimeout: 10 * time.Second,
		// Handshake failures are a deliberately injected behavior here;
		// keep them off the process stderr.
		ErrorLog: log.New(io.Discard, "", 0),
	}
	s.serveDone = make(chan struct{})
	go func() {
		defer close(s.serveDone)
		if err := s.httpSv.Serve(tlsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
	}()
	return ln.Addr(), nil
}

// Port returns the bound TCP port.
func (s *Server) Port() int { return s.port }

// Close stops the server, reporting any error the background serve
// loop died with.
func (s *Server) Close() error {
	if s.httpSv == nil {
		return nil
	}
	err := s.httpSv.Close()
	<-s.serveDone
	return errors.Join(err, s.serveErr)
}

// faultHook runs after the ClientHello arrives and realizes injected
// connection faults. A nil returned config continues the handshake with
// the listener's configuration.
func (s *Server) faultHook(hello *tls.ClientHelloInfo) (*tls.Config, error) {
	s.mu.RLock()
	inj := s.faults
	s.mu.RUnlock()
	act, delay := inj.Conn("policysrv", strutil.CanonicalName(hello.ServerName))
	if delay > 0 {
		time.Sleep(delay)
	}
	if act == faults.ConnReset {
		// Close the socket before erroring out of the handshake so the
		// client observes a torn connection (EOF/reset) — the transient
		// failure shape — rather than a TLS alert, which would read as a
		// persistent TLS-stage verdict.
		//lint:ignore errdrop the torn socket is the injected fault; its close error is meaningless
		hello.Conn.Close()
		return nil, fmt.Errorf("policysrv: injected mid-handshake reset for %q", hello.ServerName)
	}
	return nil, nil
}

// getCertificate issues (and caches) the certificate matching the tenant's
// CertMode, selected by SNI.
func (s *Server) getCertificate(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	name := strutil.CanonicalName(hello.ServerName)
	s.mu.Lock()
	defer s.mu.Unlock()
	key := name
	mitm := s.adversary.PolicyCert(name)
	if mitm {
		key = "adv|" + name // never confuse attacker and honest certs
	}
	if cert, ok := s.certs[key]; ok {
		return cert, nil
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("policysrv: unknown SNI %q", hello.ServerName)
	}
	if mitm {
		// The on-path attacker terminates TLS itself: a certificate for
		// the right name, but self-signed — exactly what an attacker
		// without a web-PKI issuance can mint.
		leaf, err := s.ca.Issue(pki.IssueOptions{Names: []string{name}, SelfSigned: true, Now: s.now()})
		if err != nil {
			return nil, err
		}
		cert := leaf.TLSCertificate()
		s.certs[key] = &cert
		return &cert, nil
	}
	cert, err := s.issueLocked(name, t)
	if err != nil {
		return nil, err
	}
	if cert != nil {
		s.certs[name] = cert
	}
	return cert, err
}

func (s *Server) issueLocked(name string, t *Tenant) (*tls.Certificate, error) {
	now := s.now()
	opts := pki.IssueOptions{Names: []string{name}, Now: now}
	switch t.CertMode {
	case CertGood:
	case CertExpired:
		opts.NotBefore = now.Add(-100 * 24 * time.Hour)
		opts.NotAfter = now.Add(-10 * 24 * time.Hour)
	case CertSelfSigned:
		opts.SelfSigned = true
	case CertWrongName:
		opts.Names = []string{t.Domain} // bare domain, no mta-sts label
	case CertMissing:
		return nil, fmt.Errorf("policysrv: no certificate installed for %s", name)
	}
	leaf, err := s.ca.Issue(opts)
	if err != nil {
		return nil, err
	}
	cert := leaf.TLSCertificate()
	return &cert, nil
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	host := strutil.CanonicalName(strings.Split(r.Host, ":")[0])
	s.mu.RLock()
	t, ok := s.tenants[host]
	adv := s.adversary
	s.mu.RUnlock()
	if !ok || r.URL.Path != mtasts.WellKnownPath {
		http.NotFound(w, r)
		return
	}
	if act, body := adv.PolicyBody(host); act != faults.BodyHonest {
		s.serveTampered(w, r, act, body)
		return
	}
	switch t.HTTPMode {
	case HTTPNotFound:
		http.NotFound(w, r)
	case HTTPServerError:
		http.Error(w, "internal error", http.StatusInternalServerError)
	case HTTPRedirect:
		http.Redirect(w, r, "https://elsewhere.invalid/mta-sts.txt", http.StatusMovedPermanently)
	case HTTPEmptyBody:
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusOK)
	case HTTPGarbage:
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "<html><body>It works!</body></html>\n")
	default:
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, t.Policy.String())
	}
}

// serveTampered realizes an adversary's body verdict: a substituted
// (rollback) policy, a body past the RFC 8461 size cap, or a slowloris
// trickle that never finishes.
func (s *Server) serveTampered(w http.ResponseWriter, r *http.Request, act faults.BodyAction, body string) {
	w.Header().Set("Content-Type", "text/plain")
	switch act {
	case faults.BodyReplace:
		fmt.Fprint(w, body)
	case faults.BodyOversized:
		// 80 KiB of syntactically plausible lines: past MaxPolicySize, so
		// a compliant fetcher aborts the read before ever parsing.
		w.WriteHeader(http.StatusOK)
		line := []byte("mx: oversized-filler.invalid\n")
		for written := 0; written < 80*1024; written += len(line) {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
	case faults.BodySlowloris:
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		// Trickle until the client gives up; the absolute cap keeps a
		// handler from outliving its test world if the client never
		// closes.
		for i := 0; i < 400; i++ {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
			if _, err := io.WriteString(w, "v"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
