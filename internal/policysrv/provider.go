package policysrv

import (
	"strings"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// NameScheme is how a hosting provider derives the canonical policy-host
// name a customer's CNAME must point to (the "CNAME Patterns" column of
// Table 2).
type NameScheme int

// Naming schemes observed across the Table 2 providers.
const (
	// SchemeShared: every customer points at one shared name
	// (Tutanota: _mta-sts.tutanota.de).
	SchemeShared NameScheme = iota
	// SchemeDashes: dots become dashes, prefixed to the base
	// (DMARCReport: a-com.mta-sts.dmarcinput.com).
	SchemeDashes
	// SchemeUnderscores: dots become underscores with a double-underscore
	// marker (EasyDMARC: a_com__mta_sts.easydmarc.pro).
	SchemeUnderscores
	// SchemePlainPrefix: the customer domain is kept verbatim as a prefix
	// (Mailhardener: a.com._mta-sts.mailhardener.com).
	SchemePlainPrefix
	// SchemeLabeled: "_mta-sts." + domain + "." + base
	// (OnDMARC: _mta-sts.a.com._mta-sts.smart.ondmarc.com).
	SchemeLabeled
)

// OptOutPolicyUpdate is what happens to a departed customer's policy file
// (last column of Table 2).
type OptOutPolicyUpdate int

// Policy-file handling after opt-out.
const (
	// UpdateNone: the stale policy keeps being served.
	UpdateNone OptOutPolicyUpdate = iota
	// UpdateEmptyFile: the policy is replaced with an empty file, which
	// parsers reject — senders treat it like mode "none" (DMARCReport).
	UpdateEmptyFile
	// UpdateModeNone: the policy is rewritten to mode "none"
	// (PowerDMARC, Mailhardener).
	UpdateModeNone
)

// Provider describes a third-party policy hosting provider.
type Provider struct {
	// Name is the provider's display name.
	Name string
	// Base is the provider-controlled suffix of canonical names.
	Base string
	// Scheme derives per-customer canonical names.
	Scheme NameScheme
	// EmailHosting marks providers that also run the customer's MXes
	// (only Tutanota in Table 2).
	EmailHosting bool
	// OptOutNXDomain: the canonical name is withdrawn from DNS after
	// opt-out, so the policy domain stops resolving.
	OptOutNXDomain bool
	// OptOutReissueCert: certificates keep being issued for departed
	// customers via ACME domain validation.
	OptOutReissueCert bool
	// OptOutUpdate is the policy-file handling after opt-out.
	OptOutUpdate OptOutPolicyUpdate
}

// CanonicalName returns the provider-side host name the customer's
// "mta-sts.<domain>" CNAME must target.
func (p Provider) CanonicalName(domain string) string {
	domain = strutil.CanonicalName(domain)
	switch p.Scheme {
	case SchemeShared:
		return p.Base
	case SchemeDashes:
		return strings.ReplaceAll(domain, ".", "-") + "." + p.Base
	case SchemeUnderscores:
		return strings.ReplaceAll(domain, ".", "_") + "__mta_sts." + p.Base
	case SchemePlainPrefix:
		return domain + "." + p.Base
	case SchemeLabeled:
		return "_mta-sts." + domain + "." + p.Base
	}
	return p.Base
}

// OptOutTenant derives the tenant state served for a customer after an
// incomplete opt-out (customer removed from the provider, CNAME left
// behind), per the provider's Table 2 behavior. ok is false when the
// provider stops serving the name entirely (NXDOMAIN providers).
func (p Provider) OptOutTenant(domain string, last mtasts.Policy) (t Tenant, ok bool) {
	if p.OptOutNXDomain {
		return Tenant{}, false
	}
	t = Tenant{Domain: domain, Policy: last}
	if !p.OptOutReissueCert {
		// Certificates lapse: the scanner observes an expired certificate.
		t.CertMode = CertExpired
	}
	switch p.OptOutUpdate {
	case UpdateEmptyFile:
		t.HTTPMode = HTTPEmptyBody
	case UpdateModeNone:
		t.Policy.Mode = mtasts.ModeNone
		t.Policy.MXPatterns = nil
	}
	return t, true
}

// Registry is the Table 2 provider list, ordered by customer count in the
// paper's latest snapshot.
var Registry = []Provider{
	{Name: "Tutanota", Base: "_mta-sts.tutanota.de", Scheme: SchemeShared,
		EmailHosting: true, OptOutUpdate: UpdateNone},
	{Name: "DMARCReport", Base: "mta-sts.dmarcinput.com", Scheme: SchemeDashes,
		OptOutReissueCert: true, OptOutUpdate: UpdateEmptyFile},
	{Name: "PowerDMARC", Base: "_mta.mta-sts.tech", Scheme: SchemeDashes,
		OptOutNXDomain: true, OptOutUpdate: UpdateModeNone},
	{Name: "EasyDMARC", Base: "easydmarc.pro", Scheme: SchemeUnderscores,
		OptOutReissueCert: true, OptOutUpdate: UpdateNone},
	{Name: "Mailhardener", Base: "_mta-sts.mailhardener.com", Scheme: SchemePlainPrefix,
		OptOutNXDomain: true, OptOutUpdate: UpdateModeNone},
	{Name: "URIports", Base: "_mta-sts.uriports.com", Scheme: SchemeDashes,
		OptOutNXDomain: true, OptOutUpdate: UpdateNone},
	{Name: "Sendmarc", Base: "_mta-sts.sdmarc.net", Scheme: SchemePlainPrefix,
		OptOutReissueCert: true, OptOutUpdate: UpdateNone},
	{Name: "OnDMARC", Base: "_mta-sts.smart.ondmarc.com", Scheme: SchemeLabeled,
		OptOutReissueCert: true, OptOutUpdate: UpdateNone},
}

// LookupProvider finds a registry provider by name (case-insensitive).
func LookupProvider(name string) (Provider, bool) {
	for _, p := range Registry {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Provider{}, false
}

// ProviderFor identifies which provider a CNAME target belongs to, by
// suffix match on the provider base.
func ProviderFor(cnameTarget string) (Provider, bool) {
	target := strutil.CanonicalName(cnameTarget)
	for _, p := range Registry {
		base := strutil.CanonicalName(p.Base)
		if target == base || strings.HasSuffix(target, "."+base) {
			return p, true
		}
	}
	return Provider{}, false
}
