// Package report renders experiment outputs for the terminal and for
// Markdown: aligned tables (WriteTable, MarkdownTable), ASCII line
// charts approximating the paper's figures (Chart), and the
// paper-vs-measured shape-check rows (ComparisonRow) that EXPERIMENTS.md
// is generated from. cmd/reproduce composes these to print every table
// and figure side by side with the paper's reported values, and
// cmd/mtasts-campaign reuses the table renderer for campaign trend
// output; keeping all rendering here keeps the experiment packages free
// of formatting concerns.
package report
