package report

import (
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/dataset"
)

func TestWriteTableAligned(t *testing.T) {
	tbl := &dataset.Table{
		Title:   "Demo",
		Headers: []string{"tld", "domains"},
	}
	tbl.AddRow(".com", 53800)
	tbl.AddRow(".se", 692)
	var sb strings.Builder
	WriteTable(&sb, tbl)
	out := sb.String()
	if !strings.Contains(out, "== Demo ==") || !strings.Contains(out, ".com") {
		t.Errorf("output = %q", out)
	}
	// The header separator line must be present.
	if !strings.Contains(out, "---") {
		t.Error("no separator")
	}
}

func TestChartWrite(t *testing.T) {
	s1 := dataset.FromValues("com", []float64{0.02, 0.04, 0.07}, nil)
	s2 := dataset.FromValues("org", []float64{0.03, 0.05, 0.12}, nil)
	c := &Chart{Title: "Figure 2", YLabel: "% of domains", Height: 6, Series: []dataset.Series{s1, s2}}
	var sb strings.Builder
	c.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "* = com") || !strings.Contains(out, "+ = org") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "y: % of domains") {
		t.Error("missing y label")
	}
	// Marks should appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series marks")
	}
}

func TestChartEmpty(t *testing.T) {
	var sb strings.Builder
	(&Chart{Title: "E"}).Write(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("output = %q", sb.String())
	}
	sb.Reset()
	(&Chart{Title: "E2", Series: []dataset.Series{{Name: "empty"}}}).Write(&sb)
	if !strings.Contains(sb.String(), "empty series") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestChartFlatSeriesNoPanic(t *testing.T) {
	s := dataset.FromValues("flat", []float64{5, 5, 5, 5}, nil)
	var sb strings.Builder
	(&Chart{Series: []dataset.Series{s}}).Write(&sb)
	if sb.Len() == 0 {
		t.Error("no output")
	}
}

func TestSparkline(t *testing.T) {
	s := dataset.FromValues("x", []float64{0, 1, 2, 3}, nil)
	sp := Sparkline(s)
	if len([]rune(sp)) != 4 {
		t.Errorf("sparkline = %q", sp)
	}
	if Sparkline(dataset.Series{}) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestWriteComparison(t *testing.T) {
	var sb strings.Builder
	WriteComparison(&sb, "Check", []ComparisonRow{
		{Metric: "misconfigured", Paper: "29.6%", Measured: "29.1%", Holds: true},
		{Metric: "broken", Paper: "1", Measured: "99", Holds: false},
	})
	out := sb.String()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("output = %q", out)
	}
}

func TestMarkdownTable(t *testing.T) {
	tbl := &dataset.Table{Title: "T", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	md := MarkdownTable(tbl)
	for _, want := range []string{"### T", "| a | b |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
