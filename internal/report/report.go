package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/netsecurelab/mtasts/internal/dataset"
)

// WriteTable renders a dataset.Table with aligned columns.
func WriteTable(w io.Writer, t *dataset.Table) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Chart draws one or more series as an ASCII line chart of the given
// height (rows) — a terminal rendition of a paper figure.
type Chart struct {
	Title  string
	YLabel string
	Height int
	Series []dataset.Series
}

// seriesMarks distinguishes overlaid series.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// Write renders the chart.
func (c *Chart) Write(w io.Writer) {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	if len(c.Series) == 0 {
		fmt.Fprintf(w, "== %s == (no data)\n", c.Title)
		return
	}
	width := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Points) > width {
			width = len(s.Points)
		}
		if v := s.Min(); v < lo {
			lo = v
		}
		if v := s.Max(); v > hi {
			hi = v
		}
	}
	if width == 0 {
		fmt.Fprintf(w, "== %s == (empty series)\n", c.Title)
		return
	}
	if lo > 0 && lo < hi/3 {
		lo = 0 // anchor near-zero ranges at zero, like the paper's axes
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for x, p := range s.Points {
			y := int(math.Round((p.Value - lo) / (hi - lo) * float64(height-1)))
			if y < 0 {
				y = 0
			}
			if y > height-1 {
				y = height - 1
			}
			row := height - 1 - y
			grid[row][x] = mark
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", c.Title)
	}
	for i, row := range grid {
		yVal := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(w, "%8.3f | %s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "%8s +-%s\n", "", strings.Repeat("-", width))
	// X labels: first, middle, last.
	first, last := "", ""
	s0 := c.Series[0]
	if len(s0.Points) > 0 {
		first, last = s0.Points[0].Label, s0.Points[len(s0.Points)-1].Label
	}
	gap := width - len(first) - len(last)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%8s   %s%s%s\n", "", first, strings.Repeat(" ", gap), last)
	for si, s := range c.Series {
		fmt.Fprintf(w, "%8s   %c = %s\n", "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(w, "%8s   y: %s\n", "", c.YLabel)
	}
}

// Sparkline renders a single series as one line of block characters, for
// compact summaries.
func Sparkline(s dataset.Series) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, p := range s.Points {
		idx := int((p.Value - lo) / (hi - lo) * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// ComparisonRow pairs a paper-reported value with the measured one for
// EXPERIMENTS.md.
type ComparisonRow struct {
	Metric   string
	Paper    string
	Measured string
	Holds    bool
}

// WriteComparison renders paper-vs-measured rows.
func WriteComparison(w io.Writer, title string, rows []ComparisonRow) {
	t := &dataset.Table{
		Title:   title,
		Headers: []string{"metric", "paper", "measured", "shape holds"},
	}
	for _, r := range rows {
		holds := "yes"
		if !r.Holds {
			holds = "NO"
		}
		t.AddRow(r.Metric, r.Paper, r.Measured, holds)
	}
	WriteTable(w, t)
}

// MarkdownTable renders a dataset.Table as GitHub-flavored markdown.
func MarkdownTable(t *dataset.Table) string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
