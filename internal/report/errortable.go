package report

import (
	"sort"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/errtax"
)

// taxonomyOrder is the Figure 4 presentation order for the per-code
// breakdown: pipeline stages first, the cross-stage verdict last.
var taxonomyOrder = []errtax.Category{
	errtax.CategoryDNSRecord,
	errtax.CategoryPolicy,
	errtax.CategoryMXCert,
	errtax.CategoryInconsistency,
}

// ErrorTaxonomyTable renders a per-code domain count (scanner's
// Summary.ByCode) grouped by Figure 4 category, codes sorted within
// each category. Codes with zero affected domains are omitted; the
// full catalog lives in docs/ERRORS.md.
func ErrorTaxonomyTable(title string, byCode map[errtax.Code]int) *dataset.Table {
	t := &dataset.Table{
		Title:   title,
		Headers: []string{"category", "code", "domains"},
	}
	perCat := make(map[errtax.Category][]errtax.Code)
	for code, n := range byCode {
		if n == 0 {
			continue
		}
		cat := errtax.CategoryOf(code)
		perCat[cat] = append(perCat[cat], code)
	}
	for _, cat := range taxonomyOrder {
		codes := perCat[cat]
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		for _, code := range codes {
			t.AddRow(string(cat), string(code), byCode[code])
		}
		delete(perCat, cat)
	}
	// Unregistered codes (future additions running against older docs)
	// still render rather than vanish.
	var rest []errtax.Code
	for _, codes := range perCat {
		rest = append(rest, codes...)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, code := range rest {
		t.AddRow(string(errtax.CategoryOf(code)), string(code), byCode[code])
	}
	return t
}
