// Package retry is the shared retry/backoff helper of the scan pipeline.
// Large-scale TLS and email measurement studies (Holz et al., Mayer et
// al.) retry and re-probe failing endpoints so that transient network
// conditions — lossy paths, SERVFAIL blips, slow or reset connections —
// are not misclassified as persistent misconfigurations; this package
// gives every client layer (resolver, policy fetcher, SMTP prober) the
// same budgeted, context-aware, observably-instrumented retry loop.
//
// A retried operation must distinguish transient from persistent
// failures: retrying NXDOMAIN or a certificate-verification failure
// wastes probes and changes nothing, while retrying a timeout or a
// connection reset separates a flaky path from a broken deployment.
// That classification lives in the typed error taxonomy: by default
// Policy.Do consults errtax.Transient, which reads the transient bit
// carried by typed errors and falls back to the shared socket-level
// heuristic (errtax.TransientNet) for untyped ones. Adopters no longer
// carry their own classifier funcs.
package retry
