package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
)

var errTransient = fmt.Errorf("blip: %w", syscall.ECONNRESET)

func noSleep(p *Policy) []time.Duration {
	var slept []time.Duration
	p.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return slept
}

func TestDoRecoversAfterTransientFailures(t *testing.T) {
	reg := obs.NewRegistry()
	p := Policy{Name: "x", MaxAttempts: 4, Obs: reg}
	noSleep(&p)
	ctx, stats := WithStats(context.Background())
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if stats.Attempts() != 3 || stats.Retries() != 2 || stats.Recovered() != 1 || stats.GaveUp() != 0 {
		t.Errorf("stats = %d/%d/%d/%d", stats.Attempts(), stats.Retries(), stats.Recovered(), stats.GaveUp())
	}
	if reg.Counter("x.retries").Value() != 2 || reg.Counter("x.retry.recovered").Value() != 1 {
		t.Errorf("counters: retries=%d recovered=%d",
			reg.Counter("x.retries").Value(), reg.Counter("x.retry.recovered").Value())
	}
}

func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	reg := obs.NewRegistry()
	p := Policy{Name: "x", MaxAttempts: 3, Obs: reg}
	noSleep(&p)
	ctx, stats := WithStats(context.Background())
	calls := 0
	err := p.Do(ctx, func(context.Context) error { calls++; return errTransient })
	if !errors.Is(err, syscall.ECONNRESET) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if stats.GaveUp() != 1 {
		t.Errorf("gaveUp = %d", stats.GaveUp())
	}
	if reg.Counter("x.gave_up").Value() != 1 {
		t.Errorf("x.gave_up = %d", reg.Counter("x.gave_up").Value())
	}
}

func TestDoDoesNotRetryPersistentErrors(t *testing.T) {
	p := Policy{MaxAttempts: 5, Transient: func(error) bool { return false }}
	noSleep(&p)
	calls := 0
	wantErr := errors.New("persistent")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return wantErr })
	if err != wantErr || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoZeroValueSingleAttempt(t *testing.T) {
	var p Policy
	ctx, stats := WithStats(context.Background())
	calls := 0
	if err := p.Do(ctx, func(context.Context) error { calls++; return errTransient }); err == nil {
		t.Fatal("want error")
	}
	if calls != 1 || stats.Attempts() != 1 || stats.GaveUp() != 0 {
		t.Errorf("calls=%d attempts=%d gaveUp=%d", calls, stats.Attempts(), stats.GaveUp())
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10}
	noSleep(&p)
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return errTransient
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBudgetSharedAcrossPolicies(t *testing.T) {
	b := NewBudget(3)
	p := Policy{MaxAttempts: 10, Budget: b}
	noSleep(&p)
	calls := 0
	// One op burns the whole budget: 1 first attempt + 3 retried.
	p.Do(context.Background(), func(context.Context) error { calls++; return errTransient })
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (1 + 3 budgeted retries)", calls)
	}
	// The next op gets no retries at all.
	calls = 0
	p.Do(context.Background(), func(context.Context) error { calls++; return errTransient })
	if calls != 1 {
		t.Errorf("calls = %d after budget exhausted, want 1", calls)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining = %d", b.Remaining())
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.backoff(1)
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [75ms, 125ms]", d)
		}
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// The nil-classifier default is errtax.Transient: socket-level failures
// retry, typed persistent verdicts and cancellation do not — and the
// typed transient bit survives Do's error passthrough, so errors.Is/As
// still resolve codes on what Do returns.
func TestDefaultClassifierIsErrtax(t *testing.T) {
	transient := []error{
		timeoutErr{},
		fmt.Errorf("recv: %w", io.EOF),
		io.ErrUnexpectedEOF,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		&net.OpError{Op: "read", Err: errors.New("weird")},
		context.DeadlineExceeded,
		errtax.New(errtax.LayerDNS, errtax.CodeServFail, true, "typed transient"),
	}
	for _, err := range transient {
		if !errtax.Transient(err) {
			t.Errorf("errtax.Transient(%v) = false", err)
		}
	}
	persistent := []error{
		nil,
		context.Canceled,
		errors.New("policy syntax error"),
		errtax.New(errtax.LayerDNS, errtax.CodeNXDomain, false, "typed persistent"),
	}
	for _, err := range persistent {
		if errtax.Transient(err) {
			t.Errorf("errtax.Transient(%v) = true", err)
		}
	}

	// A Policy with a nil Transient func must retry exactly the errors
	// errtax.Transient says to: a typed persistent error stops after one
	// attempt, a typed transient error consumes every attempt.
	sleep := func(context.Context, time.Duration) error { return nil }
	typedPersistent := errtax.New(errtax.LayerDNS, errtax.CodeNXDomain, false, "nope")
	calls := 0
	err := Policy{MaxAttempts: 3, Sleep: sleep}.Do(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("lookup: %w", typedPersistent)
	})
	if calls != 1 {
		t.Errorf("persistent typed error retried: %d attempts", calls)
	}
	if !errors.Is(err, typedPersistent) {
		t.Errorf("errors.Is lost the sentinel through Do: %v", err)
	}
	if c, ok := errtax.CodeOf(err); !ok || c != errtax.CodeNXDomain {
		t.Errorf("CodeOf(Do err) = %q, %v; want nxdomain", c, ok)
	}

	typedTransient := errtax.New(errtax.LayerDNS, errtax.CodeServFail, true, "blip")
	calls = 0
	err = Policy{MaxAttempts: 3, Sleep: sleep}.Do(context.Background(), func(context.Context) error {
		calls++
		return typedTransient
	})
	if calls != 3 {
		t.Errorf("transient typed error: %d attempts, want 3", calls)
	}
	var te *errtax.Error
	if !errors.As(err, &te) || te.Code != errtax.CodeServFail {
		t.Errorf("errors.As lost the typed error through Do: %v", err)
	}
}

func TestNilBudgetAndNilStats(t *testing.T) {
	var b *Budget
	if !b.Take() {
		t.Error("nil budget should allow retries")
	}
	var s *Stats
	if s.Attempts() != 0 || s.Retries() != 0 || s.Recovered() != 0 || s.GaveUp() != 0 {
		t.Error("nil stats should read zero")
	}
	if StatsFrom(context.Background()) != nil {
		t.Error("StatsFrom on bare context should be nil")
	}
}
