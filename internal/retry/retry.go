package retry

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
)

// Budget caps the total number of retries (attempts beyond an
// operation's first) spent across a whole run, so a badly degraded
// network cannot multiply scan cost without bound. A nil *Budget means
// unlimited. Safe for concurrent use.
type Budget struct{ left atomic.Int64 }

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int64) *Budget {
	b := &Budget{}
	b.left.Store(n)
	return b
}

// Take consumes one retry from the budget, reporting false when the
// budget is exhausted. A nil budget always allows.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	return b.left.Add(-1) >= 0
}

// Remaining returns the retries left (0 on an exhausted or nil budget).
func (b *Budget) Remaining() int64 {
	if b == nil {
		return 0
	}
	if n := b.left.Load(); n > 0 {
		return n
	}
	return 0
}

// Stats accumulates attempt accounting for every Policy.Do call that
// runs under one context — the scanner attaches one per domain so a
// DomainResult can record how hard its verdict was to obtain. All
// methods are safe on a nil receiver and for concurrent use.
type Stats struct {
	attempts  atomic.Int64
	retries   atomic.Int64
	recovered atomic.Int64
	gaveUp    atomic.Int64
}

// Attempts is the total number of operation attempts, including firsts.
func (s *Stats) Attempts() int64 {
	if s == nil {
		return 0
	}
	return s.attempts.Load()
}

// Retries is the number of attempts beyond each operation's first.
func (s *Stats) Retries() int64 {
	if s == nil {
		return 0
	}
	return s.retries.Load()
}

// Recovered counts operations that succeeded after at least one retry —
// verdicts that would have been misclassified without retrying.
func (s *Stats) Recovered() int64 {
	if s == nil {
		return 0
	}
	return s.recovered.Load()
}

// GaveUp counts operations that exhausted their attempts (or budget) on
// transient errors.
func (s *Stats) GaveUp() int64 {
	if s == nil {
		return 0
	}
	return s.gaveUp.Load()
}

type statsKey struct{}

// WithStats derives a context carrying a fresh Stats that every
// Policy.Do under it will feed.
func WithStats(ctx context.Context) (context.Context, *Stats) {
	s := &Stats{}
	return context.WithValue(ctx, statsKey{}, s), s
}

// StatsFrom returns the Stats carried by ctx, or nil.
func StatsFrom(ctx context.Context) *Stats {
	s, _ := ctx.Value(statsKey{}).(*Stats)
	return s
}

// Policy configures one layer's retry behavior. The zero value performs
// a single attempt (no retries) while still feeding context Stats, so
// adopters can wrap operations unconditionally.
type Policy struct {
	// Name prefixes the obs counters: <Name>.retries, <Name>.gave_up,
	// <Name>.retry.recovered, <Name>.retry.attempts.
	Name string
	// MaxAttempts bounds total attempts per operation; <= 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay is the first backoff (doubled per retry). Zero means
	// 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 2s.
	MaxDelay time.Duration
	// Jitter spreads each backoff uniformly over ±(Jitter/2)·delay.
	// Zero means 0.5; negative disables jitter.
	Jitter float64
	// Transient classifies an error as retryable. Nil means
	// errtax.Transient — the taxonomy-wide classifier, which is what
	// every pipeline layer uses; override only in tests.
	Transient func(error) bool
	// Budget, when non-nil, is the run-wide retry allowance shared with
	// other policies.
	Budget *Budget
	// Obs, when non-nil, receives the retry counters.
	Obs *obs.Registry
	// Sleep replaces the backoff sleep (tests). Nil means a
	// context-aware timer wait.
	Sleep func(context.Context, time.Duration) error
}

// Do runs op with the policy's retry loop: transient errors are retried
// with exponential backoff and jitter until the attempt or budget limit
// is hit, the context is done, or the error is persistent. It returns
// the last error. Attempts are recorded against the context's Stats
// (WithStats) and the policy's obs counters.
func (p Policy) Do(ctx context.Context, op func(context.Context) error) error {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	classify := p.Transient
	if classify == nil {
		classify = errtax.Transient
	}
	stats := StatsFrom(ctx)
	var err error
	for attempt := 1; ; attempt++ {
		err = op(ctx)
		if stats != nil {
			stats.attempts.Add(1)
		}
		p.Obs.Counter(p.Name + ".retry.attempts").Inc()
		if err == nil {
			if attempt > 1 {
				if stats != nil {
					stats.recovered.Add(1)
				}
				p.Obs.Counter(p.Name + ".retry.recovered").Inc()
			}
			return nil
		}
		if !classify(err) || ctx.Err() != nil {
			return err
		}
		if attempt >= maxAttempts || !p.Budget.Take() {
			// Transient and out of attempts: the caller's verdict may
			// not reflect the endpoint's steady state.
			if maxAttempts > 1 {
				if stats != nil {
					stats.gaveUp.Add(1)
				}
				p.Obs.Counter(p.Name + ".gave_up").Inc()
			}
			return err
		}
		if serr := p.sleep(ctx, p.backoff(attempt)); serr != nil {
			return err
		}
		if stats != nil {
			stats.retries.Add(1)
		}
		p.Obs.Counter(p.Name + ".retries").Inc()
	}
}

// backoff computes the delay before attempt+1: BaseDelay doubled per
// completed attempt, capped at MaxDelay, spread by the jitter fraction.
func (p Policy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxD; i++ {
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		// Uniform in [1-j/2, 1+j/2]; rand's global source is
		// goroutine-safe and jitter never affects scan outcomes.
		f := 1 + jitter*(rand.Float64()-0.5)
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
