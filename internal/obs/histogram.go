package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets covers the probe latencies of the measurement
// pipeline, from sub-millisecond loopback substrate round trips to the
// multi-second timeouts of unresponsive MXes (per-probe timeout defaults
// are 5–10s; 30s is the terminal overflow boundary). Values are upper
// bounds in seconds.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket cumulative histogram of float64 observations
// (seconds, for latency use). Observations are lock-free; bucket bounds
// are immutable after creation. All methods are safe on a nil receiver.
type Histogram struct {
	bounds []float64      // sorted upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// ObserveSince records the time elapsed since start. On a nil histogram
// it performs no clock read.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram, as exported
// in the /metrics JSON document.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum of all observations, seconds.
	Sum float64 `json:"sum"`
	// Buckets holds per-bucket (non-cumulative) counts; Bounds[i] is the
	// inclusive upper bound of Buckets[i]. Buckets has one more entry than
	// Bounds: the overflow (+Inf) bucket.
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot copies the current state. A nil histogram yields a zero
// snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear
// interpolation within the containing bucket, the standard fixed-bucket
// estimate. Observations in the overflow bucket are attributed to the
// largest finite bound. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, n := range s.Buckets {
		cum += n
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if n == 0 {
				return hi
			}
			frac := (rank - float64(cum-n)) / float64(n)
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
