package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// PrometheusExporter renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): every counter and gauge becomes
// one sample, histograms become cumulative `_bucket{le="..."}` series
// plus `_sum`/`_count`, and progress trackers become a small gauge
// family under `progress_<name>_*`. Metric names are the catalog's
// dotted names with each non-[a-zA-Z0-9_:] byte mapped to '_', so
// `scan.mx.cert.name-mismatch` scrapes as
// `scan_mx_cert_name_mismatch`. Output is sorted by name, so two
// exports of the same snapshot are byte-identical.
type PrometheusExporter struct{}

// PrometheusContentType is the text exposition format's content type.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Name implements Exporter.
func (PrometheusExporter) Name() string { return "prometheus" }

// ContentType implements Exporter.
func (PrometheusExporter) ContentType() string { return PrometheusContentType }

// Accepts implements Exporter: Prometheus scrapers ask for
// text/plain;version=0.0.4 (or the OpenMetrics type, which this text
// format is a compatible subset of for counters and gauges).
func (PrometheusExporter) Accepts(mediaRange string) bool {
	return mediaRange == "text/plain" || mediaRange == "text/*" ||
		mediaRange == "application/openmetrics-text"
}

// Export implements Exporter.
func (PrometheusExporter) Export(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	writeSample(bw, "uptime_seconds", "gauge", s.UptimeSeconds)
	for _, name := range sortedNames(s.Counters) {
		writeSample(bw, promName(name), "counter", float64(s.Counters[name]))
	}
	for _, name := range sortedNames(s.Gauges) {
		writeSample(bw, promName(name), "gauge", float64(s.Gauges[name]))
	}
	for _, name := range sortedNames(s.Histograms) {
		writeHistogram(bw, promName(name), s.Histograms[name])
	}
	for _, name := range sortedNames(s.Progress) {
		p := s.Progress[name]
		base := "progress_" + promName(name)
		writeSample(bw, base+"_total", "gauge", float64(p.Total))
		writeSample(bw, base+"_done", "gauge", float64(p.Done))
		writeSample(bw, base+"_in_flight", "gauge", float64(p.InFlight))
		writeSample(bw, base+"_rate_per_second", "gauge", p.RatePerSecond)
	}
	return bw.Flush()
}

// WritePrometheus writes the registry's snapshot in the Prometheus text
// format — the library-level twin of WriteJSON.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return PrometheusExporter{}.Export(w, r.Snapshot())
}

// promName maps a dotted catalog name onto the Prometheus name charset
// [a-zA-Z0-9_:], one '_' per rejected byte; a leading digit gains a '_'
// prefix.
func promName(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promValue renders a sample value: integral floats print without an
// exponent or decimal point, everything else in Go's shortest form
// (which Prometheus parses, including "+Inf" and "NaN").
func promValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w *bufio.Writer, name, typ string, v float64) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, promValue(v))
}

// writeHistogram renders one fixed-bucket histogram as the cumulative
// series Prometheus expects: bucket counts accumulate from the smallest
// bound up, and the +Inf bucket equals the total observation count.
func writeHistogram(w *bufio.Writer, name string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promValue(bound), cum)
	}
	if len(h.Buckets) > len(h.Bounds) {
		cum += h.Buckets[len(h.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, promValue(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}
