package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid no-op sink: every accessor
// returns a nil handle whose methods do nothing, so instrumented code
// never needs to branch.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	progress   map[string]*Progress
	start      time.Time
}

// NewRegistry returns an empty registry anchored at the current time.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
		progress:   make(map[string]*Progress),
		start:      time.Now(),
	}
}

// Enabled reports whether the registry records anything. Hot paths use it
// to skip clock reads when observability is off.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the idiom for exposing state owned elsewhere (cache sizes,
// pool depths) without mirroring writes. Re-registering a name replaces
// the previous function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (seconds) on first use. Buckets are only
// consulted at creation; later calls with different buckets return the
// existing histogram. Nil or empty buckets mean DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(buckets)
	r.hists[name] = h
	return h
}

// Progress returns the progress tracker registered under name, creating
// it on first use.
func (r *Registry) Progress(name string) *Progress {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	p, ok := r.progress[name]
	r.mu.RUnlock()
	if ok {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok = r.progress[name]; ok {
		return p
	}
	p = &Progress{}
	r.progress[name] = p
	return p
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. All methods are safe on a nil
// receiver.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
