package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventSink writes structured scan events as line-delimited JSON (JSONL),
// the post-hoc analysis channel: one self-contained object per line with
// an RFC 3339 timestamp and an event name, followed by the caller's
// fields. Writes are serialized; a nil *EventSink discards everything.
//
//	{"ts":"2026-08-05T12:00:00.123Z","event":"scan.domain","domain":"x.com",...}
type EventSink struct {
	mu      sync.Mutex
	w       io.Writer
	now     func() time.Time
	errored atomic.Bool // latched on first write/encode failure
	dropped atomic.Int64
}

// NewEventSink writes events to w. The caller owns w's lifecycle (and any
// buffering); Emit never closes it.
func NewEventSink(w io.Writer) *EventSink {
	if w == nil {
		return nil
	}
	return &EventSink{w: w, now: time.Now}
}

// Emit writes one event line. Reserved keys "ts" and "event" in fields
// are overwritten. Emit never fails: after a write error the sink latches
// into a dropping state (observable via Dropped) so a full disk cannot
// stall a scan.
func (s *EventSink) Emit(event string, fields map[string]any) {
	if s == nil {
		return
	}
	if s.errored.Load() {
		s.dropped.Add(1)
		return
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["ts"] = s.now().UTC().Format(time.RFC3339Nano)
	obj["event"] = event
	line, err := json.Marshal(obj)
	if err != nil {
		s.errored.Store(true)
		s.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	_, werr := s.w.Write(line)
	s.mu.Unlock()
	if werr != nil {
		s.errored.Store(true)
		s.dropped.Add(1)
	}
}

// Dropped returns the number of events lost to encode/write failures
// (0 on nil).
func (s *EventSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}
