package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
)

// Exporter renders a registry snapshot in one wire format. The exporter
// set is pluggable: the built-in JSON and Prometheus exporters register
// at init, and RegisterExporter can add (or replace) formats without
// touching the HTTP layer. /metrics picks an exporter per request via
// content negotiation (see NegotiateExporter) and sets the response
// Content-Type from the exporter itself.
type Exporter interface {
	// Name is the exporter's stable key, used by the ?format= query
	// parameter ("json", "prometheus").
	Name() string
	// ContentType is the exact Content-Type header value for responses
	// rendered by this exporter.
	ContentType() string
	// Accepts reports whether the exporter serves the given Accept
	// media range (lowercased, parameters stripped — "text/plain",
	// "application/json", "*/*").
	Accepts(mediaRange string) bool
	// Export writes the snapshot to w.
	Export(w io.Writer, s Snapshot) error
}

var (
	exporterMu sync.RWMutex
	// exporters is ordered: negotiation tries each Accept media range
	// against the list in order, and the first exporter (JSON) is the
	// default when nothing matches — existing scrapers and the curl
	// examples in docs/OBSERVABILITY.md keep getting JSON.
	exporters = []Exporter{JSONExporter{}, PrometheusExporter{}}
)

// RegisterExporter adds an exporter to the negotiation set, replacing
// any registered exporter with the same Name.
func RegisterExporter(e Exporter) {
	exporterMu.Lock()
	defer exporterMu.Unlock()
	for i, have := range exporters {
		if have.Name() == e.Name() {
			exporters[i] = e
			return
		}
	}
	exporters = append(exporters, e)
}

// Exporters returns the registered exporters in negotiation order.
func Exporters() []Exporter {
	exporterMu.RLock()
	defer exporterMu.RUnlock()
	out := make([]Exporter, len(exporters))
	copy(out, exporters)
	return out
}

// ExporterFor looks an exporter up by Name.
func ExporterFor(name string) (Exporter, bool) {
	for _, e := range Exporters() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// negotiate picks the exporter for a request: an explicit ?format=name
// wins; otherwise the Accept header's media ranges are tried in order
// and the first exporter accepting one is chosen; otherwise the default
// (JSON) exporter answers.
func negotiate(format, accept string) Exporter {
	all := Exporters()
	if format != "" {
		for _, e := range all {
			if e.Name() == format {
				return e
			}
		}
	}
	for _, part := range strings.Split(accept, ",") {
		mr, _, _ := strings.Cut(part, ";")
		mr = strings.ToLower(strings.TrimSpace(mr))
		if mr == "" {
			continue
		}
		for _, e := range all {
			if e.Accepts(mr) {
				return e
			}
		}
	}
	return all[0]
}

// JSONExporter renders the snapshot as the indented JSON document that
// has always been the /metrics default.
type JSONExporter struct{}

// Name implements Exporter.
func (JSONExporter) Name() string { return "json" }

// ContentType implements Exporter.
func (JSONExporter) ContentType() string { return "application/json; charset=utf-8" }

// Accepts implements Exporter: JSON serves application/json and is the
// wildcard default.
func (JSONExporter) Accepts(mediaRange string) bool {
	return mediaRange == "application/json" || mediaRange == "*/*" || mediaRange == "application/*"
}

// Export implements Exporter.
func (JSONExporter) Export(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
