package obs

import (
	"context"
	"time"
)

// ctxKey carries a *Registry through a context.
type ctxKey struct{}

// WithRegistry returns a context carrying r, for code that times stages
// via the package-level StartSpan without threading a registry through
// every signature.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the registry carried by ctx, or nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// Span is a stage timer. Ending a span named "policy.fetch" records one
// observation in the "policy.fetch.seconds" histogram, increments
// "policy.fetch.total", and — when the outcome is an error —
// "policy.fetch.errors". A nil *Span (from a nil registry) is a no-op
// and performs no clock reads.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins timing a stage against the registry carried by ctx.
// Returns nil (a no-op span) when ctx carries no registry.
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).StartSpan(name)
}

// StartSpan begins timing a stage against r. Returns nil on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now()}
}

// End records the span with a success outcome and returns its duration.
func (s *Span) End() time.Duration { return s.EndErr(nil) }

// EndErr records the span, counting err (when non-nil) against
// "<name>.errors". It returns the measured duration (0 on a nil span).
func (s *Span) EndErr(err error) time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.Histogram(s.name+".seconds", nil).ObserveDuration(d)
	s.r.Counter(s.name + ".total").Inc()
	if err != nil {
		s.r.Counter(s.name + ".errors").Inc()
	}
	return d
}
