package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one Prometheus text-format sample:
// name{label="value",...} value
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([+-]?Inf|NaN|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)

// promRegistry builds a registry holding one metric of every kind the
// package supports, with known values.
func promRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("scan.domains.total").Add(42)
	r.Gauge("queue.depth").Set(7)
	r.GaugeFunc("cache.entries", func() int64 { return 3 })
	h := r.Histogram("dns.lookup.seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.05)  // bucket le=0.1
	h.Observe(0.5)   // bucket le=1
	h.Observe(5)     // overflow bucket
	p := r.Progress("scan")
	p.SetTotal(10)
	p.Start()
	p.Start()
	p.Done()
	return r
}

// parsePromText parses a full Prometheus text document, failing the
// test on any line that is neither a comment nor a valid sample.
// Returns samples keyed by name+labels and the set of TYPE
// declarations.
func parsePromText(t *testing.T, body string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line: %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return samples, types
}

// TestPrometheusExportParses is the regression test for the /metrics
// format bug: every registered metric kind must appear in the
// Prometheus output, every line must parse, and histogram buckets must
// be cumulative.
func TestPrometheusExportParses(t *testing.T) {
	r := promRegistry(t)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, types := parsePromText(t, sb.String())

	wantTypes := map[string]string{
		"uptime_seconds":     "gauge",
		"scan_domains_total": "counter",
		"queue_depth":        "gauge",
		"cache_entries":      "gauge",
		"dns_lookup_seconds": "histogram",
		// Progress tracker gauge family.
		"progress_scan_total":           "gauge",
		"progress_scan_done":            "gauge",
		"progress_scan_in_flight":       "gauge",
		"progress_scan_rate_per_second": "gauge",
	}
	for name, typ := range wantTypes {
		if got := types[name]; got != typ {
			t.Errorf("TYPE %s = %q, want %q", name, got, typ)
		}
	}

	wantValues := map[string]float64{
		"scan_domains_total":                     42,
		"queue_depth":                            7,
		"cache_entries":                          3,
		"dns_lookup_seconds_bucket{le=\"0.01\"}": 1,
		"dns_lookup_seconds_bucket{le=\"0.1\"}":  2,
		"dns_lookup_seconds_bucket{le=\"1\"}":    3,
		"dns_lookup_seconds_bucket{le=\"+Inf\"}": 4,
		"dns_lookup_seconds_count":               4,
		"progress_scan_total":                    10,
		"progress_scan_done":                     1,
		"progress_scan_in_flight":                1,
	}
	for key, want := range wantValues {
		got, ok := samples[key]
		if !ok {
			t.Errorf("sample %s missing", key)
			continue
		}
		if got != want {
			t.Errorf("sample %s = %v, want %v", key, got, want)
		}
	}
	wantSum := 0.005 + 0.05 + 0.5 + 5
	if got := samples["dns_lookup_seconds_sum"]; got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	if _, ok := samples["uptime_seconds"]; !ok {
		t.Errorf("uptime_seconds sample missing")
	}
}

// TestPrometheusExportDeterministic locks the sorted-output guarantee.
func TestPrometheusExportDeterministic(t *testing.T) {
	r := promRegistry(t)
	s := r.Snapshot()
	var a, b strings.Builder
	if err := (PrometheusExporter{}).Export(&a, s); err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := (PrometheusExporter{}).Export(&b, s); err != nil {
		t.Fatalf("export: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("same snapshot exported differently:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"scan.domains.total":         "scan_domains_total",
		"scan.mx.cert.name-mismatch": "scan_mx_cert_name_mismatch",
		"already_fine:ok":            "already_fine:ok",
		"9lives":                     "_9lives",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsContentNegotiation is the regression test for the
// hardcoded-format bug: /metrics must pick the exporter (and the
// Content-Type) from the request.
func TestMetricsContentNegotiation(t *testing.T) {
	r := promRegistry(t)
	h := r.Handler()

	cases := []struct {
		name       string
		url        string
		accept     string
		wantCT     string
		wantPrefix string
	}{
		{"default is JSON", "/metrics", "", "application/json; charset=utf-8", "{"},
		{"curl wildcard stays JSON", "/metrics", "*/*", "application/json; charset=utf-8", "{"},
		{"accept text/plain", "/metrics", "text/plain", PrometheusContentType, "# TYPE"},
		{"prometheus scraper accept", "/metrics",
			"application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1",
			PrometheusContentType, "# TYPE"},
		{"format param wins over accept", "/metrics?format=prometheus", "application/json",
			PrometheusContentType, "# TYPE"},
		{"format json explicit", "/metrics?format=json", "text/plain",
			"application/json; charset=utf-8", "{"},
		{"unknown format falls back to accept", "/metrics?format=xml", "text/plain",
			PrometheusContentType, "# TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.url, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if got := rec.Header().Get("Content-Type"); got != tc.wantCT {
				t.Errorf("Content-Type = %q, want %q", got, tc.wantCT)
			}
			if body := rec.Body.String(); !strings.HasPrefix(body, tc.wantPrefix) {
				t.Errorf("body starts %q, want prefix %q", body[:min(len(body), 40)], tc.wantPrefix)
			}
		})
	}
}

// TestPrometheusViaServer drives the real obs.Server end to end so the
// negotiated scrape path (listener included) is covered.
func TestPrometheusViaServer(t *testing.T) {
	r := promRegistry(t)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/metrics", nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", got, PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	samples, _ := parsePromText(t, string(body))
	if samples["scan_domains_total"] != 42 {
		t.Fatalf("scraped scan_domains_total = %v, want 42", samples["scan_domains_total"])
	}
}

func TestRegisterExporterReplaces(t *testing.T) {
	before := len(Exporters())
	orig, ok := ExporterFor("prometheus")
	if !ok {
		t.Fatal("prometheus exporter not registered")
	}
	t.Cleanup(func() { RegisterExporter(orig) })
	RegisterExporter(PrometheusExporter{})
	if got := len(Exporters()); got != before {
		t.Fatalf("re-registering same name grew the set: %d -> %d", before, got)
	}
}
