package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry — the
// /metrics document. Maps are keyed by metric name; GaugeFuncs are
// evaluated at snapshot time and merged into Gauges.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Progress      map[string]ProgressSnapshot  `json:"progress"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Progress:   make(map[string]ProgressSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	progress := make(map[string]*Progress, len(r.progress))
	for k, v := range r.progress {
		progress[k] = v
	}
	start := r.start
	r.mu.RUnlock()

	s.UptimeSeconds = time.Since(start).Seconds()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	// GaugeFuncs run outside the registry lock: they may call back into
	// arbitrary instrumented code.
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	for k, p := range progress {
		s.Progress[k] = p.Snapshot()
	}
	return s
}

// SummaryRows flattens the snapshot into sorted (metric, value) string
// pairs for end-of-run summary tables: counters and gauges verbatim,
// histograms as count/mean/p50/p95, progress as done/total with the mean
// rate. Zero-count histograms and empty progress trackers are elided.
func (s Snapshot) SummaryRows() [][2]string {
	var rows [][2]string
	for _, name := range sortedNames(s.Counters) {
		rows = append(rows, [2]string{name, fmt.Sprintf("%d", s.Counters[name])})
	}
	for _, name := range sortedNames(s.Gauges) {
		rows = append(rows, [2]string{name, fmt.Sprintf("%d", s.Gauges[name])})
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		rows = append(rows, [2]string{name, fmt.Sprintf(
			"n=%d mean=%s p50=%s p95=%s",
			h.Count, fmtSeconds(h.Mean()), fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.95)))})
	}
	for _, name := range sortedNames(s.Progress) {
		p := s.Progress[name]
		if p.Total == 0 && p.Done == 0 {
			continue
		}
		rows = append(rows, [2]string{"progress." + name, fmt.Sprintf(
			"%d/%d done, %.1f/s", p.Done, p.Total, p.RatePerSecond)})
	}
	return rows
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fmtSeconds(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// WriteJSON writes the snapshot as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the snapshot — the /metrics endpoint. The response
// format is negotiated per request: an explicit ?format=name
// (?format=prometheus) wins, then the Accept header's media ranges in
// order, and requests stating no preference get the historical JSON
// document. Content-Type always matches the exporter that rendered the
// body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		exp := negotiate(req.URL.Query().Get("format"), req.Header.Get("Accept"))
		w.Header().Set("Content-Type", exp.ContentType())
		if err := exp.Export(w, r.Snapshot()); err != nil {
			// The response is underway, so the error cannot reach the
			// client; count it where the next scrape will see it.
			r.Counter("obs.export.errors").Inc()
		}
	})
}

// ProgressHandler serves only the progress trackers — the cheap
// /debug/scanprogress endpoint a watcher can poll at high frequency.
func (r *Registry) ProgressHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		out := make(map[string]ProgressSnapshot)
		if r != nil {
			r.mu.RLock()
			progress := make(map[string]*Progress, len(r.progress))
			for k, v := range r.progress {
				progress[k] = v
			}
			r.mu.RUnlock()
			for k, p := range progress {
				out[k] = p.Snapshot()
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			r.Counter("obs.export.errors").Inc()
		}
	})
}

// NewServeMux mounts the observability endpoints:
//
//	/metrics             full snapshot (counters, gauges, histograms, progress)
//	/debug/scanprogress  progress trackers only
//	/debug/vars          the stdlib expvar document
func (r *Registry) NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/scanprogress", r.ProgressHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// PublishExpvar exposes the registry under name in the process-global
// expvar namespace (visible at /debug/vars), making the export readable
// by any expvar-speaking collector. Publishing the same name twice
// panics (an expvar invariant), so call once per process. No-op on a nil
// registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Server is a running metrics HTTP listener.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	done     chan struct{}
	serveErr error // set before done closes
}

// Serve starts an HTTP server for the registry's endpoints on addr
// ("host:port"; port 0 picks a free port). It returns once the listener
// is bound; requests are served in the background until Close.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: r.NewServeMux()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.serveErr = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, waits for the serve loop to exit, and
// reports any error the loop died with.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	if err == nil {
		err = s.serveErr
	}
	return err
}
