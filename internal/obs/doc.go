// Package obs is the scanner's observability layer: a dependency-free
// (stdlib-only) metrics registry, stage timers, progress tracking, and a
// structured scan-event sink, sized for the paper's apparatus (weekly
// scans over 87M domains for 31 months — §3.1), where per-stage failure
// rates, probe latencies, and resolver behavior must be watchable while a
// run is in flight and analyzable after it ends.
//
// # Design
//
// The package has four building blocks:
//
//   - Registry: a named collection of Counters (monotonic, atomic),
//     Gauges (instantaneous, atomic), GaugeFuncs (computed at snapshot
//     time), fixed-bucket latency Histograms, and Progress trackers.
//     Metric names are dotted paths ("resolver.cache.hits"); variable
//     dimensions are encoded as a final name segment
//     ("scan.policy.stage_errors.tls"), keeping the implementation free
//     of label maps on the hot path.
//
//   - Span: a lightweight stage timer. StartSpan(ctx, "policy.fetch")
//     (or Registry.StartSpan) captures a start time; End/EndErr records
//     a latency observation into "<name>.seconds", increments
//     "<name>.total", and — on error — "<name>.errors". Spans are values
//     created per call; they allocate nothing beyond themselves and are
//     free when the registry is nil.
//
//   - EventSink: a line-delimited JSON (JSONL) writer for per-domain
//     scan events, the post-hoc analysis channel. Each Emit produces one
//     self-contained JSON object with a timestamp and an event name.
//
//   - HTTP export: Registry.Handler serves the full snapshot as a JSON
//     document (expvar-style flat map), Registry.Serve mounts it at
//     /metrics together with /debug/scanprogress (progress only) and
//     the stdlib /debug/vars.
//
// # Nil safety
//
// Every constructor-returned type is nil-safe: a nil *Registry hands out
// nil *Counter/*Gauge/*Histogram/*Progress/*Span handles whose methods
// are no-ops, so library code instruments unconditionally —
//
//	r.Obs.Counter("scan.domains.total").Inc()
//
// — and callers that never set Obs pay only a nil check. Hot paths that
// would otherwise call time.Now guard on Enabled() (or a nil handle) so
// the disabled configuration performs no clock reads.
//
// The metric catalog, bucket layouts, and the mapping from metric names
// to the paper's pipeline stages (§4.1, Figure 5) are documented in
// docs/OBSERVABILITY.md.
package obs
