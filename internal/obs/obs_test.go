package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 64, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.concurrent")
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.concurrent").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(5)
	c.Add(-3) // ignored
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
	// Same name returns the same gauge.
	if r.Gauge("g").Value() != 6 {
		t.Error("gauge identity lost across lookups")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.GaugeFunc("computed", func() int64 { return n })
	n = 42
	snap := r.Snapshot()
	if snap.Gauges["computed"] != 42 {
		t.Errorf("computed gauge = %d, want 42", snap.Gauges["computed"])
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Buckets: <=0.01 gets 0.005 and 0.01 (upper bound inclusive);
	// <=0.1 gets 0.05; <=1 gets 0.5; overflow gets 2 and 100.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if wantSum := 0.005 + 0.01 + 0.05 + 0.5 + 2 + 100; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if m := s.Mean(); math.Abs(m-s.Sum/6) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(i%10) / 100)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != 32*500 {
		t.Errorf("count = %d, want %d", got, 32*500)
	}
	s := h.Snapshot()
	total := int64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	// 100 observations uniform over buckets 1..5.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%5)/10 + 0.05)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 0.2 || q > 0.35 {
		t.Errorf("p50 = %v, want ~0.25", q)
	}
	if q := s.Quantile(0.99); q < 0.4 || q > 0.5 {
		t.Errorf("p99 = %v, want in (0.4, 0.5]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	// None of these may panic, and all handles must be nil-safe.
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if r.Counter("c").Value() != 0 {
		t.Error("nil counter has a value")
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Dec()
	r.GaugeFunc("f", func() int64 { return 1 })
	r.Histogram("h", nil).Observe(1)
	r.Histogram("h", nil).ObserveSince(time.Time{})
	r.Progress("p").SetTotal(10)
	r.Progress("p").Start()
	r.Progress("p").Done()
	if d := r.StartSpan("s").EndErr(errors.New("x")); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if StartSpan(context.Background(), "s").End() != 0 {
		t.Error("context span without registry should be a no-op")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Progress) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	var sink *EventSink
	sink.Emit("e", map[string]any{"k": "v"}) // must not panic
	if sink.Dropped() != 0 {
		t.Error("nil sink dropped != 0")
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("policy.fetch")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("duration = %v", d)
	}
	r.StartSpan("policy.fetch").EndErr(errors.New("boom"))
	snap := r.Snapshot()
	if snap.Counters["policy.fetch.total"] != 2 {
		t.Errorf("total = %d, want 2", snap.Counters["policy.fetch.total"])
	}
	if snap.Counters["policy.fetch.errors"] != 1 {
		t.Errorf("errors = %d, want 1", snap.Counters["policy.fetch.errors"])
	}
	if h := snap.Histograms["policy.fetch.seconds"]; h.Count != 2 || h.Sum <= 0 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestSpanFromContext(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("registry not carried by context")
	}
	StartSpan(ctx, "ctx.stage").End()
	if r.Snapshot().Counters["ctx.stage.total"] != 1 {
		t.Error("context span did not record")
	}
}

func TestProgress(t *testing.T) {
	r := NewRegistry()
	p := r.Progress("scan")
	p.SetTotal(10)
	for i := 0; i < 4; i++ {
		p.Start()
		p.Done()
	}
	s := p.Snapshot()
	if s.Total != 10 || s.Done != 4 || s.InFlight != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.ElapsedSeconds < 0 || s.RatePerSecond < 0 {
		t.Errorf("negative elapsed/rate: %+v", s)
	}
}

func TestEventSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	s.Emit("scan.domain", map[string]any{"domain": "a.com", "ok": true})
	s.Emit("scan.domain", map[string]any{"domain": "b.com", "ok": false})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if obj["event"] != "scan.domain" || obj["domain"] != "a.com" || obj["ts"] == "" {
		t.Errorf("event = %+v", obj)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestEventSinkLatchesOnError(t *testing.T) {
	s := NewEventSink(failWriter{})
	s.Emit("a", nil)
	s.Emit("b", nil)
	if got := s.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if NewEventSink(nil) != nil {
		t.Error("NewEventSink(nil) should return nil")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("scan.domains.total").Add(7)
	r.Gauge("scanner.workers.busy").Set(3)
	r.Histogram("scan.domain.seconds", nil).Observe(0.02)
	r.Progress("scan").SetTotal(100)
	r.Progress("scan").Add(7)

	srv := httptest.NewServer(r.NewServeMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["scan.domains.total"] != 7 {
		t.Errorf("counter = %d", snap.Counters["scan.domains.total"])
	}
	if snap.Histograms["scan.domain.seconds"].Count != 1 {
		t.Errorf("histogram = %+v", snap.Histograms["scan.domain.seconds"])
	}

	resp2, err := http.Get(srv.URL + "/debug/scanprogress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var prog map[string]ProgressSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	if prog["scan"].Total != 100 || prog["scan"].Done != 7 {
		t.Errorf("progress = %+v", prog["scan"])
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	s, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
