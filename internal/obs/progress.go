package obs

import (
	"sync/atomic"
	"time"
)

// Progress tracks completion of a bounded run (a snapshot scan over a
// domain list). It is safe for concurrent use and on a nil receiver.
type Progress struct {
	total      atomic.Int64
	done       atomic.Int64
	inFlight   atomic.Int64
	startNanos atomic.Int64 // unix nanos of the first Start/Add; 0 = not started
}

func (p *Progress) markStarted() {
	if p.startNanos.Load() != 0 {
		return
	}
	p.startNanos.CompareAndSwap(0, time.Now().UnixNano())
}

// SetTotal declares the number of work items in the run.
func (p *Progress) SetTotal(n int64) {
	if p == nil {
		return
	}
	p.total.Store(n)
	p.markStarted()
}

// Start marks one item as in flight.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.markStarted()
	p.inFlight.Add(1)
}

// Done marks one in-flight item as completed.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.inFlight.Add(-1)
	p.done.Add(1)
}

// Add marks n items completed without the Start/Done pairing (for callers
// that do not track in-flight state).
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.markStarted()
	p.done.Add(n)
}

// Completed returns the number of completed items (0 on nil).
func (p *Progress) Completed() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// ProgressSnapshot is the exported state of a Progress, served at
// /debug/scanprogress.
type ProgressSnapshot struct {
	Total    int64 `json:"total"`
	Done     int64 `json:"done"`
	InFlight int64 `json:"in_flight"`
	// ElapsedSeconds since the first item started (0 when idle).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// RatePerSecond is the mean completion rate over the elapsed window.
	RatePerSecond float64 `json:"rate_per_second"`
	// ETASeconds extrapolates the remaining items at the current rate
	// (0 when the total is unknown or the rate is zero).
	ETASeconds float64 `json:"eta_seconds"`
}

// Snapshot copies the current state. A nil progress yields a zero
// snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Total:    p.total.Load(),
		Done:     p.done.Load(),
		InFlight: p.inFlight.Load(),
	}
	if start := p.startNanos.Load(); start != 0 {
		s.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.ElapsedSeconds > 0 {
		s.RatePerSecond = float64(s.Done) / s.ElapsedSeconds
	}
	if s.RatePerSecond > 0 && s.Total > s.Done {
		s.ETASeconds = float64(s.Total-s.Done) / s.RatePerSecond
	}
	return s
}
