package tlsrpt

import (
	"errors"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		ruas int
	}{
		{"v=TLSRPTv1; rua=mailto:tls-reports@example.com", 1},
		{"v=TLSRPTv1; rua=mailto:a@x.com,mailto:b@y.com", 2},
		{"v=TLSRPTv1; rua=https://reporting.example.com/v1", 1},
		{"v=TLSRPTv1;rua=mailto:r@example.com;", 1},
		{"v=TLSRPTv1; rua=mailto:r@example.com; ext=1", 1},
	}
	for _, c := range cases {
		rec, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if len(rec.RUAs) != c.ruas || rec.Version != Version {
			t.Errorf("Parse(%q) = %+v", c.in, rec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"v=TLSRPTv2; rua=mailto:a@b.c", ErrBadVersion},
		{"rua=mailto:a@b.c", ErrBadVersion},
		{"v=TLSRPTv1", ErrNoRUA},
		{"v=TLSRPTv1; rua=", ErrBadRUA},
		{"v=TLSRPTv1; rua=ftp://x", ErrBadRUA},
		{"v=TLSRPTv1; rua=mailto:nodomain", ErrBadRUA},
		{"v=TLSRPTv1; rua=mailto:a@b.c; ;x=1", ErrBadField},
		{"v=TLSRPTv1; badfield; rua=mailto:a@b.c", ErrBadField},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) err = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestDiscover(t *testing.T) {
	rec, err := Discover([]string{"v=spf1 -all", "v=TLSRPTv1; rua=mailto:r@example.com"})
	if err != nil || len(rec.RUAs) != 1 {
		t.Errorf("Discover = %+v, %v", rec, err)
	}
	if _, err := Discover([]string{"v=spf1 -all"}); !errors.Is(err, ErrNoRecord) {
		t.Errorf("no record err = %v", err)
	}
	_, err = Discover([]string{"v=TLSRPTv1; rua=mailto:a@b.c", "v=TLSRPTv1; rua=mailto:d@e.f"})
	if !errors.Is(err, ErrMultipleRecords) {
		t.Errorf("multiple err = %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	rec := Record{Version: Version, RUAs: []string{"mailto:a@b.c", "https://r.example/v1"},
		Extensions: []Field{{"ext", "val"}}}
	rec2, err := Parse(rec.String())
	if err != nil {
		t.Fatalf("round-trip: %v (%q)", err, rec.String())
	}
	if len(rec2.RUAs) != 2 || len(rec2.Extensions) != 1 {
		t.Errorf("round-trip = %+v", rec2)
	}
}

func TestRecordName(t *testing.T) {
	if RecordName("example.com") != "_smtp._tls.example.com" {
		t.Error("RecordName mismatch")
	}
}

func TestHasPrefix(t *testing.T) {
	if !HasPrefix("v=TLSRPTv1; rua=mailto:a@b.c") || !HasPrefix("v = TLSRPTv1") {
		t.Error("HasPrefix false negative")
	}
	if HasPrefix("v=TLSRPTv11") || HasPrefix("v=tlsrptv1") || HasPrefix("") {
		t.Error("HasPrefix false positive")
	}
}
