package tlsrpt

import (
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
)

// validReportJSON builds a well-formed one-policy report the malformed
// cases below mutate.
func validReportJSON(t *testing.T) []byte {
	t.Helper()
	r := NewReport("Example Org", "sts@example.com", "2026-08-01-example",
		time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
	r.AddSuccess(PolicyTypeSTS, "example.com", 120)
	r.AddFailure(PolicyTypeSTS, "example.com", ResultCertificateExpired, "mx1.example.com", 3)
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestIngestReportValid(t *testing.T) {
	r, err := IngestReport(validReportJSON(t))
	if err != nil {
		t.Fatalf("IngestReport(valid): %v", err)
	}
	if r.ReportID != "2026-08-01-example" {
		t.Fatalf("report-id = %q", r.ReportID)
	}
	if got := r.Domains(); len(got) != 1 || got[0] != "example.com" {
		t.Fatalf("Domains() = %v", got)
	}
	want := "2026-08-01T00:00:00Z..2026-08-02T00:00:00Z"
	if got := r.DateRange.WindowKey(); got != want {
		t.Fatalf("WindowKey() = %q, want %q", got, want)
	}
}

// TestIngestReportRejections is the regression test for the
// silent-acceptance bug: each malformed shape must be rejected with its
// registered errtax code.
func TestIngestReportRejections(t *testing.T) {
	valid := string(validReportJSON(t))
	cases := []struct {
		name string
		body string
		code errtax.Code
	}{
		{"not json", `{"organization-name": `, errtax.CodeReportParse},
		{"wrong type", `[1,2,3]`, errtax.CodeReportParse},
		{"missing report-id",
			strings.Replace(valid, `"report-id": "2026-08-01-example"`, `"report-id": ""`, 1),
			errtax.CodeReportMissingID},
		{"missing window",
			strings.Replace(valid, `"start-datetime": "2026-08-01T00:00:00Z"`, `"start-datetime": "0001-01-01T00:00:00Z"`, 1),
			errtax.CodeReportBadWindow},
		{"inverted window",
			strings.Replace(valid, `"end-datetime": "2026-08-02T00:00:00Z"`, `"end-datetime": "2026-07-01T00:00:00Z"`, 1),
			errtax.CodeReportBadWindow},
		{"empty policy-domain",
			strings.Replace(valid, `"policy-domain": "example.com"`, `"policy-domain": ""`, 1),
			errtax.CodeReportEmptyPolicyDomain},
		{"count mismatch",
			strings.Replace(valid, `"total-failure-session-count": 3`, `"total-failure-session-count": 7`, 1),
			errtax.CodeReportCountMismatch},
		{"negative failure count",
			strings.Replace(
				strings.Replace(valid, `"failed-session-count": 3`, `"failed-session-count": -3`, 1),
				`"total-failure-session-count": 3`, `"total-failure-session-count": -3`, 1),
			errtax.CodeReportCountMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := IngestReport([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted malformed report:\n%s", tc.body)
			}
			if code, ok := errtax.CodeOf(err); !ok || code != tc.code {
				t.Fatalf("error code = %v (typed=%v), want %s; err: %v", code, ok, tc.code, err)
			}
			if errtax.Transient(err) {
				t.Fatalf("ingestion rejection classified transient: %v", err)
			}
		})
	}
}

func TestIngestReportDuplicatePolicy(t *testing.T) {
	r := NewReport("Example Org", "sts@example.com", "dup",
		time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
	r.AddSuccess(PolicyTypeSTS, "example.com", 1)
	// Append a second section with the same key behind Policy()'s back —
	// exactly what a malicious or buggy sender would POST.
	r.Policies = append(r.Policies, r.Policies[0])
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := IngestReport(data); !errtax.HasCode(err, errtax.CodeReportDuplicatePolicy) {
		t.Fatalf("duplicate policy section not rejected: %v", err)
	}
	// Distinct policy types for one domain are legal (RFC 8460 allows
	// sts and tlsa sections side by side).
	r.Policies[1].Policy.PolicyType = PolicyTypeTLSA
	data, err = r.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := IngestReport(data); err != nil {
		t.Fatalf("distinct policy types rejected: %v", err)
	}
}

// FuzzIngestReport drives the ingestion validator with malformed report
// JSON: it must never panic, never accept a report that then fails
// Validate's arithmetic, and reject with a typed code whenever it
// rejects.
func FuzzIngestReport(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"report-id":""}`))
	f.Add([]byte(`{"report-id":"x"}`))
	f.Add([]byte(`{"report-id":"x","date-range":{"start-datetime":"2026-08-02T00:00:00Z","end-datetime":"2026-08-01T00:00:00Z"}}`))
	f.Add([]byte(`{"report-id":"x","date-range":{"start-datetime":"2026-08-01T00:00:00Z","end-datetime":"2026-08-02T00:00:00Z"},"policies":[{"policy":{"policy-type":"sts","policy-domain":""}}]}`))
	f.Add([]byte(`{"report-id":"x","date-range":{"start-datetime":"2026-08-01T00:00:00Z","end-datetime":"2026-08-02T00:00:00Z"},"policies":[{"policy":{"policy-type":"sts","policy-domain":"a.example"},"summary":{"total-failure-session-count":5}}]}`))
	f.Add([]byte(`{"report-id":"x","date-range":{"start-datetime":"2026-08-01T00:00:00Z","end-datetime":"2026-08-02T00:00:00Z"},"policies":[{"policy":{"policy-type":"sts","policy-domain":"a.example"}},{"policy":{"policy-type":"sts","policy-domain":"a.example"}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := IngestReport(data)
		if err != nil {
			code, ok := errtax.CodeOf(err)
			if !ok {
				t.Fatalf("untyped ingestion rejection: %v", err)
			}
			if _, registered := errtax.Lookup(code); !registered {
				t.Fatalf("rejection carries unregistered code %q", code)
			}
			return
		}
		// Accepted reports must satisfy the weaker legacy validator too.
		if err := r.Validate(); err != nil {
			t.Fatalf("IngestReport accepted a report Validate rejects: %v", err)
		}
		if r.ReportID == "" {
			t.Fatal("accepted report without report-id")
		}
	})
}
