package tlsrpt

import (
	"encoding/json"
	"fmt"
	"time"
)

// This file implements the aggregate report format of RFC 8460 §4: the
// JSON document a sending MTA delivers to the rua destinations declared in
// a TLSRPT record, summarizing its TLS/MTA-STS/DANE outcomes for one
// policy domain over one day. The paper's Appendix B notes only Google and
// Microsoft send these today; this implementation lets the sender-MTA
// substrate generate and consume them.

// PolicyType is the mechanism a report section describes.
type PolicyType string

// RFC 8460 §4.3 policy types.
const (
	PolicyTypeTLSA   PolicyType = "tlsa"
	PolicyTypeSTS    PolicyType = "sts"
	PolicyTypeNoFind PolicyType = "no-policy-found"
)

// ResultType is a failure classification (RFC 8460 §4.3).
type ResultType string

// Failure result types used by the reproduction.
const (
	ResultSTARTTLSNotSupported    ResultType = "starttls-not-supported"
	ResultCertificateExpired      ResultType = "certificate-expired"
	ResultCertificateNotTrusted   ResultType = "certificate-not-trusted"
	ResultCertificateHostMismatch ResultType = "certificate-host-mismatch"
	ResultValidationFailure       ResultType = "validation-failure"
	ResultSTSPolicyFetchError     ResultType = "sts-policy-fetch-error"
	ResultSTSPolicyInvalid        ResultType = "sts-policy-invalid"
	ResultSTSWebPKIInvalid        ResultType = "sts-webpki-invalid"
	ResultTLSAInvalid             ResultType = "tlsa-invalid"
	ResultDNSSECInvalid           ResultType = "dnssec-invalid"
)

// Report is an RFC 8460 aggregate report.
type Report struct {
	OrganizationName string         `json:"organization-name"`
	DateRange        DateRange      `json:"date-range"`
	ContactInfo      string         `json:"contact-info"`
	ReportID         string         `json:"report-id"`
	Policies         []PolicyResult `json:"policies"`
}

// DateRange bounds the reporting window.
type DateRange struct {
	StartDatetime time.Time `json:"start-datetime"`
	EndDatetime   time.Time `json:"end-datetime"`
}

// PolicyResult is the per-policy section of a report.
type PolicyResult struct {
	Policy         PolicyDesc      `json:"policy"`
	Summary        Summary         `json:"summary"`
	FailureDetails []FailureDetail `json:"failure-details,omitempty"`
}

// PolicyDesc identifies the evaluated policy.
type PolicyDesc struct {
	PolicyType   PolicyType `json:"policy-type"`
	PolicyString []string   `json:"policy-string,omitempty"`
	PolicyDomain string     `json:"policy-domain"`
	MXHost       []string   `json:"mx-host,omitempty"`
}

// Summary counts sessions.
type Summary struct {
	TotalSuccessfulSessionCount int64 `json:"total-successful-session-count"`
	TotalFailureSessionCount    int64 `json:"total-failure-session-count"`
}

// FailureDetail describes one failure class observed during the window.
type FailureDetail struct {
	ResultType          ResultType `json:"result-type"`
	SendingMTAIP        string     `json:"sending-mta-ip,omitempty"`
	ReceivingMXHostname string     `json:"receiving-mx-hostname,omitempty"`
	ReceivingIP         string     `json:"receiving-ip,omitempty"`
	FailedSessionCount  int64      `json:"failed-session-count"`
	FailureReasonCode   string     `json:"failure-reason-code,omitempty"`
}

// NewReport starts a report for the given reporting window.
func NewReport(org, contact, id string, start, end time.Time) *Report {
	return &Report{
		OrganizationName: org,
		ContactInfo:      contact,
		ReportID:         id,
		DateRange:        DateRange{StartDatetime: start.UTC(), EndDatetime: end.UTC()},
	}
}

// Policy returns the report section for (ptype, domain), creating it on
// first use.
func (r *Report) Policy(ptype PolicyType, domain string) *PolicyResult {
	for i := range r.Policies {
		p := &r.Policies[i]
		if p.Policy.PolicyType == ptype && p.Policy.PolicyDomain == domain {
			return p
		}
	}
	r.Policies = append(r.Policies, PolicyResult{
		Policy: PolicyDesc{PolicyType: ptype, PolicyDomain: domain},
	})
	return &r.Policies[len(r.Policies)-1]
}

// AddSuccess records n successful sessions for a policy domain.
func (r *Report) AddSuccess(ptype PolicyType, domain string, n int64) {
	r.Policy(ptype, domain).Summary.TotalSuccessfulSessionCount += n
}

// AddFailure records n failed sessions of one result type against one MX.
func (r *Report) AddFailure(ptype PolicyType, domain string, result ResultType, mxHost string, n int64) {
	p := r.Policy(ptype, domain)
	p.Summary.TotalFailureSessionCount += n
	for i := range p.FailureDetails {
		fd := &p.FailureDetails[i]
		if fd.ResultType == result && fd.ReceivingMXHostname == mxHost {
			fd.FailedSessionCount += n
			return
		}
	}
	p.FailureDetails = append(p.FailureDetails, FailureDetail{
		ResultType:          result,
		ReceivingMXHostname: mxHost,
		FailedSessionCount:  n,
	})
}

// Marshal renders the report as RFC 8460 JSON.
func (r *Report) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// UnmarshalReport parses an RFC 8460 JSON report.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("tlsrpt: parsing report: %w", err)
	}
	if r.ReportID == "" {
		return nil, fmt.Errorf("tlsrpt: report without report-id")
	}
	return &r, nil
}

// Validate checks internal consistency: per-policy failure counts must
// equal the sum of failure details, and the window must be ordered.
func (r *Report) Validate() error {
	if r.DateRange.EndDatetime.Before(r.DateRange.StartDatetime) {
		return fmt.Errorf("tlsrpt: date range ends before it starts")
	}
	for _, p := range r.Policies {
		var sum int64
		for _, fd := range p.FailureDetails {
			if fd.FailedSessionCount < 0 {
				return fmt.Errorf("tlsrpt: negative failure count for %s", p.Policy.PolicyDomain)
			}
			sum += fd.FailedSessionCount
		}
		if sum != p.Summary.TotalFailureSessionCount {
			return fmt.Errorf("tlsrpt: %s: failure details sum %d != summary %d",
				p.Policy.PolicyDomain, sum, p.Summary.TotalFailureSessionCount)
		}
	}
	return nil
}

// Merge folds another report's counts into r (same-window aggregation
// across sending hosts of one organization).
func (r *Report) Merge(other *Report) {
	for _, op := range other.Policies {
		p := r.Policy(op.Policy.PolicyType, op.Policy.PolicyDomain)
		p.Summary.TotalSuccessfulSessionCount += op.Summary.TotalSuccessfulSessionCount
		for _, fd := range op.FailureDetails {
			r.AddFailure(op.Policy.PolicyType, op.Policy.PolicyDomain,
				fd.ResultType, fd.ReceivingMXHostname, fd.FailedSessionCount)
		}
	}
}
