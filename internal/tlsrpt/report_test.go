package tlsrpt

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func window() (time.Time, time.Time) {
	start := time.Date(2024, 9, 28, 0, 0, 0, 0, time.UTC)
	return start, start.Add(24 * time.Hour)
}

func TestReportBuildAndValidate(t *testing.T) {
	start, end := window()
	r := NewReport("Example Sender Org", "mailto:tlsrpt@sender.example", "2024-09-28-001", start, end)
	r.AddSuccess(PolicyTypeSTS, "recipient.example", 120)
	r.AddFailure(PolicyTypeSTS, "recipient.example", ResultCertificateHostMismatch, "mx1.recipient.example", 3)
	r.AddFailure(PolicyTypeSTS, "recipient.example", ResultCertificateHostMismatch, "mx1.recipient.example", 2)
	r.AddFailure(PolicyTypeSTS, "recipient.example", ResultSTSPolicyFetchError, "mx1.recipient.example", 1)
	r.AddSuccess(PolicyTypeTLSA, "dane.example", 40)

	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p := r.Policy(PolicyTypeSTS, "recipient.example")
	if p.Summary.TotalSuccessfulSessionCount != 120 || p.Summary.TotalFailureSessionCount != 6 {
		t.Errorf("summary = %+v", p.Summary)
	}
	if len(p.FailureDetails) != 2 {
		t.Fatalf("failure details = %d", len(p.FailureDetails))
	}
	if p.FailureDetails[0].FailedSessionCount != 5 {
		t.Errorf("same-class failures not coalesced: %+v", p.FailureDetails[0])
	}
	if len(r.Policies) != 2 {
		t.Errorf("policies = %d", len(r.Policies))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	start, end := window()
	r := NewReport("Org", "mailto:r@o.example", "rid-1", start, end)
	r.AddSuccess(PolicyTypeSTS, "d.example", 7)
	r.AddFailure(PolicyTypeSTS, "d.example", ResultSTARTTLSNotSupported, "mx.d.example", 2)

	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// RFC 8460 field names are kebab-case.
	for _, key := range []string{
		`"organization-name"`, `"date-range"`, `"start-datetime"`,
		`"report-id"`, `"policy-type"`, `"total-successful-session-count"`,
		`"failed-session-count"`, `"result-type"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s:\n%s", key, data)
		}
	}
	back, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.ReportID != "rid-1" || len(back.Policies) != 1 ||
		back.Policies[0].Summary.TotalFailureSessionCount != 2 {
		t.Errorf("round-trip = %+v", back)
	}
	if !back.DateRange.StartDatetime.Equal(start) {
		t.Errorf("start = %v", back.DateRange.StartDatetime)
	}
}

func TestUnmarshalReportErrors(t *testing.T) {
	if _, err := UnmarshalReport([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := UnmarshalReport([]byte(`{"organization-name":"x"}`)); err == nil {
		t.Error("report without id accepted")
	}
}

func TestReportValidateCatchesInconsistency(t *testing.T) {
	start, end := window()
	r := NewReport("Org", "mailto:x@y.example", "rid", start, end)
	r.AddFailure(PolicyTypeSTS, "d.example", ResultValidationFailure, "mx.d.example", 4)
	r.Policy(PolicyTypeSTS, "d.example").Summary.TotalFailureSessionCount = 99
	if err := r.Validate(); err == nil {
		t.Error("inconsistent summary accepted")
	}

	r2 := NewReport("Org", "mailto:x@y.example", "rid", end, start) // inverted window
	if err := r2.Validate(); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestReportMerge(t *testing.T) {
	start, end := window()
	a := NewReport("Org", "mailto:x@y.example", "rid-a", start, end)
	a.AddSuccess(PolicyTypeSTS, "d.example", 10)
	a.AddFailure(PolicyTypeSTS, "d.example", ResultTLSAInvalid, "mx.d.example", 1)

	b := NewReport("Org", "mailto:x@y.example", "rid-b", start, end)
	b.AddSuccess(PolicyTypeSTS, "d.example", 5)
	b.AddFailure(PolicyTypeSTS, "d.example", ResultTLSAInvalid, "mx.d.example", 2)
	b.AddSuccess(PolicyTypeNoFind, "other.example", 3)

	a.Merge(b)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	p := a.Policy(PolicyTypeSTS, "d.example")
	if p.Summary.TotalSuccessfulSessionCount != 15 || p.Summary.TotalFailureSessionCount != 3 {
		t.Errorf("merged summary = %+v", p.Summary)
	}
	if len(p.FailureDetails) != 1 || p.FailureDetails[0].FailedSessionCount != 3 {
		t.Errorf("merged details = %+v", p.FailureDetails)
	}
	if a.Policy(PolicyTypeNoFind, "other.example").Summary.TotalSuccessfulSessionCount != 3 {
		t.Error("merge dropped the second policy")
	}
}

// TestReportGolden pins the serialized shape against the RFC 8460 example
// structure (field presence and nesting, not byte equality).
func TestReportGolden(t *testing.T) {
	start, end := window()
	r := NewReport("Company-X", "mailto:sts-reporting@company-x.example", "5065427c-23d3", start, end)
	pr := r.Policy(PolicyTypeSTS, "company-y.example")
	pr.Policy.PolicyString = []string{"version: STSv1", "mode: testing", "mx: *.mail.company-y.example", "max_age: 86400"}
	pr.Policy.MXHost = []string{"*.mail.company-y.example"}
	r.AddSuccess(PolicyTypeSTS, "company-y.example", 5326)
	r.AddFailure(PolicyTypeSTS, "company-y.example", ResultCertificateExpired, "mailsecond.company-y.example", 100)

	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]interface{}
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	policies, ok := generic["policies"].([]interface{})
	if !ok || len(policies) != 1 {
		t.Fatalf("policies = %v", generic["policies"])
	}
	p0 := policies[0].(map[string]interface{})
	if _, ok := p0["policy"].(map[string]interface{})["policy-string"]; !ok {
		t.Error("policy-string missing")
	}
	summary := p0["summary"].(map[string]interface{})
	if summary["total-successful-session-count"].(float64) != 5326 {
		t.Errorf("summary = %v", summary)
	}
}
