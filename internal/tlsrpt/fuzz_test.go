package tlsrpt

import "testing"

func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"v=TLSRPTv1; rua=mailto:tls@example.com",
		"v=TLSRPTv1; rua=https://r.example/v1,mailto:a@b.c",
		"v=TLSRPTv1",
		"",
		"v=TLSRPTv1; rua=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := Parse(s)
		if err == nil {
			if rec.Version != Version || len(rec.RUAs) == 0 {
				t.Fatalf("valid record with %+v", rec)
			}
			if _, err := Parse(rec.String()); err != nil {
				t.Fatalf("canonical form does not re-parse: %v (%q)", err, rec.String())
			}
		}
	})
}
