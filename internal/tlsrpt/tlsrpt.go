// Package tlsrpt implements SMTP TLS Reporting records (RFC 8460) as used
// by Appendix B / Figure 12 of the paper: parsing and validating the
// "_smtp._tls" TXT record that declares where senders should deliver TLS
// failure reports.
package tlsrpt

import (
	"errors"
	"fmt"
	"strings"
)

// Version is the only TLSRPT version defined by RFC 8460.
const Version = "TLSRPTv1"

// RecordName returns the owner name of a domain's TLSRPT record.
func RecordName(domain string) string { return "_smtp._tls." + domain }

// Record errors.
var (
	ErrNoRecord        = errors.New("tlsrpt: no TLSRPT record")
	ErrMultipleRecords = errors.New("tlsrpt: more than one TLSRPT record")
	ErrBadVersion      = errors.New("tlsrpt: record does not begin with v=TLSRPTv1")
	ErrNoRUA           = errors.New("tlsrpt: record has no rua field")
	ErrBadRUA          = errors.New("tlsrpt: invalid rua URI")
	ErrBadField        = errors.New("tlsrpt: malformed field")
)

// Record is a parsed TLSRPT record.
type Record struct {
	Version string
	// RUAs are the report destination URIs (mailto: or https:).
	RUAs []string
	// Extensions preserves unknown fields.
	Extensions []Field
}

// Field is a key-value extension pair.
type Field struct{ Name, Value string }

// String re-serializes the record.
func (r Record) String() string {
	var sb strings.Builder
	sb.WriteString("v=")
	sb.WriteString(r.Version)
	sb.WriteString("; rua=")
	sb.WriteString(strings.Join(r.RUAs, ","))
	for _, f := range r.Extensions {
		sb.WriteString("; ")
		sb.WriteString(f.Name)
		sb.WriteByte('=')
		sb.WriteString(f.Value)
	}
	return sb.String()
}

// Parse parses one TXT value as a TLSRPT record.
func Parse(txt string) (Record, error) {
	var rec Record
	if !HasPrefix(txt) {
		return rec, fmt.Errorf("%w: %q", ErrBadVersion, txt)
	}
	fields := strings.Split(txt, ";")
	for i, raw := range fields {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			if i == len(fields)-1 {
				continue
			}
			return rec, fmt.Errorf("%w: empty field", ErrBadField)
		}
		name, value, ok := strings.Cut(raw, "=")
		if !ok {
			return rec, fmt.Errorf("%w: %q", ErrBadField, raw)
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		switch name {
		case "v":
			if value != Version {
				return rec, fmt.Errorf("%w: %q", ErrBadVersion, value)
			}
			rec.Version = value
		case "rua":
			for _, uri := range strings.Split(value, ",") {
				uri = strings.TrimSpace(uri)
				if !validRUA(uri) {
					return rec, fmt.Errorf("%w: %q", ErrBadRUA, uri)
				}
				rec.RUAs = append(rec.RUAs, uri)
			}
		default:
			rec.Extensions = append(rec.Extensions, Field{Name: name, Value: value})
		}
	}
	if len(rec.RUAs) == 0 {
		return rec, ErrNoRUA
	}
	return rec, nil
}

// Discover applies the single-record rule to a TXT RRset at the
// "_smtp._tls" name.
func Discover(txts []string) (Record, error) {
	var candidates []string
	for _, txt := range txts {
		if HasPrefix(txt) {
			candidates = append(candidates, txt)
		}
	}
	switch len(candidates) {
	case 0:
		return Record{}, ErrNoRecord
	case 1:
		return Parse(candidates[0])
	default:
		return Record{}, fmt.Errorf("%w: %d", ErrMultipleRecords, len(candidates))
	}
}

// HasPrefix reports whether txt begins with "v=TLSRPTv1".
func HasPrefix(txt string) bool {
	s := strings.TrimSpace(txt)
	if !strings.HasPrefix(s, "v") {
		return false
	}
	s = strings.TrimLeft(s[1:], " \t")
	if !strings.HasPrefix(s, "=") {
		return false
	}
	s = strings.TrimLeft(s[1:], " \t")
	if !strings.HasPrefix(s, Version) {
		return false
	}
	rest := s[len(Version):]
	return rest == "" || rest[0] == ';' || rest[0] == ' '
}

func validRUA(uri string) bool {
	if rest, ok := strings.CutPrefix(uri, "mailto:"); ok {
		at := strings.IndexByte(rest, '@')
		return at > 0 && at < len(rest)-1
	}
	if rest, ok := strings.CutPrefix(uri, "https://"); ok {
		return rest != ""
	}
	return false
}
