package tlsrpt

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
)

// This file is the validating entry point the service's TLSRPT endpoint
// uses. UnmarshalReport/Validate (report.go) predate it and stay for
// in-process report plumbing; everything arriving over the wire goes
// through IngestReport so rejections carry typed errtax codes
// (docs/ERRORS.md "TLSRPT report ingestion").

// reportErr types an ingestion rejection: layer report, never
// transient (a malformed report stays malformed on retry).
func reportErr(code errtax.Code, format string, args ...any) error {
	return errtax.Wrap(errtax.LayerReport, code, false, fmt.Errorf(format, args...))
}

// IngestReport parses and fully validates an RFC 8460 aggregate report
// for ingestion. Unlike UnmarshalReport it rejects — with typed errtax
// codes — reports the old path accepted silently: missing or inverted
// date-range windows, policy sections with an empty policy-domain
// (counts that cannot be attributed to any domain), duplicate
// (policy-type, policy-domain) sections (double-counted sessions), and
// failure-detail counts that contradict the summary.
func IngestReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, reportErr(errtax.CodeReportParse, "tlsrpt: parsing report: %w", err)
	}
	if r.ReportID == "" {
		return nil, reportErr(errtax.CodeReportMissingID, "tlsrpt: report without report-id")
	}
	if r.DateRange.StartDatetime.IsZero() || r.DateRange.EndDatetime.IsZero() {
		return nil, reportErr(errtax.CodeReportBadWindow,
			"tlsrpt: report %s: missing date-range", r.ReportID)
	}
	if r.DateRange.EndDatetime.Before(r.DateRange.StartDatetime) {
		return nil, reportErr(errtax.CodeReportBadWindow,
			"tlsrpt: report %s: date range ends before it starts", r.ReportID)
	}
	seen := make(map[policyKey]bool, len(r.Policies))
	for _, p := range r.Policies {
		if p.Policy.PolicyDomain == "" {
			return nil, reportErr(errtax.CodeReportEmptyPolicyDomain,
				"tlsrpt: report %s: policy section with empty policy-domain", r.ReportID)
		}
		k := policyKey{p.Policy.PolicyType, p.Policy.PolicyDomain}
		if seen[k] {
			return nil, reportErr(errtax.CodeReportDuplicatePolicy,
				"tlsrpt: report %s: duplicate policy section for %s/%s",
				r.ReportID, p.Policy.PolicyType, p.Policy.PolicyDomain)
		}
		seen[k] = true
		var sum int64
		for _, fd := range p.FailureDetails {
			if fd.FailedSessionCount < 0 {
				return nil, reportErr(errtax.CodeReportCountMismatch,
					"tlsrpt: report %s: %s: negative failure count", r.ReportID, p.Policy.PolicyDomain)
			}
			sum += fd.FailedSessionCount
		}
		if sum != p.Summary.TotalFailureSessionCount {
			return nil, reportErr(errtax.CodeReportCountMismatch,
				"tlsrpt: report %s: %s: failure details sum %d != summary %d",
				r.ReportID, p.Policy.PolicyDomain, sum, p.Summary.TotalFailureSessionCount)
		}
		if p.Summary.TotalSuccessfulSessionCount < 0 {
			return nil, reportErr(errtax.CodeReportCountMismatch,
				"tlsrpt: report %s: %s: negative success count", r.ReportID, p.Policy.PolicyDomain)
		}
	}
	return &r, nil
}

type policyKey struct {
	ptype  PolicyType
	domain string
}

// WindowKey renders the reporting window as a fixed-width, lexically
// sortable store-key segment: "<start>..<end>" in UTC RFC 3339.
func (d DateRange) WindowKey() string {
	return d.StartDatetime.UTC().Format(time.RFC3339) + ".." + d.EndDatetime.UTC().Format(time.RFC3339)
}

// Domains returns the distinct policy domains the report covers, in
// section order.
func (r *Report) Domains() []string {
	var out []string
	seen := make(map[string]bool, len(r.Policies))
	for _, p := range r.Policies {
		if d := p.Policy.PolicyDomain; d != "" && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}
