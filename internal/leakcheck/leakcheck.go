// Package leakcheck is a goroutine-leak harness for package test
// suites, built on runtime.Stack the way goleak is (the module has no
// external dependencies). A package opts in by declaring
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// after which a test binary that exits green while extra goroutines
// are still running fails instead. Goroutines are given a short grace
// period to drain — legitimate workers observed mid-teardown retry
// away — and the report prints each surviving goroutine's full stack
// so the leak is attributable to the spawn site.
//
// The harness complements the static goroleak analyzer: the analyzer
// proves every spawn has a termination path, the harness proves the
// paths are actually taken.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Goroutine is one parsed goroutine block from a runtime.Stack dump.
type Goroutine struct {
	// ID is the runtime's goroutine id.
	ID int
	// State is the scheduler state from the header ("chan receive",
	// "select", "IO wait", ...).
	State string
	// Top is the function at the top of the stack.
	Top string
	// CreatedBy is the function that spawned the goroutine, when the
	// runtime recorded one.
	CreatedBy string
	// Stack is the full block, for the failure report.
	Stack string
}

func (g Goroutine) String() string {
	return fmt.Sprintf("goroutine %d [%s] in %s (created by %s)", g.ID, g.State, g.Top, g.CreatedBy)
}

// config is assembled from Options.
type config struct {
	maxWait     time.Duration
	ignoreTops  []string
	ignoreSpawn []string
}

// Option adjusts a leak check.
type Option func(*config)

// MaxWait bounds the grace period a check waits for goroutines to
// drain before declaring them leaked. The default is 5 seconds.
func MaxWait(d time.Duration) Option {
	return func(c *config) { c.maxWait = d }
}

// IgnoreTop exempts goroutines whose top-of-stack function has one of
// the given prefixes, in addition to the built-in runtime/testing set.
func IgnoreTop(prefixes ...string) Option {
	return func(c *config) { c.ignoreTops = append(c.ignoreTops, prefixes...) }
}

// IgnoreCreatedBy exempts goroutines spawned by a function with one of
// the given prefixes.
func IgnoreCreatedBy(prefixes ...string) Option {
	return func(c *config) { c.ignoreSpawn = append(c.ignoreSpawn, prefixes...) }
}

// defaultIgnoredTops are goroutines owned by the runtime and the test
// framework: present in every test binary, never a leak of ours.
var defaultIgnoredTops = []string{
	"testing.",
	"runtime.",
	"os/signal.",
}

func newConfig(opts []Option) *config {
	c := &config{maxWait: 5 * time.Second}
	c.ignoreTops = append(c.ignoreTops, defaultIgnoredTops...)
	for _, o := range opts {
		o(c)
	}
	return c
}

// Main wraps m.Run with a leak check: it runs the package's tests and,
// when they pass, fails the binary if goroutines beyond the runtime's
// own survive the grace period. Intended as the body of TestMain.
func Main(m *testing.M, opts ...Option) {
	code := m.Run()
	if code == 0 {
		if err := Check(opts...); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports an error describing every goroutine still running
// after the grace period, or nil when the binary is clean.
func Check(opts ...Option) error {
	leaked := Leaked(opts...)
	if len(leaked) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s):", len(leaked))
	for _, g := range leaked {
		b.WriteString("\n\n")
		b.WriteString(g.Stack)
	}
	return fmt.Errorf("%s", b.String())
}

// Leaked returns the goroutines that survive the grace period and no
// ignore rule covers. Goroutines observed mid-exit drain during the
// retry backoff, so a non-empty result is a stable leak, not a race
// with teardown.
func Leaked(opts ...Option) []Goroutine {
	cfg := newConfig(opts)
	deadline := time.Now().Add(cfg.maxWait)
	delay := 1 * time.Millisecond
	for {
		leaked := leakedNow(cfg)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		//lint:ignore sleeploop bounded teardown poll in a test harness; there is no context in TestMain to thread
		time.Sleep(delay)
		if delay *= 2; delay > 100*time.Millisecond {
			delay = 100 * time.Millisecond
		}
	}
}

func leakedNow(cfg *config) []Goroutine {
	var leaked []Goroutine
	self := ownGoroutineID()
	for _, g := range snapshot() {
		if g.ID == self || ignored(cfg, g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

func ignored(cfg *config, g Goroutine) bool {
	for _, p := range cfg.ignoreTops {
		if strings.HasPrefix(g.Top, p) {
			return true
		}
	}
	for _, p := range cfg.ignoreSpawn {
		if g.CreatedBy != "" && strings.HasPrefix(g.CreatedBy, p) {
			return true
		}
	}
	return false
}

// snapshot captures and parses the stacks of every goroutine.
func snapshot() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []Goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		if g, ok := parseBlock(block); ok {
			out = append(out, g)
		}
	}
	return out
}

// parseBlock decodes one "goroutine N [state]:" block.
func parseBlock(block string) (Goroutine, bool) {
	lines := strings.Split(strings.TrimRight(block, "\n"), "\n")
	if len(lines) == 0 {
		return Goroutine{}, false
	}
	header := lines[0]
	if !strings.HasPrefix(header, "goroutine ") {
		return Goroutine{}, false
	}
	rest := strings.TrimPrefix(header, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Goroutine{}, false
	}
	id, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return Goroutine{}, false
	}
	g := Goroutine{ID: id, Stack: block}
	if open := strings.IndexByte(rest, '['); open >= 0 {
		if end := strings.IndexByte(rest[open:], ']'); end > 0 {
			g.State = rest[open+1 : open+end]
		}
	}
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "\t") {
			continue // file:line frame detail
		}
		if strings.HasPrefix(line, "created by ") {
			g.CreatedBy = strings.TrimPrefix(line, "created by ")
			if in := strings.Index(g.CreatedBy, " in goroutine"); in >= 0 {
				g.CreatedBy = g.CreatedBy[:in]
			}
			continue
		}
		if g.Top == "" {
			g.Top = trimCallSuffix(line)
		}
	}
	return g, true
}

// trimCallSuffix strips the argument list from a stack frame's
// function line ("pkg.fn(0x0, ...)" -> "pkg.fn").
func trimCallSuffix(line string) string {
	if i := strings.LastIndexByte(line, '('); i > 0 {
		return line[:i]
	}
	return line
}

// ownGoroutineID parses the current goroutine's id from a single-
// goroutine stack dump, so the checker never reports itself.
func ownGoroutineID() int {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	g, ok := parseBlock(string(buf[:n]))
	if !ok {
		return -1
	}
	return g.ID
}
