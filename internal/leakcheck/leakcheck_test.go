package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// The package checks itself: the deliberate leaks below are all
// stopped before their tests return.
func TestMain(m *testing.M) {
	Main(m)
}

// TestCatchesDeliberateLeak pins the core property: a goroutine parked
// on a channel is reported, with a stack attributing it, and stops
// being reported once released.
func TestCatchesDeliberateLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() {
		<-stop
	}()

	leaked := Leaked(MaxWait(200 * time.Millisecond))
	if len(leaked) != 1 {
		t.Fatalf("leaked = %v, want exactly the deliberate leak", leaked)
	}
	g := leaked[0]
	if g.State != "chan receive" {
		t.Errorf("state = %q, want chan receive", g.State)
	}
	if !strings.Contains(g.Stack, "leakcheck") {
		t.Errorf("stack does not attribute the leak:\n%s", g.Stack)
	}
	if err := Check(MaxWait(200 * time.Millisecond)); err == nil {
		t.Error("Check() = nil with a live leak")
	} else if !strings.Contains(err.Error(), "1 leaked goroutine(s)") {
		t.Errorf("Check() = %v", err)
	}

	close(stop)
	if err := Check(); err != nil {
		t.Errorf("Check() after release = %v", err)
	}
}

// TestGracePeriodDrainsSlowExits pins the retry loop: a goroutine
// still draining when the check starts is not a leak.
func TestGracePeriodDrainsSlowExits(t *testing.T) {
	go func() {
		time.Sleep(50 * time.Millisecond)
	}()
	if err := Check(MaxWait(2 * time.Second)); err != nil {
		t.Errorf("Check() = %v, want the drain to absorb the slow exit", err)
	}
}

func TestIgnoreRules(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go leakyHelper(stop)

	opts := []Option{MaxWait(200 * time.Millisecond)}
	if got := Leaked(opts...); len(got) != 1 {
		t.Fatalf("Leaked() = %v, want the helper", got)
	}
	byTop := append(opts, IgnoreTop("github.com/netsecurelab/mtasts/internal/leakcheck.leakyHelper"))
	if got := Leaked(byTop...); len(got) != 0 {
		t.Errorf("Leaked(IgnoreTop) = %v, want none", got)
	}
	bySpawner := append(opts, IgnoreCreatedBy("github.com/netsecurelab/mtasts/internal/leakcheck.TestIgnoreRules"))
	if got := Leaked(bySpawner...); len(got) != 0 {
		t.Errorf("Leaked(IgnoreCreatedBy) = %v, want none", got)
	}
}

func leakyHelper(stop chan struct{}) {
	<-stop
}

func TestParseBlock(t *testing.T) {
	block := "goroutine 42 [select]:\n" +
		"example.com/pkg.worker(0x14000102000)\n" +
		"\t/src/pkg/worker.go:10 +0x1c\n" +
		"created by example.com/pkg.Start in goroutine 1\n" +
		"\t/src/pkg/start.go:5 +0x88\n"
	g, ok := parseBlock(block)
	if !ok {
		t.Fatal("parseBlock rejected a valid block")
	}
	if g.ID != 42 || g.State != "select" || g.Top != "example.com/pkg.worker" || g.CreatedBy != "example.com/pkg.Start" {
		t.Errorf("parsed = %+v", g)
	}
	if _, ok := parseBlock("SIGQUIT: quit"); ok {
		t.Error("parseBlock accepted a non-goroutine block")
	}
}

func TestOwnGoroutineExcluded(t *testing.T) {
	if id := ownGoroutineID(); id <= 0 {
		t.Fatalf("ownGoroutineID() = %d", id)
	}
	// With no deliberate leak running, the checker must not report
	// itself or the test framework.
	if got := Leaked(MaxWait(time.Second)); len(got) != 0 {
		t.Errorf("Leaked() = %v, want none", got)
	}
}
