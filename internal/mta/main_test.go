package mta

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/leakcheck"
)

// TestMain arms the goroutine-leak harness: every lab world started by
// the outbound tests must be fully torn down.
func TestMain(m *testing.M) { leakcheck.Main(m) }
