package mta

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnssec"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policycache"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpd"
	"github.com/netsecurelab/mtasts/internal/store"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// lab is a loopback mail environment for outbound-MTA tests.
type lab struct {
	t    *testing.T
	ca   *pki.CA
	zone *dnszone.Zone
	dns  *dnsserver.Server
	pol  *policysrv.Server

	addrTable map[string]string
	inboxes   map[string]*smtpd.Server
}

func newLab(t *testing.T) *lab {
	t.Helper()
	ca, err := pki.NewCA("MTA Lab CA", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	zone := dnszone.New("test")
	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	if _, err := dns.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dns.Close() })
	pol := policysrv.New(ca, nil)
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pol.Close() })
	return &lab{
		t: t, ca: ca, zone: zone, dns: dns, pol: pol,
		addrTable: make(map[string]string),
		inboxes:   make(map[string]*smtpd.Server),
	}
}

func (l *lab) addRR(rr dnsmsg.RR) { l.zone.MustAdd(rr) }

func (l *lab) a(name string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}}
}

// addMX boots an SMTP server for mxHost; selfSigned controls its cert.
func (l *lab) addMX(mxHost string, selfSigned bool) *smtpd.Server {
	l.t.Helper()
	leaf, err := l.ca.Issue(pki.IssueOptions{Names: []string{mxHost}, SelfSigned: selfSigned})
	if err != nil {
		l.t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	srv := smtpd.New(smtpd.Behavior{Hostname: mxHost, Certificate: &cert, AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		l.t.Fatal(err)
	}
	l.t.Cleanup(func() { srv.Close() })
	l.addrTable[mxHost] = addr.String()
	l.inboxes[mxHost] = srv
	l.addRR(l.a(mxHost))
	// Publish the TLSA record matching this server's certificate so DANE
	// tests can opt in by enabling DANE on the Outbound.
	l.addRR(dane.NewEE3(leaf.Cert).RR(mxHost, 300))
	return srv
}

// addDomain publishes MX + MTA-STS records for a recipient domain.
func (l *lab) addDomain(domain string, mxHosts []string, policy *mtasts.Policy) {
	l.t.Helper()
	for i, mx := range mxHosts {
		l.addRR(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.MXData{Preference: uint16(10 * (i + 1)), Host: mx}})
	}
	if policy != nil {
		l.addRR(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
			TTL: 60, Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
		l.addRR(l.a("mta-sts." + domain))
		l.pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: *policy})
	}
}

// outbound builds an Outbound wired to the lab.
func (l *lab) outbound(daneEnabled bool) *Outbound {
	dnsClient := resolver.New(l.dns.Addr().String())
	return &Outbound{
		DNS: dnsClient,
		Validator: &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, false)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				RootCAs: l.ca.Pool(),
				Port:    l.pol.Port(),
				Timeout: 5 * time.Second,
			},
			Cache: mtasts.NewPolicyCache(64),
		},
		Roots:        l.ca.Pool(),
		HeloName:     "outbound.lab",
		AddrOverride: func(mx string) string { return l.addrTable[mx] },
		DANEEnabled:  daneEnabled,
		Timeout:      5 * time.Second,
	}
}

func enforce(mx ...string) *mtasts.Policy {
	return &mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: mx}
}

func TestSendMTASTSHappyPath(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.alpha.test", false)
	l.addDomain("alpha.test", []string{"mx.alpha.test"}, enforce("mx.alpha.test"))

	o := l.outbound(false)
	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@alpha.test"}, []byte("hello\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !out.Delivered || out.Mechanism != MechanismMTASTS || !out.TLS || !out.CertVerified {
		t.Errorf("out = %+v", out)
	}
	if len(l.inboxes["mx.alpha.test"].Messages()) != 1 {
		t.Error("message not in inbox")
	}
}

func TestSendDANEPrecedence(t *testing.T) {
	l := newLab(t)
	// Self-signed MX certificate: PKIX fails, but the published TLSA
	// record matches — DANE must take precedence and deliver.
	l.addMX("mx.beta.test", true)
	l.addDomain("beta.test", []string{"mx.beta.test"}, enforce("mx.beta.test"))

	o := l.outbound(true)
	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@beta.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if out.Mechanism != MechanismDANE || !out.CertVerified {
		t.Errorf("out = %+v", out)
	}
}

func TestSendDANEMismatchRefuses(t *testing.T) {
	l := newLab(t)
	srv := l.addMX("mx.gamma.test", false)
	l.addDomain("gamma.test", []string{"mx.gamma.test"}, enforce("mx.gamma.test"))
	// Replace the TLSA record with one for a different key: DANE must
	// refuse even though PKIX and MTA-STS would both pass.
	l.zone.Remove(dane.TLSAName("mx.gamma.test"), dnsmsg.TypeTLSA)
	otherLeaf, err := l.ca.Issue(pki.IssueOptions{Names: []string{"other.test"}})
	if err != nil {
		t.Fatal(err)
	}
	l.addRR(dane.NewEE3(otherLeaf.Cert).RR("mx.gamma.test", 300))

	o := l.outbound(true)
	_, err = o.Send(context.Background(), "a@sender.lab", []string{"b@gamma.test"}, []byte("x\n"))
	if !errors.Is(err, ErrPolicyRefused) {
		t.Fatalf("err = %v", err)
	}
	if len(srv.Messages()) != 0 {
		t.Error("message delivered despite DANE mismatch")
	}
}

func TestSendMTASTSEnforceMismatchRefuses(t *testing.T) {
	l := newLab(t)
	srv := l.addMX("mx.delta.test", false)
	l.addDomain("delta.test", []string{"mx.delta.test"}, enforce("mx.otherhost.test"))

	o := l.outbound(false)
	_, err := o.Send(context.Background(), "a@sender.lab", []string{"b@delta.test"}, []byte("x\n"))
	if !errors.Is(err, ErrPolicyRefused) {
		t.Fatalf("err = %v", err)
	}
	if len(srv.Messages()) != 0 {
		t.Error("message delivered despite policy mismatch")
	}
}

func TestSendMultiMXFailover(t *testing.T) {
	l := newLab(t)
	l.addMX("mx1.eps.test", false)
	l.addMX("mx2.eps.test", false)
	// The policy only authorizes the second MX: the first candidate is
	// refused per-MX, the second delivers.
	l.addDomain("eps.test", []string{"mx1.eps.test", "mx2.eps.test"}, enforce("mx2.eps.test"))

	o := l.outbound(false)
	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@eps.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if out.MXHost != "mx2.eps.test" {
		t.Errorf("delivered via %s", out.MXHost)
	}
	if len(l.inboxes["mx1.eps.test"].Messages()) != 0 || len(l.inboxes["mx2.eps.test"].Messages()) != 1 {
		t.Error("wrong inbox")
	}
}

func TestSendImplicitMX(t *testing.T) {
	l := newLab(t)
	// No MX record: the apex A record makes the domain its own mail host
	// (RFC 5321 §5.1).
	l.addMX("zeta.test", false)
	o := l.outbound(false)
	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@zeta.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if out.MXHost != "zeta.test" || out.Mechanism != MechanismOpportunistic {
		t.Errorf("out = %+v", out)
	}
}

func TestSendNoMXNoA(t *testing.T) {
	l := newLab(t)
	o := l.outbound(false)
	_, err := o.Send(context.Background(), "a@sender.lab", []string{"b@ghost.test"}, []byte("x\n"))
	if !errors.Is(err, ErrNoMX) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendTLSRPTAccounting(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.eta.test", false)
	l.addDomain("eta.test", []string{"mx.eta.test"}, enforce("mx.eta.test"))
	l.addMX("mx.theta.test", false)
	l.addDomain("theta.test", []string{"mx.theta.test"}, enforce("mx.wrong.test"))

	o := l.outbound(false)
	start := time.Now()
	o.Report = tlsrpt.NewReport("Lab", "mailto:r@lab.test", "rid", start, start.Add(24*time.Hour))

	if _, err := o.Send(context.Background(), "a@s.lab", []string{"b@eta.test"}, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Send(context.Background(), "a@s.lab", []string{"b@theta.test"}, []byte("x\n")); err == nil {
		t.Fatal("expected refusal")
	}
	if err := o.Report.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	ok := o.Report.Policy(tlsrpt.PolicyTypeSTS, "eta.test")
	if ok.Summary.TotalSuccessfulSessionCount != 1 {
		t.Errorf("eta summary = %+v", ok.Summary)
	}
	bad := o.Report.Policy(tlsrpt.PolicyTypeSTS, "theta.test")
	if bad.Summary.TotalFailureSessionCount != 1 {
		t.Errorf("theta summary = %+v", bad.Summary)
	}
}

func TestSendAddressValidation(t *testing.T) {
	l := newLab(t)
	o := l.outbound(false)
	ctx := context.Background()
	if _, err := o.Send(ctx, "a@s.lab", nil, []byte("x")); !errors.Is(err, ErrNoRecipients) {
		t.Errorf("no recipients err = %v", err)
	}
	if _, err := o.Send(ctx, "a@s.lab", []string{"no-at-sign"}, []byte("x")); err == nil {
		t.Error("malformed address accepted")
	}
	if _, err := o.Send(ctx, "a@s.lab", []string{"a@x.test", "b@y.test"}, []byte("x")); err == nil {
		t.Error("cross-domain recipients accepted")
	}
}

func TestRefreshPolicies(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.iota.test", false)
	pol := enforce("mx.iota.test")
	pol.MaxAge = 3600
	l.addDomain("iota.test", []string{"mx.iota.test"}, pol)

	o := l.outbound(false)
	pc := o.Validator.Cache.(*mtasts.PolicyCache)
	now := time.Now()
	pc.Now = func() time.Time { return now }
	if _, err := o.Send(context.Background(), "a@s.lab", []string{"b@iota.test"}, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	// Not yet near expiry: nothing refreshed.
	if n := o.RefreshPolicies(context.Background(), 10*time.Minute); n != 0 {
		t.Errorf("refreshed %d, want 0", n)
	}
	// Advance to within the refresh window.
	now = now.Add(55 * time.Minute)
	if n := o.RefreshPolicies(context.Background(), 10*time.Minute); n != 1 {
		t.Errorf("refreshed %d, want 1", n)
	}
	// The refreshed entry is fresh again (expires ~1h from the new now).
	if _, ok := o.Validator.Cache.Get("iota.test"); !ok {
		t.Error("policy missing after refresh")
	}
}

// A failed refetch must never evict the still-valid policy it was trying
// to revalidate — the eviction-before-revalidation bug reopened the
// TLS-fallback downgrade window on every refresh hiccup.
func TestRefreshFailurePreservesPolicy(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.kappa.test", false)
	pol := enforce("mx.kappa.test")
	pol.MaxAge = 3600
	l.addDomain("kappa.test", []string{"mx.kappa.test"}, pol)

	o := l.outbound(false)
	o.Obs = obs.NewRegistry()
	pc := o.Validator.Cache.(*mtasts.PolicyCache)
	now := time.Now()
	pc.Now = func() time.Time { return now }
	if _, err := o.Send(context.Background(), "a@s.lab", []string{"b@kappa.test"}, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	cached, ok := pc.Get("kappa.test")
	if !ok {
		t.Fatal("policy not cached after delivery")
	}

	// Policy host dies; the entry drifts into the refresh window. The
	// refetch fails, and the cached policy must survive untouched.
	if err := l.pol.Close(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(55 * time.Minute)
	if n := o.RefreshPolicies(context.Background(), 10*time.Minute); n != 0 {
		t.Errorf("refreshed %d, want 0", n)
	}
	if v := o.Obs.Counter("mta.refresh.failures").Value(); v == 0 {
		t.Error("mta.refresh.failures not counted")
	}
	after, ok := pc.Get("kappa.test")
	if !ok {
		t.Fatal("failed refetch evicted a still-fresh policy")
	}
	if !after.Expires.Equal(cached.Expires) {
		t.Error("entry replaced without a successful fetch")
	}
}

// The acceptance drill: with a cached enforce policy and the policy host
// down, deliveries past max_age keep enforcing the stale policy (served
// from the durable cache, counters incrementing) instead of downgrading
// to unvalidated TLS.
func TestStaleServeNoDowngradeDrill(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.lambda.test", false)
	pol := enforce("mx.lambda.test")
	pol.MaxAge = 3600
	l.addDomain("lambda.test", []string{"mx.lambda.test"}, pol)

	o := l.outbound(false)
	now := time.Now()
	cache, err := policycache.Open(store.NewMem(), policycache.Options{
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cache.Close(); err != nil {
			t.Error(err)
		}
	}()
	o.Validator.Cache = cache

	// Cold delivery populates the cache.
	out, err := o.Send(context.Background(), "a@s.lab", []string{"b@lambda.test"}, []byte("x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Mechanism != MechanismMTASTS {
		t.Fatalf("cold delivery = %+v", out)
	}

	// Policy host dies and the policy expires. Delivery must keep
	// enforcing the stale policy from cache.
	if err := l.pol.Close(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour) // past max_age, inside the stale window
	out, err = o.Send(context.Background(), "a@s.lab", []string{"b@lambda.test"}, []byte("y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Mechanism != MechanismMTASTS || !out.CertVerified {
		t.Fatalf("stale delivery downgraded: %+v", out)
	}
	if !out.Evaluation.PolicyStale {
		t.Error("evaluation did not mark the policy stale")
	}
	s := cache.Stats()
	if s.StaleServed == 0 {
		t.Error("stale_served did not increment")
	}
	if s.RefreshFailures == 0 {
		t.Error("refresh_failures did not increment")
	}
	if len(l.inboxes["mx.lambda.test"].Messages()) != 2 {
		t.Error("second message not delivered")
	}
}

func TestDialAddrFor(t *testing.T) {
	f := DialAddrFor(map[string]string{"mx.a.test": "127.0.0.1:2525"}, 25)
	if f("mx.a.test") != "127.0.0.1:2525" {
		t.Error("table lookup failed")
	}
	if f("mx.b.test") != "mx.b.test:25" {
		t.Errorf("default = %q", f("mx.b.test"))
	}
	f0 := DialAddrFor(nil, 0)
	if f0("x") != "" {
		t.Error("zero default should return empty")
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechanismNone: "none", MechanismOpportunistic: "opportunistic",
		MechanismMTASTS: "mta-sts", MechanismDANE: "dane", MechanismPKIX: "pkix",
	} {
		if m.String() != want {
			t.Errorf("Mechanism(%d) = %q", int(m), m.String())
		}
	}
}

// TestSendDANEWithRealDNSSEC exercises the full stack: the recipient zone
// is DNSSEC-signed, the sender runs a chain-validating resolver, and DANE
// only applies because the TLSA RRset cryptographically validates.
func TestSendDANEWithRealDNSSEC(t *testing.T) {
	l := newLab(t)
	leafSrv := l.addMX("mx.signed.test", true) // self-signed cert, TLSA matches
	_ = leafSrv
	l.addDomain("signed.test", []string{"mx.signed.test"}, nil)

	// Sign the lab zone and configure the trust anchor.
	signer, err := dnssec.NewSigner("test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnssec.SignZone(l.zone, signer, time.Now().Add(-time.Hour), time.Now().Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}

	o := l.outbound(true)
	o.DNSSEC = dnssec.NewValidator(o.DNS)
	if err := o.DNSSEC.AddAnchor(signer.DS()); err != nil {
		t.Fatal(err)
	}

	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@signed.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if out.Mechanism != MechanismDANE || !out.CertVerified {
		t.Errorf("out = %+v", out)
	}
}

// TestSendDANESkippedWhenChainInvalid: with a chain-validating resolver
// and NO trust anchor, the TLSA RRset is insecure, DANE does not apply,
// and delivery falls through to the next mechanism (opportunistic here).
func TestSendDANESkippedWhenChainInvalid(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.unsigned.test", false)
	l.addDomain("unsigned.test", []string{"mx.unsigned.test"}, nil)

	o := l.outbound(true)
	o.DNSSEC = dnssec.NewValidator(o.DNS) // no anchors: nothing validates

	out, err := o.Send(context.Background(), "a@sender.lab", []string{"b@unsigned.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if out.Mechanism == MechanismDANE {
		t.Errorf("DANE applied without a validated chain: %+v", out)
	}
}

// Concurrent deliveries to one cold domain must collapse to a single
// policy fetch (stampede protection). The identity misses - collapsed ==
// leader fetches holds regardless of interleaving; the injected policy-
// host latency makes the deliveries actually overlap.
func TestConcurrentDeliveriesCollapseToOneFetch(t *testing.T) {
	l := newLab(t)
	l.addMX("mx.mu.test", false)
	l.addDomain("mu.test", []string{"mx.mu.test"}, enforce("mx.mu.test"))

	o := l.outbound(false)
	cache, err := policycache.Open(store.NewMem(), policycache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cache.Close(); err != nil {
			t.Error(err)
		}
	}()
	o.Validator.Cache = cache
	l.pol.SetFaults(faults.NewInjector(faults.Plan{Seed: 1, LatencyRate: 1, Latency: 200 * time.Millisecond}))

	const senders = 8
	var wg sync.WaitGroup
	errs := make([]error, senders)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = o.Send(context.Background(), "a@s.lab", []string{"b@mu.test"}, []byte("x\n"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	s := cache.Stats()
	if leaders := s.Misses - s.Collapsed; leaders != 1 {
		t.Errorf("policy fetched %d times for %d concurrent deliveries (stats %+v)", leaders, senders, s)
	}
	if got := len(l.inboxes["mx.mu.test"].Messages()); got != senders {
		t.Errorf("inbox has %d messages, want %d", got, senders)
	}
}
