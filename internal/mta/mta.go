// Package mta implements a compliant outbound mail transfer agent on top
// of the reproduction's substrates: MX resolution with the RFC 5321
// implicit-MX fallback, DANE-first transport security (RFC 7672 — usable
// TLSA records take precedence over MTA-STS, the ordering §6.2 of the
// paper found some senders get wrong), MTA-STS policy enforcement with a
// TOFU cache and proactive refresh, multi-MX failover, and RFC 8460
// TLSRPT accounting. It is the engine behind examples/sendermta and
// cmd/mtasts-send, and the reference implementation of the sender
// behaviors the sendertest platform models.
package mta

import (
	"context"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnssec"
	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/smtpclient"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// Delivery errors.
var (
	ErrNoRecipients = errors.New("mta: no recipients")
	ErrNoMX         = errors.New("mta: recipient domain has no MX and no address records")
	// ErrPolicyRefused: a security policy (DANE or MTA-STS enforce)
	// forbids delivery via every candidate MX.
	ErrPolicyRefused = errors.New("mta: delivery refused by transport security policy")
	ErrAllMXFailed   = errors.New("mta: every MX candidate failed")
)

// Mechanism identifies which transport-security mechanism gated a
// delivery.
type Mechanism int

// Mechanisms, in precedence order. MechanismPKIX is appended after DANE
// to keep the historical values of the first four stable.
const (
	MechanismNone Mechanism = iota
	MechanismOpportunistic
	MechanismMTASTS
	MechanismDANE
	// MechanismPKIX: no policy applied, but the operator configured the
	// sender to always require verified TLS (RequirePKIX) — stricter than
	// opportunistic, weaker than a policy because a MITM can still strip
	// the MX record itself.
	MechanismPKIX
)

// String returns a short label.
func (m Mechanism) String() string {
	switch m {
	case MechanismOpportunistic:
		return "opportunistic"
	case MechanismMTASTS:
		return "mta-sts"
	case MechanismDANE:
		return "dane"
	case MechanismPKIX:
		return "pkix"
	}
	return "none"
}

// Outcome describes one delivery attempt's result.
type Outcome struct {
	// Delivered is true when the message was accepted by an MX.
	Delivered bool
	// MXHost is the MX that accepted (or last refused) the message.
	MXHost string
	// Mechanism is the security mechanism that applied.
	Mechanism Mechanism
	// TLS and CertVerified describe the transport used.
	TLS          bool
	CertVerified bool
	// Evaluation is the MTA-STS evaluation when Mechanism is MTASTS.
	Evaluation mtasts.Evaluation
}

// Outbound is a sending MTA.
type Outbound struct {
	// DNS resolves MX/A/TLSA records.
	DNS *resolver.Client
	// Validator is the MTA-STS engine; its cache enables TOFU semantics.
	// Nil models a sender that does not implement MTA-STS: delivery is
	// opportunistic (or PKIX/DANE-gated when those are configured).
	Validator *mtasts.Validator
	// TLSDisabled models the legacy plaintext-only sender of the paper's
	// §6 population: STARTTLS is never negotiated. Do not combine with
	// Validator, DANEEnabled, or RequirePKIX.
	TLSDisabled bool
	// RequirePKIX makes every delivery demand verified TLS even without a
	// policy — the "require TLS always" sender behavior of §6.
	RequirePKIX bool
	// MTASTSOverDANE inverts the RFC 7672/8461 precedence: when an MTA-STS
	// policy is fetchable it is applied and TLSA records are never
	// consulted. This reproduces the bug-compatible senders §6.2 of the
	// paper found in the wild; compliant senders leave it false.
	MTASTSOverDANE bool
	// Roots is the PKIX trust store for MTA-STS-verified delivery.
	Roots *x509.CertPool
	// HeloName is announced in EHLO.
	HeloName string
	// SMTPPort overrides port 25.
	SMTPPort int
	// AddrOverride maps an MX host to a dial address (loopback labs).
	AddrOverride func(mxHost string) string
	// DANEEnabled turns on TLSA lookups and DANE-first precedence.
	DANEEnabled bool
	// DNSSEC, when set, performs real chain validation of TLSA RRsets via
	// the dnssec substrate; only validated ("secure") RRsets make DANE
	// applicable, per RFC 7672 §2.2.
	DNSSEC *dnssec.Validator
	// DNSSECValid is the fallback security oracle used when DNSSEC is nil:
	// it reports whether a TLSA RRset for the name would arrive
	// DNSSEC-validated; nil means "yes" (for loopback labs that model
	// signed zones without signing them).
	DNSSECValid func(name string) bool
	// Timeout bounds each network step. Zero means 10s.
	Timeout time.Duration
	// Report, when non-nil, accumulates RFC 8460 TLSRPT entries.
	Report *tlsrpt.Report
	// Obs receives mta.* metrics; nil disables them.
	Obs *obs.Registry
}

// Send delivers one message to a single recipient domain, trying MX
// candidates in preference order.
func (o *Outbound) Send(ctx context.Context, from string, to []string, data []byte) (Outcome, error) {
	if len(to) == 0 {
		return Outcome{}, ErrNoRecipients
	}
	domain, err := domainOf(to[0])
	if err != nil {
		return Outcome{}, err
	}
	for _, rcpt := range to[1:] {
		d, err := domainOf(rcpt)
		if err != nil {
			return Outcome{}, err
		}
		if d != domain {
			return Outcome{}, fmt.Errorf("mta: recipients span domains %s and %s; send separately", domain, d)
		}
	}

	mxs, err := o.candidateMXs(ctx, domain)
	if err != nil {
		return Outcome{}, err
	}

	var lastErr error
	refusals := 0
	for _, mx := range mxs {
		out, err := o.deliverVia(ctx, domain, mx, from, to, data)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if errors.Is(err, ErrPolicyRefused) {
			refusals++
			// Policy refusals apply per MX; another candidate may match.
			continue
		}
	}
	if refusals == len(mxs) && refusals > 0 {
		// Keep the last per-MX error in the chain: it carries the typed
		// errtax cause (no_starttls, self_signed, inconsistency, ...) the
		// enforcement matrix asserts on.
		return Outcome{}, fmt.Errorf("%w: all %d MX candidates: %w", ErrPolicyRefused, refusals, lastErr)
	}
	return Outcome{}, fmt.Errorf("%w: last error: %v", ErrAllMXFailed, lastErr)
}

// candidateMXs resolves the recipient's MX records sorted by preference,
// falling back to the implicit MX (the domain itself) per RFC 5321 §5.1
// when no MX exists but address records do.
func (o *Outbound) candidateMXs(ctx context.Context, domain string) ([]string, error) {
	mxs, err := o.DNS.LookupMX(ctx, domain)
	if err == nil && len(mxs) > 0 {
		out := make([]string, len(mxs))
		for i, mx := range mxs {
			out[i] = mx.Host
		}
		return out, nil
	}
	if err != nil && !resolver.IsNotFound(err) {
		return nil, fmt.Errorf("mta: resolving MX for %s: %w", domain, err)
	}
	// Implicit MX: an A/AAAA record at the apex makes the domain its own
	// mail host.
	if _, aerr := o.DNS.LookupAddrs(ctx, domain, true); aerr == nil {
		return []string{domain}, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoMX, domain)
}

// deliverVia attempts delivery through one MX, applying the DANE →
// MTA-STS → opportunistic precedence (or the inverted MTA-STS → DANE
// ordering when MTASTSOverDANE models a non-compliant sender).
func (o *Outbound) deliverVia(ctx context.Context, domain, mxHost, from string, to []string, data []byte) (Outcome, error) {
	var ev mtasts.Evaluation
	stsEvaluated := false
	validate := func() error {
		if o.Validator == nil {
			// No MTA-STS engine: the evaluation is a pass-through deliver.
			ev = mtasts.Evaluation{Domain: domain, MXHost: mxHost, Action: mtasts.ActionDeliver}
			stsEvaluated = true
			return nil
		}
		e, err := o.Validator.Validate(ctx, domain, mxHost)
		if err != nil {
			return fmt.Errorf("mta: MTA-STS validation for %s: %w", domain, err)
		}
		ev = e
		stsEvaluated = true
		return nil
	}

	flipped := o.MTASTSOverDANE && o.Validator != nil
	if flipped {
		// Bug-compatible ordering: consult MTA-STS first and let a
		// fetchable policy shadow any TLSA records.
		if err := validate(); err != nil {
			return Outcome{}, err
		}
	}

	// DANE first for compliant senders (RFC 8461 §2: "senders who
	// implement both MUST NOT allow MTA-STS to override a DANE policy
	// failure"); flipped senders only reach it without a usable policy.
	if o.DANEEnabled && !(flipped && ev.PolicyFetched) {
		records := o.lookupTLSA(ctx, mxHost)
		if dane.Usable(records) {
			return o.deliverDANE(ctx, mxHost, from, to, data, records)
		}
	}

	// MTA-STS second.
	if !stsEvaluated {
		if err := validate(); err != nil {
			return Outcome{}, err
		}
	}
	if ev.Action == mtasts.ActionRefuse {
		o.recordFailure(tlsrpt.PolicyTypeSTS, domain, mxHost, stsFailureType(ev))
		return Outcome{Evaluation: ev, MXHost: mxHost, Mechanism: MechanismMTASTS},
			fmt.Errorf("%w: MTA-STS enforce policy rejects %s: %w", ErrPolicyRefused, mxHost, refusalCause(ev, mxHost))
	}
	requireTLS := o.RequirePKIX ||
		(ev.PolicyFetched && ev.Policy.Mode == mtasts.ModeEnforce && ev.Action == mtasts.ActionDeliver)
	sender := o.sender(mxHost)
	sender.RequireTLS = requireTLS && !o.TLSDisabled
	res, err := sender.Deliver(ctx, mxHost, from, to, data)
	mech := MechanismOpportunistic
	switch {
	case ev.PolicyFetched && ev.Policy.Mode != mtasts.ModeNone:
		mech = MechanismMTASTS
	case o.RequirePKIX:
		mech = MechanismPKIX
	case o.TLSDisabled:
		mech = MechanismNone
	}
	if err != nil {
		if requireTLS && errors.Is(err, smtpclient.ErrTLSRequired) {
			o.recordFailure(policyTypeFor(mech), domain, mxHost, tlsFailureType(err))
			return Outcome{Evaluation: ev, MXHost: mxHost, Mechanism: mech},
				fmt.Errorf("%w: TLS to %s failed under required-TLS policy: %w", ErrPolicyRefused, mxHost, err)
		}
		return Outcome{}, err
	}
	if mech == MechanismMTASTS && stsViolated(ev, res) {
		// Testing-mode (or unvalidated) delivery that did not meet the
		// policy: the message goes through, but RFC 8460 accounting must
		// record the violation rather than a success — this asymmetry is
		// what makes testing mode observable at all.
		o.recordFailure(tlsrpt.PolicyTypeSTS, domain, mxHost, violationType(ev, res))
	} else {
		o.recordSuccess(policyTypeFor(mech), domain)
	}
	return Outcome{
		Delivered: true, MXHost: mxHost, Mechanism: mech,
		TLS: res.TLS, CertVerified: res.CertVerified, Evaluation: ev,
	}, nil
}

// refusalCause types an MTA-STS refusal for the error taxonomy: an MX
// mismatch is the scanner's "inconsistency" verdict (policy and MX RRset
// disagree); anything else surfaces the validator's own typed errors.
func refusalCause(ev mtasts.Evaluation, mxHost string) error {
	if !ev.MXMatched {
		return errtax.New(errtax.LayerScan, errtax.CodeInconsistency, false,
			fmt.Sprintf("MX %s does not match any policy mx pattern", mxHost))
	}
	if ev.PolicyErr != nil {
		return ev.PolicyErr
	}
	if ev.RecordErr != nil {
		return ev.RecordErr
	}
	return errtax.New(errtax.LayerProbe, errtax.CodeNoCertificate, false,
		fmt.Sprintf("MX %s failed certificate validation: %s", mxHost, ev.CertProblem))
}

// stsViolated reports whether a delivery under an MTA-STS policy went
// through without meeting it (possible only in testing mode, where
// ActionDeliverUnvalidated and unverified transport still deliver).
func stsViolated(ev mtasts.Evaluation, res smtpclient.DeliveryResult) bool {
	return ev.Action == mtasts.ActionDeliverUnvalidated ||
		!ev.MXMatched || !res.TLS || !res.CertVerified
}

// violationType classifies a testing-mode violation for TLSRPT.
func violationType(ev mtasts.Evaluation, res smtpclient.DeliveryResult) tlsrpt.ResultType {
	switch {
	case !res.TLS:
		return tlsrpt.ResultSTARTTLSNotSupported
	case !ev.MXMatched:
		return tlsrpt.ResultValidationFailure
	case !res.CertVerified:
		return tlsrpt.ResultCertificateNotTrusted
	}
	return tlsrpt.ResultValidationFailure
}

// tlsFailureType maps a typed smtpclient TLS failure onto the TLSRPT
// result vocabulary.
func tlsFailureType(err error) tlsrpt.ResultType {
	code, _ := errtax.CodeOf(err)
	switch code {
	case errtax.CodeNoSTARTTLS:
		return tlsrpt.ResultSTARTTLSNotSupported
	case errtax.CodeExpired:
		return tlsrpt.ResultCertificateExpired
	case errtax.CodeNameMismatch:
		return tlsrpt.ResultCertificateHostMismatch
	}
	return tlsrpt.ResultCertificateNotTrusted
}

// deliverDANE delivers with the certificate verified against TLSA records.
func (o *Outbound) deliverDANE(ctx context.Context, mxHost, from string, to []string, data []byte, records []dane.Record) (Outcome, error) {
	sender := o.sender(mxHost)
	sender.RequireTLS = true
	sender.VerifyPeer = func(chain []*x509.Certificate, host string) error {
		return dane.Verify(records, chain)
	}
	res, err := sender.Deliver(ctx, mxHost, from, to, data)
	domain := strings.TrimPrefix(mxHost, "mx.") // reporting label only
	if err != nil {
		o.recordFailure(tlsrpt.PolicyTypeTLSA, domain, mxHost, tlsrpt.ResultTLSAInvalid)
		return Outcome{MXHost: mxHost, Mechanism: MechanismDANE},
			fmt.Errorf("%w: DANE validation for %s failed: %w", ErrPolicyRefused, mxHost, err)
	}
	o.recordSuccess(tlsrpt.PolicyTypeTLSA, domain)
	return Outcome{
		Delivered: true, MXHost: mxHost, Mechanism: MechanismDANE,
		TLS: res.TLS, CertVerified: res.CertVerified,
	}, nil
}

// lookupTLSA fetches the TLSA RRset for an MX host, attaching its DNSSEC
// security status: real chain validation when a dnssec.Validator is
// configured, otherwise the oracle hook.
func (o *Outbound) lookupTLSA(ctx context.Context, mxHost string) []dane.Record {
	name := dane.TLSAName(mxHost)
	var rrs []dnsmsg.RR
	var err error
	secure := true
	if o.DNSSEC != nil {
		rrs, secure, err = o.DNSSEC.SecureLookup(ctx, name, dnsmsg.TypeTLSA)
	} else {
		rrs, err = o.DNS.Lookup(ctx, name, dnsmsg.TypeTLSA)
		if o.DNSSECValid != nil {
			secure = o.DNSSECValid(name)
		}
	}
	if err != nil {
		return nil
	}
	var out []dane.Record
	for _, rr := range rrs {
		if rec, err := dane.FromRR(rr, secure); err == nil {
			out = append(out, rec)
		}
	}
	return out
}

func (o *Outbound) sender(mxHost string) *smtpclient.Sender {
	s := &smtpclient.Sender{
		HeloName:   o.HeloName,
		Roots:      o.Roots,
		Timeout:    o.timeout(),
		Port:       o.SMTPPort,
		DisableTLS: o.TLSDisabled,
	}
	if o.AddrOverride != nil {
		s.AddrOverride = o.AddrOverride(mxHost)
	}
	return s
}

func (o *Outbound) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o *Outbound) recordSuccess(ptype tlsrpt.PolicyType, domain string) {
	if o.Report != nil {
		o.Report.AddSuccess(ptype, domain, 1)
	}
}

func (o *Outbound) recordFailure(ptype tlsrpt.PolicyType, domain, mxHost string, result tlsrpt.ResultType) {
	if o.Report != nil {
		o.Report.AddFailure(ptype, domain, result, mxHost, 1)
	}
}

func stsFailureType(ev mtasts.Evaluation) tlsrpt.ResultType {
	if !ev.MXMatched {
		return tlsrpt.ResultValidationFailure
	}
	return tlsrpt.ResultCertificateNotTrusted
}

func policyTypeFor(m Mechanism) tlsrpt.PolicyType {
	switch m {
	case MechanismMTASTS:
		return tlsrpt.PolicyTypeSTS
	case MechanismDANE:
		return tlsrpt.PolicyTypeTLSA
	}
	return tlsrpt.PolicyTypeNoFind
}

// domainOf extracts the domain of an address like "user@example.com".
func domainOf(addr string) (string, error) {
	at := strings.LastIndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 {
		return "", fmt.Errorf("mta: malformed address %q", addr)
	}
	return strings.ToLower(addr[at+1:]), nil
}

// RefreshPolicies proactively revalidates cached MTA-STS policies that
// expire within the window, so send-time evaluations stay cache-hot
// (RFC 8461 §3.3: senders "SHOULD fetch the policy file at regular
// intervals"). Revalidation is in place: the cached entry is replaced
// only by a successful fetch, never evicted first, so a refresh failure
// (counted in mta.refresh.failures) leaves the old policy protecting
// deliveries instead of reopening the TLS-fallback downgrade window.
// It returns the number of domains refreshed.
func (o *Outbound) RefreshPolicies(ctx context.Context, window time.Duration) int {
	if o.Validator == nil || o.Validator.Cache == nil {
		return 0
	}
	rs, ok := o.Validator.Cache.(mtasts.RefreshableStore)
	if !ok {
		return 0
	}
	n := 0
	for _, domain := range rs.ExpiringWithin(window) {
		if err := o.Validator.Refresh(ctx, domain); err != nil {
			o.Obs.Counter("mta.refresh.failures").Inc()
			continue
		}
		n++
	}
	return n
}

// RunRefreshLoop calls RefreshPolicies every interval until ctx is done —
// the background refresher a production MTA runs.
func (o *Outbound) RunRefreshLoop(ctx context.Context, interval, window time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			o.RefreshPolicies(ctx, window)
		}
	}
}

// DialAddrFor builds an AddrOverride function from a static host→address
// table (loopback labs and tests).
func DialAddrFor(table map[string]string, defaultPort int) func(string) string {
	return func(mxHost string) string {
		if addr, ok := table[mxHost]; ok {
			return addr
		}
		if defaultPort == 0 {
			return ""
		}
		return net.JoinHostPort(mxHost, strconv.Itoa(defaultPort))
	}
}
