// Package psl implements a minimal public-suffix list and the
// registrable-domain ("effective second-level domain", eSLD) computation
// used by the managing-entity heuristics in §4.3.1 of the paper.
//
// The embedded list covers the TLDs measured by the paper (.com, .net,
// .org, .se) plus the multi-label public suffixes that commonly appear in
// mail-hosting infrastructure. Additional suffixes can be registered on a
// custom List.
package psl

import (
	"strings"

	"github.com/netsecurelab/mtasts/internal/strutil"
)

// List is a set of public suffixes. Lookups are exact-label matches plus
// wildcard rules of the form "*.<suffix>".
type List struct {
	exact    map[string]bool
	wildcard map[string]bool // value of "*.x" stored under "x"
}

// defaultSuffixes is the embedded rule set. It deliberately covers the
// paper's four TLDs, common ccTLD second-level registries seen in MX
// hostnames, and infrastructure suffixes under which providers hand out
// per-customer names.
var defaultSuffixes = []string{
	// Paper TLDs.
	"com", "net", "org", "se",
	// Common gTLDs that show up in MX / NS / policy-host names.
	"io", "de", "uk", "nl", "eu", "co", "tech", "pro", "dev", "app",
	"info", "biz", "us", "ca", "au", "fr", "ch", "at", "dk", "no", "fi",
	"email", "cloud", "host", "online", "site", "xyz", "me",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk",
	"com.au", "net.au", "org.au",
	"co.se", // historic
	"com.br", "com.mx", "co.jp", "ne.jp", "or.jp", "co.nz",
	// Wildcard example rules.
	"*.compute.example-cloud.internal",
}

var defaultList = NewList(defaultSuffixes)

// NewList builds a List from suffix rules. A rule beginning with "*."
// declares every direct child of the remainder a public suffix.
func NewList(rules []string) *List {
	l := &List{exact: make(map[string]bool), wildcard: make(map[string]bool)}
	for _, r := range rules {
		r = strutil.CanonicalName(r)
		if rest, ok := strings.CutPrefix(r, "*."); ok {
			l.wildcard[rest] = true
			continue
		}
		if r != "" {
			l.exact[r] = true
		}
	}
	return l
}

// Default returns the embedded list.
func Default() *List { return defaultList }

// Add registers an additional suffix rule on the list.
func (l *List) Add(rule string) {
	rule = strutil.CanonicalName(rule)
	if rest, ok := strings.CutPrefix(rule, "*."); ok {
		l.wildcard[rest] = true
		return
	}
	if rule != "" {
		l.exact[rule] = true
	}
}

// PublicSuffix returns the longest public suffix of name according to the
// list. When no rule matches, the rightmost label is used (the standard
// "implicit *" rule), so PublicSuffix never returns "" for a non-empty name.
func (l *List) PublicSuffix(name string) string {
	labels := strutil.Labels(name)
	if len(labels) == 0 {
		return ""
	}
	// Scan from the longest candidate suffix to the shortest.
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if l.exact[cand] {
			return cand
		}
		// "*.x" matches exactly one extra label in front of x.
		if i+1 < len(labels) && l.wildcard[strings.Join(labels[i+1:], ".")] {
			return cand
		}
	}
	return labels[len(labels)-1]
}

// RegistrableDomain returns the eSLD of name: the public suffix plus one
// label. It returns "" when name itself is a public suffix or empty.
func (l *List) RegistrableDomain(name string) string {
	name = strutil.CanonicalName(name)
	suffix := l.PublicSuffix(name)
	if suffix == "" || name == suffix {
		return ""
	}
	rest := strings.TrimSuffix(name, "."+suffix)
	labels := strutil.Labels(rest)
	if len(labels) == 0 {
		return ""
	}
	return labels[len(labels)-1] + "." + suffix
}

// RegistrableDomain computes the eSLD using the default list.
func RegistrableDomain(name string) string {
	return defaultList.RegistrableDomain(name)
}

// PublicSuffix computes the public suffix using the default list.
func PublicSuffix(name string) string {
	return defaultList.PublicSuffix(name)
}

// SameRegistrableDomain reports whether two names share an eSLD (and that
// eSLD is non-empty). This is Heuristic 2's "same SLD" test from §4.3.1.
func SameRegistrableDomain(a, b string) bool {
	ra := RegistrableDomain(a)
	return ra != "" && ra == RegistrableDomain(b)
}

// TLD returns the rightmost label of a name.
func TLD(name string) string {
	labels := strutil.Labels(name)
	if len(labels) == 0 {
		return ""
	}
	return labels[len(labels)-1]
}
