package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "com"},
		{"mail.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"www.example.co.uk", "co.uk"},
		{"example.se", "se"},
		{"com", "com"},
		{"co.uk", "co.uk"},
		{"example.unknown-tld", "unknown-tld"}, // implicit * rule
		{"", ""},
	}
	for _, c := range cases {
		if got := PublicSuffix(c.in); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example.com"},
		{"mail.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"example.co.uk", "example.co.uk"},
		{"mx1.example.co.uk", "example.co.uk"},
		{"Example.COM.", "example.com"},
		{"com", ""},
		{"co.uk", ""},
		{"", ""},
		{"mta-sts.tutanota.de", "tutanota.de"},
	}
	for _, c := range cases {
		if got := RegistrableDomain(c.in); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWildcardRule(t *testing.T) {
	l := NewList([]string{"com", "*.regional.example-registry"})
	if got := l.PublicSuffix("zone1.regional.example-registry"); got != "zone1.regional.example-registry" {
		t.Errorf("wildcard public suffix = %q", got)
	}
	if got := l.RegistrableDomain("customer.zone1.regional.example-registry"); got != "customer.zone1.regional.example-registry" {
		t.Errorf("wildcard registrable domain = %q", got)
	}
}

func TestAdd(t *testing.T) {
	l := NewList([]string{"com"})
	l.Add("fancy.tld")
	if got := l.RegistrableDomain("x.fancy.tld"); got != "x.fancy.tld" {
		t.Errorf("after Add, RegistrableDomain = %q", got)
	}
	l.Add("*.dyn.tld")
	if got := l.PublicSuffix("a.dyn.tld"); got != "a.dyn.tld" {
		t.Errorf("after Add wildcard, PublicSuffix = %q", got)
	}
}

func TestSameRegistrableDomain(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"mail.example.com", "mta-sts.example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "example.net", false},
		{"com", "com", false}, // empty eSLD never matches
		{"mx.tutanota.de", "mta-sts.tutanota.de", true},
	}
	for _, c := range cases {
		if got := SameRegistrableDomain(c.a, c.b); got != c.want {
			t.Errorf("SameRegistrableDomain(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: the registrable domain of a name, when non-empty, is a suffix of
// the canonical name on a label boundary, and its registrable domain is
// itself (idempotence).
func TestRegistrableDomainProperties(t *testing.T) {
	labels := []string{"a", "mail", "mx1", "example", "foo", "bar", "com", "net", "org", "se", "co", "uk"}
	f := func(seed uint32, n uint8) bool {
		k := int(n%5) + 1
		parts := make([]string, k)
		s := seed
		for i := range parts {
			s = s*1664525 + 1013904223
			parts[i] = labels[int(s)%len(labels)]
		}
		name := strings.Join(parts, ".")
		rd := RegistrableDomain(name)
		if rd == "" {
			return true
		}
		if !(name == rd || strings.HasSuffix(name, "."+rd)) {
			return false
		}
		return RegistrableDomain(rd) == rd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLD(t *testing.T) {
	if got := TLD("mail.example.com"); got != "com" {
		t.Errorf("TLD = %q", got)
	}
	if got := TLD(""); got != "" {
		t.Errorf("TLD(empty) = %q", got)
	}
}
