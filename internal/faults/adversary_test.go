package faults

import (
	"crypto/tls"
	"reflect"
	"testing"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/errtax"
)

func TestAttackRegistryWellFormed(t *testing.T) {
	all := Attacks()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}
	validLayer := map[string]bool{"dns": true, "policy": true, "smtp": true, "dane": true}
	validOutcome := map[string]bool{OutcomeDeliverTLS: true, OutcomeDeliverPlain: true, OutcomeRefuse: true}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || seen[a.Name] {
			t.Errorf("attack %q: empty or duplicate name", a.Name)
		}
		seen[a.Name] = true
		if !validLayer[a.Layer] {
			t.Errorf("%s: unknown layer %q", a.Name, a.Layer)
		}
		if a.Doc == "" {
			t.Errorf("%s: missing doc line", a.Name)
		}
		for _, mode := range []string{"none", "testing", "enforce"} {
			if !validOutcome[a.Expect(mode)] {
				t.Errorf("%s: invalid expected outcome %q for mode %s", a.Name, a.Expect(mode), mode)
			}
		}
		if a.Code != "" {
			if _, ok := errtax.Lookup(a.Code); !ok {
				t.Errorf("%s: expectation code %q is not in the errtax registry", a.Name, a.Code)
			}
		}
	}
	for _, name := range AttackNames() {
		if _, ok := AttackByName(name); !ok {
			t.Errorf("AttackByName(%q) does not resolve", name)
		}
	}
	if _, ok := AttackByName("no_such_attack"); ok {
		t.Error("AttackByName resolved an unregistered name")
	}
}

// TestNoDowngradeExpectations pins the registry's own promise: no
// registered attack expects the canonical sender to deliver plaintext
// in enforce mode. The live-path version of this invariant is
// internal/experiments' TestNoDowngradeInvariant.
func TestNoDowngradeExpectations(t *testing.T) {
	for _, a := range Attacks() {
		if a.ExpectEnforce == OutcomeDeliverPlain {
			t.Errorf("%s: registry expects a plaintext delivery in enforce mode", a.Name)
		}
	}
}

func mustAttack(t *testing.T, name string) Attack {
	t.Helper()
	a, ok := AttackByName(name)
	if !ok {
		t.Fatalf("attack %q not registered", name)
	}
	return a
}

func testScenario(t *testing.T, name string, seed int64) Scenario {
	t.Helper()
	return Scenario{
		Attack:     mustAttack(t, name),
		Seed:       seed,
		Domain:     "victim.test",
		MXHost:     "mx.victim.test",
		EvilMXHost: "mx.evil.test",
		EvilCert:   &tls.Certificate{},
		PolicyBody: "version: STSv1\nmode: enforce\nmx: mx.victim.test\nmax_age: 604800\n",
	}
}

func TestAdversaryDNSRewrites(t *testing.T) {
	seed := int64(7)

	strip := NewAdversary(testScenario(t, "dns_strip_record", seed))
	if ans, ok := strip.DNS("_mta-sts.victim.test.", dnsmsg.TypeTXT); !ok || len(ans) != 0 {
		t.Errorf("dns_strip_record: got (%v, %v), want empty rewrite", ans, ok)
	}
	if _, ok := strip.DNS("victim.test", dnsmsg.TypeMX); ok {
		t.Error("dns_strip_record rewrote an MX query")
	}
	if _, ok := strip.DNS("_mta-sts.other.test", dnsmsg.TypeTXT); ok {
		t.Error("dns_strip_record rewrote another domain's record")
	}

	spoof := NewAdversary(testScenario(t, "dns_spoof_record", seed))
	ans, ok := spoof.DNS("_MTA-STS.Victim.Test", dnsmsg.TypeTXT)
	if !ok || len(ans) != 1 {
		t.Fatalf("dns_spoof_record: got (%v, %v), want one spoofed RR", ans, ok)
	}
	if txt, _ := ans[0].Data.(dnsmsg.TXTData); txt.Joined() != "v=STSv1; id=evil id!;" {
		t.Errorf("dns_spoof_record value = %q", txt.Joined())
	}

	imp := NewAdversary(testScenario(t, "mx_impostor", seed))
	ans, ok = imp.DNS("victim.test", dnsmsg.TypeMX)
	if !ok || len(ans) != 1 {
		t.Fatalf("mx_impostor: got (%v, %v), want one spoofed MX", ans, ok)
	}
	if mx, _ := ans[0].Data.(dnsmsg.MXData); mx.Host != "mx.evil.test" {
		t.Errorf("mx_impostor host = %q", mx.Host)
	}

	tlsa := NewAdversary(testScenario(t, "tlsa_mismatch", seed))
	ans, ok = tlsa.DNS("_25._tcp.mx.victim.test", dnsmsg.TypeTLSA)
	if !ok || len(ans) != 1 {
		t.Fatalf("tlsa_mismatch: got (%v, %v), want one spoofed TLSA", ans, ok)
	}
	td, _ := ans[0].Data.(dnsmsg.TLSAData)
	if td.Usage != 3 || td.Selector != 1 || td.MatchingType != 1 || len(td.CertData) != 32 {
		t.Errorf("tlsa_mismatch record = %+v", td)
	}

	counts := tlsa.Counts()
	if counts["dns.spoof"] != 1 {
		t.Errorf("tlsa counts = %v, want dns.spoof=1", counts)
	}
}

func TestAdversaryDeterministicUnderSeed(t *testing.T) {
	a1 := NewAdversary(testScenario(t, "policy_mitm_cert", 42))
	a2 := NewAdversary(testScenario(t, "policy_mitm_cert", 42))
	b := NewAdversary(testScenario(t, "policy_mitm_cert", 43))
	r1, _ := a1.DNS("_mta-sts.victim.test", dnsmsg.TypeTXT)
	r2, _ := a2.DNS("_mta-sts.victim.test", dnsmsg.TypeTXT)
	r3, _ := b.DNS("_mta-sts.victim.test", dnsmsg.TypeTXT)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed produced different spoofed records: %v vs %v", r1, r2)
	}
	if reflect.DeepEqual(r1, r3) {
		t.Error("different seeds produced the same spoofed record id")
	}
}

func TestAdversaryPolicyVerdicts(t *testing.T) {
	mitm := NewAdversary(testScenario(t, "policy_mitm_cert", 7))
	if !mitm.PolicyCert("mta-sts.victim.test") {
		t.Error("policy_mitm_cert did not claim the policy host TLS session")
	}
	if mitm.PolicyCert("mta-sts.other.test") {
		t.Error("policy_mitm_cert claimed another tenant's session")
	}
	if act, _ := mitm.PolicyBody("mta-sts.victim.test"); act != BodyHonest {
		t.Errorf("policy_mitm_cert body action = %v, want honest", act)
	}

	roll := NewAdversary(testScenario(t, "policy_rollback_none", 7))
	if act, body := roll.PolicyBody("mta-sts.victim.test"); act != BodyReplace || body != "version: STSv1\nmode: none\nmax_age: 604800\n" {
		t.Errorf("policy_rollback_none = (%v, %q)", act, body)
	}

	age := NewAdversary(testScenario(t, "policy_rollback_max_age", 7))
	if act, body := age.PolicyBody("mta-sts.victim.test"); act != BodyReplace || body != "version: STSv1\nmode: enforce\nmx: mx.victim.test\nmax_age: 60\n" {
		t.Errorf("policy_rollback_max_age = (%v, %q)", act, body)
	}

	over := NewAdversary(testScenario(t, "policy_oversized", 7))
	if act, _ := over.PolicyBody("mta-sts.victim.test"); act != BodyOversized {
		t.Errorf("policy_oversized action = %v", act)
	}
	slow := NewAdversary(testScenario(t, "policy_slowloris", 7))
	if act, _ := slow.PolicyBody("mta-sts.victim.test"); act != BodySlowloris {
		t.Errorf("policy_slowloris action = %v", act)
	}
}

func TestAdversarySMTPVerdicts(t *testing.T) {
	sc := testScenario(t, "starttls_strip", 7)
	strip := NewAdversary(sc)
	if v := strip.SMTP("mx.victim.test"); !v.StripSTARTTLS || v.Cert != nil {
		t.Errorf("starttls_strip verdict = %+v", v)
	}
	if v := strip.SMTP("mx.other.test"); v.StripSTARTTLS {
		t.Error("starttls_strip tampered with another host's session")
	}

	wc := testScenario(t, "mx_wrong_cert", 7)
	wrong := NewAdversary(wc)
	if v := wrong.SMTP("MX.Victim.Test"); v.Cert != wc.EvilCert || v.StripSTARTTLS {
		t.Errorf("mx_wrong_cert verdict = %+v", v)
	}
}

func TestAdversaryNilReceiver(t *testing.T) {
	var a *Adversary
	if _, ok := a.DNS("_mta-sts.victim.test", dnsmsg.TypeTXT); ok {
		t.Error("nil adversary rewrote DNS")
	}
	if a.PolicyCert("mta-sts.victim.test") {
		t.Error("nil adversary claimed a TLS session")
	}
	if act, _ := a.PolicyBody("mta-sts.victim.test"); act != BodyHonest {
		t.Error("nil adversary tampered with a body")
	}
	if v := a.SMTP("mx.victim.test"); v.StripSTARTTLS || v.Cert != nil {
		t.Error("nil adversary tampered with SMTP")
	}
	if a.Counts() != nil {
		t.Error("nil adversary has counts")
	}
	if (a.Scenario() != Scenario{}) {
		t.Error("nil adversary has a scenario")
	}
}
