// Package faults implements a deterministic, seedable fault plan for
// the scan substrate: per-query DNS packet loss, SERVFAIL/REFUSED
// blips, forced truncation, added latency, and per-connection resets.
// The substrate servers (dnsserver, policysrv, smtpd) consult an
// Injector at their wire boundaries, so the scanner probes a
// misbehaving Internet over real sockets — the precondition for testing
// that retries separate transient failures from the paper's persistent
// misconfiguration taxonomy (§4).
//
// Determinism is the point: every decision is a pure function of
// (seed, kind, key, per-key sequence number), so two runs that issue
// the same per-key event sequences experience identical faults and a
// fault run can be replayed for debugging. Keys are chosen by the
// substrate so that they are stable across runs — a DNS (name, type),
// a TLS SNI, an SMTP server hostname — and per-key sequences are
// independent, so concurrency across keys does not perturb decisions.
//
// Faults are transient by construction: MaxConsecutive bounds how many
// consecutive events on one key may fault, so a retry loop with a
// larger attempt budget is guaranteed to get through. That is what
// makes "zero misclassifications with retries enabled" a testable
// property rather than a statistical hope.
package faults
