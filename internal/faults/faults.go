package faults

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Plan describes the fault mix. Rates are per-event probabilities in
// [0, 1]; the zero value injects nothing.
type Plan struct {
	// Seed makes the plan reproducible.
	Seed int64

	// DNSLoss silently drops the query (the client times out).
	DNSLoss float64
	// DNSServFail answers SERVFAIL.
	DNSServFail float64
	// DNSRefuse answers REFUSED.
	DNSRefuse float64
	// DNSTruncate forces the TC bit on UDP answers (the client retries
	// over TCP, where the same key may fault again).
	DNSTruncate float64

	// ConnReset closes a TCP connection mid-handshake (policy host) or
	// before the greeting (SMTP).
	ConnReset float64

	// LatencyRate adds Latency before the affected event.
	LatencyRate float64
	// Latency is the added delay per latency event.
	Latency time.Duration

	// MaxConsecutive bounds consecutive faults per key. 0 means 2.
	// Retry loops need MaxAttempts > MaxConsecutive to be guaranteed
	// through.
	MaxConsecutive int
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool {
	return p.DNSLoss > 0 || p.DNSServFail > 0 || p.DNSRefuse > 0 ||
		p.DNSTruncate > 0 || p.ConnReset > 0 || (p.LatencyRate > 0 && p.Latency > 0)
}

func (p Plan) maxConsecutive() int {
	if p.MaxConsecutive <= 0 {
		return 2
	}
	return p.MaxConsecutive
}

// String renders the active rates, for run logs.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	add := func(name string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%.2g", name, v))
		}
	}
	add("dns_loss", p.DNSLoss)
	add("dns_servfail", p.DNSServFail)
	add("dns_refuse", p.DNSRefuse)
	add("dns_truncate", p.DNSTruncate)
	add("conn_reset", p.ConnReset)
	if p.LatencyRate > 0 && p.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v@%.2g", p.Latency, p.LatencyRate))
	}
	parts = append(parts, fmt.Sprintf("max_consecutive=%d", p.maxConsecutive()))
	return strings.Join(parts, ",")
}

// DNSAction is the injected outcome for one DNS query.
type DNSAction int

// DNS fault actions.
const (
	DNSNone DNSAction = iota
	DNSDrop
	DNSServFail
	DNSRefuse
	DNSTruncate
)

// String returns the action's counter segment.
func (a DNSAction) String() string {
	switch a {
	case DNSNone:
		return "none"
	case DNSDrop:
		return "drop"
	case DNSServFail:
		return "servfail"
	case DNSRefuse:
		return "refuse"
	case DNSTruncate:
		return "truncate"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// ConnAction is the injected outcome for one connection event.
type ConnAction int

// Connection fault actions.
const (
	ConnNone ConnAction = iota
	ConnReset
)

// String returns the action's counter segment.
func (a ConnAction) String() string {
	switch a {
	case ConnNone:
		return "none"
	case ConnReset:
		return "reset"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Injector realizes a Plan, tracking per-key sequence numbers and the
// consecutive-fault bound. Safe for concurrent use; all methods are
// no-ops on a nil receiver.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	keys   map[string]*keyState
	counts map[string]int64
}

type keyState struct {
	seq         uint64
	consecutive int
}

// NewInjector returns an injector for the plan.
func NewInjector(p Plan) *Injector {
	return &Injector{
		plan:   p,
		keys:   make(map[string]*keyState),
		counts: make(map[string]int64),
	}
}

// Plan returns the injector's plan (zero value on nil).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// DNS decides the fate of one DNS query. key should identify the
// query's (name, type) so per-key sequences are stable across runs.
func (i *Injector) DNS(key string) (DNSAction, time.Duration) {
	if i == nil || !i.plan.Active() {
		return DNSNone, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	u, delay := i.nextLocked("dns", key)
	act := DNSNone
	p := i.plan
	switch {
	case u < p.DNSLoss:
		act = DNSDrop
	case u < p.DNSLoss+p.DNSServFail:
		act = DNSServFail
	case u < p.DNSLoss+p.DNSServFail+p.DNSRefuse:
		act = DNSRefuse
	case u < p.DNSLoss+p.DNSServFail+p.DNSRefuse+p.DNSTruncate:
		act = DNSTruncate
	}
	act = DNSAction(i.commitLocked("dns", key, int(act), int(DNSNone)))
	if act != DNSNone {
		i.counts["dns."+act.String()]++
	}
	return act, delay
}

// Conn decides the fate of one connection-level event for a service
// ("policysrv", "smtpd"). key should be stable across runs (an SNI
// name, a server hostname).
func (i *Injector) Conn(service, key string) (ConnAction, time.Duration) {
	if i == nil || !i.plan.Active() {
		return ConnNone, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	u, delay := i.nextLocked(service, key)
	act := ConnNone
	if u < i.plan.ConnReset {
		act = ConnReset
	}
	act = ConnAction(i.commitLocked(service, key, int(act), int(ConnNone)))
	if act != ConnNone {
		i.counts[service+"."+act.String()]++
	}
	return act, delay
}

// nextLocked draws the decision and latency uniforms for the key's next
// event and advances its sequence number.
func (i *Injector) nextLocked(kind, key string) (u float64, delay time.Duration) {
	full := kind + "|" + key
	st := i.keys[full]
	if st == nil {
		st = &keyState{}
		i.keys[full] = st
	}
	u = unitHash(i.plan.Seed, "act|"+full, st.seq)
	if i.plan.LatencyRate > 0 && i.plan.Latency > 0 &&
		unitHash(i.plan.Seed, "lat|"+full, st.seq) < i.plan.LatencyRate {
		delay = i.plan.Latency
		i.counts[kind+".delay"]++
	}
	st.seq++
	return u, delay
}

// commitLocked applies the consecutive-fault bound: a drawn fault is
// suppressed once the key has faulted MaxConsecutive times in a row,
// and the counter resets on any clean event.
func (i *Injector) commitLocked(kind, key string, act, none int) int {
	st := i.keys[kind+"|"+key]
	if act != none && st.consecutive >= i.plan.maxConsecutive() {
		act = none
	}
	if act != none {
		st.consecutive++
	} else {
		st.consecutive = 0
	}
	return act
}

// Counts returns a copy of the injected-action counters
// (e.g. "dns.drop", "policysrv.reset", "dns.delay").
func (i *Injector) Counts() map[string]int64 {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// CountsString renders the counts sorted by name, for logs and tables.
func (i *Injector) CountsString() string {
	counts := i.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// unitHash maps (seed, label, seq) to a uniform float64 in [0, 1) via
// FNV-1a with a splitmix64 finalizer for avalanche.
func unitHash(seed int64, label string, seq uint64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	h.Write(buf[:])
	h.Write([]byte(label))
	v := h.Sum64()
	// splitmix64 finalizer.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return float64(v>>11) / (1 << 53)
}
