package faults

// adversary.go grows the package from a transient-fault injector into a
// deterministic adversary model: each Attack is an active-MITM scenario
// from the MTA-STS threat model (RFC 8461 §10) — DNS spoofing/stripping,
// policy rollback through a compromised policy host, STARTTLS stripping,
// wrong-certificate MX, resource-exhaustion policy bodies, and TLSA
// tampering for the DANE path. An Adversary realizes one Attack against
// one recipient domain; the simnet servers (dnsserver, policysrv, smtpd)
// consult it on the wire path, so the full sender stack — resolver,
// validator, cache, SMTP client — sees exactly what it would see under a
// real on-path attacker. Everything is deterministic under Scenario.Seed
// so matrix runs fingerprint identically.

import (
	"crypto/tls"
	"fmt"
	"strings"
	"sync"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Outcome labels for the canonical validating sender (TLS-capable,
// validates MTA-STS and DANE, warm policy cache) under an attack.
const (
	// OutcomeDeliverTLS: mail is delivered over verified STARTTLS to the
	// true MX — the attack is defeated.
	OutcomeDeliverTLS = "deliver-tls"
	// OutcomeDeliverPlain: mail is delivered without TLS (or to an
	// attacker-controlled endpoint) — the downgrade succeeded.
	OutcomeDeliverPlain = "deliver-plain"
	// OutcomeRefuse: delivery is refused; mail stays queued.
	OutcomeRefuse = "refuse"
)

// Attack is one registered hostile scenario. The Expect* fields state
// the delivery outcome for the canonical validating sender per policy
// mode, and Code the errtax code the sender path surfaces; together
// they pin the §6-style enforcement matrix (docs/ADVERSARY.md).
type Attack struct {
	// Name is the stable registry key ("dns_strip_record", ...).
	Name string
	// Layer is where the tampering happens: "dns", "policy", "smtp" or
	// "dane".
	Layer string
	// Code is the errtax code the validating sender surfaces under this
	// attack ("" when the attack leaves no typed error, e.g. a stripped
	// record absorbed by the policy cache).
	Code errtax.Code
	// CodeOnDeliver marks attacks whose code is visible even on
	// delivered cells: the fetch/lookup fails but the cached policy
	// carries delivery, so the evaluation records the error while the
	// mail still flows.
	CodeOnDeliver bool
	// ExpectNone, ExpectTesting and ExpectEnforce are the Outcome*
	// labels for the canonical sender when the recipient's policy is in
	// that mode.
	ExpectNone, ExpectTesting, ExpectEnforce string
	// NeedsTLSA marks attacks whose world must publish DANE TLSA
	// records for the true MX (the attack targets the DANE path).
	NeedsTLSA bool
	// Doc is the one-line catalog description.
	Doc string
}

// Expect returns the canonical-sender outcome label for a policy mode
// ("none", "testing", "enforce").
func (a Attack) Expect(mode string) string {
	switch mode {
	case "testing":
		return a.ExpectTesting
	case "enforce":
		return a.ExpectEnforce
	}
	return a.ExpectNone
}

// attacks is the registry, in catalog order. docs/ADVERSARY.md mirrors
// this table row for row (internal/docscheck pins the two together).
var attacks = []Attack{
	{
		Name: "dns_strip_record", Layer: "dns", Code: "",
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "answer NODATA for the _mta-sts TXT query; the TOFU cache keeps the last policy enforced",
	},
	{
		Name: "dns_spoof_record", Layer: "dns", Code: errtax.CodeBadSyntax, CodeOnDeliver: true,
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "replace the _mta-sts TXT record with a malformed one; the cached policy survives the bad record",
	},
	{
		Name: "policy_mitm_cert", Layer: "policy", Code: errtax.CodeTLSHandshake, CodeOnDeliver: true,
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "spoof a fresh record id and MITM the policy host with a self-signed certificate; HTTPS PKI rejects it and the cache carries delivery",
	},
	{
		Name: "policy_rollback_none", Layer: "policy", Code: "",
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "valid-certificate policy host (compromised CDN) serves a mode:none rollback; the cache is poisoned but delivery stays TLS to the true MX",
	},
	{
		Name: "policy_rollback_max_age", Layer: "policy", Code: "",
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "valid-certificate policy host serves the true policy with max_age collapsed to 60s, shrinking the TOFU window for a later strike",
	},
	{
		Name: "policy_oversized", Layer: "policy", Code: errtax.CodeHTTPStatus, CodeOnDeliver: true,
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "spoof a fresh record id and serve a policy body past the 64 KiB cap; the fetch aborts and the cache carries delivery",
	},
	{
		Name: "policy_slowloris", Layer: "policy", Code: errtax.CodeHTTPStatus, CodeOnDeliver: true,
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeDeliverTLS,
		Doc: "spoof a fresh record id and trickle the policy body forever; the fetch deadline fires and the cache carries delivery",
	},
	{
		Name: "starttls_strip", Layer: "smtp", Code: errtax.CodeNoSTARTTLS,
		ExpectNone: OutcomeDeliverPlain, ExpectTesting: OutcomeDeliverPlain, ExpectEnforce: OutcomeRefuse,
		Doc: "strip STARTTLS from the MX's EHLO response and reject the command; enforce refuses, testing delivers plaintext and reports",
	},
	{
		Name: "mx_wrong_cert", Layer: "smtp", Code: errtax.CodeSelfSigned,
		ExpectNone: OutcomeDeliverTLS, ExpectTesting: OutcomeDeliverTLS, ExpectEnforce: OutcomeRefuse,
		Doc: "on-path MX presents an attacker certificate; enforce refuses, testing delivers over unverified TLS and reports",
	},
	{
		Name: "mx_impostor", Layer: "dns", Code: errtax.CodeInconsistency,
		ExpectNone: OutcomeDeliverPlain, ExpectTesting: OutcomeDeliverPlain, ExpectEnforce: OutcomeRefuse,
		Doc: "spoof the MX RRset to an attacker host outside the policy's mx patterns; enforce refuses before connecting",
	},
	{
		Name: "tlsa_mismatch", Layer: "dane", Code: errtax.CodeTLSANoMatch, NeedsTLSA: true,
		ExpectNone: OutcomeRefuse, ExpectTesting: OutcomeRefuse, ExpectEnforce: OutcomeRefuse,
		Doc: "spoof the TLSA RRset with a non-matching association; DANE validators refuse in every MTA-STS mode",
	},
}

// Attacks returns the registry in catalog order (a copy).
func Attacks() []Attack {
	out := make([]Attack, len(attacks))
	copy(out, attacks)
	return out
}

// AttackNames returns the registered attack names in catalog order.
func AttackNames() []string {
	names := make([]string, len(attacks))
	for i, a := range attacks {
		names[i] = a.Name
	}
	return names
}

// AttackByName looks an attack up by its stable name.
func AttackByName(name string) (Attack, bool) {
	for _, a := range attacks {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// Scenario binds an Attack to one recipient deployment. The harness
// supplies the world facts (domain, true MX, honest policy body) and
// any attacker material that needs a PKI (the evil certificate); the
// Adversary derives everything else deterministically from Seed.
type Scenario struct {
	// Attack is the registered attack to mount.
	Attack Attack
	// Seed drives the spoofed record id and TLSA bytes so same-seed
	// runs are byte-identical.
	Seed int64
	// Domain is the attacked recipient domain.
	Domain string
	// MXHost is the domain's true MX hostname.
	MXHost string
	// EvilMXHost is the attacker's MX hostname (mx_impostor).
	EvilMXHost string
	// EvilCert is the attacker's certificate, presented by a MITM'd MX
	// (mx_wrong_cert). Minted by the harness; faults stays crypto-free.
	EvilCert *tls.Certificate
	// PolicyBody is the recipient's honest policy body, which the
	// max_age rollback rewrites.
	PolicyBody string
}

// BodyAction is the adversary's verdict on a policy HTTP response.
type BodyAction int

// Policy-body actions.
const (
	// BodyHonest: serve the tenant's real policy.
	BodyHonest BodyAction = iota
	// BodyReplace: serve the adversary-supplied body instead.
	BodyReplace
	// BodyOversized: serve a body past the RFC 8461 64 KiB cap.
	BodyOversized
	// BodySlowloris: trickle the body a few bytes at a time, forever.
	BodySlowloris
)

// SMTPVerdict is the adversary's tampering for one SMTP session.
type SMTPVerdict struct {
	// StripSTARTTLS removes the capability from EHLO and rejects the
	// STARTTLS command.
	StripSTARTTLS bool
	// Cert, when non-nil, replaces the certificate the server presents.
	Cert *tls.Certificate
}

// Adversary realizes one Scenario on the wire. The simnet servers call
// DNS, PolicyCert, PolicyBody and SMTP from their serving paths; every
// method is safe for concurrent use and a no-op on a nil receiver, so
// SetAdversary(nil) restores honest behavior.
type Adversary struct {
	sc Scenario

	txtName  string // _mta-sts.<domain>
	mxName   string // <domain>
	tlsaName string // _25._tcp.<mxhost>
	polHost  string // mta-sts.<domain>
	evilID   string // deterministic spoofed record id

	mu     sync.Mutex
	counts map[string]int64
}

// NewAdversary builds the adversary for a scenario.
func NewAdversary(sc Scenario) *Adversary {
	return &Adversary{
		sc:       sc,
		txtName:  "_mta-sts." + strutil.CanonicalName(sc.Domain),
		mxName:   strutil.CanonicalName(sc.Domain),
		tlsaName: "_25._tcp." + strutil.CanonicalName(sc.MXHost),
		polHost:  "mta-sts." + strutil.CanonicalName(sc.Domain),
		evilID:   spoofedID(sc.Seed, sc.Domain),
		counts:   make(map[string]int64),
	}
}

// Scenario returns the adversary's scenario (zero value on nil).
func (a *Adversary) Scenario() Scenario {
	if a == nil {
		return Scenario{}
	}
	return a.sc
}

func (a *Adversary) count(key string) {
	a.mu.Lock()
	a.counts[key]++
	a.mu.Unlock()
}

// Counts returns a copy of the interception tallies ("dns.strip",
// "policy.body", "smtp.strip_starttls", ...).
func (a *Adversary) Counts() map[string]int64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int64, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// DNS intercepts one authoritative answer. It returns the replacement
// answer set and true when the adversary rewrites the response for
// (name, qtype); an empty replacement means the record was stripped
// (NODATA). A false return leaves the honest answer untouched.
func (a *Adversary) DNS(name string, qtype dnsmsg.Type) ([]dnsmsg.RR, bool) {
	if a == nil {
		return nil, false
	}
	name = strutil.CanonicalName(name)
	switch a.sc.Attack.Name {
	case "dns_strip_record":
		if name == a.txtName && qtype == dnsmsg.TypeTXT {
			a.count("dns.strip")
			return nil, true
		}
	case "dns_spoof_record":
		if name == a.txtName && qtype == dnsmsg.TypeTXT {
			a.count("dns.spoof")
			// "evil id!" violates the 1*32 alphanumeric ABNF -> bad_syntax.
			return []dnsmsg.RR{a.txtRR("v=STSv1; id=evil id!;")}, true
		}
	case "policy_mitm_cert", "policy_rollback_none", "policy_rollback_max_age",
		"policy_oversized", "policy_slowloris":
		if name == a.txtName && qtype == dnsmsg.TypeTXT {
			a.count("dns.spoof")
			// A well-formed record with a fresh id defeats the id-match
			// fast path and forces the sender to refetch the policy.
			return []dnsmsg.RR{a.txtRR("v=STSv1; id=" + a.evilID + ";")}, true
		}
	case "mx_impostor":
		if name == a.mxName && qtype == dnsmsg.TypeMX {
			a.count("dns.spoof")
			return []dnsmsg.RR{{
				Name: a.mxName, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
				Data: dnsmsg.MXData{Preference: 5, Host: a.sc.EvilMXHost},
			}}, true
		}
	case "tlsa_mismatch":
		if name == a.tlsaName && qtype == dnsmsg.TypeTLSA {
			a.count("dns.spoof")
			return []dnsmsg.RR{{
				Name: a.tlsaName, Type: dnsmsg.TypeTLSA, Class: dnsmsg.ClassIN, TTL: 60,
				Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: seededBytes(a.sc.Seed, "tlsa|"+a.tlsaName, 32)},
			}}, true
		}
	}
	return nil, false
}

func (a *Adversary) txtRR(value string) dnsmsg.RR {
	return dnsmsg.RR{
		Name: a.txtName, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.NewTXT(value),
	}
}

// PolicyCert reports whether the adversary terminates TLS for the
// policy host itself (policy_mitm_cert): the server should present a
// self-signed certificate instead of its CA-issued one.
func (a *Adversary) PolicyCert(sni string) bool {
	if a == nil || a.sc.Attack.Name != "policy_mitm_cert" {
		return false
	}
	if strutil.CanonicalName(sni) != a.polHost {
		return false
	}
	a.count("policy.cert")
	return true
}

// PolicyBody intercepts the policy HTTP response for a host. The body
// string is meaningful for BodyReplace.
func (a *Adversary) PolicyBody(host string) (BodyAction, string) {
	if a == nil || strutil.CanonicalName(host) != a.polHost {
		return BodyHonest, ""
	}
	switch a.sc.Attack.Name {
	case "policy_rollback_none":
		a.count("policy.body")
		return BodyReplace, "version: STSv1\nmode: none\nmax_age: 604800\n"
	case "policy_rollback_max_age":
		a.count("policy.body")
		return BodyReplace, rollbackMaxAge(a.sc.PolicyBody)
	case "policy_oversized":
		a.count("policy.body")
		return BodyOversized, ""
	case "policy_slowloris":
		a.count("policy.body")
		return BodySlowloris, ""
	}
	return BodyHonest, ""
}

// SMTP returns the tampering for an SMTP session against hostname.
func (a *Adversary) SMTP(hostname string) SMTPVerdict {
	if a == nil || strutil.CanonicalName(hostname) != strutil.CanonicalName(a.sc.MXHost) {
		return SMTPVerdict{}
	}
	switch a.sc.Attack.Name {
	case "starttls_strip":
		a.count("smtp.strip_starttls")
		return SMTPVerdict{StripSTARTTLS: true}
	case "mx_wrong_cert":
		a.count("smtp.wrong_cert")
		return SMTPVerdict{Cert: a.sc.EvilCert}
	}
	return SMTPVerdict{}
}

// spoofedID derives the attacker's record id from the seed: stable for
// fingerprint determinism, 1*32 alphanumeric per the RFC 8461 ABNF.
func spoofedID(seed int64, domain string) string {
	v := uint64(unitHash(seed, "adv|id|"+strutil.CanonicalName(domain), 0) * (1 << 32))
	return fmt.Sprintf("evil%08x", uint32(v))
}

// seededBytes derives n deterministic bytes from (seed, label).
func seededBytes(seed int64, label string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(unitHash(seed, "adv|"+label, uint64(i)) * 256)
	}
	return out
}

// rollbackMaxAge rewrites every max_age line of a policy body to 60
// seconds, leaving the rest intact — the minimal tamper a valid-cert
// rollback needs to collapse the sender's TOFU window.
func rollbackMaxAge(body string) string {
	lines := strings.Split(body, "\n")
	for i, line := range lines {
		trimmed := strings.TrimRight(line, "\r")
		if strings.HasPrefix(trimmed, "max_age:") {
			suffix := ""
			if strings.HasSuffix(line, "\r") {
				suffix = "\r"
			}
			lines[i] = "max_age: 60" + suffix
		}
	}
	return strings.Join(lines, "\n")
}
