package faults

import (
	"testing"
	"time"
)

func drawSequence(inj *Injector, key string, n int) []DNSAction {
	out := make([]DNSAction, n)
	for i := range out {
		out[i], _ = inj.DNS(key)
	}
	return out
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	plan := Plan{
		Seed:        42,
		DNSLoss:     0.2,
		DNSServFail: 0.1,
		DNSRefuse:   0.1,
		DNSTruncate: 0.1,
		ConnReset:   0.3,
	}
	a, b := NewInjector(plan), NewInjector(plan)
	keys := []string{"example.com/TXT", "mx1.example.com/A", "other.org/MX"}
	for _, key := range keys {
		sa, sb := drawSequence(a, key, 50), drawSequence(b, key, 50)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %q event %d: %v vs %v", key, i, sa[i], sb[i])
			}
		}
	}
	for i := 0; i < 50; i++ {
		ca, _ := a.Conn("smtpd", "mx1.example.com")
		cb, _ := b.Conn("smtpd", "mx1.example.com")
		if ca != cb {
			t.Fatalf("conn event %d: %v vs %v", i, ca, cb)
		}
	}
}

// Interleaving order across keys must not change per-key decisions:
// that is what keeps concurrent scans deterministic per domain.
func TestPerKeyIndependence(t *testing.T) {
	plan := Plan{Seed: 7, DNSLoss: 0.4}
	a, b := NewInjector(plan), NewInjector(plan)
	want := drawSequence(a, "x", 20)
	var got []DNSAction
	for i := 0; i < 20; i++ {
		b.DNS("noise1")
		act, _ := b.DNS("x")
		got = append(got, act)
		b.DNS("noise2")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: interleaved %v vs solo %v", i, got[i], want[i])
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed int64) []DNSAction {
		return drawSequence(NewInjector(Plan{Seed: seed, DNSLoss: 0.5}), "k", 64)
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 64-event sequences")
	}
}

func TestApproximateRates(t *testing.T) {
	plan := Plan{Seed: 9, DNSLoss: 0.1, DNSServFail: 0.1, MaxConsecutive: 1000}
	inj := NewInjector(plan)
	const n = 20000
	var drop, servfail int
	for i := 0; i < n; i++ {
		// Fresh key per event: measures the raw per-event rate without
		// the consecutive bound interfering.
		act, _ := inj.DNS(string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + itoa(i))
		switch act {
		case DNSDrop:
			drop++
		case DNSServFail:
			servfail++
		}
	}
	for name, got := range map[string]int{"drop": drop, "servfail": servfail} {
		rate := float64(got) / n
		if rate < 0.07 || rate > 0.13 {
			t.Errorf("%s rate = %.3f, want ~0.10", name, rate)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// With rate 1.0 every draw wants to fault, so the observed pattern is
// exactly MaxConsecutive faults then one forced pass: the property that
// guarantees a retry loop with MaxAttempts > MaxConsecutive recovers.
func TestMaxConsecutiveForcesPass(t *testing.T) {
	plan := Plan{Seed: 3, DNSLoss: 1.0, MaxConsecutive: 2}
	seq := drawSequence(NewInjector(plan), "k", 9)
	want := []DNSAction{DNSDrop, DNSDrop, DNSNone, DNSDrop, DNSDrop, DNSNone, DNSDrop, DNSDrop, DNSNone}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("event %d: %v, want %v (full: %v)", i, seq[i], want[i], seq)
		}
	}
}

func TestLatencyAndCounts(t *testing.T) {
	plan := Plan{Seed: 5, LatencyRate: 1.0, Latency: 7 * time.Millisecond}
	inj := NewInjector(plan)
	for i := 0; i < 3; i++ {
		act, delay := inj.DNS("k")
		if act != DNSNone {
			t.Errorf("event %d: act = %v with only latency configured", i, act)
		}
		if delay != 7*time.Millisecond {
			t.Errorf("event %d: delay = %v", i, delay)
		}
	}
	if got := inj.Counts()["dns.delay"]; got != 3 {
		t.Errorf("dns.delay count = %d, want 3", got)
	}
}

func TestNilAndInactiveInjector(t *testing.T) {
	var nilInj *Injector
	if act, d := nilInj.DNS("k"); act != DNSNone || d != 0 {
		t.Error("nil injector should be a no-op")
	}
	if act, d := nilInj.Conn("smtpd", "k"); act != ConnNone || d != 0 {
		t.Error("nil injector Conn should be a no-op")
	}
	if nilInj.Counts() != nil {
		t.Error("nil injector Counts should be nil")
	}
	idle := NewInjector(Plan{Seed: 1})
	if act, _ := idle.DNS("k"); act != DNSNone {
		t.Error("inactive plan should never fault")
	}
}
