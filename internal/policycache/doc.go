// Package policycache is the production sender-side MTA-STS policy
// store: the TOFU cache of RFC 8461 §5 made durable, concurrent, and
// stampede-proof.
//
// It layers three properties on top of the in-memory mtasts.PolicyCache
// semantics:
//
//   - Durability. Entries persist through the internal/store ordered-KV
//     interface (Mem for tests, the append-only Disk backend for real
//     runs), so trust-on-first-use state survives MTA restarts — a
//     restarted sender keeps enforcing without refetching, instead of
//     reopening the TLS-fallback downgrade window the paper's §5–§6
//     sender measurements show attackers exploit.
//
//   - Stampede protection. Fetch-on-miss routes through an internal/sf
//     singleflight group, so N concurrent deliveries to one cold domain
//     cause exactly one policy fetch; the rest share the leader's result
//     (policycache.singleflight_collapsed counts the savings).
//
//   - Refresh-safe semantics. Revalidation happens in place: the old
//     policy keeps serving until a successful fetch replaces it, and
//     expired entries are retained for a bounded stale window so the
//     background refresher can still find them and delivery can keep
//     enforcing a known policy when the refetch fails (RFC 8461 §5.1).
//
// Cache implements the mtasts.PolicyStore, StaleStore, RefreshableStore,
// and FetchCoalescer interfaces, so it drops into mtasts.Validator and
// mta.Outbound unchanged. See docs/SENDER.md for the operational
// runbook.
package policycache
