package policycache

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/store"
)

// benchCacheOut, when set, makes TestBenchCacheJSON measure warm-path
// delivery throughput on both store backends plus the cold-stampede
// scenario and write the results to the given JSON file (the repo's
// BENCH_cache.json). `make bench` wires it.
var benchCacheOut = flag.String("benchcache-out", "", "write policy-cache delivery timings to this JSON file")

const benchDomainCount = 10000

func benchFill(b testing.TB, c *Cache, n int) []string {
	b.Helper()
	domains := make([]string, n)
	for i := range domains {
		domains[i] = fmt.Sprintf("d%05d.example", i)
		c.Store(domains[i], testPolicy("mx.d.example", 86400), "id1")
	}
	return domains
}

func benchStore(b testing.TB, backend string) store.Store {
	b.Helper()
	switch backend {
	case "mem":
		return store.NewMem()
	case "disk":
		st, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.Fatalf("unknown backend %q", backend)
	return nil
}

// BenchmarkPolicyCacheDeliveries measures the warm delivery path — the
// per-message cache decision a production sender makes millions of times
// — over both store backends. Warm-path reads never touch the backend
// (the store is only written through), so mem and disk should be close;
// that closeness is the point of the benchmark.
func BenchmarkPolicyCacheDeliveries(b *testing.B) {
	for _, backend := range []string{"mem", "disk"} {
		b.Run(backend, func(b *testing.B) {
			st := benchStore(b, backend)
			c, err := Open(st, Options{Max: benchDomainCount})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := c.Close(); err != nil {
					b.Error(err)
				}
			}()
			domains := benchFill(b, c, benchDomainCount)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					d := domains[i%len(domains)]
					i++
					if _, ok := c.Get(d); !ok {
						b.Error("warm-path miss")
						return
					}
				}
			})
		})
	}
}

// benchWarm times totalOps warm Gets across workers goroutines.
func benchWarm(b testing.TB, c *Cache, domains []string, workers, totalOps int) time.Duration {
	b.Helper()
	var wg sync.WaitGroup
	per := totalOps / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d := domains[(w*per+i)%len(domains)]
				if _, ok := c.Get(d); !ok {
					b.Error("warm-path miss")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// TestBenchCacheJSON emits BENCH_cache.json: warm deliveries/sec per
// backend, plus the stampede scenario (concurrent cold deliveries per
// domain must collapse to exactly one fetch each). Skipped unless
// -benchcache-out is set; run via make bench.
func TestBenchCacheJSON(t *testing.T) {
	if *benchCacheOut == "" {
		t.Skip("run via make bench (-benchcache-out not set)")
	}
	type row struct {
		Backend      string  `json:"backend"`
		Domains      int     `json:"domains"`
		Workers      int     `json:"workers"`
		Ops          int     `json:"ops"`
		Seconds      float64 `json:"seconds"`
		DeliveriesPS float64 `json:"deliveries_per_second"`
	}
	out := struct {
		Workload string `json:"workload"`
		Rows     []row  `json:"rows"`
		Stampede struct {
			ColdDomains      int   `json:"cold_domains"`
			CallersPerDomain int   `json:"callers_per_domain"`
			Fetches          int64 `json:"fetches"`
			Collapsed        int64 `json:"collapsed"`
		} `json:"stampede"`
	}{Workload: fmt.Sprintf("%d cached domains, warm Get per delivery", benchDomainCount)}

	workers := runtime.GOMAXPROCS(0)
	const totalOps = 2_000_000
	for _, backend := range []string{"mem", "disk"} {
		st := benchStore(t, backend)
		c, err := Open(st, Options{Max: benchDomainCount})
		if err != nil {
			t.Fatal(err)
		}
		domains := benchFill(t, c, benchDomainCount)
		elapsed := benchWarm(t, c, domains, workers, totalOps)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		out.Rows = append(out.Rows, row{
			Backend: backend, Domains: benchDomainCount, Workers: workers,
			Ops: totalOps, Seconds: elapsed.Seconds(),
			DeliveriesPS: float64(totalOps) / elapsed.Seconds(),
		})
	}

	// Stampede: for each cold domain, callers concurrent fetches must
	// collapse to one execution.
	const coldDomains, callers = 64, 32
	c, err := Open(store.NewMem(), Options{Max: coldDomains})
	if err != nil {
		t.Fatal(err)
	}
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for d := 0; d < coldDomains; d++ {
		domain := fmt.Sprintf("cold%03d.example", d)
		gate := make(chan struct{})
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-gate
				_, _, err := c.CoalesceFetch(domain, func() (mtasts.Policy, error) {
					fetches.Add(1)
					time.Sleep(25 * time.Millisecond) // a "network" fetch
					return testPolicy("mx.cold.example", 3600), nil
				})
				if err != nil {
					t.Error(err)
				}
			}()
		}
		close(gate)
	}
	wg.Wait()
	out.Stampede.ColdDomains = coldDomains
	out.Stampede.CallersPerDomain = callers
	out.Stampede.Fetches = fetches.Load()
	out.Stampede.Collapsed = c.Stats().Collapsed
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Stampede.Fetches != coldDomains {
		t.Errorf("stampede: %d fetches for %d cold domains — singleflight leak", out.Stampede.Fetches, coldDomains)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchCacheOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchCacheOut)
}
