package policycache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/store"
)

func testPolicy(mx string, maxAge int64) mtasts.Policy {
	return mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: maxAge, MXPatterns: []string{mx}}
}

// clock is a settable test clock shared with a cache via Options.Now.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func mustOpen(t *testing.T, st store.Store, o Options) *Cache {
	t.Helper()
	c, err := Open(st, o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStoreGetStats(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now})
	if _, ok := c.Get("a.test"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store("a.test", testPolicy("mx.a.test", 3600), "id1")
	e, ok := c.Get("a.test")
	if !ok || e.RecordID != "id1" || e.Policy.Mode != mtasts.ModeEnforce {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStoreZeroMaxAgeNotCached(t *testing.T) {
	c := mustOpen(t, store.NewMem(), Options{})
	c.Store("a.test", testPolicy("mx.a.test", 0), "id1")
	if c.Len() != 0 {
		t.Error("zero max_age was cached")
	}
}

// TestRestartRecovery is the crash-restart proof: TOFU state persisted
// through the disk store must survive a process restart, including
// tombstones for invalidated domains.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()

	st, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, st, Options{Now: clk.Now})
	c.Store("keep.test", testPolicy("mx.keep.test", 86400), "id-keep")
	c.Store("drop.test", testPolicy("mx.drop.test", 86400), "id-drop")
	c.Invalidate("drop.test")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen from the same directory.
	st2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, st2, Options{Now: clk.Now})
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	e, ok := c2.Get("keep.test")
	if !ok || e.RecordID != "id-keep" {
		t.Fatalf("entry lost across restart: %+v, %v", e, ok)
	}
	if !e.Fresh(clk.Now()) {
		t.Error("recovered entry not fresh")
	}
	if _, ok := c2.Get("drop.test"); ok {
		t.Error("invalidated entry resurrected across restart")
	}
	if c2.Len() != 1 {
		t.Errorf("Len = %d, want 1", c2.Len())
	}
}

func TestRestartSkipsEntriesBeyondStaleWindow(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	st, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, st, Options{Now: clk.Now})
	c.Store("old.test", testPolicy("mx.old.test", 60), "id")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	clk.Advance(48 * time.Hour) // far past max_age + stale window
	st2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, st2, Options{Now: clk.Now})
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if c2.Len() != 0 {
		t.Errorf("entry beyond stale window loaded: Len = %d", c2.Len())
	}
}

func TestNeedsRefreshRecordIDChange(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now})
	c.Store("a.test", testPolicy("mx.a.test", 3600), "id1")
	if c.NeedsRefresh("a.test", "id1") {
		t.Error("fresh same-id entry reported needing refresh")
	}
	if !c.NeedsRefresh("a.test", "id2") {
		t.Error("record-id change must force a refetch (RFC 8461 §4.2)")
	}
	clk.Advance(2 * time.Hour)
	if !c.NeedsRefresh("a.test", "id1") {
		t.Error("expired entry reported fresh")
	}
}

func TestStaleWindowSemantics(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now, StaleWindow: time.Hour})
	c.Store("a.test", testPolicy("mx.a.test", 60), "id1")

	clk.Advance(10 * time.Minute) // expired, inside the stale window
	if _, ok := c.Get("a.test"); ok {
		t.Error("expired entry served as fresh")
	}
	if e, ok := c.GetStale("a.test"); !ok || e.RecordID != "id1" {
		t.Error("expired entry not served stale inside the window")
	}
	if c.Stats().StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", c.Stats().StaleServed)
	}

	clk.Advance(2 * time.Hour) // beyond the stale window
	if _, ok := c.GetStale("a.test"); ok {
		t.Error("entry served beyond the stale window")
	}
	if c.Len() != 0 {
		t.Error("beyond-window entry not pruned")
	}
}

func TestExpiringWithinIncludesRecentlyExpired(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now, StaleWindow: time.Hour})
	c.Store("soon.test", testPolicy("mx.s.test", 600), "id")   // expires in 10m
	c.Store("later.test", testPolicy("mx.l.test", 7200), "id") // expires in 2h
	c.Store("lapsed.test", testPolicy("mx.x.test", 60), "id")  // expires in 1m
	c.Store("ancient.test", testPolicy("mx.a.test", 30), "id") // expires in 30s

	clk.Advance(5 * time.Minute) // lapsed + ancient now expired

	got := map[string]bool{}
	for _, d := range c.ExpiringWithin(10 * time.Minute) {
		got[d] = true
	}
	if !got["soon.test"] {
		t.Error("soon.test missing: deadline must be inclusive of the window")
	}
	if !got["lapsed.test"] || !got["ancient.test"] {
		t.Error("recently-expired entries missing: the refresher would abandon them")
	}
	if got["later.test"] {
		t.Error("later.test included beyond the window")
	}

	// Push ancient.test beyond the stale window: no longer refreshable.
	clk.Advance(90 * time.Minute)
	for _, d := range c.ExpiringWithin(10 * time.Minute) {
		if d == "ancient.test" {
			t.Error("entry beyond the stale window still offered for refresh")
		}
	}
}

// TestCoalesceFetchCollapses proves stampede protection deterministically:
// a leader blocks inside fetch while N waiters join, and fetch runs once.
func TestCoalesceFetchCollapses(t *testing.T) {
	c := mustOpen(t, store.NewMem(), Options{})
	const waiters = 7

	var execs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	leaderFetch := func() (mtasts.Policy, error) {
		execs.Add(1)
		close(started)
		<-release
		return testPolicy("mx.a.test", 3600), nil
	}
	waiterFetch := func() (mtasts.Policy, error) {
		execs.Add(1)
		return mtasts.Policy{}, errors.New("waiter ran its own fetch")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, shared, err := c.CoalesceFetch("a.test", leaderFetch); shared || err != nil {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
	}()
	<-started // leader is in flight; everyone below must join it
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, shared, err := c.CoalesceFetch("a.test", waiterFetch)
			if !shared || err != nil || p.Mode != mtasts.ModeEnforce {
				t.Errorf("waiter: shared=%v err=%v p=%+v", shared, err, p)
			}
		}()
	}
	// Give the waiters a moment to enqueue on the in-flight call, then
	// release the leader. Joining is guaranteed by Group semantics once
	// Do observes the in-flight entry; the sleep only widens the window.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("fetch executed %d times, want 1", n)
	}
	if got := c.Stats().Collapsed; got != waiters {
		t.Errorf("Collapsed = %d, want %d", got, waiters)
	}
}

func TestCoalesceFetchFailureCountsRefreshFailure(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now})
	c.Store("a.test", testPolicy("mx.a.test", 3600), "id1")

	boom := errors.New("policy host down")
	_, _, err := c.CoalesceFetch("a.test", func() (mtasts.Policy, error) {
		return mtasts.Policy{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().RefreshFailures != 1 {
		t.Errorf("RefreshFailures = %d, want 1", c.Stats().RefreshFailures)
	}
	if _, ok := c.Get("a.test"); !ok {
		t.Error("failed fetch destroyed the cached entry")
	}

	// A failed fetch for a domain with no entry is a cold-miss failure,
	// not a refresh failure.
	_, _, err = c.CoalesceFetch("cold.test", func() (mtasts.Policy, error) {
		return mtasts.Policy{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().RefreshFailures != 1 {
		t.Errorf("cold-miss failure counted as refresh failure: %+v", c.Stats())
	}
}

func TestCapacityEviction(t *testing.T) {
	clk := newClock()
	c := mustOpen(t, store.NewMem(), Options{Now: clk.Now, Max: 2})
	c.Store("short.test", testPolicy("mx.s.test", 60), "id")
	c.Store("long.test", testPolicy("mx.l.test", 86400), "id")
	c.Store("new.test", testPolicy("mx.n.test", 3600), "id")
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("short.test"); ok {
		t.Error("earliest-expiring entry not evicted first")
	}
	if _, ok := c.Get("long.test"); !ok {
		t.Error("longest-lived entry evicted")
	}
}

func TestOpenEnforcesMax(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	st, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := mustOpen(t, st, Options{Now: clk.Now})
	c.Store("a.test", testPolicy("mx.a.test", 60), "id")
	c.Store("b.test", testPolicy("mx.b.test", 3600), "id")
	c.Store("c.test", testPolicy("mx.c.test", 86400), "id")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, st2, Options{Now: clk.Now, Max: 1})
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}
	if _, ok := c2.Get("c.test"); !ok {
		t.Error("capacity enforcement at Open must keep the latest-expiring entries")
	}
}

func TestInvalidateUnknownDomainIsNoop(t *testing.T) {
	c := mustOpen(t, store.NewMem(), Options{})
	c.Invalidate("never-stored.test")
	if s := c.Stats(); s.PersistErrors != 0 || s.Entries != 0 {
		t.Errorf("stats = %+v", s)
	}
}
