package policycache

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/sf"
	"github.com/netsecurelab/mtasts/internal/store"
)

// Defaults for Options fields left zero.
const (
	// DefaultMax bounds the number of cached policy domains. Entries are
	// ~hundreds of bytes, so the default costs a few tens of MiB at the
	// scale of a large sender's active destination set.
	DefaultMax = 65536
)

// keyPrefix namespaces policy entries inside the shared KV store, so a
// cache can coexist with other state (campaign shards, checkpoints) in
// one store directory.
const keyPrefix = "policy/"

// Options configures Open. The zero value is usable.
type Options struct {
	// Max bounds the number of cached domains; 0 means DefaultMax. When
	// the store holds more at Open, the earliest-expiring entries are
	// dropped first.
	Max int
	// StaleWindow bounds how long an expired entry remains servable via
	// GetStale; 0 means mtasts.DefaultStaleWindow.
	StaleWindow time.Duration
	// Now replaces time.Now for tests.
	Now func() time.Time
	// Obs receives policycache.* metrics; nil disables them.
	Obs *obs.Registry
}

// Stats is a snapshot of the cache's cumulative counters.
type Stats struct {
	// Hits counts Get calls answered with a fresh policy.
	Hits int64
	// Misses counts Get calls with no fresh policy (absent or expired).
	Misses int64
	// StaleServed counts GetStale calls answered with an expired policy
	// inside the stale window — deliveries that kept enforcing an old
	// policy because revalidation was failing.
	StaleServed int64
	// RefreshFailures counts failed fetches for domains that still had a
	// cached (fresh or stale) entry — each one a revalidation that did
	// NOT destroy the existing policy.
	RefreshFailures int64
	// Collapsed counts fetches avoided by singleflight: concurrent
	// deliveries that shared another caller's in-flight fetch.
	Collapsed int64
	// PersistErrors counts store writes that failed; the in-memory state
	// stays authoritative for the process lifetime when this is nonzero.
	PersistErrors int64
	// Entries is the current number of cached (possibly stale) domains.
	Entries int
}

// fetchOutcome carries a leader's fetch result to singleflight waiters.
// done distinguishes a real outcome from the zero value waiters receive
// if the leader panics.
type fetchOutcome struct {
	policy mtasts.Policy
	err    error
	done   bool
}

// errFetchPanic is returned to waiters whose singleflight leader
// panicked before producing an outcome.
var errFetchPanic = errors.New("policycache: coalesced fetch aborted (leader panicked)")

// persisted is the JSON form of one cache entry in the KV store.
type persisted struct {
	Policy    mtasts.Policy `json:"policy"`
	RecordID  string        `json:"record_id"`
	FetchedAt time.Time     `json:"fetched_at"`
	Expires   time.Time     `json:"expires"`
}

// Cache is a durable, concurrent sender policy cache. It is safe for
// concurrent use. Create it with Open.
type Cache struct {
	st          store.Store
	max         int
	staleWindow time.Duration
	now         func() time.Time

	mu      sync.Mutex
	entries map[string]mtasts.CachedPolicy

	// persistMu serializes store writes in entry-update order without
	// holding mu across the I/O: writers take it hand-over-hand (acquire
	// persistMu, then release mu) so a slow disk stalls only other
	// writers, never Get/GetStale readers of the map.
	persistMu sync.Mutex

	fetches sf.Group[fetchOutcome]

	hits, misses, staleServed      atomic.Int64
	refreshFailures, collapsed     atomic.Int64
	persistErrors                  atomic.Int64
	obsHits, obsMisses             *obs.Counter
	obsStale, obsRefreshFail       *obs.Counter
	obsCollapsed, obsPersistErrors *obs.Counter
}

// Compile-time proof that Cache satisfies every validator-side store
// interface, so it drops into mtasts.Validator and mta.Outbound.
var (
	_ mtasts.PolicyStore      = (*Cache)(nil)
	_ mtasts.StaleStore       = (*Cache)(nil)
	_ mtasts.RefreshableStore = (*Cache)(nil)
	_ mtasts.FetchCoalescer   = (*Cache)(nil)
)

// Open loads the cached policies persisted in st and returns a cache
// backed by it. Tombstoned (invalidated) entries and entries expired
// beyond the stale window are skipped; if more than Max remain, the
// earliest-expiring are dropped until the bound holds.
func Open(st store.Store, o Options) (*Cache, error) {
	if o.Max <= 0 {
		o.Max = DefaultMax
	}
	if o.StaleWindow <= 0 {
		o.StaleWindow = mtasts.DefaultStaleWindow
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	c := &Cache{
		st:          st,
		max:         o.Max,
		staleWindow: o.StaleWindow,
		now:         o.Now,
		entries:     make(map[string]mtasts.CachedPolicy),

		obsHits:          o.Obs.Counter("policycache.hits"),
		obsMisses:        o.Obs.Counter("policycache.misses"),
		obsStale:         o.Obs.Counter("policycache.stale_served"),
		obsRefreshFail:   o.Obs.Counter("policycache.refresh_failures"),
		obsCollapsed:     o.Obs.Counter("policycache.singleflight_collapsed"),
		obsPersistErrors: o.Obs.Counter("policycache.persist_errors"),
	}
	oldest := c.now().Add(-c.staleWindow)
	err := st.Scan(keyPrefix, func(key string, value []byte) error {
		if len(value) == 0 {
			return nil // tombstone: entry was invalidated
		}
		var p persisted
		if err := json.Unmarshal(value, &p); err != nil {
			return fmt.Errorf("policycache: decoding %q: %w", key, err)
		}
		if p.Expires.Before(oldest) {
			return nil // beyond the stale window: unusable, drop on load
		}
		c.entries[key[len(keyPrefix):]] = mtasts.CachedPolicy{
			Policy:    p.Policy,
			RecordID:  p.RecordID,
			FetchedAt: p.FetchedAt,
			Expires:   p.Expires,
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("policycache: loading store: %w", err)
	}
	for len(c.entries) > c.max {
		c.evictOldestLocked()
	}
	o.Obs.GaugeFunc("policycache.entries", func() int64 { return int64(c.Len()) })
	return c, nil
}

// Close releases the underlying store. The cache is unusable afterwards.
func (c *Cache) Close() error { return c.st.Close() }

// Get returns the cached policy for domain if present and fresh. An
// expired entry is a miss, but it is retained for the stale window (see
// GetStale) so a failed refetch cannot destroy it.
func (c *Cache) Get(domain string) (mtasts.CachedPolicy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[domain]
	if ok && e.Fresh(c.now()) {
		c.hits.Add(1)
		c.obsHits.Inc()
		return e, true
	}
	if ok {
		c.pruneLocked(domain, e)
	}
	c.misses.Add(1)
	c.obsMisses.Inc()
	return mtasts.CachedPolicy{}, false
}

// GetStale returns the cached policy for domain if present and not yet
// expired beyond the stale window — the fallback that keeps delivery
// enforcing an old policy when revalidation fails, instead of
// downgrading to unvalidated TLS.
func (c *Cache) GetStale(domain string) (mtasts.CachedPolicy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[domain]
	if !ok {
		return mtasts.CachedPolicy{}, false
	}
	if e.Fresh(c.now()) {
		return e, true
	}
	if c.pruneLocked(domain, e) {
		return mtasts.CachedPolicy{}, false
	}
	c.staleServed.Add(1)
	c.obsStale.Inc()
	return e, true
}

// pruneLocked drops an expired entry once it passes the stale window.
// Memory-only: the store is compacted on the next Open, which skips
// entries this old. Reports whether the entry was dropped.
func (c *Cache) pruneLocked(domain string, e mtasts.CachedPolicy) bool {
	if c.now().Sub(e.Expires) > c.staleWindow {
		delete(c.entries, domain)
		return true
	}
	return false
}

// NeedsRefresh implements the record-id comparison of RFC 8461 §4.2: a
// cached policy must be refetched when missing, expired, or fetched
// under a different record id. It does not count toward hit/miss stats.
func (c *Cache) NeedsRefresh(domain, currentRecordID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[domain]
	if !ok || !e.Fresh(c.now()) {
		return true
	}
	return e.RecordID != currentRecordID
}

// Store caches a freshly fetched policy under the record id it was
// discovered with, persisting it durably. A zero or negative max_age is
// not cached. A persist failure is counted (policycache.persist_errors)
// but does not affect the in-memory entry.
func (c *Cache) Store(domain string, p mtasts.Policy, recordID string) {
	if p.MaxAge <= 0 {
		return
	}
	now := c.now()
	e := mtasts.CachedPolicy{
		Policy:    p,
		RecordID:  recordID,
		FetchedAt: now,
		Expires:   now.Add(time.Duration(p.MaxAge) * time.Second),
	}
	buf, err := json.Marshal(persisted{
		Policy:    p,
		RecordID:  recordID,
		FetchedAt: now,
		Expires:   e.Expires,
	})
	c.mu.Lock()
	if _, exists := c.entries[domain]; !exists && len(c.entries) >= c.max {
		c.evictOldestLocked()
	}
	c.entries[domain] = e
	if err != nil {
		c.mu.Unlock()
		c.persistErrors.Add(1)
		c.obsPersistErrors.Inc()
		return
	}
	// Hand-over-hand: acquire persistMu before releasing mu so store
	// writes land in the same order as the entry updates they mirror,
	// then sync durably (a crash immediately after Store cannot lose
	// the fetch) without stalling readers of the map.
	c.persistMu.Lock()
	c.mu.Unlock()
	defer c.persistMu.Unlock()
	//lint:ignore lockhold persistMu exists to serialize these store writes; the I/O is its entire critical section
	if err := c.st.Put(keyPrefix+domain, buf); err != nil {
		c.persistErrors.Add(1)
		c.obsPersistErrors.Inc()
		return
	}
	//lint:ignore lockhold persistMu exists to serialize these store writes; the I/O is its entire critical section
	if err := c.st.Sync(); err != nil {
		c.persistErrors.Add(1)
		c.obsPersistErrors.Inc()
	}
}

// evictOldestLocked removes the entry with the earliest expiry.
// Memory-only: capacity is re-enforced at the next Open.
func (c *Cache) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, e := range c.entries {
		if first || e.Expires.Before(oldest) {
			oldestKey, oldest, first = k, e.Expires, false
		}
	}
	if oldestKey != "" {
		delete(c.entries, oldestKey)
	}
}

// Invalidate drops the entry for domain, durably: a tombstone (empty
// value) is written so the entry does not resurrect at the next Open.
func (c *Cache) Invalidate(domain string) {
	c.mu.Lock()
	if _, ok := c.entries[domain]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.entries, domain)
	// Hand-over-hand as in Store: the tombstone must not be reordered
	// against a concurrent Store's write for the same domain.
	c.persistMu.Lock()
	c.mu.Unlock()
	defer c.persistMu.Unlock()
	//lint:ignore lockhold persistMu exists to serialize these store writes; the I/O is its entire critical section
	if err := c.st.Put(keyPrefix+domain, nil); err != nil {
		c.persistErrors.Add(1)
		c.obsPersistErrors.Inc()
	}
}

// CoalesceFetch runs fetch once per domain among concurrent callers
// (shared=true for callers that joined another's fetch). A failed fetch
// for a domain that still has a cached entry counts as a refresh
// failure — the signature of revalidate-in-place doing its job.
func (c *Cache) CoalesceFetch(domain string, fetch func() (mtasts.Policy, error)) (mtasts.Policy, bool, error) {
	out, shared := c.fetches.Do(domain, func() fetchOutcome {
		p, err := fetch()
		return fetchOutcome{policy: p, err: err, done: true}
	})
	if shared {
		c.collapsed.Add(1)
		c.obsCollapsed.Inc()
	}
	if !out.done {
		out.err = errFetchPanic
	}
	if out.err != nil && !shared {
		c.mu.Lock()
		_, held := c.entries[domain]
		c.mu.Unlock()
		if held {
			c.refreshFailures.Add(1)
			c.obsRefreshFail.Inc()
		}
	}
	return out.policy, shared, out.err
}

// ExpiringWithin returns the domains whose cached policies expire within
// the window — the proactive refresher's work list (RFC 8461 §3.3). The
// deadline is inclusive, and already-expired entries are included while
// they remain inside the stale window: an entry that lapsed between
// refresher ticks must still be revalidated, not silently abandoned.
func (c *Cache) ExpiringWithin(window time.Duration) []string {
	now := c.now()
	deadline := now.Add(window)
	oldest := now.Add(-c.staleWindow)
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for d, e := range c.entries {
		if !e.Expires.After(deadline) && !e.Expires.Before(oldest) {
			out = append(out, d)
		}
	}
	return out
}

// Domains returns the policy domains currently cached (order
// unspecified).
func (c *Cache) Domains() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for d := range c.entries {
		out = append(out, d)
	}
	return out
}

// Len returns the number of cached (possibly stale) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		StaleServed:     c.staleServed.Load(),
		RefreshFailures: c.refreshFailures.Load(),
		Collapsed:       c.collapsed.Load(),
		PersistErrors:   c.persistErrors.Load(),
		Entries:         c.Len(),
	}
}
