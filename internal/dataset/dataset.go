// Package dataset provides the storage and aggregation primitives of the
// measurement pipeline: labeled time series, result tables with TSV
// export, and a snapshot archive supporting the historical joins of the
// longitudinal analysis (Figure 9).
package dataset

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/scanner"
)

// Point is one sample of a series.
type Point struct {
	Label string
	Value float64
}

// Series is a named sequence of points (one per snapshot or bin).
type Series struct {
	Name   string
	Points []Point
}

// Values returns just the numeric values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Min and Max return the value range (0,0 for an empty series).
func (s Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Value
	for _, p := range s.Points {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}

// Max returns the largest value.
func (s Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Value
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// FromValues builds a series with labels from the labeler function.
func FromValues(name string, values []float64, label func(i int) string) Series {
	s := Series{Name: name, Points: make([]Point, len(values))}
	for i, v := range values {
		l := fmt.Sprintf("%d", i)
		if label != nil {
			l = label(i)
		}
		s.Points[i] = Point{Label: l, Value: v}
	}
	return s
}

// MonthLabel formats a snapshot time like the paper's axes ("12/23").
func MonthLabel(t time.Time) string {
	return fmt.Sprintf("%02d/%02d", int(t.Month()), t.Year()%100)
}

// Table is a rectangular result set.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTSV writes the table as tab-separated values.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// TSV returns the table in TSV form.
func (t *Table) TSV() string {
	var sb strings.Builder
	//lint:ignore errdrop writes to a strings.Builder cannot fail
	t.WriteTSV(&sb)
	return sb.String()
}

// SnapshotStore archives scan results per snapshot index and answers the
// historical queries the longitudinal analysis needs.
type SnapshotStore struct {
	snaps map[int][]scanner.DomainResult
	byDom map[int]map[string]*scanner.DomainResult
}

// NewSnapshotStore returns an empty archive.
func NewSnapshotStore() *SnapshotStore {
	return &SnapshotStore{
		snaps: make(map[int][]scanner.DomainResult),
		byDom: make(map[int]map[string]*scanner.DomainResult),
	}
}

// Put archives the results of snapshot t (replacing any previous archive).
func (st *SnapshotStore) Put(t int, results []scanner.DomainResult) {
	st.snaps[t] = results
	idx := make(map[string]*scanner.DomainResult, len(results))
	for i := range results {
		idx[results[i].Domain] = &results[i]
	}
	st.byDom[t] = idx
}

// Get returns the archived results for snapshot t.
func (st *SnapshotStore) Get(t int) ([]scanner.DomainResult, bool) {
	r, ok := st.snaps[t]
	return r, ok
}

// Lookup returns one domain's result at snapshot t.
func (st *SnapshotStore) Lookup(t int, domain string) (*scanner.DomainResult, bool) {
	idx, ok := st.byDom[t]
	if !ok {
		return nil, false
	}
	r, ok := idx[domain]
	return r, ok
}

// Snapshots returns the archived snapshot indexes in order.
func (st *SnapshotStore) Snapshots() []int {
	out := make([]int, 0, len(st.snaps))
	for t := range st.snaps {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// HistoricalMXSets returns the domain's MX sets from every archived
// snapshot strictly before t, most recent first — the input to the
// Figure 9 "outdated policy" join.
func (st *SnapshotStore) HistoricalMXSets(t int, domain string) [][]string {
	var out [][]string
	snaps := st.Snapshots()
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i] >= t {
			continue
		}
		if r, ok := st.Lookup(snaps[i], domain); ok && len(r.MXHosts) > 0 {
			out = append(out, r.MXHosts)
		}
	}
	return out
}
