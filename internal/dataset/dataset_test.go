package dataset

import (
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/scanner"
)

func TestSeriesBasics(t *testing.T) {
	s := FromValues("test", []float64{1, 3, 2}, nil)
	if s.Min() != 1 || s.Max() != 3 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	v := s.Values()
	if len(v) != 3 || v[1] != 3 {
		t.Errorf("values = %v", v)
	}
	empty := Series{}
	if empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty series min/max should be 0")
	}
	labeled := FromValues("x", []float64{5}, func(i int) string { return "L" })
	if labeled.Points[0].Label != "L" {
		t.Error("labeler ignored")
	}
}

func TestMonthLabel(t *testing.T) {
	ts := time.Date(2023, 12, 1, 0, 0, 0, 0, time.UTC)
	if got := MonthLabel(ts); got != "12/23" {
		t.Errorf("MonthLabel = %q", got)
	}
}

func TestTableTSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(2, "y")
	tsv := tbl.TSV()
	want := "a\tb\nx\t1.50\n2\ty\n"
	if tsv != want {
		t.Errorf("TSV = %q, want %q", tsv, want)
	}
}

func TestSnapshotStore(t *testing.T) {
	st := NewSnapshotStore()
	st.Put(1, []scanner.DomainResult{
		{Domain: "a.com", MXHosts: []string{"mx-old.a.com"}},
	})
	st.Put(3, []scanner.DomainResult{
		{Domain: "a.com", MXHosts: []string{"mx-new.a.com"}},
		{Domain: "b.com", MXHosts: []string{"mx.b.com"}},
	})

	if got := st.Snapshots(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Snapshots = %v", got)
	}
	r, ok := st.Lookup(3, "b.com")
	if !ok || r.MXHosts[0] != "mx.b.com" {
		t.Errorf("Lookup = %+v, %v", r, ok)
	}
	if _, ok := st.Lookup(2, "a.com"); ok {
		t.Error("Lookup for missing snapshot succeeded")
	}
	if _, ok := st.Get(1); !ok {
		t.Error("Get(1) failed")
	}

	// Historical MX sets exclude the query snapshot, most recent first.
	hist := st.HistoricalMXSets(4, "a.com")
	if len(hist) != 2 || hist[0][0] != "mx-new.a.com" || hist[1][0] != "mx-old.a.com" {
		t.Errorf("HistoricalMXSets = %v", hist)
	}
	hist = st.HistoricalMXSets(3, "a.com")
	if len(hist) != 1 || hist[0][0] != "mx-old.a.com" {
		t.Errorf("HistoricalMXSets(3) = %v", hist)
	}
	if got := st.HistoricalMXSets(1, "a.com"); len(got) != 0 {
		t.Errorf("no history expected, got %v", got)
	}
}

func TestTableWriteTSVPropagatesRows(t *testing.T) {
	tbl := &Table{Title: "x", Headers: []string{"h"}}
	for i := 0; i < 5; i++ {
		tbl.AddRow(i)
	}
	var sb strings.Builder
	if err := tbl.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 6 {
		t.Errorf("lines = %d", strings.Count(sb.String(), "\n"))
	}
}
