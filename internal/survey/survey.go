// Package survey encodes the operator survey of §7 / Appendix C of the
// paper: the instrument's answer domains, a response dataset reproducing
// every marginal reported in §7.2 and Figure 11, and the tabulation code
// that computes those marginals. The published artifact of a survey is its
// answer distribution; this package encodes that distribution as data (see
// the substitution table in DESIGN.md).
package survey

// Unanswered marks a skipped question.
const Unanswered = -1

// AccountsBucket is the mail-setup size question (Page 2).
type AccountsBucket int

// Figure 11 buckets.
const (
	AccountsUnder10 AccountsBucket = iota
	Accounts10to100
	Accounts100to500
	Accounts500to1k
	AccountsOver1k
)

// BucketLabels are the Figure 11 x-axis labels.
var BucketLabels = []string{"~10", "10 ~ 100", "100 ~ 500", "500 ~ 1k", "1k ~"}

// Bottleneck is the "largest bottleneck for MTA-STS deployment" question.
type Bottleneck int

// Bottleneck options (Page 5).
const (
	BottleneckComplexity Bottleneck = iota
	BottleneckDANEBetter
	BottleneckNoNeed
)

// WhyNot is the "why do you NOT deploy MTA-STS" question (Page 10).
type WhyNot int

// WhyNot options.
const (
	WhyNotUseDANE WhyNot = iota
	WhyNotTooComplicated
	WhyNotDontUnderstand
	WhyNotDontNeed
	WhyNotOther
)

// UpdateSequence is the policy update ordering question (Page 6).
type UpdateSequence int

// Update sequences; TXT-first is the discouraged ordering.
const (
	UpdateTXTFirst UpdateSequence = iota
	UpdatePolicyFirst
	UpdateNever
	UpdateDontKnow
)

// Difficulty is the "most difficult aspect" question (Page 6).
type Difficulty int

// Difficulty options.
const (
	DifficultyDNS Difficulty = iota
	DifficultyHTTPSPolicy
	DifficultySMTPCert
	DifficultyPolicyUpdate
	DifficultyOptOut
)

// DANEPreference is the head-to-head design question (Page 12).
type DANEPreference int

// Preference outcomes.
const (
	PreferDANE DANEPreference = iota
	PreferMTASTS
	PreferBalanced
)

// Response is one operator's answers. Enum fields use Unanswered (-1)
// when the question was skipped or never shown by the survey flow.
type Response struct {
	ID       int
	Accounts int // AccountsBucket or Unanswered

	HeardOfMTASTS int // 1 yes, 0 no, Unanswered
	Deployed      int // 1 yes, 0 no, Unanswered

	// Deployment motivations (multi-select; only meaningful when
	// Deployed == 1).
	MotivationDowngrade bool
	MotivationWebPKI    bool
	MotivationOverDANE  bool
	MotivationCustomer  bool
	MotivationRegulator bool
	MotivationBigMail   bool

	Bottleneck int // Bottleneck or Unanswered
	WhyNot     int // WhyNot or Unanswered

	Difficulty     int // Difficulty or Unanswered
	UpdateSequence int // UpdateSequence or Unanswered

	HeardOfDANE  int // 1/0/Unanswered
	ServesTLSA   int // 1/0/Unanswered (among DANE-aware)
	NoDNSSEC     bool
	Preference   int // DANEPreference or Unanswered
	ValidatesOut int // sender-side MTA-STS validation: 1/0/Unanswered
}

// Dataset is a set of survey responses.
type Dataset struct {
	// Initial is the number of people who opened the survey (120).
	Initial   int
	Responses []Response
}

// figure11Deployed is the per-bucket count of deployed respondents.
var figure11Deployed = [5]int{8, 11, 9, 10, 12} // sums to 50

// figure11Total is the per-bucket count of respondents who answered the
// accounts question (92): 22 manage <10 accounts, 36 manage >500.
var figure11Total = [5]int{22, 20, 14, 16, 20}

// NewPaperDataset constructs the deterministic response set whose
// marginals equal every §7.2 / Figure 11 statistic. The assignment is by
// respondent index; Tabulate recovers the paper's numbers exactly (the
// tests in this package pin each one).
func NewPaperDataset() *Dataset {
	ds := &Dataset{Initial: 120}
	for i := 0; i < 117; i++ {
		r := Response{
			ID: i, Accounts: Unanswered, HeardOfMTASTS: Unanswered,
			Deployed: Unanswered, Bottleneck: Unanswered, WhyNot: Unanswered,
			Difficulty: Unanswered, UpdateSequence: Unanswered,
			HeardOfDANE: Unanswered, ServesTLSA: Unanswered,
			Preference: Unanswered, ValidatesOut: Unanswered,
		}

		// Familiarity (Page 3): 94 answered, 89 yes.
		if i < 94 {
			if i < 89 {
				r.HeardOfMTASTS = 1
			} else {
				r.HeardOfMTASTS = 0
			}
		}

		// Deployment (Page 4): 88 of the aware answered; 50 yes.
		if r.HeardOfMTASTS == 1 && i < 88 {
			if i < 50 {
				r.Deployed = 1
			} else {
				r.Deployed = 0
			}
		}

		ds.Responses = append(ds.Responses, r)
	}

	// Accounts buckets (Figure 11): 92 respondents; the 50 deployed are
	// distributed per figure11Deployed, the remaining 42 fill the totals.
	bucketLeft := figure11Total
	deployedLeft := figure11Deployed
	assign := func(r *Response, wantDeployed bool) {
		for b := 0; b < 5; b++ {
			if bucketLeft[b] == 0 {
				continue
			}
			if wantDeployed && deployedLeft[b] == 0 {
				continue
			}
			if !wantDeployed && bucketLeft[b] <= deployedLeft[b] {
				continue // reserve capacity for deployed respondents
			}
			r.Accounts = b
			bucketLeft[b]--
			if wantDeployed {
				deployedLeft[b]--
			}
			return
		}
	}
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.Deployed == 1 {
			assign(r, true)
		}
	}
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.Accounts == Unanswered && r.Deployed != 1 {
			total := 0
			for _, b := range bucketLeft {
				total += b
			}
			if total == 0 {
				break
			}
			assign(r, false)
		}
	}

	// Deployment motivations (42 of the deployed answered; §7.2).
	midx := 0
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.Deployed != 1 {
			continue
		}
		if midx < 42 {
			r.MotivationDowngrade = midx < 34 // 34/42 = 80.9%
			r.MotivationWebPKI = midx < 9
			r.MotivationOverDANE = midx >= 9 && midx < 19 // 10
			r.MotivationBigMail = midx >= 19 && midx < 24 // 5
		}
		if midx < 41 {
			r.MotivationCustomer = midx < 13                // 13/41
			r.MotivationRegulator = midx >= 13 && midx < 27 // 14/41
		}
		// Bottleneck (43 answered): 21 complexity, 17 DANE better, 5 none.
		if midx < 43 {
			switch {
			case midx < 21:
				r.Bottleneck = int(BottleneckComplexity)
			case midx < 38:
				r.Bottleneck = int(BottleneckDANEBetter)
			default:
				r.Bottleneck = int(BottleneckNoNeed)
			}
		}
		// Management difficulty (41 answered): 8 HTTPS policy, 11 updates.
		if midx < 41 {
			switch {
			case midx < 8:
				r.Difficulty = int(DifficultyHTTPSPolicy)
			case midx < 19:
				r.Difficulty = int(DifficultyPolicyUpdate)
			case midx < 27:
				r.Difficulty = int(DifficultyDNS)
			case midx < 35:
				r.Difficulty = int(DifficultySMTPCert)
			default:
				r.Difficulty = int(DifficultyOptOut)
			}
		}
		// Update sequence (42 answered): 15 never, 10 TXT-first.
		if midx < 42 {
			switch {
			case midx < 15:
				r.UpdateSequence = int(UpdateNever)
			case midx < 25:
				r.UpdateSequence = int(UpdateTXTFirst)
			case midx < 37:
				r.UpdateSequence = int(UpdatePolicyFirst)
			default:
				r.UpdateSequence = int(UpdateDontKnow)
			}
		}
		midx++
	}

	// Non-deployers (Page 10): 33 answered; 15 use DANE, 9 too complex.
	widx := 0
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.Deployed != 0 {
			continue
		}
		if widx < 33 {
			switch {
			case widx < 15:
				r.WhyNot = int(WhyNotUseDANE)
			case widx < 24:
				r.WhyNot = int(WhyNotTooComplicated)
			case widx < 28:
				r.WhyNot = int(WhyNotDontUnderstand)
			case widx < 31:
				r.WhyNot = int(WhyNotDontNeed)
			default:
				r.WhyNot = int(WhyNotOther)
			}
		}
		widx++
	}

	// DANE block (Pages 11–12): 79 answered familiarity, 78 yes; 26 of the
	// familiar serve no TLSA; 10 lack DNSSEC support; of 70 stating a
	// preference, 51 prefer DANE (72.8%).
	didx := 0
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.HeardOfMTASTS == Unanswered {
			continue
		}
		if didx < 79 {
			if didx < 78 {
				r.HeardOfDANE = 1
				if didx < 26 {
					r.ServesTLSA = 0
				} else {
					r.ServesTLSA = 1
				}
				r.NoDNSSEC = didx >= 26 && didx < 36
				if didx < 70 {
					switch {
					case didx < 51:
						r.Preference = int(PreferDANE)
					case didx < 59:
						r.Preference = int(PreferMTASTS)
					default:
						r.Preference = int(PreferBalanced)
					}
				}
			} else {
				r.HeardOfDANE = 0
			}
		}
		didx++
	}

	return ds
}
