package survey

// Findings are the tabulated marginals of a dataset — the §7.2 numbers.
type Findings struct {
	Engaged int // respondents answering at least one question

	FamiliarityAsked int // answered the MTA-STS familiarity question
	Familiar         int // had heard of MTA-STS

	DeploymentAsked int
	Deployed        int

	// Motivations (among deployed respondents who answered).
	MotivationAsked     int
	MotivationDowngrade int
	MotivationWebPKI    int
	MotivationOverDANE  int
	MotivationCustomer  int
	MotivationRegulator int
	MotivationBigMail   int

	// Bottleneck among deployers.
	BottleneckAsked      int
	BottleneckComplexity int
	BottleneckDANE       int
	BottleneckNoNeed     int

	// Why-not among non-deployers.
	WhyNotAsked   int
	WhyNotDANE    int
	WhyNotComplex int

	// Management.
	DifficultyAsked  int
	DifficultyHTTPS  int
	DifficultyUpdate int

	UpdateSeqAsked int
	UpdateNever    int
	UpdateTXTFirst int

	// DANE block.
	DANEAsked       int
	DANEFamiliar    int
	NoTLSA          int
	NoDNSSECSupport int
	PreferenceAsked int
	PreferDANECount int
}

// Tabulate computes the findings of a dataset.
func (ds *Dataset) Tabulate() Findings {
	var f Findings
	f.Engaged = len(ds.Responses)
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.HeardOfMTASTS != Unanswered {
			f.FamiliarityAsked++
			if r.HeardOfMTASTS == 1 {
				f.Familiar++
			}
		}
		if r.Deployed != Unanswered {
			f.DeploymentAsked++
			if r.Deployed == 1 {
				f.Deployed++
			}
		}
		if r.Deployed == 1 {
			if r.MotivationDowngrade || r.MotivationWebPKI || r.MotivationOverDANE || r.MotivationBigMail {
				f.MotivationAsked++
			}
			if r.MotivationDowngrade {
				f.MotivationDowngrade++
			}
			if r.MotivationWebPKI {
				f.MotivationWebPKI++
			}
			if r.MotivationOverDANE {
				f.MotivationOverDANE++
			}
			if r.MotivationCustomer {
				f.MotivationCustomer++
			}
			if r.MotivationRegulator {
				f.MotivationRegulator++
			}
			if r.MotivationBigMail {
				f.MotivationBigMail++
			}
			if r.Bottleneck != Unanswered {
				f.BottleneckAsked++
				switch Bottleneck(r.Bottleneck) {
				case BottleneckComplexity:
					f.BottleneckComplexity++
				case BottleneckDANEBetter:
					f.BottleneckDANE++
				case BottleneckNoNeed:
					f.BottleneckNoNeed++
				}
			}
			if r.Difficulty != Unanswered {
				f.DifficultyAsked++
				switch Difficulty(r.Difficulty) {
				case DifficultyHTTPSPolicy:
					f.DifficultyHTTPS++
				case DifficultyPolicyUpdate:
					f.DifficultyUpdate++
				}
			}
			if r.UpdateSequence != Unanswered {
				f.UpdateSeqAsked++
				switch UpdateSequence(r.UpdateSequence) {
				case UpdateNever:
					f.UpdateNever++
				case UpdateTXTFirst:
					f.UpdateTXTFirst++
				}
			}
		}
		if r.Deployed == 0 && r.WhyNot != Unanswered {
			f.WhyNotAsked++
			switch WhyNot(r.WhyNot) {
			case WhyNotUseDANE:
				f.WhyNotDANE++
			case WhyNotTooComplicated:
				f.WhyNotComplex++
			}
		}
		if r.HeardOfDANE != Unanswered {
			f.DANEAsked++
			if r.HeardOfDANE == 1 {
				f.DANEFamiliar++
				if r.ServesTLSA == 0 {
					f.NoTLSA++
				}
				if r.NoDNSSEC {
					f.NoDNSSECSupport++
				}
				if r.Preference != Unanswered {
					f.PreferenceAsked++
					if DANEPreference(r.Preference) == PreferDANE {
						f.PreferDANECount++
					}
				}
			}
		}
	}
	return f
}

// Figure11 returns the demographics histogram: for each accounts bucket,
// the number of respondents and the number who deployed MTA-STS.
func (ds *Dataset) Figure11() (labels []string, total, deployed []int) {
	total = make([]int, len(BucketLabels))
	deployed = make([]int, len(BucketLabels))
	for i := range ds.Responses {
		r := &ds.Responses[i]
		if r.Accounts == Unanswered {
			continue
		}
		total[r.Accounts]++
		if r.Deployed == 1 {
			deployed[r.Accounts]++
		}
	}
	return append([]string(nil), BucketLabels...), total, deployed
}
