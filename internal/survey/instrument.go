package survey

// This file encodes the survey instrument of Appendix C: the pages, the
// question kinds, and the skip logic. The response dataset in survey.go is
// validated against this structure (every answered question must have been
// reachable under the instrument's flow).

// QuestionKind mirrors the Appendix C notation.
type QuestionKind int

// Question kinds (Appendix C legend).
const (
	KindSCQ QuestionKind = iota // single choice
	KindMCQ                     // multiple choice
	KindYN                      // yes/no
	KindTB                      // open-ended textbox
	KindGS                      // grid-style matrix
	KindLS                      // Likert scale
)

// String returns the Appendix C abbreviation.
func (k QuestionKind) String() string {
	switch k {
	case KindSCQ:
		return "SCQ"
	case KindMCQ:
		return "MCQ"
	case KindYN:
		return "YN"
	case KindTB:
		return "TB"
	case KindGS:
		return "GS"
	case KindLS:
		return "LS"
	}
	return "?"
}

// Question is one instrument item.
type Question struct {
	ID      string
	Page    int
	Kind    QuestionKind
	Text    string
	Options []string
	// Optional marks questions respondents may skip (all except consent).
	Optional bool
}

// Page is one screen of the instrument, with its skip rule.
type Page struct {
	Number int
	Title  string
	// SkipTo, when non-nil, inspects a response and returns the page to
	// jump to after this page (0 = next page, -1 = end survey).
	SkipTo func(r *Response) int
	Items  []Question
}

// Instrument is the Appendix C questionnaire. Only the questions the
// tabulation consumes carry structured option lists; open-ended items are
// present for completeness.
var Instrument = []Page{
	{Number: 1, Title: "Consent Form", Items: []Question{
		{ID: "consent-participate", Page: 1, Kind: KindYN,
			Text: "I consent voluntarily to be a participant in this study"},
		{ID: "consent-publication", Page: 1, Kind: KindYN,
			Text: "I understand that information I provide will be used for scientific reports"},
	}},
	{Number: 2, Title: "Basic Info", Items: []Question{
		{ID: "org-name", Page: 2, Kind: KindTB, Optional: true,
			Text: "Name of the organization whose e-mail service you manage"},
		{ID: "domain-name", Page: 2, Kind: KindTB, Optional: true,
			Text: "Name of the domain whose e-mail service you manage"},
		{ID: "accounts", Page: 2, Kind: KindSCQ, Optional: true,
			Text:    "How many email accounts exist under your operated infrastructure?",
			Options: BucketLabels},
	}},
	{Number: 3, Title: "MTA-STS check 1",
		SkipTo: func(r *Response) int {
			if r.HeardOfMTASTS == 0 {
				return -1 // never heard: survey ends
			}
			return 0
		},
		Items: []Question{
			{ID: "heard-mtasts", Page: 3, Kind: KindYN, Optional: true,
				Text: "Have you heard about MTA-STS?"},
		}},
	{Number: 4, Title: "MTA-STS check 2",
		SkipTo: func(r *Response) int {
			if r.Deployed == 0 {
				return 10 // non-deployers jump to the why-not page
			}
			return 0
		},
		Items: []Question{
			{ID: "deployed", Page: 4, Kind: KindYN, Optional: true,
				Text: "Does your domain support MTA-STS?"},
		}},
	{Number: 5, Title: "Deployment for inbound emails", Items: []Question{
		{ID: "deploy-state", Page: 5, Kind: KindGS, Optional: true,
			Text: "Select the best option for each statement for your most used domain"},
		{ID: "motivation", Page: 5, Kind: KindLS, Optional: true,
			Text: "Why did you choose to adopt MTA-STS for your domain?",
			Options: []string{
				"Prevents downgrade or interception attack",
				"Dependency on web PKI sounds more trustworthy",
				"Provides optional testing only mode",
				"DANE requires DNSSEC and is harder to manage",
			}},
		{ID: "rollout-reasons", Page: 5, Kind: KindLS, Optional: true,
			Text: "Why do you think operators roll out MTA-STS?",
			Options: []string{
				"Customers asked us to", "Required by regulation",
				"Wanted to play with it", "Google acceptance", "Pulse of tech-dev",
			}},
		{ID: "bottleneck", Page: 5, Kind: KindLS, Optional: true,
			Text: "What is the largest bottleneck for MTA-STS deployment?",
			Options: []string{
				"Operational complexity", "Better alternative in DANE",
				"Do not need email encryption",
			}},
	}},
	{Number: 6, Title: "Misconfigurations", Items: []Question{
		{ID: "setting-valid", Page: 6, Kind: KindSCQ, Optional: true,
			Text: "Is the MTA-STS setting of your domain valid?", Options: []string{"yes", "no", "don't know"}},
		{ID: "difficulty", Page: 6, Kind: KindLS, Optional: true,
			Text: "Most difficult thing in setting up and managing MTA-STS",
			Options: []string{
				"Setting up associated DNS records", "Configuring HTTPS policy file",
				"Configuring SMTP server with a PKI valid certificate",
				"Managing policy update", "Opting out of MTA-STS",
			}},
		{ID: "invalid-causes", Page: 6, Kind: KindLS, Optional: true,
			Text: "Main reason behind prevalent invalid MTA-STS configurations"},
		{ID: "update-seq", Page: 6, Kind: KindSCQ, Optional: true,
			Text: "While updating your policy, which sequence do you maintain?",
			Options: []string{
				"Update MTA-STS TXT record first", "Update HTTPS policy body first",
				"Never updated", "Don't know",
			}},
	}},
	{Number: 7, Title: "Policy Host Management",
		SkipTo: func(r *Response) int { return 0 },
		Items: []Question{
			{ID: "policy-host-mgmt", Page: 7, Kind: KindSCQ, Optional: true,
				Text:    "How do you manage your MTA-STS policy host?",
				Options: []string{"outsourced to a 3rd-party policy hosting provider", "self-managed"}},
		}},
	{Number: 8, Title: "Management 1", Items: []Question{
		{ID: "provider", Page: 8, Kind: KindSCQ, Optional: true,
			Text: "Which 3rd-party policy host service do you use?",
			Options: []string{
				"Tutanota", "URIPorts", "Mailhardener", "PowerDMARC",
				"EasyDMARC", "OnDMARC", "DMARCReport", "Other",
			}},
		{ID: "hosted-benefits", Page: 8, Kind: KindLS, Optional: true,
			Text: "To what extent do you agree regarding hosted MTA-STS services?"},
		{ID: "smtp-mgmt", Page: 8, Kind: KindSCQ, Optional: true,
			Text:    "How do you manage your incoming SMTP server?",
			Options: []string{"outsourced to an external email hosting provider", "self-managed"}},
	}},
	{Number: 9, Title: "Both outsourced", Items: []Question{
		{ID: "same-provider", Page: 9, Kind: KindYN, Optional: true,
			Text: "Does your email hosting provider manage your MTA-STS policy?"},
	}},
	{Number: 10, Title: "MTA-STS not supported", Items: []Question{
		{ID: "why-not", Page: 10, Kind: KindSCQ, Optional: true,
			Text: "Why do you NOT deploy MTA-STS for your domain?",
			Options: []string{
				"I do not understand how it works",
				"I understand how it works, but I don't think I need it",
				"Too complicated to deploy and manage",
				"I use DANE", "Other",
			}},
		{ID: "ever-used", Page: 10, Kind: KindYN, Optional: true,
			Text: "Have you ever used MTA-STS?"},
	}},
	{Number: 11, Title: "DANE check 1",
		SkipTo: func(r *Response) int {
			if r.HeardOfDANE == 0 {
				return 13
			}
			return 0
		},
		Items: []Question{
			{ID: "heard-dane", Page: 11, Kind: KindYN, Optional: true,
				Text: "Have you heard about DANE?"},
		}},
	{Number: 12, Title: "Comparison w/ DANE", Items: []Question{
		{ID: "dane-state", Page: 12, Kind: KindGS, Optional: true,
			Text: "Does your email server support DANE for inbound emails?"},
		{ID: "which-better", Page: 12, Kind: KindLS, Optional: true,
			Text: "Which protocol is better in design for mandating email encryption?",
			Options: []string{
				"Definitely MTA-STS", "More MTA-STS", "Balanced", "More DANE", "Definitely DANE",
			}},
		{ID: "other-considerations", Page: 12, Kind: KindTB, Optional: true,
			Text: "Other implementation considerations around MTA-STS and DANE"},
	}},
	{Number: 13, Title: "MTA-STS check 3", Items: []Question{
		{ID: "validates-outbound", Page: 13, Kind: KindSCQ, Optional: true,
			Text:    "Does your email server validate MTA-STS for outbound connections?",
			Options: []string{"Yes", "No", "Don't Know"}},
	}},
	{Number: 14, Title: "Validation tool", Items: []Question{
		{ID: "tool", Page: 14, Kind: KindSCQ, Optional: true,
			Text:    "Which tool do you use to validate MTA-STS for outbound connections?",
			Options: []string{"postfix-mta-sts-resolver", "mox", "proprietary", "other"}},
	}},
	{Number: 15, Title: "Validation bottleneck", Items: []Question{
		{ID: "validation-bottleneck", Page: 15, Kind: KindLS, Optional: true,
			Text: "Major bottleneck behind lack of MTA-STS validation support",
			Options: []string{
				"Lack of incentive from the sending side",
				"Difficulty in policy cache maintenance",
				"Low deployment rate among domains",
				"Lack of awareness of its benefits",
			}},
	}},
}

// QuestionByID finds an instrument question.
func QuestionByID(id string) (Question, bool) {
	for _, p := range Instrument {
		for _, q := range p.Items {
			if q.ID == id {
				return q, true
			}
		}
	}
	return Question{}, false
}

// ReachablePages simulates the instrument flow for a response: the set of
// page numbers the respondent could have seen given the skip logic.
func ReachablePages(r *Response) map[int]bool {
	seen := map[int]bool{}
	for i := 0; i < len(Instrument); {
		p := Instrument[i]
		seen[p.Number] = true
		next := 0
		if p.SkipTo != nil {
			next = p.SkipTo(r)
		}
		switch {
		case next == -1:
			return seen
		case next == 0:
			i++
		default:
			// Jump to the page with that number.
			j := -1
			for k := range Instrument {
				if Instrument[k].Number == next {
					j = k
					break
				}
			}
			if j < 0 || j <= i {
				return seen // defensive: no backward jumps
			}
			i = j
		}
	}
	return seen
}
