package survey

import "testing"

// TestPaperMarginals pins every §7.2 statistic.
func TestPaperMarginals(t *testing.T) {
	ds := NewPaperDataset()
	f := ds.Tabulate()

	checks := []struct {
		name      string
		got, want int
	}{
		{"initial respondents", ds.Initial, 120},
		{"engaged", f.Engaged, 117},
		{"familiarity asked", f.FamiliarityAsked, 94},
		{"familiar", f.Familiar, 89}, // 94.7%
		{"deployment asked", f.DeploymentAsked, 88},
		{"deployed", f.Deployed, 50}, // 56.8%
		{"motivation: downgrade", f.MotivationDowngrade, 34},
		{"motivation: web PKI", f.MotivationWebPKI, 9},
		{"motivation: over DANE", f.MotivationOverDANE, 10},
		{"motivation: customer demand", f.MotivationCustomer, 13},
		{"motivation: regulation", f.MotivationRegulator, 14},
		{"motivation: big providers", f.MotivationBigMail, 5},
		{"bottleneck asked", f.BottleneckAsked, 43},
		{"bottleneck: complexity", f.BottleneckComplexity, 21}, // 48.8%
		{"bottleneck: DANE better", f.BottleneckDANE, 17},      // 39.5%
		{"bottleneck: no need", f.BottleneckNoNeed, 5},         // 11.6%
		{"why-not asked", f.WhyNotAsked, 33},
		{"why-not: use DANE", f.WhyNotDANE, 15},      // 45.4%
		{"why-not: too complex", f.WhyNotComplex, 9}, // 27.2%
		{"difficulty asked", f.DifficultyAsked, 41},
		{"difficulty: HTTPS policy", f.DifficultyHTTPS, 8},    // 19.5%
		{"difficulty: policy update", f.DifficultyUpdate, 11}, // 26.8%
		{"update sequence asked", f.UpdateSeqAsked, 42},
		{"update: never", f.UpdateNever, 15},        // 35.7%
		{"update: TXT first", f.UpdateTXTFirst, 10}, // 23.8%
		{"DANE asked", f.DANEAsked, 79},
		{"DANE familiar", f.DANEFamiliar, 78}, // 98.7%
		{"no TLSA", f.NoTLSA, 26},             // 33.3%
		{"no DNSSEC support", f.NoDNSSECSupport, 10},
		{"preference asked", f.PreferenceAsked, 70},
		{"prefer DANE", f.PreferDANECount, 51}, // 72.8%
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestPaperPercentages(t *testing.T) {
	f := NewPaperDataset().Tabulate()
	pct := func(n, d int) float64 { return 100 * float64(n) / float64(d) }
	if p := pct(f.Familiar, f.FamiliarityAsked); p < 94.6 || p > 94.8 {
		t.Errorf("awareness = %.1f%%, want 94.7%%", p)
	}
	if p := pct(f.BottleneckComplexity, f.BottleneckAsked); p < 48.7 || p > 48.9 {
		t.Errorf("complexity = %.1f%%, want 48.8%%", p)
	}
	if p := pct(f.WhyNotDANE, f.WhyNotAsked); p < 45.3 || p > 45.6 {
		t.Errorf("DANE instead = %.1f%%, want 45.4%%", p)
	}
	if p := pct(f.PreferDANECount, f.PreferenceAsked); p < 72.7 || p > 73.0 {
		t.Errorf("prefer DANE = %.1f%%, want 72.8%%", p)
	}
}

func TestFigure11(t *testing.T) {
	ds := NewPaperDataset()
	labels, total, deployed := ds.Figure11()
	if len(labels) != 5 {
		t.Fatalf("labels = %v", labels)
	}
	sumT, sumD := 0, 0
	for i := range total {
		sumT += total[i]
		sumD += deployed[i]
		if deployed[i] > total[i] {
			t.Errorf("bucket %s: deployed %d > total %d", labels[i], deployed[i], total[i])
		}
	}
	if sumT != 92 {
		t.Errorf("total respondents with accounts = %d, want 92", sumT)
	}
	if sumD != 50 {
		t.Errorf("deployed with accounts = %d, want 50", sumD)
	}
	// Anchors from the paper: 22 manage <10 accounts, 36 manage >500.
	if total[0] != 22 {
		t.Errorf("bucket ~10 = %d, want 22", total[0])
	}
	if over500 := total[3] + total[4]; over500 != 36 {
		t.Errorf("buckets >500 = %d, want 36", over500)
	}
}

func TestSurveyFlowConsistency(t *testing.T) {
	// The instrument's skip logic must hold in the dataset: nobody who
	// answered "never heard of MTA-STS" (or skipped it) has later answers.
	ds := NewPaperDataset()
	for _, r := range ds.Responses {
		if r.HeardOfMTASTS != 1 {
			if r.Deployed != Unanswered {
				t.Errorf("respondent %d answered deployment without awareness", r.ID)
			}
			if r.Bottleneck != Unanswered || r.WhyNot != Unanswered {
				t.Errorf("respondent %d answered follow-ups without awareness", r.ID)
			}
		}
		if r.Deployed != 1 && r.Bottleneck != Unanswered {
			t.Errorf("respondent %d answered deployer question without deploying", r.ID)
		}
		if r.Deployed != 0 && r.WhyNot != Unanswered {
			t.Errorf("respondent %d answered non-deployer question", r.ID)
		}
	}
}

func TestInstrumentStructure(t *testing.T) {
	if len(Instrument) != 15 {
		t.Fatalf("pages = %d, want 15 (Appendix C)", len(Instrument))
	}
	seen := map[string]bool{}
	for _, p := range Instrument {
		if len(p.Items) == 0 {
			t.Errorf("page %d has no questions", p.Number)
		}
		for _, q := range p.Items {
			if q.Page != p.Number {
				t.Errorf("question %s claims page %d, lives on %d", q.ID, q.Page, p.Number)
			}
			if seen[q.ID] {
				t.Errorf("duplicate question id %s", q.ID)
			}
			seen[q.ID] = true
			// Only the consent questions are mandatory.
			if !q.Optional && p.Number != 1 {
				t.Errorf("non-consent question %s is mandatory", q.ID)
			}
		}
	}
	// The accounts question carries the Figure 11 buckets.
	q, ok := QuestionByID("accounts")
	if !ok || len(q.Options) != len(BucketLabels) {
		t.Errorf("accounts question = %+v", q)
	}
	if _, ok := QuestionByID("nope"); ok {
		t.Error("QuestionByID matched a bogus id")
	}
}

// TestDatasetRespectsInstrumentFlow: every answer in the paper dataset
// must come from a page the respondent could reach under the skip logic.
func TestDatasetRespectsInstrumentFlow(t *testing.T) {
	ds := NewPaperDataset()
	for i := range ds.Responses {
		r := &ds.Responses[i]
		pages := ReachablePages(r)
		check := func(answered bool, page int, what string) {
			if answered && !pages[page] {
				t.Errorf("respondent %d answered %s on unreachable page %d", r.ID, what, page)
			}
		}
		check(r.Deployed != Unanswered, 4, "deployment")
		check(r.Bottleneck != Unanswered, 5, "bottleneck")
		check(r.Difficulty != Unanswered, 6, "difficulty")
		check(r.UpdateSequence != Unanswered, 6, "update sequence")
		check(r.WhyNot != Unanswered, 10, "why-not")
		check(r.Preference != Unanswered, 12, "preference")
	}
}

func TestReachablePagesSkipLogic(t *testing.T) {
	// Never heard of MTA-STS: the survey ends at page 3.
	r := &Response{HeardOfMTASTS: 0, Deployed: Unanswered, HeardOfDANE: Unanswered}
	pages := ReachablePages(r)
	if !pages[3] || pages[4] || pages[10] {
		t.Errorf("non-aware flow pages = %v", pages)
	}
	// Aware non-deployer: jumps to page 10, continues to the DANE block.
	r = &Response{HeardOfMTASTS: 1, Deployed: 0, HeardOfDANE: 1}
	pages = ReachablePages(r)
	if pages[5] || !pages[10] || !pages[12] {
		t.Errorf("non-deployer flow pages = %v", pages)
	}
	// DANE-unaware deployer: skips the comparison page.
	r = &Response{HeardOfMTASTS: 1, Deployed: 1, HeardOfDANE: 0}
	pages = ReachablePages(r)
	if !pages[5] || pages[12] || !pages[13] {
		t.Errorf("DANE-unaware flow pages = %v", pages)
	}
}

func TestQuestionKindStrings(t *testing.T) {
	for k, want := range map[QuestionKind]string{
		KindSCQ: "SCQ", KindMCQ: "MCQ", KindYN: "YN",
		KindTB: "TB", KindGS: "GS", KindLS: "LS", QuestionKind(99): "?",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q", int(k), k.String())
		}
	}
}
