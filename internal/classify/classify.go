// Package classify implements the managing-entity attribution methodology
// of §4.3.1 of the paper: deciding, from public DNS data only, whether a
// domain's DNS service, MX hosts, and MTA-STS policy server are
// self-managed or operated by a third party, and — for domains that
// outsource both mail and policy hosting — whether one provider manages
// both (§4.5.1).
package classify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netsecurelab/mtasts/internal/psl"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// ManagedBy is the attribution outcome for one component.
type ManagedBy int

// Attribution outcomes.
const (
	// Unknown: not enough data to attribute.
	Unknown ManagedBy = iota
	// SelfManaged: operated by the domain owner.
	SelfManaged
	// ThirdParty: operated by an external provider.
	ThirdParty
)

// String returns a short label.
func (m ManagedBy) String() string {
	switch m {
	case SelfManaged:
		return "self-managed"
	case ThirdParty:
		return "third-party"
	}
	return "unknown"
}

// ThirdPartyThreshold is the popularity cutoff of Heuristic 1: an entity
// operating infrastructure for at least this many unique domains is a
// third party.
const ThirdPartyThreshold = 50

// SelfPolicyHostMax is the Heuristic 2 cutoff: a policy host serving at
// most this many domains is considered self-managed ("a single
// administrator commonly manages up to five domains", §4.3.1 fn. 6).
const SelfPolicyHostMax = 5

// DomainView is the public DNS data the classifier consumes for one
// domain — exactly the records the paper collects (NS, MX, A/AAAA, and the
// policy-host CNAME and address).
type DomainView struct {
	// Domain is the registered domain (SLD).
	Domain string
	// NS are the name-server host names.
	NS []string
	// MXHosts are the MX host names.
	MXHosts []string
	// MXAddrs maps each MX host to its resolved addresses.
	MXAddrs map[string][]string
	// ApexAddrs are A/AAAA records at the domain apex.
	ApexAddrs []string
	// PolicyCNAME is the CNAME target of "mta-sts.<domain>" ("" if the
	// name has no CNAME).
	PolicyCNAME string
	// PolicyAddrs are the resolved addresses of the policy host.
	PolicyAddrs []string
}

// Classification is the attribution for each component of one domain.
type Classification struct {
	Domain string
	DNS    ManagedBy
	MX     ManagedBy
	Policy ManagedBy
	// MXProvider and PolicyProvider carry the identified entity key when
	// the component is third-party ("" otherwise).
	MXProvider     string
	PolicyProvider string
	// SameProvider is meaningful when both MX and Policy are ThirdParty:
	// true when one provider appears to manage both (§4.5.1).
	SameProvider bool
}

// Classifier holds the population-wide popularity indices Heuristic 1
// needs. Build one from the full snapshot, then classify each domain.
type Classifier struct {
	list *psl.List

	// Popularity counts: unique domains per entity key.
	mxSLDDomains     map[string]int // MX eSLD -> #domains
	mxAddrDomains    map[string]int // MX address -> #domains
	policyKeyDomains map[string]int // policy entity key -> #domains
	nsSLDDomains     map[string]int // NS eSLD -> #domains

	// Single-administrator grouping (the mxascen.com exception of
	// Heuristic 1): fingerprint -> #domains sharing it, and the dominant
	// fingerprint per MX eSLD.
	fingerprintOfDomain map[string]string
	sldFingerprints     map[string]map[string]int
}

// NewClassifier indexes a population of domain views.
func NewClassifier(views []DomainView, list *psl.List) *Classifier {
	if list == nil {
		list = psl.Default()
	}
	c := &Classifier{
		list:                list,
		mxSLDDomains:        make(map[string]int),
		mxAddrDomains:       make(map[string]int),
		policyKeyDomains:    make(map[string]int),
		nsSLDDomains:        make(map[string]int),
		fingerprintOfDomain: make(map[string]string),
		sldFingerprints:     make(map[string]map[string]int),
	}
	for i := range views {
		c.index(&views[i])
	}
	return c
}

func (c *Classifier) index(v *DomainView) {
	domain := strutil.CanonicalName(v.Domain)
	seenSLD := map[string]bool{}
	seenAddr := map[string]bool{}
	for _, mx := range v.MXHosts {
		if sld := c.list.RegistrableDomain(mx); sld != "" && !seenSLD[sld] {
			seenSLD[sld] = true
			c.mxSLDDomains[sld]++
		}
		for _, a := range v.MXAddrs[mx] {
			if !seenAddr[a] {
				seenAddr[a] = true
				c.mxAddrDomains[a]++
			}
		}
	}
	if key := c.policyKey(v); key != "" {
		c.policyKeyDomains[key]++
	}
	seenNS := map[string]bool{}
	for _, ns := range v.NS {
		if sld := c.list.RegistrableDomain(ns); sld != "" && !seenNS[sld] {
			seenNS[sld] = true
			c.nsSLDDomains[sld]++
		}
	}
	// Administrator fingerprint: the combined infrastructure addresses.
	fp := fingerprint(v)
	c.fingerprintOfDomain[domain] = fp
	for _, mx := range v.MXHosts {
		if sld := c.list.RegistrableDomain(mx); sld != "" {
			m := c.sldFingerprints[sld]
			if m == nil {
				m = make(map[string]int)
				c.sldFingerprints[sld] = m
			}
			m[fp]++
		}
	}
}

// policyKey identifies the policy hosting entity for popularity counting:
// the CNAME target's registrable domain when delegated, else the sorted
// policy addresses.
func (c *Classifier) policyKey(v *DomainView) string {
	if v.PolicyCNAME != "" {
		if sld := c.list.RegistrableDomain(v.PolicyCNAME); sld != "" {
			return "cname:" + sld
		}
	}
	if len(v.PolicyAddrs) == 0 {
		return ""
	}
	addrs := append([]string(nil), v.PolicyAddrs...)
	sort.Strings(addrs)
	return "addr:" + strings.Join(addrs, ",")
}

// fingerprint summarizes the infrastructure of a domain for the
// single-administrator exception: domains sharing MX hosts, apex addresses
// and policy addresses are grouped as one administrator.
func fingerprint(v *DomainView) string {
	var parts []string
	parts = append(parts, v.ApexAddrs...)
	parts = append(parts, v.PolicyAddrs...)
	for _, addrs := range v.MXAddrs {
		parts = append(parts, addrs...)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// Classify attributes each component of one domain.
func (c *Classifier) Classify(v DomainView) Classification {
	domain := strutil.CanonicalName(v.Domain)
	out := Classification{Domain: domain}
	out.DNS = c.classifyDNS(domain, v)
	out.MX, out.MXProvider = c.classifyMX(domain, v)
	out.Policy, out.PolicyProvider = c.classifyPolicy(domain, v)
	if out.MX == ThirdParty && out.Policy == ThirdParty {
		out.SameProvider = SameProvider(v.PolicyCNAME, v.MXHosts, c.list)
	}
	return out
}

// classifyDNS: Heuristic 2 first (NS shares the domain's SLD →
// self-managed), then Heuristic 1 popularity.
func (c *Classifier) classifyDNS(domain string, v DomainView) ManagedBy {
	if len(v.NS) == 0 {
		return Unknown
	}
	for _, ns := range v.NS {
		if c.list.RegistrableDomain(ns) == domain {
			return SelfManaged
		}
	}
	for _, ns := range v.NS {
		if sld := c.list.RegistrableDomain(ns); sld != "" && c.nsSLDDomains[sld] >= ThirdPartyThreshold {
			return ThirdParty
		}
	}
	return SelfManaged
}

// classifyMX applies, in order: same-SLD (self), the single-administrator
// grouping exception, hostname popularity, and address popularity (the
// per-customer-hostname exception).
func (c *Classifier) classifyMX(domain string, v DomainView) (ManagedBy, string) {
	if len(v.MXHosts) == 0 {
		return Unknown, ""
	}
	for _, mx := range v.MXHosts {
		if c.list.RegistrableDomain(mx) == domain {
			return SelfManaged, ""
		}
	}
	for _, mx := range v.MXHosts {
		sld := c.list.RegistrableDomain(mx)
		if sld == "" {
			continue
		}
		if c.mxSLDDomains[sld] >= ThirdPartyThreshold {
			// Exception: a "popular" MX whose user domains all share one
			// infrastructure fingerprint is a single administrator
			// self-hosting many domains (the mxascen.com case).
			if c.singleAdminSLD(sld) {
				return SelfManaged, ""
			}
			return ThirdParty, sld
		}
	}
	// Per-customer hostnames: unique names, shared provider addresses.
	for _, mx := range v.MXHosts {
		for _, a := range v.MXAddrs[mx] {
			if c.mxAddrDomains[a] >= ThirdPartyThreshold {
				if c.singleAdminAddrs(v) {
					return SelfManaged, ""
				}
				return ThirdParty, fmt.Sprintf("ip:%s", a)
			}
		}
	}
	return SelfManaged, ""
}

// singleAdminSLD reports whether at least 90% of the domains behind an MX
// SLD share an identical infrastructure fingerprint.
func (c *Classifier) singleAdminSLD(sld string) bool {
	fps := c.sldFingerprints[sld]
	if len(fps) == 0 {
		return false
	}
	total, max := 0, 0
	for fp, n := range fps {
		if fp == "" {
			continue
		}
		total += n
		if n > max {
			max = n
		}
	}
	return total > 0 && max*10 >= total*9
}

func (c *Classifier) singleAdminAddrs(v DomainView) bool {
	fp := fingerprint(&v)
	if fp == "" {
		return false
	}
	// Count how many domains share this exact fingerprint; if that equals
	// the popularity of the addresses, it is one administrator's cluster.
	n := 0
	for _, other := range c.fingerprintOfDomain {
		if other == fp {
			n++
		}
	}
	for _, addrs := range v.MXAddrs {
		for _, a := range addrs {
			if c.mxAddrDomains[a] > n {
				return false
			}
		}
	}
	return true
}

// classifyPolicy: delegation (CNAME to a foreign SLD) is third-party by
// construction when the target entity is popular; otherwise Heuristic 2's
// ≤5-domain rule applies.
func (c *Classifier) classifyPolicy(domain string, v DomainView) (ManagedBy, string) {
	key := c.policyKey(&v)
	if key == "" {
		return Unknown, ""
	}
	if v.PolicyCNAME != "" {
		targetSLD := c.list.RegistrableDomain(v.PolicyCNAME)
		if targetSLD != "" && targetSLD != domain {
			if c.policyKeyDomains[key] > SelfPolicyHostMax {
				return ThirdParty, targetSLD
			}
			// A CNAME to a tiny foreign host: a small/new provider or a
			// friend's server; the ≤5 rule labels it self-managed.
			return SelfManaged, ""
		}
		return SelfManaged, ""
	}
	if c.policyKeyDomains[key] >= ThirdPartyThreshold {
		return ThirdParty, key
	}
	if c.policyKeyDomains[key] <= SelfPolicyHostMax {
		return SelfManaged, ""
	}
	// Between the cutoffs: a shared host below provider scale.
	return ThirdParty, key
}

// SameProvider implements §4.5.1: for a domain outsourcing both mail and
// policy hosting, the two are deemed the same provider when the policy
// CNAME target and an MX host share a registrable domain or a second
// label (the "tutanota" in mail.tutanota.de vs mta-sts.tutanota.com).
func SameProvider(policyCNAME string, mxHosts []string, list *psl.List) bool {
	if list == nil {
		list = psl.Default()
	}
	if policyCNAME == "" || len(mxHosts) == 0 {
		return false
	}
	cnameSLD := list.RegistrableDomain(policyCNAME)
	cnameLabel := secondLabel(cnameSLD)
	for _, mx := range mxHosts {
		mxSLD := list.RegistrableDomain(mx)
		if mxSLD != "" && mxSLD == cnameSLD {
			return true
		}
		if l := secondLabel(mxSLD); l != "" && l == cnameLabel {
			return true
		}
	}
	return false
}

// secondLabel returns the label left of the public suffix ("tutanota" for
// tutanota.de).
func secondLabel(sld string) string {
	labels := strutil.Labels(sld)
	if len(labels) == 0 {
		return ""
	}
	return labels[0]
}
