package classify

import (
	"fmt"
	"testing"
)

// population builds a synthetic population: nGoogle domains on a large
// provider, nSelf fully self-hosted domains, plus any extra views.
func population(nProvider, nSelf int, extra ...DomainView) []DomainView {
	var views []DomainView
	for i := 0; i < nProvider; i++ {
		d := fmt.Sprintf("cust%d.com", i)
		views = append(views, DomainView{
			Domain:  d,
			NS:      []string{"ns1.bigdns.com", "ns2.bigdns.com"},
			MXHosts: []string{"aspmx.bigmail.com"},
			MXAddrs: map[string][]string{"aspmx.bigmail.com": {"198.51.100.10"}},
			// Each domain's own site/policy infra varies.
			ApexAddrs:   []string{fmt.Sprintf("203.0.113.%d", i%250)},
			PolicyCNAME: "mta-sts.bigpolicy.net",
			PolicyAddrs: []string{"198.51.100.53"},
		})
	}
	for i := 0; i < nSelf; i++ {
		d := fmt.Sprintf("own%d.org", i)
		views = append(views, DomainView{
			Domain:      d,
			NS:          []string{"ns1." + d},
			MXHosts:     []string{"mail." + d},
			MXAddrs:     map[string][]string{"mail." + d: {fmt.Sprintf("192.0.2.%d", i%250)}},
			ApexAddrs:   []string{fmt.Sprintf("192.0.2.%d", i%250)},
			PolicyAddrs: []string{fmt.Sprintf("192.0.2.%d", i%250)},
		})
	}
	return append(views, extra...)
}

func TestThirdPartyByPopularity(t *testing.T) {
	views := population(60, 10)
	c := NewClassifier(views, nil)
	got := c.Classify(views[0])
	if got.MX != ThirdParty || got.MXProvider != "bigmail.com" {
		t.Errorf("MX = %v / %q", got.MX, got.MXProvider)
	}
	if got.DNS != ThirdParty {
		t.Errorf("DNS = %v", got.DNS)
	}
	if got.Policy != ThirdParty || got.PolicyProvider != "bigpolicy.net" {
		t.Errorf("Policy = %v / %q", got.Policy, got.PolicyProvider)
	}
}

func TestSelfManagedBySameSLD(t *testing.T) {
	views := population(60, 10)
	c := NewClassifier(views, nil)
	got := c.Classify(views[60]) // own0.org
	if got.MX != SelfManaged {
		t.Errorf("MX = %v", got.MX)
	}
	if got.DNS != SelfManaged {
		t.Errorf("DNS = %v", got.DNS)
	}
	if got.Policy != SelfManaged {
		t.Errorf("Policy = %v", got.Policy)
	}
}

func TestUnpopularProviderIsSelfManaged(t *testing.T) {
	// Heuristic 2: a small external host (≤5 domains) counts as
	// self-managed even though names differ.
	var extra []DomainView
	for i := 0; i < 3; i++ {
		extra = append(extra, DomainView{
			Domain:      fmt.Sprintf("tiny%d.net", i),
			NS:          []string{"ns.tinyhost.example"},
			MXHosts:     []string{"mx.tinyhost.example"},
			MXAddrs:     map[string][]string{"mx.tinyhost.example": {"192.0.2.200"}},
			PolicyAddrs: []string{"192.0.2.201"},
		})
	}
	views := population(60, 10, extra...)
	c := NewClassifier(views, nil)
	got := c.Classify(extra[0])
	if got.MX != SelfManaged {
		t.Errorf("tiny MX = %v", got.MX)
	}
	if got.Policy != SelfManaged {
		t.Errorf("tiny Policy = %v", got.Policy)
	}
}

func TestSingleAdminException(t *testing.T) {
	// The mxascen.com case: one administrator runs MX + policy + web for
	// many domains on identical IPs. Popularity says third-party; the
	// fingerprint grouping must override to self-managed.
	var views []DomainView
	for i := 0; i < 120; i++ {
		views = append(views, DomainView{
			Domain:      fmt.Sprintf("fleet%d.com", i),
			NS:          []string{"ns.fleetadmin.com"},
			MXHosts:     []string{"mx.l.fleetadmin.com"},
			MXAddrs:     map[string][]string{"mx.l.fleetadmin.com": {"194.113.75.102"}},
			ApexAddrs:   []string{"194.113.75.102"},
			PolicyAddrs: []string{"95.111.215.165", "209.50.60.142"},
		})
	}
	c := NewClassifier(views, nil)
	got := c.Classify(views[0])
	if got.MX != SelfManaged {
		t.Errorf("single-admin fleet MX = %v, want self-managed", got.MX)
	}
}

func TestPerCustomerHostnameException(t *testing.T) {
	// A provider assigning unique MX hostnames per customer that all
	// resolve to the same provider IPs: hostname popularity misses it,
	// address popularity must catch it. Customers differ in their own
	// apex/policy infrastructure, so the single-admin grouping must NOT
	// fire.
	var views []DomainView
	for i := 0; i < 80; i++ {
		mx := fmt.Sprintf("cust%d.mx.uniquehost.net", i)
		views = append(views, DomainView{
			Domain:      fmt.Sprintf("shop%d.se", i),
			NS:          []string{fmt.Sprintf("ns%d.dns.se", i%3)},
			MXHosts:     []string{mx},
			MXAddrs:     map[string][]string{mx: {"198.51.100.77"}},
			ApexAddrs:   []string{fmt.Sprintf("203.0.113.%d", i%200)},
			PolicyAddrs: []string{fmt.Sprintf("203.0.113.%d", i%200)},
		})
	}
	c := NewClassifier(views, nil)
	got := c.Classify(views[0])
	if got.MX != ThirdParty {
		t.Errorf("per-customer-hostname MX = %v, want third-party", got.MX)
	}
}

func TestSameProviderDetection(t *testing.T) {
	cases := []struct {
		cname string
		mx    []string
		want  bool
	}{
		// The paper's Tutanota example: shared second label across TLDs.
		{"mta-sts.tutanota.com", []string{"mail.tutanota.de"}, true},
		// Same registrable domain.
		{"policy.bigmail.com", []string{"aspmx.bigmail.com"}, true},
		// Different providers.
		{"a-com.mta-sts.dmarcinput.com", []string{"mx.lucidgrow.com"}, false},
		{"", []string{"mx.example.com"}, false},
		{"mta-sts.provider.com", nil, false},
	}
	for _, c := range cases {
		if got := SameProvider(c.cname, c.mx, nil); got != c.want {
			t.Errorf("SameProvider(%q, %v) = %v, want %v", c.cname, c.mx, got, c.want)
		}
	}
}

func TestClassificationSameProviderField(t *testing.T) {
	// Both outsourced to entities sharing a second label → SameProvider.
	var views []DomainView
	for i := 0; i < 60; i++ {
		views = append(views, DomainView{
			Domain:      fmt.Sprintf("c%d.com", i),
			NS:          []string{"ns.provider.net"},
			MXHosts:     []string{"mail.hoster.de"},
			MXAddrs:     map[string][]string{"mail.hoster.de": {"198.51.100.9"}},
			ApexAddrs:   []string{fmt.Sprintf("203.0.113.%d", i)},
			PolicyCNAME: "mta-sts.hoster.com",
			PolicyAddrs: []string{"198.51.100.8"},
		})
	}
	c := NewClassifier(views, nil)
	got := c.Classify(views[0])
	if got.MX != ThirdParty || got.Policy != ThirdParty {
		t.Fatalf("classification = %+v", got)
	}
	if !got.SameProvider {
		t.Error("SameProvider should be true for hoster.de / hoster.com")
	}
}

func TestEmptyViewUnknown(t *testing.T) {
	c := NewClassifier(nil, nil)
	got := c.Classify(DomainView{Domain: "empty.com"})
	if got.MX != Unknown || got.DNS != Unknown || got.Policy != Unknown {
		t.Errorf("empty view = %+v", got)
	}
}

func TestManagedByString(t *testing.T) {
	if SelfManaged.String() != "self-managed" || ThirdParty.String() != "third-party" || Unknown.String() != "unknown" {
		t.Error("ManagedBy.String mismatch")
	}
}
