package simnet

import (
	"fmt"
	"strings"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

// recordErrKind enumerates §4.3.2 record failures.
type recordErrKind int

const (
	recOK recordErrKind = iota
	recNoID
	recBadID
	recBadVersion
	recBadExt
	recMultiple
)

// policyErrKind enumerates Figure 5 policy-retrieval failures.
type policyErrKind int

const (
	polOK policyErrKind = iota
	polDNS
	polTCP
	polTLSNameMismatch
	polTLSSelfSigned
	polTLSExpired
	polTLSMissing
	polHTTP404
	polHTTP500
	polSyntaxBadMX
	polSyntaxEmpty
)

// mxErrKind enumerates Figure 6 MX certificate failures.
type mxErrKind int

const (
	mxOK mxErrKind = iota
	mxNameMismatch
	mxSelfSigned
	mxExpired
)

// errorPlan is the realized error state of one domain at one snapshot.
type errorPlan struct {
	record recordErrKind
	policy policyErrKind
	// mxErrs aligns with the domain's MX hosts at the snapshot.
	mxErrs []mxErrKind
}

// persistEpoch groups snapshots so errors persist for a few months before
// the domain "churns" (fixes old issues, introduces new ones).
const persistEpoch = 3

func epochOf(d *Domain, t int) string {
	return itoa((t + d.Index%persistEpoch) / persistEpoch)
}

// basePolicySelfRate is the non-Porkbun self-managed policy error rate; it
// combines with the Porkbun cohort to the paper's 37.8% at the final
// snapshot (see params.go for the reconciliation).
const basePolicySelfRate = 0.17

// planAt derives the domain's error state at snapshot t.
func (w *World) planAt(d *Domain, t int) errorPlan {
	seed := w.Cfg.Seed
	ep := epochOf(d, t)
	var plan errorPlan

	// Record errors (§4.3.2) — rare, any management class.
	r := LatestRates
	if unit(seed, d.Name, "rec", ep) < r.Record {
		switch pick(unit(seed, d.Name, "reckind"), r.RecordNoID, r.RecordBadID, r.RecordBadVersion, r.RecordBadExt, 1) {
		case 0:
			plan.record = recNoID
		case 1:
			plan.record = recBadID
		case 2:
			plan.record = recBadVersion
		case 3:
			plan.record = recBadExt
		default:
			plan.record = recMultiple
		}
	}

	// Policy-retrieval errors (Figure 5).
	plan.policy = w.policyPlanAt(d, t, ep)

	// MX certificate errors (Figure 6). The error applies to all MXes
	// (AllInvalidFrac) or only the first of several.
	mxs := d.MXHostsAt(t)
	plan.mxErrs = make([]mxErrKind, len(mxs))
	mxRate := r.MXThird
	if d.MXClass == ClassSelf {
		mxRate = r.MXSelf
		if t == Months-1 {
			// "270 domains ... fixed their Common Name mismatch error in
			// our latest snapshot": a small final-month dip.
			mxRate *= 0.95
		}
	} else if d.MXClass == ClassUnclassifiable {
		mxRate = (r.MXSelf + r.MXThird) / 2
	}
	if unit(seed, d.Name, "mx", ep) < mxRate {
		var kind mxErrKind
		switch pick(unit(seed, d.Name, "mxkind"), r.MXNameMismatch, r.MXSelfSigned, 1) {
		case 0:
			kind = mxNameMismatch
		case 1:
			kind = mxSelfSigned
		default:
			kind = mxExpired
		}
		all := len(mxs) == 1 || unit(seed, d.Name, "mxall") < r.AllInvalidFrac
		for i := range mxs {
			if all || i == 0 {
				plan.mxErrs[i] = kind
			}
		}
	}
	return plan
}

func (w *World) policyPlanAt(d *Domain, t int, ep string) policyErrKind {
	seed := w.Cfg.Seed
	r := LatestRates

	// Scripted incidents take precedence.
	if d.Porkbun {
		// Invalid policy-host certificates from registration onward.
		return polTLSNameMismatch
	}
	if d.SelfSignWave && t == SelfSignedWaveMonth {
		return polTLSSelfSigned
	}

	var rate float64
	switch d.PolicyClass {
	case ClassSelf:
		rate = basePolicySelfRate
	case ClassThird:
		rate = r.PolicyThird
	default:
		rate = r.PolicyUnclassified
	}
	if unit(seed, d.Name, "pol", ep) >= rate {
		return polOK
	}

	// Stage mix by class.
	u := unit(seed, d.Name, "polstage", ep)
	if d.PolicyClass == ClassThird {
		switch pick(u, r.ThirdStageTCP, r.ThirdStageTLS, r.ThirdStageHTTP, 1) {
		case 0:
			return polTCP
		case 1:
			switch pick(unit(seed, d.Name, "poltls", ep), r.ThirdTLSMissing, r.ThirdTLSExpired, 1) {
			case 0:
				return polTLSMissing
			case 1:
				return polTLSExpired
			default:
				return polTLSSelfSigned
			}
		case 2:
			if unit(seed, d.Name, "polhttp") < 0.65 {
				return polHTTP404
			}
			return polHTTP500
		default:
			if unit(seed, d.Name, "polsyn") < 0.5 {
				return polSyntaxEmpty // the DMARCReport empty-file case
			}
			return polSyntaxBadMX
		}
	}
	// Self-managed / unclassified mix.
	switch pick(u, r.SelfStageDNS, r.SelfStageTCP, r.SelfStageTLS, r.SelfStageHTTP, 1) {
	case 0:
		return polDNS
	case 1:
		return polTCP
	case 2:
		switch pick(unit(seed, d.Name, "poltls", ep), r.SelfTLSNameMismatch, r.SelfTLSSelfSigned, 1) {
		case 0:
			return polTLSNameMismatch
		case 1:
			return polTLSSelfSigned
		default:
			return polTLSExpired
		}
	case 3:
		if unit(seed, d.Name, "polhttp") < 0.65 {
			return polHTTP404
		}
		return polHTTP500
	default:
		return polSyntaxBadMX
	}
}

// ArtifactsAt materializes the scan observables for domain d at snapshot
// t: real TXT strings, a real policy body, and certificate descriptors —
// everything scanner.ScanArtifacts needs. It returns ok=false when the
// domain has not yet adopted MTA-STS at t.
func (w *World) ArtifactsAt(d *Domain, t int) (scanner.Artifacts, bool) {
	if d.AdoptedAt > t {
		return scanner.Artifacts{}, false
	}
	now := SnapshotTime(t)
	plan := w.planAt(d, t)
	mxs := d.MXHostsAt(t)

	a := scanner.Artifacts{
		Domain:             d.Name,
		MXHosts:            mxs,
		PolicyHostResolves: true,
		PolicyCNAME:        d.PolicyHostCNAME(),
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(now, mtasts.PolicyHost(d.Name)),
		HTTPStatus:         200,
		MXSTARTTLS:         make(map[string]bool, len(mxs)),
		MXCerts:            make(map[string]pki.CertProfile, len(mxs)),
	}

	// TXT record.
	id := fmt.Sprintf("%d%02d%02d", now.Year(), int(now.Month()), 1)
	switch plan.record {
	case recOK:
		a.TXT = []string{"v=STSv1; id=" + id + ";"}
	case recNoID:
		a.TXT = []string{"v=STSv1;"}
	case recBadID:
		a.TXT = []string{fmt.Sprintf("v=STSv1; id=%d-%02d-01;", now.Year(), int(now.Month()))}
	case recBadVersion:
		a.TXT = []string{"v=STSV1; id=" + id + ";"}
	case recBadExt:
		// The paper's example: "v=STSv1; id=1; mx: a.com; mode: testing;"
		a.TXT = []string{"v=STSv1; id=1; mx: a.com; mode: testing;"}
	case recMultiple:
		a.TXT = []string{"v=STSv1; id=" + id + "a;", "v=STSv1; id=" + id + "b;"}
	}

	// Policy pipeline.
	switch plan.policy {
	case polOK:
		a.PolicyBody = []byte(w.policyBody(d, t))
	case polDNS:
		a.PolicyHostResolves = false
	case polTCP:
		a.TCPOpen = false
	case polTLSNameMismatch:
		a.PolicyCert = pki.GoodProfile(now, d.Name) // bare domain, no mta-sts label
		a.PolicyBody = []byte(w.policyBody(d, t))
	case polTLSSelfSigned:
		a.PolicyCert = pki.SelfSignedProfile(now, mtasts.PolicyHost(d.Name))
		a.PolicyBody = []byte(w.policyBody(d, t))
	case polTLSExpired:
		a.PolicyCert = pki.ExpiredProfile(now, mtasts.PolicyHost(d.Name))
		a.PolicyBody = []byte(w.policyBody(d, t))
	case polTLSMissing:
		a.PolicyCert = pki.MissingProfile()
	case polHTTP404:
		a.HTTPStatus = 404
	case polHTTP500:
		a.HTTPStatus = 500
	case polSyntaxBadMX:
		// Invalid mx patterns: an email address (64% of syntax errors stem
		// from such misunderstandings, §4.3.3).
		a.PolicyBody = []byte("version: STSv1\r\nmode: " + d.Mode +
			"\r\nmx: postmaster@" + d.Name + "\r\nmax_age: 86400\r\n")
	case polSyntaxEmpty:
		a.PolicyBody = nil
	}

	// MX certificates.
	for i, mx := range mxs {
		a.MXSTARTTLS[mx] = true
		var kind mxErrKind
		if i < len(plan.mxErrs) {
			kind = plan.mxErrs[i]
		}
		switch kind {
		case mxOK:
			a.MXCerts[mx] = pki.GoodProfile(now, mx)
		case mxNameMismatch:
			a.MXCerts[mx] = pki.GoodProfile(now, "other-"+mx)
		case mxSelfSigned:
			a.MXCerts[mx] = pki.SelfSignedProfile(now, mx)
		case mxExpired:
			a.MXCerts[mx] = pki.ExpiredProfile(now, mx)
		}
	}
	return a, true
}

// policyBody renders the domain's policy file at snapshot t, including the
// lucidgrow incident (for one snapshot, the outsourced policy lists none
// of the per-customer MX hosts).
func (w *World) policyBody(d *Domain, t int) string {
	patterns := d.PolicyPatternsAt(t)
	if d.Lucidgrow {
		if t == LucidgrowMonth {
			patterns = []string{"mx.dmarcinput.com"}
		} else {
			patterns = d.MXHostsAt(t)
		}
	}
	mode := d.Mode
	var sb strings.Builder
	sb.WriteString("version: STSv1\r\n")
	sb.WriteString("mode: " + mode + "\r\n")
	if mode != "none" {
		for _, p := range patterns {
			sb.WriteString("mx: " + p + "\r\n")
		}
	}
	sb.WriteString("max_age: 604800\r\n")
	return sb.String()
}

// ScanSnapshot runs the offline scanner over every live domain at t and
// returns the results, in population order.
func (w *World) ScanSnapshot(t int) []scanner.DomainResult {
	now := SnapshotTime(t)
	var out []scanner.DomainResult
	for _, d := range w.Domains {
		if a, ok := w.ArtifactsAt(d, t); ok {
			out = append(out, scanner.ScanArtifacts(a, now))
		}
	}
	return out
}

// DomainByName finds a domain by name (nil when absent).
func (w *World) DomainByName(name string) *Domain {
	for _, d := range w.Domains {
		if d.Name == name {
			return d
		}
	}
	return nil
}
