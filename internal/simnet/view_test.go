package simnet

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/classify"
)

func TestViewAtConsistentWithGroundTruth(t *testing.T) {
	w := Generate(Config{Seed: 21, Scale: 0.02})
	last := Months - 1
	for _, d := range w.Domains {
		if d.AdoptedAt > last {
			continue
		}
		v := w.ViewAt(d, last)
		if v.Domain != d.Name {
			t.Fatalf("view domain = %q", v.Domain)
		}
		if len(v.MXHosts) == 0 || len(v.ApexAddrs) == 0 {
			t.Fatalf("%s: empty view %+v", d.Name, v)
		}
		switch d.PolicyClass {
		case ClassThird:
			if v.PolicyCNAME == "" {
				t.Errorf("%s: third-party policy without CNAME", d.Name)
			}
		case ClassSelf:
			if v.PolicyCNAME != "" {
				t.Errorf("%s: self-managed policy with CNAME %q", d.Name, v.PolicyCNAME)
			}
			if len(v.NS) == 0 || v.NS[0] != "ns1."+d.Name {
				t.Errorf("%s: self-managed NS = %v", d.Name, v.NS)
			}
		}
		for _, mx := range v.MXHosts {
			if len(v.MXAddrs[mx]) == 0 {
				t.Errorf("%s: MX %s has no addresses", d.Name, mx)
			}
		}
	}
}

func TestViewsPopulationFiltered(t *testing.T) {
	w := Generate(Config{Seed: 21, Scale: 0.02})
	early := w.Views(0)
	late := w.Views(Months - 1)
	if len(early) >= len(late) {
		t.Errorf("views: early %d >= late %d", len(early), len(late))
	}
	if len(late) != len(w.Domains) {
		t.Errorf("late views = %d, domains = %d", len(late), len(w.Domains))
	}
}

func TestProviderAddrsShared(t *testing.T) {
	// All customers of one provider share the provider's address; distinct
	// providers get distinct addresses.
	a := providerAddr("google")
	b := providerAddr("google")
	c := providerAddr("outlook")
	if a != b {
		t.Errorf("provider addr not stable: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("distinct providers share %q", a)
	}
}

func TestUniqueAddrsDiffer(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 500; i++ {
		seen[uniqueAddr(1, itoa(i)+".example", "apex")]++
	}
	if len(seen) < 450 {
		t.Errorf("only %d distinct addresses among 500 domains", len(seen))
	}
}

// TestClassifierOnPolicyGroundTruth: the §4.3.1 heuristics attribute
// policy hosting consistently with the ground truth for the clear-cut
// classes.
func TestClassifierOnPolicyGroundTruth(t *testing.T) {
	w := Generate(Config{Seed: 13, Scale: 0.05})
	last := Months - 1
	views := w.Views(last)
	c := classify.NewClassifier(views, nil)
	agree, total := 0, 0
	for _, d := range w.Domains {
		if d.AdoptedAt > last || d.PolicyClass == ClassUnclassifiable {
			continue
		}
		got := c.Classify(w.ViewAt(d, last))
		want := classify.SelfManaged
		if d.PolicyClass == ClassThird {
			want = classify.ThirdParty
		}
		total++
		if got.Policy == want {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no domains")
	}
	if rate := float64(agree) / float64(total); rate < 0.85 {
		t.Errorf("policy attribution agreement = %.3f (%d/%d)", rate, agree, total)
	}
}
