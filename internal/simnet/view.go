package simnet

import (
	"fmt"

	"github.com/netsecurelab/mtasts/internal/classify"
)

// ViewAt materializes the public DNS view of a domain — the input to the
// §4.3.1 managing-entity heuristics — consistent with the domain's ground
// truth classes. The classify package's attribution of these views is
// validated against ground truth in the experiments tests.
func (w *World) ViewAt(d *Domain, t int) classify.DomainView {
	v := classify.DomainView{Domain: d.Name}
	mxs := d.MXHostsAt(t)
	v.MXHosts = mxs
	v.MXAddrs = make(map[string][]string, len(mxs))

	// Apex address: unique per domain.
	v.ApexAddrs = []string{uniqueAddr(w.Cfg.Seed, d.Name, "apex")}

	// NS records.
	switch d.PolicyClass {
	case ClassSelf:
		v.NS = []string{"ns1." + d.Name}
	default:
		v.NS = []string{"ns1.big-dns-provider.test", "ns2.big-dns-provider.test"}
	}

	// MX addresses.
	for _, mx := range mxs {
		if d.MXClass == ClassThird {
			// Provider-shared addresses.
			v.MXAddrs[mx] = []string{providerAddr(d.MXProviderOrSelf())}
		} else {
			v.MXAddrs[mx] = []string{uniqueAddr(w.Cfg.Seed, d.Name, "mx")}
		}
	}

	// Policy host.
	switch d.PolicyClass {
	case ClassThird:
		v.PolicyCNAME = d.PolicyHostCNAME()
		v.PolicyAddrs = []string{providerAddr(d.PolicyProvider)}
	case ClassSelf:
		v.PolicyAddrs = []string{uniqueAddr(w.Cfg.Seed, d.Name, "policy")}
	default:
		// Unclassifiable domains present ambiguous infrastructure: a
		// shared mid-popularity host, no CNAME delegation.
		pool := hash64(w.Cfg.Seed, d.Name, "ambig") % 8
		v.PolicyAddrs = []string{fmt.Sprintf("198.18.7.%d", 10+pool)}
	}
	return v
}

// uniqueAddr derives a stable per-domain address in 10.0.0.0/8.
func uniqueAddr(seed int64, name, kind string) string {
	h := hash64(seed, name, kind, "addr")
	return fmt.Sprintf("10.%d.%d.%d", (h>>16)%250+1, (h>>8)%250+1, h%250+1)
}

// providerAddr derives the shared address of a provider in 198.51.100.0/24
// style space.
func providerAddr(provider string) string {
	h := hash64(0, "provider", provider)
	return fmt.Sprintf("198.51.%d.%d", (h>>8)%100+1, h%250+1)
}

// Views materializes every live domain's view at snapshot t.
func (w *World) Views(t int) []classify.DomainView {
	var out []classify.DomainView
	for _, d := range w.Domains {
		if d.AdoptedAt <= t {
			out = append(out, w.ViewAt(d, t))
		}
	}
	return out
}
