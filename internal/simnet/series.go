package simnet

import (
	"math"

	"github.com/netsecurelab/mtasts/internal/scanner"
)

// DomainsWithMX interpolates the TLD's denominator (all registered domains
// with MX records) at snapshot t. These counts stay at paper scale — the
// analysis only ever divides by them.
func DomainsWithMX(tp TLDParams, t int) float64 {
	frac := float64(t) / float64(Months-1)
	return float64(tp.DomainsWithMXStart) + frac*float64(tp.DomainsWithMXEnd-tp.DomainsWithMXStart)
}

// DeploymentPercent returns the Figure 2 series for one TLD: the
// percentage of domains with MX records that publish an MTA-STS record,
// per snapshot. World counts are rescaled back to paper scale so the
// series is comparable across Scale settings.
func (w *World) DeploymentPercent(tld string) []float64 {
	var tp TLDParams
	for _, p := range TLDs {
		if p.TLD == tld {
			tp = p
		}
	}
	out := make([]float64, Months)
	scale := w.Cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for t := 0; t < Months; t++ {
		adopters := float64(w.AdoptedCount(t, tld)) / scale
		out[t] = 100 * adopters / DomainsWithMX(tp, t)
	}
	return out
}

// TLSRPTPercentOfMX returns the Figure 12 top series for one TLD: % of
// domains with MX records that publish TLSRPT. The model rides on the
// MTA-STS population plus the TLSRPT-only cohorts (the .net wave publishes
// TLSRPT without MTA-STS).
func (w *World) TLSRPTPercentOfMX(tld string) []float64 {
	var tp TLDParams
	for _, p := range TLDs {
		if p.TLD == tld {
			tp = p
		}
	}
	out := make([]float64, Months)
	scale := w.Cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for t := 0; t < Months; t++ {
		n := 0
		for _, d := range w.byTLD[tld] {
			if w.TLSRPTAt(d, t) {
				n++
			}
		}
		count := float64(n) / scale
		// TLSRPT adoption outside the MTA-STS population: calibrated so the
		// TLD endpoint totals match Appendix B.
		count += w.tlsrptOnly(tp, t)
		out[t] = 100 * count / DomainsWithMX(tp, t)
	}
	return out
}

// tlsrptOnly models domains publishing TLSRPT without MTA-STS (paper
// scale), including the 2024 .net wave.
func (w *World) tlsrptOnly(tp TLDParams, t int) float64 {
	frac := float64(t) / float64(Months-1)
	base := (float64(tp.TLSRPTStart) + frac*float64(tp.TLSRPTEnd-tp.TLSRPTStart)) * 0.30
	if tp.TLD == "net" && t >= NetTLSRPTWaveMonth {
		ramp := math.Min(1, float64(t-NetTLSRPTWaveMonth+1)/3.0)
		base += ramp * float64(NetTLSRPTWaveCount-NetTLSRPTWaveWithMTASTS)
	}
	if tp.TLD == "se" && t >= SeTLSRPTDropMonth {
		base -= float64(SeTLSRPTDropCount) * 0.3
	}
	if base < 0 {
		base = 0
	}
	return base
}

// TLSRPTPercentOfMTASTS returns the Figure 12 bottom series for one TLD:
// % of MTA-STS domains that also publish TLSRPT.
func (w *World) TLSRPTPercentOfMTASTS(tld string) []float64 {
	out := make([]float64, Months)
	for t := 0; t < Months; t++ {
		adopters, both := 0, 0
		for _, d := range w.byTLD[tld] {
			if d.AdoptedAt > t {
				continue
			}
			adopters++
			if w.TLSRPTAt(d, t) {
				both++
			}
		}
		if adopters > 0 {
			out[t] = 100 * float64(both) / float64(adopters)
		}
		// The 2024 .net wave adds MX domains with TLSRPT but few MTA-STS
		// domains — visible as a dip only in the top panel's composition;
		// the bottom panel reflects the in-population ratio directly.
	}
	return out
}

// TrancoBins is the number of Figure 3 rank bins (1M ranks / 10K).
const TrancoBins = 100

// TrancoAdoptionPercent computes Figure 3 from the generated population:
// % of Tranco-ranked domains (bins of 10,000 ranks) that publish MTA-STS
// at the final snapshot. Ranks are sampled at generation time with a
// density decaying from the top of the list, so the popularity
// correlation the paper reports emerges from the domains themselves.
func (w *World) TrancoAdoptionPercent() []float64 {
	scale := w.Cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	last := Months - 1
	counts := make([]int, TrancoBins)
	for _, d := range w.Domains {
		if d.Rank <= 0 || d.AdoptedAt > last {
			continue
		}
		bin := (d.Rank - 1) / 10000
		if bin >= 0 && bin < TrancoBins {
			counts[bin]++
		}
	}
	out := make([]float64, TrancoBins)
	for b := 0; b < TrancoBins; b++ {
		// Each bin holds 10,000 ranked domains (scaled with the world).
		out[b] = 100 * float64(counts[b]) / (10000 * scale)
	}
	return out
}

// DisclosureOutcome models §4.7: of the misconfigured domains notified,
// the share that bounced and the share resolved within the follow-up
// window.
type DisclosureOutcome struct {
	Notified int
	Bounced  int
	Resolved int
}

// Disclosure simulates the §4.7 notification campaign over a scanned
// final snapshot: every misconfigured domain is mailed at its postmaster
// address; a share bounces, and (independently of whether the mail
// arrived, per the paper's caveat) a share of domains resolve their issue
// within the follow-up window.
func (w *World) Disclosure(results []scanner.DomainResult) DisclosureOutcome {
	var out DisclosureOutcome
	for i := range results {
		r := &results[i]
		if !r.RecordPresent || !r.Misconfigured() {
			continue
		}
		out.Notified++
		if unit(w.Cfg.Seed, r.Domain, "bounce") < DisclosureBounceFrac {
			out.Bounced++
		}
		if unit(w.Cfg.Seed, r.Domain, "fix") < DisclosureFixedFrac {
			out.Resolved++
		}
	}
	return out
}
