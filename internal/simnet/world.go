package simnet

import (
	"fmt"
	"math"

	"github.com/netsecurelab/mtasts/internal/policysrv"
)

// Config parameterizes world generation.
type Config struct {
	// Seed fully determines the world.
	Seed int64
	// Scale multiplies every population and event count; 1.0 reproduces
	// the paper's 68K-domain final snapshot, smaller values give fast
	// test worlds.
	Scale float64
}

// World is a generated ecosystem: every MTA-STS adopter across the four
// TLDs for the whole study period.
type World struct {
	Cfg     Config
	Domains []*Domain

	// byTLD indexes domains per TLD.
	byTLD map[string][]*Domain
}

// scaled applies the world scale to a paper-level count.
func (cfg Config) scaled(n int) int {
	if cfg.Scale <= 0 || cfg.Scale == 1.0 {
		return n
	}
	v := int(math.Round(float64(n) * cfg.Scale))
	if n > 0 && v == 0 {
		v = 1
	}
	return v
}

// policyProviderWeights is the Table 2 customer mix among third-party
// policy hosting (remainder: long-tail providers).
var policyProviderWeights = []struct {
	Name   string
	Weight float64
}{
	{"Tutanota", 0.266},
	{"DMARCReport", 0.255},
	{"PowerDMARC", 0.131},
	{"EasyDMARC", 0.078},
	{"Mailhardener", 0.054},
	{"URIports", 0.038},
	{"Sendmarc", 0.028},
	{"OnDMARC", 0.016},
	{"OtherPolicyHost", 0.134},
}

// Generate builds a world. It is deterministic in cfg.
func Generate(cfg Config) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	w := &World{Cfg: cfg, byTLD: make(map[string][]*Domain)}
	idx := 0
	for _, tp := range TLDs {
		regular := cfg.scaled(tp.AdoptersEnd)
		var special int
		switch tp.TLD {
		case "com":
			special = cfg.scaled(PorkbunCount) + cfg.scaled(LucidgrowCount)
		case "org":
			special = cfg.scaled(OrgAdoptionSpikeCount)
		}
		if special > regular {
			special = regular
		}
		regular -= special

		start := cfg.scaled(tp.AdoptersStart)
		for i := 0; i < regular; i++ {
			d := w.newDomain(idx, tp.TLD)
			d.AdoptedAt = adoptionMonth(cfg.Seed, d.Name, start, regular)
			w.fixMigration(d)
			w.add(d)
			idx++
		}
		switch tp.TLD {
		case "com":
			for i := 0; i < cfg.scaled(LucidgrowCount); i++ {
				d := w.newDomain(idx, tp.TLD)
				d.AdoptedAt = clampMonth(LucidgrowMonth - 1 - int(hash64(cfg.Seed, d.Name, "lgadopt")%10))
				d.Lucidgrow = true
				d.MXClass = ClassThird
				d.MXProvider = "lucidgrow"
				d.PolicyClass = ClassThird
				d.PolicyProvider = "DMARCReport"
				d.Mode = "enforce"
				d.Mismatch = MismatchNone
				w.add(d)
				idx++
			}
			for i := 0; i < cfg.scaled(PorkbunCount); i++ {
				d := w.newDomain(idx, tp.TLD)
				half := cfg.scaled(PorkbunCount) / 2
				d.AdoptedAt = PorkbunStartMonth
				if i >= half {
					d.AdoptedAt = clampMonth(PorkbunStartMonth + 1)
				}
				d.Porkbun = true
				d.PolicyClass = ClassSelf
				d.MXClass = ClassSelf
				w.add(d)
				idx++
			}
		case "org":
			for i := 0; i < cfg.scaled(OrgAdoptionSpikeCount); i++ {
				d := w.newDomain(idx, tp.TLD)
				d.AdoptedAt = OrgAdoptionSpikeMonth
				d.OrgSpike = true
				w.add(d)
				idx++
			}
		}
	}

	// The one same-provider inconsistency of §4.5 (a typo that persisted
	// through every snapshot).
	lnIdx := -1
	for _, d := range w.Domains {
		if d.PolicyProvider == "Tutanota" && d.MXProvider == "tutanota" && d.Mismatch == MismatchNone {
			lnIdx = d.Index
			break
		}
	}
	if lnIdx >= 0 {
		d := w.Domains[lnIdx]
		d.Name = "laura-norman.com"
		d.Mismatch = MismatchTypo
	}

	// Third-party self-signed wave cohort (2024-06-08).
	waveLeft := cfg.scaled(SelfSignedWaveCount)
	for _, d := range w.Domains {
		if waveLeft == 0 {
			break
		}
		if d.PolicyClass == ClassThird && d.AdoptedAt < SelfSignedWaveMonth && !d.Lucidgrow {
			d.SelfSignWave = true
			waveLeft--
		}
	}
	return w
}

func (w *World) add(d *Domain) {
	w.Domains = append(w.Domains, d)
	w.byTLD[d.TLD] = append(w.byTLD[d.TLD], d)
}

// newDomain samples the persistent attributes of a regular adopter.
func (w *World) newDomain(idx int, tld string) *Domain {
	seed := w.Cfg.Seed
	name := fmt.Sprintf("d%06d.%s", idx, tld)
	d := &Domain{Name: name, TLD: tld, Index: idx}

	// Policy hosting class and provider.
	switch pick(unit(seed, name, "polclass"), PolicyClassifiedFrac*PolicyThirdFrac, PolicyClassifiedFrac*(1-PolicyThirdFrac), 1) {
	case 0:
		d.PolicyClass = ClassThird
		u := unit(seed, name, "polprov")
		weights := make([]float64, len(policyProviderWeights))
		for i, p := range policyProviderWeights {
			weights[i] = p.Weight
		}
		d.PolicyProvider = policyProviderWeights[pick(u, weights...)].Name
	case 1:
		d.PolicyClass = ClassSelf
	default:
		d.PolicyClass = ClassUnclassifiable
	}

	// MX class and provider. Tutanota policy customers almost always use
	// Tutanota mail too (the same-provider population of Figure 10).
	if d.PolicyProvider == "Tutanota" && unit(seed, name, "tutamx") < 0.98 {
		d.MXClass = ClassThird
		d.MXProvider = "tutanota"
	} else {
		switch pick(unit(seed, name, "mxclass"), MXClassifiedFrac*MXThirdFrac, MXClassifiedFrac*(1-MXThirdFrac), 1) {
		case 0:
			d.MXClass = ClassThird
			u := unit(seed, name, "mxprov")
			weights := make([]float64, len(mxProviders))
			for i, p := range mxProviders {
				weights[i] = p.Weight
			}
			d.MXProvider = mxProviders[pick(u, weights...)].Key
		case 1:
			d.MXClass = ClassSelf
		default:
			d.MXClass = ClassUnclassifiable
		}
	}

	// Policy mode.
	switch pick(unit(seed, name, "mode"), 0.20, 0.70, 1) {
	case 0:
		d.Mode = "enforce"
	case 1:
		d.Mode = "testing"
	default:
		d.Mode = "none"
	}

	// Inconsistency plan (persistent).
	rate := LatestRates.MismatchSelf
	if d.PolicyClass == ClassThird && d.MXClass == ClassThird {
		if sameProviderPair(d) {
			rate = LatestRates.MismatchSameProvider
		} else {
			rate = LatestRates.MismatchDiffProviders
		}
	}
	if unit(seed, name, "mismatch") < rate {
		r := LatestRates
		switch pick(unit(seed, name, "mmkind"), r.KindDomain, r.Kind3LD, r.KindTypo, 1) {
		case 0:
			if unit(seed, name, "obsolete") < r.ObsoleteMXFrac {
				d.Mismatch = MismatchDomainObsolete
			} else {
				d.Mismatch = MismatchDomainNever
			}
		case 1:
			d.Mismatch = Mismatch3LD
		case 2:
			d.Mismatch = MismatchTypo
		default:
			d.Mismatch = MismatchTLD
		}
	}

	// Tranco rank: a slice of the population is popular, with density
	// decaying down the rank list so the Figure 3 correlation emerges from
	// the generated domains themselves.
	d.Rank = sampleRank(seed, name)

	// Adoption month is assigned by the caller; the migration month for
	// obsolete-MX plans spreads over the Figure 9 window (2023-03 on).
	if d.Mismatch == MismatchDomainObsolete {
		lo := monthIndex(2023, 3)
		span := Months - lo
		d.MigrationMonth = lo + int(hash64(seed, name, "migmonth")%uint64(span))
	}

	return d
}

// fixMigration reconciles an obsolete-MX plan with the adoption month: a
// policy can only be outdated if the MX migration happened after the
// domain deployed MTA-STS. Domains whose drawn migration month precedes
// adoption are re-drawn into (AdoptedAt, end]; when no room remains the
// plan degrades to a never-matched mismatch.
func (w *World) fixMigration(d *Domain) {
	if d.Mismatch != MismatchDomainObsolete {
		return
	}
	if d.AdoptedAt >= Months-1 {
		d.Mismatch = MismatchDomainNever
		d.MigrationMonth = 0
		return
	}
	if d.MigrationMonth <= d.AdoptedAt {
		span := Months - 1 - d.AdoptedAt
		d.MigrationMonth = d.AdoptedAt + 1 + int(hash64(w.Cfg.Seed, d.Name, "migfix")%uint64(span))
	}
}

// sameProviderPair reports whether the ground-truth arrangement uses one
// provider for both policy and mail (Tutanota is the Table 2 case).
func sameProviderPair(d *Domain) bool {
	return d.PolicyProvider == "Tutanota" && d.MXProvider == "tutanota"
}

// rankBinWeight is the Figure 3 decay curve: expected % of each 10K-rank
// bin publishing MTA-STS, from ~1.2% at the top to ~0.4% at the tail.
func rankBinWeight(bin int) float64 {
	frac := float64(bin) / float64(TrancoBins-1)
	return 0.4 + 0.8*math.Pow(1-frac, 1.7)
}

// sampleRank draws a domain's Tranco rank (0 = unranked). The expected
// number of ranked MTA-STS domains in bin b is 10,000 * rankBinWeight(b)%,
// i.e. ~120 at the top decaying to ~40 at rank 1M.
func sampleRank(seed int64, name string) int {
	// Total expected ranked adopters across all bins, at paper scale.
	total := 0.0
	for b := 0; b < TrancoBins; b++ {
		total += 10000 * rankBinWeight(b) / 100
	}
	pRanked := total / float64(TotalAdoptersEnd)
	if unit(seed, name, "ranked") >= pRanked {
		return 0
	}
	// Pick the bin proportionally to its weight, then a uniform offset.
	u := unit(seed, name, "rankbin") * total
	acc := 0.0
	for b := 0; b < TrancoBins; b++ {
		w := 10000 * rankBinWeight(b) / 100
		acc += w
		if u < acc {
			off := int(hash64(seed, name, "rankoff") % 10000)
			return b*10000 + off + 1
		}
	}
	return TrancoBins*10000 - int(hash64(seed, name, "rankoff")%100) // tail guard
}

// adoptionMonth samples when a regular domain adopted: a share `start/n`
// of the pool is live at month 0 and the rest ramps in super-linearly
// (adoption "accelerates from 2023 onward", §3.2).
func adoptionMonth(seed int64, name string, start, n int) int {
	if n <= 0 {
		return 0
	}
	u := unit(seed, name, "adopt")
	startFrac := float64(start) / float64(n)
	if u < startFrac {
		return 0
	}
	// Map the remaining mass through an accelerating ramp: cumulative
	// fraction at month t is (t/T)^0.6 of the post-start pool — wait, an
	// accelerating curve needs exponent >1 on counts; invert: month =
	// T * q^(1/1.8) places more adoptions late.
	q := (u - startFrac) / (1 - startFrac)
	m := int(math.Ceil(float64(Months-1) * math.Pow(q, 1.0/1.8)))
	return clampMonth(m)
}

func clampMonth(m int) int {
	if m < 0 {
		return 0
	}
	if m > Months-1 {
		return Months - 1
	}
	return m
}

// AdoptedAt reports the domains live (record published) at snapshot t.
func (w *World) AdoptedAt(t int) []*Domain {
	var out []*Domain
	for _, d := range w.Domains {
		if d.AdoptedAt <= t {
			out = append(out, d)
		}
	}
	return out
}

// AdoptedCount counts live domains at t, optionally filtered by TLD
// ("" for all).
func (w *World) AdoptedCount(t int, tld string) int {
	pool := w.Domains
	if tld != "" {
		pool = w.byTLD[tld]
	}
	n := 0
	for _, d := range pool {
		if d.AdoptedAt <= t {
			n++
		}
	}
	return n
}

// TLSRPTAt reports whether domain d publishes a TLSRPT record at t: a
// per-domain threshold against a target fraction rising from ~38% to ~72%
// of MTA-STS adopters over the study (Figure 12 bottom), with the .se
// December 2021 revocation cohort.
func (w *World) TLSRPTAt(d *Domain, t int) bool {
	if d.AdoptedAt > t {
		return false
	}
	if d.TLD == "se" && t >= SeTLSRPTDropMonth &&
		unit(w.Cfg.Seed, d.Name, "sedrop") < float64(w.Cfg.scaled(SeTLSRPTDropCount))/math.Max(1, float64(w.AdoptedCount(SeTLSRPTDropMonth, "se"))) {
		return false
	}
	target := 0.38 + 0.34*float64(t)/float64(Months-1)
	return unit(w.Cfg.Seed, d.Name, "tlsrpt") < target
}

// PolicyProviderRegistry exposes the Table 2 providers for experiment
// code (re-exported to avoid a policysrv dependency downstream).
func PolicyProviderRegistry() []policysrv.Provider { return policysrv.Registry }
