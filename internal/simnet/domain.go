package simnet

import (
	"fmt"

	"github.com/netsecurelab/mtasts/internal/policysrv"
)

// ManagementClass is the simnet ground truth for who runs a component.
type ManagementClass int

// Management classes; Unclassifiable models the ~20% of domains the
// paper's heuristics could not attribute.
const (
	ClassSelf ManagementClass = iota
	ClassThird
	ClassUnclassifiable
)

// String returns a short label.
func (c ManagementClass) String() string {
	switch c {
	case ClassSelf:
		return "self-managed"
	case ClassThird:
		return "third-party"
	}
	return "unclassified"
}

// MismatchPlan is the persistent inconsistency attribute of a domain.
type MismatchPlan int

// Inconsistency plans (§4.4 taxonomy as ground truth).
const (
	MismatchNone MismatchPlan = iota
	// MismatchDomainNever: the policy listed unrelated MX hosts from day
	// one.
	MismatchDomainNever
	// MismatchDomainObsolete: the policy matched until an MX migration at
	// MigrationMonth; it was never updated (the Figure 9 population).
	MismatchDomainObsolete
	// Mismatch3LD: same registrable domain, extra labels (typically the
	// mta-sts subdomain confusion).
	Mismatch3LD
	// MismatchTypo: an edit-distance ≤3 typo.
	MismatchTypo
	// MismatchTLD: right name, wrong TLD.
	MismatchTLD
)

// Domain is one MTA-STS adopter in the synthetic ecosystem. Every field is
// decided at generation time; snapshot-dependent state (which errors are
// active when) is derived deterministically in planAt.
type Domain struct {
	// Name is the registered domain name.
	Name string
	// TLD is one of com/net/org/se.
	TLD string
	// Index is the domain's position in the world population.
	Index int
	// AdoptedAt is the snapshot index the MTA-STS record first appeared.
	AdoptedAt int
	// Rank is the domain's Tranco rank (1-based); 0 means unranked. Ranks
	// are assigned so the per-bin adoption percentages reproduce the
	// Figure 3 popularity correlation.
	Rank int

	// PolicyClass / MXClass attribute the policy host and MX operation.
	PolicyClass ManagementClass
	MXClass     ManagementClass
	// PolicyProvider is the Table 2 provider name when PolicyClass is
	// third-party ("OtherPolicyHost" for the tail).
	PolicyProvider string
	// MXProvider is the mail provider key when MXClass is third-party.
	MXProvider string

	// Mode is the policy mode the domain publishes.
	Mode string

	// Mismatch is the persistent inconsistency plan.
	Mismatch MismatchPlan
	// MigrationMonth is the MX migration snapshot for
	// MismatchDomainObsolete.
	MigrationMonth int

	// Cohort flags for scripted incidents.
	OrgSpike     bool // part of the 2024-01 .org adoption cohort
	Lucidgrow    bool // lucidgrow.com customer (2024-01-23 incident)
	Porkbun      bool // Porkbun registration wave (2024-08+)
	SelfSignWave bool // hit by the 2024-06-08 third-party self-signed wave

}

// mxProviders is the third-party mail-hosting mix. Weights approximate the
// provider concentration in §6.1 (Google and Outlook dominate).
var mxProviders = []struct {
	Key    string
	Host   func(domain string) []string
	Weight float64
}{
	{"google", func(d string) []string {
		return []string{"aspmx.l.google-mail.test", "alt1.aspmx.l.google-mail.test"}
	}, 0.42},
	{"outlook", func(d string) []string {
		// Per-customer host names pointing at shared infrastructure.
		return []string{dashName(d) + ".mail.protection.outlook-mail.test"}
	}, 0.28},
	{"yahoo", func(d string) []string { return []string{"mx1.yahoo-dns.test"} }, 0.08},
	{"mailcom", func(d string) []string { return []string{"mx00.mail-com.test"} }, 0.07},
	{"mxrouting", func(d string) []string { return []string{"mx1.mxrouting-net.test"} }, 0.06},
	{"zoho", func(d string) []string { return []string{"mx.zoho-mail.test"} }, 0.09},
}

func dashName(domain string) string {
	out := make([]byte, len(domain))
	for i := 0; i < len(domain); i++ {
		if domain[i] == '.' {
			out[i] = '-'
		} else {
			out[i] = domain[i]
		}
	}
	return string(out)
}

// MXHostsAt returns the domain's MX host names at snapshot t, accounting
// for the migration of MismatchDomainObsolete domains.
func (d *Domain) MXHostsAt(t int) []string {
	if d.Lucidgrow {
		return []string{"mx-" + dashName(d.Name) + ".lucidgrow.com"}
	}
	if d.Mismatch == MismatchDomainObsolete && t >= d.MigrationMonth {
		// Post-migration: a new provider's hosts.
		return []string{"mx1.migrated-" + d.MXProviderOrSelf() + ".test"}
	}
	return d.baseMXHosts()
}

func (d *Domain) baseMXHosts() []string {
	if d.MXClass == ClassThird {
		if d.PolicyProvider == "Tutanota" && d.MXProvider == "tutanota" {
			return []string{"mail.tutanota.de"}
		}
		for _, p := range mxProviders {
			if p.Key == d.MXProvider {
				return p.Host(d.Name)
			}
		}
	}
	return []string{"mail." + d.Name}
}

// MXProviderOrSelf returns the MX provider key or "self".
func (d *Domain) MXProviderOrSelf() string {
	if d.MXClass == ClassThird && d.MXProvider != "" {
		return d.MXProvider
	}
	return "self"
}

// PolicyHostCNAME returns the CNAME target of the domain's policy host
// ("" when not delegated).
func (d *Domain) PolicyHostCNAME() string {
	if d.PolicyClass != ClassThird {
		return ""
	}
	if p, ok := policysrv.LookupProvider(d.PolicyProvider); ok {
		return p.CanonicalName(d.Name)
	}
	return "policy." + d.PolicyProvider + ".test"
}

// PolicyPatternsAt returns the mx patterns the domain's policy lists at
// snapshot t, realizing the domain's mismatch plan.
func (d *Domain) PolicyPatternsAt(t int) []string {
	mxs := d.MXHostsAt(t)
	switch d.Mismatch {
	case MismatchNone:
		return mxs
	case MismatchDomainNever:
		return []string{fmt.Sprintf("mx.oldhost%d.former-provider.test", d.Index%97)}
	case MismatchDomainObsolete:
		// The policy forever lists the pre-migration hosts.
		return d.baseMXHosts()
	case Mismatch3LD:
		// The mta-sts subdomain confusion: keep the MX's registrable
		// domain, prepend the mta-sts label (81.8% of 3LD+ cases).
		return []string{"mta-sts." + stripFirstLabel(mxs[0])}
	case MismatchTypo:
		return []string{typoOf(mxs[0])}
	case MismatchTLD:
		return []string{swapTLD(mxs[0])}
	}
	return mxs
}

// MismatchActiveAt reports whether the domain's plan manifests as a
// mismatch at snapshot t (obsolete-MX plans only mismatch after the
// migration).
func (d *Domain) MismatchActiveAt(t int) bool {
	switch d.Mismatch {
	case MismatchNone:
		return false
	case MismatchDomainObsolete:
		return t >= d.MigrationMonth
	default:
		return true
	}
}

func stripFirstLabel(host string) string {
	for i := 0; i < len(host); i++ {
		if host[i] == '.' {
			return host[i+1:]
		}
	}
	return host
}

// typoOf introduces a two-character transposition in the first label.
func typoOf(host string) string {
	b := []byte(host)
	if len(b) >= 3 && b[0] != b[1] {
		b[0], b[1] = b[1], b[0]
	} else if len(b) >= 3 {
		b[1], b[2] = b[2], b[1]
	}
	return string(b)
}

// swapTLD exchanges the final label between com and net (org→com).
func swapTLD(host string) string {
	dot := -1
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return host
	}
	switch host[dot+1:] {
	case "com":
		return host[:dot+1] + "net"
	case "net":
		return host[:dot+1] + "com"
	default:
		return host[:dot+1] + "com"
	}
}
