// Package simnet is the synthetic Internet of the reproduction: a
// generative, seeded model of the MTA-STS ecosystem calibrated to the
// counts the paper reports, standing in for the TLD zone files and the
// live Internet the authors scanned (see the substitution table in
// DESIGN.md). It produces, for every monthly snapshot of the measurement
// period, the exact observables a scan would collect — TXT record strings,
// policy bodies, certificate descriptors, MX sets — which the scanner
// package evaluates through the same parsers and validators used on live
// sockets.
package simnet

import "time"

// Timeline of the study.
var (
	// StudyStart is the first DNS-scan snapshot (2021-09).
	StudyStart = time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the last snapshot (2024-09-29 in the paper).
	StudyEnd = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	// ComponentScanStart is the first component scan (2023-11).
	ComponentScanStart = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)
)

// Months is the number of monthly snapshots (2021-09 .. 2024-09 inclusive).
const Months = 37

// ComponentScanFirstIndex is the snapshot index of the first component
// scan (2023-11 is 26 months after 2021-09).
const ComponentScanFirstIndex = 26

// SnapshotTime returns the date of snapshot index t.
func SnapshotTime(t int) time.Time { return StudyStart.AddDate(0, t, 0) }

// TLDParams calibrates one TLD's population, matching Table 1 and the
// Figure 2 endpoints.
type TLDParams struct {
	TLD string
	// DomainsWithMXStart/End are the denominator sizes (paper scale).
	DomainsWithMXStart, DomainsWithMXEnd int
	// AdoptersStart/End are MTA-STS domain counts at the first and last
	// snapshot (paper scale).
	AdoptersStart, AdoptersEnd int
	// TLSRPTStart/End are TLSRPT domain counts (Appendix B).
	TLSRPTStart, TLSRPTEnd int
}

// TLDs holds the calibration for the four measured TLDs. Adopter start
// counts are the paper's 2021-10 figures; MX denominators interpolate
// modest zone growth.
var TLDs = []TLDParams{
	{TLD: "com", DomainsWithMXStart: 70_000_000, DomainsWithMXEnd: 73_939_004,
		AdoptersStart: 12_148, AdoptersEnd: 53_800, TLSRPTStart: 11_531, TLSRPTEnd: 52_641},
	{TLD: "net", DomainsWithMXStart: 6_100_000, DomainsWithMXEnd: 6_248_969,
		AdoptersStart: 1_610, AdoptersEnd: 6_183, TLSRPTStart: 1_480, TLSRPTEnd: 5_920},
	{TLD: "org", DomainsWithMXStart: 5_600_000, DomainsWithMXEnd: 5_781_423,
		AdoptersStart: 1_916, AdoptersEnd: 7_355, TLSRPTStart: 1_527, TLSRPTEnd: 7_192},
	{TLD: "se", DomainsWithMXStart: 800_000, DomainsWithMXEnd: 822_449,
		AdoptersStart: 190, AdoptersEnd: 692, TLSRPTStart: 170, TLSRPTEnd: 650},
}

// TotalAdoptersEnd is the paper's final-snapshot MTA-STS population
// (68,030); the per-TLD ends sum to it.
const TotalAdoptersEnd = 68_030

// Management-mix calibration (§4.3.3, §4.3.4, §4.5).
const (
	// PolicyClassifiedFrac: 79.3% of MTA-STS domains could be classified
	// into third-party vs self-managed policy hosting.
	PolicyClassifiedFrac = 0.793
	// PolicyThirdFrac: of classified, 28,591/53,935 use third-party
	// policy hosting.
	PolicyThirdFrac = 0.530
	// MXClassifiedFrac: 94.4% classified for MX hosting.
	MXClassifiedFrac = 0.944
	// MXThirdFrac: 40,683/64,195 use third-party MX.
	MXThirdFrac = 0.634
)

// Error-rate calibration for the latest snapshot (§4.3, §4.4). Rates are
// per management class. Historic snapshots scale these (see ratesAt).
type ErrorRates struct {
	// Policy-retrieval error rates by class.
	PolicySelf, PolicyThird, PolicyUnclassified float64
	// Policy error-stage mix for self-managed (fractions of failing
	// domains): DNS, TCP, TLS, HTTP, Syntax must sum to 1.
	SelfStageDNS, SelfStageTCP, SelfStageTLS, SelfStageHTTP, SelfStageSyntax float64
	// TLS sub-mix for self-managed failures.
	SelfTLSNameMismatch, SelfTLSSelfSigned, SelfTLSExpired float64
	// Stage mix for third-party failures.
	ThirdStageTCP, ThirdStageTLS, ThirdStageHTTP, ThirdStageSyntax float64
	// TLS sub-mix for third-party failures.
	ThirdTLSMissing, ThirdTLSExpired, ThirdTLSSelfSigned float64

	// MX certificate error rates by class.
	MXSelf, MXThird float64
	// MX error mix (CN mismatch dominates for self-managed, §4.3.4).
	MXNameMismatch, MXSelfSigned, MXExpired float64
	// AllInvalidFrac: of domains with MX errors, the share where every MX
	// is invalid (vs partially invalid).
	AllInvalidFrac float64

	// Record error rate (tiny, §4.3.2) and its mix.
	Record                                                  float64
	RecordNoID, RecordBadID, RecordBadVersion, RecordBadExt float64

	// Inconsistency rates (§4.4/§4.5): probability of a persistent
	// mismatch, by provider arrangement.
	MismatchDiffProviders, MismatchSameProvider, MismatchSelf float64
	// Mismatch kind mix (Domain dominates; 3LD+, typos, TLD).
	KindDomain, Kind3LD, KindTypo, KindTLD float64
	// ObsoleteMXFrac: share of Domain-kind mismatches that stem from an MX
	// migration the policy never followed (Figure 9 reaches 63%).
	ObsoleteMXFrac float64
}

// LatestRates is the calibration against the paper's final snapshot.
var LatestRates = ErrorRates{
	PolicySelf:         0.378, // 9,588 / 25,344
	PolicyThird:        0.049, // 1,393 / 28,591 (incl. Porkbun wave)
	PolicyUnclassified: 0.440, // residual mass to reach 17,184 total

	SelfStageDNS: 0.004, SelfStageTCP: 0.020, SelfStageTLS: 0.925,
	SelfStageHTTP: 0.039, SelfStageSyntax: 0.012,
	SelfTLSNameMismatch: 0.945, SelfTLSSelfSigned: 0.035, SelfTLSExpired: 0.020,

	ThirdStageTCP: 0.024, ThirdStageTLS: 0.780,
	ThirdStageHTTP: 0.140, ThirdStageSyntax: 0.056,
	ThirdTLSMissing: 0.436, ThirdTLSExpired: 0.300, ThirdTLSSelfSigned: 0.264,

	MXSelf:         0.044, // 1,046 / 23,512
	MXThird:        0.010, // 397 / 40,683
	MXNameMismatch: 0.70, MXSelfSigned: 0.20, MXExpired: 0.10,
	AllInvalidFrac: 0.92, // 1,326 all-invalid vs 1,443 any-invalid

	Record:     0.0049, // 331 / 68,030
	RecordNoID: 0.196, RecordBadID: 0.613, RecordBadVersion: 0.157, RecordBadExt: 0.034,

	MismatchDiffProviders: 0.050,   // calibrated so ~640 diff-provider inconsistencies survive at the final snapshot (640/18,922 raw, §4.5)
	MismatchSameProvider:  0.00013, // 1 / 7,492
	MismatchSelf:          0.030,   // self-managed arrangements drift too
	KindDomain:            0.55, Kind3LD: 0.39, KindTypo: 0.034, KindTLD: 0.026,
	ObsoleteMXFrac: 0.63,
}

// Scripted incidents (§3.2, §4.3.3, §4.4, Appendix B).
var (
	// OrgAdoptionSpike: 461 .org domains of one organization adopt on
	// 2024-01-02 (Figure 2).
	OrgAdoptionSpikeMonth = monthIndex(2024, 1)
	OrgAdoptionSpikeCount = 461

	// LucidgrowMonth: on 2024-01-23 all 246 lucidgrow.com customer
	// domains mismatch in enforce mode for one snapshot (Figure 8/10).
	LucidgrowMonth = monthIndex(2024, 1)
	LucidgrowCount = 246

	// SelfSignedWaveMonth: a leading third-party provider serves
	// self-signed certificates for 1,385 domains on 2024-06-08 (Figure 5).
	SelfSignedWaveMonth = monthIndex(2024, 6)
	SelfSignedWaveCount = 1385

	// PorkbunStartMonth: from August 2024, newly registered Porkbun
	// domains carry invalid policy-host certificates; 7,237 affected in
	// the latest snapshot (Figure 4/5).
	PorkbunStartMonth = monthIndex(2024, 8)
	PorkbunCount      = 7237

	// SeTLSRPTDropMonth: 82 .se domains revoke TLSRPT in Dec 2021
	// (Figure 12 top).
	SeTLSRPTDropMonth = monthIndex(2021, 12)
	SeTLSRPTDropCount = 82

	// NetTLSRPTWaveMonth: Jun–Aug 2024, 1,411 .net domains add TLSRPT;
	// only 198 have MTA-STS (Figure 12 bottom dip).
	NetTLSRPTWaveMonth      = monthIndex(2024, 6)
	NetTLSRPTWaveCount      = 1411
	NetTLSRPTWaveWithMTASTS = 198
)

// monthIndex converts a calendar month to a snapshot index.
func monthIndex(year, month int) int {
	return (year-2021)*12 + (month - 9)
}

// Disclosure-campaign calibration (§4.7).
const (
	DisclosureNotified   = 20144
	DisclosureBounceFrac = 0.25 // >5,000 of 20,144 bounced
	DisclosureFixedFrac  = 0.10 // 2,064 resolved within the window
)
