package simnet

import (
	"math"
	"testing"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

func fullWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 1, Scale: 1.0})
}

func TestPopulationMatchesTable1(t *testing.T) {
	w := fullWorld(t)
	if got := len(w.Domains); got != TotalAdoptersEnd {
		t.Errorf("total domains = %d, want %d", got, TotalAdoptersEnd)
	}
	last := Months - 1
	for _, tp := range TLDs {
		got := w.AdoptedCount(last, tp.TLD)
		if got != tp.AdoptersEnd {
			t.Errorf("%s adopters = %d, want %d", tp.TLD, got, tp.AdoptersEnd)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 0.02})
	b := Generate(Config{Seed: 7, Scale: 0.02})
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for i := range a.Domains {
		da, db := a.Domains[i], b.Domains[i]
		if *da != *db {
			t.Fatalf("domain %d differs: %+v vs %+v", i, da, db)
		}
	}
	ra := scanner.Summarize(a.ScanSnapshot(Months - 1))
	rb := scanner.Summarize(b.ScanSnapshot(Months - 1))
	if ra.Misconfigured != rb.Misconfigured {
		t.Errorf("scan results differ: %d vs %d", ra.Misconfigured, rb.Misconfigured)
	}
}

func TestAdoptionGrowth(t *testing.T) {
	w := Generate(Config{Seed: 3, Scale: 0.1})
	prev := 0
	for tm := 0; tm < Months; tm++ {
		n := w.AdoptedCount(tm, "")
		if n < prev {
			t.Fatalf("adoption shrank at month %d: %d < %d", tm, n, prev)
		}
		prev = n
	}
	// Start ≈ scaled sum of AdoptersStart (15,864 * 0.1).
	start := w.AdoptedCount(0, "")
	if start < 1000 || start > 2200 {
		t.Errorf("start adopters = %d", start)
	}
	// Acceleration: more adoptions in the second half than the first.
	mid := w.AdoptedCount(Months/2, "")
	if mid-start >= prev-mid {
		t.Errorf("adoption not accelerating: first half %d, second half %d", mid-start, prev-mid)
	}
}

func TestOrgSpike(t *testing.T) {
	w := fullWorld(t)
	before := w.AdoptedCount(OrgAdoptionSpikeMonth-1, "org")
	at := w.AdoptedCount(OrgAdoptionSpikeMonth, "org")
	jump := at - before
	if jump < OrgAdoptionSpikeCount {
		t.Errorf(".org jump = %d, want >= %d", jump, OrgAdoptionSpikeCount)
	}
}

// TestLatestSnapshotCalibration verifies the paper's headline numbers
// within tolerance: 29.6% misconfigured, policy errors the dominant class
// (70–85% of misconfigured domains), ~640 delivery failures.
func TestLatestSnapshotCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world")
	}
	w := fullWorld(t)
	results := w.ScanSnapshot(Months - 1)
	s := scanner.Summarize(results)

	if s.WithRecord < 67000 || s.WithRecord > 68100 {
		t.Errorf("WithRecord = %d", s.WithRecord)
	}
	misRate := float64(s.Misconfigured) / float64(s.WithRecord)
	if misRate < 0.25 || misRate > 0.34 {
		t.Errorf("misconfigured rate = %.3f, want ~0.296", misRate)
	}
	polShare := float64(s.ByCategory[scanner.CategoryPolicy]) / float64(s.Misconfigured)
	if polShare < 0.65 || polShare > 0.92 {
		t.Errorf("policy share of misconfigured = %.2f, want 0.70–0.85", polShare)
	}
	if s.DeliveryFailures < 350 || s.DeliveryFailures > 950 {
		t.Errorf("delivery failures = %d, want ~640", s.DeliveryFailures)
	}
	// Record errors ≈ 331.
	if rec := s.ByCategory[scanner.CategoryDNSRecord]; rec < 200 || rec > 500 {
		t.Errorf("record errors = %d, want ~331", rec)
	}
	// TLS dominates policy-stage errors.
	if s.PolicyStageCounts["TLS"] < s.PolicyStageCounts["HTTP"] ||
		s.PolicyStageCounts["TLS"] < s.PolicyStageCounts["TCP"] {
		t.Errorf("TLS not dominant: %+v", s.PolicyStageCounts)
	}
}

// TestManagementSplitShape: self-managed policy hosting fails far more
// often than third-party (the paper's central comparison).
func TestManagementSplitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world")
	}
	w := fullWorld(t)
	tm := Months - 1
	now := SnapshotTime(tm)
	counts := map[ManagementClass][2]int{} // class -> {errors, total}
	for _, d := range w.Domains {
		a, ok := w.ArtifactsAt(d, tm)
		if !ok {
			continue
		}
		r := scanner.ScanArtifacts(a, now)
		c := counts[d.PolicyClass]
		c[1]++
		if r.RecordValid && !r.PolicyOK {
			c[0]++
		}
		counts[d.PolicyClass] = c
	}
	selfRate := float64(counts[ClassSelf][0]) / float64(counts[ClassSelf][1])
	thirdRate := float64(counts[ClassThird][0]) / float64(counts[ClassThird][1])
	// Paper: 37.8% vs 4.9%.
	if selfRate < 0.30 || selfRate > 0.45 {
		t.Errorf("self-managed policy error rate = %.3f, want ~0.378", selfRate)
	}
	if thirdRate < 0.03 || thirdRate > 0.09 {
		t.Errorf("third-party policy error rate = %.3f, want ~0.049", thirdRate)
	}
	if selfRate < 4*thirdRate {
		t.Errorf("self (%.3f) should dwarf third-party (%.3f)", selfRate, thirdRate)
	}
}

func TestPorkbunWaveRaisesErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world")
	}
	w := fullWorld(t)
	before := scanner.Summarize(w.ScanSnapshot(PorkbunStartMonth - 1))
	after := scanner.Summarize(w.ScanSnapshot(Months - 1))
	rateBefore := float64(before.Misconfigured) / float64(before.WithRecord)
	rateAfter := float64(after.Misconfigured) / float64(after.WithRecord)
	if rateAfter < rateBefore+0.05 {
		t.Errorf("Porkbun wave: rate %.3f -> %.3f, expected +>=0.05", rateBefore, rateAfter)
	}
}

func TestLucidgrowIncident(t *testing.T) {
	w := Generate(Config{Seed: 5, Scale: 0.2})
	var lg *Domain
	for _, d := range w.Domains {
		if d.Lucidgrow {
			lg = d
			break
		}
	}
	if lg == nil {
		t.Fatal("no lucidgrow domains generated")
	}
	now := SnapshotTime(LucidgrowMonth)
	a, ok := w.ArtifactsAt(lg, LucidgrowMonth)
	if !ok {
		t.Fatal("lucidgrow domain not adopted by incident month")
	}
	r := scanner.ScanArtifacts(a, now)
	if r.PolicyOK && r.Mismatch.Kind == inconsistency.KindNone {
		t.Errorf("lucidgrow domain should mismatch at incident month: %+v", r.Mismatch)
	}
	if r.PolicyOK && !r.EnforceMismatchFailure() {
		t.Error("lucidgrow incident should be an enforce-mode failure")
	}
	// One month later the incident is resolved.
	a2, _ := w.ArtifactsAt(lg, LucidgrowMonth+1)
	r2 := scanner.ScanArtifacts(a2, SnapshotTime(LucidgrowMonth+1))
	if r2.PolicyOK && r2.Mismatch.Kind != inconsistency.KindNone {
		t.Errorf("lucidgrow mismatch should resolve: %+v", r2.Mismatch)
	}
}

func TestSelfSignedWaveTransient(t *testing.T) {
	w := Generate(Config{Seed: 2, Scale: 0.2})
	var wave *Domain
	for _, d := range w.Domains {
		if d.SelfSignWave {
			wave = d
			break
		}
	}
	if wave == nil {
		t.Fatal("no wave domains")
	}
	a, _ := w.ArtifactsAt(wave, SelfSignedWaveMonth)
	r := scanner.ScanArtifacts(a, SnapshotTime(SelfSignedWaveMonth))
	if r.PolicyStage != mtasts.StageTLS {
		t.Errorf("wave month stage = %v", r.PolicyStage)
	}
}

func TestObsoleteMXHistoricalMatch(t *testing.T) {
	w := Generate(Config{Seed: 4, Scale: 0.3})
	var d *Domain
	for _, dd := range w.Domains {
		if dd.Mismatch == MismatchDomainObsolete && dd.AdoptedAt < dd.MigrationMonth {
			d = dd
			break
		}
	}
	if d == nil {
		t.Skip("no obsolete-MX domain with pre-migration history in this world")
	}
	// Before migration: policy matches.
	pre := d.MXHostsAt(d.MigrationMonth - 1)
	patterns := d.PolicyPatternsAt(d.MigrationMonth - 1)
	p := mtasts.Policy{MXPatterns: patterns}
	if !p.Matches(pre[0]) {
		t.Errorf("pre-migration should match: %v vs %v", patterns, pre)
	}
	// After: mismatch, but historical MX explains it.
	post := d.MXHostsAt(d.MigrationMonth)
	p2 := mtasts.Policy{MXPatterns: d.PolicyPatternsAt(d.MigrationMonth)}
	if p2.Matches(post[0]) {
		t.Errorf("post-migration should mismatch: %v vs %v", p2.MXPatterns, post)
	}
	if idx := inconsistency.MatchesHistorical(p2, [][]string{post, pre}); idx != 1 {
		t.Errorf("historical join = %d, want 1", idx)
	}
}

func TestDeploymentSeriesShape(t *testing.T) {
	w := Generate(Config{Seed: 1, Scale: 0.1})
	for _, tld := range []string{"com", "net", "org", "se"} {
		s := w.DeploymentPercent(tld)
		if len(s) != Months {
			t.Fatalf("series length = %d", len(s))
		}
		if s[Months-1] <= s[0] {
			t.Errorf("%s: deployment not growing (%.4f -> %.4f)", tld, s[0], s[Months-1])
		}
		if s[Months-1] > 0.2 || s[Months-1] < 0.01 {
			t.Errorf("%s: final deployment %% = %.4f out of range", tld, s[Months-1])
		}
	}
	// Endpoint check for .com at paper scale: 53,800 / 73.9M = 0.0728%.
	wf := fullWorld(t)
	com := wf.DeploymentPercent("com")
	if math.Abs(com[Months-1]-0.0728) > 0.01 {
		t.Errorf(".com final = %.4f%%, want ~0.0728%%", com[Months-1])
	}
}

func TestTrancoSeriesShape(t *testing.T) {
	w := Generate(Config{Seed: 1, Scale: 0.3})
	s := w.TrancoAdoptionPercent()
	if len(s) != TrancoBins {
		t.Fatalf("bins = %d", len(s))
	}
	avg := func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += s[i]
		}
		return sum / float64(hi-lo)
	}
	top, bottom := avg(0, 10), avg(90, 100)
	if top < 0.9 || top > 1.5 {
		t.Errorf("top bins = %.2f%%, want ~1.1%%", top)
	}
	if bottom < 0.25 || bottom > 0.60 {
		t.Errorf("bottom bins = %.2f%%, want ~0.4%%", bottom)
	}
	if top <= bottom {
		t.Error("popularity correlation inverted")
	}
}

func TestTLSRPTSeriesShape(t *testing.T) {
	w := Generate(Config{Seed: 1, Scale: 0.1})
	for _, tld := range []string{"com", "org"} {
		bottom := w.TLSRPTPercentOfMTASTS(tld)
		if bottom[Months-1] <= bottom[2] {
			t.Errorf("%s: TLSRPT share of MTA-STS domains not rising (%.1f -> %.1f)",
				tld, bottom[2], bottom[Months-1])
		}
		if bottom[Months-1] < 55 || bottom[Months-1] > 85 {
			t.Errorf("%s: final TLSRPT share = %.1f%%, want ~70%%", tld, bottom[Months-1])
		}
		top := w.TLSRPTPercentOfMX(tld)
		if top[Months-1] <= top[0] {
			t.Errorf("%s: TLSRPT absolute adoption not rising", tld)
		}
	}
}

func TestDisclosureModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world")
	}
	w := fullWorld(t)
	results := w.ScanSnapshot(Months - 1)
	out := w.Disclosure(results)
	if out.Notified < 15000 || out.Notified > 25000 {
		t.Errorf("notified = %d, want ~20,144", out.Notified)
	}
	bounceRate := float64(out.Bounced) / float64(out.Notified)
	if bounceRate < 0.20 || bounceRate > 0.30 {
		t.Errorf("bounce rate = %.2f, want ~0.25", bounceRate)
	}
	fixRate := float64(out.Resolved) / float64(out.Notified)
	if fixRate < 0.07 || fixRate > 0.13 {
		t.Errorf("fix rate = %.2f, want ~0.10", fixRate)
	}
}

func TestSameProviderInconsistencyNearZero(t *testing.T) {
	w := fullWorld(t)
	same, sameMis := 0, 0
	for _, d := range w.Domains {
		if sameProviderPair(d) {
			same++
			if d.Mismatch != MismatchNone {
				sameMis++
			}
		}
	}
	if same < 6000 {
		t.Errorf("same-provider population = %d, want ~7,400", same)
	}
	if sameMis < 1 || sameMis > 5 {
		t.Errorf("same-provider mismatches = %d, want ~1", sameMis)
	}
	if w.DomainByName("laura-norman.com") == nil {
		t.Error("laura-norman.com missing from the world")
	}
}

func TestArtifactsAlwaysValid(t *testing.T) {
	w := Generate(Config{Seed: 9, Scale: 0.02})
	for _, tm := range []int{0, ComponentScanFirstIndex, Months - 1} {
		for _, d := range w.Domains {
			a, ok := w.ArtifactsAt(d, tm)
			if !ok {
				continue
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid artifacts for %s at %d: %v", d.Name, tm, err)
			}
		}
	}
}
