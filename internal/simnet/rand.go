package simnet

import "hash/fnv"

// hash64 mixes arbitrary strings and integers into a 64-bit value with a
// splitmix64 finalizer. All stochastic decisions in the model derive from
// it, so a World is fully determined by its seed.
func hash64(seed int64, parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return splitmix64(h.Sum64())
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(seed int64, parts ...string) float64 {
	return float64(hash64(seed, parts...)>>11) / float64(1<<53)
}

// pick selects an index from cumulative weights; weights need not sum to 1
// (the remainder goes to the last index).
func pick(u float64, weights ...float64) int {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// itoa is a tiny allocation-free integer formatter for hash keys.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
