package smtpclient

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/pki"
)

// Sender delivers mail over SMTP with STARTTLS. It is the delivery half of
// the sender-MTA example; MTA-STS policy evaluation happens in
// mtasts.Validator before Deliver is called.
type Sender struct {
	// HeloName is announced in EHLO.
	HeloName string
	// Roots is the PKIX trust store. Required when RequireTLS is set.
	Roots *x509.CertPool
	// RequireTLS refuses to deliver without a verified TLS session (the
	// behavior an MTA-STS enforce policy demands). When false, delivery is
	// opportunistic: TLS when offered, plaintext otherwise.
	RequireTLS bool
	// DisableTLS never negotiates STARTTLS, even when advertised — the
	// legacy plaintext-only sender of the paper's §6 population.
	// Mutually exclusive with RequireTLS (DisableTLS wins, modeling a
	// sender with no TLS stack at all).
	DisableTLS bool
	// VerifyPeer, when set, replaces PKIX verification of the server
	// chain (DANE delivery verifies against TLSA records instead of
	// Roots). It runs after the handshake; a nil return marks the
	// certificate verified.
	VerifyPeer func(chain []*x509.Certificate, host string) error
	// Timeout bounds the whole delivery. Zero means 30s.
	Timeout time.Duration
	// Port overrides port 25.
	Port int
	// AddrOverride, when set, is dialed instead of the MX host.
	AddrOverride string
}

// Delivery errors.
// Delivery verdicts are deliberately outside the scan error taxonomy:
// they describe what happened to one message on the sender path, not a
// misconfiguration of the receiving domain (which the scan codes in
// docs/ERRORS.md cover).
var (
	//lint:ignore codes delivery-path outcome, not a scan verdict
	ErrTLSRequired = errors.New("smtpclient: TLS required but unavailable or invalid")
	//lint:ignore codes delivery-path outcome, not a scan verdict
	ErrRejected = errors.New("smtpclient: server rejected the transaction")
	//lint:ignore codes delivery-path outcome, not a scan verdict
	errShortSession = errors.New("smtpclient: session ended prematurely")
)

// DeliveryResult records how a message was delivered.
type DeliveryResult struct {
	Host string
	// TLS is true when the message was sent over TLS.
	TLS bool
	// CertVerified is true when the server certificate validated for Host.
	CertVerified bool
}

// errHandshakeFailed marks a dead session after a failed STARTTLS
// handshake; opportunistic delivery retries in plaintext.
//
//lint:ignore codes internal control-flow marker for the plaintext retry, never escapes
var errHandshakeFailed = errors.New("smtpclient: STARTTLS handshake failed")

// Deliver sends one message to mxHost. Opportunistic senders (RequireTLS
// unset) that hit a failed STARTTLS handshake reconnect once and deliver
// in plaintext, as production MTAs do.
func (s *Sender) Deliver(ctx context.Context, mxHost, from string, to []string, data []byte) (DeliveryResult, error) {
	res, err := s.attempt(ctx, mxHost, from, to, data, !s.DisableTLS)
	if err != nil && errors.Is(err, errHandshakeFailed) && !s.RequireTLS {
		return s.attempt(ctx, mxHost, from, to, data, false)
	}
	return res, err
}

// attempt runs one SMTP session; tryTLS controls whether STARTTLS is used
// when advertised.
func (s *Sender) attempt(ctx context.Context, mxHost, from string, to []string, data []byte, tryTLS bool) (DeliveryResult, error) {
	res := DeliveryResult{Host: mxHost}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	addr := s.AddrOverride
	if addr == "" {
		port := 25
		if s.Port != 0 {
			port = s.Port
		}
		addr = net.JoinHostPort(mxHost, strconv.Itoa(port))
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return res, fmt.Errorf("smtpclient: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}

	text := newTextConn(conn)
	if code, _, err := text.readReply(); err != nil || code != 220 {
		return res, fmt.Errorf("%w: greeting code %d err %v", errShortSession, code, err)
	}
	helo := s.HeloName
	if helo == "" {
		helo = "sender.mtasts-repro.test"
	}
	code, lines, err := text.cmd("EHLO " + helo)
	if err != nil || code != 250 {
		return res, fmt.Errorf("%w: EHLO code %d err %v", errShortSession, code, err)
	}
	starttls := false
	for _, l := range lines {
		if len(l) >= 8 && l[:8] == "STARTTLS" {
			starttls = true
		}
	}

	var peerChain []*x509.Certificate
	var verifyErr error
	if starttls && tryTLS {
		if code, _, err := text.cmd("STARTTLS"); err == nil && code == 220 {
			tlsConn := tls.Client(conn, &tls.Config{
				ServerName: mxHost,
				RootCAs:    s.Roots,
				// Verification outcome is checked explicitly below so
				// opportunistic senders can proceed on failure.
				InsecureSkipVerify: true,
				MinVersion:         tls.VersionTLS12,
			})
			if err := tlsConn.HandshakeContext(ctx); err == nil {
				res.TLS = true
				peerChain = tlsConn.ConnectionState().PeerCertificates
				if len(peerChain) > 0 {
					if s.VerifyPeer != nil {
						verifyErr = s.VerifyPeer(peerChain, mxHost)
						res.CertVerified = verifyErr == nil
					} else {
						res.CertVerified = verifyChain(peerChain, mxHost, s.Roots)
					}
				}
				text = newTextConn(tlsConn)
				// Re-EHLO after TLS per RFC 3207.
				if code, _, err := text.cmd("EHLO " + helo); err != nil || code != 250 {
					return res, fmt.Errorf("%w: post-TLS EHLO code %d err %v", errShortSession, code, err)
				}
			} else {
				if s.RequireTLS {
					return res, fmt.Errorf("%w: %w", ErrTLSRequired,
						errtax.Wrap(errtax.LayerProbe, errtax.CodeTLSHandshake, false, err))
				}
				// The session is unusable after a failed handshake; signal
				// the caller to retry in plaintext.
				return res, fmt.Errorf("%w: %v", errHandshakeFailed, err)
			}
		} else if s.RequireTLS {
			return res, fmt.Errorf("%w: %w", ErrTLSRequired,
				errtax.New(errtax.LayerProbe, errtax.CodeNoSTARTTLS, false,
					fmt.Sprintf("STARTTLS refused (code %d)", code)))
		}
	}
	// The required-TLS gate carries the taxonomy position of what went
	// wrong: a session that never reached TLS is a stripped/missing
	// STARTTLS, an unverified one a certificate problem — the two
	// downgrade shapes the enforcement matrix distinguishes.
	if s.RequireTLS && !res.TLS {
		return res, fmt.Errorf("%w: %w", ErrTLSRequired,
			errtax.New(errtax.LayerProbe, errtax.CodeNoSTARTTLS, false, "server did not offer STARTTLS"))
	}
	if s.RequireTLS && !res.CertVerified {
		if verifyErr != nil {
			// A custom verifier's error is already typed (DANE sentinels
			// carry their own taxonomy position); keep it in the chain.
			return res, fmt.Errorf("%w: %w", ErrTLSRequired, verifyErr)
		}
		problem := pki.ProblemNoCertificate
		if len(peerChain) > 0 {
			problem = pki.Validate(peerChain, mxHost, s.Roots, time.Now())
		}
		return res, fmt.Errorf("%w: %w", ErrTLSRequired,
			errtax.New(errtax.LayerProbe, certCode(problem), false,
				fmt.Sprintf("certificate not verified: %s", problem)))
	}

	steps := []struct {
		cmd  string
		want int
	}{
		{"MAIL FROM:<" + from + ">", 250},
	}
	for _, rcpt := range to {
		steps = append(steps, struct {
			cmd  string
			want int
		}{"RCPT TO:<" + rcpt + ">", 250})
	}
	for _, st := range steps {
		code, _, err := text.cmd(st.cmd)
		if err != nil {
			return res, err
		}
		if code != st.want {
			return res, fmt.Errorf("%w: %q answered %d", ErrRejected, st.cmd, code)
		}
	}
	code, _, err = text.cmd("DATA")
	if err != nil || code != 354 {
		return res, fmt.Errorf("%w: DATA answered %d (err %v)", ErrRejected, code, err)
	}
	// Dot-stuff and terminate.
	payload := dotStuff(data)
	if _, err := text.w.Write(payload); err != nil {
		return res, err
	}
	if code, _, err := text.cmd("."); err != nil || code != 250 {
		return res, fmt.Errorf("%w: final dot answered %d (err %v)", ErrRejected, code, err)
	}
	//lint:ignore errdrop QUIT is best-effort courtesy; the delivery already succeeded
	text.cmd("QUIT")
	return res, nil
}

// certCode maps a PKIX validation outcome onto the taxonomy (the same
// mapping the scanner applies to probed MX certificates).
func certCode(p pki.Problem) errtax.Code {
	switch p {
	case pki.ProblemExpired:
		return errtax.CodeExpired
	case pki.ProblemSelfSigned:
		return errtax.CodeSelfSigned
	case pki.ProblemUntrusted:
		return errtax.CodeUntrustedChain
	case pki.ProblemNameMismatch:
		return errtax.CodeNameMismatch
	}
	return errtax.CodeNoCertificate
}

func verifyChain(chain []*x509.Certificate, host string, roots *x509.CertPool) bool {
	if len(chain) == 0 {
		return false
	}
	inter := x509.NewCertPool()
	for _, c := range chain[1:] {
		inter.AddCert(c)
	}
	_, err := chain[0].Verify(x509.VerifyOptions{
		DNSName:       host,
		Roots:         roots,
		Intermediates: inter,
	})
	return err == nil
}

// dotStuff prepares message data for the DATA phase: CRLF line endings and
// a doubled leading dot per RFC 5321 §4.5.2.
func dotStuff(data []byte) []byte {
	out := make([]byte, 0, len(data)+16)
	atLineStart := true
	for i := 0; i < len(data); i++ {
		c := data[i]
		if atLineStart && c == '.' {
			out = append(out, '.')
		}
		if c == '\n' && (i == 0 || data[i-1] != '\r') {
			out = append(out, '\r')
		}
		out = append(out, c)
		atLineStart = c == '\n'
	}
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\r', '\n')
	}
	return out
}
