// Package smtpclient implements the instrumented SMTP client of the
// paper's methodology (§4.1): it connects to an MX host, issues EHLO
// (falling back to HELO), checks for the STARTTLS capability, transitions
// to TLS, retrieves the server certificate, and closes without delivering
// mail. It also provides a delivering client used by the sender-MTA
// example.
package smtpclient

import (
	"bufio"
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/retry"
)

// Probe errors. NoSTARTTLS and Greylisted are taxonomy verdicts with
// fixed retry classifications: a missing STARTTLS capability is a
// persistent property of the deployment (§5.3 footnote 4) while
// greylisting is transient by definition — the §4.1 methodology
// reconnects to pass it. BadGreeting stays untyped because its
// transience depends on the wrapped cause (a torn connection
// mid-greeting retries; a hostile 554 banner does not), which the
// socket-level fallback in errtax.Transient classifies per instance.
var (
	ErrNoSTARTTLS = errtax.New(errtax.LayerProbe, errtax.CodeNoSTARTTLS, false, "smtpclient: server does not advertise STARTTLS")
	ErrGreylisted = errtax.New(errtax.LayerProbe, errtax.CodeGreylisted, true, "smtpclient: server greylisted the probe")
	//lint:ignore codes transience depends on the wrapped cause; classified per instance by errtax.Transient's fallback
	ErrBadGreeting = errors.New("smtpclient: unexpected server greeting")
)

// ProbeResult captures everything the §4.1 scan records about one MX.
type ProbeResult struct {
	Host string
	// Connected is true when the TCP connection succeeded.
	Connected bool
	// EHLOUsed is false when the server required the HELO fallback.
	EHLOUsed bool
	// STARTTLSAdvertised is true when the capability appeared in the
	// EHLO response.
	STARTTLSAdvertised bool
	// TLSEstablished is true when the handshake completed (certificate
	// verification is done separately so invalid certificates can still be
	// collected, matching the paper's methodology).
	TLSEstablished bool
	// Certificates is the presented chain (leaf first), when any.
	Certificates []*x509.Certificate
	// CertProblem is the PKIX validation outcome for Host.
	CertProblem pki.Problem
	// Greylisted marks a transient 4xx rejection at the greeting.
	Greylisted bool
	// Err holds the first fatal error encountered, if any.
	Err error
}

// Prober is the instrumented, non-delivering SMTP client.
type Prober struct {
	// HeloName is announced in EHLO/HELO; the paper uses a name matching
	// the prober's FCrDNS.
	HeloName string
	// Roots is the PKIX trust store for certificate validation.
	Roots *x509.CertPool
	// Timeout bounds the whole probe. Zero means 10s.
	Timeout time.Duration
	// Port overrides port 25 (loopback testing).
	Port int
	// AddrOverride, when set, is dialed instead of the MX host name
	// (loopback testing without real DNS).
	AddrOverride string
	// Now anchors certificate validation; nil means time.Now.
	Now func() time.Time
	// Obs, when non-nil, receives probe latencies
	// (smtp.probe.{dial,greeting,tls_handshake}.seconds) and outcome
	// counters, including smtp.probe.cert.<problem> keyed by the PKIX
	// taxonomy.
	Obs *obs.Registry
	// MaxAttempts bounds attempts per probe, retrying transient failures
	// (greylisting, socket-level errors — classified by errtax.Transient)
	// with backoff; each attempt gets a fresh Timeout. Zero or one means
	// a single attempt.
	MaxAttempts int
	// RetryBase overrides the first backoff delay (default 100ms).
	RetryBase time.Duration
	// RetryBudget, when non-nil, caps total retries across the run.
	RetryBudget *retry.Budget
}

// Probe runs the §4.1 sequence against mxHost: connect, EHLO (HELO
// fallback), STARTTLS, retrieve certificate, quit. It never sends mail.
func (p *Prober) Probe(ctx context.Context, mxHost string) ProbeResult {
	return p.ProbeAddr(ctx, mxHost, p.dialAddr(mxHost))
}

// ProbeAddr is Probe with an explicit dial address (ip:port), letting
// one shared Prober serve many hosts whose addresses the caller already
// resolved — the scanner's staged pipeline does this so MX probes can
// be deduplicated per host without building a Prober per probe. The
// certificate is still validated against mxHost.
func (p *Prober) ProbeAddr(ctx context.Context, mxHost, addr string) ProbeResult {
	sp := p.Obs.StartSpan("smtp.probe")
	var res ProbeResult
	// Do's return is the final attempt's error; assigning it back keeps
	// the reported result honest even if the retry loop someday returns
	// an error the closure never saw (budget or context shutdown).
	res.Err = retry.Policy{
		Name:        "smtp.probe",
		MaxAttempts: p.MaxAttempts,
		BaseDelay:   p.RetryBase,
		Budget:      p.RetryBudget,
		Obs:         p.Obs,
	}.Do(ctx, func(ctx context.Context) error {
		res = p.probe(ctx, mxHost, addr)
		return res.Err
	})
	sp.EndErr(res.Err)
	if p.Obs.Enabled() {
		switch {
		case !res.Connected:
			p.Obs.Counter("smtp.probe.connect_errors").Inc()
		case res.Greylisted:
			p.Obs.Counter("smtp.probe.greylisted").Inc()
		case errors.Is(res.Err, ErrNoSTARTTLS):
			p.Obs.Counter("smtp.probe.no_starttls").Inc()
		}
		if res.TLSEstablished {
			p.Obs.Counter("smtp.probe.tls_established").Inc()
			p.Obs.Counter("smtp.probe.cert." + res.CertProblem.String()).Inc()
		}
	}
	return res
}

func (p *Prober) probe(ctx context.Context, mxHost, addr string) ProbeResult {
	res := ProbeResult{Host: mxHost}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	dialSpan := p.Obs.StartSpan("smtp.probe.dial")
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	dialSpan.EndErr(err)
	if err != nil {
		res.Err = fmt.Errorf("smtpclient: dial %s: %w", addr, err)
		return res
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	res.Connected = true

	text := newTextConn(conn)

	// Greeting.
	greetSpan := p.Obs.StartSpan("smtp.probe.greeting")
	code, _, err := text.readReply()
	greetSpan.EndErr(err)
	if err != nil {
		res.Err = fmt.Errorf("%w: %w", ErrBadGreeting, err)
		return res
	}
	if code >= 400 && code < 500 {
		res.Greylisted = true
		res.Err = ErrGreylisted
		return res
	}
	if code != 220 {
		res.Err = fmt.Errorf("%w: code %d", ErrBadGreeting, code)
		return res
	}

	// EHLO with HELO fallback (§4.1 footnote 3).
	helo := p.HeloName
	if helo == "" {
		helo = "prober.mtasts-repro.test"
	}
	code, lines, err := text.cmd("EHLO " + helo)
	if err != nil {
		res.Err = err
		return res
	}
	if code == 250 {
		res.EHLOUsed = true
		for _, l := range lines {
			if strings.EqualFold(strings.Fields(l + " ")[0], "STARTTLS") {
				res.STARTTLSAdvertised = true
			}
		}
	} else {
		code, _, err = text.cmd("HELO " + helo)
		if err != nil || code != 250 {
			res.Err = fmt.Errorf("smtpclient: HELO failed (code %d, err %v)", code, err)
			return res
		}
		// HELO offers no capability list; try STARTTLS anyway below.
	}

	// STARTTLS.
	code, _, err = text.cmd("STARTTLS")
	if err != nil {
		res.Err = err
		return res
	}
	if code != 220 {
		if !res.STARTTLSAdvertised {
			res.Err = ErrNoSTARTTLS
		} else {
			res.Err = fmt.Errorf("smtpclient: STARTTLS rejected with code %d", code)
		}
		return res
	}

	// Handshake with verification disabled so invalid certificates can be
	// collected; classification happens below against p.Roots.
	tlsConn := tls.Client(conn, &tls.Config{
		ServerName:         mxHost,
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	tlsSpan := p.Obs.StartSpan("smtp.probe.tls_handshake")
	if err := tlsConn.HandshakeContext(ctx); err != nil {
		tlsSpan.EndErr(err)
		res.Err = fmt.Errorf("smtpclient: TLS handshake with %s: %w", mxHost, err)
		res.CertProblem = pki.ProblemNoCertificate
		return res
	}
	tlsSpan.End()
	res.TLSEstablished = true
	res.Certificates = tlsConn.ConnectionState().PeerCertificates

	now := time.Now()
	if p.Now != nil {
		now = p.Now()
	}
	res.CertProblem = pki.Validate(res.Certificates, mxHost, p.Roots, now)

	// End the session without delivering (QUIT over the TLS channel).
	tlsText := newTextConn(tlsConn)
	//lint:ignore errdrop QUIT is best-effort courtesy; the probe verdict is already complete
	tlsText.cmd("QUIT")
	return res
}

func (p *Prober) dialAddr(mxHost string) string {
	if p.AddrOverride != "" {
		return p.AddrOverride
	}
	port := 25
	if p.Port != 0 {
		port = p.Port
	}
	return net.JoinHostPort(mxHost, strconv.Itoa(port))
}

// VerifyMX adapts Probe to the mtasts.MXVerifier interface: it returns the
// PKIX problem for the host, with connection-level failures mapped to
// ProblemNoCertificate (no TLS identity could be obtained).
func (p *Prober) VerifyMX(ctx context.Context, mxHost string) (pki.Problem, error) {
	res := p.Probe(ctx, mxHost)
	if !res.Connected {
		return pki.ProblemNoCertificate, res.Err
	}
	if !res.TLSEstablished {
		return pki.ProblemNoCertificate, nil
	}
	return res.CertProblem, nil
}

// textConn is a minimal SMTP reply reader/writer.
type textConn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newTextConn(conn net.Conn) *textConn {
	return &textConn{r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// cmd sends one command and reads the (possibly multiline) reply.
func (t *textConn) cmd(line string) (int, []string, error) {
	if _, err := t.w.WriteString(line + "\r\n"); err != nil {
		return 0, nil, err
	}
	if err := t.w.Flush(); err != nil {
		return 0, nil, err
	}
	return t.readReply()
}

// readReply parses an SMTP reply, handling "250-" continuation lines. It
// returns the code and the text of each line (without the code prefix).
func (t *textConn) readReply() (int, []string, error) {
	var lines []string
	for {
		raw, err := t.r.ReadString('\n')
		if err != nil {
			return 0, nil, fmt.Errorf("smtpclient: reading reply: %w", err)
		}
		raw = strings.TrimRight(raw, "\r\n")
		if len(raw) < 3 {
			//lint:ignore codes malformed SMTP reply: like ErrBadGreeting, classified per instance by the socket fallback
			return 0, nil, fmt.Errorf("smtpclient: short reply %q", raw)
		}
		code, err := strconv.Atoi(raw[:3])
		if err != nil {
			//lint:ignore codes malformed SMTP reply: like ErrBadGreeting, classified per instance by the socket fallback
			return 0, nil, fmt.Errorf("smtpclient: bad reply code in %q", raw)
		}
		rest := ""
		more := false
		if len(raw) > 3 {
			more = raw[3] == '-'
			rest = raw[4:]
		}
		lines = append(lines, rest)
		if !more {
			return code, lines, nil
		}
	}
}
