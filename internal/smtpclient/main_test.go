package smtpclient

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/leakcheck"
)

// TestMain arms the goroutine-leak harness: the in-process smtpd
// servers the sender tests dial must not strand session goroutines.
func TestMain(m *testing.M) { leakcheck.Main(m) }
