package smtpclient

import (
	"bufio"
	"context"
	"crypto/tls"
	"net"

	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

var probeNow = time.Now()

func newCA(t *testing.T) *pki.CA {
	t.Helper()
	ca, err := pki.NewCA("SMTP Test CA", probeNow)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func certFor(t *testing.T, ca *pki.CA, opts pki.IssueOptions) *tls.Certificate {
	t.Helper()
	leaf, err := ca.Issue(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := leaf.TLSCertificate()
	return &c
}

// startMX boots an smtpd server and returns a prober aimed at it.
func startMX(t *testing.T, ca *pki.CA, b smtpd.Behavior) (*smtpd.Server, *Prober) {
	t.Helper()
	srv := smtpd.New(b)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("smtpd start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	p := &Prober{
		HeloName:     "prober.test",
		Roots:        ca.Pool(),
		Timeout:      3 * time.Second,
		AddrOverride: addr.String(),
		Now:          func() time.Time { return probeNow },
	}
	return srv, p
}

func TestProbeValidCertificate(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert})

	res := p.Probe(context.Background(), "mx.example.com")
	if res.Err != nil {
		t.Fatalf("probe err: %v", res.Err)
	}
	if !res.Connected || !res.EHLOUsed || !res.STARTTLSAdvertised || !res.TLSEstablished {
		t.Errorf("res = %+v", res)
	}
	if res.CertProblem != pki.OK {
		t.Errorf("CertProblem = %v", res.CertProblem)
	}
	if len(res.Certificates) == 0 {
		t.Error("no certificates collected")
	}
}

func TestProbeCertTaxonomy(t *testing.T) {
	ca := newCA(t)
	cases := []struct {
		name string
		opts pki.IssueOptions
		want pki.Problem
	}{
		{"name mismatch", pki.IssueOptions{Names: []string{"other.example.net"}, Now: probeNow}, pki.ProblemNameMismatch},
		{"expired", pki.IssueOptions{Names: []string{"mx.example.com"},
			NotBefore: probeNow.Add(-48 * time.Hour), NotAfter: probeNow.Add(-24 * time.Hour), Now: probeNow}, pki.ProblemExpired},
		{"self-signed", pki.IssueOptions{Names: []string{"mx.example.com"}, SelfSigned: true, Now: probeNow}, pki.ProblemSelfSigned},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cert := certFor(t, ca, c.opts)
			_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert})
			res := p.Probe(context.Background(), "mx.example.com")
			if !res.TLSEstablished {
				t.Fatalf("TLS not established: %+v", res)
			}
			if res.CertProblem != c.want {
				t.Errorf("CertProblem = %v, want %v", res.CertProblem, c.want)
			}
		})
	}
}

func TestProbeNoSTARTTLS(t *testing.T) {
	ca := newCA(t)
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", DisableSTARTTLS: true})
	res := p.Probe(context.Background(), "mx.example.com")
	if res.STARTTLSAdvertised || res.TLSEstablished {
		t.Errorf("res = %+v", res)
	}
	if res.Err != ErrNoSTARTTLS {
		t.Errorf("Err = %v", res.Err)
	}
}

func TestProbeHELOFallback(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, DisableEHLO: true})
	res := p.Probe(context.Background(), "mx.example.com")
	if res.EHLOUsed {
		t.Error("EHLO should have been refused")
	}
	// HELO gives no capability list, but STARTTLS still works when tried.
	if !res.TLSEstablished || res.CertProblem != pki.OK {
		t.Errorf("res = %+v (err=%v)", res, res.Err)
	}
}

func TestProbeGreylisted(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, Greylist: true})
	res := p.Probe(context.Background(), "mx.example.com")
	if !res.Greylisted || res.Err != ErrGreylisted {
		t.Errorf("first attempt: %+v", res)
	}
	// Retry passes the greylist.
	res = p.Probe(context.Background(), "mx.example.com")
	if res.Greylisted || !res.TLSEstablished {
		t.Errorf("second attempt: %+v (err=%v)", res, res.Err)
	}
}

func TestProbeMissingCertificate(t *testing.T) {
	ca := newCA(t)
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com"}) // no Certificate
	res := p.Probe(context.Background(), "mx.example.com")
	if res.TLSEstablished {
		t.Error("handshake should fail without a certificate")
	}
	if res.CertProblem != pki.ProblemNoCertificate {
		t.Errorf("CertProblem = %v", res.CertProblem)
	}
}

func TestProbeConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	p := &Prober{AddrOverride: addr, Timeout: 2 * time.Second}
	res := p.Probe(context.Background(), "mx.example.com")
	if res.Connected || res.Err == nil {
		t.Errorf("res = %+v", res)
	}
}

func TestVerifyMXAdapter(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	_, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert})
	problem, err := p.VerifyMX(context.Background(), "mx.example.com")
	if err != nil || problem != pki.OK {
		t.Errorf("VerifyMX = %v, %v", problem, err)
	}
}

func TestProbeDoesNotDeliverMail(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	srv, p := startMX(t, ca, smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, AcceptMail: true})
	p.Probe(context.Background(), "mx.example.com")
	if n := len(srv.Messages()); n != 0 {
		t.Errorf("probe delivered %d messages", n)
	}
}

func TestSenderDeliverOverTLS(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s := &Sender{HeloName: "sender.test", Roots: ca.Pool(), RequireTLS: true,
		Timeout: 3 * time.Second, AddrOverride: addr.String()}
	res, err := s.Deliver(context.Background(), "mx.example.com", "alice@sender.test",
		[]string{"bob@example.com"}, []byte("Subject: hi\n\nhello\n.leading dot line\n"))
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if !res.TLS || !res.CertVerified {
		t.Errorf("res = %+v", res)
	}
	msgs := srv.Messages()
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if !msgs[0].TLS || !strings.Contains(string(msgs[0].Data), ".leading dot line") {
		t.Errorf("message = %+v data=%q", msgs[0], msgs[0].Data)
	}
}

func TestSenderRequireTLSRefusesPlaintext(t *testing.T) {
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.example.com", DisableSTARTTLS: true, AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := &Sender{RequireTLS: true, Timeout: 3 * time.Second, AddrOverride: addr.String()}
	_, err = s.Deliver(context.Background(), "mx.example.com", "a@b", []string{"c@d"}, []byte("x"))
	if err == nil {
		t.Fatal("RequireTLS delivery over plaintext should fail")
	}
	if len(srv.Messages()) != 0 {
		t.Error("message was delivered despite RequireTLS failure")
	}
}

func TestSenderOpportunisticFallsBackToPlaintext(t *testing.T) {
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.example.com", DisableSTARTTLS: true, AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := &Sender{Timeout: 3 * time.Second, AddrOverride: addr.String()}
	res, err := s.Deliver(context.Background(), "mx.example.com", "a@b.test", []string{"c@d.test"}, []byte("body"))
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if res.TLS {
		t.Error("expected plaintext delivery")
	}
	if len(srv.Messages()) != 1 {
		t.Error("message not delivered")
	}
}

func TestSenderRequireTLSRefusesBadCert(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"wrong.example.net"}, Now: probeNow})
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := &Sender{Roots: ca.Pool(), RequireTLS: true, Timeout: 3 * time.Second, AddrOverride: addr.String()}
	_, err = s.Deliver(context.Background(), "mx.example.com", "a@b.test", []string{"c@d.test"}, []byte("x"))
	if err == nil {
		t.Fatal("delivery with bad cert under RequireTLS should fail")
	}
}

func TestSenderRejectAll(t *testing.T) {
	ca := newCA(t)
	cert := certFor(t, ca, pki.IssueOptions{Names: []string{"mx.example.com"}, Now: probeNow})
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.example.com", Certificate: cert, RejectAll: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := &Sender{Roots: ca.Pool(), Timeout: 3 * time.Second, AddrOverride: addr.String()}
	_, err = s.Deliver(context.Background(), "mx.example.com", "a@b.test", []string{"c@d.test"}, []byte("x"))
	if err == nil {
		t.Fatal("RejectAll server should refuse the transaction")
	}
}

func TestDotStuff(t *testing.T) {
	cases := []struct{ in, want string }{
		{"hello\n", "hello\r\n"},
		{".hidden\n", "..hidden\r\n"},
		{"a\n.b\nc", "a\r\n..b\r\nc\r\n"},
		{"", ""},
		{"already\r\ncrlf\r\n", "already\r\ncrlf\r\n"},
	}
	for _, c := range cases {
		if got := string(dotStuff([]byte(c.in))); got != c.want {
			t.Errorf("dotStuff(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReadReplyMultiline(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		server.Write([]byte("250-first\r\n250-second\r\n250 last\r\n"))
		server.Close()
	}()
	tc := newTextConn(client)
	code, lines, err := tc.readReply()
	if err != nil || code != 250 || len(lines) != 3 {
		t.Fatalf("readReply = %d, %v, %v", code, lines, err)
	}
	if lines[0] != "first" || lines[2] != "last" {
		t.Errorf("lines = %v", lines)
	}
}

func TestReadReplyMalformed(t *testing.T) {
	for _, in := range []string{"xx\r\n", "abc ok\r\n"} {
		server, client := net.Pipe()
		go func(s net.Conn, data string) {
			s.Write([]byte(data))
			s.Close()
		}(server, in)
		tc := newTextConn(client)
		if _, _, err := tc.readReply(); err == nil {
			t.Errorf("readReply accepted %q", in)
		}
		client.Close()
	}
}

func TestSenderPlaintextFallbackAfterFailedHandshake(t *testing.T) {
	// STARTTLS advertised but no certificate installed: the handshake
	// fails and an opportunistic sender must reconnect in plaintext.
	srv := smtpd.New(smtpd.Behavior{Hostname: "mx.nocert.example", AcceptMail: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := &Sender{HeloName: "fallback.test", Timeout: 3 * time.Second, AddrOverride: addr.String()}
	res, err := s.Deliver(context.Background(), "mx.nocert.example", "a@b.test", []string{"c@d.test"}, []byte("x\n"))
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if res.TLS {
		t.Error("fallback delivery should be plaintext")
	}
	if len(srv.Messages()) != 1 {
		t.Error("message not delivered after fallback")
	}

	// With RequireTLS the same failure must refuse, not fall back.
	s2 := &Sender{RequireTLS: true, Timeout: 3 * time.Second, AddrOverride: addr.String()}
	if _, err := s2.Deliver(context.Background(), "mx.nocert.example", "a@b.test", []string{"c@d.test"}, []byte("x\n")); err == nil {
		t.Fatal("RequireTLS delivery should fail on broken handshake")
	}
	if len(srv.Messages()) != 1 {
		t.Error("RequireTLS fallback delivered anyway")
	}
}

func TestProbeSTARTTLSRejectedAfterAdvertise(t *testing.T) {
	// A raw server that advertises STARTTLS but answers 454 to the command
	// (a transient policy server behavior).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		conn.Write([]byte("220 odd.example ESMTP\r\n"))
		r.ReadString('\n') // EHLO
		conn.Write([]byte("250-odd.example\r\n250 STARTTLS\r\n"))
		r.ReadString('\n') // STARTTLS
		conn.Write([]byte("454 4.7.0 TLS not available due to temporary reason\r\n"))
		r.ReadString('\n')
	}()
	p := &Prober{AddrOverride: ln.Addr().String(), Timeout: 2 * time.Second}
	res := p.Probe(context.Background(), "odd.example")
	if !res.STARTTLSAdvertised || res.TLSEstablished {
		t.Errorf("res = %+v", res)
	}
	if res.Err == nil || res.Err == ErrNoSTARTTLS {
		t.Errorf("Err = %v, want explicit rejection", res.Err)
	}
}

func TestProbePermanentGreetingFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("554 5.7.1 you are on a blocklist\r\n"))
		conn.Close()
	}()
	p := &Prober{AddrOverride: ln.Addr().String(), Timeout: 2 * time.Second}
	res := p.Probe(context.Background(), "blocked.example")
	if res.Greylisted {
		t.Error("5xx greeting misclassified as greylisting")
	}
	if res.Err == nil {
		t.Error("no error for 554 greeting")
	}
}
