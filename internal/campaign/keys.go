package campaign

import (
	"fmt"
	"strings"
)

// Store key layout (docs/CAMPAIGN.md "Store layout"):
//
//	c/<id>/meta                  campaign metadata (Meta)
//	c/<id>/w/<week>/d/<domain>   one DomainRecord per scanned domain
//	c/<id>/ck/<week>/<shard>     one Checkpoint per completed shard
//
// Week and shard numbers are zero-padded so lexicographic key order is
// numeric order, which is what makes prefix scans yield weeks and
// domains in a stable, mergeable order.

// maxWeeks / maxShards bound the zero-padding; beyond them key order
// would stop being numeric.
const (
	maxWeeks  = 10000
	maxShards = 1000000
)

// validateID rejects campaign IDs that would break the key layout.
func validateID(id string) error {
	if id == "" {
		return fmt.Errorf("campaign: empty campaign ID")
	}
	if strings.ContainsAny(id, "/ \t\n") {
		return fmt.Errorf("campaign: ID %q must not contain '/' or whitespace", id)
	}
	return nil
}

func metaKey(id string) string {
	return "c/" + id + "/meta"
}

func recordKey(id string, week int, domain string) string {
	return fmt.Sprintf("c/%s/w/%04d/d/%s", id, week, domain)
}

// weekPrefix is the Scan prefix covering every domain record of a week.
func weekPrefix(id string, week int) string {
	return fmt.Sprintf("c/%s/w/%04d/d/", id, week)
}

func checkpointKey(id string, week, shard int) string {
	return fmt.Sprintf("c/%s/ck/%04d/%06d", id, week, shard)
}

// checkpointPrefix covers every shard checkpoint of a week.
func checkpointPrefix(id string, week int) string {
	return fmt.Sprintf("c/%s/ck/%04d/", id, week)
}

// allCheckpointsPrefix covers every checkpoint of the campaign.
func allCheckpointsPrefix(id string) string {
	return "c/" + id + "/ck/"
}
