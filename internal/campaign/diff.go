package campaign

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/store"
)

// Diff is the week-over-week delta of a campaign: adoption and churn
// plus classification changes keyed by errtax codes and the
// ClassificationKey hash. Counts are disjoint where it matters:
// Adopted/Removed cover domains present in only one week; Changed and
// Unchanged partition the continuing domains; NewlyMisconfigured and
// NewlyHealthy are subsets of Changed; CodesAdded/CodesCleared count
// per-code transitions among continuing domains only, so adoption churn
// never inflates error churn.
type Diff struct {
	CampaignID string `json:"campaign"`
	WeekOld    int    `json:"week_old"`
	WeekNew    int    `json:"week_new"`
	// OldDomains / NewDomains are each week's stored domain counts.
	OldDomains int `json:"old_domains"`
	NewDomains int `json:"new_domains"`
	// Adopted / Removed count domains present in exactly one week.
	Adopted int `json:"adopted"`
	Removed int `json:"removed"`
	// Changed / Unchanged partition continuing domains by whether their
	// ClassificationKey hash moved.
	Changed   int `json:"changed"`
	Unchanged int `json:"unchanged"`
	// NewlyMisconfigured / NewlyHealthy count continuing domains whose
	// misconfigured verdict flipped on / off.
	NewlyMisconfigured int `json:"newly_misconfigured"`
	NewlyHealthy       int `json:"newly_healthy"`
	// CodesAdded / CodesCleared count, per errtax code, continuing
	// domains that gained / lost that code.
	CodesAdded   map[string]int `json:"codes_added,omitempty"`
	CodesCleared map[string]int `json:"codes_cleared,omitempty"`
}

// recItem is one record (or a scan failure) flowing out of streamWeek.
type recItem struct {
	rec DomainRecord
	err error
}

// streamWeek scans one week's records into a bounded channel so two
// weeks can be merge-joined with O(1) memory. Closing stop aborts the
// underlying Scan promptly.
func streamWeek(s store.Store, id string, week int, stop <-chan struct{}) <-chan recItem {
	ch := make(chan recItem, 64)
	go func() {
		defer close(ch)
		err := s.Scan(weekPrefix(id, week), func(_ string, v []byte) error {
			rec, err := DecodeRecord(v)
			if err != nil {
				return err
			}
			select {
			case ch <- recItem{rec: rec}:
				return nil
			case <-stop:
				return store.ErrStop
			}
		})
		if err != nil {
			select {
			case ch <- recItem{err: err}:
			case <-stop:
			}
		}
	}()
	return ch
}

// ComputeDiff merge-joins two stored weeks in ascending domain order.
// reg, when non-nil, records campaign.diff.seconds.
func ComputeDiff(s store.Store, id string, weekOld, weekNew int, reg *obs.Registry) (Diff, error) {
	if err := validateID(id); err != nil {
		return Diff{}, err
	}
	start := time.Now()
	d := Diff{
		CampaignID:   id,
		WeekOld:      weekOld,
		WeekNew:      weekNew,
		CodesAdded:   make(map[string]int),
		CodesCleared: make(map[string]int),
	}
	stop := make(chan struct{})
	defer close(stop)
	oldCh := streamWeek(s, id, weekOld, stop)
	newCh := streamWeek(s, id, weekNew, stop)

	o, oOK := <-oldCh
	n, nOK := <-newCh
	for oOK || nOK {
		if oOK && o.err != nil {
			return Diff{}, o.err
		}
		if nOK && n.err != nil {
			return Diff{}, n.err
		}
		switch {
		case !nOK || (oOK && o.rec.Domain < n.rec.Domain):
			d.OldDomains++
			d.Removed++
			o, oOK = <-oldCh
		case !oOK || (nOK && n.rec.Domain < o.rec.Domain):
			d.NewDomains++
			d.Adopted++
			n, nOK = <-newCh
		default: // continuing domain
			d.OldDomains++
			d.NewDomains++
			d.compare(&o.rec, &n.rec)
			o, oOK = <-oldCh
			n, nOK = <-newCh
		}
	}
	if reg.Enabled() {
		reg.Histogram("campaign.diff.seconds", nil).ObserveSince(start)
	}
	return d, nil
}

// compare folds one continuing domain into the diff.
func (d *Diff) compare(o, n *DomainRecord) {
	if o.Class == n.Class {
		d.Unchanged++
		return
	}
	d.Changed++
	if !o.Misconfigured() && n.Misconfigured() {
		d.NewlyMisconfigured++
	}
	if o.Misconfigured() && !n.Misconfigured() {
		d.NewlyHealthy++
	}
	// Codes are sorted, so a linear walk yields added/cleared.
	i, j := 0, 0
	for i < len(o.Codes) || j < len(n.Codes) {
		switch {
		case j >= len(n.Codes) || (i < len(o.Codes) && o.Codes[i] < n.Codes[j]):
			d.CodesCleared[o.Codes[i]]++
			i++
		case i >= len(o.Codes) || (j < len(n.Codes) && n.Codes[j] < o.Codes[i]):
			d.CodesAdded[n.Codes[j]]++
			j++
		default:
			i++
			j++
		}
	}
}

// WriteText renders the diff in a stable human-readable layout (maps
// sorted by code), shared by the CLI and the longitudinal experiment.
func (d *Diff) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "campaign %s: week %d -> week %d\n", d.CampaignID, d.WeekOld, d.WeekNew); err != nil {
		return err
	}
	rows := []struct {
		label string
		n     int
	}{
		{"domains (old)", d.OldDomains},
		{"domains (new)", d.NewDomains},
		{"adopted", d.Adopted},
		{"removed", d.Removed},
		{"changed", d.Changed},
		{"unchanged", d.Unchanged},
		{"newly misconfigured", d.NewlyMisconfigured},
		{"newly healthy", d.NewlyHealthy},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-22s %d\n", r.label, r.n); err != nil {
			return err
		}
	}
	writeCodes := func(title string, m map[string]int) error {
		if len(m) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(w, "  %s:\n", title); err != nil {
			return err
		}
		codes := make([]string, 0, len(m))
		for c := range m {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			if _, err := fmt.Fprintf(w, "    %-28s %d\n", c, m[c]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeCodes("codes added", d.CodesAdded); err != nil {
		return err
	}
	return writeCodes("codes cleared", d.CodesCleared)
}
