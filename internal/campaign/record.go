package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

// DomainRecord is the stored form of one domain's verdict in one week:
// the classification-bearing projection of scanner.DomainResult that the
// longitudinal figures need — deployment flags, policy mode, taxonomy
// codes, category membership, delivery-failure — plus a hash of the full
// ClassificationKey so diffs can detect *any* classification change
// without storing the verbose key itself.
//
// Records are stored as canonical JSON: struct field order is fixed and
// slices are sorted, so encoding the same verdict always yields the same
// bytes — the property snapshot exports and the crash-resume
// byte-identical guarantee rest on.
type DomainRecord struct {
	Domain string `json:"domain"`
	// Present/Valid/PolicyOK are the deployment funnel flags.
	Present  bool `json:"present,omitempty"`
	Valid    bool `json:"valid,omitempty"`
	PolicyOK bool `json:"policy_ok,omitempty"`
	// Mode is the policy mode when PolicyOK ("enforce", "testing", "none").
	Mode string `json:"mode,omitempty"`
	// Stage is the policy retrieval failure stage key when retrieval
	// failed ("dns", "tcp", "tls", "http", "syntax").
	Stage string `json:"stage,omitempty"`
	// Mismatch is the Figure 8 inconsistency kind when not none.
	Mismatch string `json:"mismatch,omitempty"`
	// Codes are the domain's errtax codes, sorted and deduplicated.
	Codes []string `json:"codes,omitempty"`
	// Categories are the Figure 4 category keys, in presentation order.
	Categories []string `json:"categories,omitempty"`
	// MXHosts / MXInvalid count the domain's MXes and how many presented
	// PKIX-invalid certificates.
	MXHosts   int `json:"mx_hosts,omitempty"`
	MXInvalid int `json:"mx_invalid,omitempty"`
	// DeliveryFailure marks the paper's §4.2 hard-fail population.
	DeliveryFailure bool `json:"delivery_failure,omitempty"`
	// Canceled marks a verdict cut short by run cancellation; resumed
	// campaigns never store these (the shard is re-scanned instead).
	Canceled bool `json:"canceled,omitempty"`
	// Class is the truncated SHA-256 of the result's ClassificationKey.
	Class string `json:"class,omitempty"`
}

// FromResult projects a scan result onto its stored record.
func FromResult(r *scanner.DomainResult) DomainRecord {
	rec := DomainRecord{
		Domain:          r.Domain,
		Present:         r.RecordPresent,
		Valid:           r.RecordValid,
		PolicyOK:        r.PolicyOK,
		MXHosts:         len(r.MXHosts),
		DeliveryFailure: r.DeliveryFailure(),
		Canceled:        r.Canceled,
		Class:           classHash(r),
	}
	if r.PolicyOK {
		rec.Mode = string(r.Policy.Mode)
		if r.Mismatch.Kind != inconsistency.KindNone {
			rec.Mismatch = r.Mismatch.Kind.String()
		}
	} else if r.RecordValid {
		rec.Stage = r.PolicyStage.Key()
	}
	for _, p := range r.MXProblems {
		if !p.Valid() {
			rec.MXInvalid++
		}
	}
	seen := make(map[string]bool)
	for _, e := range r.TaxErrors() {
		c := string(e.Code)
		if !seen[c] {
			seen[c] = true
			rec.Codes = append(rec.Codes, c)
		}
	}
	sort.Strings(rec.Codes)
	for _, c := range r.Categories() {
		rec.Categories = append(rec.Categories, c.Key())
	}
	return rec
}

// classHash is the truncated SHA-256 of the result's ClassificationKey:
// 16 hex bytes is plenty to make cross-week hash equality mean "same
// classification" at campaign scale.
func classHash(r *scanner.DomainResult) string {
	sum := sha256.Sum256([]byte(r.ClassificationKey()))
	return hex.EncodeToString(sum[:8])
}

// Misconfigured mirrors scanner.DomainResult.Misconfigured on the
// stored projection.
func (rec *DomainRecord) Misconfigured() bool { return len(rec.Categories) > 0 }

// Encode renders the record's canonical byte form.
func (rec *DomainRecord) Encode() ([]byte, error) {
	return json.Marshal(rec)
}

// DecodeRecord parses a stored record value.
func DecodeRecord(v []byte) (DomainRecord, error) {
	var rec DomainRecord
	if err := json.Unmarshal(v, &rec); err != nil {
		return DomainRecord{}, fmt.Errorf("campaign: decode record: %w", err)
	}
	return rec, nil
}
