package campaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/store"
)

// putRecord stores one hand-built record under the campaign layout.
func putRecord(t *testing.T, s store.Store, id string, week int, rec DomainRecord) {
	t.Helper()
	v, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(recordKey(id, week, rec.Domain), v); err != nil {
		t.Fatal(err)
	}
}

func TestDiffSemantics(t *testing.T) {
	s := store.NewMem()
	const id = "d"
	// Week 0: a (healthy), b (misconfigured, code bad_syntax),
	// c (unchanged filler), e (healthy, will regress).
	putRecord(t, s, id, 0, DomainRecord{Domain: "a.example", Present: true, Class: "aaaa"})
	putRecord(t, s, id, 0, DomainRecord{Domain: "b.example", Present: true, Class: "b0",
		Codes: []string{"bad_syntax"}, Categories: []string{"dns_record"}})
	putRecord(t, s, id, 0, DomainRecord{Domain: "c.example", Present: true, Class: "cccc"})
	putRecord(t, s, id, 0, DomainRecord{Domain: "e.example", Present: true, Class: "e0"})
	// Week 1: a gone; b healed but gained a different code; c unchanged;
	// d adopted; e newly misconfigured.
	putRecord(t, s, id, 1, DomainRecord{Domain: "b.example", Present: true, Class: "b1",
		Codes: []string{"expired"}, Categories: []string{"mx_cert"}})
	putRecord(t, s, id, 1, DomainRecord{Domain: "c.example", Present: true, Class: "cccc"})
	putRecord(t, s, id, 1, DomainRecord{Domain: "d.example", Present: true, Class: "dddd"})
	putRecord(t, s, id, 1, DomainRecord{Domain: "e.example", Present: true, Class: "e1",
		Codes: []string{"inconsistency"}, Categories: []string{"inconsistency"}})

	d, err := ComputeDiff(s, id, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Diff{
		CampaignID: id, WeekOld: 0, WeekNew: 1,
		OldDomains: 4, NewDomains: 4,
		Adopted: 1, Removed: 1,
		Changed: 2, Unchanged: 1,
		NewlyMisconfigured: 1, NewlyHealthy: 0,
		CodesAdded:   map[string]int{"expired": 1, "inconsistency": 1},
		CodesCleared: map[string]int{"bad_syntax": 1},
	}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Diff = %+v\nwant  %+v", d, want)
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"week 0 -> week 1", "adopted", "expired", "bad_syntax"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("WriteText output missing %q:\n%s", frag, out)
		}
	}
}

func TestDiffEmptyWeeks(t *testing.T) {
	s := store.NewMem()
	d, err := ComputeDiff(s, "nothing", 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.OldDomains != 0 || d.NewDomains != 0 || d.Adopted != 0 || d.Removed != 0 {
		t.Fatalf("diff of empty weeks = %+v", d)
	}
}
