package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/store"
)

// watermarkScanner is a trivial per-domain scanner that samples the heap
// watermark from inside the scan hot path, where a result-accumulating
// engine would show its growth.
type watermarkScanner struct {
	n    atomic.Int64
	peak atomic.Int64
}

func (w *watermarkScanner) ScanDomain(_ context.Context, domain string) scanner.DomainResult {
	if w.n.Add(1)%16384 == 0 {
		w.sample()
	}
	return scanner.DomainResult{Domain: domain}
}

func (w *watermarkScanner) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if int64(ms.HeapAlloc) <= cur || w.peak.CompareAndSwap(cur, int64(ms.HeapAlloc)) {
			return
		}
	}
}

// TestBoundedMemoryMillionDomains streams a million-domain week (see
// memsize_*_test.go for the race-detector scaling) into the on-disk
// store and asserts the heap watermark stays far below what
// accumulating []DomainResult for the run would cost: the engine's
// live set is one shard plus the store index, not the campaign.
func TestBoundedMemoryMillionDomains(t *testing.T) {
	const heapLimit = 512 << 20

	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	scan := &watermarkScanner{}
	src := DomainSource(func(fn func(string) error) error {
		for i := 0; i < memTestDomains; i++ {
			if err := fn(fmt.Sprintf("d%07d.example", i)); err != nil {
				return err
			}
		}
		return nil
	})
	eng := &Engine{
		Store:     disk,
		Runner:    &scanner.Runner{Workers: 8, Scan: scan},
		ID:        "mem",
		ShardSize: 16384,
	}
	if err := eng.RunWeek(context.Background(), 0, src); err != nil {
		t.Fatal(err)
	}
	scan.sample() // final sample after the last shard's batch

	if n, err := store.Len(disk, weekPrefix("mem", 0)); err != nil || n != memTestDomains {
		t.Fatalf("stored %d records err=%v, want %d", n, err, memTestDomains)
	}
	peak := scan.peak.Load()
	t.Logf("heap watermark: %d MiB over %d domains (store: %d MiB, %d segments)",
		peak>>20, memTestDomains, disk.SizeBytes()>>20, disk.Segments())
	if peak > heapLimit {
		t.Fatalf("heap watermark %d MiB exceeds %d MiB bound — results are accumulating",
			peak>>20, int64(heapLimit)>>20)
	}
}
