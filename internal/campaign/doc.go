// Package campaign turns the one-shot scanner into the paper's actual
// instrument: a longitudinal scan-campaign engine that runs repeated
// (weekly, in the paper's §3 methodology) scans over millions of
// domains, persists every verdict through a store.Store, survives
// crashes, and diffs any two stored weeks.
//
// The engine shards the domain list and scans shards sequentially —
// each shard internally parallel via scanner.Runner — so peak memory is
// bounded by one shard regardless of campaign size; results stream to
// the store as each shard completes and are never accumulated run-wide.
// After a shard's results are durably synced, the engine writes a
// checkpoint keyed by (campaign ID, week, shard); a killed run resumed
// over the same source skips checkpointed shards and idempotently
// re-scans at most the one partial shard, so the exported week snapshot
// is byte-identical to an uninterrupted run (proven by resume_test.go).
//
// Diff merge-joins two stored weeks in ascending domain order with O(1)
// memory, classifying each domain as adopted, removed, newly
// misconfigured, newly healthy, or changed, and tallying which errtax
// codes were added and cleared — the feedstock of the paper's
// longitudinal adoption/churn/misconfiguration figures.
//
// docs/CAMPAIGN.md documents the store layout, checkpoint and recovery
// semantics, the diff schema, and the cmd/mtasts-campaign runbook;
// docs/ARCHITECTURE.md places the layer in the module's overall map.
package campaign
