package campaign

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/store"
)

// TestCrashResumeByteIdentical is the tentpole determinism proof: a
// campaign killed after two shards — with a further shard's records
// half-written and unchecked-pointed, the worst state an append-only
// store can wake up in — must, after resume, export week snapshots and
// diffs byte-identical to an uninterrupted run over the same seed.
func TestCrashResumeByteIdentical(t *testing.T) {
	const (
		id        = "crash"
		shardSize = 32
	)

	// Reference: uninterrupted weeks 0 and 1 on a fresh disk store.
	refDir := t.TempDir()
	ref, err := store.OpenDisk(refDir)
	if err != nil {
		t.Fatal(err)
	}
	for week := 0; week <= 1; week++ {
		if _, err := runTestWeek(t, ref, id, week, shardSize, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Crashed run: week 0 completes, week 1 dies after 2 shards...
	crashDir := t.TempDir()
	crash, err := store.OpenDisk(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runTestWeek(t, crash, id, 0, shardSize, 0); err != nil {
		t.Fatal(err)
	}
	n, err := runTestWeek(t, crash, id, 1, shardSize, 2)
	if err != ErrStopped {
		t.Fatalf("interrupted week: %v, want ErrStopped", err)
	}
	if n <= 3*shardSize {
		t.Fatalf("snapshot has only %d domains; cannot leave a shard un-checkpointed", n)
	}

	// ...mid-shard: shard 2's first few records were written (with
	// whatever partial verdicts were in flight) but never checkpointed.
	var names []string
	for _, d := range testWorld.Domains {
		if _, ok := testWorld.ArtifactsAt(d, weekSnapshot(1)); ok {
			names = append(names, d.Name)
		}
	}
	sort.Strings(names)
	for _, dom := range names[2*shardSize : 2*shardSize+3] {
		junk := DomainRecord{Domain: dom, Canceled: true, Class: "deadbeefdeadbeef"}
		v, err := junk.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := crash.Put(recordKey(id, 1, dom), v); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: reopen the store cold and resume week 1 to completion.
	if err := crash.Close(); err != nil {
		t.Fatal(err)
	}
	crash, err = store.OpenDisk(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runTestWeek(t, crash, id, 1, shardSize, 0); err != nil {
		t.Fatalf("resume: %v", err)
	}

	for week := 0; week <= 1; week++ {
		var a, b bytes.Buffer
		if err := WriteSnapshot(&a, ref, id, week); err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshot(&b, crash, id, week); err != nil {
			t.Fatal(err)
		}
		if a.Len() == 0 {
			t.Fatalf("week %d snapshot empty", week)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("week %d snapshot differs between uninterrupted and resumed runs (%d vs %d bytes)",
				week, a.Len(), b.Len())
		}
	}

	refDiff, err := ComputeDiff(ref, id, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	crashDiff, err := ComputeDiff(crash, id, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refDiff, crashDiff) {
		t.Fatalf("diffs diverge:\nref:   %+v\ncrash: %+v", refDiff, crashDiff)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if err := crash.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotBackendIndependent pins the other half of determinism:
// the exported snapshot does not depend on which backend stored it.
func TestSnapshotBackendIndependent(t *testing.T) {
	mem := store.NewMem()
	disk, err := store.OpenDisk(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for _, s := range []store.Store{mem, disk} {
		if _, err := runTestWeek(t, s, "x", 0, 64, 0); err != nil {
			t.Fatal(err)
		}
	}
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, mem, "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, disk, "x", 0); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ across backends (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestCanceledRunStoresNothing: a context-canceled shard must not leak
// partial verdicts into the store.
func TestCanceledRunStoresNothing(t *testing.T) {
	s := store.NewMem()
	src, scan, _ := snapshotSource(testWorld, weekSnapshot(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{
		Store:  s,
		Runner: &scanner.Runner{Workers: 2, Scan: scan},
		ID:     "gone", ShardSize: 16,
	}
	if err := eng.RunWeek(ctx, 0, src); err == nil {
		t.Fatal("canceled run reported success")
	}
	if n, err := store.Len(s, weekPrefix("gone", 0)); err != nil || n != 0 {
		t.Fatalf("canceled run stored %d records (err=%v), want 0", n, err)
	}
}
